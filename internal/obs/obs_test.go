package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestNilObserverEmitIsNoOp(t *testing.T) {
	t.Parallel()
	Emit(nil, Event{Type: EvLLMCall}) // must not panic
	if o := WithRunner(nil, "helper"); o != nil {
		t.Fatalf("WithRunner(nil) = %v, want nil", o)
	}
}

func TestRecorderStampsSessionAndRunner(t *testing.T) {
	t.Parallel()
	rec := NewRecorder("trial-7")
	o := WithRunner(rec, "iterative-helper")
	o.Emit(Event{Type: EvToolCall, Tool: "pingmesh"})
	o.Emit(Event{Type: EvToolCall, Tool: "syslog", Runner: "other", Session: "s2"})
	if rec.Events[0].Session != "trial-7" || rec.Events[0].Runner != "iterative-helper" {
		t.Fatalf("stamp missing: %+v", rec.Events[0])
	}
	if rec.Events[1].Runner != "other" || rec.Events[1].Session != "s2" {
		t.Fatalf("explicit labels overwritten: %+v", rec.Events[1])
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	t.Parallel()
	in := []Event{
		{Seq: 1, Session: "ab/0001", At: 3 * time.Minute, Round: 2, Type: EvHypothesis, Hypothesis: "link_congested", Confidence: 0.7},
		{Seq: 2, Session: "ab/0001", At: 5 * time.Minute, Type: EvToolCall, Tool: "pingmesh", Disposition: "ok", Latency: 90 * time.Second},
		{Seq: 3, At: 8 * time.Minute, Type: EvSessionEnd, Runner: "iterative-helper", Outcome: &SessionOutcome{Mitigated: true, TTMMinutes: 8, Rounds: 2, CostUSD: 0.25}},
	}
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestSinkAbsorbAssignsGlobalSeq(t *testing.T) {
	t.Parallel()
	s := NewSink()
	a := NewRecorder("t0")
	a.Emit(Event{Type: EvHypothesis})
	a.Emit(Event{Type: EvHypothesisTested, Verdict: "supported"})
	b := NewRecorder("t1")
	b.Emit(Event{Type: EvHypothesis})
	s.Absorb(a)
	s.Absorb(b)
	ev := s.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	for i, e := range ev {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if ev[2].Session != "t1" {
		t.Fatalf("absorb order broken: %+v", ev[2])
	}
}

func TestRegistryMergeMatchesDirect(t *testing.T) {
	t.Parallel()
	events := []Event{
		{Type: EvToolCall, Tool: "pingmesh", Disposition: "ok", Latency: time.Minute},
		{Type: EvToolCall, Tool: "pingmesh", Disposition: "error", Latency: 2 * time.Minute},
		{Type: EvLLMCall, Runner: "h", PromptTokens: 100, CompletionTokens: 20, Latency: 30 * time.Second},
		{Type: EvSessionEnd, Runner: "h", Outcome: &SessionOutcome{Mitigated: true, TTMMinutes: 42, Rounds: 3, Wrong: 1, CostUSD: 0.5}},
	}
	direct := NewAIOpsRegistry()
	for _, e := range events {
		Collect(direct, e)
	}
	// Split across two registries and merge.
	r1, r2 := NewAIOpsRegistry(), NewAIOpsRegistry()
	for i, e := range events {
		if i%2 == 0 {
			Collect(r1, e)
		} else {
			Collect(r2, e)
		}
	}
	r1.Merge(r2)
	var a, b strings.Builder
	if err := direct.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r1.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merged export differs from direct export:\n%s\nvs\n%s", a.String(), b.String())
	}
	if got := direct.CounterValue(MToolCalls, Labels{"tool": "pingmesh", "disposition": "ok"}); got != 1 {
		t.Fatalf("tool ok counter = %v", got)
	}
	if got := direct.HistogramCount(MTTM, Labels{"runner": "h"}); got != 1 {
		t.Fatalf("ttm histogram count = %v", got)
	}
}

func TestPrometheusExportShape(t *testing.T) {
	t.Parallel()
	r := NewAIOpsRegistry()
	Collect(r, Event{Type: EvToolCall, Tool: "syslog", Disposition: "ok", Latency: time.Minute})
	r.Set(MFleetUtil, nil, 0.75)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE aiops_tool_invocations_total counter",
		`aiops_tool_invocations_total{disposition="ok",tool="syslog"} 1`,
		`aiops_tool_latency_minutes_bucket{tool="syslog",le="1"} 1`,
		`aiops_tool_latency_minutes_bucket{tool="syslog",le="+Inf"} 1`,
		`aiops_tool_latency_minutes_count{tool="syslog"} 1`,
		"# TYPE aiops_fleet_utilization gauge",
		"aiops_fleet_utilization 0.75",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
	// Undeclared families with no series must not appear.
	if strings.Contains(out, MQuarantined) {
		t.Errorf("empty family exported:\n%s", out)
	}
}
