package embed

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file implements the embedding memo: Embed is a pure function of
// (embedder name, dimension, text), so results are shared process-wide,
// with each Store additionally keeping a private view that makes its
// hit/miss counters a deterministic property of the trial rather than of
// goroutine scheduling.
//
//   - The global memo is the compute saver: once any trial embeds a KB
//     entry or hypothesis string, every later trial reuses the vector.
//     Vectors are immutable after publication, so sharing the slices
//     across goroutines is safe.
//   - The per-Store local map is the accounting layer: a Store counts a
//     hit only when *it* has seen the text before. Whether the global
//     map happened to be warm (a race between parallel trials) never
//     shows in the aiops_cache_* metrics, keeping workers=1 vs N
//     byte-identical.
//
// KB.Bump() — the fleet learning loop publishing new knowledge — calls
// InvalidateCache, which advances the epoch; stores notice the epoch
// change and drop their local views lazily.

// embedCacheEnabled gates memoization so benchmarks and determinism
// tests can diff cached vs uncached behavior.
var embedCacheEnabled atomic.Bool

func init() { embedCacheEnabled.Store(true) }

// SetEmbedCacheEnabled toggles the embedding memo process-wide (the
// -nocache CLI flag and the cache-off determinism tests use it). Toggle
// between runs, not mid-run.
func SetEmbedCacheEnabled(on bool) { embedCacheEnabled.Store(on) }

// EmbedCacheEnabled reports whether the embedding memo is active.
func EmbedCacheEnabled() bool { return embedCacheEnabled.Load() }

type memoKey struct {
	name string
	dim  int
	text string
}

// memoEntry pairs a vector with its precomputed squared L2 norm so
// Cosine never re-accumulates it per comparison.
type memoEntry struct {
	vec  []float32
	norm float64
}

var (
	memoMu    sync.RWMutex
	memoVecs  = make(map[memoKey]memoEntry)
	memoEpoch atomic.Int64
)

// InvalidateCache evicts every memoized embedding. KB.Bump() calls it
// when the knowledge corpus changes so stale vectors cannot outlive the
// text they were computed from.
func InvalidateCache() {
	memoMu.Lock()
	memoVecs = make(map[memoKey]memoEntry)
	memoMu.Unlock()
	memoEpoch.Add(1)
}

// sqNorm returns the squared L2 norm accumulated exactly as Cosine
// accumulates its na/nb terms, so substituting it is bit-identical.
func sqNorm(v []float32) float64 {
	var sum float64
	for _, x := range v {
		sum += float64(x) * float64(x)
	}
	return sum
}

// embedText returns the (possibly memoized) embedding of text and its
// squared norm, maintaining the store-local hit/miss counters.
func (s *Store) embedText(text string) ([]float32, float64) {
	if !embedCacheEnabled.Load() {
		v := s.emb.Embed(text)
		return v, sqNorm(v)
	}
	if cur := memoEpoch.Load(); s.epoch != cur {
		s.local = nil
		s.epoch = cur
	}
	k := memoKey{name: s.emb.Name(), dim: s.emb.Dim(), text: text}
	if e, ok := s.local[k]; ok {
		s.hits++
		return e.vec, e.norm
	}
	s.misses++
	memoMu.RLock()
	e, ok := memoVecs[k]
	memoMu.RUnlock()
	if !ok {
		v := s.emb.Embed(text)
		e = memoEntry{vec: v, norm: sqNorm(v)}
		memoMu.Lock()
		if prior, again := memoVecs[k]; again {
			e = prior // keep the first published entry
		} else {
			memoVecs[k] = e
		}
		memoMu.Unlock()
	}
	if s.local == nil {
		s.local = make(map[memoKey]memoEntry)
	}
	s.local[k] = e
	return e.vec, e.norm
}

// CacheStats reports this store's embedding memo hit/miss counts. The
// counts are deterministic per store: they depend only on the sequence
// of texts the store embedded, never on what other trials warmed the
// shared memo with.
func (s *Store) CacheStats() (hits, misses int64) { return s.hits, s.misses }

// cosineWithNorms is Cosine with the squared norms precomputed. Because
// dot, na and nb accumulate independently in Cosine, passing separately
// accumulated norms yields bit-identical results.
func cosineWithNorms(a, b []float32, na, nb float64) float64 {
	if len(a) != len(b) {
		panic("embed: cosine of vectors with different dimensions")
	}
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
