package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/incident"
	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/risk"
	"repro/internal/tools"
)

// Helper wires the three modules together over a model, a toolbox and
// the risk assessors.
type Helper struct {
	Model llm.Model
	Tools *tools.Registry
	// Quant is the white-box what-if assessor; nil (or
	// Config.UseQuantitativeRisk=false) disables the quantitative view.
	Quant  *risk.Assessor
	Config Config
	// ActionFaults, when non-nil, simulates mitigation automation
	// breaking mid-plan: every executed action is vetted through it
	// first. The harness wires the fault injector in here.
	ActionFaults ActionFaults
	// Obs, when non-nil, receives every session event live (in addition
	// to the Outcome.Events buffer, which is always populated). Nil is a
	// true no-op: behaviour and output are byte-identical either way.
	Obs obs.Observer
}

// verifyLatency is the simulated cost of one verification pass (watching
// dashboards settle after a mitigation).
const verifyLatency = 2 * time.Minute

// fumbleLatency is the time wasted when the model proposes a tool that
// does not exist.
const fumbleLatency = 2 * time.Minute

// stabilityWindow is how long a cleared incident is watched before it is
// declared mitigated; it catches intermittent faults sampled in a quiet
// phase.
const stabilityWindow = 6 * time.Minute

// session carries one run's mutable state.
type session struct {
	h   *Helper
	w   *netsim.World
	inc *incident.Incident
	oce *OCE
	cfg Config

	ctx       llm.PromptContext
	chain     []string // append-only confirmation history
	attempted map[string]bool
	breaker   map[string]*breakerState // per-tool circuit breakers
	out       *Outcome
	round     int
	stalls    int
	repasses  int
}

// Run drives one incident end to end and returns the outcome. The
// helper observes the world only through tools; it never touches
// incident ground truth.
func (h *Helper) Run(w *netsim.World, inc *incident.Incident, oce *OCE) *Outcome {
	cfg := h.Config.withDefaults()
	s := &session{
		h: h, w: w, inc: inc, oce: oce, cfg: cfg,
		attempted: map[string]bool{},
		breaker:   map[string]*breakerState{},
		out:       &Outcome{},
	}
	s.ctx = llm.PromptContext{
		Symptoms: append([]string(nil), inc.Symptoms...),
		Bindings: map[string]string{},
		Rules:    cfg.InContextRules,
	}
	s.addEvidence("incident: " + inc.Title)
	for _, line := range strings.Split(inc.Summary, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			s.addEvidence(line)
		}
	}

	for s.round = 1; s.round <= cfg.MaxRounds; s.round++ {
		s.out.Rounds = s.round
		progressed, done := s.iterate()
		if done {
			s.out.TTM = w.Clock.Now() - inc.OpenedAt
			return s.out
		}
		if progressed {
			s.stalls = 0
		} else {
			s.stalls++
			if s.stalls >= cfg.StallLimit {
				if !s.retestPass() {
					break
				}
			}
		}
	}
	s.escalate("no further testable hypotheses")
	s.out.TTM = w.Clock.Now() - inc.OpenedAt
	return s.out
}

// iterate runs one hypothesize-approve-test-interpret(-mitigate) round.
// It reports whether the round made progress and whether the incident is
// closed (mitigated or terminally escalated).
func (s *session) iterate() (progressed, done bool) {
	// --- Module 1: hypothesis former -----------------------------------
	hyps := s.formHypotheses()
	if len(hyps) == 0 {
		if s.backtrack() {
			s.trace(StepNote, "dead end; backtracking to an earlier branch")
			return true, false
		}
		return false, false
	}

	// --- OCE approval ---------------------------------------------------
	chosen, ok := s.approveHypothesis(hyps)
	if !ok {
		return false, false
	}

	// --- Module 2: hypothesis tester -------------------------------------
	verdict := s.testHypothesis(chosen)
	s.emit(obs.Event{Type: obs.EvHypothesisTested, Hypothesis: chosen.Concept, Verdict: verdict.String()})
	switch verdict {
	case testSupported:
		s.confirm(chosen.Concept)
	case testInconclusive:
		// Quarantined or rerouted evidence: neither accept nor reject on
		// it. The hypothesis stays open for a re-test; no progress this
		// round, so the stall limit still bounds the investigation.
		return false, false
	default: // testNoTest, testUnsupported
		s.reject(chosen.Concept)
		return true, false
	}

	// --- Module 3: mitigation planner ------------------------------------
	if s.attempted[chosen.Concept] {
		return true, false
	}
	const maxPlanAttempts = 2
	for attempt := 0; attempt < maxPlanAttempts; attempt++ {
		plan, planned, retryable := s.planMitigation(chosen.Concept)
		if !planned {
			if retryable {
				continue
			}
			return true, false
		}
		switch s.executeAndVerify(chosen.Concept, plan) {
		case execMitigated:
			return true, true
		case execFailedToApply:
			continue // a fresh plan may bind correctly
		case execVerifyFailed:
			return true, false
		}
	}
	s.attempted[chosen.Concept] = true
	return true, false
}

// execStatus is the outcome of one plan execution attempt.
type execStatus int

const (
	execMitigated execStatus = iota
	execFailedToApply
	execVerifyFailed
)

// testOutcome is the hypothesis tester's verdict.
type testOutcome int

const (
	// testNoTest: no test could be run (no known test, tool missing or
	// failing). The hypothesis is rejected, as an OCE sets aside what
	// cannot be checked.
	testNoTest testOutcome = iota
	// testUnsupported: the test ran and the findings refute the
	// hypothesis.
	testUnsupported
	// testSupported: the test ran and the findings support the
	// hypothesis.
	testSupported
	// testInconclusive: the evidence is quarantined (degraded source) or
	// the test was rerouted past an open breaker — re-test later instead
	// of accepting or rejecting. Only resilient sessions produce this.
	testInconclusive
)

// String names the verdict for the event stream (hypothesis-tested).
func (t testOutcome) String() string {
	switch t {
	case testSupported:
		return "supported"
	case testUnsupported:
		return "unsupported"
	case testInconclusive:
		return "inconclusive"
	default:
		return "no-test"
	}
}

// complete sends a request, advances the clock by inference latency, and
// meters usage.
func (s *session) complete(req llm.Request) (llm.Response, error) {
	resp, err := s.h.Model.Complete(req)
	if err != nil {
		return resp, err
	}
	s.w.Clock.Advance(resp.Latency)
	p := llm.DefaultPricing()
	s.out.LLMUsage.Record(resp, p)
	s.emit(obs.Event{
		Type:             obs.EvLLMCall,
		PromptTokens:     resp.Usage.PromptTokens,
		CompletionTokens: resp.Usage.CompletionTokens,
		Latency:          resp.Latency,
		CostUSD: float64(resp.Usage.PromptTokens)/1000*p.PromptPer1K +
			float64(resp.Usage.CompletionTokens)/1000*p.CompletionPer1K,
	})
	return resp, nil
}

func (s *session) formHypotheses() []llm.Hypothesis {
	resp, err := s.complete(llm.BuildFormHypotheses(s.ctx, s.cfg.Beam))
	if err != nil {
		s.trace(StepNote, "model error: "+err.Error())
		return nil
	}
	hyps := llm.ParseHypotheses(resp.Content)
	var names []string
	for _, h := range hyps {
		names = append(names, fmt.Sprintf("%s(%.2f)", h.Concept, h.Confidence))
	}
	s.trace(StepHypotheses, strings.Join(names, ", "))
	// The model's explicit "I have nothing" marker is not a hypothesis.
	out := hyps[:0]
	for _, h := range hyps {
		if h.Concept != "escalation_needed" {
			out = append(out, h)
		}
	}
	for _, h := range out {
		s.emit(obs.Event{Type: obs.EvHypothesis, Hypothesis: h.Concept, Confidence: h.Confidence})
	}
	return out
}

// approveHypothesis walks the ranked list until the OCE approves one.
func (s *session) approveHypothesis(hyps []llm.Hypothesis) (llm.Hypothesis, bool) {
	for _, h := range hyps {
		pre := s.cfg.PreApproveConfidence > 0 && h.Confidence >= s.cfg.PreApproveConfidence
		s.w.Clock.Advance(s.oce.approvalDelay(pre))
		if s.oce.VetoesHypothesis(h.Concept) {
			s.trace(StepVeto, fmt.Sprintf("OCE vetoed %q: not a known failure mode", h.Concept))
			s.reject(h.Concept)
			continue
		}
		mode := "approved"
		if pre {
			mode = "pre-approved"
		}
		s.trace(StepApproval, fmt.Sprintf("%s %s (confidence %.2f): %s", mode, h.Concept, h.Confidence, h.Reason))
		return h, true
	}
	return llm.Hypothesis{}, false
}

// testHypothesis runs the tester module: plan the test, invoke the tool
// (through the resilient path when configured), interpret the output
// (with OCE oversight).
func (s *session) testHypothesis(h llm.Hypothesis) testOutcome {
	resp, err := s.complete(llm.BuildPlanTest(s.ctx, h.Concept))
	if err != nil {
		s.trace(StepNote, "model error: "+err.Error())
		return testNoTest
	}
	tp, ok := llm.ParseTestPlan(resp.Content)
	if !ok {
		s.trace(StepTestPlanned, fmt.Sprintf("no known test for %s", h.Concept))
		return testNoTest
	}
	s.trace(StepTestPlanned, fmt.Sprintf("%s via %s: %s", h.Concept, tp.Tool, tp.Reason))

	tool, ok := s.h.Tools.Get(tp.Tool)
	if !ok {
		// Hallucinated tooling: the OCE fumbles looking for it.
		s.w.Clock.Advance(fumbleLatency)
		s.addEvidence(fmt.Sprintf("tool %q does not exist in the toolbox", tp.Tool))
		s.trace(StepNote, fmt.Sprintf("tool %q not found", tp.Tool))
		return testNoTest
	}
	if s.breakerOpen(tp.Tool) {
		// The tool has been failing repeatedly; don't burn another
		// deadline on it — cross-check its monitor instead.
		s.rerouteTest(tp.Tool)
		return testInconclusive
	}
	res, err := s.invokeTool(tool, tp.Args)
	if err != nil {
		s.addEvidence(fmt.Sprintf("tool %s failed: %v", tp.Tool, err))
		s.trace(StepToolInvoked, fmt.Sprintf("%s failed: %v", tp.Tool, err))
		if s.breakerOpen(tp.Tool) {
			// The last failure tripped the breaker: get a second opinion
			// on the monitor before drawing any conclusion.
			s.rerouteTest(tp.Tool)
			return testInconclusive
		}
		return testNoTest
	}
	s.trace(StepToolInvoked, fmt.Sprintf("%s -> %d findings", tp.Tool, len(res.Findings)))
	if s.cfg.Resilience.QuarantineDegraded && res.Degraded {
		// Low-trust evidence: record it (clearly labeled) but refuse to
		// accept or reject the hypothesis on it.
		for _, f := range res.Findings {
			s.addEvidence(fmt.Sprintf("[degraded:%s] %s: %s", res.Source, tp.Tool, f))
		}
		s.out.Quarantined++
		s.trace(StepQuarantine, fmt.Sprintf("%s output flagged %s; verdict on %s inconclusive, re-test", tp.Tool, res.Source, h.Concept))
		return testInconclusive
	}
	for _, f := range res.Findings {
		s.addEvidence(tp.Tool + ": " + f)
	}
	for k, v := range res.Bindings {
		s.ctx.Bindings[k] = v
	}

	// Interpretation, with optional self-consistency voting and the OCE
	// double-checking the reading.
	v, ok := s.interpret(h.Concept, tp.Tool, res.Findings)
	if !ok {
		return testNoTest
	}
	truthful := findingsSupport(res.Findings, h.Concept)
	if v.Supported != truthful && s.oce.CatchesMisreading() {
		s.trace(StepOCECorrected, fmt.Sprintf("OCE overruled model's reading of %s output (model said supported=%v)", tp.Tool, v.Supported))
		v.Supported = truthful
	}
	s.trace(StepInterpreted, fmt.Sprintf("%s supported=%v (%.2f): %s", h.Concept, v.Supported, v.Confidence, v.Reason))
	if v.Supported {
		return testSupported
	}
	return testUnsupported
}

// invokeTool is the single tool-invocation path. With resilience
// disabled it is exactly the historical sequence — charge latency,
// invoke, count — so naive sessions stay byte-identical. With resilience
// enabled, failures are retried with capped exponential backoff on the
// simulated clock (wasted time shows up in TTM) and feed the per-tool
// circuit breaker.
func (s *session) invokeTool(tool tools.Tool, args map[string]string) (tools.Result, error) {
	s.w.Clock.Advance(tool.Latency())
	res, err := tool.Invoke(s.w, args)
	s.out.ToolCalls++
	s.emitToolCall(tool.Name(), tool.Latency(), res, err)
	r := s.cfg.Resilience
	if !r.Enabled() {
		return res, err
	}
	for attempt := 0; err != nil && attempt < r.MaxRetries; attempt++ {
		s.recordToolFailure(tool.Name())
		if s.breakerOpen(tool.Name()) {
			return res, err
		}
		wait := r.backoff(attempt)
		s.w.Clock.Advance(wait)
		s.out.ToolRetries++
		s.trace(StepRetry, fmt.Sprintf("%s failed (%v); retry %d/%d after %s backoff", tool.Name(), err, attempt+1, r.MaxRetries, wait))
		s.w.Clock.Advance(tool.Latency())
		res, err = tool.Invoke(s.w, args)
		s.out.ToolCalls++
		s.emitToolCall(tool.Name(), tool.Latency(), res, err)
	}
	if err != nil {
		s.recordToolFailure(tool.Name())
	} else {
		if b := s.breaker[tool.Name()]; b != nil {
			b.consecutiveFails = 0
		}
	}
	return res, err
}

// recordToolFailure feeds the per-tool circuit breaker; crossing the
// threshold opens it for the cooldown window.
func (s *session) recordToolFailure(name string) {
	r := s.cfg.Resilience
	if r.BreakerThreshold <= 0 {
		return
	}
	b := s.breaker[name]
	if b == nil {
		b = &breakerState{}
		s.breaker[name] = b
	}
	b.consecutiveFails++
	if b.consecutiveFails >= r.BreakerThreshold && !s.breakerOpen(name) {
		b.openUntil = s.w.Clock.Now() + r.cooldown()
		b.consecutiveFails = 0
		s.out.BreakerTrips++
		s.trace(StepBreaker, fmt.Sprintf("circuit breaker for %s opened for %s after repeated failures", name, r.cooldown()))
	}
}

// breakerOpen reports whether the tool's circuit breaker is currently
// open on the simulated clock.
func (s *session) breakerOpen(name string) bool {
	b := s.breaker[name]
	return b != nil && s.w.Clock.Now() < b.openUntil
}

// rerouteTest is the open-breaker fallback: instead of querying a tool
// that keeps failing, cross-check its monitor so the session learns
// whether the telemetry source itself is broken. The cross-check's
// findings enter the evidence stream; the hypothesis verdict stays
// inconclusive.
func (s *session) rerouteTest(broken string) {
	s.out.Rerouted++
	cc, ok := s.h.Tools.Get(kb.ToolMonitorCheck)
	if !ok {
		s.trace(StepBreaker, fmt.Sprintf("breaker open for %s and no %s tool to reroute to", broken, kb.ToolMonitorCheck))
		return
	}
	s.trace(StepBreaker, fmt.Sprintf("breaker open for %s; rerouting to %s", broken, kb.ToolMonitorCheck))
	s.w.Clock.Advance(cc.Latency())
	res, err := cc.Invoke(s.w, map[string]string{"monitor": broken})
	s.out.ToolCalls++
	s.emitToolCall(kb.ToolMonitorCheck, cc.Latency(), res, err)
	if err != nil {
		s.addEvidence(fmt.Sprintf("tool %s failed: %v", kb.ToolMonitorCheck, err))
		s.trace(StepToolInvoked, fmt.Sprintf("%s failed: %v", kb.ToolMonitorCheck, err))
		return
	}
	s.trace(StepToolInvoked, fmt.Sprintf("%s -> %d findings", kb.ToolMonitorCheck, len(res.Findings)))
	for _, f := range res.Findings {
		s.addEvidence(kb.ToolMonitorCheck + ": " + f)
	}
}

// interpret asks the model whether the findings support the hypothesis,
// sampling SelfConsistency times and majority-voting. Ties break toward
// "unsupported" (the conservative reading).
func (s *session) interpret(concept, tool string, findings []string) (llm.Verdict, bool) {
	votes := s.cfg.SelfConsistency
	if votes < 1 {
		votes = 1
	}
	var last llm.Verdict
	yes, valid := 0, 0
	for i := 0; i < votes; i++ {
		resp, err := s.complete(llm.BuildInterpretTest(s.ctx, concept, tool, findings))
		if err != nil {
			continue
		}
		v, ok := llm.ParseVerdict(resp.Content)
		if !ok {
			continue
		}
		valid++
		last = v
		if v.Supported {
			yes++
		}
	}
	if valid == 0 {
		return llm.Verdict{}, false
	}
	last.Supported = yes*2 > valid
	if votes > 1 {
		s.trace(StepNote, fmt.Sprintf("self-consistency: %d/%d votes supported", yes, valid))
	}
	return last, true
}

// findingsSupport is the literal reading an attentive OCE applies when
// double-checking the model: does the tool output assert the concept?
func findingsSupport(findings []string, concept string) bool {
	for _, f := range findings {
		if strings.Contains(f, concept+"=true") {
			return true
		}
	}
	return false
}

// planMitigation asks the model for a plan and gates it through both
// risk views. planned=false means investigation should continue;
// retryable=true marks failures caused by a malformed plan (hallucinated
// target) rather than by the cause being unmitigable — the caller may
// re-ask the model once.
func (s *session) planMitigation(cause string) (plan mitigation.Plan, planned, retryable bool) {
	resp, err := s.complete(llm.BuildPlanMitigation(s.ctx, cause))
	if err != nil {
		return mitigation.Plan{}, false, false
	}
	proposed := llm.ParseActions(resp.Content)
	if len(proposed) == 0 {
		return mitigation.Plan{}, false, false
	}
	escalateOnly := true
	for _, pa := range proposed {
		if strings.HasPrefix(pa.Action.Target, "$") {
			// Unbound placeholder: the planner lacks a concrete target;
			// keep investigating instead of guessing.
			s.trace(StepPlanRejected, fmt.Sprintf("plan for %s has unbound target %s", cause, pa.Action.Target))
			return mitigation.Plan{}, false, false
		}
		if pa.Action.Kind != mitigation.Escalate {
			escalateOnly = false
		}
		plan.Actions = append(plan.Actions, pa.Action)
		plan.Rationale = pa.Reason
	}
	if escalateOnly {
		// The model knows no mitigation; treat as no plan so the chain
		// can go deeper before the stall limit forces escalation.
		s.trace(StepPlanProposed, fmt.Sprintf("model has no mitigation for %s", cause))
		s.attempted[cause] = true
		return mitigation.Plan{}, false, false
	}
	s.trace(StepPlanProposed, fmt.Sprintf("for %s: %s", cause, plan))

	// Risk assessment: qualitative (model) and quantitative (what-if).
	comb := risk.Combined{}
	if s.cfg.UseQualitativeRisk {
		rresp, err := s.complete(llm.BuildAssessRisk(s.ctx, plan.Actions))
		if err == nil {
			if op, ok := llm.ParseRiskOpinion(rresp.Content); ok {
				comb.Qualitative = op
			}
		}
	}
	if s.cfg.UseQuantitativeRisk && s.h.Quant != nil {
		comb.Quantitative = s.h.Quant.AssessPlan(s.w, plan)
	}
	if comb.Qualitative.Reason != "" || comb.Quantitative != nil {
		s.trace(StepRiskAssessed, comb.Narrative())
	}
	if !comb.Acceptable(s.cfg.RiskBudget) {
		s.trace(StepPlanRejected, fmt.Sprintf("risk %.2f over budget %.2f (or hard veto)", comb.Score(), s.cfg.RiskBudget))
		s.addEvidence(fmt.Sprintf("mitigation for %s rejected by risk assessment: %s", cause, comb.Narrative()))
		if comb.Quantitative != nil && comb.Quantitative.ExecError != nil {
			// The plan itself is broken (e.g. hallucinated target), not
			// the cause: worth one fresh planning attempt.
			return mitigation.Plan{}, false, true
		}
		s.attempted[cause] = true
		return mitigation.Plan{}, false, false
	}
	if comb.Quantitative != nil && comb.Quantitative.WorstLatencyRatio > 1.5 {
		s.trace(StepPlanRejected, fmt.Sprintf("what-if predicts residual latency %.1fx baseline: plan insufficient", comb.Quantitative.WorstLatencyRatio))
		s.attempted[cause] = true
		s.addEvidence(fmt.Sprintf("what-if: mitigating %s alone leaves latency degraded", cause))
		return mitigation.Plan{}, false, false
	}
	if comb.Quantitative != nil && comb.Quantitative.WorstAfter > incidentLossGate {
		// The what-if engine predicts residual impact: at best a partial
		// mitigation. Keep digging for the real cause instead of
		// spending an execution round (risk-informed search, §2).
		s.trace(StepPlanRejected, fmt.Sprintf("what-if predicts residual loss %.1f%%: plan insufficient", comb.Quantitative.WorstAfter*100))
		s.attempted[cause] = true
		s.addEvidence(fmt.Sprintf("what-if: mitigating %s alone leaves residual impact", cause))
		return mitigation.Plan{}, false, false
	}

	// OCE pulls the trigger (§4.3: only the OCE starts mitigation).
	pre := s.cfg.PreApproveRisk > 0 && comb.Score() <= s.cfg.PreApproveRisk && comb.Quantitative != nil && !comb.Quantitative.WouldCauseIncident
	s.w.Clock.Advance(s.oce.approvalDelay(pre))
	return plan, true, false
}

// incidentLossGate mirrors the alert engine's service-loss threshold.
const incidentLossGate = 0.01

// executeAndVerify applies the plan and closes the loop with
// verification.
func (s *session) executeAndVerify(cause string, plan mitigation.Plan) execStatus {
	before := worstServiceLoss(s.w)
	ex := s.executor("oce")
	if err := ex.ExecutePlan(plan); err != nil {
		s.out.PlanErrors++
		s.addEvidence(fmt.Sprintf("executing plan failed: %v", err))
		s.trace(StepExecuted, fmt.Sprintf("plan failed mid-execution: %v", err))
		return execFailedToApply
	}
	s.out.Applied.Actions = append(s.out.Applied.Actions, plan.Actions...)
	for _, a := range plan.Actions {
		s.emit(obs.Event{Type: obs.EvMitigation, Action: a.String()})
	}
	s.trace(StepExecuted, plan.String())

	s.w.Clock.Advance(verifyLatency)
	v := &mitigation.Verifier{World: s.w}
	if v.Mitigated() {
		// Stability check: watch the dashboards a little longer before
		// declaring victory, so an intermittent fault in a quiet window
		// cannot close the incident prematurely.
		s.w.Clock.Advance(stabilityWindow)
		if v.Mitigated() {
			s.out.Mitigated = true
			s.trace(StepVerified, "impact cleared and stable; incident mitigated")
			return execMitigated
		}
		s.trace(StepVerified, "impact cleared momentarily but recurred during the stability window")
	}
	s.out.WrongMitigations++
	s.attempted[cause] = true
	after := worstServiceLoss(s.w)
	if after > before+0.01 {
		s.out.SecondaryImpact++
		s.addEvidence(fmt.Sprintf("mitigation for %s made things worse (worst loss %.1f%% -> %.1f%%)", cause, before*100, after*100))
	} else {
		s.addEvidence(fmt.Sprintf("mitigation for %s executed but impact persists", cause))
	}
	s.trace(StepVerified, fmt.Sprintf("impact persists (worst loss %.1f%% -> %.1f%%)", before*100, after*100))
	return execVerifyFailed
}

func worstServiceLoss(w *netsim.World) float64 {
	rep := w.Recompute()
	worst := 0.0
	for _, ss := range rep.ServiceStats {
		if ss.LossRate > worst {
			worst = ss.LossRate
		}
	}
	return worst
}

// backtrack handles a dead end: the newest confirmed concept has no
// remaining unexplored causes, so park it (it stays excluded from
// re-proposal via the rejected list, though it remains in the outcome's
// chain) and let the former chain from the previous confirmation — or
// from the symptoms when nothing else is confirmed.
func (s *session) backtrack() bool {
	n := len(s.ctx.Confirmed)
	if n == 0 {
		return false
	}
	last := s.ctx.Confirmed[n-1]
	s.ctx.Confirmed = s.ctx.Confirmed[:n-1]
	s.reject(last)
	return true
}

// retestPass handles non-stationary incidents: when every hypothesis has
// been rejected but the impact is still live, operators go around again —
// a signal sampled in a quiet window may light up on the second look.
// One re-test pass is allowed (bounded by MaxRounds regardless).
func (s *session) retestPass() bool {
	if s.repasses >= 1 || len(s.ctx.Rejected) == 0 {
		return false
	}
	// "Is the impact really gone?" needs the same stability discipline
	// as post-mitigation verification: an intermittent fault in a quiet
	// window must not end the investigation.
	v := &mitigation.Verifier{World: s.w}
	if v.Mitigated() {
		s.w.Clock.Advance(stabilityWindow)
		if v.Mitigated() {
			return false // genuinely clean; nothing live to chase
		}
	}
	s.repasses++
	s.stalls = 0
	s.ctx.Rejected = nil
	s.trace(StepNote, "impact persists with all hypotheses rejected; re-testing from the top (signals may be intermittent)")
	return true
}

func (s *session) confirm(concept string) {
	s.ctx.Confirmed = append(s.ctx.Confirmed, concept)
	s.chain = append(s.chain, concept)
	s.out.Confirmed = append([]string(nil), s.chain...)
}

func (s *session) reject(concept string) {
	for _, r := range s.ctx.Rejected {
		if r == concept {
			return
		}
	}
	s.ctx.Rejected = append(s.ctx.Rejected, concept)
}

func (s *session) escalate(why string) {
	ex := s.executor("helper")
	_ = ex.Execute(mitigation.Action{Kind: mitigation.Escalate, Target: "SWAT"})
	s.out.Escalated = true
	s.trace(StepEscalated, why)
}

// executor builds a clocked executor for this session, with mitigation
// automation faults wired in when the harness injects them.
func (s *session) executor(actor string) *mitigation.Executor {
	ex := &mitigation.Executor{World: s.w, Clocked: true, Actor: actor}
	if s.h.ActionFaults != nil {
		ex.FailOn = s.h.ActionFaults.ActionError
	}
	return ex
}

func (s *session) addEvidence(line string) {
	s.ctx.Evidence = append(s.ctx.Evidence, line)
	if max := s.cfg.EvidenceWindow; len(s.ctx.Evidence) > max {
		s.ctx.Evidence = s.ctx.Evidence[len(s.ctx.Evidence)-max:]
	}
}

func (s *session) trace(kind StepKind, detail string) {
	s.out.Trace = append(s.out.Trace, TraceStep{
		At: s.w.Clock.Now(), Round: s.round, Kind: kind, Detail: detail,
	})
	s.emit(obs.Event{Type: obs.Type(kind), Detail: detail})
}

// emit records one structured event: simulated-clock timestamp and round
// are stamped, the event joins the outcome's stream, and a configured
// observer sees it live. This is the single choke point through which
// every session observation flows.
func (s *session) emit(e obs.Event) {
	e.At = s.w.Clock.Now()
	if e.Round == 0 {
		e.Round = s.round
	}
	s.out.Events = append(s.out.Events, e)
	obs.Emit(s.h.Obs, e)
}

// emitToolCall classifies one invocation attempt's disposition for the
// event stream.
func (s *session) emitToolCall(name string, latency time.Duration, res tools.Result, err error) {
	disposition := "ok"
	switch {
	case err != nil:
		disposition = "error"
	case res.Degraded:
		disposition = "degraded"
	}
	s.emit(obs.Event{Type: obs.EvToolCall, Tool: name, Disposition: disposition, Latency: latency})
}

// FormatTrace renders a trace for CLI display.
//
// Deprecated: render Outcome.Events via NewSessionTrace instead; this
// remains for the legacy []TraceStep audit log and produces the same
// bytes.
func FormatTrace(steps []TraceStep) string {
	var b strings.Builder
	for _, st := range steps {
		fmt.Fprintf(&b, "[%7s r%02d] %-14s %s\n", formatDur(st.At), st.Round, st.Kind, st.Detail)
	}
	return b.String()
}

func formatDur(d time.Duration) string {
	return d.Truncate(time.Second).String()
}
