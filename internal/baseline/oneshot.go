// Package baseline implements the comparison points the paper argues
// against or mentions:
//
//   - OneShot: the prior-work predictor ([1,13] in the paper) that maps
//     the predefined incident information (title, summary, digest) to a
//     root cause and mitigation in a single shot via retrieval over the
//     incident history — no iteration, no feedback loop.
//   - TSG automation vs. hard-coded script: the §3 case study showing
//     LLM-automating a well-structured troubleshooting guide does not
//     amortize against a script.
package baseline

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/embed"
	"repro/internal/incident"
	"repro/internal/kb"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/tools"
)

// Prediction is the one-shot output.
type Prediction struct {
	RootCause  string
	Confidence float64
	Template   []mitigation.Action // mitigation templates for the root cause
	Neighbors  []embed.Hit
}

// OneShot is the retrieval-based one-shot predictor: embed the incident
// text, find the nearest resolved incidents, vote on the root cause, and
// emit that cause's standard mitigation.
type OneShot struct {
	Store   *embed.Store
	History *kb.History
	KBase   *kb.KB
	K       int // neighbors consulted (default 5)
}

// Train builds a one-shot predictor over the history with the given
// embedder.
func Train(hist *kb.History, kbase *kb.KB, embedder embed.Embedder) *OneShot {
	store := embed.NewStore(embedder)
	for _, r := range hist.All() {
		store.Add(r.ID, r.Text()+" symptoms: "+strings.Join(r.Symptoms, " "))
	}
	return &OneShot{Store: store, History: hist, KBase: kbase, K: 5}
}

// Predict maps the incident report to a root cause and mitigation
// template. ok is false when the history is empty.
func (o *OneShot) Predict(inc *incident.Incident) (Prediction, bool) {
	if o.Store.Len() == 0 {
		return Prediction{}, false
	}
	k := o.K
	if k <= 0 {
		k = 5
	}
	hits := o.Store.SearchANN(inc.Title+" "+inc.Summary+" symptoms: "+strings.Join(inc.Symptoms, " "), k)
	votes := map[string]float64{}
	for _, h := range hits {
		rec, ok := o.History.ByID(h.ID)
		if !ok || rec.RootCause == "" {
			continue
		}
		votes[rec.RootCause] += h.Score
	}
	if len(votes) == 0 {
		return Prediction{}, false
	}
	causes := make([]string, 0, len(votes))
	for c := range votes {
		causes = append(causes, c)
	}
	sort.Slice(causes, func(i, j int) bool {
		if votes[causes[i]] != votes[causes[j]] {
			return votes[causes[i]] > votes[causes[j]]
		}
		return causes[i] < causes[j]
	})
	best := causes[0]
	var total float64
	for _, v := range votes {
		total += v
	}
	return Prediction{
		RootCause:  best,
		Confidence: votes[best] / total,
		Template:   o.KBase.Mitigations(best),
		Neighbors:  hits,
	}, true
}

// Outcome mirrors the helper outcome for the evaluation harness.
type Outcome struct {
	Predicted        string
	Mitigated        bool
	Escalated        bool
	TTM              time.Duration
	Applied          mitigation.Plan
	WrongMitigations int
	SecondaryImpact  int
}

// Timing for the one-shot workflow: the prediction is nearly free, but
// binding, execution and verification still cost real time.
const (
	predictLatency = 1 * time.Minute
	verifyLatency  = 2 * time.Minute
)

// Execute runs the one-shot workflow: predict once, mechanically bind
// the template's placeholders with a single diagnostic query (the
// predicted cause's standard check), execute, verify once. There is no
// feedback loop: a failed verification ends in escalation — exactly the
// restriction the paper's iterative-prediction principle targets.
func (o *OneShot) Execute(w *netsim.World, inc *incident.Incident, reg *tools.Registry) *Outcome {
	out := &Outcome{}
	w.Clock.Advance(predictLatency)
	pred, ok := o.Predict(inc)
	if !ok || len(pred.Template) == 0 {
		o.escalate(w, out, inc)
		return out
	}
	out.Predicted = pred.RootCause

	// One mechanical binding pass via the predicted cause's check.
	bindings := map[string]string{}
	if c, found := o.KBase.ConceptByID(pred.RootCause); found && c.TestTool != "" {
		if tool, have := reg.Get(c.TestTool); have {
			w.Clock.Advance(tool.Latency())
			if res, err := tool.Invoke(w, nil); err == nil {
				for k, v := range res.Bindings {
					bindings[k] = v
				}
			}
		}
	}

	plan := mitigation.Plan{Rationale: fmt.Sprintf("one-shot: nearest incidents say %s", pred.RootCause)}
	for _, t := range pred.Template {
		targets := []string{t.Target}
		if bound, okb := bindings[t.Target]; okb {
			targets = strings.Split(bound, ",")
		}
		for _, target := range targets {
			if strings.HasPrefix(target, "$") {
				// Unbound target: the one-shot has nothing to aim at.
				o.escalate(w, out, inc)
				return out
			}
			param := t.Param
			if bound, okb := bindings[param]; okb {
				param = bound
			}
			plan.Actions = append(plan.Actions, mitigation.Action{Kind: t.Kind, Target: target, Param: param})
		}
	}

	before := worstServiceLoss(w)
	ex := &mitigation.Executor{World: w, Clocked: true, Actor: "one-shot"}
	if err := ex.ExecutePlan(plan); err != nil {
		o.escalate(w, out, inc)
		return out
	}
	out.Applied = plan
	w.Clock.Advance(verifyLatency)
	v := &mitigation.Verifier{World: w}
	if v.Mitigated() {
		out.Mitigated = true
		out.TTM = w.Clock.Now() - inc.OpenedAt
		return out
	}
	out.WrongMitigations++
	if worstServiceLoss(w) > before+0.01 {
		out.SecondaryImpact++
	}
	o.escalate(w, out, inc)
	return out
}

func (o *OneShot) escalate(w *netsim.World, out *Outcome, inc *incident.Incident) {
	ex := &mitigation.Executor{World: w, Clocked: true, Actor: "one-shot"}
	_ = ex.Execute(mitigation.Action{Kind: mitigation.Escalate, Target: "SWAT"})
	out.Escalated = true
	out.TTM = w.Clock.Now() - inc.OpenedAt
}

func worstServiceLoss(w *netsim.World) float64 {
	rep := w.Recompute()
	worst := 0.0
	for _, ss := range rep.ServiceStats {
		if ss.LossRate > worst {
			worst = ss.LossRate
		}
	}
	return worst
}
