package netsim

import "fmt"

// FatTreeConfig parameterizes a canonical k-ary fat-tree (Al-Fares et
// al.): k pods, each with k/2 edge and k/2 aggregation switches, and
// (k/2)^2 core switches; every edge switch serves k/2 hosts. All
// switch-to-switch links share one capacity, giving full bisection
// bandwidth under ECMP.
type FatTreeConfig struct {
	Region       string
	K            int     // pod parameter; must be even and >= 2
	LinkGbps     float64 // switch-to-switch capacity
	HostLinkGbps float64
}

// DefaultFatTreeConfig returns a k=4 fat-tree (16 hosts, 20 switches).
func DefaultFatTreeConfig(region string) FatTreeConfig {
	return FatTreeConfig{Region: region, K: 4, LinkGbps: 40, HostLinkGbps: 10}
}

// FatTree records the built layout.
type FatTree struct {
	Cores []NodeID
	Aggs  []NodeID // pod-major order
	Edges []NodeID // pod-major order
	Hosts []NodeID
}

// BuildFatTree adds a k-ary fat-tree to the network and returns its
// layout. Node IDs follow "<region>-ft-core-<i>", "<region>-ft-agg-p<p>-<i>",
// "<region>-ft-edge-p<p>-<i>", "<region>-ft-host-p<p>-e<i>-h<j>".
func BuildFatTree(n *Network, cfg FatTreeConfig) *FatTree {
	if cfg.K < 2 || cfg.K%2 != 0 {
		panic(fmt.Sprintf("netsim: fat-tree k must be even and >= 2, got %d", cfg.K))
	}
	half := cfg.K / 2
	ft := &FatTree{}

	for c := 0; c < half*half; c++ {
		id := NodeID(fmt.Sprintf("%s-ft-core-%d", cfg.Region, c))
		n.AddNode(Node{ID: id, Kind: KindSpine, Region: cfg.Region, Pod: -1, OSVersion: "sw-os-4.2"})
		ft.Cores = append(ft.Cores, id)
	}
	for p := 0; p < cfg.K; p++ {
		var podAggs []NodeID
		for a := 0; a < half; a++ {
			id := NodeID(fmt.Sprintf("%s-ft-agg-p%d-%d", cfg.Region, p, a))
			n.AddNode(Node{ID: id, Kind: KindAgg, Region: cfg.Region, Pod: p, OSVersion: "sw-os-4.2"})
			podAggs = append(podAggs, id)
			ft.Aggs = append(ft.Aggs, id)
			// Agg a connects to core group [a*half, (a+1)*half).
			for c := a * half; c < (a+1)*half; c++ {
				n.AddLink(id, ft.Cores[c], cfg.LinkGbps, 0.05)
			}
		}
		for e := 0; e < half; e++ {
			eid := NodeID(fmt.Sprintf("%s-ft-edge-p%d-%d", cfg.Region, p, e))
			n.AddNode(Node{ID: eid, Kind: KindToR, Region: cfg.Region, Pod: p, OSVersion: "sw-os-4.1"})
			ft.Edges = append(ft.Edges, eid)
			for _, aid := range podAggs {
				n.AddLink(eid, aid, cfg.LinkGbps, 0.02)
			}
			for h := 0; h < half; h++ {
				hid := NodeID(fmt.Sprintf("%s-ft-host-p%d-e%d-h%d", cfg.Region, p, e, h))
				n.AddNode(Node{ID: hid, Kind: KindHost, Region: cfg.Region, Pod: p})
				n.AddLink(hid, eid, cfg.HostLinkGbps, 0.01)
				ft.Hosts = append(ft.Hosts, hid)
			}
		}
	}
	return ft
}

// NumHosts returns the host count of a k-ary fat-tree: k^3/4.
func (f *FatTree) NumHosts() int { return len(f.Hosts) }
