package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/scenarios"
	"repro/internal/tools"
)

// ObservedRunner is a Runner that can emit the structured session event
// stream while it works. All three harness runners implement it; Run is
// RunObserved with a nil observer, so un-instrumented callers are
// unaffected.
type ObservedRunner interface {
	Runner
	RunObserved(in *scenarios.Instance, seed int64, o obs.Observer) Result
}

// emitStart opens a session in the event stream: one event carrying the
// scenario, the trial seed, and the simulated clock at hand-off.
func emitStart(o obs.Observer, in *scenarios.Instance, seed int64) {
	obs.Emit(o, obs.Event{
		Type: obs.EvSessionStart, At: in.World.Clock.Now(),
		Scenario: in.Scenario.Name(), Seed: seed,
	})
}

// emitEnd closes a session with the outcome summary the metrics layer
// aggregates (§3 bookkeeping: TTM, mistakes, usage, dollars). TTM is the
// penalized value — unmitigated incidents carry the specialist hand-off
// penalty — matching how every evaluation statistic treats it.
func emitEnd(o obs.Observer, in *scenarios.Instance, res Result) {
	obs.Emit(o, obs.Event{
		Type: obs.EvSessionEnd, At: in.World.Clock.Now(),
		Scenario: in.Scenario.Name(),
		Outcome: &obs.SessionOutcome{
			Mitigated:   res.Mitigated,
			Escalated:   res.Escalated,
			Correct:     res.Correct,
			TTMMinutes:  res.PenalizedTTM().Minutes(),
			Rounds:      res.Rounds,
			ToolCalls:   res.ToolCalls,
			LLMCalls:    res.LLMCalls,
			Tokens:      res.Tokens,
			Wrong:       res.Wrong,
			Secondary:   res.Secondary,
			PlanErrors:  res.PlanErrors,
			Retries:     res.Retries,
			Quarantined: res.Quarantined,
			CostUSD:     res.CostUSD,
		},
	})
}

// emitCacheStats reports the session's fast-path cache counters: the
// world's route-DAG cache (shared across its what-if clones) and the
// vector store's embedding memo. Both counts are deterministic per trial
// — they depend only on the session's own lookup sequence — so the
// resulting events and aiops_cache_* aggregates stay byte-identical at
// every worker count. With caches disabled the counts are zero and the
// metrics layer emits no series.
func emitCacheStats(o obs.Observer, in *scenarios.Instance, store *embed.Store) {
	if o == nil {
		return
	}
	rh, rm := in.World.Net.RouteCacheStats()
	obs.Emit(o, obs.Event{
		Type: obs.EvCacheStats, At: in.World.Clock.Now(),
		Scenario: in.Scenario.Name(),
		Cache:    "route", CacheHits: rh, CacheMisses: rm,
	})
	eh, em := store.CacheStats()
	obs.Emit(o, obs.Event{
		Type: obs.EvCacheStats, At: in.World.Clock.Now(),
		Scenario: in.Scenario.Name(),
		Cache:    "embed", CacheHits: eh, CacheMisses: em,
	})
}

// observedTool decorates a tool so every invocation lands in the event
// stream with its disposition. The harness wraps the one-shot and
// control toolboxes this way (outermost, after fault injection, so
// injected faults are visible); the iterative helper's core session
// emits richer tool events itself — including retries and breaker trips
// — so its registry is left unwrapped to avoid double counting.
type observedTool struct {
	tools.Tool
	o obs.Observer
}

// Invoke implements tools.Tool.
func (t *observedTool) Invoke(w *netsim.World, args map[string]string) (tools.Result, error) {
	res, err := t.Tool.Invoke(w, args)
	disposition := "ok"
	switch {
	case err != nil:
		disposition = "error"
	case res.Degraded:
		disposition = "degraded"
	}
	obs.Emit(t.o, obs.Event{
		Type: obs.EvToolCall, At: w.Clock.Now(),
		Tool: t.Name(), Disposition: disposition, Latency: t.Latency(),
	})
	return res, err
}

// observeRegistry rebuilds a registry with every tool wrapped for event
// emission, preserving team ownership. A nil observer returns the
// registry untouched.
func observeRegistry(reg *tools.Registry, o obs.Observer) *tools.Registry {
	if o == nil {
		return reg
	}
	out := tools.NewRegistry()
	for _, name := range reg.Names() {
		t, _ := reg.Get(name)
		if err := out.Register(reg.Owner(name), &observedTool{Tool: t, o: o}); err != nil {
			// Re-registering the source's own (name, team) pairs into a
			// fresh registry cannot conflict.
			panic(err)
		}
	}
	return out
}

// BuildAndRunObserved is BuildAndRun with an observer: runners that
// implement ObservedRunner stream events into o; plain runners fall back
// to the unobserved path.
func BuildAndRunObserved(r Runner, sc scenarios.Scenario, seed int64, o obs.Observer) Result {
	in := sc.Build(rand.New(rand.NewSource(seed)))
	if or, ok := r.(ObservedRunner); ok && o != nil {
		return or.RunObserved(in, seed, o)
	}
	return r.Run(in, seed)
}

// RunPoolObserved is RunPool with per-trial event capture: each trial
// buffers its events in a private Recorder (no cross-worker contention),
// and the recorders are absorbed into the sink in trial order — so the
// event log and the metric aggregates are byte-identical at every worker
// count. A nil sink degrades to RunPool exactly.
func RunPoolObserved(sc scenarios.Scenario, r Runner, n, workers int, seed int64, sink *obs.Sink) []parallel.TrialResult[Result] {
	if sink == nil {
		return RunPool(sc, r, n, workers, seed)
	}
	recs := make([]*obs.Recorder, n)
	trials := parallel.RunTrials(n, workers, seed, func(s int64, i int) Result {
		rec := obs.AcquireRecorder(fmt.Sprintf("%s/%04d", sc.Name(), i))
		recs[i] = rec
		return BuildAndRunObserved(r, sc, s, rec)
	})
	for _, rec := range recs {
		sink.Absorb(rec)
		rec.Release()
	}
	return trials
}
