package main

// `imctl fleet` runs the fleet-scale incident scheduler — a bounded
// responder pool under Poisson incident load with severity-classed
// priority dispatch, aging, and admission control — and prints one
// summary row per arm. It shares the cross-cutting flag vocabulary
// (-seed, -workers, -faultrate, -trace-out, ...) with benchgen, abtest
// and replay via internal/cliflags.

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/kb"
)

func fleetMain(args []string) {
	fs := flag.NewFlagSet("imctl fleet", flag.ExitOnError)
	var (
		oces  = fs.Int("oces", 2, "responder pool size")
		rate  = fs.Float64("rate", 4, "incident arrivals per hour")
		n     = fs.Int("n", 60, "arrivals to simulate")
		queue = fs.Int("queue", 8, "admission bound on the waiting queue (0 = unbounded, never shed)")
		aging = fs.Duration("aging", 30*time.Minute, "queue-wait that promotes an incident one severity class (negative disables aging)")
		fifo  = fs.Bool("fifo", false, "dispatch in strict arrival order instead of severity+aging")
		arm   = fs.String("arm", "all", "which arm to run: assisted, unassisted, or all")
	)
	c := cliflags.Register(fs, 7)
	fs.Parse(args)
	c.MustValidate()
	c.StartPProf()
	c.ApplyCaches()

	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	var fc faults.Config
	cfg := core.DefaultConfig()
	if c.FaultRate > 0 {
		fc = faults.Config{Rate: c.FaultRate, ActionRate: c.FaultRate / 2, Degrade: 0.5, Seed: c.FaultSeed}
		if !c.Naive {
			cfg.Resilience = core.DefaultResilience()
		}
	}
	runners := []harness.Runner{
		&harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: cfg, Faults: fc},
		&harness.ControlRunner{Label: "unassisted-oce", KBase: kbase, Faults: fc},
	}
	switch *arm {
	case "assisted":
		runners = runners[:1]
	case "unassisted":
		runners = runners[1:]
	case "all":
	default:
		fmt.Fprintf(os.Stderr, "invalid -arm %q: want assisted, unassisted, or all\n", *arm)
		os.Exit(2)
	}

	policy := fleet.SeverityAging
	if *fifo {
		policy = fleet.FIFO
	}
	var arms []fleet.Arm
	for _, r := range runners {
		// Same seed per arm: every arm faces the identical arrival tape,
		// so rows differ only by what the responders do with it.
		arms = append(arms, fleet.Arm{Name: r.Name(), Report: fleet.Simulate(fleet.Config{
			OCEs: *oces, ArrivalsPerHour: *rate, Incidents: *n,
			Runner: r, Seed: c.Seed, Workers: c.Workers,
			Policy: policy, QueueLimit: *queue, AgingStep: *aging,
			Obs: c.Sink(),
		})})
	}
	title := fmt.Sprintf("fleet: %d OCEs, %.3g arrivals/h, %d incidents, queue bound %d",
		*oces, *rate, *n, *queue)
	fmt.Println(fleet.SummaryTable(title, arms))
	c.MustExport()
}
