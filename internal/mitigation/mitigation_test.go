package mitigation

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

func smallWorld() *netsim.World {
	n := netsim.NewNetwork()
	bb := netsim.BuildBackbone(n, netsim.DefaultBackboneConfig())
	ctlNode := n.AddNode(netsim.Node{ID: "traffic-controller", Kind: netsim.KindController, Region: "us-east", Pod: -1})
	ctl := netsim.NewController(ctlNode.ID, []string{"B4", "B2"})
	w := netsim.NewWorld(n, ctl, bb)
	for i, region := range bb.Regions {
		prefix := "10." + string(rune('0'+i)) + ".0.0/16"
		for _, wan := range bb.WANNames {
			ctl.Announce(netsim.PrefixAnnouncement{Prefix: prefix, WAN: wan, Cluster: region})
		}
	}
	var eps []netsim.NodeID
	for _, region := range bb.Regions {
		eps = append(eps, netsim.NodeID(region+"-spine-0"))
	}
	w.AddFlows(netsim.UniformMeshFlows(eps, 300, "bulk")...)
	return w
}

func TestActionStringAndMatches(t *testing.T) {
	t.Parallel()
	a := Action{Kind: OverrideWAN, Target: "B4", Param: "healthy"}
	if a.String() != "override-wan(B4,healthy)" {
		t.Errorf("String = %q", a.String())
	}
	if !a.Matches(Action{Kind: OverrideWAN, Target: "B4"}) {
		t.Error("empty-param requirement should match")
	}
	if a.Matches(Action{Kind: OverrideWAN, Target: "B2"}) {
		t.Error("target mismatch should not match")
	}
	if a.Matches(Action{Kind: OverrideWAN, Target: "B4", Param: "failed"}) {
		t.Error("param mismatch should not match")
	}
}

func TestPlanSatisfies(t *testing.T) {
	t.Parallel()
	p := Plan{Actions: []Action{
		{Kind: DisableProtocol, Target: "fastpath"},
		{Kind: RestartDevice, Target: "d1"},
	}}
	if !p.Satisfies([]Action{{Kind: DisableProtocol, Target: "fastpath"}}) {
		t.Error("subset requirement failed")
	}
	if p.Satisfies([]Action{{Kind: IsolateLink, Target: "l1"}}) {
		t.Error("unsatisfied requirement passed")
	}
	if !p.Satisfies(nil) {
		t.Error("empty requirement should pass")
	}
}

func TestExecutorIsolation(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	ex := &Executor{World: w, Actor: "test"}
	lid := string(netsim.MakeLinkID("us-east-tor-p0-0", "us-east-agg-p0-0"))
	if err := ex.Execute(Action{Kind: IsolateLink, Target: lid}); err != nil {
		t.Fatal(err)
	}
	if !w.Net.Link(netsim.LinkID(lid)).Isolated {
		t.Fatal("link not isolated")
	}
	if err := ex.Execute(Action{Kind: DeisolateLink, Target: lid}); err != nil {
		t.Fatal(err)
	}
	if w.Net.Link(netsim.LinkID(lid)).Isolated {
		t.Fatal("link not de-isolated")
	}
	if err := ex.Execute(Action{Kind: IsolateLink, Target: "nope"}); err == nil {
		t.Fatal("unknown link accepted")
	}
	// Mitigations are recorded as changes.
	if got := len(w.Changes.ByKind(netsim.ChangeMitigation)); got != 2 {
		t.Errorf("change log has %d mitigation records, want 2", got)
	}
}

func TestExecutorDeviceLifecycle(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	ex := &Executor{World: w, Actor: "test"}
	w.Inject(&netsim.DeviceDownFault{Node: "us-east-spine-0"})
	if err := ex.Execute(Action{Kind: IsolateDevice, Target: "us-east-spine-0"}); err != nil {
		t.Fatal(err)
	}
	if !w.Net.Node("us-east-spine-0").Isolated {
		t.Fatal("device not isolated")
	}
	if err := ex.Execute(Action{Kind: RestartDevice, Target: "us-east-spine-0"}); err != nil {
		t.Fatal(err)
	}
	if !w.Net.Node("us-east-spine-0").Healthy {
		t.Fatal("restart did not recover device")
	}
	if err := ex.Execute(Action{Kind: DeisolateDevice, Target: "us-east-spine-0"}); err != nil {
		t.Fatal(err)
	}
	if w.Net.Node("us-east-spine-0").Isolated {
		t.Fatal("device still isolated")
	}
}

func TestExecutorRollbackChange(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	fault := &netsim.ConfigInconsistencyFault{WAN: "B4", Prefix: "10.0.0.0/16", Clusters: []string{"us-west", "eu-north"}}
	w.Inject(fault)
	rec := w.Changes.Add(netsim.ChangeRecord{
		At: w.Clock.Now(), Team: "wan", Kind: netsim.ChangeConfigPush,
		Description: "WAN upgrade config push",
		Details:     map[string]string{"fault_id": fault.ID()},
	})
	if w.Recompute().OverallLossRate() < 0.05 {
		t.Fatal("precondition: cascade should cause loss")
	}
	ex := &Executor{World: w, Actor: "oce"}
	if err := ex.Execute(Action{Kind: RollbackChange, Target: rec.ID}); err != nil {
		t.Fatal(err)
	}
	if w.Recompute().OverallLossRate() > 0.001 {
		t.Fatal("rollback did not resolve the cascade")
	}
	if err := ex.Execute(Action{Kind: RollbackChange, Target: "CHG-999999"}); err == nil {
		t.Fatal("unknown change accepted")
	}
}

func TestExecutorOverrideWAN(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	w.Inject(&netsim.ConfigInconsistencyFault{WAN: "B4", Prefix: "10.0.0.0/16", Clusters: []string{"us-west", "eu-north"}})
	ex := &Executor{World: w, Actor: "oce"}
	if err := ex.Execute(Action{Kind: OverrideWAN, Target: "B4", Param: "healthy"}); err != nil {
		t.Fatal(err)
	}
	if w.Recompute().OverallLossRate() > 0.001 {
		t.Fatal("override did not stop the cascade")
	}
	if err := ex.Execute(Action{Kind: OverrideWAN, Target: "B4", Param: "clear"}); err != nil {
		t.Fatal(err)
	}
	if w.Recompute().OverallLossRate() < 0.05 {
		t.Fatal("clearing override should resume the cascade")
	}
	if err := ex.Execute(Action{Kind: OverrideWAN, Target: "B4", Param: "bogus"}); err == nil {
		t.Fatal("bad param accepted")
	}
}

func TestExecutorDisableProtocolScoped(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	for _, nd := range w.Net.Nodes() {
		if nd.WANName != "" {
			nd.Protocols["fastpath"] = true
		}
	}
	ex := &Executor{World: w, Actor: "oce"}
	if err := ex.Execute(Action{Kind: DisableProtocol, Target: "fastpath", Param: "B4"}); err != nil {
		t.Fatal(err)
	}
	for _, nd := range w.Net.Nodes() {
		switch nd.WANName {
		case "B4":
			if nd.ProtocolEnabled("fastpath") {
				t.Fatalf("fastpath still enabled on %s", nd.ID)
			}
		case "B2":
			if !nd.ProtocolEnabled("fastpath") {
				t.Fatalf("scope leak: fastpath disabled on %s", nd.ID)
			}
		}
	}
}

func TestExecutorMoveAndRateLimit(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	ex := &Executor{World: w, Actor: "oce"}
	if err := ex.Execute(Action{Kind: MoveService, Target: "bulk", Param: "B2"}); err != nil {
		t.Fatal(err)
	}
	for _, f := range w.Flows() {
		if f.Attr("wan") != "B2" {
			t.Fatalf("flow %s not pinned to B2", f.ID)
		}
	}
	before := w.Flows()[0].DemandGbps
	if err := ex.Execute(Action{Kind: RateLimitService, Target: "bulk", Param: "0.5"}); err != nil {
		t.Fatal(err)
	}
	if got := w.Flows()[0].DemandGbps; got != before/2 {
		t.Fatalf("demand = %v, want %v", got, before/2)
	}
	if err := ex.Execute(Action{Kind: RateLimitService, Target: "bulk", Param: "2.0"}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if err := ex.Execute(Action{Kind: RateLimitService, Target: "bulk", Param: "x"}); err == nil {
		t.Fatal("garbage fraction accepted")
	}
}

func TestExecutorRepairMonitorAndEscalate(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	w.Inject(&netsim.MonitorBrokenFault{Monitor: "pingmesh"})
	ex := &Executor{World: w, Actor: "oce"}
	if err := ex.Execute(Action{Kind: RepairMonitor, Target: "pingmesh"}); err != nil {
		t.Fatal(err)
	}
	if w.BrokenMonitors["pingmesh"] {
		t.Fatal("monitor not repaired")
	}
	if err := ex.Execute(Action{Kind: Escalate, Target: "SWAT"}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Execute(Action{Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestExecutorClockedAdvancesTime(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	ex := &Executor{World: w, Clocked: true, Actor: "oce"}
	start := w.Clock.Now()
	if err := ex.ExecutePlan(Plan{Actions: []Action{
		{Kind: OverrideWAN, Target: "B4", Param: "healthy"},
		{Kind: Escalate, Target: "SWAT"},
	}}); err != nil {
		t.Fatal(err)
	}
	want := ExecLatency[OverrideWAN] + ExecLatency[Escalate]
	if got := w.Clock.Now() - start; got != want {
		t.Fatalf("clock advanced %v, want %v", got, want)
	}
}

func TestVerifier(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	v := &Verifier{World: w}
	if !v.Mitigated() {
		t.Fatal("healthy world not mitigated")
	}
	w.Inject(&netsim.ConfigInconsistencyFault{WAN: "B4", Prefix: "10.0.0.0/16", Clusters: []string{"us-west", "eu-north"}})
	if v.Mitigated() {
		t.Fatal("cascade world reported mitigated")
	}
	if v.ServiceMitigated("bulk") {
		t.Fatal("bulk service reported mitigated during cascade")
	}
	if !v.ServiceMitigated("no-such-service") {
		t.Fatal("unknown service should be vacuously mitigated")
	}
	// A wedged device blocks mitigation even without loss; isolating it
	// is an accepted mitigation.
	w.Resolve("config-inconsistency:B4:10.0.0.0/16")
	w.Net.Node("us-east-spine-3").Healthy = false
	w.Invalidate()
	if v.Mitigated() {
		t.Fatal("wedged device should block mitigated state")
	}
	w.Net.Node("us-east-spine-3").Isolated = true
	w.Invalidate()
	if !v.Mitigated() {
		t.Fatal("isolated wedged device should be acceptable")
	}
}

func TestExecLatencyTable(t *testing.T) {
	t.Parallel()
	for _, k := range []ActionKind{IsolateLink, RestartDevice, RollbackChange, Escalate} {
		if (Action{Kind: k}).Latency() <= 0 {
			t.Errorf("action %s has no latency", k)
		}
	}
	if (Action{Kind: NoOp}).Latency() != 0 {
		t.Error("no-op should be free")
	}
	_ = time.Minute
}

func TestExecutorNoOpAndUnknownService(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	ex := &Executor{World: w, Actor: "t"}
	if err := ex.Execute(Action{Kind: NoOp}); err != nil {
		t.Fatal(err)
	}
	// Moving or rate-limiting a service with no flows succeeds as a no-op
	// (real automation tolerates empty selectors).
	if err := ex.Execute(Action{Kind: MoveService, Target: "ghost", Param: "B2"}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Execute(Action{Kind: RateLimitService, Target: "ghost", Param: "0.5"}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorEnableProtocolFleetWide(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	ex := &Executor{World: w, Actor: "t"}
	if err := ex.Execute(Action{Kind: EnableProtocol, Target: "newproto"}); err != nil {
		t.Fatal(err)
	}
	enabled := 0
	for _, nd := range w.Net.Nodes() {
		if nd.ProtocolEnabled("newproto") {
			enabled++
		}
	}
	if enabled != w.Net.NumNodes() {
		t.Fatalf("enabled on %d/%d nodes", enabled, w.Net.NumNodes())
	}
	// Unscoped disable turns it off everywhere it exists.
	if err := ex.Execute(Action{Kind: DisableProtocol, Target: "newproto"}); err != nil {
		t.Fatal(err)
	}
	for _, nd := range w.Net.Nodes() {
		if nd.ProtocolEnabled("newproto") {
			t.Fatalf("still enabled on %s", nd.ID)
		}
	}
}
