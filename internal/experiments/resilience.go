package experiments

// E13 — robustness under degraded telemetry (extension): the paper's
// "reliable & safe" principle (§2.2) and "mistake overheads" methodology
// (§3) made runnable. Monitors are unreliable exactly when they matter
// most — during incidents — so the experiment injects deterministic tool
// and automation faults at a ladder of rates and compares three arms:
//
//   - resilient-helper: the iterative helper on the resilient invocation
//     path (capped-backoff retries, per-tool circuit breaking with
//     reroute to the monitor cross-check, evidence quarantine);
//   - naive-helper: the same helper trusting every tool result as-is;
//   - control-oce: the unassisted engineer, faults and all.
//
// Expected shape: at fault rate 0 the resilient and naive arms are
// bit-identical (the resilient path with no failures is the naive path —
// the determinism test in resilience_test.go proves it). As the rate
// rises, the naive arm's wrong-verdict mistakes (wrong/secondary) grow
// because corrupted findings flip accept/reject decisions, while the
// resilient arm trades bounded extra TTM — retries and backoff on the
// simulated clock — for strictly fewer mistakes and escalations.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/scenarios"
)

// e13Workload is the incident mix: a subtle gray failure, a deep
// cascade, and a false alarm (where a corrupted "=true" is most
// poisonous — there is nothing real to find).
func e13Workload() []scenarios.Scenario {
	return []scenarios.Scenario{
		&scenarios.GrayLink{},
		&scenarios.Cascade{Stage: 5},
		&scenarios.FalseAlarm{},
	}
}

// e13Rates builds the fault-rate ladder up to top (default 0.4).
func e13Rates(top float64) []float64 {
	if top <= 0 {
		top = 0.4
	}
	return []float64{0, top / 4, top / 2, top}
}

// E13Resilience sweeps the fault rate and tabulates correctness, mistake
// and escalation overheads, TTM, and the resilient path's bookkeeping
// (retries, quarantined verdicts) per arm.
func E13Resilience(p Params) []*eval.Table {
	p = p.withDefaults()
	kbase := currentKB()
	fseed := p.FaultSeed
	if fseed == 0 {
		fseed = 1337
	}

	resilientCfg := core.DefaultConfig()
	resilientCfg.Resilience = core.DefaultResilience()

	t := eval.NewTable("E13 (extension): robustness vs fault rate (gray-link + cascade-5 + false-alarm)",
		"fault rate", "arm", "correct", "wrong", "secondary", "escalated", "TTM(m)", "retries", "quarantined")
	for _, rate := range e13Rates(p.FaultRate) {
		// Flappy monitors degrade as the incident drags on; automation
		// faults ride along at half the tool rate.
		fc := faults.Config{Rate: rate, ActionRate: rate / 2, Degrade: 0.5, Seed: fseed}
		arms := []harness.Runner{
			&harness.HelperRunner{Label: "resilient-helper", KBase: kbase, Config: resilientCfg, Faults: fc},
			&harness.HelperRunner{Label: "naive-helper", KBase: kbase, Config: core.DefaultConfig(), Faults: fc},
			&harness.ControlRunner{Label: "control-oce", KBase: kbase, Faults: fc},
		}
		if p.Naive {
			// -naive: measure the unprotected path only.
			arms = arms[1:]
		}
		for _, r := range arms {
			agg := &cell{}
			for i, sc := range e13Workload() {
				agg.merge(runCell(sc, r, p.sub(131+int64(i))))
			}
			t.AddRow(fmt.Sprintf("%.2f", rate), r.Name(), eval.Pct(agg.rate(agg.correct)),
				agg.wrong, agg.secondary, eval.Pct(agg.rate(agg.escalated)),
				agg.meanTTM(), agg.retries, agg.quarantined)
		}
	}
	return []*eval.Table{t}
}
