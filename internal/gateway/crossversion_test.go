package gateway

// Cross-version durability: a write-ahead journal produced by the
// pre-region gateway (V0 records — no "v", no "region" on the wire)
// must replay cleanly into a sharded multi-region scheduler, homing
// every legacy incident in the default region. This is the upgrade
// path: swap the binary, point it at the old journal directory, boot.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/kb"
	"repro/internal/obs"
)

func TestLegacyJournalReplaysIntoShardedScheduler(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	// Hand-write the WAL with Encode (which stamps nothing), byte-for-
	// byte what a PR 7 gateway fsync'd: version and region fields absent.
	sev := 2
	legacy := []journal.Record{
		{Kind: journal.KindAccepted, ID: "old-1", AtMinutes: 0, Scenario: "gray-link",
			Severity: &sev, Title: "loss on wan-2", ReportedBy: "tenant-a", OpenedAtMinutes: 0},
		{Kind: journal.KindAccepted, ID: "old-2", AtMinutes: 3, Scenario: "congestion",
			ReportedBy: "tenant-b", OpenedAtMinutes: 3},
		{Kind: journal.KindPatched, ID: "old-1", AtMinutes: 5, Status: "investigating",
			Note: "tenant-a: checking optics"},
	}
	var raw []byte
	for _, r := range legacy {
		line, err := journal.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, line...)
	}
	if err := os.WriteFile(filepath.Join(dir, journal.FileName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	jr, rr, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if len(rr.Records) != 3 || rr.Dropped != 0 {
		t.Fatalf("replay = %d records, %d dropped, want 3/0", len(rr.Records), rr.Dropped)
	}
	for _, r := range rr.Records {
		if r.V != 0 || r.Region != "" {
			t.Fatalf("legacy record decoded with V%d region %q, want V0 empty", r.V, r.Region)
		}
	}

	// Boot a sharded multi-region gateway over the legacy journal.
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	runner := &harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: core.DefaultConfig()}
	sink := obs.NewSink()
	sched := fleet.NewSharded(fleet.ShardedLiveConfig{
		Regions: []string{"default", "eu-west"}, OCEs: 2,
		Obs: sink, RunnerName: runner.Name(),
	})
	clock := NewSimClock()
	gw := NewServer(Config{
		Keys:  map[string]string{"k-tenant-a": "tenant-a"},
		Clock: clock, Sched: sched, Runner: runner, Seed: 7,
		Sink: sink, SimControl: true, Journal: jr,
	})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	st := &testStack{ts: ts, sched: sched, clock: clock, sink: sink}

	stats, err := gw.Recover(rr)
	if err != nil {
		t.Fatalf("legacy WAL did not replay into the sharded scheduler: %v", err)
	}
	if stats.Records != 3 || stats.Reoffered != 2 {
		t.Fatalf("recover stats = %+v, want 3 records, 2 re-offered", stats)
	}

	// Every legacy incident is homed in the default region, with its
	// patched state intact.
	var rec Record
	status, body := st.do(t, "GET", "/v1/incidents/old-1", "k-tenant-a", "")
	if status != http.StatusOK {
		t.Fatalf("get old-1: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Region != fleet.DefaultRegion {
		t.Fatalf("old-1 region = %q, want %q", rec.Region, fleet.DefaultRegion)
	}
	if rec.Status != "investigating" || len(rec.Notes) != 1 {
		t.Fatalf("old-1 lost its patch: %+v", rec)
	}

	// The region filter sees them, and post-recovery creates can home
	// in the new region alongside them.
	status, body = st.do(t, "GET", "/v1/incidents?region=default", "k-tenant-a", "")
	if status != http.StatusOK {
		t.Fatalf("list: HTTP %d: %s", status, body)
	}
	var page ListPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Incidents) != 2 {
		t.Fatalf("region=default lists %d records, want 2", len(page.Incidents))
	}
	if status, body = st.do(t, "POST", "/v1/incidents", "k-tenant-a",
		`{"id":"new-eu","scenario":"gray-link","region":"eu-west","opened_at_minutes":10}`); status != http.StatusCreated {
		t.Fatalf("post-recovery create: HTTP %d: %s", status, body)
	}

	// Drain carries the per-region breakdown: the two legacy incidents
	// plus the new one, none lost.
	status, body = st.do(t, "POST", "/v1/sim/drain", "k-tenant-a", "")
	if status != http.StatusOK {
		t.Fatalf("drain: HTTP %d: %s", status, body)
	}
	var sum DrainSummary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Incidents != 3 || len(sum.Regions) != 2 {
		t.Fatalf("drain = %d incidents across %d regions, want 3 across 2", sum.Incidents, len(sum.Regions))
	}
	if sum.Regions[0].Region != "default" || sum.Regions[0].Incidents != 2 {
		t.Fatalf("default region drained %+v, want 2 incidents", sum.Regions[0])
	}
	if sum.Regions[1].Region != "eu-west" || sum.Regions[1].Incidents != 1 {
		t.Fatalf("eu-west region drained %+v, want 1 incident", sum.Regions[1])
	}
}
