package eval

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanMedianPercentile(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4, 100}
	if Mean(xs) != 22 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 100 {
		t.Error("percentile extremes wrong")
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Std([]float64{5}) != 0 {
		t.Error("degenerate inputs mishandled")
	}
}

func TestVarianceKnown(t *testing.T) {
	t.Parallel()
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4.571428571, 1e-6) {
		t.Errorf("Variance = %v", got)
	}
}

func TestStudentTCDFAgainstKnownValues(t *testing.T) {
	t.Parallel()
	// Reference values from standard t tables.
	cases := []struct{ t, df, want float64 }{
		{0, 5, 0.5},
		{1.0, 10, 0.8296},
		{2.228, 10, 0.975},
		{-2.228, 10, 0.025},
		{1.96, 1e6, 0.975}, // approaches normal
	}
	for _, c := range cases {
		if got := StudentTCDF(c.t, c.df); !almost(got, c.want, 0.002) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	t.Parallel()
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almost(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}

func TestWelchTDetectsDifference(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = 30 + rng.NormFloat64()*8
		b[i] = 45 + rng.NormFloat64()*12
	}
	res := WelchT(a, b)
	if res.P > 0.001 {
		t.Errorf("clear difference not detected: p = %v", res.P)
	}
	if res.T >= 0 {
		t.Errorf("sign wrong: t = %v", res.T)
	}
	// Identical samples: no significance.
	same := WelchT(a, a)
	if same.P < 0.99 {
		t.Errorf("identical samples p = %v", same.P)
	}
}

func TestWelchTNullCalibration(t *testing.T) {
	t.Parallel()
	// Under the null, p-values should be roughly uniform: count p<0.05.
	rng := rand.New(rand.NewSource(2))
	rejections := 0
	trials := 400
	for i := 0; i < trials; i++ {
		a := make([]float64, 30)
		b := make([]float64, 30)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		if WelchT(a, b).P < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / float64(trials)
	if rate > 0.09 || rate < 0.01 {
		t.Errorf("null rejection rate = %v, want ~0.05", rate)
	}
}

func TestMannWhitney(t *testing.T) {
	t.Parallel()
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{10, 11, 12, 13, 14, 15, 16, 17}
	res := MannWhitneyU(a, b)
	if res.P > 0.01 {
		t.Errorf("disjoint samples p = %v", res.P)
	}
	// With ties and identical distributions, P should be large.
	c := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	same := MannWhitneyU(c, c)
	if same.P < 0.9 {
		t.Errorf("identical tied samples p = %v", same.P)
	}
	if MannWhitneyU(nil, a).P != 1 {
		t.Error("empty sample should return p=1")
	}
}

func TestBootstrapCIContainsMean(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 50 + rng.NormFloat64()*10
	}
	lo, hi := BootstrapCI(xs, 0.95, 1000, rng)
	if lo > 50 || hi < 50 {
		t.Errorf("CI [%v, %v] excludes true mean 50", lo, hi)
	}
	if hi-lo > 6 {
		t.Errorf("CI [%v, %v] too wide for n=200", lo, hi)
	}
}

func TestPermutationTest(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	a := []float64{1, 2, 3, 2, 1, 2, 3}
	b := []float64{9, 8, 9, 10, 9, 8, 9}
	if p := PermutationTest(a, b, 1000, rng); p > 0.01 {
		t.Errorf("clear difference p = %v", p)
	}
	if p := PermutationTest(a, a, 500, rng); p < 0.5 {
		t.Errorf("identical samples p = %v", p)
	}
}

// Property: mean is bounded by min and max; percentile is monotone in p.
func TestStatsProperties(t *testing.T) {
	t.Parallel()
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := Mean(xs)
		if m < lo-1e-9 || m > hi+1e-9 {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 22)
	s := tb.String()
	for _, want := range []string{"demo", "name", "alpha", "1.50", "22", "---"} {
		if !contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if Pct(0.25) != "25%" {
		t.Errorf("Pct = %q", Pct(0.25))
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCohensD(t *testing.T) {
	t.Parallel()
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{3, 4, 5, 6, 7}
	d := CohensD(a, b)
	if !almost(d, -1.2649, 0.001) {
		t.Errorf("CohensD = %v", d)
	}
	if CohensD(a, a) != 0 {
		t.Error("identical samples should have d=0")
	}
	if CohensD([]float64{1}, b) != 0 {
		t.Error("degenerate input should return 0")
	}
	same := []float64{2, 2, 2}
	if CohensD(same, same) != 0 {
		t.Error("zero variance should return 0")
	}
}

func TestWilsonCI(t *testing.T) {
	t.Parallel()
	lo, hi := WilsonCI(8, 10)
	if lo > 0.8 || hi < 0.8 {
		t.Errorf("CI [%v,%v] excludes the point estimate", lo, hi)
	}
	if lo < 0.4 || hi > 0.99 {
		t.Errorf("CI [%v,%v] implausibly wide/narrow for 8/10", lo, hi)
	}
	// Edge cases stay in [0,1].
	lo, hi = WilsonCI(0, 5)
	if lo != 0 || hi > 0.6 {
		t.Errorf("0/5 CI [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI(5, 5)
	if hi != 1 || lo < 0.4 {
		t.Errorf("5/5 CI [%v,%v]", lo, hi)
	}
	if lo, hi = WilsonCI(0, 0); lo != 0 || hi != 1 {
		t.Error("empty sample should be vacuous")
	}
	// Larger n tightens the interval.
	lo1, hi1 := WilsonCI(80, 100)
	if hi1-lo1 >= 0.4 {
		t.Errorf("80/100 CI too wide: [%v,%v]", lo1, hi1)
	}
}

func TestHTMLReport(t *testing.T) {
	t.Parallel()
	rep := NewHTMLReport("demo report", 42, 10)
	tb := NewTable("t1", "a", "b")
	tb.AddRow("x", 1.0)
	rep.Sections = append(rep.Sections, HTMLSection{
		Heading: "section one", Note: "a note", Tables: []*Table{tb}, Pre: "trace <line>",
	})
	var buf bytes.Buffer
	if err := rep.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "demo report", "seed 42", "section one", "<th>a</th>", "<td>1.00</td>", "trace &lt;line&gt;"} {
		if !contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
}
