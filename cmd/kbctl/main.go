// Command kbctl inspects the operator knowledge base: concepts, causal
// rules (optionally one team's slice), troubleshooting guides, and a
// Graphviz export of the causal graph.
//
// Usage:
//
//	kbctl -rules               # all causal rules
//	kbctl -rules -team wan     # one team's namespace
//	kbctl -concepts            # concept vocabulary with test tools
//	kbctl -tsgs                # troubleshooting guides
//	kbctl -dot > kb.dot        # causal graph for graphviz
//	kbctl -stale ...           # the pre-fastpath (version 1) snapshot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/kb"
)

func main() {
	var (
		rules    = flag.Bool("rules", false, "list causal rules")
		team     = flag.String("team", "", "restrict rules to one team")
		concepts = flag.Bool("concepts", false, "list concepts")
		tsgs     = flag.Bool("tsgs", false, "list troubleshooting guides")
		dot      = flag.Bool("dot", false, "export the causal graph as DOT")
		stale    = flag.Bool("stale", false, "use the version-1 (pre-fastpath) snapshot")
	)
	flag.Parse()

	k := kb.Default()
	if !*stale {
		kb.ApplyFastpathUpdate(k)
	}

	switch {
	case *dot:
		if err := k.ExportDOT(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *concepts:
		t := eval.NewTable(fmt.Sprintf("concepts (KB v%d)", k.Version()), "id", "prior", "test tool", "mitigations", "description")
		for _, id := range k.Concepts() {
			c, _ := k.ConceptByID(id)
			t.AddRow(c.ID, c.Prior, c.TestTool, len(c.Mitigations), c.Description)
		}
		fmt.Println(t)
	case *tsgs:
		t := eval.NewTable("troubleshooting guides", "id", "symptom", "team", "version", "steps")
		for _, id := range k.Concepts() {
			for _, g := range k.TSGForSymptom(id) {
				t.AddRow(g.ID, g.Symptom, g.Team, g.Version, len(g.Steps))
			}
		}
		fmt.Println(t)
	case *rules:
		rs := k.Rules()
		if *team != "" {
			rs = k.TeamRules(*team)
		}
		t := eval.NewTable(fmt.Sprintf("causal rules (KB v%d)", k.Version()), "cause", "effect", "strength", "team", "since", "note")
		for _, r := range rs {
			t.AddRow(r.Cause, r.Effect, r.Strength, r.Team, r.AddedVersion, r.Note)
		}
		fmt.Println(t)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
