package ops

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/scenarios"
)

func currentKB() *kb.KB {
	k := kb.Default()
	kb.ApplyFastpathUpdate(k)
	return k
}

func TestSimulateBasics(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	rep := Simulate(Config{
		OCEs: 3, ArrivalsPerHour: 2, Incidents: 40, Seed: 1,
		Runner: &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()},
	})
	if len(rep.Outcomes) != 40 {
		t.Fatalf("outcomes = %d", len(rep.Outcomes))
	}
	for _, o := range rep.Outcomes {
		if o.StartedAt < o.ArrivedAt {
			t.Fatal("incident started before it arrived")
		}
		if o.Queue != o.StartedAt-o.ArrivedAt {
			t.Fatal("queue accounting inconsistent")
		}
		if o.Total < o.Queue {
			t.Fatal("total < queue")
		}
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Fatalf("utilization = %v", rep.Utilization)
	}
	if rep.MitigatedRate < 0.9 {
		t.Fatalf("helper fleet mitigated only %v", rep.MitigatedRate)
	}
	if rep.P95Total < rep.MeanTotal/2 {
		t.Fatal("percentile plumbing broken")
	}
}

// TestQueueingGrowsWithLoad: the same pool under higher arrival rates
// must show (weakly) higher utilization and queueing.
func TestQueueingGrowsWithLoad(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	runner := &harness.ControlRunner{KBase: kbase}
	low := Simulate(Config{OCEs: 2, ArrivalsPerHour: 0.5, Incidents: 60, Seed: 2, Runner: runner})
	high := Simulate(Config{OCEs: 2, ArrivalsPerHour: 6, Incidents: 60, Seed: 2, Runner: runner})
	if high.MeanQueue <= low.MeanQueue {
		t.Errorf("queueing did not grow with load: %v vs %v", high.MeanQueue, low.MeanQueue)
	}
	if high.Utilization <= low.Utilization {
		t.Errorf("utilization did not grow with load: %v vs %v", high.Utilization, low.Utilization)
	}
}

// TestHelperFleetSurvivesLoadControlDrowns is the fleet-level headline:
// at an arrival rate where the unassisted pool saturates, the
// helper-assisted pool keeps customer-visible resolution time bounded.
func TestHelperFleetSurvivesLoadControlDrowns(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	cfg := Config{OCEs: 2, ArrivalsPerHour: 4, Incidents: 80, Seed: 3}

	cfg.Runner = &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()}
	assisted := Simulate(cfg)
	cfg.Runner = &harness.ControlRunner{KBase: kbase}
	control := Simulate(cfg)

	if assisted.MeanTotal >= control.MeanTotal {
		t.Fatalf("assisted fleet not faster: %v vs %v", assisted.MeanTotal, control.MeanTotal)
	}
	// The gap must exceed the per-incident TTM gap: queueing amplifies.
	if control.MeanQueue < assisted.MeanQueue*2 {
		t.Errorf("expected queue amplification: control %v vs assisted %v",
			control.MeanQueue, assisted.MeanQueue)
	}
}

func TestSimulateDefaultsAndDeterminism(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	runner := &harness.ControlRunner{KBase: kbase}
	a := Simulate(Config{Runner: runner, Seed: 4, Incidents: 20, Mix: []scenarios.Scenario{&scenarios.GrayLink{}}})
	b := Simulate(Config{Runner: runner, Seed: 4, Incidents: 20, Mix: []scenarios.Scenario{&scenarios.GrayLink{}}})
	if a.MeanTotal != b.MeanTotal || a.MeanQueue != b.MeanQueue {
		t.Fatal("fleet simulation not deterministic")
	}
	if a.Outcomes[0].Scenario != "gray-link" {
		t.Fatal("mix not honored")
	}
	_ = time.Minute
}
