package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/incident"
)

// Postmortem renders a structured incident review from a completed
// session: timeline, validated deduction chain, applied mitigation, and
// the §3 bookkeeping (TTM, mistakes, model cost). The paper's §1 lists
// "generate human-like written content" among the LLM abilities that
// make OCE-helpers feasible; this generator is deterministic and
// template-based so reviews are reproducible — a production deployment
// would have the model draft prose over the same structure.
func Postmortem(inc *incident.Incident, out *Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Postmortem: %s\n\n", inc.Title)
	fmt.Fprintf(&b, "Incident %s, severity %d, opened at T+%s.\n\n", inc.ID, inc.Severity, fmtDur(inc.OpenedAt))

	b.WriteString("## Outcome\n\n")
	switch {
	case out.Mitigated:
		fmt.Fprintf(&b, "Mitigated in %s over %d hypothesis-test rounds.\n", fmtDur(out.TTM), out.Rounds)
	case out.Escalated:
		fmt.Fprintf(&b, "Escalated after %s and %d rounds without a validated mitigation.\n", fmtDur(out.TTM), out.Rounds)
	default:
		fmt.Fprintf(&b, "Session ended unresolved after %s.\n", fmtDur(out.TTM))
	}
	if len(out.Applied.Actions) > 0 {
		fmt.Fprintf(&b, "Applied mitigation: %s.\n", out.Applied)
	}
	if len(out.Confirmed) > 0 {
		fmt.Fprintf(&b, "Validated deduction chain: %s.\n", strings.Join(out.Confirmed, " <- "))
	}
	b.WriteString("\n## Timeline\n\n")
	for _, st := range out.Trace {
		switch st.Kind {
		case StepApproval, StepToolInvoked, StepInterpreted, StepPlanProposed,
			StepRiskAssessed, StepPlanRejected, StepExecuted, StepVerified,
			StepEscalated, StepOCECorrected, StepVeto:
			fmt.Fprintf(&b, "- T+%s (round %d) %s: %s\n", fmtDur(st.At), st.Round, st.Kind, st.Detail)
		}
	}

	b.WriteString("\n## Costs and mistakes\n\n")
	fmt.Fprintf(&b, "- tool invocations: %d\n", out.ToolCalls)
	fmt.Fprintf(&b, "- LLM calls: %d (%d tokens)\n", out.LLMUsage.Calls, out.LLMUsage.Prompt+out.LLMUsage.Completion)
	fmt.Fprintf(&b, "- mitigations executed but insufficient: %d\n", out.WrongMitigations)
	fmt.Fprintf(&b, "- mitigations that worsened a service: %d\n", out.SecondaryImpact)
	fmt.Fprintf(&b, "- plans that failed to execute: %d\n", out.PlanErrors)

	b.WriteString("\n## Follow-ups\n\n")
	for _, f := range followUps(out) {
		fmt.Fprintf(&b, "- %s\n", f)
	}
	return b.String()
}

// followUps derives action items from what went wrong in the session.
func followUps(out *Outcome) []string {
	var fs []string
	if out.Escalated && !out.Mitigated {
		fs = append(fs, "the knowledge base could not explain this incident: capture the specialist team's resolution as causal rules")
	}
	if out.WrongMitigations > 0 {
		fs = append(fs, "review why executed mitigations failed verification; consider tightening the what-if gate")
	}
	if out.SecondaryImpact > 0 {
		fs = append(fs, "a mitigation worsened a service: audit the risk assessment that approved it")
	}
	if out.PlanErrors > 0 {
		fs = append(fs, "plans failed mid-execution (bad targets): review planner bindings and model hallucination rate")
	}
	if out.Mitigated && out.Rounds > 6 {
		fs = append(fs, "resolution took many rounds: consider a TSG or pre-approval for this incident class")
	}
	if len(fs) == 0 {
		fs = append(fs, "none: clean single-chain resolution")
	}
	return fs
}

func fmtDur(d time.Duration) string { return d.Truncate(time.Second).String() }
