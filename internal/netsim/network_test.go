package netsim

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	t.Parallel()
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Minute)
	c.Advance(30 * time.Second)
	if got, want := c.Now(), 5*time.Minute+30*time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset, Now() = %v, want 0", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-time.Second)
}

func TestMakeLinkIDCanonical(t *testing.T) {
	t.Parallel()
	if MakeLinkID("a", "b") != MakeLinkID("b", "a") {
		t.Fatal("link ID not canonical under endpoint order")
	}
	if MakeLinkID("a", "b") == MakeLinkID("a", "c") {
		t.Fatal("distinct links share an ID")
	}
}

func TestAddNodeDefaults(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	nd := n.AddNode(Node{ID: "sw1", Kind: KindToR, Region: "r1"})
	if !nd.Healthy {
		t.Error("new node not healthy by default")
	}
	if nd.Protocols == nil || nd.Attrs == nil {
		t.Error("maps not initialized")
	}
	if !nd.Usable() {
		t.Error("healthy non-isolated node should be usable")
	}
	nd.Isolated = true
	if nd.Usable() {
		t.Error("isolated node should not be usable")
	}
}

func TestAddNodeDuplicatePanics(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	n.AddNode(Node{ID: "x"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	n.AddNode(Node{ID: "x"})
}

func TestAddLinkValidation(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	n.AddNode(Node{ID: "a"})
	n.AddNode(Node{ID: "b"})
	l := n.AddLink("a", "b", 100, 1)
	if l.ID != MakeLinkID("a", "b") {
		t.Errorf("link ID = %q", l.ID)
	}
	if n.LinkBetween("b", "a") != l {
		t.Error("LinkBetween not symmetric")
	}
	if got := l.Other("a"); got != "b" {
		t.Errorf("Other(a) = %q, want b", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("link to missing node did not panic")
		}
	}()
	n.AddLink("a", "zzz", 1, 1)
}

func TestLinkOtherPanicsOnNonEndpoint(t *testing.T) {
	t.Parallel()
	l := Link{ID: "a--b", A: "a", B: "b"}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	l.Other("c")
}

func TestNetworkQueries(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	n.AddNode(Node{ID: "t1", Kind: KindToR, Region: "east"})
	n.AddNode(Node{ID: "t2", Kind: KindToR, Region: "west"})
	n.AddNode(Node{ID: "s1", Kind: KindSpine, Region: "east"})
	n.AddLink("t1", "s1", 100, 1)
	n.AddLink("t2", "s1", 100, 1)

	if got := len(n.NodesByKind(KindToR)); got != 2 {
		t.Errorf("NodesByKind(ToR) = %d, want 2", got)
	}
	if got := len(n.NodesInRegion("east")); got != 2 {
		t.Errorf("NodesInRegion(east) = %d, want 2", got)
	}
	regions := n.Regions()
	if len(regions) != 2 || regions[0] != "east" || regions[1] != "west" {
		t.Errorf("Regions() = %v", regions)
	}
	if got := len(n.IncidentLinks("s1")); got != 2 {
		t.Errorf("IncidentLinks(s1) = %d, want 2", got)
	}
	if n.NumNodes() != 3 || n.NumLinks() != 2 {
		t.Errorf("counts = %d/%d, want 3/2", n.NumNodes(), n.NumLinks())
	}
}

func TestCloneIsDeep(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	n.AddNode(Node{ID: "a"})
	n.AddNode(Node{ID: "b"})
	n.AddLink("a", "b", 100, 1)
	n.Node("a").Protocols["bgp"] = true

	c := n.Clone()
	c.MutNode("a").Healthy = false
	c.MutNode("a").Protocols["bgp"] = false
	c.MutLink(MakeLinkID("a", "b")).Down = true

	if !n.Node("a").Healthy {
		t.Error("clone mutation leaked into original node health")
	}
	if !n.Node("a").Protocols["bgp"] {
		t.Error("clone mutation leaked into original protocols map")
	}
	if n.Link(MakeLinkID("a", "b")).Down {
		t.Error("clone mutation leaked into original link")
	}

	// And the reverse direction: parent writes must not leak into the
	// clone (Clone marks both sides copy-on-write).
	n.MutNode("b").Isolated = true
	if c.Node("b").Isolated {
		t.Error("parent mutation leaked into clone")
	}

	// Structural growth on the clone stays private too.
	c.AddNode(Node{ID: "z"})
	c.AddLink("a", "z", 10, 1)
	if n.Node("z") != nil || n.LinkBetween("a", "z") != nil {
		t.Error("clone topology growth leaked into original")
	}
}

func TestNodesSortedDeterministically(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	for _, id := range []NodeID{"z", "m", "a", "q"} {
		n.AddNode(Node{ID: id})
	}
	nodes := n.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID >= nodes[i].ID {
			t.Fatalf("Nodes() not sorted: %v before %v", nodes[i-1].ID, nodes[i].ID)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	t.Parallel()
	cases := map[NodeKind]string{
		KindHost: "host", KindToR: "tor", KindAgg: "agg", KindSpine: "spine",
		KindGateway: "gateway", KindWANRouter: "wan-router", KindController: "controller",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if NodeKind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}
