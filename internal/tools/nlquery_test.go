package tools

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/scenarios"
)

func TestNLQueryHappyPath(t *testing.T) {
	t.Parallel()
	in := (&scenarios.Congestion{}).Build(rand.New(rand.NewSource(1)))
	model := llm.NewSimLLM(kb.Default(), 1)
	tool := NewNLQueryTool(model)
	res, err := tool.Invoke(in.World, map[string]string{"question": "which links are hot right now?"})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, "query_verified=true attempts=1") {
		t.Fatalf("findings = %v", res.Findings)
	}
	// Must return actual hot-link rows.
	rows := 0
	for _, f := range res.Findings {
		if strings.Contains(f, "util=") {
			rows++
		}
	}
	if rows == 0 {
		t.Fatalf("no link rows: %v", res.Findings)
	}
}

func TestNLQueryEntitiesRouting(t *testing.T) {
	t.Parallel()
	in := (&scenarios.NovelProtocol{}).Build(rand.New(rand.NewSource(2)))
	model := llm.NewSimLLM(kb.Default(), 2)
	tool := NewNLQueryTool(model)

	res, err := tool.Invoke(in.World, map[string]string{"question": "list unhealthy devices"})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, "healthy=false") {
		t.Fatalf("devices query missed wedged routers: %v", res.Findings)
	}

	res, err = tool.Invoke(in.World, map[string]string{"question": "any critical log events with fatal messages?"})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, "severity=crit") {
		t.Fatalf("events query wrong: %v", res.Findings)
	}

	res, err = tool.Invoke(in.World, map[string]string{"question": "which services have loss impact?"})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, "name=directconnect") {
		t.Fatalf("services query missed directconnect: %v", res.Findings)
	}
}

// TestNLQueryRepairLoop is the §4.4 behavior under test: a hallucinating
// model generates queries with invented fields; the verifier rejects
// them and the feedback loop repairs the generation.
func TestNLQueryRepairLoop(t *testing.T) {
	t.Parallel()
	in := (&scenarios.Congestion{}).Build(rand.New(rand.NewSource(3)))
	repaired, gaveUp := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		model := llm.NewSimLLM(kb.Default(), seed)
		model.HallucinationRate = 0.6
		tool := NewNLQueryTool(model)
		res, err := tool.Invoke(in.World, map[string]string{"question": "show hot links by utilization"})
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case hasFinding(res, "query_verified=true attempts=1"):
			// clean first try
		case hasFinding(res, "query_verified=true"):
			repaired++
		case hasFinding(res, "query_verified=false"):
			gaveUp++
		default:
			t.Fatalf("unclassifiable result: %v", res.Findings)
		}
		// Crucially: a hallucinated field NEVER executes. Every verified
		// finding must reference real schema fields only.
		for _, f := range res.Findings {
			if strings.Contains(f, "bandwidth_pct") || strings.Contains(f, "errors_pm") || strings.Contains(f, "throughput") {
				if !strings.Contains(f, "query_verified=false") {
					t.Fatalf("hallucinated field leaked into execution: %v", f)
				}
			}
		}
	}
	if repaired == 0 {
		t.Error("repair loop never engaged at 60% hallucination")
	}
	t.Logf("repaired=%d gaveUp=%d of 20", repaired, gaveUp)
}

func TestNLQueryMissingQuestion(t *testing.T) {
	t.Parallel()
	model := llm.NewSimLLM(kb.Default(), 4)
	tool := NewNLQueryTool(model)
	if _, err := tool.Invoke(nil, nil); err == nil {
		t.Fatal("missing question accepted")
	}
}
