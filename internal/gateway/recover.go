package gateway

// Boot-time journal recovery: replay the write-ahead incident journal
// into a freshly constructed gateway so a restart — graceful or SIGKILL
// — preserves every acknowledged arrival. The replay rebuilds the
// canonical records (accepted fields, then patches in journal order),
// re-executes each unresolved incident's session from its derived seed
// (DeriveSeed(base, id) — byte-identical to the pre-crash run), and
// re-offers the arrivals into the live scheduler before advancing the
// watermark to the journal's high-water mark. Offering everything first
// and advancing once means the engine replays admissions, dispatches
// and sheds in (At, ID) order: the same deterministic schedule the
// pre-crash process was executing, with each incident holding exactly
// one slot (zero duplicate execution).
//
// Caller-resolved incidents are restored as records but NOT re-offered:
// the caller already declared them terminal, so burning a responder on
// them would be duplicate work. Shed records are informational — a
// re-offered arrival re-sheds deterministically under the same
// admission state, which also means a recovering boot may append fresh
// shed records for arrivals shed again during replay.

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/scenarios"
)

// RecoverStats summarizes a boot-time journal replay.
type RecoverStats struct {
	// Records is the count of clean journal records applied.
	Records int
	// Dropped counts torn/corrupt tail lines the decoder discarded.
	Dropped int
	// Reoffered is how many incidents re-ran and re-entered the
	// scheduler.
	Reoffered int
	// Resolved is how many caller-resolved incidents were restored as
	// records only.
	Resolved int
}

// recovered accumulates one incident's state across its journal
// records.
type recovered struct {
	rec      *Record
	scenario string
	severity int // effective severity at accept time (what scheduling saw)
	resolved bool
}

// Recover replays a journal into the gateway. Call it exactly once, on
// a freshly built server, before serving traffic; it flips /readyz to
// ready when done (even on an empty replay — first boot). An error
// means the journal and scheduler disagree (a harness bug or an
// operator pointing -journal at the wrong directory), not a torn tail:
// torn tails are dropped silently by design.
func (s *Server) Recover(rr journal.ReplayResult) (RecoverStats, error) {
	defer s.ready.Store(true)
	stats := RecoverStats{Records: len(rr.Records), Dropped: rr.Dropped}

	var order []string
	ghosts := map[string]*recovered{}
	for _, r := range rr.Records {
		switch r.Kind {
		case journal.KindAccepted:
			if r.ID == "" || ghosts[r.ID] != nil {
				continue // defensive: the gateway never double-accepts
			}
			sev := 0
			if r.Severity != nil {
				sev = *r.Severity
			}
			// Legacy (V0, pre-region) records home in the default region,
			// which is how an old single-cell WAL replays cleanly into a
			// sharded scheduler.
			region := r.Region
			if region == "" {
				region = fleet.DefaultRegion
			}
			ghosts[r.ID] = &recovered{
				rec: &Record{
					ID: r.ID, Scenario: r.Scenario, Region: region,
					Title: r.Title, Summary: r.Summary, Service: r.Service,
					Severity: Severity(sev), Status: "open",
					ReportedBy:      r.ReportedBy,
					OpenedAtMinutes: r.OpenedAtMinutes,
				},
				scenario: r.Scenario, severity: sev,
			}
			order = append(order, r.ID)
		case journal.KindPatched, journal.KindResolved:
			g := ghosts[r.ID]
			if g == nil {
				continue
			}
			if r.Status != "" {
				g.rec.Status = r.Status
			}
			if r.Severity != nil {
				g.rec.Severity = Severity(*r.Severity)
			}
			if r.Note != "" {
				g.rec.Notes = append(g.rec.Notes, r.Note)
			}
			g.resolved = g.rec.Status == "resolved"
		case journal.KindShed:
			// Informational; the re-offer below re-derives the shed.
		}
	}

	s.mu.Lock()
	for id, g := range ghosts {
		s.records[id] = g.rec
		// Resume the auto-ID counter past journaled gateway-assigned
		// IDs so post-recovery creates never collide.
		var n int
		if _, err := fmt.Sscanf(id, "inc-%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	s.mu.Unlock()

	for _, id := range order {
		g := ghosts[id]
		if g.resolved {
			stats.Resolved++
			continue
		}
		seed := DeriveSeed(s.cfg.Seed, id)
		in := scenarios.ByName(g.scenario).Build(rand.New(rand.NewSource(seed)))
		in.Incident.Severity = g.severity
		in.Incident.ID = id
		var rec *obs.Recorder
		var res harness.Result
		if or, observed := s.cfg.Runner.(harness.ObservedRunner); observed && s.cfg.Sink != nil {
			rec = obs.AcquireRecorder("gw/" + id)
			res = or.RunObserved(in, seed, rec)
		} else {
			res = s.cfg.Runner.Run(in, seed)
		}
		err := s.cfg.Sched.Offer(fleet.LiveArrival{
			ID: id, At: time.Duration(g.rec.OpenedAtMinutes * float64(time.Minute)),
			Scenario: g.scenario, Region: g.rec.Region, Severity: in.Incident.Severity,
			Result: res, Events: rec,
		})
		if err != nil {
			if rec != nil {
				rec.Release()
			}
			return stats, fmt.Errorf("gateway: recover %s: %w", id, err)
		}
		stats.Reoffered++
	}

	if ac, ok := s.cfg.Clock.(AdvanceClock); ok {
		ac.AdvanceTo(time.Duration(rr.MaxAtMinutes() * float64(time.Minute)))
	}
	s.cfg.Sched.StepTo(s.cfg.Clock.Now())
	s.notify()
	if s.cfg.Sink != nil && len(rr.Records) > 0 {
		s.cfg.Sink.Registry().Inc(obs.MJournalReplayed, nil, float64(len(rr.Records)))
	}
	return stats, nil
}
