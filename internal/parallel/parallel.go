// Package parallel is the worker-pool trial runner behind every
// evaluation surface in this repository: the experiment harnesses
// (E1-E12), the A/B run matrix, the corpus replayer, and the benches.
//
// Its core contract is *scheduling independence*: the (trial, seed)
// pairs and the order of the collected result slice depend only on the
// trial count and the base seed — never on the worker count or the
// goroutine interleaving. A deterministic trial function therefore
// produces bit-identical aggregate output at workers=1 and workers=N,
// which is what lets the experiment tables stay reproducible while the
// wall clock shrinks with cores.
//
// Trials must be self-contained: each builds its own world, model, and
// toolbox from the derived seed, and shares only immutable inputs (a
// knowledge base, a frozen history) with its siblings. A trial that
// panics is converted into a recorded *PanicError on its TrialResult —
// one crashed trial never takes down the run or the process.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// golden is the 64-bit golden-ratio constant splitmix64 increments by;
// it is odd, so trial -> base + (trial+1)*golden is injective over the
// full 64-bit ring.
const golden = 0x9e3779b97f4a7c15

// DeriveSeed maps (base seed, trial index) to the trial's private seed
// with a splitmix64 finalizer. It is a pure function — independent of
// worker count, scheduling, and call order — and injective in the trial
// index for a fixed base: distinct trials never collide.
func DeriveSeed(base int64, trial int) int64 {
	z := uint64(base) + (uint64(trial)+1)*golden
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// TrialFunc runs one self-contained trial. It must derive all randomness
// from seed and must not mutate state shared with other trials.
type TrialFunc[T any] func(seed int64, trial int) T

// TrialResult is the recorded outcome of one trial, delivered in trial
// order regardless of which worker ran it when.
type TrialResult[T any] struct {
	Trial   int
	Seed    int64
	Value   T
	Err     error // non-nil iff the trial panicked; *PanicError
	Elapsed time.Duration
}

// PanicError records a trial that panicked: the run keeps going and the
// crash becomes data instead of taking the process down.
type PanicError struct {
	Trial int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: trial %d panicked: %v", e.Trial, e.Value)
}

// Progress aggregates live counters over a run; safe for concurrent
// reads while RunTrials executes (e.g. from a reporting goroutine).
type Progress struct {
	started  atomic.Int64
	done     atomic.Int64
	panicked atomic.Int64
	nanos    atomic.Int64 // summed per-trial wall time
}

// Started reports trials that have begun executing.
func (p *Progress) Started() int64 { return p.started.Load() }

// Done reports trials that have finished (including panicked ones).
func (p *Progress) Done() int64 { return p.done.Load() }

// Panicked reports trials whose function panicked.
func (p *Progress) Panicked() int64 { return p.panicked.Load() }

// TrialTime is the summed per-trial wall time — at workers=N it exceeds
// the run's wall clock by roughly the achieved speedup factor.
func (p *Progress) TrialTime() time.Duration { return time.Duration(p.nanos.Load()) }

// Workers normalizes a worker-count knob: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS), and the count never exceeds n so
// tiny runs don't spawn idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunTrials executes n independent trials of fn over a bounded worker
// pool and returns their results indexed by trial. Trial i always
// receives DeriveSeed(base, i); results land at slice position i. The
// returned slice is identical for any workers value — concurrency is
// invisible except in wall-clock time.
func RunTrials[T any](n, workers int, base int64, fn TrialFunc[T]) []TrialResult[T] {
	return RunTrialsProgress(n, workers, base, nil, fn)
}

// RunTrialsProgress is RunTrials with live progress counters (prog may
// be nil).
func RunTrialsProgress[T any](n, workers int, base int64, prog *Progress, fn TrialFunc[T]) []TrialResult[T] {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	results := make([]TrialResult[T], n)

	// Workers pull the next trial index from an atomic counter and write
	// into their own slot; slots are disjoint, so no further locking is
	// needed and result order is trial order by construction.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = runOne(i, DeriveSeed(base, i), prog, fn)
			}
		}()
	}
	wg.Wait()
	return results
}

// runOne executes a single trial with panic capture and timing.
func runOne[T any](trial int, seed int64, prog *Progress, fn TrialFunc[T]) (tr TrialResult[T]) {
	tr.Trial, tr.Seed = trial, seed
	if prog != nil {
		prog.started.Add(1)
	}
	start := time.Now()
	defer func() {
		tr.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			tr.Err = &PanicError{Trial: trial, Value: r, Stack: debug.Stack()}
			if prog != nil {
				prog.panicked.Add(1)
			}
		}
		if prog != nil {
			prog.done.Add(1)
			prog.nanos.Add(int64(tr.Elapsed))
		}
	}()
	tr.Value = fn(seed, trial)
	return tr
}

// Values extracts the successful trial values in trial order, dropping
// panicked trials.
func Values[T any](rs []TrialResult[T]) []T {
	out := make([]T, 0, len(rs))
	for _, r := range rs {
		if r.Err == nil {
			out = append(out, r.Value)
		}
	}
	return out
}

// FirstErr returns the lowest-trial-index error, or nil if every trial
// succeeded.
func FirstErr[T any](rs []TrialResult[T]) error {
	for _, r := range rs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
