package mitigation

// Error-path coverage for the executor's FailOn hook: injected
// automation failures must abort the action after its latency is
// charged, leave the world untouched, and stop a plan mid-way.

import (
	"errors"
	"testing"
)

func TestExecuteFailOnAbortsAfterLatency(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	lid := w.Net.Links()[0].ID
	injected := errors.New("automation down")
	ex := &Executor{World: w, Clocked: true, Actor: "test", FailOn: func(a Action) error {
		return injected
	}}
	a := Action{Kind: IsolateLink, Target: string(lid)}
	before := w.Clock.Now()
	if err := ex.Execute(a); !errors.Is(err, injected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if got := w.Clock.Now() - before; got != a.Latency() {
		t.Fatalf("failed automation should still charge latency %v, charged %v", a.Latency(), got)
	}
	if w.Net.Link(lid).Isolated {
		t.Fatal("action failed but the world changed")
	}
	if n := len(w.Changes.All()); n != 0 {
		t.Fatalf("failed action left %d change records", n)
	}
}

func TestExecutePlanStopsAtInjectedFailure(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	links := w.Net.Links()
	failOn := Action{Kind: IsolateLink, Target: string(links[1].ID)}
	ex := &Executor{World: w, Clocked: true, Actor: "test", FailOn: func(a Action) error {
		if a.Matches(failOn) {
			return errors.New("automation down")
		}
		return nil
	}}
	plan := Plan{Actions: []Action{
		{Kind: IsolateLink, Target: string(links[0].ID)},
		failOn,
		{Kind: IsolateLink, Target: string(links[2].ID)},
	}}
	if err := ex.ExecutePlan(plan); err == nil {
		t.Fatal("plan with a failing action must error")
	}
	if !w.Net.Link(links[0].ID).Isolated {
		t.Fatal("action before the failure should have applied")
	}
	if w.Net.Link(links[1].ID).Isolated || w.Net.Link(links[2].ID).Isolated {
		t.Fatal("failed and subsequent actions must not apply")
	}
}

func TestExecuteNilFailOnUnchanged(t *testing.T) {
	t.Parallel()
	w := smallWorld()
	lid := w.Net.Links()[0].ID
	ex := &Executor{World: w, Clocked: true, Actor: "test"}
	if err := ex.Execute(Action{Kind: IsolateLink, Target: string(lid)}); err != nil {
		t.Fatal(err)
	}
	if !w.Net.Link(lid).Isolated {
		t.Fatal("action did not apply")
	}
}
