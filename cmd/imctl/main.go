// Command imctl runs a single simulated incident through the OCE-helper
// and prints the module-by-module session trace — Figure 1 in action.
// The `fleet` subcommand scales that up: a whole responder pool under
// Poisson incident load on the fleet scheduler (see internal/fleet).
//
// Usage:
//
//	imctl [-scenario cascade-5] [-seed 7] [-stale] [-hallucination 0.2]
//	      [-incontext] [-window 8192] [-list]
//	imctl fleet [-oces 2] [-rate 4] [-n 60] [-queue 8] [-arm all]
//	            [-seed 7] [-workers 8] [-faultrate 0.2] [-trace-out ...]
//	imctl lake -dir DIR [-tag mitigated] [-id inc-0001] [-promote verified]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/kb"
)

// in2 regenerates the identical incident for a second pass.
func in2(sys *aiops.System, scenario string, seed int64) (*aiops.Instance, int64) {
	in, err := sys.Spawn(scenario, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return in, seed
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		fleetMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "lake" {
		lakeMain(os.Args[2:])
		return
	}
	var (
		scenario      = flag.String("scenario", "cascade-5", "incident class to generate")
		seed          = flag.Int64("seed", 7, "random seed")
		stale         = flag.Bool("stale", false, "use the stale (pre-fastpath) knowledge base")
		inctx         = flag.Bool("incontext", false, "supply the fastpath knowledge as in-context rules")
		hallucination = flag.Float64("hallucination", 0, "model hallucination rate [0,1]")
		window        = flag.Int("window", 0, "context window override (tokens)")
		expertise     = flag.Float64("expertise", 0.9, "OCE expertise [0,1]")
		list          = flag.Bool("list", false, "list available scenarios and exit")
		postmortem    = flag.Bool("postmortem", false, "print a generated postmortem after the session")
	)
	flag.Parse()

	opts := []aiops.Option{
		aiops.WithSeed(*seed),
		aiops.WithHallucination(*hallucination),
		aiops.WithExpertise(*expertise),
	}
	if *stale || *inctx {
		opts = append(opts, aiops.WithStaleKnowledge())
	}
	if *window > 0 {
		opts = append(opts, aiops.WithContextWindow(*window))
	}
	if *inctx {
		cfg := aiops.HelperConfig{}
		cfg.InContextRules = []aiops.InContextRule{
			{Cause: kb.CProtocolRollout, Effect: kb.CProtocolBug, Strength: 0.4},
			{Cause: kb.CProtocolBug, Effect: kb.CDeviceOSCrash, Strength: 0.8},
		}
		opts = append(opts, aiops.WithHelperConfig(cfg))
	}
	sys := aiops.New(opts...)

	if *list {
		for _, n := range sys.ScenarioNames() {
			fmt.Println(n)
		}
		return
	}

	in, err := sys.Spawn(*scenario, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("incident:", in.Incident.String())
	fmt.Println()
	fmt.Println(in.Incident.Summary)
	fmt.Println()

	res, trace := sys.Trace(in, *seed)
	fmt.Println("--- helper session trace " + "---")
	fmt.Print(trace)
	fmt.Println()
	fmt.Printf("mitigated=%v correct=%v rootcause=%v escalated=%v\n", res.Mitigated, res.Correct, res.RootCause, res.Escalated)
	fmt.Printf("TTM=%s rounds=%d toolCalls=%d llmCalls=%d tokens=%d\n",
		res.TTM.Truncate(1e9), res.Rounds, res.ToolCalls, res.LLMCalls, res.Tokens)
	fmt.Printf("applied plan: %s\n", res.Applied)
	if *postmortem {
		_, pm := sys.Postmortem(in2(sys, *scenario, *seed))
		fmt.Println()
		fmt.Print(pm)
	}
	if !res.Mitigated {
		os.Exit(2)
	}
}
