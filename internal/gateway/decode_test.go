package gateway

import (
	"errors"
	"testing"
	"time"
)

// TestDecodeCreate pins the create codec's accept/reject boundary: one
// row per rule, with the field the FieldError must blame.
func TestDecodeCreate(t *testing.T) {
	t.Parallel()
	longID := make([]byte, maxIDLen+1)
	for i := range longID {
		longID[i] = 'a'
	}
	cases := []struct {
		name  string
		body  string
		field string // "" = accepted, "!" = non-field (400-class) error
	}{
		{"minimal", `{"scenario":"gray-link"}`, ""},
		{"full", `{"id":"inc-1","scenario":"device-failure","severity":"sev3","title":"t","summary":"s","service":"svc","opened_at_minutes":90}`, ""},
		{"severity as int", `{"scenario":"gray-link","severity":2}`, ""},
		{"missing scenario", `{}`, "scenario"},
		{"unknown scenario", `{"scenario":"nope"}`, "scenario"},
		{"bad severity enum", `{"scenario":"gray-link","severity":"sev4"}`, "severity"},
		{"bad severity word", `{"scenario":"gray-link","severity":"high"}`, "severity"},
		{"bad id charset", `{"id":"a b","scenario":"gray-link"}`, "id"},
		{"id too long", `{"id":"` + string(longID) + `","scenario":"gray-link"}`, "id"},
		{"negative time", `{"scenario":"gray-link","opened_at_minutes":-5}`, "opened_at_minutes"},
		{"overflow time", `{"scenario":"gray-link","opened_at_minutes":1e30}`, "opened_at_minutes"},
		{"unknown field", `{"scenario":"gray-link","color":"red"}`, "!"},
		{"trailing data", `{"scenario":"gray-link"} {}`, "!"},
		{"malformed", `{"scenario":`, "!"},
		{"wrong shape", `["gray-link"]`, "!"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCreate([]byte(tc.body))
			checkFieldErr(t, err, tc.field)
		})
	}
}

// TestDecodeUpdate does the same for the update codec.
func TestDecodeUpdate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name  string
		body  string
		field string
	}{
		{"status only", `{"status":"investigating"}`, ""},
		{"note only", `{"note":"checked optics"}`, ""},
		{"severity only", `{"severity":"sev1"}`, ""},
		{"all statuses", `{"status":"resolved"}`, ""},
		{"empty update", `{}`, "status"},
		{"unknown status", `{"status":"escalated"}`, "status"},
		{"bad severity", `{"severity":"sev7"}`, "severity"},
		{"unknown field", `{"closed":true}`, "!"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeUpdate([]byte(tc.body))
			checkFieldErr(t, err, tc.field)
		})
	}
}

func checkFieldErr(t *testing.T, err error, field string) {
	t.Helper()
	var fe *FieldError
	switch field {
	case "":
		if err != nil {
			t.Fatalf("want accept, got %v", err)
		}
	case "!":
		if err == nil {
			t.Fatal("want parse-level error, got accept")
		}
		if errors.As(err, &fe) {
			t.Fatalf("want non-field error, got FieldError %v", fe)
		}
	default:
		if err == nil {
			t.Fatal("want FieldError, got accept")
		}
		if !errors.As(err, &fe) {
			t.Fatalf("want FieldError, got %T %v", err, err)
		}
		if fe.Field != field {
			t.Fatalf("blamed field %q, want %q (%v)", fe.Field, field, fe)
		}
	}
}

// TestSeverityWireForm pins the canonical encoding and both accepted
// input forms.
func TestSeverityWireForm(t *testing.T) {
	t.Parallel()
	for n := 0; n <= MaxSeverity; n++ {
		s := Severity(n)
		b, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		want := `"sev` + string(rune('0'+n)) + `"`
		if string(b) != want {
			t.Fatalf("sev%d marshals %s, want %s", n, b, want)
		}
		var back Severity
		if err := back.UnmarshalJSON(b); err != nil || back != s {
			t.Fatalf("sev%d string form: got %v, %v", n, back, err)
		}
		if err := back.UnmarshalJSON([]byte{byte('0' + n)}); err != nil || back != s {
			t.Fatalf("sev%d int form: got %v, %v", n, back, err)
		}
	}
	if _, err := Severity(4).MarshalJSON(); err == nil {
		t.Fatal("out-of-range severity must not marshal")
	}
}

// TestDeriveSeedStable pins the seed derivation: a pure function of
// (base, id) — these exact values are what makes every historical
// incident replayable by ID.
func TestDeriveSeedStable(t *testing.T) {
	t.Parallel()
	if a, b := DeriveSeed(7, "inc-0001"), DeriveSeed(7, "inc-0001"); a != b {
		t.Fatalf("not a function: %d vs %d", a, b)
	}
	if a, b := DeriveSeed(7, "inc-0001"), DeriveSeed(7, "inc-0002"); a == b {
		t.Fatalf("ids collide: %d", a)
	}
	if a, b := DeriveSeed(7, "inc-0001"), DeriveSeed(8, "inc-0001"); a == b {
		t.Fatalf("bases collide: %d", a)
	}
}

// TestSimClock pins the sim side of the bridge: time only moves
// forward, and only when told.
func TestSimClock(t *testing.T) {
	t.Parallel()
	c := NewSimClock()
	if c.Now() != 0 {
		t.Fatal("sim clock must start at zero")
	}
	if got := c.AdvanceTo(10 * time.Minute); got != 10*time.Minute {
		t.Fatalf("advance to 10m: %v", got)
	}
	if got := c.AdvanceTo(5 * time.Minute); got != 10*time.Minute {
		t.Fatalf("clock moved backward: %v", got)
	}
	if got := c.Advance(-time.Hour); got != 10*time.Minute {
		t.Fatalf("negative advance moved clock: %v", got)
	}
	if got := c.Advance(5 * time.Minute); got != 15*time.Minute {
		t.Fatalf("advance 5m: %v", got)
	}
}

// TestWallClock pins the wall side: elapsed real time maps through the
// scale monotonically.
func TestWallClock(t *testing.T) {
	t.Parallel()
	c := NewWallClock(time.Minute)
	a := c.Now()
	time.Sleep(10 * time.Millisecond)
	b := c.Now()
	if b < a {
		t.Fatalf("wall clock went backward: %v then %v", a, b)
	}
	if b < 400*time.Millisecond {
		// 10ms wall at 1s->1m is >= 600ms simulated; allow slack for
		// coarse timers.
		t.Fatalf("scale not applied: 10ms wall mapped to %v", b)
	}
}
