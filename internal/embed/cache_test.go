package embed

import "testing"

// The memo tests are deliberately not parallel: they call
// InvalidateCache, which is process-wide state shared with any test that
// embeds text.

func TestEmbedMemoHitMissAccounting(t *testing.T) {
	if !EmbedCacheEnabled() {
		t.Skip("embed cache disabled")
	}
	InvalidateCache() // isolate from earlier tests' global warmth
	s := NewStore(NewDomainEmbedder(64))
	s.Add("a", "packet loss in us-east after config push")
	s.Add("b", "fiber cut on the backbone")
	if h, m := s.CacheStats(); h != 0 || m != 2 {
		t.Fatalf("after two distinct Adds: %d hits / %d misses, want 0/2", h, m)
	}
	s.Search("packet loss in us-east after config push", 1)
	if h, m := s.CacheStats(); h != 1 || m != 2 {
		t.Fatalf("query matching a stored text should hit: %d/%d, want 1/2", h, m)
	}
	s.Search("latency spikes in eu-north", 1)
	if h, m := s.CacheStats(); h != 1 || m != 3 {
		t.Fatalf("novel query should miss: %d/%d, want 1/3", h, m)
	}
	s.Search("latency spikes in eu-north", 1)
	if h, m := s.CacheStats(); h != 2 || m != 3 {
		t.Fatalf("repeated query should hit: %d/%d, want 2/3", h, m)
	}
}

// A store's counters must reflect only its own lookups: global-memo
// warmth left by another store (in production, another trial's) cannot
// turn this store's first sight of a text into a hit — that is what
// keeps the aiops_cache_* metrics identical at every worker count.
func TestEmbedMemoCountersAreStoreLocal(t *testing.T) {
	if !EmbedCacheEnabled() {
		t.Skip("embed cache disabled")
	}
	InvalidateCache()
	warm := NewStore(NewDomainEmbedder(64))
	warm.Add("a", "oscrash on tor switch")

	s := NewStore(NewDomainEmbedder(64))
	s.Add("a", "oscrash on tor switch") // globally warm, locally cold
	if h, m := s.CacheStats(); h != 0 || m != 1 {
		t.Fatalf("global warmth leaked into store counters: %d hits / %d misses", h, m)
	}
}

func TestInvalidateCacheEvictsStaleEmbeddings(t *testing.T) {
	if !EmbedCacheEnabled() {
		t.Skip("embed cache disabled")
	}
	InvalidateCache()
	s := NewStore(NewDomainEmbedder(64))
	s.Add("a", "packet loss in us-east")
	s.Search("packet loss in us-east", 1)
	h0, m0 := s.CacheStats()

	// The KB corpus changed (kb.Bump calls this): both the global memo
	// and every store's local view must drop, so the next lookup
	// recomputes instead of serving a vector derived from retired text.
	InvalidateCache()
	memoMu.RLock()
	left := len(memoVecs)
	memoMu.RUnlock()
	if left != 0 {
		t.Fatalf("global memo kept %d entries past invalidation", left)
	}
	s.Search("packet loss in us-east", 1)
	if h, m := s.CacheStats(); h != h0 || m != m0+1 {
		t.Fatalf("post-invalidation lookup should miss: %d/%d, want %d/%d", h, m, h0, m0+1)
	}
	// And the recomputed entry memoizes again.
	s.Search("packet loss in us-east", 1)
	if h, m := s.CacheStats(); h != h0+1 {
		t.Fatalf("re-warmed lookup should hit: %d/%d", h, m)
	}
}

// The Cosine double-work fix: a warm store serves repeat embeddings with
// zero allocations — no re-embedding, no norm re-accumulation buffers.
func TestEmbedTextWarmZeroAllocs(t *testing.T) {
	if !EmbedCacheEnabled() {
		t.Skip("embed cache disabled")
	}
	InvalidateCache()
	s := NewStore(NewDomainEmbedder(64))
	const text = "severe packet loss and retransmissions after config push"
	s.Add("a", text)
	if allocs := testing.AllocsPerRun(100, func() {
		s.embedText(text)
	}); allocs != 0 {
		t.Fatalf("warm embedText allocates %v per run, want 0", allocs)
	}
	// The similarity kernel itself is allocation-free too.
	q, qn := s.embedText(text)
	if allocs := testing.AllocsPerRun(100, func() {
		cosineWithNorms(q, s.vecs[0], qn, s.norms[0])
	}); allocs != 0 {
		t.Fatalf("cosineWithNorms allocates %v per run, want 0", allocs)
	}
}

// cosineWithNorms with norms from sqNorm must be bit-identical to Cosine
// — the cache substitutes one for the other in Search.
func TestCosineWithNormsBitIdentical(t *testing.T) {
	e := NewDomainEmbedder(128)
	texts := []string{
		"packet loss in us-east after config push",
		"fiber cut on the backbone carrier",
		"latency spikes and congestion in the web tier",
		"device resetting with watchdog exceptions",
	}
	for i, ta := range texts {
		for _, tb := range texts[i:] {
			a, b := e.Embed(ta), e.Embed(tb)
			want := Cosine(a, b)
			if got := cosineWithNorms(a, b, sqNorm(a), sqNorm(b)); got != want {
				t.Fatalf("cosineWithNorms(%q, %q) = %v, Cosine = %v", ta, tb, got, want)
			}
		}
	}
}
