package aiops

import (
	"bytes"
	"strings"
	"testing"
)

func TestSystemEndToEnd(t *testing.T) {
	t.Parallel()
	sys := New(WithSeed(1))
	if len(sys.ScenarioNames()) < 8 {
		t.Fatalf("scenario names: %v", sys.ScenarioNames())
	}
	in, err := sys.Spawn("gray-link", 1)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Assist(in, 1)
	if !res.Mitigated || !res.Correct {
		t.Fatalf("assist failed: %+v", res)
	}
	if _, err := sys.Spawn("no-such", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestSystemTrace(t *testing.T) {
	t.Parallel()
	sys := New(WithSeed(2))
	in, _ := sys.Spawn("cascade-5", 2)
	res, trace := sys.Trace(in, 2)
	if !res.Mitigated {
		t.Fatalf("cascade not mitigated:\n%s", trace)
	}
	for _, want := range []string{"hypotheses", "tool-invoked", "plan-proposed", "executed", "verified"} {
		if !strings.Contains(trace.String(), want) {
			t.Errorf("trace missing %q", want)
		}
	}
	if len(trace.Events) == 0 || len(trace.Display()) == 0 {
		t.Error("structured trace carries no events")
	}
}

func TestSystemOneShotAndControl(t *testing.T) {
	t.Parallel()
	sys := New(WithSeed(3))
	sys.GenerateHistory(60, 3)
	if sys.History().Len() != 60 {
		t.Fatalf("history = %d", sys.History().Len())
	}
	in, _ := sys.Spawn("device-failure", 3)
	osRes := sys.OneShot(in, 3)
	if osRes.TTM <= 0 {
		t.Error("one-shot TTM missing")
	}
	in2, _ := sys.Spawn("device-failure", 3)
	ctl := sys.Unassisted(in2, 3)
	if !ctl.Mitigated {
		t.Errorf("control failed simple incident: %+v", ctl)
	}
}

func TestSystemStaleKnowledgeOption(t *testing.T) {
	t.Parallel()
	stale := New(WithStaleKnowledge(), WithSeed(4))
	in, _ := stale.Spawn("novel-protocol", 4)
	res := stale.Assist(in, 4)
	if res.Mitigated && res.Correct {
		t.Fatal("stale system resolved the novel incident")
	}
	fresh := New(WithSeed(4))
	in2, _ := fresh.Spawn("novel-protocol", 4)
	res2 := fresh.Assist(in2, 4)
	if !res2.Correct {
		t.Fatal("current-knowledge system failed the novel incident")
	}
}

func TestSystemABAndReplay(t *testing.T) {
	t.Parallel()
	sys := New(WithSeed(5))
	ab := sys.ABTest(40, 5)
	if ab.Treatment.N+ab.Control.N != 40 {
		t.Fatalf("AB arms: %d + %d", ab.Treatment.N, ab.Control.N)
	}
	rep := sys.Replay(30, 5)
	if len(rep.Items) != 30 {
		t.Fatalf("replay items: %d", len(rep.Items))
	}
}

func TestSystemOptionKnobs(t *testing.T) {
	t.Parallel()
	sys := New(
		WithHallucination(0.9),
		WithContextWindow(64),
		WithExpertise(0.2),
		WithGenericEmbeddings(),
		WithHelperConfig(HelperConfig{Beam: 1, MaxRounds: 2}),
	)
	in, _ := sys.Spawn("cascade-5", 6)
	res := sys.Assist(in, 6)
	// A crippled helper must fail safe: escalate rather than thrash.
	if res.Mitigated && res.Correct {
		t.Log("crippled helper got lucky; acceptable but unusual")
	}
	if !res.Mitigated && !res.Escalated {
		t.Error("unmitigated incident must escalate")
	}
}

func TestSystemFleet(t *testing.T) {
	t.Parallel()
	sys := New(WithSeed(8))
	a := sys.Fleet(2, 4, 30, 8)
	c := sys.FleetUnassisted(2, 4, 30, 8)
	if a.MeanTotal >= c.MeanTotal {
		t.Fatalf("assisted fleet not faster: %v vs %v", a.MeanTotal, c.MeanTotal)
	}
}

func TestSystemHistoryPersistence(t *testing.T) {
	t.Parallel()
	sys := New(WithSeed(9))
	sys.GenerateHistory(10, 9)
	var buf bytes.Buffer
	if err := sys.SaveHistory(&buf); err != nil {
		t.Fatal(err)
	}
	other := New(WithSeed(9))
	if err := other.LoadHistory(&buf); err != nil {
		t.Fatal(err)
	}
	if other.History().Len() != 10 {
		t.Fatalf("loaded %d records", other.History().Len())
	}
}

func TestSystemPostmortem(t *testing.T) {
	t.Parallel()
	sys := New(WithSeed(10))
	in, _ := sys.Spawn("cascade-5", 10)
	res, pm := sys.Postmortem(in, 10)
	if !res.Mitigated {
		t.Fatal("cascade not mitigated")
	}
	for _, want := range []string{"# Postmortem:", "## Timeline", "## Follow-ups"} {
		if !strings.Contains(pm.String(), want) {
			t.Errorf("postmortem missing %q", want)
		}
	}
	if pm.Costs.LLMCalls == 0 || pm.Costs.CostUSD <= 0 {
		t.Errorf("postmortem costs not populated: %+v", pm.Costs)
	}
}

func TestWithFaultsRejectsInvalidConfig(t *testing.T) {
	t.Parallel()
	for _, fc := range []FaultConfig{{Rate: 1.5}, {Rate: -0.1}, {ActionRate: 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WithFaults(%+v) did not panic", fc)
				}
			}()
			WithFaults(fc)
		}()
	}
	WithFaults(FaultConfig{Rate: 0.5, ActionRate: 0.25}) // legal: must not panic
}
