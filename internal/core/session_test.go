package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/embed"
	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/risk"
	"repro/internal/scenarios"
	"repro/internal/tools"
)

// buildHelper assembles a default helper for one incident instance over
// the given knowledge base.
func buildHelper(in *scenarios.Instance, kbase *kb.KB, seed int64, cfg Config) (*Helper, *OCE) {
	model := llm.NewSimLLM(kbase, seed)
	store := embed.NewStore(embed.NewDomainEmbedder(128))
	reg := tools.NewDefaultRegistry(store, kbase.History(), in.Incident.Title+" "+in.Incident.Summary, in.Incident.Service)
	h := &Helper{Model: model, Tools: reg, Quant: &risk.Assessor{}, Config: cfg}
	oce := NewOCE(0.9, kbase, rand.New(rand.NewSource(seed+1000)))
	return h, oce
}

func runScenario(t *testing.T, sc scenarios.Scenario, kbase *kb.KB, seed int64, cfg Config) (*scenarios.Instance, *Outcome) {
	t.Helper()
	in := sc.Build(rand.New(rand.NewSource(seed)))
	h, oce := buildHelper(in, kbase, seed, cfg)
	out := h.Run(in.World, in.Incident, oce)
	return in, out
}

// TestHelperSolvesEveryKnownScenario is the core contract: with the
// current KB the iterative helper mitigates every scenario class with a
// ground-truth-correct plan.
func TestHelperSolvesEveryKnownScenario(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase) // current knowledge, incl. fastpath
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				in, out := runScenario(t, sc, kbase, seed, DefaultConfig())
				if !out.Mitigated {
					t.Fatalf("seed %d: not mitigated; escalated=%v trace:\n%s", seed, out.Escalated, FormatTrace(out.Trace))
				}
				if !in.Succeeded(out.Applied) {
					t.Fatalf("seed %d: mitigated but plan %v does not satisfy ground truth; trace:\n%s",
						seed, out.Applied, FormatTrace(out.Trace))
				}
				if out.TTM <= 0 {
					t.Errorf("seed %d: TTM = %v", seed, out.TTM)
				}
				if out.LLMUsage.Calls == 0 {
					t.Error("no LLM usage metered")
				}
				if len(out.Trace) == 0 {
					t.Error("empty trace")
				}
			}
		})
	}
}

// TestHelperFindsRootCauseOnCascade: the deduction chain must reach the
// cascade's root cause concept, not just mitigate.
func TestHelperFindsCascadeChain(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	in, out := runScenario(t, &scenarios.Cascade{Stage: 5}, kbase, 1, DefaultConfig())
	if !out.Mitigated {
		t.Fatalf("not mitigated:\n%s", FormatTrace(out.Trace))
	}
	confirmed := map[string]bool{}
	for _, c := range out.Confirmed {
		confirmed[c] = true
	}
	// The chain must include the intermediate deductions of Fig. 2.
	for _, want := range []string{kb.CLinkOverload, kb.CWANFailover} {
		if !confirmed[want] {
			t.Errorf("chain %v missing %s", out.Confirmed, want)
		}
	}
	_ = in
}

// TestAdaptivityFig3 reproduces the paper's Figure 3 contrast in unit
// form: the stale helper fails on the novel incident; the fine-tuned
// helper and the in-context-updated helper resolve it.
func TestAdaptivityFig3(t *testing.T) {
	t.Parallel()
	staleKB := kb.Default() // no fastpath knowledge

	t.Run("stale-fails", func(t *testing.T) {
		in, out := runScenario(t, &scenarios.NovelProtocol{}, staleKB, 2, DefaultConfig())
		if out.Mitigated && in.Succeeded(out.Applied) {
			t.Fatalf("stale helper should not resolve the novel incident:\n%s", FormatTrace(out.Trace))
		}
		if !out.Escalated {
			t.Errorf("stale helper should escalate; trace:\n%s", FormatTrace(out.Trace))
		}
	})

	t.Run("finetuned-succeeds", func(t *testing.T) {
		fresh := kb.Default()
		kb.ApplyFastpathUpdate(fresh)
		in, out := runScenario(t, &scenarios.NovelProtocol{}, fresh, 2, DefaultConfig())
		if !out.Mitigated || !in.Succeeded(out.Applied) {
			t.Fatalf("updated helper failed:\n%s", FormatTrace(out.Trace))
		}
	})

	t.Run("incontext-succeeds", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.InContextRules = []llm.InContextRule{
			{Cause: kb.CProtocolRollout, Effect: kb.CProtocolBug, Strength: 0.4},
			{Cause: kb.CProtocolBug, Effect: kb.CDeviceOSCrash, Strength: 0.8},
		}
		in, out := runScenario(t, &scenarios.NovelProtocol{}, staleKB, 2, cfg)
		if !out.Mitigated || !in.Succeeded(out.Applied) {
			t.Fatalf("in-context helper failed:\n%s", FormatTrace(out.Trace))
		}
	})
}

// TestRiskGateBlocksInsufficientPlan: on the Tokyo incident the what-if
// engine predicts that restart-only recurs, so the helper must not waste
// an execution on it when quantitative risk is on.
func TestRiskGateBlocksInsufficientPlan(t *testing.T) {
	t.Parallel()
	fresh := kb.Default()
	kb.ApplyFastpathUpdate(fresh)

	_, withRisk := runScenario(t, &scenarios.NovelProtocol{}, fresh, 3, DefaultConfig())
	if withRisk.WrongMitigations > 0 {
		t.Errorf("risk-gated helper executed %d wrong mitigations", withRisk.WrongMitigations)
	}

	cfg := DefaultConfig()
	cfg.UseQuantitativeRisk = false
	cfg.UseQualitativeRisk = false
	_, noRisk := runScenario(t, &scenarios.NovelProtocol{}, fresh, 3, cfg)
	if noRisk.WrongMitigations == 0 {
		t.Errorf("risk-free helper should burn rounds on restart-only mitigation; trace:\n%s", FormatTrace(noRisk.Trace))
	}
}

// TestHallucinationBoundedByOCE: with a perfect-expertise OCE, a heavily
// hallucinating model still cannot execute corrupted plans (quantitative
// veto) and the incident usually resolves, slower.
func TestHallucinationBoundedByOCE(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	solved, slower := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(seed)))
		h, oce := buildHelper(in, kbase, seed, DefaultConfig())
		h.Model.(*llm.SimLLM).HallucinationRate = 0.25
		oce.Expertise = 1.0
		out := h.Run(in.World, in.Incident, oce)
		if out.Mitigated && in.Succeeded(out.Applied) {
			solved++
		}
		if out.SecondaryImpact > 0 {
			t.Errorf("seed %d: hallucinating helper caused secondary impact despite gates", seed)
		}
		if out.Rounds > 2 {
			slower++
		}
	}
	if solved < 4 {
		t.Errorf("hallucinating helper solved only %d/6", solved)
	}
}

func TestEscalationAfterStall(t *testing.T) {
	t.Parallel()
	// A helper whose model knows nothing useful must escalate, not spin.
	empty := kb.New()
	empty.AddConcept(kb.Concept{ID: kb.CPacketLoss, Description: "loss"})
	in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(4)))
	model := llm.NewSimLLM(empty, 4)
	reg := tools.NewDefaultRegistry(embed.NewStore(embed.NewDomainEmbedder(64)), kb.NewHistory(), "q", "web")
	h := &Helper{Model: model, Tools: reg, Quant: &risk.Assessor{}, Config: DefaultConfig()}
	oce := NewOCE(0.9, kb.Default(), rand.New(rand.NewSource(5)))
	out := h.Run(in.World, in.Incident, oce)
	if out.Mitigated {
		t.Fatal("knowledge-free helper mitigated?")
	}
	if !out.Escalated {
		t.Fatalf("expected escalation; trace:\n%s", FormatTrace(out.Trace))
	}
	if out.TTM <= 0 {
		t.Error("escalation TTM not accounted")
	}
}

func TestPreApprovalReducesTTM(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	fast := DefaultConfig() // pre-approval on by default
	slow := DefaultConfig()
	slow.PreApproveConfidence = 0 // off
	slow.PreApproveRisk = 0

	_, outFast := runScenario(t, &scenarios.DeviceFailure{}, kbase, 6, fast)
	_, outSlow := runScenario(t, &scenarios.DeviceFailure{}, kbase, 6, slow)
	if !outFast.Mitigated || !outSlow.Mitigated {
		t.Fatal("both configurations should mitigate")
	}
	if outFast.TTM >= outSlow.TTM {
		t.Errorf("pre-approval did not reduce TTM: %v vs %v", outFast.TTM, outSlow.TTM)
	}
}

func TestConfigDefaults(t *testing.T) {
	t.Parallel()
	c := Config{}.withDefaults()
	if c.Beam != 3 || c.MaxRounds != 12 || c.RiskBudget != 0.5 || c.EvidenceWindow != 30 || c.StallLimit != 3 {
		t.Errorf("defaults = %+v", c)
	}
	if (&Outcome{}).DeepestConfirmed() != "" {
		t.Error("empty outcome deepest confirmed")
	}
	o := &Outcome{Confirmed: []string{"a", "b"}}
	if o.DeepestConfirmed() != "b" {
		t.Error("deepest confirmed wrong")
	}
}

func TestOCEModel(t *testing.T) {
	t.Parallel()
	oce := NewOCE(1.0, kb.Default(), rand.New(rand.NewSource(1)))
	if oce.VetoesHypothesis(kb.CLinkOverload) {
		t.Error("known concept vetoed")
	}
	if !oce.VetoesHypothesis("cosmic_ray_bitflip") {
		t.Error("expert failed to veto fabricated concept")
	}
	novice := NewOCE(0.0, kb.Default(), rand.New(rand.NewSource(1)))
	if novice.VetoesHypothesis("cosmic_ray_bitflip") {
		t.Error("zero-expertise OCE vetoed")
	}
	if novice.CatchesMisreading() {
		t.Error("zero-expertise OCE caught misreading")
	}
	if oce.approvalDelay(true) != 0 {
		t.Error("pre-approved decision should be free")
	}
	if oce.approvalDelay(false) <= 0 {
		t.Error("approval should cost time")
	}
	_ = mitigation.NoOp
}

// flippingModel answers interpret_test with the correct "supported=true"
// verdict except for a fixed flip probability — an isolated stand-in for
// hallucinated misreadings.
type flippingModel struct {
	rng  *rand.Rand
	flip float64
}

func (m *flippingModel) Name() string       { return "flipper" }
func (m *flippingModel) ContextWindow() int { return 1 << 20 }
func (m *flippingModel) Complete(req llm.Request) (llm.Response, error) {
	supported := m.rng.Float64() >= m.flip
	return llm.Response{Content: "VERDICT: supported=" + boolStr(supported) + " confidence=0.9 reason=x\n"}, nil
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// TestSelfConsistencyVotingMath: majority voting over a model that flips
// verdicts 35%% of the time must beat a single sample (the paper's
// self-consistency citation applied to the tester), at proportional
// token/latency cost.
func TestSelfConsistencyVotingMath(t *testing.T) {
	t.Parallel()
	run := func(votes int) (accuracy float64) {
		in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(1)))
		m := &flippingModel{rng: rand.New(rand.NewSource(7)), flip: 0.35}
		s := &session{
			h:   &Helper{Model: m},
			w:   in.World,
			cfg: Config{SelfConsistency: votes}.withDefaults(),
			out: &Outcome{},
		}
		s.cfg.SelfConsistency = votes
		correct := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			v, ok := s.interpret(kb.CLinkCorruption, kb.ToolCounters, []string{"link_corruption=true link=x"})
			if !ok {
				t.Fatal("no verdict")
			}
			if v.Supported { // ground truth: supported
				correct++
			}
		}
		return float64(correct) / trials
	}
	acc1 := run(1)
	acc5 := run(5)
	if acc1 < 0.55 || acc1 > 0.75 {
		t.Fatalf("single-sample accuracy %.2f outside the configured flip rate", acc1)
	}
	if acc5 <= acc1+0.05 {
		t.Fatalf("5-vote accuracy %.2f not better than single %.2f", acc5, acc1)
	}
}

// TestSelfConsistencyCostsTokens: end-to-end, voting multiplies
// interpretation calls and tokens.
func TestSelfConsistencyCostsTokens(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	run := func(votes int) int {
		in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(2)))
		cfg := DefaultConfig()
		cfg.SelfConsistency = votes
		h, oce := buildHelper(in, kbase, 2, cfg)
		out := h.Run(in.World, in.Incident, oce)
		if !out.Mitigated {
			t.Fatalf("votes=%d: not mitigated", votes)
		}
		return out.LLMUsage.Prompt + out.LLMUsage.Completion
	}
	if t1, t5 := run(1), run(5); t5 <= t1 {
		t.Errorf("voting should cost tokens: %d vs %d", t5, t1)
	}
}

func TestPostmortemRendersSession(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	in, out := runScenario(t, &scenarios.Cascade{Stage: 5}, kbase, 1, DefaultConfig())
	pm := Postmortem(in.Incident, out)
	for _, want := range []string{
		"# Postmortem:", "## Outcome", "Mitigated in", "## Timeline",
		"override-wan(B4,healthy)", "## Costs and mistakes", "## Follow-ups",
		"Validated deduction chain",
	} {
		if !strings.Contains(pm, want) {
			t.Errorf("postmortem missing %q", want)
		}
	}
}

func TestPostmortemEscalationFollowUps(t *testing.T) {
	t.Parallel()
	in, out := runScenario(t, &scenarios.NovelProtocol{}, kb.Default(), 2, DefaultConfig())
	if out.Mitigated {
		t.Skip("stale helper unexpectedly mitigated")
	}
	pm := Postmortem(in.Incident, out)
	if !strings.Contains(pm, "Escalated after") {
		t.Error("escalation outcome missing")
	}
	if !strings.Contains(pm, "capture the specialist team's resolution") {
		t.Error("escalation follow-up missing")
	}
}
