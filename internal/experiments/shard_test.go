package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

// TestE17DeterministicAcrossWorkers: the multi-region ladder's tables
// must be byte-identical whether sessions and per-region engines ran
// on 1 worker or 8 — the sharded form of the scheduling-independence
// contract, at ladder scale.
func TestE17DeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	serial := renderTables(E17ShardedFleet(Params{Trials: 1, Seed: 99, Workers: 1}))
	pooled := renderTables(E17ShardedFleet(Params{Trials: 1, Seed: 99, Workers: 8}))
	if serial != pooled {
		t.Fatalf("E17 tables diverge between workers=1 and workers=8: %s", firstDiff(serial, pooled))
	}
}

// TestE17ShapeStealingAndHeadroom pins the qualitative claims: storms
// across a multi-region fleet trigger cross-region steals at the hot
// rungs, and the assisted arm's knee never sits below the unassisted
// arm's at any fan-out.
func TestE17ShapeStealingAndHeadroom(t *testing.T) {
	t.Parallel()
	p := Params{Trials: 1, Seed: 7}.withDefaults()
	arms := []e17Runner{
		{label: "assisted-helper", base: 12 * time.Minute, spread: 25 * time.Minute, mitigate: 0.92},
		{label: "unassisted-oce", base: 35 * time.Minute, spread: 70 * time.Minute, mitigate: 0.72},
	}
	knee := func(regions int, r e17Runner) float64 {
		best, stolen := 0.0, 0
		for _, rate := range e17Rates {
			rep := fleet.SimulateSharded(e17Config(regions, rate, p, r))
			stolen += rep.Stolen
			if e17Sustained(rep) {
				best = rate
			}
		}
		if regions > 1 && stolen == 0 {
			t.Errorf("%s at %d regions: ladder never stole work despite storms", r.label, regions)
		}
		return best
	}
	for _, nr := range []int{4} {
		if a, u := knee(nr, arms[0]), knee(nr, arms[1]); a < u {
			t.Errorf("%d regions: assisted knee %.1f/h below unassisted %.1f/h", nr, a, u)
		}
	}
}

// TestE17LadderCoversGrid: every (fan-out × rate × arm) cell appears as
// a ladder row, so a silent simulation failure can't shrink coverage.
func TestE17LadderCoversGrid(t *testing.T) {
	t.Parallel()
	tables := E17ShardedFleet(Params{Trials: 1, Seed: 3})
	if len(tables) != 2 {
		t.Fatalf("E17 returned %d tables, want ladder + knee", len(tables))
	}
	ladder := renderTables(tables[:1])
	rows := strings.Count(ladder, "assisted-helper") + strings.Count(ladder, "unassisted-oce")
	if want := len(e17Regions) * len(e17Rates) * 2; rows != want {
		t.Fatalf("ladder has %d arm rows, want %d", rows, want)
	}
}
