package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRouteTrafficNoOverload(t *testing.T) {
	t.Parallel()
	n := lineNet()
	flows := []*Flow{{ID: "f1", Src: "a", Dst: "d", DemandGbps: 50, Service: "web"}}
	rep := RouteTraffic(n, flows, nil)
	if rep.OverallLossRate() != 0 {
		t.Errorf("loss = %v, want 0", rep.OverallLossRate())
	}
	ls := rep.LinkStats[MakeLinkID("a", "b")]
	if ls.Load.AB != 50 || ls.Load.BA != 0 {
		t.Errorf("directed load = %+v, want AB=50", ls.Load)
	}
	if ls.Utilization != 0.5 {
		t.Errorf("util = %v, want 0.5", ls.Utilization)
	}
	if rep.TotalDelivered != 50 {
		t.Errorf("delivered = %v, want 50", rep.TotalDelivered)
	}
}

func TestRouteTrafficOverloadLoss(t *testing.T) {
	t.Parallel()
	n := lineNet()
	flows := []*Flow{{ID: "f1", Src: "a", Dst: "d", DemandGbps: 200, Service: "web"}}
	rep := RouteTraffic(n, flows, nil)
	// Each of 3 links drops (200-100)/200 = 0.5; delivery = 0.5^3.
	want := 1 - math.Pow(0.5, 3)
	if got := rep.FlowStats[0].LossRate; math.Abs(got-want) > 1e-9 {
		t.Errorf("flow loss = %v, want %v", got, want)
	}
	if rep.LinkStats[MakeLinkID("a", "b")].Utilization != 2.0 {
		t.Errorf("util = %v, want 2.0", rep.LinkStats[MakeLinkID("a", "b")].Utilization)
	}
}

func TestRouteTrafficECMPSplits(t *testing.T) {
	t.Parallel()
	n := diamondNet()
	flows := []*Flow{{ID: "f1", Src: "a", Dst: "d", DemandGbps: 100, Service: "web"}}
	rep := RouteTraffic(n, flows, nil)
	for _, lid := range []LinkID{MakeLinkID("a", "b"), MakeLinkID("a", "c")} {
		if got := rep.LinkStats[lid].Load.Max(); got != 50 {
			t.Errorf("link %s load = %v, want 50 (ECMP split)", lid, got)
		}
	}
	if rep.OverallLossRate() != 0 {
		t.Errorf("loss = %v, want 0", rep.OverallLossRate())
	}
}

func TestRouteTrafficUnroutedFlow(t *testing.T) {
	t.Parallel()
	n := lineNet()
	n.Node("b").Healthy = false
	flows := []*Flow{{ID: "f1", Src: "a", Dst: "d", DemandGbps: 10, Service: "web"}}
	rep := RouteTraffic(n, flows, nil)
	fs := rep.FlowStats[0]
	if fs.Routed || fs.LossRate != 1 || fs.Delivered() != 0 {
		t.Errorf("unrouted flow stats = %+v", fs)
	}
	if rep.ServiceStats["web"].Unrouted != 1 {
		t.Error("service stats missed unrouted flow")
	}
	if rep.OverallLossRate() != 1 {
		t.Errorf("overall loss = %v, want 1", rep.OverallLossRate())
	}
}

func TestRouteTrafficCorruptionLoss(t *testing.T) {
	t.Parallel()
	n := lineNet()
	n.Link(MakeLinkID("b", "c")).CorruptRate = 0.02
	flows := []*Flow{{ID: "f1", Src: "a", Dst: "d", DemandGbps: 10, Service: "web"}}
	rep := RouteTraffic(n, flows, nil)
	if got := rep.FlowStats[0].LossRate; math.Abs(got-0.02) > 1e-9 {
		t.Errorf("loss = %v, want 0.02 from corruption", got)
	}
}

func TestHotLinksSorted(t *testing.T) {
	t.Parallel()
	n := diamondNet()
	// Make one branch half capacity so it runs hotter.
	n.Link(MakeLinkID("a", "b")).CapacityGbps = 50
	flows := []*Flow{{ID: "f1", Src: "a", Dst: "d", DemandGbps: 80, Service: "web"}}
	rep := RouteTraffic(n, flows, nil)
	hot := rep.HotLinks(0.5)
	if len(hot) == 0 {
		t.Fatal("no hot links found")
	}
	for i := 1; i < len(hot); i++ {
		if hot[i-1].Utilization < hot[i].Utilization {
			t.Fatal("HotLinks not sorted descending")
		}
	}
	if hot[0].Link != MakeLinkID("a", "b") {
		t.Errorf("hottest link = %s, want a--b", hot[0].Link)
	}
}

func TestServiceStatsAggregation(t *testing.T) {
	t.Parallel()
	n := lineNet()
	flows := []*Flow{
		{ID: "f1", Src: "a", Dst: "d", DemandGbps: 10, Service: "web"},
		{ID: "f2", Src: "d", Dst: "a", DemandGbps: 20, Service: "web"},
		{ID: "f3", Src: "a", Dst: "b", DemandGbps: 5, Service: "db"},
	}
	rep := RouteTraffic(n, flows, nil)
	web := rep.ServiceStats["web"]
	if web.Flows != 2 || web.Demand != 30 {
		t.Errorf("web stats = %+v", web)
	}
	if rep.ServiceStats["db"].Flows != 1 {
		t.Error("db service missing")
	}
}

func TestUniformMeshFlows(t *testing.T) {
	t.Parallel()
	flows := UniformMeshFlows([]NodeID{"a", "b", "c"}, 2, "bulk")
	if len(flows) != 6 {
		t.Fatalf("got %d flows, want 6", len(flows))
	}
	for _, f := range flows {
		if f.Src == f.Dst || f.DemandGbps != 2 || f.Service != "bulk" {
			t.Errorf("bad flow %+v", f)
		}
	}
}

func TestFlowAttr(t *testing.T) {
	t.Parallel()
	f := &Flow{}
	if f.Attr("x") != "" {
		t.Error("nil attrs should return empty")
	}
	f.Attrs = map[string]string{"x": "1"}
	if f.Attr("x") != "1" {
		t.Error("attr lookup failed")
	}
}

// Property: conservation — delivered traffic never exceeds demand, and
// loss rates stay within [0,1] regardless of demand scale.
func TestTrafficConservationProperty(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	BuildClos(n, ClosConfig{Region: "r", Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2, HostsPerToR: 1, LinkGbps: 40, HostLinkGbps: 10})
	hosts := n.NodesByKind(KindHost)

	check := func(seed int64, scaleRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 1 + float64(scaleRaw) // 1..256 Gbps per flow
		var flows []*Flow
		for i := 0; i < 6; i++ {
			a, b := rng.Intn(len(hosts)), rng.Intn(len(hosts))
			if a == b {
				continue
			}
			flows = append(flows, &Flow{
				ID: string(rune('A' + i)), Src: hosts[a].ID, Dst: hosts[b].ID,
				DemandGbps: scale * rng.Float64(), Service: "p",
			})
		}
		rep := RouteTraffic(n, flows, nil)
		if rep.TotalDelivered > rep.TotalDemand+1e-9 {
			return false
		}
		for _, fs := range rep.FlowStats {
			if fs.LossRate < -1e-9 || fs.LossRate > 1+1e-9 {
				return false
			}
		}
		for _, ls := range rep.LinkStats {
			if ls.LossRate < 0 || ls.LossRate > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding demand to a fixed network never decreases any link's
// utilization (monotonicity of the fluid model).
func TestUtilizationMonotoneProperty(t *testing.T) {
	t.Parallel()
	n := diamondNet()
	base := []*Flow{{ID: "f", Src: "a", Dst: "d", DemandGbps: 30, Service: "p"}}
	repBase := RouteTraffic(n, base, nil)
	check := func(extraRaw uint8) bool {
		extra := float64(extraRaw)
		flows := []*Flow{{ID: "f", Src: "a", Dst: "d", DemandGbps: 30 + extra, Service: "p"}}
		rep := RouteTraffic(n, flows, nil)
		for lid, ls := range rep.LinkStats {
			if ls.Utilization < repBase.LinkStats[lid].Utilization-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
