package query

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/scenarios"
)

func TestParseFull(t *testing.T) {
	t.Parallel()
	q, err := Parse("links where util > 0.9 and loss > 0.01 order by util desc limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Entity != Links || len(q.Where) != 2 || q.OrderBy != "util" || !q.Desc || q.Limit != 5 {
		t.Fatalf("parsed = %+v", q)
	}
	if q.Where[1] != (Cond{Field: "loss", Op: OpGt, Value: "0.01"}) {
		t.Fatalf("cond = %+v", q.Where[1])
	}
}

func TestParseMinimal(t *testing.T) {
	t.Parallel()
	q, err := Parse("devices")
	if err != nil {
		t.Fatal(err)
	}
	if q.Entity != Devices || len(q.Where) != 0 || q.Limit != 0 {
		t.Fatalf("parsed = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	for _, bad := range []string{
		"",
		"links where util >",
		"links where",
		"links order by",
		"links limit",
		"links limit x",
		"links garbage trailing here",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestVerifySchema(t *testing.T) {
	t.Parallel()
	ok := Query{Entity: Links, Where: []Cond{{Field: "util", Op: OpGt, Value: "0.5"}}, OrderBy: "loss"}
	if err := Verify(ok); err != nil {
		t.Fatal(err)
	}
	cases := []Query{
		{Entity: "tables"},
		{Entity: Links, Where: []Cond{{Field: "bandwidth_pct", Op: OpGt, Value: "1"}}},
		{Entity: Links, Where: []Cond{{Field: "util", Op: "~~", Value: "1"}}},
		{Entity: Links, OrderBy: "nope"},
		{Entity: Links, Limit: -1},
	}
	for i, q := range cases {
		if err := Verify(q); err == nil {
			t.Errorf("case %d: Verify accepted %+v", i, q)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	t.Parallel()
	src := "services where loss > 0.01 order by loss desc limit 3"
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
	if again.String() != q.String() {
		t.Fatalf("round trip changed: %q vs %q", again.String(), q.String())
	}
}

func world(t *testing.T) *netsim.World {
	t.Helper()
	in := (&scenarios.Congestion{}).Build(rand.New(rand.NewSource(1)))
	return in.World
}

func TestExecuteLinksHot(t *testing.T) {
	t.Parallel()
	w := world(t)
	q, _ := Parse("links where util > 1.0 order by util desc limit 3")
	rows, err := Execute(q, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("congestion world has no hot links?")
	}
	// Ordered descending by util.
	prev := 1e18
	for _, r := range rows {
		u, _ := strconv.ParseFloat(r.Get("util"), 64)
		if u > prev {
			t.Fatal("not sorted desc")
		}
		prev = u
		if u <= 1.0 {
			t.Fatalf("filter leaked: util=%v", u)
		}
	}
}

func TestExecuteDevicesAndServices(t *testing.T) {
	t.Parallel()
	w := world(t)
	w.Net.Node("us-east-spine-0").Healthy = false
	w.Invalidate()
	q, _ := Parse("devices where healthy = false")
	rows, err := Execute(q, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Get("id") != "us-east-spine-0" {
		t.Fatalf("rows = %v", rows)
	}

	q, _ = Parse("services where loss > 0.01 order by loss desc")
	rows, err = Execute(q, w)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.Get("name") == "bulk-transfer" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bulk-transfer missing from lossy services: %v", rows)
	}
}

func TestExecuteEventsContains(t *testing.T) {
	t.Parallel()
	w := world(t)
	w.Logf("x", netsim.SevCritical, "fatal exception in fastpath packet handler")
	q, _ := Parse("events where message contains fastpath")
	rows, err := Execute(q, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExecuteRejectsUnverifiedQuery(t *testing.T) {
	t.Parallel()
	w := world(t)
	if _, err := Execute(Query{Entity: "nope"}, w); err == nil {
		t.Fatal("unknown entity executed")
	}
}

func TestRowAccessors(t *testing.T) {
	t.Parallel()
	r := Row{Fields: []string{"a", "b"}, Values: []string{"1", "2"}}
	if r.Get("b") != "2" || r.Get("zz") != "" {
		t.Fatal("Get broken")
	}
	if r.String() != "a=1 b=2" {
		t.Fatalf("String = %q", r.String())
	}
}

// Property: Parse(q.String()) == q for well-formed random queries, and
// Execute never panics on verified queries.
func TestParsePrintRoundTripProperty(t *testing.T) {
	t.Parallel()
	entities := []Entity{Links, Devices, Services, Events}
	fieldsOf := map[Entity][]string{
		Links:    {"id", "util", "loss", "capacity", "down", "isolated"},
		Devices:  {"id", "kind", "region", "healthy", "isolated"},
		Services: {"name", "demand", "delivered", "loss", "unrouted"},
		Events:   {"node", "severity", "message", "age_min"},
	}
	ops := []Op{OpEq, OpNe, OpGt, OpLt, OpGe, OpLe, OpContains}
	w := world(t)

	check := func(e1, nConds, o1, lim uint8) bool {
		ent := entities[int(e1)%len(entities)]
		fields := fieldsOf[ent]
		q := Query{Entity: ent, Limit: int(lim % 20)}
		for i := 0; i < int(nConds%3); i++ {
			q.Where = append(q.Where, Cond{
				Field: fields[(int(e1)+i)%len(fields)],
				Op:    ops[(int(o1)+i)%len(ops)],
				Value: "0.5",
			})
		}
		if o1%2 == 0 {
			q.OrderBy = fields[int(o1)%len(fields)]
			q.Desc = o1%4 == 0
		}
		if err := Verify(q); err != nil {
			return false
		}
		parsed, err := Parse(q.String())
		if err != nil {
			return false
		}
		if parsed.String() != q.String() {
			return false
		}
		if _, err := Execute(parsed, w); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	_ = strings.TrimSpace("")
}
