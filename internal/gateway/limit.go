package gateway

// Per-caller token-bucket rate limiting. The bucket refills on the
// gateway's Clock — simulated time — which keeps the limiter inside
// the repo's determinism contract: under a SimClock the admit/refuse
// sequence is a pure function of the request sequence and the advance
// calls (testable byte-for-byte), and under a WallClock the simulated
// rate maps through the clock scale onto a real requests-per-wall-time
// limit. Refused requests get 429 with a Retry-After header in wall
// seconds (via WallClock.WallOf when the clock knows its scale).

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// limiter is the per-caller token bucket set. Safe for concurrent use.
// Idle callers are evicted (see sweep), so the map is bounded by the
// set of callers active within one refill-full horizon, not by every
// caller ever seen.
type limiter struct {
	mu        sync.Mutex
	rate      float64 // tokens per simulated minute
	burst     float64 // bucket capacity
	buckets   map[string]*bucket
	nextSweep time.Duration // simulated time of the next eviction pass
}

type bucket struct {
	tokens float64
	last   time.Duration // simulated time of the last refill
}

func newLimiter(ratePerMin, burst float64) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: ratePerMin, burst: burst, buckets: map[string]*bucket{}}
}

// horizon is the refill-full interval: a bucket idle this long has
// refilled to capacity, making it indistinguishable from the fresh
// bucket a returning caller would get — so it can be dropped.
func (l *limiter) horizon() time.Duration {
	return time.Duration(l.burst / l.rate * float64(time.Minute))
}

// sweep evicts every bucket idle past the refill-full horizon. Driven
// by the simulated clock alone — one pass per horizon, amortized over
// allow calls — so eviction is deterministic under a SimClock and the
// admit/refuse sequence is untouched: an evicted caller's next bucket
// starts at burst, exactly where refill would have capped it. Caller
// holds l.mu.
func (l *limiter) sweep(now time.Duration) {
	h := l.horizon()
	if now < l.nextSweep {
		return
	}
	for caller, b := range l.buckets {
		if now-b.last >= h {
			delete(l.buckets, caller)
		}
	}
	l.nextSweep = now + h
}

// allow takes one token for the caller at simulated time now. When the
// bucket is empty it reports the simulated wait until a token accrues.
func (l *limiter) allow(caller string, now time.Duration) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweep(now)
	b := l.buckets[caller]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[caller] = b
	}
	if now > b.last {
		b.tokens += l.rate * (now - b.last).Minutes()
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Minute))
}

// throttle enforces the per-caller limit on a mutating request,
// answering 429 + Retry-After when the caller is over budget. GETs are
// never throttled — reads are cheap; sessions are not.
func (s *Server) throttle(w http.ResponseWriter, caller string) bool {
	if s.limit == nil {
		return true
	}
	ok, wait := s.limit.allow(caller, s.cfg.Clock.Now())
	if ok {
		return true
	}
	w.Header().Set("Retry-After", retryAfter(s.cfg.Clock, wait))
	s.count(obs.MGwThrottled, obs.Labels{"caller": caller})
	writeErr(w, http.StatusTooManyRequests, CodeRateLimited, "",
		"caller %q over rate limit: next token in %s simulated", caller, wait.Round(time.Second))
	return false
}

// retryAfter renders a simulated wait as whole wall seconds, minimum 1.
// A clock that knows its wall mapping (WallClock) converts exactly;
// otherwise the simulated minutes are read as seconds — deterministic,
// and of the right order for a 1s-per-minute demo scale.
func retryAfter(c Clock, wait time.Duration) string {
	var wall time.Duration
	if ws, ok := c.(interface {
		WallOf(time.Duration) time.Duration
	}); ok {
		wall = ws.WallOf(wait)
	} else {
		wall = time.Duration(wait.Minutes() * float64(time.Second))
	}
	secs := int(math.Ceil(wall.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
