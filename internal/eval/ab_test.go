package eval_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/replayer"
	"repro/internal/scenarios"
)

func currentKB() *kb.KB {
	k := kb.Default()
	kb.ApplyFastpathUpdate(k)
	return k
}

// TestABHelperBeatsControl is §3's headline: the helper-assisted arm has
// significantly lower TTM than the helper-free control arm.
func TestABHelperBeatsControl(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	res := eval.ABTest(eval.ABConfig{N: 120, Seed: 1},
		&harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()},
		&harness.ControlRunner{KBase: kbase, Expertise: 0.8},
	)
	if res.Treatment.N+res.Control.N != 120 {
		t.Fatalf("arm sizes %d + %d", res.Treatment.N, res.Control.N)
	}
	if res.Treatment.N < 40 || res.Control.N < 40 {
		t.Fatalf("randomization badly unbalanced: %d vs %d", res.Treatment.N, res.Control.N)
	}
	if res.Treatment.MeanTTM() >= res.Control.MeanTTM() {
		t.Fatalf("helper arm mean TTM %.1f >= control %.1f", res.Treatment.MeanTTM(), res.Control.MeanTTM())
	}
	if !res.SignificantAt(0.05) {
		t.Errorf("difference not significant: welch p=%v mw p=%v", res.Welch.P, res.MannWhitney.P)
	}
	if res.PermP >= 0.05 {
		t.Errorf("permutation test p=%v", res.PermP)
	}
	// The CI for (treatment - control) must exclude zero from below.
	if res.DiffHi >= 0 {
		t.Errorf("bootstrap CI [%.1f, %.1f] includes zero", res.DiffLo, res.DiffHi)
	}
}

// TestABSameArmNotSignificant guards against the harness manufacturing
// significance: identical runners in both arms must not differ.
func TestABSameArmNotSignificant(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	mk := func() *harness.ControlRunner {
		return &harness.ControlRunner{KBase: kbase, Expertise: 0.8}
	}
	res := eval.ABTest(eval.ABConfig{N: 120, Seed: 2}, mk(), mk())
	if res.SignificantAt(0.05) {
		t.Errorf("identical arms called significant: welch p=%v mw p=%v", res.Welch.P, res.MannWhitney.P)
	}
}

func TestRunMatrixPairsIncidents(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	hist := replayer.Generate(replayer.Options{N: 40, Seed: 3}).History
	stats := eval.RunMatrix(20, 4, []scenarios.Scenario{&scenarios.GrayLink{}}, 3,
		&harness.HelperRunner{Label: "helper", KBase: kbase, Config: core.DefaultConfig(), History: hist},
		&harness.OneShotRunner{Label: "oneshot", History: hist, KBase: kbase},
	)
	if len(stats) != 2 {
		t.Fatalf("stats for %d runners", len(stats))
	}
	for name, s := range stats {
		if s.N != 20 {
			t.Errorf("%s saw %d incidents, want 20 (paired)", name, s.N)
		}
		if s.MitigationRate() < 0.5 {
			t.Errorf("%s mitigation rate %.2f on gray-link", name, s.MitigationRate())
		}
	}
	// The helper should accumulate tokens; the one-shot none.
	if stats["helper"].Tokens == 0 {
		t.Error("helper tokens not accounted")
	}
	if stats["oneshot"].Tokens != 0 {
		t.Error("one-shot should not consume LLM tokens")
	}
}

func TestArmStatsAccessors(t *testing.T) {
	t.Parallel()
	s := &eval.ArmStats{}
	if s.MitigationRate() != 0 || s.CorrectRate() != 0 {
		t.Error("empty arm rates nonzero")
	}
}
