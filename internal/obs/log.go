package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// WriteEventLog encodes events as JSON lines (one event per line), the
// -trace-out format. Encoding is deterministic: struct fields serialize
// in declaration order and zero values are omitted.
func WriteEventLog(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("obs: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadEventLog decodes a JSON-lines event log written by WriteEventLog.
// Blank lines are skipped; a malformed line fails with its line number.
func ReadEventLog(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("obs: event log line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
