package llm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mitigation"
)

// The helper modules and the model speak a line-oriented structured
// protocol. Each request leads with a TASK directive; context follows as
// typed lines. The format is deliberately robust to truncation: every
// line is independently parseable, so a prompt cut at the context window
// degrades the model's information rather than breaking the exchange —
// the same failure mode as a real over-budget prompt.

// Task names.
const (
	TaskFormHypotheses = "form_hypotheses"
	TaskPlanTest       = "plan_test"
	TaskInterpretTest  = "interpret_test"
	TaskPlanMitigation = "plan_mitigation"
	TaskAssessRisk     = "assess_risk"
	TaskTextToQuery    = "text_to_query"
)

// Hypothesis is one candidate cause with the model's confidence and a
// human-readable explanation (the paper requires both so novice OCEs can
// choose what to test).
type Hypothesis struct {
	Concept    string
	Confidence float64
	Reason     string
}

// TestPlan is the model's proposal for verifying a hypothesis.
type TestPlan struct {
	Tool   string
	Args   map[string]string
	Reason string
}

// Verdict is the model's interpretation of tool output against a
// hypothesis.
type Verdict struct {
	Supported  bool
	Confidence float64
	Reason     string
}

// ProposedAction is one mitigation step with rationale.
type ProposedAction struct {
	Action mitigation.Action
	Reason string
}

// RiskOpinion is the model's qualitative risk assessment.
type RiskOpinion struct {
	Level  string // low|medium|high
	Score  float64
	Reason string
}

// InContextRule carries a causal rule in the prompt (in-context
// learning): the model merges it with its trained knowledge for this
// call only.
type InContextRule struct {
	Cause    string
	Effect   string
	Strength float64
}

// ---------------------------------------------------------------------------
// Prompt builders
// ---------------------------------------------------------------------------

// PromptContext is the evidence block shared by all task prompts.
type PromptContext struct {
	Symptoms  []string
	Confirmed []string
	Rejected  []string
	Bindings  map[string]string // placeholder -> concrete target, e.g. $LINK -> id
	Evidence  []string          // free-text observations, most recent last
	Rules     []InContextRule   // in-context knowledge updates
}

func (c PromptContext) render(b *strings.Builder) {
	writeList := func(key string, vals []string) {
		if len(vals) > 0 {
			fmt.Fprintf(b, "%s: %s\n", key, strings.Join(vals, ", "))
		}
	}
	writeList("SYMPTOMS", c.Symptoms)
	writeList("CONFIRMED", c.Confirmed)
	writeList("REJECTED", c.Rejected)
	if len(c.Bindings) > 0 {
		keys := make([]string, 0, len(c.Bindings))
		for k := range c.Bindings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "BINDING: %s=%s\n", k, c.Bindings[k])
		}
	}
	for _, r := range c.Rules {
		fmt.Fprintf(b, "RULE: %s -> %s @ %.2f\n", r.Cause, r.Effect, r.Strength)
	}
	for _, e := range c.Evidence {
		fmt.Fprintf(b, "EVIDENCE: %s\n", strings.ReplaceAll(e, "\n", " | "))
	}
}

// BuildFormHypotheses asks for up to beam candidate causes.
func BuildFormHypotheses(ctx PromptContext, beam int) Request {
	var b strings.Builder
	fmt.Fprintf(&b, "TASK: %s\nBEAM: %d\n", TaskFormHypotheses, beam)
	ctx.render(&b)
	return Request{Messages: []Message{
		{Role: RoleSystem, Content: "You are a network incident diagnosis assistant. Respond in the structured line format."},
		{Role: RoleUser, Content: b.String()},
	}}
}

// BuildPlanTest asks how to verify one hypothesis.
func BuildPlanTest(ctx PromptContext, hypothesis string) Request {
	var b strings.Builder
	fmt.Fprintf(&b, "TASK: %s\nHYPOTHESIS: %s\n", TaskPlanTest, hypothesis)
	ctx.render(&b)
	return Request{Messages: []Message{{Role: RoleUser, Content: b.String()}}}
}

// BuildInterpretTest asks whether tool output supports the hypothesis.
// Findings are the tool's structured output lines.
func BuildInterpretTest(ctx PromptContext, hypothesis, tool string, findings []string) Request {
	var b strings.Builder
	fmt.Fprintf(&b, "TASK: %s\nHYPOTHESIS: %s\nTOOL: %s\n", TaskInterpretTest, hypothesis, tool)
	ctx.render(&b)
	for _, f := range findings {
		fmt.Fprintf(&b, "FINDING: %s\n", strings.ReplaceAll(f, "\n", " | "))
	}
	return Request{Messages: []Message{{Role: RoleUser, Content: b.String()}}}
}

// BuildPlanMitigation asks for a mitigation plan for the confirmed root
// cause.
func BuildPlanMitigation(ctx PromptContext, rootCause string) Request {
	var b strings.Builder
	fmt.Fprintf(&b, "TASK: %s\nROOTCAUSE: %s\n", TaskPlanMitigation, rootCause)
	ctx.render(&b)
	return Request{Messages: []Message{{Role: RoleUser, Content: b.String()}}}
}

// BuildAssessRisk asks for a qualitative risk opinion on a plan.
func BuildAssessRisk(ctx PromptContext, actions []mitigation.Action) Request {
	var b strings.Builder
	fmt.Fprintf(&b, "TASK: %s\n", TaskAssessRisk)
	for _, a := range actions {
		fmt.Fprintf(&b, "ACTION: %s|%s|%s\n", a.Kind, a.Target, a.Param)
	}
	ctx.render(&b)
	return Request{Messages: []Message{{Role: RoleUser, Content: b.String()}}}
}

// BuildTextToQuery asks the model to translate a natural-language
// question into the telemetry query DSL. feedback carries the verifier's
// error from a failed previous attempt (the repair loop of §4.4's
// "verifiable LLM-based tools").
func BuildTextToQuery(question, feedback string) Request {
	var b strings.Builder
	fmt.Fprintf(&b, "TASK: %s\nQUESTION: %s\n", TaskTextToQuery, strings.ReplaceAll(question, "\n", " "))
	if feedback != "" {
		fmt.Fprintf(&b, "FEEDBACK: %s\n", strings.ReplaceAll(feedback, "\n", " "))
	}
	return Request{Messages: []Message{{Role: RoleUser, Content: b.String()}}}
}

// ---------------------------------------------------------------------------
// Response parsers
// ---------------------------------------------------------------------------

// kvField extracts key=... from a whitespace-separated field list where
// the value may contain no spaces except for the final freeform key
// ("reason"), which runs to end of line.
func kvField(line, key string) string {
	marker := key + "="
	i := strings.Index(line, marker)
	if i < 0 {
		return ""
	}
	rest := line[i+len(marker):]
	if key == "reason" {
		return strings.TrimSpace(rest)
	}
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		return rest[:j]
	}
	return rest
}

// ParseHypotheses extracts HYPOTHESIS lines from a completion.
func ParseHypotheses(content string) []Hypothesis {
	var out []Hypothesis
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "HYPOTHESIS:") {
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, "HYPOTHESIS:"))
		h := Hypothesis{
			Concept: kvField(body, "concept"),
			Reason:  kvField(body, "reason"),
		}
		h.Confidence, _ = strconv.ParseFloat(kvField(body, "confidence"), 64)
		if h.Concept != "" {
			out = append(out, h)
		}
	}
	return out
}

// ParseTestPlan extracts the TEST line from a completion. ok is false
// when the model produced no usable plan.
func ParseTestPlan(content string) (TestPlan, bool) {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "TEST:") {
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, "TEST:"))
		tp := TestPlan{
			Tool:   kvField(body, "tool"),
			Reason: kvField(body, "reason"),
			Args:   map[string]string{},
		}
		if args := kvField(body, "args"); args != "" {
			for _, kv := range strings.Split(args, ";") {
				if k, v, ok := strings.Cut(kv, "="); ok {
					tp.Args[k] = v
				}
			}
		}
		if tp.Tool != "" {
			return tp, true
		}
	}
	return TestPlan{}, false
}

// ParseVerdict extracts the VERDICT line. ok is false when absent.
func ParseVerdict(content string) (Verdict, bool) {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "VERDICT:") {
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, "VERDICT:"))
		v := Verdict{Reason: kvField(body, "reason")}
		v.Supported = kvField(body, "supported") == "true"
		v.Confidence, _ = strconv.ParseFloat(kvField(body, "confidence"), 64)
		return v, true
	}
	return Verdict{}, false
}

// ParseActions extracts ACTION lines ("kind|target|param reason=...").
func ParseActions(content string) []ProposedAction {
	var out []ProposedAction
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "ACTION:") {
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, "ACTION:"))
		spec := body
		reason := ""
		if i := strings.Index(body, " reason="); i >= 0 {
			spec, reason = body[:i], strings.TrimSpace(body[i+len(" reason="):])
		}
		parts := strings.SplitN(spec, "|", 3)
		if len(parts) < 2 {
			continue
		}
		a := mitigation.Action{Kind: mitigation.ActionKind(parts[0]), Target: parts[1]}
		if len(parts) == 3 {
			a.Param = parts[2]
		}
		out = append(out, ProposedAction{Action: a, Reason: reason})
	}
	return out
}

// ParseQuery extracts the QUERY line (the generated DSL text). ok is
// false when absent.
func ParseQuery(content string) (string, bool) {
	for _, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(line, "QUERY:") {
			q := strings.TrimSpace(strings.TrimPrefix(line, "QUERY:"))
			if q != "" {
				return q, true
			}
		}
	}
	return "", false
}

// ParseRiskOpinion extracts the RISK line. ok is false when absent.
func ParseRiskOpinion(content string) (RiskOpinion, bool) {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "RISK:") {
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, "RISK:"))
		r := RiskOpinion{Level: kvField(body, "level"), Reason: kvField(body, "reason")}
		r.Score, _ = strconv.ParseFloat(kvField(body, "score"), 64)
		return r, true
	}
	return RiskOpinion{}, false
}
