// Package ops simulates fleet-level incident operations: incidents
// arrive as a Poisson process, the incident manager assigns each to the
// next available on-call engineer, and the simulation measures what
// customers actually experience — queueing delay plus time to
// mitigation — under load.
//
// The paper evaluates helpers per incident; this layer exposes the
// fleet-level consequence of faster mitigation that §1 motivates
// ("Providers view Time to Mitigation as the main indicator of
// efficiency"): responder pools are finite, so per-incident TTM
// compounds into queueing delay. A helper that halves TTM more than
// halves the customer-visible resolution time once the pool runs hot,
// and raises the arrival rate at which the pool saturates.
package ops

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/eval"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/scenarios"
)

// Config parameterizes a fleet simulation.
type Config struct {
	// OCEs is the responder pool size (default 3).
	OCEs int
	// ArrivalsPerHour is the mean incident arrival rate (default 2).
	ArrivalsPerHour float64
	// Incidents is how many arrivals to simulate (default 100).
	Incidents int
	// Mix is the scenario mix (default scenarios.All()).
	Mix []scenarios.Scenario
	// Runner handles each incident.
	Runner harness.Runner
	Seed   int64
	// Obs, when non-nil, collects every session's event stream plus the
	// fleet-level arrivals (queueing delay per incident) and sets the
	// pool-utilization gauge. The simulation is serial, so sessions emit
	// straight into the sink in arrival order.
	Obs *obs.Sink
}

// IncidentOutcome is one arrival's fleet-level record.
type IncidentOutcome struct {
	Scenario  string
	ArrivedAt time.Duration
	StartedAt time.Duration
	// Queue is how long the incident waited for a free responder.
	Queue time.Duration
	// Handling is the responder's busy time (TTM, or time-to-escalation).
	Handling time.Duration
	// Total is the customer-experienced time: queue + penalized TTM.
	Total  time.Duration
	Result harness.Result
}

// Report aggregates a fleet simulation.
type Report struct {
	Outcomes []IncidentOutcome

	MeanQueue time.Duration
	P95Queue  time.Duration
	MeanTotal time.Duration
	P95Total  time.Duration

	// Utilization is the pool's busy fraction over the makespan.
	Utilization float64

	// MitigatedRate is the fraction the runner mitigated itself.
	MitigatedRate float64
}

// Simulate runs the fleet model: exponential interarrivals, first-free
// assignment, busy responders hold their incident until mitigation or
// hand-off.
func Simulate(cfg Config) *Report {
	if cfg.OCEs <= 0 {
		cfg.OCEs = 3
	}
	if cfg.ArrivalsPerHour <= 0 {
		cfg.ArrivalsPerHour = 2
	}
	if cfg.Incidents <= 0 {
		cfg.Incidents = 100
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = scenarios.All()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	freeAt := make([]time.Duration, cfg.OCEs)
	rep := &Report{}
	var now time.Duration
	var busySum time.Duration
	mitigated := 0

	for i := 0; i < cfg.Incidents; i++ {
		// Exponential interarrival.
		gap := time.Duration(rng.ExpFloat64() / cfg.ArrivalsPerHour * float64(time.Hour))
		now += gap

		sc := mix[rng.Intn(len(mix))]
		seed := rng.Int63()
		in := sc.Build(rand.New(rand.NewSource(seed)))
		var res harness.Result
		if or, ok := cfg.Runner.(harness.ObservedRunner); ok && cfg.Obs != nil {
			rec := obs.AcquireRecorder(fmt.Sprintf("fleet/%04d", i))
			res = or.RunObserved(in, seed, rec)
			cfg.Obs.Absorb(rec)
			rec.Release()
		} else {
			res = cfg.Runner.Run(in, seed)
		}

		// Assign to the earliest-free responder.
		idx := 0
		for j := 1; j < cfg.OCEs; j++ {
			if freeAt[j] < freeAt[idx] {
				idx = j
			}
		}
		start := now
		if freeAt[idx] > start {
			start = freeAt[idx]
		}
		handling := res.TTM // responder is busy until mitigation or hand-off
		freeAt[idx] = start + handling
		busySum += handling

		out := IncidentOutcome{
			Scenario:  sc.Name(),
			ArrivedAt: now,
			StartedAt: start,
			Queue:     start - now,
			Handling:  handling,
			Total:     (start - now) + res.PenalizedTTM(),
			Result:    res,
		}
		if res.Mitigated {
			mitigated++
		}
		if cfg.Obs != nil {
			cfg.Obs.Emit(obs.Event{
				Type: obs.EvFleetIncident, At: now, Session: fmt.Sprintf("fleet/%04d", i),
				Runner: cfg.Runner.Name(), Scenario: sc.Name(), Queue: out.Queue,
			})
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}

	// Aggregates.
	n := len(rep.Outcomes)
	if n == 0 {
		return rep
	}
	queues := make([]float64, n)
	totals := make([]float64, n)
	var qSum, tSum time.Duration
	var makespan time.Duration
	for i, o := range rep.Outcomes {
		queues[i] = o.Queue.Minutes()
		totals[i] = o.Total.Minutes()
		qSum += o.Queue
		tSum += o.Total
		if end := o.StartedAt + o.Handling; end > makespan {
			makespan = end
		}
	}
	rep.MeanQueue = qSum / time.Duration(n)
	rep.MeanTotal = tSum / time.Duration(n)
	rep.P95Queue = time.Duration(eval.Percentile(queues, 95) * float64(time.Minute))
	rep.P95Total = time.Duration(eval.Percentile(totals, 95) * float64(time.Minute))
	if makespan > 0 {
		rep.Utilization = float64(busySum) / (float64(makespan) * float64(cfg.OCEs))
	}
	rep.MitigatedRate = float64(mitigated) / float64(n)
	if cfg.Obs != nil {
		cfg.Obs.Registry().Set(obs.MFleetUtil, nil, rep.Utilization)
	}
	return rep
}
