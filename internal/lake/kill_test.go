package lake

// The kill -9 smoke: a child process ingests entries in a tight loop,
// printing each ID only after the lake's fsync'd Append returns; the
// parent SIGKILLs it mid-ingest and reopens the directory. Every acked
// entry must be recovered — the lake's durability promise is exactly
// the journal's. A torn final line (the append the kill interrupted)
// is expected and must truncate cleanly, never poison the log.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
)

const killDirEnv = "LAKE_KILL_DIR"

// TestLakeKillChild is the helper process body, selected by the env
// var; as a test in the parent run it just skips.
func TestLakeKillChild(t *testing.T) {
	dir := os.Getenv(killDirEnv)
	if dir == "" {
		t.Skip("helper body for TestLakeKillDashNine")
	}
	l, _, err := Open(dir)
	if err != nil {
		fmt.Printf("child open error: %v\n", err)
		os.Exit(1)
	}
	for i := 0; i < 1_000_000; i++ {
		e := Entry{
			ID: fmt.Sprintf("inc-%06d", i), Scenario: "chaos", Runner: "flat",
			Mitigated: true, TTMMinutes: float64(i % 90), Rounds: i % 7,
			Tags: []string{"chaos", "mitigated"},
		}
		if _, err := l.Append(e); err != nil {
			fmt.Printf("child append error: %v\n", err)
			os.Exit(1)
		}
		// Printed only after the fsync'd append returned: the ack.
		fmt.Printf("acked %s\n", e.ID)
	}
}

func TestLakeKillDashNine(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestLakeKillChild$")
	cmd.Env = append(os.Environ(), killDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}

	var acked []string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "acked ") {
			continue
		}
		acked = append(acked, strings.TrimPrefix(line, "acked "))
		if len(acked) >= 25 {
			break
		}
	}
	if len(acked) < 25 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child produced only %d acks", len(acked))
	}
	// kill -9 mid-ingest: the child is inside its append loop right now.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = cmd.Wait()

	l, rr, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer l.Close()
	if rr.Entries < len(acked) {
		t.Fatalf("recovered %d entries, but %d were acked (dropped=%d)", rr.Entries, len(acked), rr.Dropped)
	}
	for _, id := range acked {
		if _, ok := l.Get(id); !ok {
			t.Errorf("acked entry %s lost after kill -9", id)
		}
	}
	// Recovery must leave an appendable log.
	if _, err := l.Append(Entry{ID: "inc-after", Scenario: "chaos"}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}
