package oce

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/kb"
	"repro/internal/scenarios"
	"repro/internal/tools"
)

func solve(t *testing.T, sc scenarios.Scenario, expertise float64, seed int64) (*scenarios.Instance, *Outcome) {
	t.Helper()
	in := sc.Build(rand.New(rand.NewSource(seed)))
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase) // humans know current infrastructure
	reg := tools.NewDefaultRegistry(embed.NewStore(embed.NewDomainEmbedder(64)), kbase.History(), in.Incident.Title, in.Incident.Service)
	e := &Engineer{Expertise: expertise, KBase: kbase, Rng: rand.New(rand.NewSource(seed + 99))}
	return in, e.Solve(in.World, in.Incident, reg)
}

func TestExpertSolvesRoutineIncidents(t *testing.T) {
	t.Parallel()
	for _, sc := range scenarios.Routine() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			solved := 0
			for seed := int64(0); seed < 5; seed++ {
				in, out := solve(t, sc, 0.9, seed)
				if out.Mitigated && in.Succeeded(out.Applied) {
					solved++
				}
			}
			if solved < 4 {
				t.Errorf("expert solved only %d/5 %s incidents", solved, sc.Name())
			}
		})
	}
}

func TestExpertSolvesCascadeSlowly(t *testing.T) {
	t.Parallel()
	in, out := solve(t, &scenarios.Cascade{Stage: 5}, 0.95, 3)
	if !out.Mitigated || !in.Succeeded(out.Applied) {
		t.Fatalf("expert failed cascade: %+v", out)
	}
	if out.TTM < 20*time.Minute {
		t.Errorf("unassisted cascade TTM %v suspiciously fast", out.TTM)
	}
	if out.Rounds < 2 {
		t.Errorf("cascade solved in %d rounds; expected multi-round deduction", out.Rounds)
	}
}

func TestNoviceSlowerThanExpert(t *testing.T) {
	t.Parallel()
	var expert, novice time.Duration
	n := 6
	for seed := int64(0); seed < int64(n); seed++ {
		_, oe := solve(t, &scenarios.GrayLink{}, 0.95, seed)
		_, on := solve(t, &scenarios.GrayLink{}, 0.2, seed)
		expert += oe.TTM
		novice += on.TTM
	}
	if novice <= expert {
		t.Errorf("novice mean TTM %v <= expert %v", novice/time.Duration(n), expert/time.Duration(n))
	}
}

func TestTTMAccountedOnEscalation(t *testing.T) {
	t.Parallel()
	// An engineer with an empty KB can only stall and escalate.
	in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(7)))
	empty := kb.New()
	empty.AddConcept(kb.Concept{ID: kb.CPacketLoss})
	reg := tools.NewDefaultRegistry(embed.NewStore(embed.NewDomainEmbedder(64)), empty.History(), "q", "web")
	e := &Engineer{Expertise: 0.9, KBase: empty, Rng: rand.New(rand.NewSource(8))}
	out := e.Solve(in.World, in.Incident, reg)
	if out.Mitigated || !out.Escalated {
		t.Fatalf("outcome = %+v", out)
	}
	if out.TTM <= 0 {
		t.Error("escalation TTM missing")
	}
}

func TestHumanTimingScalesWithExpertise(t *testing.T) {
	t.Parallel()
	fast := &Engineer{Expertise: 1, Rng: rand.New(rand.NewSource(1))}
	slow := &Engineer{Expertise: 0, Rng: rand.New(rand.NewSource(1))}
	if fast.readTime() >= slow.readTime() {
		t.Error("read time should grow as expertise falls")
	}
	var fsum, ssum time.Duration
	for i := 0; i < 50; i++ {
		fsum += fast.thinkTime()
		ssum += slow.thinkTime()
	}
	if fsum >= ssum {
		t.Error("think time should grow as expertise falls")
	}
}
