// Package journal is the gateway's write-ahead incident log: an
// append-only, fsync'd, checksummed record of every externally visible
// state transition (accepted / status-patched / resolved / shed). The
// gateway appends the record — and waits for the fsync — before any
// 2xx leaves the socket, which turns an HTTP acknowledgement into a
// durable promise: after a crash, replaying the journal reconstructs
// every acknowledged incident exactly (internal/gateway's Recover
// re-offers the unresolved ones into the live scheduler, and session
// seeds derive from (base, id), so the replayed sessions are
// byte-identical to the pre-crash ones).
//
// Wire format: one record per line,
//
//	%08x SP json-payload LF
//
// where the hex prefix is the IEEE CRC32 of the payload. JSON escapes
// control characters, so the payload never contains a raw newline and
// line framing is unambiguous. A torn write — the tail a SIGKILL or
// power loss leaves behind — shows up as a final line that is missing
// its newline or fails its checksum; Decode drops that tail (and
// anything after a corrupt line, since appends are strictly ordered)
// and Open truncates the file back to the last clean record boundary so
// new appends never graft onto a partial line. Recovery therefore
// never panics and never silently accepts corrupt state: a record is
// either checksum-clean or discarded, and only un-acknowledged suffix
// records can be lost.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// FileName is the journal file inside the journal directory.
const FileName = "incidents.wal"

// Kind enumerates the journaled gateway state transitions.
type Kind string

const (
	// KindAccepted: the gateway admitted a new incident (201).
	KindAccepted Kind = "accepted"
	// KindPatched: a caller updated status/severity/notes (200).
	KindPatched Kind = "patched"
	// KindResolved: a caller patched the terminal "resolved" status.
	KindResolved Kind = "resolved"
	// KindShed: fleet admission control shed the arrival (informational
	// — recovery re-derives shed outcomes deterministically).
	KindShed Kind = "shed"
)

// Version is the current record-format version. Version history:
//
//	0 (implicit, field omitted): the pre-region format — every incident
//	  belongs to the single default fleet region.
//	2: adds Region (version 2 matches the PR that introduced sharding;
//	  1 was never emitted).
//
// Append stamps the current version on every record; Decode accepts
// anything at or below it (older records simply lack the newer fields
// and replay with their documented defaults) and rejects records from
// the future, where unknown semantics could silently corrupt recovery.
const Version = 2

// Record is one gateway state transition. Accepted records carry the
// full normalized incident (enough to rebuild the gateway record and
// re-run the session from its derived seed); patch records carry only
// the delta.
type Record struct {
	// V is the record-format version (see Version; 0 means the
	// pre-region format).
	V    int    `json:"v,omitempty"`
	Kind Kind   `json:"kind"`
	ID   string `json:"id"`
	// AtMinutes is the simulated-clock time of the transition.
	AtMinutes float64 `json:"at_minutes"`

	// Accepted-record fields (post-normalization, so recovery rebuilds
	// the record without re-deriving defaults).
	Scenario        string  `json:"scenario,omitempty"`
	Severity        *int    `json:"severity,omitempty"`
	Title           string  `json:"title,omitempty"`
	Summary         string  `json:"summary,omitempty"`
	Service         string  `json:"service,omitempty"`
	ReportedBy      string  `json:"reported_by,omitempty"`
	OpenedAtMinutes float64 `json:"opened_at_minutes,omitempty"`
	// Region homes the incident in a fleet region (accepted records,
	// V >= 2; empty means the default region — which is how every V0
	// record replays into the sharded scheduler).
	Region string `json:"region,omitempty"`

	// Patch-record fields. Note is stored with the caller prefix
	// already applied, exactly as it lands in the record's Notes.
	Status string `json:"status,omitempty"`
	Note   string `json:"note,omitempty"`
}

// Encode renders one record as its checksummed journal line.
func Encode(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	return EncodeFrame(payload), nil
}

// Decode scans data for journal records. It returns every record up to
// the first torn or corrupt point, the byte offset of the last clean
// record boundary, and how many trailing lines (or partial lines) were
// discarded. It never fails: corruption truncates, it does not error —
// appends are strictly ordered, so nothing after a bad line can have
// been acknowledged on top of durable state.
func Decode(data []byte) (recs []Record, good int, dropped int) {
	good, dropped = ScanFrames(data, func(payload []byte) bool {
		r, ok := decodePayload(payload)
		if !ok {
			return false
		}
		recs = append(recs, r)
		return true
	})
	return recs, good, dropped
}

// decodePayload parses one checksum-clean frame payload as a Record.
func decodePayload(payload []byte) (Record, bool) {
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, false
	}
	if r.V > Version {
		// A future-format record: its semantics are unknown, so treat it
		// (and everything after it) like corruption — truncate rather
		// than guess.
		return Record{}, false
	}
	return r, true
}

// ReplayResult is what a journal scan recovered.
type ReplayResult struct {
	// Records are the checksum-clean records, in append order.
	Records []Record
	// Dropped counts torn/corrupt trailing lines discarded by the scan.
	Dropped int
	// Bytes is the size of the clean prefix.
	Bytes int64
}

// MaxAtMinutes returns the latest transition time in the replay — the
// simulated-clock high-water mark a recovering gateway resumes from.
func (rr ReplayResult) MaxAtMinutes() float64 {
	max := 0.0
	for _, r := range rr.Records {
		if r.AtMinutes > max {
			max = r.AtMinutes
		}
		if r.OpenedAtMinutes > max {
			max = r.OpenedAtMinutes
		}
	}
	return max
}

// Journal is the append handle. Safe for concurrent use.
type Journal struct {
	ff *FrameFile
}

// Open opens (creating if necessary) the journal in dir, replays the
// existing records, truncates any torn tail back to the last clean
// record boundary, and returns the append handle positioned there.
func Open(dir string) (*Journal, ReplayResult, error) {
	var recs []Record
	ff, good, dropped, err := OpenFrameFile(dir, FileName, func(payload []byte) bool {
		r, ok := decodePayload(payload)
		if !ok {
			return false
		}
		recs = append(recs, r)
		return true
	})
	if err != nil {
		return nil, ReplayResult{}, fmt.Errorf("journal: %w", err)
	}
	return &Journal{ff: ff},
		ReplayResult{Records: recs, Dropped: dropped, Bytes: good}, nil
}

// Replay scans the journal in dir without opening it for append. A
// missing journal is an empty replay, not an error.
func Replay(dir string) (ReplayResult, error) {
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if errors.Is(err, fs.ErrNotExist) {
		return ReplayResult{}, nil
	}
	if err != nil {
		return ReplayResult{}, fmt.Errorf("journal: %w", err)
	}
	recs, good, dropped := Decode(data)
	return ReplayResult{Records: recs, Dropped: dropped, Bytes: int64(good)}, nil
}

// Append encodes, writes, and fsyncs one record, returning the bytes
// written. When Append returns nil the record is durable — the gateway
// calls it before acknowledging any 2xx.
func (j *Journal) Append(r Record) (int, error) {
	if r.V == 0 {
		r.V = Version
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("journal: encode: %w", err)
	}
	n, err := j.ff.Append(payload)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	return n, nil
}

// Stats reports records and bytes appended through this handle.
func (j *Journal) Stats() (records int, bytes int64) {
	return j.ff.Stats()
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.ff.Path() }

// Close closes the append handle. Every successfully Append'ed record
// is already fsync'd, so Close-vs-SIGKILL makes no durability
// difference — which is exactly what the chaos harness exploits.
func (j *Journal) Close() error {
	return j.ff.Close()
}
