package risk

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/scenarios"
)

func TestAssessGoodPlanImproves(t *testing.T) {
	t.Parallel()
	in := (&scenarios.Cascade{Stage: 5}).Build(rand.New(rand.NewSource(1)))
	a := &Assessor{}
	rep := a.AssessPlan(in.World, mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.OverrideWAN, Target: "B4", Param: "healthy"},
	}})
	if !rep.Improves {
		t.Fatalf("correct mitigation not recognized as improvement: %s", rep.Narrative)
	}
	if rep.WouldCauseIncident {
		t.Fatal("correct mitigation flagged as incident-causing")
	}
	if rep.Score > 0.1 {
		t.Fatalf("correct mitigation scored %v", rep.Score)
	}
	// Live world untouched.
	if in.World.Ctl.WANFailed("B4") == false {
		t.Fatal("what-if leaked into live world (B4 override applied)")
	}
}

func TestAssessHarmfulPlanFlagged(t *testing.T) {
	t.Parallel()
	// On a healthy world, forcing B4 failed overloads B2: a mitigation
	// that *causes* an incident.
	w := scenarios.StandardWorld(rand.New(rand.NewSource(2)))
	a := &Assessor{}
	rep := a.AssessPlan(w, mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.OverrideWAN, Target: "B4", Param: "failed"},
	}})
	if !rep.WouldCauseIncident {
		t.Fatalf("harmful plan not flagged: %s", rep.Narrative)
	}
	if rep.Score < 0.25 {
		t.Fatalf("harmful plan scored only %v", rep.Score)
	}
	if rep.Improves {
		t.Fatal("harmful plan marked improving")
	}
	if !strings.Contains(rep.Narrative, "harms") {
		t.Errorf("narrative lacks harm call-out: %s", rep.Narrative)
	}
	// Live world unaffected.
	if w.Recompute().OverallLossRate() > 0.001 {
		t.Fatal("what-if leaked into live world")
	}
}

func TestAssessIsolationBlastRadius(t *testing.T) {
	t.Parallel()
	// Isolating a ToR blackholes its hosts: the what-if engine must see
	// the new unroutable service before the OCE pulls the trigger.
	w := scenarios.StandardWorld(rand.New(rand.NewSource(3)))
	a := &Assessor{}
	rep := a.AssessPlan(w, mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.IsolateDevice, Target: "us-east-tor-p0-0"},
	}})
	if !rep.WouldCauseIncident {
		t.Fatalf("blackholing isolation not flagged: %s", rep.Narrative)
	}
}

func TestAssessHallucinatedTargetIsMaxRisk(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(4)))
	a := &Assessor{}
	rep := a.AssessPlan(w, mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.IsolateLink, Target: "ghost-link-from-hallucination"},
	}})
	if rep.ExecError == nil || rep.Score != 1 {
		t.Fatalf("unexecutable plan not max risk: %+v", rep)
	}
}

func TestAssessNeutralPlan(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(5)))
	a := &Assessor{}
	rep := a.AssessPlan(w, mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.Escalate, Target: "SWAT"},
	}})
	if rep.WouldCauseIncident || rep.Improves || rep.Score != 0 {
		t.Fatalf("escalation should be neutral: %+v", rep)
	}
	if !strings.Contains(rep.Narrative, "neutral") {
		t.Errorf("narrative: %s", rep.Narrative)
	}
}

func TestAssessRestartClearsWedgeWithoutRecurrenceBlame(t *testing.T) {
	t.Parallel()
	// Restarting wedged devices in the novel-protocol incident: the
	// trigger re-fires in the clone, so the what-if engine should predict
	// recurrence (devices wedged again) — not an improvement.
	in := (&scenarios.NovelProtocol{}).Build(rand.New(rand.NewSource(6)))
	var wedged []string
	for _, nd := range in.World.Net.Nodes() {
		if !nd.Healthy {
			wedged = append(wedged, string(nd.ID))
		}
	}
	if len(wedged) == 0 {
		t.Fatal("no wedged devices in novel-protocol scenario")
	}
	var acts []mitigation.Action
	for _, d := range wedged {
		acts = append(acts, mitigation.Action{Kind: mitigation.RestartDevice, Target: d})
	}
	rep := (&Assessor{}).AssessPlan(in.World, mitigation.Plan{Actions: acts})
	// Either it re-wedges (incident) or fails to improve; both are
	// signals the OCE needs.
	if rep.Improves && !rep.WouldCauseIncident {
		t.Fatalf("restart-only predicted to fully fix the Tokyo incident: %+v", rep.Narrative)
	}
}

func TestCombinedBlending(t *testing.T) {
	t.Parallel()
	quant := &Report{Score: 0.1}
	c := Combined{Qualitative: llm.RiskOpinion{Level: "high", Score: 0.7, Reason: "touches WAN controller"}, Quantitative: quant}
	want := 0.4*0.7 + 0.6*0.1
	if got := c.Score(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("blend = %v, want %v", got, want)
	}
	if c.Acceptable(0.2) {
		t.Fatal("over-budget plan accepted")
	}
	if !c.Acceptable(0.5) {
		t.Fatal("within-budget plan rejected")
	}
	// Single-view cases pass through unweighted.
	if (Combined{Qualitative: llm.RiskOpinion{Score: 0.7, Reason: "x"}}).Score() != 0.7 {
		t.Fatal("qual-only blend wrong")
	}
	if (Combined{Quantitative: &Report{Score: 0.3}}).Score() != 0.3 {
		t.Fatal("quant-only blend wrong")
	}
	c.Quantitative.WouldCauseIncident = true
	if c.Acceptable(0.9) {
		t.Fatal("incident-causing plan accepted regardless of budget")
	}
	if c.Narrative() == "" {
		t.Fatal("empty narrative")
	}
}

func TestCombinedCatchesHallucinatedUnderestimate(t *testing.T) {
	t.Parallel()
	// The LLM understates risk (hallucination); the quantitative view
	// must dominate. This is the paper's argument for merging views.
	w := scenarios.StandardWorld(rand.New(rand.NewSource(7)))
	quant := (&Assessor{}).AssessPlan(w, mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.OverrideWAN, Target: "B4", Param: "failed"},
	}})
	c := Combined{Qualitative: llm.RiskOpinion{Level: "low", Score: 0.05, Reason: "seems safe"}, Quantitative: quant}
	if c.Acceptable(0.5) {
		t.Fatal("quantitative evidence of harm ignored")
	}
	if !quant.WouldCauseIncident {
		t.Fatal("what-if engine missed the harm")
	}
	_ = kb.Default()
	_ = netsim.SevInfo
}
