// Package cliflags registers the flag set shared by the evaluation
// CLIs (benchgen, abtest, replay): the determinism knobs (-seed,
// -workers), the fault-injection ladder (-faultrate, -faultseed,
// -naive), and the observability exports (-trace-out, -metrics-out,
// -pprof). Registering through one helper keeps the commands'
// vocabularies identical and lands new cross-cutting flags everywhere
// at once; command-specific flags (-n, -trials, -exp, ...) stay in
// their own main packages.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"

	"repro"
	"repro/internal/embed"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Common holds the parsed values of the shared flags.
type Common struct {
	Seed       int64
	Workers    int
	FaultRate  float64
	FaultSeed  int64
	Naive      bool
	NoCache    bool
	TraceOut   string
	MetricsOut string
	PProfAddr  string

	sink *obs.Sink
}

// Register installs the shared flags on fs and returns the struct their
// parsed values land in. seedDefault is per-command (benchgen has
// always defaulted to 42, abtest and replay to 1) so historical
// invocations keep producing their historical bytes.
func Register(fs *flag.FlagSet, seedDefault int64) *Common {
	c := &Common{}
	fs.Int64Var(&c.Seed, "seed", seedDefault, "base random seed")
	fs.IntVar(&c.Workers, "workers", 0, "parallel trial workers (0 = one per CPU; never changes results)")
	fs.Float64Var(&c.FaultRate, "faultrate", 0, "tool fault-injection rate in [0,1] (0 = no faults, byte-identical to historical runs; for benchgen it sets the top of E13's ladder)")
	fs.Int64Var(&c.FaultSeed, "faultseed", 1337, "fault-schedule seed")
	fs.BoolVar(&c.Naive, "naive", false, "with -faultrate: keep the naive invocation path instead of the resilient one")
	fs.BoolVar(&c.NoCache, "nocache", false, "disable the what-if fast-path caches (route DAGs, embeddings); output bytes never change, only speed")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write the structured session event log (JSON lines) to this path")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write aggregate metrics (Prometheus text format) to this path")
	fs.StringVar(&c.PProfAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the life of the run")
	return c
}

// Validate checks the parsed values for ranges the flag package cannot
// express. A -faultrate outside [0,1] used to pass straight through to
// the injector, where the MaxRate cap silently flattened it — the run
// completed and printed plausible tables for a configuration that never
// existed. Call it right after fs.Parse.
func (c *Common) Validate() error {
	if c.FaultRate < 0 || c.FaultRate > 1 {
		return fmt.Errorf("invalid -faultrate %v: must be in [0,1]", c.FaultRate)
	}
	if c.Workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0", c.Workers)
	}
	return nil
}

// MustValidate is Validate with the standard usage-error failure mode:
// message on stderr, exit status 2 (matching flag.ExitOnError).
func (c *Common) MustValidate() {
	if err := c.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// ApplyCaches applies the -nocache flag to the process-wide cache
// switches. Call it after flag.Parse, before any simulation work.
func (c *Common) ApplyCaches() {
	if c.NoCache {
		netsim.SetRouteCacheEnabled(false)
		embed.SetEmbedCacheEnabled(false)
	}
}

// Sink returns the run's observability sink, allocated on first use —
// or nil when neither -trace-out nor -metrics-out was given, which is
// the signal every layer below treats as "observability off".
func (c *Common) Sink() *obs.Sink {
	if c.sink == nil && (c.TraceOut != "" || c.MetricsOut != "") {
		c.sink = obs.NewSink()
	}
	return c.sink
}

// SystemOptions assembles the aiops options the shared flags imply:
// seeding, workers, fault injection with the resilient helper unless
// -naive, and observability when an export path was requested.
func (c *Common) SystemOptions() []aiops.Option {
	opts := []aiops.Option{aiops.WithSeed(c.Seed), aiops.WithWorkers(c.Workers)}
	if c.FaultRate > 0 {
		opts = append(opts, aiops.WithFaults(aiops.FaultConfig{Rate: c.FaultRate, ActionRate: c.FaultRate / 2, Seed: c.FaultSeed}))
		if !c.Naive {
			opts = append(opts, aiops.WithResilientHelper())
		}
	}
	if s := c.Sink(); s != nil {
		opts = append(opts, aiops.WithObservability(s))
	}
	return opts
}

// StartPProf serves net/http/pprof when -pprof was given; a no-op
// otherwise. The listener is bound synchronously so bind failures (port
// in use, bad address) surface before the run starts, and the bound
// address — useful with ":0" — is reported on stderr; only the accept
// loop runs in the background. The old bare-goroutine ListenAndServe
// raced the run's exit: short runs finished before the listener bound,
// and bind errors were lost with it. Profiling stays advisory: failures
// are reported, never fatal.
func (c *Common) StartPProf() {
	c.startPProf(os.Stderr)
}

// startPProf is StartPProf with the diagnostic stream injected for
// tests.
func (c *Common) startPProf(w io.Writer) {
	if c.PProfAddr == "" {
		return
	}
	ln, err := net.Listen("tcp", c.PProfAddr)
	if err != nil {
		fmt.Fprintf(w, "pprof: %v\n", err)
		return
	}
	fmt.Fprintf(w, "pprof: serving on http://%s/debug/pprof\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(w, "pprof: %v\n", err)
		}
	}()
}

// Export writes the requested observability files from the sink. All
// progress goes to stderr; stdout stays reserved for the command's
// tables, which must remain byte-identical with exports on or off.
func (c *Common) Export() error {
	if c.sink == nil {
		return nil
	}
	if c.TraceOut != "" {
		if err := writeFile(c.TraceOut, c.sink.WriteEvents); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", c.TraceOut, len(c.sink.Events()))
	}
	if c.MetricsOut != "" {
		if err := writeFile(c.MetricsOut, c.sink.WriteMetrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", c.MetricsOut)
	}
	return nil
}

// MustExport is Export with the standard CLI failure mode.
func (c *Common) MustExport() {
	if err := c.Export(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
