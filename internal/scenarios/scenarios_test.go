package scenarios

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/kb"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

func TestStandardWorldHealthy(t *testing.T) {
	t.Parallel()
	w := StandardWorld(rand.New(rand.NewSource(1)))
	rep := w.Recompute()
	if loss := rep.OverallLossRate(); loss > 0.001 {
		t.Fatalf("standard world loss = %v", loss)
	}
	for _, svc := range []string{"bulk-transfer", "web", "storage", "directconnect"} {
		ss := rep.ServiceStats[svc]
		if ss == nil {
			t.Fatalf("service %s missing", svc)
		}
		if ss.LossRate > 0.001 {
			t.Errorf("service %s loss = %v", svc, ss.LossRate)
		}
	}
	if alerts := telemetry.NewAlertEngine(w).Evaluate(); len(alerts) != 0 {
		t.Fatalf("healthy standard world fires alerts: %v", alerts)
	}
}

// applyGroundTruthMitigation executes the first acceptable mitigation set
// with placeholder-free targets and returns the plan.
func applyGroundTruthMitigation(t *testing.T, in *Instance) mitigation.Plan {
	t.Helper()
	need := in.Incident.Truth.RequiredMitigations[0]
	plan := mitigation.Plan{Actions: append([]mitigation.Action(nil), need...)}
	// Fill params required for execution but optional for matching.
	for i, a := range plan.Actions {
		if a.Kind == mitigation.RateLimitService && a.Param == "" {
			plan.Actions[i].Param = "0.5"
		}
	}
	ex := &mitigation.Executor{World: in.World, Actor: "test"}
	if err := ex.ExecutePlan(plan); err != nil {
		t.Fatalf("executing ground-truth mitigation: %v", err)
	}
	// Scenario-specific cleanup actions a real operator would chain.
	if in.Scenario.Name() == "novel-protocol" {
		for _, nd := range in.World.Net.Nodes() {
			if !nd.Healthy {
				if err := ex.Execute(mitigation.Action{Kind: mitigation.RestartDevice, Target: string(nd.ID)}); err != nil {
					t.Fatal(err)
				}
				plan.Actions = append(plan.Actions, mitigation.Action{Kind: mitigation.RestartDevice, Target: string(nd.ID)})
			}
		}
	}
	return plan
}

// TestEveryScenarioDetectableAndMitigable is the library's contract: each
// scenario must (a) produce a detectable incident (symptoms or alerts),
// (b) fail verification before mitigation, unless it is a false alarm,
// and (c) pass Succeeded after its own ground-truth mitigation executes.
func TestEveryScenarioDetectableAndMitigable(t *testing.T) {
	t.Parallel()
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				in := sc.Build(rng)
				if in.Incident.Truth == nil {
					t.Fatal("no ground truth")
				}
				if len(in.Incident.Symptoms) == 0 {
					t.Fatalf("seed %d: incident has no symptoms (alerts=%v)", seed, in.Incident.Alerts)
				}
				if in.Incident.Truth.RootCause != sc.RootCauseClass() {
					t.Fatalf("root cause %s != class %s", in.Incident.Truth.RootCause, sc.RootCauseClass())
				}
				v := &mitigation.Verifier{World: in.World}
				mitigatedBefore := v.Mitigated()
				if sc.Name() == "false-alarm" {
					if !mitigatedBefore {
						t.Fatalf("seed %d: false alarm world should be clean", seed)
					}
				} else if mitigatedBefore {
					t.Fatalf("seed %d: world verifies clean before mitigation", seed)
				}
				if in.Succeeded(mitigation.Plan{}) {
					t.Fatalf("seed %d: empty plan counted as success", seed)
				}
				plan := applyGroundTruthMitigation(t, in)
				if !in.Succeeded(plan) {
					rep := in.World.Recompute()
					t.Fatalf("seed %d: ground-truth mitigation did not succeed (loss=%v)", seed, rep.OverallLossRate())
				}
			}
		})
	}
}

func TestCascadeDepthsOrdered(t *testing.T) {
	t.Parallel()
	depths := map[int]int{}
	for _, stage := range []int{3, 4, 5} {
		in := (&Cascade{Stage: stage}).Build(rand.New(rand.NewSource(1)))
		depths[stage] = in.Incident.Truth.ChainDepth()
	}
	if !(depths[3] < depths[4] && depths[4] < depths[5]) {
		t.Fatalf("cascade depths not increasing: %v", depths)
	}
	if depths[5] != 5 {
		t.Errorf("full Casc-1 depth = %d, want 5", depths[5])
	}
}

func TestNovelProtocolMarkedNovel(t *testing.T) {
	t.Parallel()
	in := (&NovelProtocol{}).Build(rand.New(rand.NewSource(2)))
	if !in.Incident.Truth.Novel {
		t.Fatal("novel-protocol not marked novel")
	}
	if in.Incident.Truth.RootFixChange == "" {
		t.Fatal("rollout change not recorded")
	}
	// Restart-only mitigation must cause recurrence (the Tokyo trap).
	ex := &mitigation.Executor{World: in.World, Actor: "test"}
	for _, nd := range in.World.Net.Nodes() {
		if !nd.Healthy {
			if err := ex.Execute(mitigation.Action{Kind: mitigation.RestartDevice, Target: string(nd.ID)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	in.World.Recompute()
	wedged := 0
	for _, nd := range in.World.Net.Nodes() {
		if !nd.Healthy {
			wedged++
		}
	}
	if wedged == 0 {
		t.Fatal("restart-only mitigation should re-wedge devices")
	}
}

func TestFalseAlarmHasNoRealLoss(t *testing.T) {
	t.Parallel()
	in := (&FalseAlarm{}).Build(rand.New(rand.NewSource(3)))
	if in.World.Report().OverallLossRate() > 0.001 {
		t.Fatal("false alarm has real loss")
	}
	pm := telemetry.NewPingMesh(in.World)
	if telemetry.MaxLoss(pm.Query()) < 0.05 {
		t.Fatal("broken pingmesh not fabricating loss")
	}
	if in.Incident.Symptoms[0] != kb.CPacketLoss {
		t.Fatalf("symptoms = %v", in.Incident.Symptoms)
	}
}

func TestCascadeStage5RollbackResolves(t *testing.T) {
	t.Parallel()
	in := (&Cascade{Stage: 5}).Build(rand.New(rand.NewSource(4)))
	truth := in.Incident.Truth
	if truth.RootFixChange == "" {
		t.Fatal("no root fix change recorded")
	}
	ex := &mitigation.Executor{World: in.World, Actor: "test"}
	if err := ex.Execute(mitigation.Action{Kind: mitigation.RollbackChange, Target: truth.RootFixChange}); err != nil {
		t.Fatal(err)
	}
	if !in.Succeeded(mitigation.Plan{Actions: []mitigation.Action{{Kind: mitigation.RollbackChange, Target: truth.RootFixChange}}}) {
		t.Fatal("rollback did not resolve stage-5 cascade")
	}
}

func TestByNameAndRegistries(t *testing.T) {
	t.Parallel()
	if ByName("cascade-5") == nil || ByName("nope") != nil {
		t.Fatal("ByName lookup broken")
	}
	if len(All()) < 8 {
		t.Fatalf("library has %d classes", len(All()))
	}
	for _, s := range Routine() {
		in := s.Build(rand.New(rand.NewSource(5)))
		if in.Incident.Truth.Novel {
			t.Errorf("routine scenario %s marked novel", s.Name())
		}
	}
}

func TestIncidentIDsUnique(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		in := (&DeviceFailure{}).Build(rng)
		if seen[in.Incident.ID] {
			t.Fatalf("duplicate incident ID %s", in.Incident.ID)
		}
		seen[in.Incident.ID] = true
	}
}

func TestGroundTruthChainEndsAtSymptom(t *testing.T) {
	t.Parallel()
	for _, sc := range All() {
		in := sc.Build(rand.New(rand.NewSource(7)))
		chain := in.Incident.Truth.CausalChain
		if len(chain) < 2 {
			t.Errorf("%s: chain too short: %v", sc.Name(), chain)
			continue
		}
		last := chain[len(chain)-1]
		if last != kb.CPacketLoss && last != kb.CLatencySpike {
			t.Errorf("%s: chain does not end at an observable symptom: %v", sc.Name(), chain)
		}
	}
	_ = netsim.SevInfo
}

func TestFlappingCorruptionTogglesWithClock(t *testing.T) {
	t.Parallel()
	in := (&GrayLinkFlapping{}).Build(rand.New(rand.NewSource(1)))
	var lid netsim.LinkID
	for _, l := range in.World.Net.Links() {
		if l.CorruptRate > 0 {
			lid = l.ID
		}
	}
	if lid == "" {
		t.Fatal("no corrupting link at detection time")
	}
	seenOn, seenOff := false, false
	for i := 0; i < 30; i++ {
		in.World.Clock.Advance(1 * time.Minute)
		if in.World.Net.Link(lid).CorruptRate > 0 {
			seenOn = true
		} else {
			seenOff = true
		}
	}
	if !seenOn || !seenOff {
		t.Fatalf("flap did not toggle: on=%v off=%v", seenOn, seenOff)
	}
	// Isolating the link ends the impact permanently even while flapping.
	ex := &mitigation.Executor{World: in.World, Actor: "test"}
	if err := ex.Execute(mitigation.Action{Kind: mitigation.IsolateLink, Target: string(lid)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		in.World.Clock.Advance(1 * time.Minute)
		v := &mitigation.Verifier{World: in.World}
		if !v.Mitigated() {
			t.Fatal("isolated flapping link still causing impact")
		}
	}
}
