// Package harness adapts the three predictor designs — the iterative
// helper, the one-shot baseline, and the unassisted control OCE — to one
// Runner interface the evaluation machinery (A/B tests, replay, benches)
// drives uniformly.
package harness

import (
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/faults"
	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/obs"
	"repro/internal/oce"
	"repro/internal/risk"
	"repro/internal/scenarios"
	"repro/internal/tools"
)

// Result is the uniform outcome of one incident handled by one runner.
type Result struct {
	Scenario   string
	Mitigated  bool
	Escalated  bool
	Correct    bool // mitigated AND the applied plan satisfies ground truth
	RootCause  bool // the runner identified the true root cause
	TTM        time.Duration
	Wrong      int // executed-but-failed mitigations
	Secondary  int // mitigations that worsened a service
	PlanErrors int
	Rounds     int
	ToolCalls  int
	Tokens     int // LLM tokens (0 for non-LLM runners)
	LLMCalls   int
	// CostUSD is the model inference bill for the session (§3 system
	// cost; 0 for non-LLM runners).
	CostUSD float64
	// Retries and Quarantined expose the resilient path's bookkeeping
	// (0 for naive runners and for fault-free runs).
	Retries     int
	Quarantined int
	Applied     mitigation.Plan
	// Deductions is the causal chain the session's cross-check path
	// confirmed, in confirmation order (symptom side first, root cause
	// last) — what the data lake's verified-ingest gate promotes. Empty
	// for runners without an iterative deduction loop.
	Deductions []string
}

// EscalationPenalty is the modeled time a specialist team needs after a
// hand-off; unresolved incidents carry it in TTM statistics so "escalate
// fast" is not a winning strategy.
const EscalationPenalty = 2 * time.Hour

// PenalizedTTM returns TTM plus the escalation penalty when the incident
// was not mitigated by the runner itself.
func (r Result) PenalizedTTM() time.Duration {
	if r.Mitigated {
		return r.TTM
	}
	return r.TTM + EscalationPenalty
}

// Runner handles one incident instance end to end.
type Runner interface {
	Name() string
	Run(in *scenarios.Instance, seed int64) Result
}

// newRegistry builds the per-incident toolbox. It also returns the
// vector store backing the similar-incidents tool so the session can
// report the store's embedding-cache counters at session end.
func newRegistry(in *scenarios.Instance, hist *kb.History, emb embed.Embedder) (*tools.Registry, *embed.Store) {
	store := embed.NewStore(emb)
	if hist != nil {
		for _, rec := range hist.All() {
			store.Add(rec.ID, rec.Text())
		}
	}
	return tools.NewDefaultRegistry(store, hist, in.Incident.Title+" "+in.Incident.Summary, in.Incident.Service), store
}

// injectFaults wraps a registry with a per-trial fault injector when the
// config enables one. The injector is derived from the trial seed, so
// fault schedules are reproducible and independent of worker count.
func injectFaults(reg *tools.Registry, cfg faults.Config, seed int64) (*tools.Registry, *faults.Injector) {
	if !cfg.Enabled() {
		return reg, nil
	}
	inj := faults.NewInjector(cfg, seed)
	return faults.Wrap(reg, inj), inj
}

// HelperRunner drives the paper's iterative helper.
type HelperRunner struct {
	Label     string
	KBase     *kb.KB // the model's trained knowledge (snapshot for stale helpers)
	Config    core.Config
	Expertise float64 // OCE in the loop (default 0.9)
	OCEKB     *kb.KB  // OCE's own vocabulary (defaults to KBase)

	// Model knobs.
	Hallucination float64
	Recall        float64 // trained-rule recall; 0 keeps the default (1.0)
	Window        int     // context window override; 0 keeps the default

	// History powers the similar-incidents tool (optional).
	History *kb.History

	// Faults enables deterministic fault injection on the toolbox and
	// mitigation automation; the zero value keeps runs byte-identical to
	// a fault-free build. Pair with Config.Resilience to make the helper
	// cope rather than suffer.
	Faults faults.Config
}

// Name implements Runner.
func (h *HelperRunner) Name() string {
	if h.Label != "" {
		return h.Label
	}
	return "iterative-helper"
}

// Run implements Runner.
func (h *HelperRunner) Run(in *scenarios.Instance, seed int64) Result {
	return h.RunObserved(in, seed, nil)
}

// RunObserved implements ObservedRunner. The core session emits the rich
// tool/LLM/hypothesis events itself (including retries and breaker
// trips), so the helper's registry is not re-wrapped here.
func (h *HelperRunner) RunObserved(in *scenarios.Instance, seed int64, o obs.Observer) Result {
	o = obs.WithRunner(o, h.Name())
	model := llm.NewSimLLM(h.KBase, seed)
	model.HallucinationRate = h.Hallucination
	if h.Recall > 0 {
		model.Recall = h.Recall
	}
	if h.Window > 0 {
		model.Window = h.Window
	}
	reg, store := newRegistry(in, h.History, embed.NewDomainEmbedder(128))
	_ = reg.Register("im", tools.NewNLQueryTool(model)) // verified NL query, §4.4
	reg, inj := injectFaults(reg, h.Faults, seed)
	helper := &core.Helper{Model: model, Tools: reg, Quant: &risk.Assessor{}, Config: h.Config, Obs: o}
	if inj != nil {
		helper.ActionFaults = inj
	}
	exp := h.Expertise
	if exp == 0 {
		exp = 0.9
	}
	oceKB := h.OCEKB
	if oceKB == nil {
		oceKB = h.KBase
	}
	watcher := core.NewOCE(exp, oceKB, rand.New(rand.NewSource(seed^0x5eed)))
	emitStart(o, in, seed)
	out := helper.Run(in.World, in.Incident, watcher)

	res := helperResult(in, out)
	emitCacheStats(o, in, store)
	emitEnd(o, in, res)
	return res
}

// helperResult maps a core session outcome onto the uniform Result.
func helperResult(in *scenarios.Instance, out *core.Outcome) Result {
	res := Result{
		Scenario:    in.Scenario.Name(),
		Mitigated:   out.Mitigated,
		Escalated:   out.Escalated,
		TTM:         out.TTM,
		Wrong:       out.WrongMitigations,
		Secondary:   out.SecondaryImpact,
		PlanErrors:  out.PlanErrors,
		Rounds:      out.Rounds,
		ToolCalls:   out.ToolCalls,
		Tokens:      out.LLMUsage.Prompt + out.LLMUsage.Completion,
		LLMCalls:    out.LLMUsage.Calls,
		CostUSD:     out.LLMUsage.DollarCost(llm.DefaultPricing()),
		Retries:     out.ToolRetries,
		Quarantined: out.Quarantined,
		Applied:     out.Applied,
		Deductions:  append([]string(nil), out.Confirmed...),
	}
	res.Correct = out.Mitigated && in.Succeeded(out.Applied)
	truth := in.Incident.Truth
	for _, c := range out.Confirmed {
		if c == truth.RootCause {
			res.RootCause = true
		}
	}
	return res
}

// OneShotRunner drives the retrieval-based one-shot baseline.
type OneShotRunner struct {
	Label    string
	History  *kb.History
	KBase    *kb.KB
	Embedder embed.Embedder // defaults to the domain embedder

	// Faults injects tool faults into the baseline's toolbox (zero value:
	// none).
	Faults faults.Config
}

// Name implements Runner.
func (o *OneShotRunner) Name() string {
	if o.Label != "" {
		return o.Label
	}
	return "one-shot"
}

// Run implements Runner.
func (o *OneShotRunner) Run(in *scenarios.Instance, seed int64) Result {
	return o.RunObserved(in, seed, nil)
}

// RunObserved implements ObservedRunner: the baseline's toolbox is
// wrapped (outermost, after fault injection) so every invocation and its
// disposition lands in the event stream.
func (o *OneShotRunner) RunObserved(in *scenarios.Instance, seed int64, ob obs.Observer) Result {
	ob = obs.WithRunner(ob, o.Name())
	emb := o.Embedder
	if emb == nil {
		emb = embed.NewDomainEmbedder(128)
	}
	pred := baseline.Train(o.History, o.KBase, emb)
	reg, store := newRegistry(in, o.History, emb)
	reg, _ = injectFaults(reg, o.Faults, seed)
	reg = observeRegistry(reg, ob)
	emitStart(ob, in, seed)
	out := pred.Execute(in.World, in.Incident, reg)
	res := Result{
		Scenario:  in.Scenario.Name(),
		Mitigated: out.Mitigated,
		Escalated: out.Escalated,
		TTM:       out.TTM,
		Wrong:     out.WrongMitigations,
		Secondary: out.SecondaryImpact,
		Rounds:    1,
		Applied:   out.Applied,
	}
	res.Correct = out.Mitigated && in.Succeeded(out.Applied)
	res.RootCause = out.Predicted == in.Incident.Truth.RootCause
	emitCacheStats(ob, in, store)
	emitEnd(ob, in, res)
	return res
}

// ControlRunner drives the unassisted OCE (the A/B control arm).
type ControlRunner struct {
	Label     string
	KBase     *kb.KB
	Expertise float64 // default 0.8
	History   *kb.History

	// Faults injects tool faults into the OCE's toolbox (zero value:
	// none). The unassisted engineer has no retry machinery: failures
	// cost time and reject hypotheses, as for the naive helper.
	Faults faults.Config
}

// Name implements Runner.
func (c *ControlRunner) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return "unassisted-oce"
}

// Run implements Runner.
func (c *ControlRunner) Run(in *scenarios.Instance, seed int64) Result {
	return c.RunObserved(in, seed, nil)
}

// RunObserved implements ObservedRunner: the engineer's toolbox is
// wrapped (outermost, after fault injection) so every invocation and its
// disposition lands in the event stream.
func (c *ControlRunner) RunObserved(in *scenarios.Instance, seed int64, o obs.Observer) Result {
	o = obs.WithRunner(o, c.Name())
	exp := c.Expertise
	if exp == 0 {
		exp = 0.8
	}
	eng := &oce.Engineer{Expertise: exp, KBase: c.KBase, Rng: rand.New(rand.NewSource(seed ^ 0xabcdef))}
	reg, store := newRegistry(in, c.History, embed.NewDomainEmbedder(128))
	reg, _ = injectFaults(reg, c.Faults, seed)
	reg = observeRegistry(reg, o)
	emitStart(o, in, seed)
	out := eng.Solve(in.World, in.Incident, reg)
	res := Result{
		Scenario:  in.Scenario.Name(),
		Mitigated: out.Mitigated,
		Escalated: out.Escalated,
		TTM:       out.TTM,
		Wrong:     out.WrongMitigations,
		Rounds:    out.Rounds,
		ToolCalls: out.ToolCalls,
		Applied:   out.Applied,
	}
	res.Correct = out.Mitigated && in.Succeeded(out.Applied)
	emitCacheStats(o, in, store)
	emitEnd(o, in, res)
	return res
}

// RunSession runs the iterative helper with an explicit model and
// returns the uniform result plus the full structured outcome — the
// typed event stream (render with core.NewSessionTrace) and everything
// core.NewPostmortem needs. Events stream into o live when non-nil.
func RunSession(model llm.Model, kbase *kb.KB, cfg core.Config, expertise float64, hist *kb.History, in *scenarios.Instance, seed int64, o obs.Observer) (Result, *core.Outcome) {
	o = obs.WithRunner(o, "iterative-helper")
	reg, store := newRegistry(in, hist, embed.NewDomainEmbedder(128))
	_ = reg.Register("im", tools.NewNLQueryTool(model)) // verified NL query, §4.4
	helper := &core.Helper{Model: model, Tools: reg, Quant: &risk.Assessor{}, Config: cfg, Obs: o}
	if expertise == 0 {
		expertise = 0.9
	}
	watcher := core.NewOCE(expertise, kbase, rand.New(rand.NewSource(seed^0x5eed)))
	emitStart(o, in, seed)
	out := helper.Run(in.World, in.Incident, watcher)
	res := helperResult(in, out)
	emitCacheStats(o, in, store)
	emitEnd(o, in, res)
	return res, out
}

// RunTraced runs the iterative helper with an explicit model and returns
// the uniform result, the rendered session trace, and a generated
// postmortem.
//
// Deprecated: the flat string pair carries no structure; use RunSession
// and render core.NewSessionTrace / core.NewPostmortem (same bytes).
func RunTraced(model llm.Model, kbase *kb.KB, cfg core.Config, expertise float64, hist *kb.History, in *scenarios.Instance, seed int64) (Result, string, string) {
	res, out := RunSession(model, kbase, cfg, expertise, hist, in, seed, nil)
	return res, core.NewSessionTrace(out).String(), core.NewPostmortem(in.Incident, out).String()
}
