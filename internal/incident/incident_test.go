package incident

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kb"
	"repro/internal/mitigation"
	"repro/internal/telemetry"
)

func TestSymptomsFromAlerts(t *testing.T) {
	t.Parallel()
	alerts := []telemetry.Alert{
		{Rule: "service-loss", Detail: "service web experiencing 5.0% packet loss (2/6 flows unrouted)"},
		{Rule: "service-loss", Detail: "service db experiencing 2.0% packet loss (0/4 flows unrouted)"},
		{Rule: "device-down", Detail: "device x unresponsive"},
		{Rule: "link-util", Detail: "link y at 99%"},
	}
	syms := SymptomsFromAlerts(alerts)
	want := map[string]bool{kb.CPacketLoss: true, kb.CServiceUnreachable: true}
	if len(syms) != len(want) {
		t.Fatalf("symptoms = %v", syms)
	}
	for _, s := range syms {
		if !want[s] {
			t.Errorf("unexpected symptom %s", s)
		}
	}
	// No unrouted flows: no service_unreachable.
	syms = SymptomsFromAlerts(alerts[1:2])
	if len(syms) != 1 || syms[0] != kb.CPacketLoss {
		t.Errorf("symptoms = %v", syms)
	}
	if got := SymptomsFromAlerts(nil); got != nil {
		t.Errorf("no alerts should yield no symptoms, got %v", got)
	}
}

func TestDigest(t *testing.T) {
	t.Parallel()
	if !strings.Contains(Digest(nil), "no alerts") {
		t.Error("empty digest wording")
	}
	d := Digest([]telemetry.Alert{{Rule: "service-loss", Subject: "web", Detail: "detail"}})
	if !strings.Contains(d, "service-loss") || !strings.Contains(d, "detail") {
		t.Errorf("digest = %q", d)
	}
}

func TestGroundTruthChainDepth(t *testing.T) {
	t.Parallel()
	g := &GroundTruth{}
	if g.ChainDepth() != 0 {
		t.Error("empty chain depth")
	}
	g.CausalChain = []string{"a", "b", "c"}
	if g.ChainDepth() != 2 {
		t.Errorf("depth = %d", g.ChainDepth())
	}
}

func TestMitigationCorrectAlternatives(t *testing.T) {
	t.Parallel()
	g := &GroundTruth{RequiredMitigations: [][]mitigation.Action{
		{{Kind: mitigation.RollbackChange, Target: "CHG-1"}},
		{{Kind: mitigation.OverrideWAN, Target: "B4", Param: "healthy"}},
	}}
	if !g.MitigationCorrect(mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.RateLimitService, Target: "bulk", Param: "0.5"},
		{Kind: mitigation.OverrideWAN, Target: "B4", Param: "healthy"},
	}}) {
		t.Error("alternative set not accepted")
	}
	if g.MitigationCorrect(mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.OverrideWAN, Target: "B4", Param: "failed"},
	}}) {
		t.Error("wrong param accepted")
	}
	if g.MitigationCorrect(mitigation.Plan{}) {
		t.Error("empty plan accepted")
	}
}

func TestNewAndRecord(t *testing.T) {
	t.Parallel()
	alerts := []telemetry.Alert{{Rule: "service-loss", Detail: "service s experiencing 9% packet loss (0/3 flows unrouted)"}}
	truth := &GroundTruth{RootCause: kb.CLinkCorruption, CausalChain: []string{kb.CLinkCorruption, kb.CPacketLoss}}
	inc := New("INC-1", "title", "summary", 2, 10*time.Minute, alerts, truth)
	if !strings.Contains(inc.Summary, "auto-digest") {
		t.Error("digest not embedded in summary")
	}
	if len(inc.Symptoms) != 1 || inc.Symptoms[0] != kb.CPacketLoss {
		t.Errorf("symptoms = %v", inc.Symptoms)
	}
	if !strings.Contains(inc.String(), "INC-1") {
		t.Error("String missing ID")
	}
	rec := inc.Record([]mitigation.Action{{Kind: mitigation.IsolateLink, Target: "l"}}, 45*time.Minute, "tag1")
	if rec.RootCause != kb.CLinkCorruption || rec.TTMMinutes != 45 || len(rec.Tags) != 1 {
		t.Errorf("record = %+v", rec)
	}
	// Record must not alias the incident's slices.
	rec.Symptoms[0] = "mutated"
	if inc.Symptoms[0] == "mutated" {
		t.Error("Record aliases incident symptoms")
	}
}
