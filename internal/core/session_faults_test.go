package core

// Tool-error propagation and resilience-path coverage for the session:
// how failures, degraded evidence and broken automation move through
// testHypothesis/invokeTool, and that every fumble, retry and backoff is
// charged to the simulated clock (and therefore to TTM).

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/scenarios"
	"repro/internal/tools"
)

// scriptedModel answers each TASK with a fixed reply at zero latency, so
// clock deltas in these tests are pure tool/backoff arithmetic.
type scriptedModel struct {
	replies map[string]string // TASK name -> response content
}

func (m *scriptedModel) Name() string       { return "scripted" }
func (m *scriptedModel) ContextWindow() int { return 1 << 20 }
func (m *scriptedModel) Complete(req llm.Request) (llm.Response, error) {
	text := req.Text()
	for task, content := range m.replies {
		if strings.HasPrefix(text, "TASK: "+task+"\n") {
			return llm.Response{Content: content}, nil
		}
	}
	first, _, _ := strings.Cut(text, "\n")
	return llm.Response{}, fmt.Errorf("scripted model has no reply for %q", first)
}

// stubTool fails its first failN invocations, then returns res.
type stubTool struct {
	name    string
	latency time.Duration
	failN   int
	calls   int
	res     tools.Result
}

func (f *stubTool) Name() string           { return f.name }
func (f *stubTool) Description() string    { return "stub tool for session fault tests" }
func (f *stubTool) Risk() tools.RiskClass  { return tools.RiskReadOnly }
func (f *stubTool) Latency() time.Duration { return f.latency }
func (f *stubTool) Invoke(w *netsim.World, args map[string]string) (tools.Result, error) {
	f.calls++
	if f.calls <= f.failN {
		return tools.Result{}, errors.New("monitor unavailable")
	}
	r := f.res
	r.Findings = append([]string(nil), f.res.Findings...)
	return r, nil
}

// newFaultSession assembles a session directly (as Run does) so tests
// can drive testHypothesis without a full investigation loop.
func newFaultSession(m llm.Model, reg *tools.Registry, cfg Config) *session {
	in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(11)))
	cfg = cfg.withDefaults()
	h := &Helper{Model: m, Tools: reg, Config: cfg}
	s := &session{
		h: h, w: in.World, inc: in.Incident,
		oce:       NewOCE(1.0, kb.Default(), rand.New(rand.NewSource(12))),
		cfg:       cfg,
		attempted: map[string]bool{},
		breaker:   map[string]*breakerState{},
		out:       &Outcome{},
	}
	s.ctx = llm.PromptContext{Bindings: map[string]string{}}
	return s
}

func planVia(tool string) map[string]string {
	return map[string]string{
		llm.TaskPlanTest:      "TEST: tool=" + tool + " reason=check the counters\n",
		llm.TaskInterpretTest: "VERDICT: supported=true confidence=0.9 reason=seen\n",
	}
}

func evidenceContains(s *session, substr string) bool {
	for _, e := range s.ctx.Evidence {
		if strings.Contains(e, substr) {
			return true
		}
	}
	return false
}

// TestToolErrorPropagatesNaive: without resilience a failing tool costs
// exactly one invocation latency, lands in the evidence stream, and
// yields testNoTest (the hypothesis is set aside).
func TestToolErrorPropagatesNaive(t *testing.T) {
	t.Parallel()
	ft := &stubTool{name: "ft", latency: time.Minute, failN: 1 << 30}
	reg := tools.NewRegistry()
	if err := reg.Register("test", ft); err != nil {
		t.Fatal(err)
	}
	s := newFaultSession(&scriptedModel{replies: planVia("ft")}, reg, Config{})
	before := s.w.Clock.Now()
	if got := s.testHypothesis(llm.Hypothesis{Concept: kb.CPacketLoss}); got != testNoTest {
		t.Fatalf("verdict = %v, want testNoTest", got)
	}
	if d := s.w.Clock.Now() - before; d != ft.latency {
		t.Errorf("naive failure charged %v, want exactly one tool latency %v", d, ft.latency)
	}
	if s.out.ToolCalls != 1 || s.out.ToolRetries != 0 {
		t.Errorf("calls=%d retries=%d, want 1/0", s.out.ToolCalls, s.out.ToolRetries)
	}
	if !evidenceContains(s, "tool ft failed") {
		t.Errorf("tool failure missing from evidence: %v", s.ctx.Evidence)
	}
}

// TestFumbleLatencyChargedToTTM: a hallucinated tool costs the OCE
// fumbleLatency on the clock even though nothing is invoked.
func TestFumbleLatencyChargedToTTM(t *testing.T) {
	t.Parallel()
	s := newFaultSession(&scriptedModel{replies: planVia("ghost")}, tools.NewRegistry(), Config{})
	before := s.w.Clock.Now()
	if got := s.testHypothesis(llm.Hypothesis{Concept: kb.CPacketLoss}); got != testNoTest {
		t.Fatalf("verdict = %v, want testNoTest", got)
	}
	if d := s.w.Clock.Now() - before; d != fumbleLatency {
		t.Errorf("fumble charged %v, want %v", d, fumbleLatency)
	}
	if s.out.ToolCalls != 0 {
		t.Errorf("fumble invoked %d tools", s.out.ToolCalls)
	}
	if !evidenceContains(s, "does not exist") {
		t.Errorf("fumble missing from evidence: %v", s.ctx.Evidence)
	}
}

// TestResilientRetriesChargeBackoffAndTripBreaker: a dead tool is
// retried MaxRetries times with capped exponential backoff — every
// attempt and wait on the simulated clock — then the breaker opens and
// the test is rerouted to the monitor cross-check, inconclusively.
func TestResilientRetriesChargeBackoffAndTripBreaker(t *testing.T) {
	t.Parallel()
	ft := &stubTool{name: "ft", latency: time.Minute, failN: 1 << 30}
	cc := &stubTool{name: kb.ToolMonitorCheck, latency: 30 * time.Second,
		res: tools.Result{Findings: []string{"monitor ft unhealthy: heartbeat missing"}}}
	reg := tools.NewRegistry()
	for _, tl := range []tools.Tool{ft, cc} {
		if err := reg.Register("test", tl); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Resilience: DefaultResilience()}
	s := newFaultSession(&scriptedModel{replies: planVia("ft")}, reg, cfg)
	before := s.w.Clock.Now()
	if got := s.testHypothesis(llm.Hypothesis{Concept: kb.CPacketLoss}); got != testInconclusive {
		t.Fatalf("verdict = %v, want testInconclusive (rerouted)", got)
	}
	// 3 attempts at 1m each + 30s and 60s backoff + 30s cross-check.
	want := 3*time.Minute + 30*time.Second + time.Minute + 30*time.Second
	if d := s.w.Clock.Now() - before; d != want {
		t.Errorf("resilient failure charged %v, want %v", d, want)
	}
	if s.out.ToolRetries != 2 {
		t.Errorf("ToolRetries = %d, want 2", s.out.ToolRetries)
	}
	if s.out.BreakerTrips != 1 || !s.breakerOpen("ft") {
		t.Errorf("breaker trips=%d open=%v, want 1/true", s.out.BreakerTrips, s.breakerOpen("ft"))
	}
	if s.out.Rerouted != 1 || cc.calls != 1 {
		t.Errorf("rerouted=%d crosscheck calls=%d, want 1/1", s.out.Rerouted, cc.calls)
	}
	if s.out.ToolCalls != 4 { // 3 failed attempts + 1 cross-check
		t.Errorf("ToolCalls = %d, want 4", s.out.ToolCalls)
	}
	if !evidenceContains(s, "monitor ft unhealthy") {
		t.Errorf("cross-check findings missing from evidence: %v", s.ctx.Evidence)
	}
}

// TestResilientRecoversFromFlakyTool: one transient failure costs one
// backoff and one extra invocation, then the verdict lands normally and
// the breaker's failure count resets.
func TestResilientRecoversFromFlakyTool(t *testing.T) {
	t.Parallel()
	ft := &stubTool{name: "ft", latency: time.Minute, failN: 1,
		res: tools.Result{Findings: []string{kb.CPacketLoss + "=true link=x"}}}
	reg := tools.NewRegistry()
	if err := reg.Register("test", ft); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Resilience: DefaultResilience()}
	s := newFaultSession(&scriptedModel{replies: planVia("ft")}, reg, cfg)
	before := s.w.Clock.Now()
	if got := s.testHypothesis(llm.Hypothesis{Concept: kb.CPacketLoss}); got != testSupported {
		t.Fatalf("verdict = %v, want testSupported", got)
	}
	want := 2*time.Minute + 30*time.Second
	if d := s.w.Clock.Now() - before; d != want {
		t.Errorf("flaky recovery charged %v, want %v", d, want)
	}
	if s.out.ToolRetries != 1 || s.out.BreakerTrips != 0 {
		t.Errorf("retries=%d trips=%d, want 1/0", s.out.ToolRetries, s.out.BreakerTrips)
	}
	if b := s.breaker["ft"]; b == nil || b.consecutiveFails != 0 {
		t.Errorf("success did not reset the breaker: %+v", b)
	}
}

// TestQuarantineDegradedEvidence: a degraded result is recorded with a
// trust label but produces no verdict under the resilient config; the
// naive config trusts it as-is.
func TestQuarantineDegradedEvidence(t *testing.T) {
	t.Parallel()
	build := func(cfg Config) (*session, *stubTool) {
		ft := &stubTool{name: "ft", latency: time.Minute,
			res: tools.Result{Findings: []string{kb.CPacketLoss + "=true link=x"}, Degraded: true, Source: "stale"}}
		reg := tools.NewRegistry()
		if err := reg.Register("test", ft); err != nil {
			t.Fatal(err)
		}
		return newFaultSession(&scriptedModel{replies: planVia("ft")}, reg, cfg), ft
	}

	s, _ := build(Config{Resilience: DefaultResilience()})
	if got := s.testHypothesis(llm.Hypothesis{Concept: kb.CPacketLoss}); got != testInconclusive {
		t.Fatalf("resilient verdict = %v, want testInconclusive", got)
	}
	if s.out.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", s.out.Quarantined)
	}
	if !evidenceContains(s, "[degraded:stale] ft:") {
		t.Errorf("quarantined evidence missing trust label: %v", s.ctx.Evidence)
	}

	n, _ := build(Config{})
	if got := n.testHypothesis(llm.Hypothesis{Concept: kb.CPacketLoss}); got != testSupported {
		t.Fatalf("naive verdict = %v, want testSupported (trusts degraded output)", got)
	}
	if n.out.Quarantined != 0 {
		t.Errorf("naive session quarantined %d results", n.out.Quarantined)
	}
}

// TestOpenBreakerSkipsToolEntirely: with the breaker already open the
// session must not burn another deadline on the broken tool — it goes
// straight to the cross-check.
func TestOpenBreakerSkipsToolEntirely(t *testing.T) {
	t.Parallel()
	ft := &stubTool{name: "ft", latency: time.Minute}
	cc := &stubTool{name: kb.ToolMonitorCheck, latency: 30 * time.Second,
		res: tools.Result{Findings: []string{"monitor ft unhealthy"}}}
	reg := tools.NewRegistry()
	for _, tl := range []tools.Tool{ft, cc} {
		if err := reg.Register("test", tl); err != nil {
			t.Fatal(err)
		}
	}
	s := newFaultSession(&scriptedModel{replies: planVia("ft")}, reg, Config{Resilience: DefaultResilience()})
	s.breaker["ft"] = &breakerState{openUntil: s.w.Clock.Now() + time.Hour}
	if got := s.testHypothesis(llm.Hypothesis{Concept: kb.CPacketLoss}); got != testInconclusive {
		t.Fatalf("verdict = %v, want testInconclusive", got)
	}
	if ft.calls != 0 {
		t.Errorf("open breaker still invoked the broken tool %d times", ft.calls)
	}
	if s.out.Rerouted != 1 || cc.calls != 1 {
		t.Errorf("rerouted=%d crosscheck calls=%d, want 1/1", s.out.Rerouted, cc.calls)
	}
}

// failingAutomation fails every substantive mitigation action; paging
// humans (Escalate) and NoOp always work.
type failingAutomation struct{}

func (failingAutomation) ActionError(a mitigation.Action) error {
	if a.Kind == mitigation.Escalate || a.Kind == mitigation.NoOp {
		return nil
	}
	return errors.New("change automation down")
}

// TestActionFaultsForceEscalation: when mitigation automation is broken
// the session must not report a clean mitigation — it records the plan
// errors and escalates, with the wasted time in TTM.
func TestActionFaultsForceEscalation(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(3)))
	h, oce := buildHelper(in, kbase, 3, DefaultConfig())
	h.ActionFaults = failingAutomation{}
	out := h.Run(in.World, in.Incident, oce)
	if out.Mitigated {
		t.Fatalf("mitigated with all automation down; trace:\n%s", FormatTrace(out.Trace))
	}
	if !out.Escalated {
		t.Fatalf("expected escalation; trace:\n%s", FormatTrace(out.Trace))
	}
	if out.PlanErrors == 0 {
		t.Errorf("no plan errors recorded; trace:\n%s", FormatTrace(out.Trace))
	}
	if out.TTM <= 0 {
		t.Error("TTM not accounted for the failed attempts")
	}
}

func TestBackoffSchedule(t *testing.T) {
	t.Parallel()
	r := DefaultResilience()
	for i, want := range []time.Duration{30 * time.Second, time.Minute, 2 * time.Minute, 4 * time.Minute, 4 * time.Minute} {
		if got := r.backoff(i); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i, got, want)
		}
	}
	if (ResilienceConfig{}).Enabled() {
		t.Error("zero resilience config reports enabled")
	}
	if !DefaultResilience().Enabled() {
		t.Error("default resilience config reports disabled")
	}
}
