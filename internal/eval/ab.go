package eval

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/scenarios"
)

// ArmStats summarizes one A/B arm.
type ArmStats struct {
	Name       string
	N          int
	TTMMinutes []float64 // penalized TTM per incident
	Mitigated  int
	Correct    int
	Escalated  int
	Wrong      int
	Secondary  int
	Tokens     int
	// CostUSD totals the arm's model inference bill (§3 system cost).
	CostUSD float64
}

// MeanTTM returns the arm's mean penalized TTM in minutes.
func (a *ArmStats) MeanTTM() float64 { return Mean(a.TTMMinutes) }

// MedianTTM returns the arm's median penalized TTM in minutes.
func (a *ArmStats) MedianTTM() float64 { return Median(a.TTMMinutes) }

// MitigationRate is the fraction of incidents the arm mitigated itself.
func (a *ArmStats) MitigationRate() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.Mitigated) / float64(a.N)
}

// CorrectRate is the fraction with ground-truth-correct mitigations.
func (a *ArmStats) CorrectRate() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.N)
}

// add records one result.
func (a *ArmStats) add(r harness.Result) {
	a.N++
	a.TTMMinutes = append(a.TTMMinutes, r.PenalizedTTM().Minutes())
	if r.Mitigated {
		a.Mitigated++
	}
	if r.Correct {
		a.Correct++
	}
	if r.Escalated {
		a.Escalated++
	}
	a.Wrong += r.Wrong
	a.Secondary += r.Secondary
	a.Tokens += r.Tokens
	a.CostUSD += r.CostUSD
}

// ABResult is the full randomized-trial outcome.
type ABResult struct {
	Treatment ArmStats
	Control   ArmStats

	Welch       TTestResult
	MannWhitney TTestResult
	PermP       float64
	// EffectSize is Cohen's d for the TTM difference.
	EffectSize float64
	// CI for the mean TTM difference (treatment - control), minutes.
	DiffLo, DiffHi float64
	// TrialErrors counts trials whose runner panicked; they are excluded
	// from both arms (the parallel pool records the panic instead of
	// crashing the evaluation).
	TrialErrors int
}

// SignificantAt reports whether both the parametric and rank tests call
// the TTM difference significant at level alpha.
func (r *ABResult) SignificantAt(alpha float64) bool {
	return r.Welch.P < alpha && r.MannWhitney.P < alpha
}

// ABConfig parameterizes the randomized trial.
type ABConfig struct {
	N       int // incidents in the trial
	Mix     []scenarios.Scenario
	Seed    int64
	Workers int // parallel trial workers (<= 0: GOMAXPROCS)
	// Obs, when non-nil, collects every trial's event stream and metric
	// aggregates. Trials buffer into private recorders and the sink
	// absorbs them in draw order, so -trace-out / -metrics-out exports
	// are byte-identical at every worker count. Nil costs nothing.
	Obs *obs.Sink
}

// ABTest randomly assigns each sampled incident to the treatment
// (helper-assisted) or control (helper-free) arm and compares TTM and
// mistake overheads — §3's "most robust evaluation we can get".
//
// Randomization is per incident: the same scenario stream would have
// been handled by either arm, and confounders (incident class mix,
// severity) balance out in expectation.
func ABTest(cfg ABConfig, treatment, control harness.Runner) *ABResult {
	if cfg.N <= 0 {
		cfg.N = 100
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = scenarios.All()
	}
	// Randomization stays a single serial pass over one rng (the draw
	// sequence defines the trial), then the drawn trials execute on the
	// parallel pool and aggregate back in draw order — so the result is
	// bit-identical for every worker count.
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &ABResult{
		Treatment: ArmStats{Name: treatment.Name()},
		Control:   ArmStats{Name: control.Name()},
	}
	type draw struct {
		sc        scenarios.Scenario
		seed      int64
		treatment bool
	}
	draws := make([]draw, cfg.N)
	for i := range draws {
		sc := mix[rng.Intn(len(mix))]
		seed := rng.Int63()
		draws[i] = draw{sc: sc, seed: seed, treatment: rng.Intn(2) == 0}
	}
	var recs []*obs.Recorder
	if cfg.Obs != nil {
		recs = make([]*obs.Recorder, cfg.N)
	}
	trials := parallel.RunTrials(cfg.N, cfg.Workers, cfg.Seed, func(_ int64, i int) harness.Result {
		d := draws[i]
		var o obs.Observer
		if recs != nil {
			rec := obs.AcquireRecorder(fmt.Sprintf("ab/%04d", i))
			recs[i] = rec
			o = rec
		}
		if d.treatment {
			return harness.BuildAndRunObserved(treatment, d.sc, d.seed, o)
		}
		return harness.BuildAndRunObserved(control, d.sc, d.seed, o)
	})
	for _, rec := range recs {
		cfg.Obs.Absorb(rec)
		rec.Release()
	}
	for i, tr := range trials {
		if tr.Err != nil {
			res.TrialErrors++
			continue
		}
		if draws[i].treatment {
			res.Treatment.add(tr.Value)
		} else {
			res.Control.add(tr.Value)
		}
	}
	res.Welch = WelchT(res.Treatment.TTMMinutes, res.Control.TTMMinutes)
	res.EffectSize = CohensD(res.Treatment.TTMMinutes, res.Control.TTMMinutes)
	res.MannWhitney = MannWhitneyU(res.Treatment.TTMMinutes, res.Control.TTMMinutes)
	res.PermP = PermutationTest(res.Treatment.TTMMinutes, res.Control.TTMMinutes, 2000, rng)

	// Bootstrap CI on the difference of means.
	diffs := make([]float64, 0, 2000)
	bootRng := rand.New(rand.NewSource(cfg.Seed ^ 0xb007))
	for i := 0; i < 2000; i++ {
		diffs = append(diffs, resample(res.Treatment.TTMMinutes, bootRng)-resample(res.Control.TTMMinutes, bootRng))
	}
	res.DiffLo, res.DiffHi = Percentile(diffs, 2.5), Percentile(diffs, 97.5)
	return res
}

func resample(xs []float64, rng *rand.Rand) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < len(xs); i++ {
		sum += xs[rng.Intn(len(xs))]
	}
	return sum / float64(len(xs))
}

// RunMatrix evaluates several runners over the same incident stream
// (paired, not randomized): every runner sees identical incidents. Used
// by the comparative experiments (E2, E3, E9) where pairing removes
// incident-mix variance entirely. Trials run on the parallel pool
// (workers <= 0 means GOMAXPROCS); each trial rebuilds its instance per
// runner from the same seed, and aggregation happens in stream order,
// so the matrix is identical at any worker count.
func RunMatrix(n, workers int, mix []scenarios.Scenario, seed int64, runners ...harness.Runner) map[string]*ArmStats {
	return RunMatrixObserved(n, workers, mix, seed, nil, runners...)
}

// RunMatrixObserved is RunMatrix with per-trial event capture into sink
// (nil sink: identical to RunMatrix). Each trial's runners share one
// recorder, absorbed in stream order.
func RunMatrixObserved(n, workers int, mix []scenarios.Scenario, seed int64, sink *obs.Sink, runners ...harness.Runner) map[string]*ArmStats {
	if len(mix) == 0 {
		mix = scenarios.All()
	}
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]*ArmStats, len(runners))
	for _, r := range runners {
		out[r.Name()] = &ArmStats{Name: r.Name()}
	}
	type draw struct {
		sc   scenarios.Scenario
		seed int64
	}
	draws := make([]draw, n)
	for i := range draws {
		draws[i] = draw{sc: mix[rng.Intn(len(mix))], seed: rng.Int63()}
	}
	var recs []*obs.Recorder
	if sink != nil {
		recs = make([]*obs.Recorder, n)
	}
	trials := parallel.RunTrials(n, workers, seed, func(_ int64, i int) []harness.Result {
		var o obs.Observer
		if recs != nil {
			rec := obs.AcquireRecorder(fmt.Sprintf("matrix/%04d", i))
			recs[i] = rec
			o = rec
		}
		row := make([]harness.Result, len(runners))
		for j, r := range runners {
			row[j] = harness.BuildAndRunObserved(r, draws[i].sc, draws[i].seed, o)
		}
		return row
	})
	for _, rec := range recs {
		sink.Absorb(rec)
		rec.Release()
	}
	for _, tr := range trials {
		if tr.Err != nil {
			continue
		}
		for j, r := range runners {
			out[r.Name()].add(tr.Value[j])
		}
	}
	return out
}

// RenderABReport renders the abtest CLI report — the arm comparison, the
// significance tests, and the verdict line — exactly as the command has
// always printed it. Factoring the rendering here lets golden tests pin
// the bytes without shelling out.
func RenderABReport(res *ABResult) string {
	var b strings.Builder
	arms := NewTable("A/B trial: helper-assisted vs unassisted control",
		"arm", "n", "meanTTM(m)", "medianTTM(m)", "p95TTM(m)", "mitigated", "correct", "wrong", "secondary")
	for _, a := range []*ArmStats{&res.Treatment, &res.Control} {
		arms.AddRow(a.Name, a.N, a.MeanTTM(), a.MedianTTM(), Percentile(a.TTMMinutes, 95),
			Pct(a.MitigationRate()), Pct(a.CorrectRate()), a.Wrong, a.Secondary)
	}
	fmt.Fprintln(&b, arms)

	tests := NewTable("significance of the TTM difference", "test", "statistic", "p-value")
	tests.AddRow("Welch t", res.Welch.T, fmt.Sprintf("%.4g", res.Welch.P))
	tests.AddRow("Mann-Whitney U (z)", res.MannWhitney.T, fmt.Sprintf("%.4g", res.MannWhitney.P))
	tests.AddRow("permutation", "-", fmt.Sprintf("%.4g", res.PermP))
	tests.AddRow("bootstrap 95% CI (min)", fmt.Sprintf("[%.1f, %.1f]", res.DiffLo, res.DiffHi), "-")
	fmt.Fprintln(&b, tests)

	if res.SignificantAt(0.05) {
		fmt.Fprintln(&b, "TTM difference significant at alpha=0.05")
	} else {
		fmt.Fprintln(&b, "TTM difference NOT significant at alpha=0.05 (increase -n)")
	}
	return b.String()
}

// MinutesOf converts a duration to float minutes; tiny readability
// helper used by reports.
func MinutesOf(d time.Duration) float64 { return d.Minutes() }
