package scenarios

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestStormDrawBoundsAndDeterminism(t *testing.T) {
	t.Parallel()
	cfg := StormConfig{Correlation: 0.4, MaxFanout: 3, Window: 15 * time.Minute}
	draw := func(seed int64) []StormDraw {
		rng := rand.New(rand.NewSource(seed))
		out := make([]StormDraw, 200)
		for i := range out {
			out[i] = cfg.Draw(rng)
		}
		return out
	}
	a, b := draw(5), draw(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("storm draws are not a pure function of the rng stream")
	}
	fired := 0
	for _, d := range a {
		if d.Fanout == 0 {
			if d.Offsets != nil {
				t.Fatal("no-storm draw carries offsets")
			}
			continue
		}
		fired++
		if d.Fanout < 1 || d.Fanout > cfg.MaxFanout {
			t.Fatalf("fanout %d outside [1,%d]", d.Fanout, cfg.MaxFanout)
		}
		if len(d.Offsets) != d.Fanout {
			t.Fatalf("offsets %d != fanout %d", len(d.Offsets), d.Fanout)
		}
		for _, off := range d.Offsets {
			if off < 0 || off > cfg.Window {
				t.Fatalf("offset %s outside [0,%s]", off, cfg.Window)
			}
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("correlation 0.4 fired %d/%d times — generator looks degenerate", fired, len(a))
	}
	if d := (StormConfig{}).Draw(rand.New(rand.NewSource(1))); d.Fanout != 0 {
		t.Fatal("zero config must never fire")
	}
}
