package cliflags

import (
	"flag"
	"net/http"
	"strings"
	"testing"
)

func parse(t *testing.T, args ...string) (*Common, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs, 7)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return c, c.Validate()
}

func TestValidateFaultRateRange(t *testing.T) {
	for _, bad := range []string{"1.5", "-0.1", "2", "-1"} {
		if _, err := parse(t, "-faultrate", bad); err == nil {
			t.Errorf("-faultrate %s: Validate accepted an out-of-range rate", bad)
		} else if !strings.Contains(err.Error(), "faultrate") {
			t.Errorf("-faultrate %s: error %q does not name the flag", bad, err)
		}
	}
	for _, ok := range []string{"0", "0.25", "1"} {
		if _, err := parse(t, "-faultrate", ok); err != nil {
			t.Errorf("-faultrate %s: Validate rejected a legal rate: %v", ok, err)
		}
	}
}

func TestValidateWorkers(t *testing.T) {
	if _, err := parse(t, "-workers", "-2"); err == nil {
		t.Error("Validate accepted negative -workers")
	}
	if _, err := parse(t, "-workers", "8"); err != nil {
		t.Errorf("Validate rejected -workers 8: %v", err)
	}
}

// TestStartPProfBindsSynchronously: by the time startPProf returns, the
// listener must be accepting connections (no bind/run-exit race) and the
// bound address must have been reported on the diagnostic stream.
func TestStartPProfBindsSynchronously(t *testing.T) {
	c := &Common{PProfAddr: "127.0.0.1:0"}
	var out strings.Builder
	c.startPProf(&out)
	msg := out.String()
	const prefix = "pprof: serving on http://"
	if !strings.HasPrefix(msg, prefix) {
		t.Fatalf("startPProf reported %q, want %q prefix", msg, prefix)
	}
	addr := strings.TrimSuffix(strings.TrimPrefix(msg, prefix), "/debug/pprof\n")
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint not reachable immediately after StartPProf: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint returned %d", resp.StatusCode)
	}
}

// TestStartPProfReportsBindError: a bad address must surface on the
// diagnostic stream at startup, not vanish into a background goroutine.
func TestStartPProfReportsBindError(t *testing.T) {
	c := &Common{PProfAddr: "256.0.0.1:bogus"}
	var out strings.Builder
	c.startPProf(&out)
	if !strings.HasPrefix(out.String(), "pprof: ") || strings.Contains(out.String(), "serving") {
		t.Fatalf("bind failure reported as %q", out.String())
	}
}

func TestStartPProfNoAddrIsNoOp(t *testing.T) {
	var out strings.Builder
	(&Common{}).startPProf(&out)
	if out.Len() != 0 {
		t.Fatalf("no-addr StartPProf wrote %q", out.String())
	}
}
