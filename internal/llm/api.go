// Package llm provides the language-model boundary of the OCE-helper: a
// chat-completions style API, token and cost accounting, and SimLLM — a
// deterministic simulated LLM that stands in for GPT-4/PaLM-class models.
//
// SimLLM is not a language model; it is a causal-reasoning engine over a
// knowledge-base "training corpus" wrapped in an LLM-shaped interface
// with LLM-shaped failure modes: a bounded context window (text beyond it
// is silently truncated before the model "reads" it), stochastic
// hallucination (fabricated causes, flipped verdicts, corrupted targets),
// temperature noise, per-token latency, and quadratic compute cost. The
// paper's framework claims depend on exactly these properties — not on
// natural-language fluency — so the substitution preserves the behaviour
// under study while keeping experiments deterministic and offline.
package llm

import (
	"fmt"
	"strings"
	"time"
)

// Role identifies a chat message author.
type Role string

// Chat roles.
const (
	RoleSystem    Role = "system"
	RoleUser      Role = "user"
	RoleAssistant Role = "assistant"
)

// Message is one chat turn.
type Message struct {
	Role    Role
	Content string
}

// Request is a chat-completion request.
type Request struct {
	Messages    []Message
	MaxTokens   int     // completion budget; 0 = model default
	Temperature float64 // overrides the model's configured temperature when > 0
}

// Text renders the request as the flat prompt the model consumes.
func (r Request) Text() string {
	var b strings.Builder
	for i, m := range r.Messages {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(m.Content)
	}
	return b.String()
}

// Usage counts tokens for one call.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Total returns prompt + completion tokens.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Response is a chat completion.
type Response struct {
	Content   string
	Usage     Usage
	Truncated bool // prompt exceeded the context window and was cut
	Latency   time.Duration
}

// Model is the LLM interface the helper modules program against. A
// production deployment would implement it over a hosted API; the
// experiments implement it with SimLLM.
type Model interface {
	Name() string
	ContextWindow() int
	Complete(req Request) (Response, error)
}

// CountTokens approximates tokenization at the conventional 4/3 tokens
// per word (the paper's "32K tokens ~= 24K words" ratio for GPT-4).
func CountTokens(s string) int {
	n := len(strings.Fields(s))
	return (n*4 + 2) / 3
}

// TruncateTokens cuts s to at most maxTokens, dropping trailing lines
// first and then trailing words. It reports whether anything was cut.
// Dropping from the tail mirrors how retrieval frameworks budget prompts:
// callers put load-bearing instructions first and best-ranked context
// earliest, and overflow falls off the end.
func TruncateTokens(s string, maxTokens int) (string, bool) {
	if maxTokens <= 0 || CountTokens(s) <= maxTokens {
		return s, false
	}
	lines := strings.Split(s, "\n")
	for len(lines) > 1 {
		lines = lines[:len(lines)-1]
		if CountTokens(strings.Join(lines, "\n")) <= maxTokens {
			return strings.Join(lines, "\n"), true
		}
	}
	words := strings.Fields(lines[0])
	keep := maxTokens * 3 / 4
	if keep < 1 {
		keep = 1
	}
	if keep > len(words) {
		keep = len(words)
	}
	return strings.Join(words[:keep], " "), true
}

// Pricing models inference cost. FlopUnitPerTok2 captures the quadratic
// attention cost the paper calls out ("computational complexity grows
// quadratically with token count").
type Pricing struct {
	PromptPer1K     float64 // $ per 1000 prompt tokens
	CompletionPer1K float64 // $ per 1000 completion tokens
	FlopUnitPerTok2 float64 // compute units per (total tokens)^2
}

// DefaultPricing approximates 2023 GPT-4 32K pricing.
func DefaultPricing() Pricing {
	return Pricing{PromptPer1K: 0.06, CompletionPer1K: 0.12, FlopUnitPerTok2: 1e-6}
}

// Meter accumulates usage across calls.
type Meter struct {
	Calls       int
	Prompt      int
	Completion  int
	ComputeUnit float64
	WallLatency time.Duration
}

// Record adds one response's usage.
func (m *Meter) Record(r Response, p Pricing) {
	m.Calls++
	m.Prompt += r.Usage.PromptTokens
	m.Completion += r.Usage.CompletionTokens
	t := float64(r.Usage.Total())
	m.ComputeUnit += p.FlopUnitPerTok2 * t * t
	m.WallLatency += r.Latency
}

// DollarCost prices the accumulated usage.
func (m *Meter) DollarCost(p Pricing) float64 {
	return float64(m.Prompt)/1000*p.PromptPer1K + float64(m.Completion)/1000*p.CompletionPer1K
}

// Add merges another meter into m.
func (m *Meter) Add(o Meter) {
	m.Calls += o.Calls
	m.Prompt += o.Prompt
	m.Completion += o.Completion
	m.ComputeUnit += o.ComputeUnit
	m.WallLatency += o.WallLatency
}

// String summarizes the meter.
func (m *Meter) String() string {
	return fmt.Sprintf("calls=%d prompt=%d completion=%d compute=%.2f", m.Calls, m.Prompt, m.Completion, m.ComputeUnit)
}
