// Command aiopsd runs the incident gateway as a long-lived service:
// the repo's batch fleet simulator (imctl fleet) turned into a daemon
// that accepts incidents over versioned HTTP/JSON and schedules them on
// the live responder pool.
//
//	aiopsd                         # serve on 127.0.0.1:8080, key dev
//	aiopsd -addr :9090 -keys "k1=netops,k2=storage-oncall"
//	aiopsd -sim                    # simulated clock + /v1/sim endpoints
//	aiopsd -timescale 1s           # wall mode in real time (default: 1s = 1 sim minute)
//
//	curl -s -X POST -H 'X-API-Key: dev' \
//	     -d '{"scenario":"gray-link","severity":"sev2"}' \
//	     http://127.0.0.1:8080/v1/incidents
//	curl -s -H 'X-API-Key: dev' http://127.0.0.1:8080/v1/incidents/inc-0001
//	curl -s -X PATCH -H 'X-API-Key: dev' -d '{"status":"resolved"}' \
//	     http://127.0.0.1:8080/v1/incidents/inc-0001
//	curl -s http://127.0.0.1:8080/metrics
//	curl -N -H 'X-API-Key: dev' http://127.0.0.1:8080/v1/events   # SSE
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains the
// scheduler (every accepted arrival still runs to completion on the
// simulated timeline), prints the fleet summary table to stdout, and
// writes any requested -trace-out/-metrics-out exports.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("aiopsd", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		keys      = fs.String("keys", "dev=local-dev", "comma-separated apikey=caller pairs; the key goes in X-API-Key, the caller name onto the record")
		oces      = fs.Int("oces", 3, "responder pool size")
		queue     = fs.Int("queue", 8, "admission bound on the waiting queue (0 = unbounded, never shed)")
		aging     = fs.Duration("aging", 30*time.Minute, "queue-wait that promotes an incident one severity class (negative disables aging)")
		fifo      = fs.Bool("fifo", false, "dispatch in strict arrival order instead of severity+aging")
		arm       = fs.String("arm", "assisted", "which responder arm serves the pool: assisted or unassisted")
		sim       = fs.Bool("sim", false, "simulated clock under explicit control: exposes POST /v1/sim/{advance,drain} and time only moves when told (deterministic harness mode)")
		timescale = fs.Duration("timescale", time.Minute, "wall-clock mode: simulated time per wall second (1m = demo speed, 1s = real time)")
	)
	c := cliflags.Register(fs, 7)
	fs.Parse(os.Args[1:])
	c.MustValidate()
	c.StartPProf()
	c.ApplyCaches()

	keyMap, err := parseKeys(*keys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Runner construction mirrors `imctl fleet`: the assisted helper
	// (resilient unless -naive) or the unassisted control, both under
	// the shared fault-injection flags.
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	var fc faults.Config
	cfg := core.DefaultConfig()
	if c.FaultRate > 0 {
		fc = faults.Config{Rate: c.FaultRate, ActionRate: c.FaultRate / 2, Degrade: 0.5, Seed: c.FaultSeed}
		if !c.Naive {
			cfg.Resilience = core.DefaultResilience()
		}
	}
	var runner harness.Runner
	switch *arm {
	case "assisted":
		runner = &harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: cfg, Faults: fc}
	case "unassisted":
		runner = &harness.ControlRunner{Label: "unassisted-oce", KBase: kbase, Faults: fc}
	default:
		fmt.Fprintf(os.Stderr, "invalid -arm %q: want assisted or unassisted\n", *arm)
		os.Exit(2)
	}

	// The daemon always runs a sink — /metrics and /v1/events need one
	// — reusing the flag-allocated sink when exports were requested so
	// shutdown exports see the live data.
	sink := c.Sink()
	if sink == nil {
		sink = obs.NewSink()
	}

	policy := fleet.SeverityAging
	if *fifo {
		policy = fleet.FIFO
	}
	sched := fleet.NewLive(fleet.LiveConfig{
		OCEs: *oces, Policy: policy, QueueLimit: *queue, AgingStep: *aging,
		Obs: sink, RunnerName: runner.Name(),
	})

	var clock gateway.Clock
	if *sim {
		clock = gateway.NewSimClock()
	} else {
		clock = gateway.NewWallClock(*timescale)
	}
	gw := gateway.NewServer(gateway.Config{
		Keys: keyMap, Clock: clock, Sched: sched, Runner: runner,
		Seed: c.Seed, Sink: sink, SimControl: *sim,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mode := fmt.Sprintf("wall clock, 1s = %s simulated", *timescale)
	if *sim {
		mode = "sim clock (advance via POST /v1/sim/advance)"
	}
	fmt.Fprintf(os.Stderr, "aiopsd: serving on http://%s (%s, arm %s, %d OCEs, queue bound %d)\n",
		ln.Addr(), mode, runner.Name(), *oces, *queue)

	srv := &http.Server{Handler: gw.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "aiopsd: %v: draining\n", sig)
	case err := <-done:
		fmt.Fprintf(os.Stderr, "aiopsd: serve: %v\n", err)
	}

	// Graceful drain: stop intake, finish every accepted arrival on the
	// simulated timeline, report.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	rep := sched.Drain()
	fmt.Println(fleet.SummaryTable(
		fmt.Sprintf("aiopsd drain: %d OCEs, queue bound %d", *oces, *queue),
		[]fleet.Arm{{Name: runner.Name(), Report: rep}}))
	c.MustExport()
}

// parseKeys parses the -keys flag: "apikey=caller,apikey=caller".
func parseKeys(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, caller, ok := strings.Cut(pair, "=")
		if !ok || key == "" || caller == "" {
			return nil, fmt.Errorf("invalid -keys entry %q: want apikey=caller", pair)
		}
		if prev, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate api key %q (callers %q and %q)", key, prev, caller)
		}
		out[key] = caller
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-keys is empty: at least one apikey=caller pair required")
	}
	return out, nil
}
