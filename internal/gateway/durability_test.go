package gateway

// Durability and overload-protection coverage: the write-ahead journal
// round trip through the HTTP surface, boot recovery (records, notes,
// sequence resume, readiness), per-caller rate limiting, queue-depth
// shedding, the request body cap, and the SSE stream's exemption from
// the server WriteTimeout.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/scenarios"
)

// newStackWith is newTestStack with access to the Server and a Config
// hook for the durability/overload knobs.
func newStackWith(t *testing.T, oces, queueLimit int, mut func(*Config)) (*testStack, *Server) {
	t.Helper()
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	runner := &harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: core.DefaultConfig()}
	sink := obs.NewSink()
	sched := fleet.NewLive(fleet.LiveConfig{
		OCEs: oces, QueueLimit: queueLimit,
		Obs: sink, RunnerName: runner.Name(),
	})
	clock := NewSimClock()
	cfg := Config{
		Keys:  map[string]string{"k-tenant-a": "tenant-a", "k-tenant-b": "tenant-b"},
		Clock: clock, Sched: sched, Runner: runner, Seed: 7,
		Sink: sink, SimControl: true,
	}
	if mut != nil {
		mut(&cfg)
	}
	gw := NewServer(cfg)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return &testStack{ts: ts, sched: sched, clock: clock, sink: sink}, gw
}

// TestJournalRecoverRoundTrip drives a journaled gateway through
// creates and patches over HTTP, rebuilds a fresh stack over the same
// journal directory, and checks recovery restores every acknowledged
// fact: statuses, notes, severities, the ID sequence, readiness, and
// exactly one scheduler slot per unresolved incident.
func TestJournalRecoverRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	// Life A: accept three incidents, patch two, then "crash" (close
	// without drain — every ack is already fsync'd).
	jr, rr, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stA, gwA := newStackWith(t, 2, 8, func(c *Config) { c.Journal = jr })
	if _, err := gwA.Recover(rr); err != nil {
		t.Fatal(err)
	}
	for i, body := range []string{
		`{"scenario":"gray-link","opened_at_minutes":0}`,
		`{"scenario":"congestion","opened_at_minutes":5}`,
		`{"id":"custom-7","scenario":"device-failure","opened_at_minutes":9}`,
	} {
		if status, resp := stA.do(t, "POST", "/v1/incidents", "k-tenant-a", body); status != http.StatusCreated {
			t.Fatalf("create %d: HTTP %d: %s", i, status, resp)
		}
	}
	if status, resp := stA.do(t, "PATCH", "/v1/incidents/inc-0001", "k-tenant-a",
		`{"status":"investigating","severity":"sev1","note":"checking spines"}`); status != http.StatusOK {
		t.Fatalf("patch inc-0001: HTTP %d: %s", status, resp)
	}
	if status, resp := stA.do(t, "PATCH", "/v1/incidents/inc-0002", "k-tenant-b",
		`{"status":"resolved","note":"false alarm"}`); status != http.StatusOK {
		t.Fatalf("patch inc-0002: HTTP %d: %s", status, resp)
	}
	stA.ts.Close()
	jr.Close()

	// Life B: recover from the journal alone.
	jr2, rr2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	stB, gwB := newStackWith(t, 2, 8, func(c *Config) { c.Journal = jr2 })
	if status, body := stB.do(t, "GET", "/readyz", "", ""); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz before recovery: HTTP %d: %s", status, body)
	}
	stats, err := gwB.Recover(rr2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 5 || stats.Dropped != 0 || stats.Reoffered != 2 || stats.Resolved != 1 {
		t.Fatalf("recover stats = %+v, want 5 records, 2 re-offered, 1 resolved", stats)
	}
	if status, body := stB.do(t, "GET", "/readyz", "", ""); status != http.StatusOK {
		t.Fatalf("readyz after recovery: HTTP %d: %s", status, body)
	}

	var got Record
	for id, want := range map[string]struct {
		status, sev string
		note        string
	}{
		"inc-0001": {"investigating", "sev1", "tenant-a: checking spines"},
		"inc-0002": {"resolved", "", "tenant-b: false alarm"},
		"custom-7": {"open", "", ""},
	} {
		status, body := stB.do(t, "GET", "/v1/incidents/"+id, "k-tenant-a", "")
		if status != http.StatusOK {
			t.Fatalf("get %s: HTTP %d: %s", id, status, body)
		}
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if got.Status != want.status {
			t.Errorf("%s: status %q, want %q", id, got.Status, want.status)
		}
		if want.sev != "" && got.Severity.String() != want.sev {
			t.Errorf("%s: severity %v, want %s", id, got.Severity, want.sev)
		}
		if want.note != "" && (len(got.Notes) != 1 || got.Notes[0] != want.note) {
			t.Errorf("%s: notes %q, want [%q]", id, got.Notes, want.note)
		}
	}

	// The auto-ID sequence resumed past the journaled inc-0002.
	status, body := stB.do(t, "POST", "/v1/incidents", "k-tenant-a", `{"scenario":"gray-link","opened_at_minutes":20}`)
	if status != http.StatusCreated {
		t.Fatalf("post-recovery create: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil || got.ID != "inc-0003" {
		t.Fatalf("post-recovery id = %q (err %v), want inc-0003", got.ID, err)
	}

	// Exactly one slot per unresolved incident: 2 re-offered + 1 new.
	// The caller-resolved inc-0002 must not burn a responder again.
	var sum DrainSummary
	status, body = stB.do(t, "POST", "/v1/sim/drain", "k-tenant-a", "")
	if status != http.StatusOK {
		t.Fatalf("drain: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Incidents != 3 {
		t.Fatalf("drained %d incidents, want 3 (resolved incident re-offered?)", sum.Incidents)
	}
}

// TestRateLimitPerCaller pins the token-bucket contract on the sim
// clock: deterministic 429s once the burst is spent, Retry-After
// rendered in seconds, per-caller isolation, and refill with simulated
// time.
func TestRateLimitPerCaller(t *testing.T) {
	t.Parallel()
	st, _ := newStackWith(t, 1, 0, func(c *Config) { c.RatePerMin = 1; c.Burst = 2 })
	post := func(key string) (int, string, http.Header) {
		req, err := http.NewRequest("POST", st.ts.URL+"/v1/incidents", strings.NewReader(`{"scenario":"gray-link"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", key)
		resp, err := st.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		_, _ = fmt.Fprint(&sb, resp.Header.Get("Retry-After"))
		return resp.StatusCode, sb.String(), resp.Header
	}
	for i := 0; i < 2; i++ {
		if status, _, _ := post("k-tenant-a"); status != http.StatusCreated {
			t.Fatalf("burst request %d: HTTP %d", i, status)
		}
	}
	status, retry, _ := post("k-tenant-a")
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: HTTP %d, want 429", status)
	}
	if retry != "1" {
		t.Fatalf("Retry-After = %q, want %q (1 sim minute at fallback scale)", retry, "1")
	}
	// Another caller's bucket is untouched.
	if status, _, _ := post("k-tenant-b"); status != http.StatusCreated {
		t.Fatalf("tenant-b: HTTP %d, want 201", status)
	}
	// One simulated minute accrues exactly one token.
	if status, body := st.do(t, "POST", "/v1/sim/advance", "k-tenant-a", `{"minutes":1}`); status != http.StatusOK {
		t.Fatalf("advance: HTTP %d: %s", status, body)
	}
	if status, _, _ := post("k-tenant-a"); status != http.StatusCreated {
		t.Fatalf("post-refill: HTTP %d, want 201", status)
	}
	if status, _, _ := post("k-tenant-a"); status != http.StatusTooManyRequests {
		t.Fatalf("second post-refill: HTTP %d, want 429", status)
	}
	if _, body := st.do(t, "GET", "/metrics", "", ""); !strings.Contains(body, `aiops_gateway_throttled_total{caller="tenant-a"} 2`) {
		t.Error("throttle counter missing from /metrics")
	}
}

// TestBodyCap413 is the oversized-payload contract: a body past the cap
// is refused with a field-blamed 413 naming the limit, while a
// same-shape small request sails through.
func TestBodyCap413(t *testing.T) {
	t.Parallel()
	st, _ := newStackWith(t, 1, 0, func(c *Config) { c.MaxBody = 128 })
	if status, body := st.do(t, "POST", "/v1/incidents", "k-tenant-a",
		`{"scenario":"gray-link","opened_at_minutes":0}`); status != http.StatusCreated {
		t.Fatalf("small body: HTTP %d: %s", status, body)
	}
	big := fmt.Sprintf(`{"scenario":"gray-link","title":%q}`, strings.Repeat("x", 200))
	status, body := st.do(t, "POST", "/v1/incidents", "k-tenant-a", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d: %s", status, body)
	}
	if !strings.Contains(body, `"field":"body"`) || !strings.Contains(body, "exceeds the 128-byte request cap") {
		t.Fatalf("413 not field-blamed: %s", body)
	}
}

// TestShedDepth503 covers queue-depth load shedding: once the in-flight
// count reaches the bound, creates get a 503 with Retry-After before
// any session runs, and acceptance resumes when the backlog drains.
func TestShedDepth503(t *testing.T) {
	t.Parallel()
	st, _ := newStackWith(t, 1, 8, func(c *Config) { c.ShedDepth = 1 })
	if status, body := st.do(t, "POST", "/v1/incidents", "k-tenant-a",
		`{"id":"shed-1","scenario":"gray-link","opened_at_minutes":0}`); status != http.StatusCreated {
		t.Fatalf("first create: HTTP %d: %s", status, body)
	}
	req, err := http.NewRequest("POST", st.ts.URL+"/v1/incidents",
		strings.NewReader(`{"id":"shed-2","scenario":"gray-link","opened_at_minutes":0}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "k-tenant-a")
	resp, err := st.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("at shed depth: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	// Drain the backlog; acceptance resumes.
	if status, body := st.do(t, "POST", "/v1/sim/advance", "k-tenant-a", `{"minutes":10000}`); status != http.StatusOK {
		t.Fatalf("advance: HTTP %d: %s", status, body)
	}
	if status, body := st.do(t, "POST", "/v1/incidents", "k-tenant-a",
		`{"id":"shed-3","scenario":"gray-link"}`); status != http.StatusCreated {
		t.Fatalf("post-drain create: HTTP %d: %s", status, body)
	}
	if _, body := st.do(t, "GET", "/metrics", "", ""); !strings.Contains(body, "aiops_gateway_shed_total 1") {
		t.Error("shed counter missing from /metrics")
	}
}

// TestHealthzReadyzLifecycle: healthz is pure liveness (no auth, always
// 200 while serving); readyz flips to 503 at Shutdown so load balancers
// stop routing before the drain starts.
func TestHealthzReadyzLifecycle(t *testing.T) {
	t.Parallel()
	st, gw := newStackWith(t, 1, 0, nil)
	if status, body := st.do(t, "GET", "/healthz", "", ""); status != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz: HTTP %d: %q", status, body)
	}
	// No journal configured: ready from construction.
	if status, _ := st.do(t, "GET", "/readyz", "", ""); status != http.StatusOK {
		t.Fatalf("readyz: HTTP %d, want 200", status)
	}
	gw.Shutdown()
	if status, body := st.do(t, "GET", "/readyz", "", ""); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: HTTP %d: %s", status, body)
	}
	if status, _ := st.do(t, "GET", "/healthz", "", ""); status != http.StatusOK {
		t.Fatal("healthz must stay 200 while the listener drains")
	}
}

// instantRunner resolves immediately: keeps non-SSE responses well
// inside the deliberately tiny server WriteTimeout below, even with the
// race detector slowing sessions down.
type instantRunner struct{}

func (instantRunner) Name() string { return "instant" }
func (instantRunner) Run(in *scenarios.Instance, seed int64) harness.Result {
	return harness.Result{TTM: time.Minute, Mitigated: true, Correct: true}
}

// TestSSEWriteTimeoutExemptAndShutdown: the SSE stream outlives the
// server's WriteTimeout (the handler clears its per-request deadline)
// and ends promptly at Shutdown instead of hanging the drain.
func TestSSEWriteTimeoutExemptAndShutdown(t *testing.T) {
	t.Parallel()
	runner := instantRunner{}
	sink := obs.NewSink()
	sched := fleet.NewLive(fleet.LiveConfig{OCEs: 1, Obs: sink, RunnerName: runner.Name()})
	clock := NewSimClock()
	gw := NewServer(Config{
		Keys:  map[string]string{"k-tenant-a": "tenant-a"},
		Clock: clock, Sched: sched, Runner: runner, Seed: 7,
		Sink: sink, SimControl: true,
	})
	// The stub runner emits no session events, but the fleet's own
	// fleet-incident event carries the "gw/<id>" session label the
	// stream assertion below looks for.
	ts := httptest.NewUnstartedServer(gw.Handler())
	ts.Config.WriteTimeout = 150 * time.Millisecond
	ts.Start()
	t.Cleanup(ts.Close)
	st := &testStack{ts: ts, sched: sched, clock: clock, sink: sink}

	req, err := http.NewRequest("GET", ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "k-tenant-a")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}

	// Outlive the WriteTimeout, then trigger traffic: a stream bound by
	// the server deadline would already be severed here.
	time.Sleep(3 * ts.Config.WriteTimeout)
	if status, body := st.do(t, "POST", "/v1/incidents", "k-tenant-a",
		`{"id":"sse-to-1","scenario":"gray-link","opened_at_minutes":0}`); status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", status, body)
	}
	if status, body := st.do(t, "POST", "/v1/sim/advance", "k-tenant-a", `{"minutes":1}`); status != http.StatusOK {
		t.Fatalf("advance: HTTP %d: %s", status, body)
	}
	scan := bufio.NewScanner(resp.Body)
	saw := false
	for scan.Scan() {
		if strings.Contains(scan.Text(), "gw/sse-to-1") {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatalf("stream severed before the event arrived: %v", scan.Err())
	}

	// Shutdown closes every subscriber stream; the body must EOF
	// instead of blocking the HTTP drain forever.
	gw.Shutdown()
	eof := make(chan error, 1)
	go func() {
		for scan.Scan() {
		}
		eof <- scan.Err()
	}()
	select {
	case err := <-eof:
		if err != nil {
			t.Fatalf("stream ended with %v, want clean EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open 5s after Shutdown")
	}
}
