// Package faults is the deterministic fault-injection substrate behind
// the repository's robustness evaluation (experiment E13): it wraps the
// diagnostic toolbox (and, via ActionError, the mitigation automation)
// with seed-derived fault schedules so the helper's reliability under
// degraded telemetry is *measured* rather than asserted.
//
// The paper's §2.2 "reliable & safe" principle is the motivation: network
// monitors are unreliable exactly when they matter most — during
// incidents — and a helper that accepts or rejects hypotheses on
// corrupted evidence converts monitor flakiness into wrong mitigations
// (§3's "mistake overheads"). The injector simulates that flakiness with
// four fault classes:
//
//   - Transient: the query fails outright with a retryable RPC error.
//   - Timeout: the query hangs until the invocation-layer deadline, then
//     fails; the wasted time is charged to the simulated clock (and so
//     to TTM).
//   - Stale: the monitor serves the last cached reading (or a reading of
//     unverifiable freshness) marked Degraded — plausible but possibly
//     outdated.
//   - Corrupt: the pipeline flips finding polarity ("=true" <-> "=false")
//     and marks the result Degraded — the dangerous class, because a
//     naive consumer turns it into a wrong verdict.
//
// Flappy monitors that degrade *during* the incident are modeled by
// Config.Degrade: the effective fault rate grows with simulated elapsed
// time, so the longer an incident drags on, the less trustworthy the
// telemetry becomes.
//
// Determinism is the core contract, mirrored from internal/parallel: the
// fault schedule for a given (config seed, trial seed) pair is a pure
// function of the tool name and per-tool invocation index, derived with
// parallel.DeriveSeed's splitmix64 finalizer. Worker count, goroutine
// interleaving and map iteration order never touch it, so workers=1 and
// workers=N produce byte-identical experiment tables. All injector state
// is per-instance (per trial), never package-global, keeping parallel
// trials race-free.
package faults

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/tools"
)

// Class enumerates the injectable fault classes.
type Class int

// The fault classes. None means the invocation proceeds untouched.
const (
	None Class = iota
	Transient
	Timeout
	Stale
	Corrupt
)

// String names the class.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Timeout:
		return "timeout"
	case Stale:
		return "stale"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Weights distributes injected faults across classes. Zero values select
// the default mix.
type Weights struct {
	Transient, Timeout, Stale, Corrupt float64
}

func (w Weights) withDefaults() Weights {
	if w.Transient+w.Timeout+w.Stale+w.Corrupt <= 0 {
		return Weights{Transient: 0.35, Timeout: 0.15, Stale: 0.2, Corrupt: 0.3}
	}
	return w
}

// Config parameterizes an injector. The zero value injects nothing, so
// untouched callers are byte-identical to a build without this package.
type Config struct {
	// Rate is the base per-invocation probability of a tool fault in
	// [0,1]; 0 disables tool-fault injection entirely.
	Rate float64

	// Seed selects the fault schedule. It is combined with the trial
	// seed, so distinct trials see distinct-but-reproducible schedules.
	Seed int64

	// Degrade models flappy monitors that get worse as the incident
	// drags on: the effective rate at simulated time t is
	// Rate*(1+Degrade*t_hours), capped at MaxRate. 0 keeps the rate
	// flat.
	Degrade float64

	// MaxRate caps the effective rate (default 0.9: even a collapsing
	// monitoring stack occasionally answers).
	MaxRate float64

	// ActionRate is the per-action probability that mitigation
	// automation fails mid-plan; 0 disables action-fault injection.
	// Escalation and no-ops never fail (handing off to humans is
	// reliable).
	ActionRate float64

	// Weights distributes tool faults across classes.
	Weights Weights
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool { return c.Rate > 0 || c.ActionRate > 0 }

// Validate rejects configs whose probabilities leave [0,1]. Out-of-range
// rates used to slip through silently — a rate above 1 behaves like 1
// after the MaxRate cap and a negative rate like 0, so typos produced
// plausible-looking but wrong experiment tables. Callers (the CLI flag
// layer, aiops.WithFaults) fail fast instead.
func (c Config) Validate() error {
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("fault rate %v out of range [0,1]", c.Rate)
	}
	if c.ActionRate < 0 || c.ActionRate > 1 {
		return fmt.Errorf("action fault rate %v out of range [0,1]", c.ActionRate)
	}
	if c.MaxRate < 0 || c.MaxRate > 1 {
		return fmt.Errorf("max fault rate %v out of range [0,1]", c.MaxRate)
	}
	if c.Degrade < 0 {
		return fmt.Errorf("degrade slope %v negative", c.Degrade)
	}
	if w := c.Weights; w.Transient < 0 || w.Timeout < 0 || w.Stale < 0 || w.Corrupt < 0 {
		return fmt.Errorf("fault class weights must be non-negative, got %+v", w)
	}
	return nil
}

func (c Config) maxRate() float64 {
	if c.MaxRate <= 0 {
		return 0.9
	}
	return c.MaxRate
}

// effectiveRate is the tool-fault probability at simulated time now.
func (c Config) effectiveRate(now time.Duration) float64 {
	r := c.Rate
	if c.Degrade > 0 {
		r *= 1 + c.Degrade*now.Hours()
	}
	if cap := c.maxRate(); r > cap {
		r = cap
	}
	return r
}

// Injector is one trial's deterministic fault source. All state is
// per-injector — never package-global — so parallel trials stay
// independent and race-free. An Injector must not be shared across
// concurrently running trials.
type Injector struct {
	cfg  Config
	base int64 // splitmix-derived from (cfg.Seed, trial seed)

	calls   map[string]int          // per-tool invocation counter
	cache   map[string]tools.Result // last clean result per tool, for stale serves
	actions int                     // mitigation-action counter

	injected map[Class]int // injected-fault tally, for tests and reports
}

// NewInjector builds the injector for one trial. The schedule depends
// only on (cfg.Seed, trialSeed) — not on scheduling or worker count.
func NewInjector(cfg Config, trialSeed int64) *Injector {
	return &Injector{
		cfg:      cfg,
		base:     parallel.DeriveSeed(cfg.Seed^trialSeed, 0),
		calls:    make(map[string]int),
		cache:    make(map[string]tools.Result),
		injected: make(map[Class]int),
	}
}

// Config returns the injector's configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Injected reports how many faults of the class this injector has
// served so far.
func (inj *Injector) Injected(c Class) int { return inj.injected[c] }

// fnv64a hashes a string for schedule keying (FNV-1a).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// draw returns a deterministic uniform value in [0,1) keyed by (key,
// index, salt) under this injector's base seed, using the same
// splitmix64 finalizer the parallel trial pool derives seeds with.
func (inj *Injector) draw(key string, index int, salt int64) float64 {
	z := uint64(inj.base) ^ fnv64a(key) ^ uint64(salt)
	s := parallel.DeriveSeed(int64(z), index)
	return float64(uint64(s)>>11) / (1 << 53)
}

// ClassAt is the pure schedule function: the fault class for invocation
// index of the named tool at simulated time now. Identical inputs (and
// injector seeds) always yield the identical class.
func (inj *Injector) ClassAt(tool string, index int, now time.Duration) Class {
	rate := inj.cfg.effectiveRate(now)
	if rate <= 0 || inj.draw(tool, index, 0x0fa7) >= rate {
		return None
	}
	w := inj.cfg.Weights.withDefaults()
	total := w.Transient + w.Timeout + w.Stale + w.Corrupt
	p := inj.draw(tool, index, 0xc1a5) * total
	switch {
	case p < w.Transient:
		return Transient
	case p < w.Transient+w.Timeout:
		return Timeout
	case p < w.Transient+w.Timeout+w.Stale:
		return Stale
	default:
		return Corrupt
	}
}

// ActionError decides whether the next mitigation action's automation
// fails (the executor consults it via its FailOn hook). Escalation and
// no-ops never fail. The schedule is keyed by a per-injector action
// counter, so it is deterministic per trial.
func (inj *Injector) ActionError(a mitigation.Action) error {
	if inj == nil || inj.cfg.ActionRate <= 0 {
		return nil
	}
	if a.Kind == mitigation.Escalate || a.Kind == mitigation.NoOp {
		return nil
	}
	inj.actions++
	if inj.draw("action:"+string(a.Kind), inj.actions, 0xac71) < inj.cfg.ActionRate {
		return fmt.Errorf("faults: automation for %s failed (injected)", a)
	}
	return nil
}

// Deadline is the invocation-layer RPC deadline for a tool: the most a
// single (possibly hung) query may cost on the simulated clock before
// the caller gets an error back. Proportional to the tool's nominal
// latency, with a floor for fast tools.
func Deadline(t tools.Tool) time.Duration {
	return 2*t.Latency() + 2*time.Minute
}

// Wrap returns a registry in which every tool is wrapped by the
// injector, preserving names, teams, risk classes and latencies. A nil
// injector or a disabled config returns the registry unchanged, so the
// no-faults path shares zero code with injection.
func Wrap(reg *tools.Registry, inj *Injector) *tools.Registry {
	if inj == nil || !inj.cfg.Enabled() {
		return reg
	}
	out := tools.NewRegistry()
	for _, name := range reg.Names() {
		t, _ := reg.Get(name)
		if err := out.Register(reg.Owner(name), &faultyTool{inner: t, inj: inj}); err != nil {
			// Registering into a fresh registry with the source's own
			// (name, team) pairs cannot conflict.
			panic(err)
		}
	}
	return out
}

// faultyTool decorates one tool with the trial's fault schedule.
type faultyTool struct {
	inner tools.Tool
	inj   *Injector
}

func (f *faultyTool) Name() string           { return f.inner.Name() }
func (f *faultyTool) Description() string    { return f.inner.Description() }
func (f *faultyTool) Risk() tools.RiskClass  { return f.inner.Risk() }
func (f *faultyTool) Latency() time.Duration { return f.inner.Latency() }

// Invoke implements tools.Tool. The caller has already charged the
// tool's nominal latency; timeout faults charge the remainder up to the
// deadline here, the way a hung RPC burns real incident time.
func (f *faultyTool) Invoke(w *netsim.World, args map[string]string) (tools.Result, error) {
	name := f.inner.Name()
	call := f.inj.calls[name]
	f.inj.calls[name] = call + 1

	class := f.inj.ClassAt(name, call, w.Clock.Now())
	if class != None {
		f.inj.injected[class]++
	}
	switch class {
	case Transient:
		return tools.Result{}, fmt.Errorf("faults: %s: transient RPC failure (injected)", name)
	case Timeout:
		if d, lat := Deadline(f.inner), f.inner.Latency(); d > lat {
			w.Clock.Advance(d - lat)
		}
		return tools.Result{}, fmt.Errorf("faults: %s: deadline %v exceeded (injected)", name, Deadline(f.inner))
	case Stale:
		if cached, ok := f.inj.cache[name]; ok {
			res := cloneResult(cached)
			res.Degraded, res.Source = true, "stale"
			return res, nil
		}
		// Nothing cached yet: serve a live reading whose freshness the
		// pipeline cannot vouch for.
		res, err := f.inner.Invoke(w, args)
		if err != nil {
			return res, err
		}
		res.Degraded, res.Source = true, "stale"
		return res, nil
	case Corrupt:
		res, err := f.inner.Invoke(w, args)
		if err != nil {
			return res, err
		}
		res.Findings = flipFindings(res.Findings)
		res.Degraded, res.Source = true, "corrupt"
		return res, nil
	}

	res, err := f.inner.Invoke(w, args)
	if err == nil && !res.Degraded {
		f.inj.cache[name] = cloneResult(res)
	}
	return res, err
}

// flipFindings inverts finding polarity: every "=true" becomes "=false"
// and vice versa — the corrupted-pipeline signature that turns good
// telemetry into confident wrong answers.
func flipFindings(in []string) []string {
	out := make([]string, len(in))
	for i, f := range in {
		f = strings.ReplaceAll(f, "=true", "\x00")
		f = strings.ReplaceAll(f, "=false", "=true")
		out[i] = strings.ReplaceAll(f, "\x00", "=false")
	}
	return out
}

// cloneResult deep-copies a result so cached serves cannot alias live
// slices or maps.
func cloneResult(r tools.Result) tools.Result {
	c := r
	c.Findings = append([]string(nil), r.Findings...)
	if r.Bindings != nil {
		c.Bindings = make(map[string]string, len(r.Bindings))
		for k, v := range r.Bindings {
			c.Bindings[k] = v
		}
	}
	return c
}
