// Package embed implements text embeddings and a vector store for
// incident-similarity retrieval.
//
// The paper (§4.4 "Network-focused Embeddings") observes that retrieval
// frameworks embed text with generic models "trained on non-network
// specific data" and calls for network-specific embedding models. This
// package provides both ends of that contrast:
//
//   - HashEmbedder: a generic character-n-gram hashing embedder — a stand
//     in for an off-the-shelf sentence encoder with no domain knowledge.
//   - DomainEmbedder: the same machinery with a networking-aware
//     tokenizer: domain synonyms fold to shared canonical tokens
//     ("drop", "discard" and "loss" embed identically) and domain terms
//     carry extra weight, so incidents that describe the same failure
//     with different words land near each other.
//
// The store supports exact cosine search and LSH (random-hyperplane)
// approximate search, mirroring the vector-database architecture the
// paper describes.
package embed

import (
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Embedder maps text to a fixed-dimension unit vector.
type Embedder interface {
	Name() string
	Dim() int
	Embed(text string) []float32
}

// fnv32a hashes s with the FNV-1a function; used to bucket tokens into
// vector dimensions deterministically.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// normalize scales v to unit length in place and returns it. Zero vectors
// are returned unchanged.
func normalize(v []float32) []float32 {
	var sum float64
	for _, x := range v {
		sum += float64(x) * float64(x)
	}
	if sum == 0 {
		return v
	}
	inv := float32(1 / math.Sqrt(sum))
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Cosine returns the cosine similarity of two equal-length vectors.
func Cosine(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("embed: cosine of vectors with different dimensions")
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// HashEmbedder is the generic baseline: character trigrams hashed into a
// fixed-dimension bag, signed by a second hash, L2-normalized.
type HashEmbedder struct {
	Dims int
}

// NewHashEmbedder returns a generic embedder with the given dimension
// (128 if non-positive).
func NewHashEmbedder(dims int) *HashEmbedder {
	if dims <= 0 {
		dims = 128
	}
	return &HashEmbedder{Dims: dims}
}

// Name implements Embedder.
func (e *HashEmbedder) Name() string { return "generic-hash" }

// Dim implements Embedder.
func (e *HashEmbedder) Dim() int { return e.Dims }

// Embed implements Embedder.
func (e *HashEmbedder) Embed(text string) []float32 {
	v := make([]float32, e.Dims)
	t := strings.ToLower(text)
	for i := 0; i+3 <= len(t); i++ {
		tri := t[i : i+3]
		h := fnv32a(tri)
		idx := int(h % uint32(e.Dims))
		sign := float32(1)
		if (h>>16)&1 == 1 {
			sign = -1
		}
		v[idx] += sign
	}
	return normalize(v)
}

// domainSynonyms folds networking vocabulary onto canonical tokens. The
// table is the "network-specific training" of the domain embedder.
var domainSynonyms = map[string]string{
	"loss": "pktloss", "losses": "pktloss", "drop": "pktloss", "drops": "pktloss",
	"dropped": "pktloss", "dropping": "pktloss", "discard": "pktloss", "discards": "pktloss",
	"retransmissions": "pktloss", "retransmits": "pktloss", "blackhole": "pktloss", "blackholed": "pktloss",

	"crash": "oscrash", "crashed": "oscrash", "panic": "oscrash", "wedge": "oscrash",
	"wedged": "oscrash", "unresponsive": "oscrash", "reset": "oscrash", "resetting": "oscrash",
	"watchdog": "oscrash", "exception": "oscrash",

	"congestion": "overload", "congested": "overload", "overload": "overload",
	"overloaded": "overload", "hot": "overload", "utilization": "overload", "saturated": "overload",

	"reroute": "failover", "rerouted": "failover", "failover": "failover",
	"shifted": "failover", "drained": "failover",

	"config": "confchg", "configuration": "confchg", "push": "confchg",
	"rollout": "confchg", "deploy": "confchg", "deployed": "confchg", "upgrade": "confchg",

	"latency": "lat", "slow": "lat", "rtt": "lat", "delay": "lat", "spikes": "lat", "spike": "lat",

	"corruption": "fcserr", "corrupted": "fcserr", "corrupting": "fcserr",
	"checksum": "fcserr", "fcs": "fcserr", "crc": "fcserr",

	"monitor": "mon", "monitoring": "mon", "pingmesh": "mon", "telemetry": "mon",
	"alert": "mon", "alerts": "mon", "alarm": "mon", "dashboards": "mon",

	"fiber": "physlink", "optics": "physlink", "transceiver": "physlink",
	"cable": "physlink", "carrier": "physlink",
}

// domainWeight boosts canonical domain tokens relative to filler words.
const domainWeight = 3

// domainCanon is the set of canonical domain tokens, precomputed so the
// per-token domain check is a map lookup instead of a scan over the
// synonym table's values.
var domainCanon = func() map[string]bool {
	set := make(map[string]bool, len(domainSynonyms))
	for _, canon := range domainSynonyms {
		set[canon] = true
	}
	return set
}()

// DomainEmbedder is the network-specialized embedder: word tokens with
// synonym folding and domain-term weighting, plus bigrams of the folded
// stream.
type DomainEmbedder struct {
	Dims int
}

// NewDomainEmbedder returns a domain embedder with the given dimension
// (128 if non-positive).
func NewDomainEmbedder(dims int) *DomainEmbedder {
	if dims <= 0 {
		dims = 128
	}
	return &DomainEmbedder{Dims: dims}
}

// Name implements Embedder.
func (e *DomainEmbedder) Name() string { return "domain-network" }

// Dim implements Embedder.
func (e *DomainEmbedder) Dim() int { return e.Dims }

// Tokenize lowercases, splits on non-alphanumerics and folds synonyms;
// exported for tests and for the retrieval-quality experiment's analysis.
func (e *DomainEmbedder) Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
	out := fields[:0]
	for _, f := range fields {
		if canon, ok := domainSynonyms[f]; ok {
			f = canon
		}
		out = append(out, f)
	}
	return out
}

// Embed implements Embedder.
func (e *DomainEmbedder) Embed(text string) []float32 {
	v := make([]float32, e.Dims)
	toks := e.Tokenize(text)
	add := func(tok string, w float32) {
		h := fnv32a(tok)
		idx := int(h % uint32(e.Dims))
		sign := float32(1)
		if (h>>16)&1 == 1 {
			sign = -1
		}
		v[idx] += sign * w
	}
	for i, tok := range toks {
		w := float32(1)
		if domainCanon[tok] {
			w = domainWeight
		}
		add(tok, w)
		if i+1 < len(toks) {
			add(tok+"_"+toks[i+1], 1)
		}
	}
	return normalize(v)
}

// Hit is one search result.
type Hit struct {
	ID    string
	Score float64
}

// Store is a vector database over an embedder.
type Store struct {
	emb   Embedder
	ids   []string
	vecs  [][]float32
	norms []float64 // squared L2 norm per vector, aligned with vecs
	byID  map[string]int

	planes [][]float32 // LSH hyperplanes; built lazily
	bucket map[uint64][]int

	// Embedding-memo accounting; see cache.go.
	local        map[memoKey]memoEntry
	epoch        int64
	hits, misses int64
}

// NewStore returns an empty vector store over the embedder.
func NewStore(e Embedder) *Store {
	return &Store{emb: e, byID: make(map[string]int)}
}

// Embedder returns the store's embedder.
func (s *Store) Embedder() Embedder { return s.emb }

// Len reports the number of stored vectors.
func (s *Store) Len() int { return len(s.ids) }

// Add embeds and stores text under id, replacing any existing entry.
func (s *Store) Add(id, text string) {
	v, n := s.embedText(text)
	if i, ok := s.byID[id]; ok {
		s.vecs[i] = v
		s.norms[i] = n
	} else {
		s.byID[id] = len(s.ids)
		s.ids = append(s.ids, id)
		s.vecs = append(s.vecs, v)
		s.norms = append(s.norms, n)
	}
	s.planes, s.bucket = nil, nil // invalidate LSH index
}

// Search returns the k nearest stored entries to the query text by exact
// cosine similarity, ties broken by ID for determinism.
func (s *Store) Search(query string, k int) []Hit {
	q, qn := s.embedText(query)
	hits := make([]Hit, 0, len(s.ids))
	for i, id := range s.ids {
		hits = append(hits, Hit{ID: id, Score: cosineWithNorms(q, s.vecs[i], qn, s.norms[i])})
	}
	sortHits(hits)
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// LSHPlanes is the number of random hyperplanes per LSH signature.
const LSHPlanes = 14

// buildLSH constructs the hyperplane index deterministically.
func (s *Store) buildLSH() {
	rng := rand.New(rand.NewSource(42))
	s.planes = make([][]float32, LSHPlanes)
	for p := range s.planes {
		pl := make([]float32, s.emb.Dim())
		for i := range pl {
			pl[i] = float32(rng.NormFloat64())
		}
		s.planes[p] = pl
	}
	s.bucket = make(map[uint64][]int)
	for i, v := range s.vecs {
		s.bucket[s.sig(v)] = append(s.bucket[s.sig(v)], i)
	}
}

func (s *Store) sig(v []float32) uint64 {
	var sig uint64
	for p, pl := range s.planes {
		var dot float64
		for i := range v {
			dot += float64(v[i]) * float64(pl[i])
		}
		if dot >= 0 {
			sig |= 1 << uint(p)
		}
	}
	return sig
}

// SearchANN returns up to k approximate nearest neighbors using LSH with
// multi-probe (flipping each signature bit once). It trades recall for a
// candidate set much smaller than the store.
func (s *Store) SearchANN(query string, k int) []Hit {
	if s.planes == nil {
		s.buildLSH()
	}
	q, qn := s.embedText(query)
	base := s.sig(q)
	cand := map[int]bool{}
	addBucket := func(sig uint64) {
		for _, i := range s.bucket[sig] {
			cand[i] = true
		}
	}
	addBucket(base)
	for p := 0; p < LSHPlanes; p++ {
		addBucket(base ^ (1 << uint(p)))
	}
	if len(cand) == 0 {
		// No bucket within one probe: fall back to exact search rather
		// than returning nothing (small stores hash sparsely).
		return s.Search(query, k)
	}
	hits := make([]Hit, 0, len(cand))
	for i := range cand {
		hits = append(hits, Hit{ID: s.ids[i], Score: cosineWithNorms(q, s.vecs[i], qn, s.norms[i])})
	}
	sortHits(hits)
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
}
