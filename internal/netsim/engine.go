package netsim

// trafficEngine computes TrafficReports into reusable struct-of-arrays
// slabs and, on consecutive computations over the same world, re-derives
// only what actually changed since the previous pass:
//
//   - pass 0 resolves every flow's DAG through the route cache and
//     classifies the delta: structural (flow set changed), dag-dirty
//     (some flow re-routed), or demand-only;
//   - pass 1 accumulates directed link loads — fully (in flow order, so
//     float results are bit-identical run to run) when any DAG moved, or
//     sparsely by re-summing just the links touched by demand-dirty
//     flows via a link->flows reverse index;
//   - pass 2 derives per-link loss/utilization over the dense slab and
//     records which directed losses moved;
//   - pass 3 re-runs the per-flow delivery/latency dynamic programs only
//     for flows whose DAG changed or that cross a loss-dirty link, then
//     rebuilds the aggregates in full flow order.
//
// Every skip is guarded by an exact equality check on the inputs of the
// skipped computation (same DAG pointer, same demand, same loss), so the
// output is bit-for-bit what a from-scratch pass would produce. A
// zero-value engine works and is what the free RouteTraffic uses; World
// owns a persistent one.
type trafficEngine struct {
	net *Network
	ot  *ordTable

	// Previous-pass flow bookkeeping, parallel to the flow slice.
	flows    []*Flow
	dags     []*RouteDAG
	demands  []float64
	dagDirty []bool
	demDirty []bool

	// Per-flow contribution spans: the (directed link, fraction) pairs
	// flow i adds to the load slab are contribDir/contribFrac
	// [contribOff[i]:contribOff[i+1]]. Rebuilt whenever any DAG changes.
	contribOff  []int32
	contribDir  []int32
	contribFrac []float64

	// Reverse index: flows crossing link l (ascending flow index) are
	// revFlows[revOff[l]:revOff[l+1]]. Derived lazily from contributions.
	revOff   []int32
	revFlows []int32
	revCur   []int32
	revValid bool

	load       []float64 // directed link load, 2 entries per link (A->B, B->A)
	lossDirty  []bool    // directed loss changed this pass
	linkDirty  []bool    // per-link mark for the sparse accumulation path
	dirtyLinks []int32

	linkSlab []LinkStats
	flowSlab []FlowStats
	dp       []float64

	// Service aggregation slabs: structs are reused across passes via a
	// generation stamp and pruned when a service disappears.
	svcList    []*ServiceStats
	svcGen     []uint64
	svcIdx     map[string]int
	gen        uint64
	svcTouched int

	rep  TrafficReport
	full bool
}

func (e *trafficEngine) reset(n *Network, ot *ordTable) {
	e.net, e.ot = n, ot
	v, l := len(ot.nodeIDs), len(ot.linkIDs)
	e.load = make([]float64, 2*l)
	e.lossDirty = make([]bool, 2*l)
	e.linkDirty = make([]bool, l)
	e.revCur = make([]int32, l)
	e.linkSlab = make([]LinkStats, l)
	e.dp = make([]float64, v)
	e.rep = TrafficReport{
		LinkStats:    make(map[LinkID]*LinkStats, l),
		ServiceStats: make(map[string]*ServiceStats),
		ot:           ot,
		dirLoss:      make([]float64, 2*l),
	}
	for i, lid := range ot.linkIDs {
		e.linkSlab[i].Link = lid
		e.rep.LinkStats[lid] = &e.linkSlab[i]
	}
	e.svcList, e.svcGen = nil, nil
	e.svcIdx = make(map[string]int)
	e.gen = 0
	e.flows = nil
	e.revValid = false
	e.full = true
}

func (e *trafficEngine) resize(f int) {
	e.flows = make([]*Flow, f)
	e.dags = make([]*RouteDAG, f)
	e.demands = make([]float64, f)
	e.dagDirty = make([]bool, f)
	e.demDirty = make([]bool, f)
	e.flowSlab = make([]FlowStats, f)
	e.rep.FlowStats = make([]*FlowStats, f)
	for i := range e.flowSlab {
		e.rep.FlowStats[i] = &e.flowSlab[i]
	}
}

// route is the engine entry point; see RouteTraffic for the model.
func (e *trafficEngine) route(n *Network, flows []*Flow, sel PathSelector) *TrafficReport {
	ot := n.ordTab()
	if e.net != n || e.ot != ot {
		e.reset(n, ot)
	}
	_, linkPtrs := n.ptrTables()
	l := len(ot.linkIDs)
	f := len(flows)

	// Pass 0: resolve DAGs and classify the delta.
	structural := e.full || f != len(e.flows)
	if !structural {
		for i, fl := range flows {
			if e.flows[i] != fl {
				structural = true
				break
			}
		}
	}
	if structural {
		if f != len(e.flows) {
			e.resize(f)
		}
		copy(e.flows, flows)
	}
	var dc *downSet
	dagAny, demAny := false, false
	for i, fl := range flows {
		dag := n.cachedRouteDAG(fl, sel, &dc)
		if structural {
			e.dags[i] = dag
			e.demands[i] = fl.DemandGbps
			continue
		}
		dd := e.dags[i] != dag
		e.dagDirty[i] = dd
		if dd {
			dagAny = true
			e.dags[i] = dag
		}
		md := e.demands[i] != fl.DemandGbps
		e.demDirty[i] = md
		if md {
			demAny = true
			e.demands[i] = fl.DemandGbps
		}
	}

	// Pass 1: directed link loads.
	switch {
	case structural || dagAny:
		e.accumulateAll(f, l)
	case demAny:
		e.accumulateDirty(f, l)
	}

	// Pass 2: per-link loss and utilization, always over the full slab.
	lossAny := false
	dirLoss := e.rep.dirLoss
	for li := 0; li < l; li++ {
		lk := linkPtrs[li]
		ls := &e.linkSlab[li]
		ab, ba := e.load[2*li], e.load[2*li+1]
		ls.Load.AB, ls.Load.BA = ab, ba
		ls.Utilization = 0
		if lk.CapacityGbps > 0 {
			m := ab
			if ba > m {
				m = ba
			}
			ls.Utilization = m / lk.CapacityGbps
		}
		la := clamp01(overloadLoss(ab, lk.CapacityGbps) + lk.CorruptRate)
		lb := clamp01(overloadLoss(ba, lk.CapacityGbps) + lk.CorruptRate)
		da, db := la != dirLoss[2*li], lb != dirLoss[2*li+1]
		e.lossDirty[2*li] = da
		e.lossDirty[2*li+1] = db
		if da {
			dirLoss[2*li] = la
			lossAny = true
		}
		if db {
			dirLoss[2*li+1] = lb
			lossAny = true
		}
		ls.LossAB, ls.LossBA = la, lb
		ls.LossRate = la
		if lb > la {
			ls.LossRate = lb
		}
	}

	// Pass 3: per-flow dynamic programs where needed, aggregates in full.
	e.gen++
	e.svcTouched = 0
	rep := &e.rep
	rep.TotalDemand, rep.TotalDelivered = 0, 0
	for i := 0; i < f; i++ {
		fl := flows[i]
		fs := &e.flowSlab[i]
		dag := e.dags[i]
		fs.Flow, fs.DAG = fl, dag
		fs.Routed = dag != nil
		if dag == nil {
			fs.LossRate, fs.LatencyMs = 1, 0
		} else {
			recompute := structural || e.dagDirty[i]
			if !recompute && lossAny {
				for _, df := range dag.dirs {
					if e.lossDirty[df.dir] {
						recompute = true
						break
					}
				}
			}
			if recompute {
				fs.LossRate = clamp01(1 - dag.deliveredDense(dirLoss, e.dp))
				fs.LatencyMs = dag.delayDense(linkPtrs, e.dp)
			}
		}

		rep.TotalDemand += fl.DemandGbps
		svc := e.svcFor(fl.Service)
		svc.Flows++
		svc.Demand += fl.DemandGbps
		if dag == nil {
			svc.Unrouted++
			continue
		}
		del := fl.DemandGbps * (1 - fs.LossRate)
		rep.TotalDelivered += del
		svc.Delivered += del
		if fs.LatencyMs > svc.MaxLatency {
			svc.MaxLatency = fs.LatencyMs
		}
	}
	if e.svcTouched != len(e.svcList) {
		e.pruneServices()
	}
	for _, svc := range e.svcList {
		if svc.Demand > 0 {
			svc.LossRate = 1 - svc.Delivered/svc.Demand
		}
	}
	e.full = false
	return rep
}

// accumulateAll zeroes the load slab and re-adds every flow's
// contribution in flow order, rebuilding the contribution spans.
func (e *trafficEngine) accumulateAll(f, l int) {
	for i := range e.load[:2*l] {
		e.load[i] = 0
	}
	e.contribOff = e.contribOff[:0]
	e.contribDir = e.contribDir[:0]
	e.contribFrac = e.contribFrac[:0]
	for i := 0; i < f; i++ {
		e.contribOff = append(e.contribOff, int32(len(e.contribDir)))
		dag := e.dags[i]
		if dag == nil {
			continue
		}
		dem := e.demands[i]
		for _, df := range dag.dirs {
			e.load[df.dir] += dem * df.frac
			e.contribDir = append(e.contribDir, df.dir)
			e.contribFrac = append(e.contribFrac, df.frac)
		}
	}
	e.contribOff = append(e.contribOff, int32(len(e.contribDir)))
	e.revValid = false
}

// accumulateDirty re-derives only the links crossed by demand-dirty
// flows. Each dirty link's two directed accumulators are zeroed and
// re-summed from its crossing flows in ascending flow order — the same
// add sequence a full pass would produce for that accumulator, keeping
// the result bit-identical.
func (e *trafficEngine) accumulateDirty(f, l int) {
	e.ensureRev(f, l)
	e.dirtyLinks = e.dirtyLinks[:0]
	for i := 0; i < f; i++ {
		if !e.demDirty[i] {
			continue
		}
		for _, dir := range e.contribDir[e.contribOff[i]:e.contribOff[i+1]] {
			li := dir >> 1
			if !e.linkDirty[li] {
				e.linkDirty[li] = true
				e.dirtyLinks = append(e.dirtyLinks, li)
			}
		}
	}
	for _, li := range e.dirtyLinks {
		e.load[2*li] = 0
		e.load[2*li+1] = 0
		for _, fi := range e.revFlows[e.revOff[li]:e.revOff[li+1]] {
			dem := e.demands[fi]
			s, t := e.contribOff[fi], e.contribOff[fi+1]
			for j := s; j < t; j++ {
				if e.contribDir[j]>>1 == li {
					e.load[e.contribDir[j]] += dem * e.contribFrac[j]
				}
			}
		}
		e.linkDirty[li] = false
	}
}

// ensureRev (re)builds the link->flows reverse index from the current
// contribution spans.
func (e *trafficEngine) ensureRev(f, l int) {
	if e.revValid {
		return
	}
	if cap(e.revOff) < l+1 {
		e.revOff = make([]int32, l+1)
	}
	e.revOff = e.revOff[:l+1]
	for i := range e.revOff {
		e.revOff[i] = 0
	}
	for _, dir := range e.contribDir {
		e.revOff[dir>>1+1]++
	}
	for i := 1; i <= l; i++ {
		e.revOff[i] += e.revOff[i-1]
	}
	total := int(e.revOff[l])
	if cap(e.revFlows) < total {
		e.revFlows = make([]int32, total)
	}
	e.revFlows = e.revFlows[:total]
	copy(e.revCur, e.revOff[:l])
	for i := 0; i < f; i++ {
		for _, dir := range e.contribDir[e.contribOff[i]:e.contribOff[i+1]] {
			li := dir >> 1
			e.revFlows[e.revCur[li]] = int32(i)
			e.revCur[li]++
		}
	}
	e.revValid = true
}

// svcFor returns the (reset-on-first-touch) aggregate for a service.
func (e *trafficEngine) svcFor(name string) *ServiceStats {
	idx, ok := e.svcIdx[name]
	if !ok {
		idx = len(e.svcList)
		e.svcList = append(e.svcList, &ServiceStats{})
		e.svcGen = append(e.svcGen, 0)
		e.svcIdx[name] = idx
		e.rep.ServiceStats[name] = e.svcList[idx]
	}
	ss := e.svcList[idx]
	if e.svcGen[idx] != e.gen {
		*ss = ServiceStats{Service: name}
		e.svcGen[idx] = e.gen
		e.svcTouched++
	}
	return ss
}

// pruneServices drops aggregates for services absent from this pass.
func (e *trafficEngine) pruneServices() {
	kept := e.svcList[:0]
	keptGen := e.svcGen[:0]
	for i, ss := range e.svcList {
		if e.svcGen[i] == e.gen {
			kept = append(kept, ss)
			keptGen = append(keptGen, e.svcGen[i])
			continue
		}
		delete(e.rep.ServiceStats, ss.Service)
		delete(e.svcIdx, ss.Service)
	}
	e.svcList, e.svcGen = kept, keptGen
	for i, ss := range e.svcList {
		e.svcIdx[ss.Service] = i
	}
}
