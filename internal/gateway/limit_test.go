package gateway

// Limiter eviction tests: the per-caller bucket map must stay bounded
// by the active caller set (the "millions of callers" leak), and —
// because a bucket idle past the refill-full horizon is exactly a
// fresh bucket — eviction must not change a single admit/refuse
// decision or retry wait.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// noEvictAllow is the pre-eviction limiter semantics, verbatim: the
// reference the evicting limiter must match decision for decision.
type noEvictLimiter struct {
	rate, burst float64
	buckets     map[string]*bucket
}

func (l *noEvictLimiter) allow(caller string, now time.Duration) (bool, time.Duration) {
	b := l.buckets[caller]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[caller] = b
	}
	if now > b.last {
		b.tokens += l.rate * (now - b.last).Minutes()
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Minute))
}

func TestLimiterEvictsIdleBuckets(t *testing.T) {
	t.Parallel()
	l := newLimiter(1, 2) // horizon: 2 simulated minutes
	for i := 0; i < 1000; i++ {
		l.allow(fmt.Sprintf("caller-%04d", i), 0)
	}
	if n := len(l.buckets); n != 1000 {
		t.Fatalf("expected 1000 live buckets, have %d", n)
	}
	// Past the refill-full horizon every idle bucket is equivalent to a
	// fresh one; the next allow triggers the sweep.
	l.allow("caller-0000", 3*time.Minute)
	if n := len(l.buckets); n != 1 {
		t.Fatalf("after idle horizon: %d buckets survive, want 1 (the active caller)", n)
	}
	// Steady state: an active caller is never evicted.
	l.allow("caller-0000", 4*time.Minute)
	if _, ok := l.buckets["caller-0000"]; !ok {
		t.Fatal("active caller evicted")
	}
}

// TestLimiterEvictionPreservesDecisions drives the evicting limiter and
// the no-evict reference through an identical pseudo-random schedule of
// (caller, time) requests and requires every (admit, wait) pair to be
// byte-identical — eviction is a memory fix, not a behavior change.
func TestLimiterEvictionPreservesDecisions(t *testing.T) {
	t.Parallel()
	l := newLimiter(2, 3)
	ref := &noEvictLimiter{rate: 2, burst: 3, buckets: map[string]*bucket{}}
	rng := rand.New(rand.NewSource(99))
	now := time.Duration(0)
	for i := 0; i < 5000; i++ {
		// Bursts of activity with occasional long idle gaps, so callers
		// routinely cross the refill-full horizon and get evicted.
		if rng.Intn(20) == 0 {
			now += time.Duration(rng.Intn(10)) * time.Minute
		} else {
			now += time.Duration(rng.Intn(5)) * time.Second
		}
		caller := fmt.Sprintf("caller-%d", rng.Intn(7))
		gotOK, gotWait := l.allow(caller, now)
		wantOK, wantWait := ref.allow(caller, now)
		if gotOK != wantOK || gotWait != wantWait {
			t.Fatalf("request %d (%s at %s): evicting limiter (%v, %s) != reference (%v, %s)",
				i, caller, now, gotOK, gotWait, wantOK, wantWait)
		}
	}
	if len(l.buckets) > len(ref.buckets) {
		t.Errorf("evicting limiter holds %d buckets, reference %d", len(l.buckets), len(ref.buckets))
	}
}
