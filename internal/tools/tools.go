// Package tools implements the operator toolbox the OCE-helper drives:
// diagnostic tools wrapping the telemetry substrate (PingMesh, link
// utilization, device health, counters, syslog), control-plane inspectors
// (controller state, prefix tables, recent changes), cross-checking tools
// (monitor health), knowledge tools (similar incidents) and manual steps
// (ask the customer).
//
// Each tool invocation produces structured FINDING lines ("concept=true
// key=value ...") the LLM interprets, plus target bindings ($LINK,
// $DEVICE, ...) the mitigation planner consumes. The paper's "toolbox
// abstraction" question — should tools serve raw telemetry or high-level
// insight? — is resolved here toward insight: tools do their own
// cross-checks (e.g. correlating a config push with live prefix-table
// inconsistency) and report concept-level findings, which is the design
// the paper leans toward for verifiability.
//
// Tools register in per-team registries so 100+ teams can extend the
// toolbox independently (decentralized extensibility).
package tools

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/netsim"
)

// RiskClass grades what a tool can do to the production network.
type RiskClass int

// Tool risk classes.
const (
	RiskReadOnly RiskClass = iota
	RiskLow
	RiskMedium
	RiskHigh
)

// String names the risk class.
func (r RiskClass) String() string {
	switch r {
	case RiskReadOnly:
		return "read-only"
	case RiskLow:
		return "low"
	case RiskMedium:
		return "medium"
	case RiskHigh:
		return "high"
	default:
		return fmt.Sprintf("RiskClass(%d)", int(r))
	}
}

// Result is one tool invocation's output.
type Result struct {
	// Findings are structured lines ("concept=true key=value") the LLM
	// interprets against the hypothesis under test.
	Findings []string
	// Bindings map mitigation placeholders to concrete targets
	// discovered by the tool ($LINK -> link ID, ...).
	Bindings map[string]string
	// Raw is the human-readable output an OCE would see.
	Raw string
	// Degraded marks findings obtained from an unreliable source — a
	// stale cache, a corrupted pipeline, a monitor known to be flapping.
	// Resilient helpers quarantine such evidence instead of accepting or
	// rejecting hypotheses on it. The zero value (false) means trusted,
	// so tools that never set it behave exactly as before.
	Degraded bool
	// Source annotates why the result is degraded ("stale", "corrupt",
	// ...); empty for trusted results.
	Source string
}

// Tool is one toolbox entry.
type Tool interface {
	Name() string
	Description() string
	Risk() RiskClass
	// Latency is the simulated time one invocation costs.
	Latency() time.Duration
	Invoke(w *netsim.World, args map[string]string) (Result, error)
}

// Registry is the per-deployment toolbox with team ownership.
type Registry struct {
	tools map[string]Tool
	owner map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tools: make(map[string]Tool), owner: make(map[string]string)}
}

// Register adds a tool owned by team. Registering a name owned by a
// different team fails: teams must not silently override each other.
func (r *Registry) Register(team string, t Tool) error {
	if cur, ok := r.owner[t.Name()]; ok && cur != team {
		return fmt.Errorf("tools: %q is owned by team %q", t.Name(), cur)
	}
	r.tools[t.Name()] = t
	r.owner[t.Name()] = team
	return nil
}

// Get returns a tool by name.
func (r *Registry) Get(name string) (Tool, bool) {
	t, ok := r.tools[name]
	return t, ok
}

// Names lists registered tool names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.tools))
	for n := range r.tools {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner reports which team owns a tool.
func (r *Registry) Owner(name string) string { return r.owner[name] }

// RemoveTeam deletes every tool a team owns (a team deprecating its
// stack) and reports how many were removed.
func (r *Registry) RemoveTeam(team string) int {
	n := 0
	for name, owner := range r.owner {
		if owner == team {
			delete(r.tools, name)
			delete(r.owner, name)
			n++
		}
	}
	return n
}
