package faults

import (
	"testing"
	"time"
)

// FuzzFaultInjector fuzzes the determinism contract: for any (config
// seed, trial seed, rate, tool, index, time) input, two independently
// constructed injectors must produce the identical fault class, and a
// non-positive rate must never inject. This is the property the
// parallel trial pool leans on — the schedule is a pure function of
// seeds, untouched by construction order or shared state.
func FuzzFaultInjector(f *testing.F) {
	f.Add(int64(42), int64(0), 0.25, "pingmesh", 0, int64(0))
	f.Add(int64(1337), int64(7), 0.5, "monitor-crosscheck", 12, int64(time.Hour))
	f.Add(int64(-1), int64(99), 1.0, "", 1000000, int64(24*time.Hour))
	f.Add(int64(0), int64(0), 0.0, "syslog", 3, int64(time.Minute))
	f.Fuzz(func(t *testing.T, seed, trial int64, rate float64, tool string, index int, nowNanos int64) {
		if rate < 0 || rate > 1 {
			rate = 0.3
		}
		if nowNanos < 0 {
			nowNanos = -nowNanos
		}
		if index < 0 {
			index = -index
		}
		now := time.Duration(nowNanos)
		cfg := Config{Rate: rate, Seed: seed, Degrade: 0.1}
		a := NewInjector(cfg, trial)
		b := NewInjector(cfg, trial)
		ca, cb := a.ClassAt(tool, index, now), b.ClassAt(tool, index, now)
		if ca != cb {
			t.Fatalf("same (seed,trial,tool,index,now) gave %v vs %v", ca, cb)
		}
		// Re-querying the same point must be stable even after other
		// draws (the schedule is pure, not stream-consuming).
		a.ClassAt(tool+"x", index+1, now)
		if again := a.ClassAt(tool, index, now); again != ca {
			t.Fatalf("schedule not pure: %v then %v", ca, again)
		}
		if rate == 0 && ca != None {
			t.Fatalf("rate 0 injected %v", ca)
		}
		if ca < None || ca > Corrupt {
			t.Fatalf("class out of range: %d", int(ca))
		}
	})
}
