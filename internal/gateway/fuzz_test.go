package gateway

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzIncidentDecode drives the gateway's strict JSON codec — severity
// and status enums, timestamps, unknown fields, trailing garbage — with
// arbitrary bytes and pins its two contracts:
//
//  1. No input panics. The decoder fronts a network socket; every
//     byte sequence must come back as a value or an error.
//  2. Every ACCEPTED payload round-trips: re-encoding the decoded
//     request to its canonical JSON and decoding that again yields the
//     identical value. Acceptance means normalization, not mutation.
//
// The create/update split fuzzes both decoders from one corpus, since
// hostile payloads don't announce which endpoint they're aimed at.
func FuzzIncidentDecode(f *testing.F) {
	seeds := []string{
		`{"scenario":"gray-link"}`,
		`{"id":"inc-1","scenario":"device-failure","severity":"sev2","opened_at_minutes":12.5}`,
		`{"id":"a/b.c_d-e","scenario":"congestion","title":"t","summary":"s","service":"svc"}`,
		`{"scenario":"cascade-5","severity":3}`,
		`{"scenario":"gray-link","severity":"sev9"}`,
		`{"scenario":"gray-link","severity":"critical"}`,
		`{"scenario":"nope"}`,
		`{"scenario":"gray-link","opened_at_minutes":-1}`,
		`{"scenario":"gray-link","opened_at_minutes":1e300}`,
		`{"scenario":"gray-link","unknown_field":1}`,
		`{"scenario":"gray-link"} trailing`,
		`{"status":"investigating"}`,
		`{"status":"resolved","severity":"sev0","note":"n"}`,
		`{"status":"bogus"}`,
		`{"note":""}`,
		`{}`,
		`[]`,
		`null`,
		`{`,
		``,
		`{"severity":"sev1","severity":"sev2","status":"open"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), true)
		f.Add([]byte(s), false)
	}
	f.Fuzz(func(t *testing.T, data []byte, create bool) {
		if create {
			req, err := DecodeCreate(data)
			if err != nil {
				return // rejected: the only contract is "no panic"
			}
			enc, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("accepted create does not re-encode: %v (%+v)", err, req)
			}
			again, err := DecodeCreate(enc)
			if err != nil {
				t.Fatalf("canonical encoding rejected: %v (%s)", err, enc)
			}
			if !reflect.DeepEqual(req, again) {
				t.Fatalf("create round trip mismatch:\nin:  %+v\nout: %+v\nvia: %s", req, again, enc)
			}
			return
		}
		req, err := DecodeUpdate(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted update does not re-encode: %v (%+v)", err, req)
		}
		again, err := DecodeUpdate(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v (%s)", err, enc)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("update round trip mismatch:\nin:  %+v\nout: %+v\nvia: %s", req, again, enc)
		}
	})
}
