package aiops

// The benchmark harness has two layers:
//
//   - BenchmarkE1..E9 regenerate the per-experiment tables from
//     DESIGN.md's index (small cells; run `go run ./cmd/benchgen` for
//     full-size tables) and report each experiment's headline metric via
//     b.ReportMetric, so `go test -bench=E` tracks the reproduction's
//     shape over time.
//   - The micro-benchmarks below measure the substrates a downstream
//     user would care about: routing, world cloning (what-if risk),
//     embeddings, vector search, simulated-LLM completion, and whole
//     helper sessions.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/incident"
	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/replayer"
	"repro/internal/risk"
	"repro/internal/scenarios"
)

const benchTrials = 4

func benchParams(i int) experiments.Params {
	return experiments.Params{Trials: benchTrials, Seed: int64(1000 + i)}
}

// ---------------------------------------------------------------------------
// Experiment benches (one per table/figure).
// ---------------------------------------------------------------------------

func BenchmarkE1_FrameworkPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace, tables := experiments.E1FrameworkTrace(benchParams(i))
		if trace == "" || len(tables) == 0 {
			b.Fatal("empty E1 output")
		}
	}
}

func BenchmarkE2_IterativeVsOneShot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E2IterativeVsOneShot(benchParams(i))
		if len(tables[0].Rows) < 8 {
			b.Fatalf("E2 rows = %d", len(tables[0].Rows))
		}
	}
}

func BenchmarkE3_Adaptivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E3Adaptivity(benchParams(i))
		if len(tables[0].Rows) != 5 {
			b.Fatalf("E3 rows = %d", len(tables[0].Rows))
		}
	}
}

func BenchmarkE4_ABTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E4ABTest(benchParams(i))
		if len(tables) != 2 {
			b.Fatal("E4 should emit arm stats + tests")
		}
	}
}

func BenchmarkE5_Replay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E5Replay(benchParams(i))
		if len(tables[0].Rows) < 7 {
			b.Fatal("E5 incomplete")
		}
	}
}

func BenchmarkE6_Costs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E6Costs(benchParams(i))
		if len(tables) != 2 {
			b.Fatal("E6 should emit inference + TSG tables")
		}
	}
}

func BenchmarkE7_RiskAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E7RiskAblation(benchParams(i))
		if len(tables[0].Rows) != 4 {
			b.Fatal("E7 should emit 4 variants")
		}
	}
}

func BenchmarkE8_Embeddings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E8Embeddings(benchParams(i))
		if len(tables[0].Rows) != 2 {
			b.Fatal("E8 should emit 2 embedders")
		}
	}
}

func BenchmarkE9_Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E9Sensitivity(benchParams(i))
		if len(tables) != 4 {
			b.Fatal("E9 should emit 4 sweeps")
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

func benchWorld() *netsim.World {
	return scenarios.StandardWorld(rand.New(rand.NewSource(1)))
}

func BenchmarkRouteTraffic(b *testing.B) {
	w := benchWorld()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Invalidate()
		w.Recompute()
	}
}

func BenchmarkRouteDAG(b *testing.B) {
	w := benchWorld()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := netsim.RouteDAGFor(w.Net, "us-east-host-p0-t0-h0", "eu-north-host-p0-t0-h0", nil)
		if d == nil {
			b.Fatal("no DAG")
		}
	}
}

func BenchmarkWorldClone(b *testing.B) {
	w := benchWorld()
	w.Recompute()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.Clone() == nil {
			b.Fatal("nil clone")
		}
	}
}

func BenchmarkScenarioBuildCascade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := (&scenarios.Cascade{Stage: 5}).Build(rand.New(rand.NewSource(int64(i))))
		if in.Incident == nil {
			b.Fatal("no incident")
		}
	}
}

func BenchmarkEmbedDomain(b *testing.B) {
	e := embed.NewDomainEmbedder(128)
	text := "severe packet loss and retransmissions after config push in us-east; devices resetting"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := e.Embed(text); len(v) != 128 {
			b.Fatal("bad vector")
		}
	}
}

func BenchmarkVectorSearchANN(b *testing.B) {
	corpus := replayer.Generate(replayer.Options{N: 150, Seed: 5})
	store := embed.NewStore(embed.NewDomainEmbedder(128))
	for _, r := range corpus.History.All() {
		store.Add(r.ID, r.Text())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := store.SearchANN("packet drops in the web tier after deploy", 3); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkSimLLMFormHypotheses(b *testing.B) {
	model := llm.NewSimLLM(kb.Default(), 1)
	req := llm.BuildFormHypotheses(llm.PromptContext{Symptoms: []string{kb.CPacketLoss}}, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Complete(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRiskAssessPlan(b *testing.B) {
	in := (&scenarios.Cascade{Stage: 5}).Build(rand.New(rand.NewSource(3)))
	a := &risk.Assessor{}
	plan := mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.OverrideWAN, Target: "B4", Param: "healthy"},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := a.AssessPlan(in.World, plan); rep == nil {
			b.Fatal("nil report")
		}
	}
}

func benchKB() *kb.KB {
	k := kb.Default()
	kb.ApplyFastpathUpdate(k)
	return k
}

func BenchmarkHelperSessionGrayLink(b *testing.B) {
	kbase := benchKB()
	r := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(int64(i))))
		res := r.Run(in, int64(i))
		if !res.Mitigated {
			b.Fatalf("iteration %d not mitigated", i)
		}
	}
}

func BenchmarkHelperSessionCascade(b *testing.B) {
	kbase := benchKB()
	r := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := (&scenarios.Cascade{Stage: 5}).Build(rand.New(rand.NewSource(int64(i))))
		res := r.Run(in, int64(i))
		if !res.Mitigated {
			b.Fatalf("iteration %d not mitigated", i)
		}
	}
}

func BenchmarkOneShotSession(b *testing.B) {
	kbase := benchKB()
	hist := replayer.Generate(replayer.Options{N: 100, Seed: 6}).History
	r := &harness.OneShotRunner{History: hist, KBase: kbase}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(int64(i))))
		r.Run(in, int64(i))
	}
}

func BenchmarkUnassistedSession(b *testing.B) {
	kbase := benchKB()
	r := &harness.ControlRunner{KBase: kbase}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(int64(i))))
		r.Run(in, int64(i))
	}
}

func BenchmarkE10_FleetLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E10FleetLoad(benchParams(i))
		if len(tables[0].Rows) != 8 {
			b.Fatal("E10 should emit 4 rates x 2 arms")
		}
	}
}

func BenchmarkE11_LearningCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E11LearningCurve(benchParams(i))
		if len(tables[0].Rows) != 4 {
			b.Fatal("E11 should emit 4 history sizes")
		}
	}
}

func BenchmarkE12_SmallModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E12SmallModels(benchParams(i))
		if len(tables[0].Rows) != 8 {
			b.Fatal("E12 should emit 4 recalls x 2 RAG arms")
		}
	}
}

func BenchmarkE13_Resilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E13Resilience(benchParams(i))
		if len(tables[0].Rows) != 12 {
			b.Fatal("E13 should emit 4 fault rates x 3 arms")
		}
	}
}

func BenchmarkE14_OfferedLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E14OfferedLoad(benchParams(i))
		if len(tables) != 2 || len(tables[0].Rows) != 15 {
			b.Fatal("E14 should emit a 5-rung x 3-arm ladder plus the knee table")
		}
	}
}

// benchFlatScenario / benchFlatRunner isolate the fleet scheduler's own
// cost (admission, priority queues, aging, drain) from session time.
type benchFlatScenario struct{}

func (benchFlatScenario) Name() string           { return "flat" }
func (benchFlatScenario) RootCauseClass() string { return "bench" }
func (benchFlatScenario) Build(rng *rand.Rand) *scenarios.Instance {
	return &scenarios.Instance{Incident: &incident.Incident{Severity: rng.Intn(4)}, Scenario: benchFlatScenario{}}
}

type benchFlatRunner struct{}

func (benchFlatRunner) Name() string { return "flat" }
func (benchFlatRunner) Run(in *scenarios.Instance, seed int64) harness.Result {
	return harness.Result{Scenario: in.Scenario.Name(), Mitigated: true, Correct: true, TTM: 45 * time.Minute}
}

func BenchmarkFleetSchedule(b *testing.B) {
	cfg := fleet.Config{
		OCEs: 3, ArrivalsPerHour: 8, Incidents: 256, QueueLimit: 8,
		Mix: []scenarios.Scenario{benchFlatScenario{}}, Runner: benchFlatRunner{},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if rep := fleet.Simulate(cfg); rep.Admitted+rep.Shed != 256 {
			b.Fatal("fleet lost arrivals")
		}
	}
}

func BenchmarkE17_ShardedFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.E17ShardedFleet(experiments.Params{Trials: 1, Seed: int64(1000 + i)})
		if len(tables) != 2 || len(tables[0].Rows) != 24 {
			b.Fatal("E17 should emit a 3-fanout x 4-rung x 2-arm ladder plus the knee table")
		}
	}
}

func BenchmarkFleetShardedSchedule(b *testing.B) {
	cfg := fleet.ShardedConfig{
		Regions: []string{"r00", "r01", "r02", "r03"}, OCEs: 3,
		ArrivalsPerHour: 16, Incidents: 4096, QueueLimit: 8, Steal: true,
		Storm: scenarios.StormConfig{Correlation: 0.25, MaxFanout: 3, Window: 15 * time.Minute},
		Mix:   []scenarios.Scenario{benchFlatScenario{}}, Runner: benchFlatRunner{},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if rep := fleet.SimulateSharded(cfg); len(rep.Total.Outcomes) != 4096 {
			b.Fatal("sharded fleet lost arrivals")
		}
	}
}
