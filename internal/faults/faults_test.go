package faults

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/tools"
)

// fakeTool is a minimal deterministic tool for exercising the wrapper.
type fakeTool struct {
	name     string
	latency  time.Duration
	findings []string
	bindings map[string]string
	err      error
}

func (f *fakeTool) Name() string           { return f.name }
func (f *fakeTool) Description() string    { return "fake tool for fault tests" }
func (f *fakeTool) Risk() tools.RiskClass  { return tools.RiskReadOnly }
func (f *fakeTool) Latency() time.Duration { return f.latency }
func (f *fakeTool) Invoke(w *netsim.World, args map[string]string) (tools.Result, error) {
	if f.err != nil {
		return tools.Result{}, f.err
	}
	return tools.Result{
		Findings: append([]string(nil), f.findings...),
		Bindings: f.bindings,
		Raw:      "fake output",
	}, nil
}

func testWorld() *netsim.World {
	return netsim.NewWorld(netsim.NewNetwork(), nil, nil)
}

// forceClass builds a rate-1 config whose weight mass sits entirely on
// one class, so every invocation injects exactly that fault.
func forceClass(c Class) Config {
	cfg := Config{Rate: 1, MaxRate: 1, Seed: 7}
	switch c {
	case Transient:
		cfg.Weights = Weights{Transient: 1}
	case Timeout:
		cfg.Weights = Weights{Timeout: 1}
	case Stale:
		cfg.Weights = Weights{Stale: 1}
	case Corrupt:
		cfg.Weights = Weights{Corrupt: 1}
	}
	return cfg
}

func TestScheduleDeterministicAcrossInjectors(t *testing.T) {
	t.Parallel()
	cfg := Config{Rate: 0.3, Seed: 42, Degrade: 0.5}
	a := NewInjector(cfg, 1001)
	b := NewInjector(cfg, 1001)
	other := NewInjector(cfg, 1002)
	differs := false
	for _, tool := range []string{"pingmesh", "syslog", "counters"} {
		for idx := 0; idx < 200; idx++ {
			now := time.Duration(idx) * time.Minute
			ca, cb := a.ClassAt(tool, idx, now), b.ClassAt(tool, idx, now)
			if ca != cb {
				t.Fatalf("schedule not deterministic: %s[%d] = %v vs %v", tool, idx, ca, cb)
			}
			if ca != other.ClassAt(tool, idx, now) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("distinct trial seeds produced identical 600-call schedules")
	}
}

func TestRateZeroInjectsNothing(t *testing.T) {
	t.Parallel()
	inj := NewInjector(Config{Rate: 0, Seed: 9}, 5)
	for idx := 0; idx < 500; idx++ {
		if c := inj.ClassAt("anytool", idx, time.Hour); c != None {
			t.Fatalf("rate 0 injected %v at index %d", c, idx)
		}
	}
}

func TestWrapDisabledReturnsSameRegistry(t *testing.T) {
	t.Parallel()
	reg := tools.NewRegistry()
	if err := reg.Register("netinfra", &fakeTool{name: "x"}); err != nil {
		t.Fatal(err)
	}
	if got := Wrap(reg, nil); got != reg {
		t.Fatal("nil injector must return the registry unchanged")
	}
	if got := Wrap(reg, NewInjector(Config{}, 1)); got != reg {
		t.Fatal("disabled config must return the registry unchanged")
	}
}

func TestWrapPreservesOwnershipAndMetadata(t *testing.T) {
	t.Parallel()
	reg := tools.NewRegistry()
	ft := &fakeTool{name: "pingmesh", latency: 3 * time.Minute}
	if err := reg.Register("netinfra", ft); err != nil {
		t.Fatal(err)
	}
	wrapped := Wrap(reg, NewInjector(Config{Rate: 0.5}, 1))
	if wrapped == reg {
		t.Fatal("enabled config should produce a new registry")
	}
	if wrapped.Owner("pingmesh") != "netinfra" {
		t.Fatalf("ownership lost: %q", wrapped.Owner("pingmesh"))
	}
	got, ok := wrapped.Get("pingmesh")
	if !ok {
		t.Fatal("wrapped tool missing")
	}
	if got.Name() != ft.Name() || got.Latency() != ft.Latency() || got.Risk() != ft.Risk() {
		t.Fatal("wrapper must preserve name, latency and risk class")
	}
}

func TestTransientFaultReturnsError(t *testing.T) {
	t.Parallel()
	inj := NewInjector(forceClass(Transient), 3)
	ft := &faultyTool{inner: &fakeTool{name: "syslog", findings: []string{"packet_loss=true"}}, inj: inj}
	if _, err := ft.Invoke(testWorld(), nil); err == nil {
		t.Fatal("transient fault must surface as an error")
	}
	if inj.Injected(Transient) != 1 {
		t.Fatalf("transient tally = %d", inj.Injected(Transient))
	}
}

func TestTimeoutFaultChargesDeadlineOnSimClock(t *testing.T) {
	t.Parallel()
	inner := &fakeTool{name: "counters", latency: 5 * time.Minute}
	inj := NewInjector(forceClass(Timeout), 3)
	ft := &faultyTool{inner: inner, inj: inj}
	w := testWorld()
	// The invocation layer charges nominal latency before Invoke; the
	// wrapper charges the remainder up to the deadline.
	w.Clock.Advance(inner.Latency())
	if _, err := ft.Invoke(w, nil); err == nil {
		t.Fatal("timeout fault must surface as an error")
	}
	if got, want := w.Clock.Now(), Deadline(inner); got != want {
		t.Fatalf("hung call charged %v to the sim clock, want full deadline %v", got, want)
	}
}

func TestStaleFaultServesCachedCleanResult(t *testing.T) {
	t.Parallel()
	inner := &fakeTool{name: "linkutil", findings: []string{"congestion=false"}}
	// First call clean (cache fills), every later call stale.
	cfg := forceClass(Stale)
	inj := NewInjector(cfg, 11)
	inj.cfg.Rate = 0
	ft := &faultyTool{inner: inner, inj: inj}
	w := testWorld()
	clean, err := ft.Invoke(w, nil)
	if err != nil || clean.Degraded {
		t.Fatalf("clean call: %v degraded=%v", err, clean.Degraded)
	}
	inj.cfg.Rate = 1
	inner.findings = []string{"congestion=true"} // world moved on; cache did not
	stale, err := ft.Invoke(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stale.Degraded || stale.Source != "stale" {
		t.Fatalf("stale serve not marked: %+v", stale)
	}
	if !reflect.DeepEqual(stale.Findings, []string{"congestion=false"}) {
		t.Fatalf("stale serve should replay the cached reading, got %v", stale.Findings)
	}
}

func TestStaleFaultWithoutCacheMarksLiveReading(t *testing.T) {
	t.Parallel()
	inner := &fakeTool{name: "linkutil", findings: []string{"congestion=true"}}
	ft := &faultyTool{inner: inner, inj: NewInjector(forceClass(Stale), 11)}
	res, err := ft.Invoke(testWorld(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Source != "stale" {
		t.Fatalf("uncached stale serve must still be marked degraded: %+v", res)
	}
}

func TestCorruptFaultFlipsPolarityAndMarks(t *testing.T) {
	t.Parallel()
	inner := &fakeTool{
		name:     "prefixtable",
		findings: []string{"route_leak=true leaked=12", "table_consistent=false"},
	}
	ft := &faultyTool{inner: inner, inj: NewInjector(forceClass(Corrupt), 17)}
	res, err := ft.Invoke(testWorld(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"route_leak=false leaked=12", "table_consistent=true"}
	if !reflect.DeepEqual(res.Findings, want) {
		t.Fatalf("corrupted findings = %v, want %v", res.Findings, want)
	}
	if !res.Degraded || res.Source != "corrupt" {
		t.Fatalf("corrupted result must be marked degraded: %+v", res)
	}
}

func TestFlipFindingsRoundTrips(t *testing.T) {
	t.Parallel()
	in := []string{"a=true b=false", "c=false", "plain"}
	if got := flipFindings(flipFindings(in)); !reflect.DeepEqual(got, in) {
		t.Fatalf("double flip should be identity: %v", got)
	}
}

func TestStaleCacheDoesNotAliasLiveResult(t *testing.T) {
	t.Parallel()
	inner := &fakeTool{name: "syslog", findings: []string{"x=true"}, bindings: map[string]string{"$LINK": "l1"}}
	cfg := forceClass(Stale)
	cfg.Rate = 0
	inj := NewInjector(cfg, 11)
	ft := &faultyTool{inner: inner, inj: inj}
	w := testWorld()
	live, _ := ft.Invoke(w, nil)
	live.Findings[0] = "mutated"
	live.Bindings["$LINK"] = "mutated"
	inj.cfg.Rate = 1
	stale, _ := ft.Invoke(w, nil)
	if stale.Findings[0] != "x=true" || stale.Bindings["$LINK"] != "l1" {
		t.Fatalf("cache aliases a live result: %+v", stale)
	}
}

func TestDegradeRampsEffectiveRate(t *testing.T) {
	t.Parallel()
	cfg := Config{Rate: 0.1, Degrade: 1, MaxRate: 0.5}
	if early, late := cfg.effectiveRate(0), cfg.effectiveRate(3*time.Hour); late <= early {
		t.Fatalf("flappy monitor must degrade over time: %v -> %v", early, late)
	}
	if got := cfg.effectiveRate(100 * time.Hour); got != 0.5 {
		t.Fatalf("effective rate must cap at MaxRate: %v", got)
	}
}

func TestActionErrorDeterministicAndSkipsEscalation(t *testing.T) {
	t.Parallel()
	cfg := Config{ActionRate: 0.5, Seed: 21}
	run := func() []bool {
		inj := NewInjector(cfg, 77)
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, inj.ActionError(mitigation.Action{Kind: mitigation.IsolateLink, Target: "l1"}) != nil)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("action fault schedule not deterministic per trial seed")
	}
	failed := false
	for _, f := range a {
		failed = failed || f
	}
	if !failed {
		t.Fatal("ActionRate 0.5 over 50 draws should fail at least once")
	}
	inj := NewInjector(cfg, 77)
	for i := 0; i < 100; i++ {
		if inj.ActionError(mitigation.Action{Kind: mitigation.Escalate}) != nil {
			t.Fatal("escalation must never fail")
		}
		if inj.ActionError(mitigation.Action{Kind: mitigation.NoOp}) != nil {
			t.Fatal("no-op must never fail")
		}
	}
}

func TestNilInjectorActionErrorIsSafe(t *testing.T) {
	t.Parallel()
	var inj *Injector
	if inj.ActionError(mitigation.Action{Kind: mitigation.IsolateLink}) != nil {
		t.Fatal("nil injector must inject nothing")
	}
}

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	good := []Config{
		{},
		{Rate: 1, ActionRate: 1, MaxRate: 1},
		{Rate: 0.3, ActionRate: 0.15, Degrade: 0.5, Weights: Weights{Transient: 1}},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{Rate: 1.5},
		{Rate: -0.1},
		{ActionRate: 2},
		{ActionRate: -1},
		{MaxRate: 1.1},
		{Degrade: -0.5},
		{Weights: Weights{Corrupt: -1}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an out-of-range config", c)
		}
	}
}
