package netsim

import (
	"container/heap"
	"slices"
	"sync"
)

// Path is a loop-free node/link sequence between two devices.
type Path struct {
	Nodes   []NodeID
	Links   []LinkID
	DelayMs float64
}

// Hops reports the number of links on the path.
func (p Path) Hops() int { return len(p.Links) }

// NodeFilter restricts the nodes a route may traverse. A nil filter allows
// every node. Source and destination are always allowed regardless of the
// filter, so a filter only constrains transit nodes.
type NodeFilter func(*Node) bool

// MaxECMPPaths caps how many equal-cost paths a single flow is split
// across. Production ECMP groups are similarly bounded by hardware table
// sizes.
const MaxECMPPaths = 8

// ECMPPaths returns up to MaxECMPPaths minimum-hop paths from src to dst
// over usable nodes and links, restricted to transit nodes accepted by
// allow. Results are deterministic: neighbor expansion follows sorted link
// IDs. It returns nil when dst is unreachable.
func ECMPPaths(n *Network, src, dst NodeID, allow NodeFilter) []Path {
	if src == dst {
		return []Path{{Nodes: []NodeID{src}}}
	}
	srcNode, dstNode := n.Node(src), n.Node(dst)
	if srcNode == nil || dstNode == nil || !srcNode.Usable() || !dstNode.Usable() {
		return nil
	}
	inner := func(nd *Node) bool {
		if nd.ID == src || nd.ID == dst {
			return true
		}
		return allow == nil || allow(nd)
	}

	// BFS from src recording hop distance.
	dist := map[NodeID]int{src: 0}
	frontier := []NodeID{src}
	for len(frontier) > 0 && dist[dst] == 0 {
		var next []NodeID
		for _, id := range frontier {
			for _, nb := range n.usableNeighbors(id, inner) {
				if _, seen := dist[nb.node]; seen {
					continue
				}
				dist[nb.node] = dist[id] + 1
				next = append(next, nb.node)
			}
		}
		frontier = next
	}
	if _, ok := dist[dst]; !ok {
		return nil
	}

	// Walk backward from dst along strictly-decreasing distances,
	// enumerating shortest paths depth-first in deterministic order.
	var paths []Path
	var nodesRev []NodeID
	var linksRev []LinkID
	var walk func(id NodeID)
	walk = func(id NodeID) {
		if len(paths) >= MaxECMPPaths {
			return
		}
		nodesRev = append(nodesRev, id)
		defer func() { nodesRev = nodesRev[:len(nodesRev)-1] }()
		if id == src {
			p := Path{
				Nodes: make([]NodeID, len(nodesRev)),
				Links: make([]LinkID, len(linksRev)),
			}
			for i, nd := range nodesRev {
				p.Nodes[len(nodesRev)-1-i] = nd
			}
			for i, l := range linksRev {
				p.Links[len(linksRev)-1-i] = l
				p.DelayMs += n.Link(l).PropDelayMs
			}
			paths = append(paths, p)
			return
		}
		for _, nb := range n.usableNeighbors(id, inner) {
			if d, ok := dist[nb.node]; !ok || d != dist[id]-1 {
				continue
			}
			linksRev = append(linksRev, nb.link)
			walk(nb.node)
			linksRev = linksRev[:len(linksRev)-1]
			if len(paths) >= MaxECMPPaths {
				return
			}
		}
	}
	walk(dst)
	return paths
}

// ShortestPath returns one minimum-delay path from src to dst using
// Dijkstra over propagation delays, or a zero Path and false when dst is
// unreachable. It is used where a single deterministic reference path is
// needed (e.g. latency estimates for customer tunnels).
func ShortestPath(n *Network, src, dst NodeID, allow NodeFilter) (Path, bool) {
	if src == dst {
		return Path{Nodes: []NodeID{src}}, true
	}
	srcNode, dstNode := n.Node(src), n.Node(dst)
	if srcNode == nil || dstNode == nil || !srcNode.Usable() || !dstNode.Usable() {
		return Path{}, false
	}
	inner := func(nd *Node) bool {
		if nd.ID == src || nd.ID == dst {
			return true
		}
		return allow == nil || allow(nd)
	}

	type prevHop struct {
		node NodeID
		link LinkID
	}
	distTo := map[NodeID]float64{src: 0}
	prev := map[NodeID]prevHop{}
	pq := acquirePQ(src)
	defer releasePQ(pq)
	done := map[NodeID]bool{}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(pqItem)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == dst {
			break
		}
		for _, nb := range n.usableNeighbors(cur.id, inner) {
			nd := cur.dist + nb.l.PropDelayMs
			if old, ok := distTo[nb.node]; !ok || nd < old {
				distTo[nb.node] = nd
				prev[nb.node] = prevHop{node: cur.id, link: nb.link}
				heap.Push(pq, pqItem{id: nb.node, dist: nd})
			}
		}
	}
	if !done[dst] {
		return Path{}, false
	}
	var p Path
	for id := dst; id != src; id = prev[id].node {
		p.Nodes = append(p.Nodes, id)
		p.Links = append(p.Links, prev[id].link)
	}
	p.Nodes = append(p.Nodes, src)
	reverseNodes(p.Nodes)
	reverseLinks(p.Links)
	p.DelayMs = distTo[dst]
	return p, true
}

func reverseNodes(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseLinks(s []LinkID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

type pqItem struct {
	id   NodeID
	dist float64
}

type nodePQ []pqItem

func (q nodePQ) Len() int { return len(q) }
func (q nodePQ) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].id < q[j].id // deterministic tie-break
}
func (q nodePQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *nodePQ) Pop() any     { old := *q; it := old[len(old)-1]; *q = old[:len(old)-1]; return it }

// pqPool recycles Dijkstra priority-queue backing arrays; ShortestPath
// is called per customer tunnel per telemetry query, and the queue is
// the only allocation that survives long enough to matter.
var pqPool = sync.Pool{New: func() any { return new(nodePQ) }}

func acquirePQ(src NodeID) *nodePQ {
	pq := pqPool.Get().(*nodePQ)
	*pq = append((*pq)[:0], pqItem{id: src, dist: 0})
	return pq
}

func releasePQ(pq *nodePQ) {
	*pq = (*pq)[:0]
	pqPool.Put(pq)
}

// Reachable reports whether dst is reachable from src under the filter.
func Reachable(n *Network, src, dst NodeID, allow NodeFilter) bool {
	return len(ECMPPaths(n, src, dst, allow)) > 0
}

// SortLinkIDs sorts a slice of link IDs in place and returns it;
// convenience for deterministic iteration in reports and tests.
func SortLinkIDs(ids []LinkID) []LinkID {
	slices.Sort(ids)
	return ids
}
