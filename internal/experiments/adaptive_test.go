package experiments

import (
	"testing"
)

// e18ByArm runs the ladder once and splits the stats per arm, in day
// order — the shape every assertion below works over.
func e18ByArm(t *testing.T, p Params) map[string][]e18DayStat {
	t.Helper()
	byArm := map[string][]e18DayStat{}
	for _, st := range e18Run(p) {
		byArm[st.Arm] = append(byArm[st.Arm], st)
	}
	for _, arm := range []string{"frozen", "verified", "always"} {
		if len(byArm[arm]) != e18Days {
			t.Fatalf("arm %s has %d day rows, want %d", arm, len(byArm[arm]), e18Days)
		}
	}
	return byArm
}

// TestE18VerifiedMonotoneAlwaysDegrades is the adaptive-loop claim
// itself: with identical per-trial seeds on every rung, the verified
// promotion gate makes repeat-class TTM monotonically non-increasing
// as the corpus grows — and strictly better than day one — while the
// naive always-ingest arm, poisoned by its own unconfirmed hypotheses,
// ends worse than its best day and worse than the verified arm.
func TestE18VerifiedMonotoneAlwaysDegrades(t *testing.T) {
	t.Parallel()
	byArm := e18ByArm(t, Params{Trials: 20, Seed: 42})

	// Frozen arm: no feedback, identical seeds — every day must be the
	// exact same number, or the "corpus is the only moving part" premise
	// is broken.
	frozen := byArm["frozen"]
	for _, st := range frozen[1:] {
		if st.MeanTTM != frozen[0].MeanTTM {
			t.Fatalf("frozen arm moved without a corpus: day %d TTM %.2f != day 1 TTM %.2f",
				st.Day, st.MeanTTM, frozen[0].MeanTTM)
		}
	}

	verified := byArm["verified"]
	for i := 1; i < len(verified); i++ {
		if verified[i].MeanTTM > verified[i-1].MeanTTM {
			t.Errorf("verified arm regressed: day %d TTM %.2f > day %d TTM %.2f",
				verified[i].Day, verified[i].MeanTTM, verified[i-1].Day, verified[i-1].MeanTTM)
		}
	}
	last := verified[len(verified)-1]
	if last.MeanTTM >= verified[0].MeanTTM {
		t.Errorf("verified arm never improved: day 1 TTM %.2f, day %d TTM %.2f",
			verified[0].MeanTTM, last.Day, last.MeanTTM)
	}
	if last.Rules == 0 {
		t.Error("verified arm ended with an empty corpus — the gate promoted nothing")
	}

	always := byArm["always"]
	best := always[0].MeanTTM
	for _, st := range always {
		if st.MeanTTM < best {
			best = st.MeanTTM
		}
	}
	alwaysLast := always[len(always)-1]
	if alwaysLast.MeanTTM <= best {
		t.Errorf("always-ingest arm never degraded: last day TTM %.2f is its best (min %.2f)",
			alwaysLast.MeanTTM, best)
	}
	if alwaysLast.MeanTTM <= last.MeanTTM {
		t.Errorf("always-ingest ended at TTM %.2f, not worse than verified %.2f — poison had no cost",
			alwaysLast.MeanTTM, last.MeanTTM)
	}
	// The poison is visible in corpus size too: unconfirmed edges pile
	// up far past what the verified gate admits.
	if alwaysLast.Rules <= last.Rules {
		t.Errorf("always-ingest corpus (%d rules) not larger than verified (%d) — fabrications were not ingested",
			alwaysLast.Rules, last.Rules)
	}
}

// TestE18DeterministicAcrossWorkers: the ladder's table must be
// byte-identical whether the per-day trial pool ran on 1 worker or 8 —
// the corpus hand-off between days is serial, and within a day the
// trial pool's seed-per-trial contract holds.
func TestE18DeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	serial := renderTables(E18AdaptiveLoop(Params{Trials: 4, Seed: 99, Workers: 1}))
	pooled := renderTables(E18AdaptiveLoop(Params{Trials: 4, Seed: 99, Workers: 8}))
	if serial != pooled {
		t.Fatalf("E18 tables diverge between workers=1 and workers=8: %s", firstDiff(serial, pooled))
	}
}

// TestE18SmallTrialsMonotone guards the verify-skill smoke's operating
// point: even at two trials the verified arm must not regress day over
// day, or the smoke's table would show the loop "unlearning".
func TestE18SmallTrialsMonotone(t *testing.T) {
	t.Parallel()
	byArm := e18ByArm(t, Params{Trials: 2, Seed: 42})
	verified := byArm["verified"]
	for i := 1; i < len(verified); i++ {
		if verified[i].MeanTTM > verified[i-1].MeanTTM {
			t.Errorf("verified arm regressed at smoke scale: day %d TTM %.2f > day %d TTM %.2f",
				verified[i].Day, verified[i].MeanTTM, verified[i-1].Day, verified[i-1].MeanTTM)
		}
	}
}
