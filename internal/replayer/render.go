package replayer

import (
	"fmt"
	"strings"

	"repro/internal/eval"
)

// RenderReport renders the replay CLI report — the aggregate metrics and
// the per-class detail — exactly as the command has always printed it.
// Factoring the rendering here lets golden tests pin the bytes without
// shelling out.
func RenderReport(rep *Report) string {
	var b strings.Builder
	t := eval.NewTable("historical replay through the helper", "metric", "value")
	t.AddRow("corpus size", len(rep.Items))
	t.AddRow("mitigation matched", rep.Matched)
	t.AddRow("mitigation mismatched", rep.Mismatched)
	t.AddRow("helper unresolved", rep.Unresolved)
	t.AddRow("match fraction", eval.Pct(rep.MatchFraction()))
	t.AddRow("mean TTM savings, matched (min)", rep.MeanSavings.Minutes())
	t.AddRow("mismatches with conditional estimate", rep.CondCovered)
	t.AddRow("mean TTM savings incl. conditional (min)", rep.MeanCondSavings.Minutes())
	fmt.Fprintln(&b, t)

	byClass := eval.NewTable("per-class replay detail", "scenario", "n", "matched", "mean orig TTM(m)", "mean helper TTM(m)")
	type agg struct {
		n, matched int
		orig, help float64
	}
	cls := map[string]*agg{}
	var order []string
	for _, it := range rep.Items {
		a := cls[it.Scenario]
		if a == nil {
			a = &agg{}
			cls[it.Scenario] = a
			order = append(order, it.Scenario)
		}
		a.n++
		if it.Match {
			a.matched++
		}
		a.orig += it.OriginalTTM.Minutes()
		a.help += it.HelperTTM.Minutes()
	}
	for _, name := range order {
		a := cls[name]
		byClass.AddRow(name, a.n, a.matched, a.orig/float64(a.n), a.help/float64(a.n))
	}
	fmt.Fprintln(&b, byClass)
	return b.String()
}
