package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/harness"
)

// TestE15DeterministicAcrossClients is E15's acceptance contract: the
// gateway load ladder — driven through a real TCP socket by concurrent
// HTTP clients — renders byte-identical tables at 1 and at 8 client
// workers. Client concurrency is the only thing -workers changes in
// E15; the schedule is pinned by the (At, ID)-stamped arrival tape.
func TestE15DeterministicAcrossClients(t *testing.T) {
	if testing.Short() {
		t.Skip("E15 boots 15 HTTP servers per run")
	}
	t.Parallel()
	serial := renderTables(E15GatewayLoad(Params{Trials: 2, Seed: 99, Workers: 1}))
	pooled := renderTables(E15GatewayLoad(Params{Trials: 2, Seed: 99, Workers: 8}))
	if serial != pooled {
		t.Fatalf("E15 tables diverge between 1 and 8 clients: %s", firstDiff(serial, pooled))
	}
}

// e15KneeFor runs one arm up the E15 ladder — through the socket — and
// returns its saturation knee (arrivals/hour).
func e15KneeFor(t *testing.T, r harness.Runner, p Params) float64 {
	t.Helper()
	var sums []gateway.DrainSummary
	for _, rate := range e15Rates {
		sum, err := e15Cell(rate, p, r)
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
	}
	rate, _ := e15Knee(sums)
	return rate
}

// TestE15AssistedSustainsHigherLoad: the socket must not change the
// physics — through live HTTP the assisted pool's saturation knee still
// sits at a strictly higher offered load than the unassisted pool's,
// mirroring E14's headline claim.
func TestE15AssistedSustainsHigherLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("E15 boots an HTTP server per cell")
	}
	t.Parallel()
	p := Params{Trials: 5, Seed: 7}.withDefaults()
	kbase := currentKB()
	assisted := e15KneeFor(t, &harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: core.DefaultConfig()}, p)
	unassisted := e15KneeFor(t, &harness.ControlRunner{Label: "unassisted-oce", KBase: kbase}, p)
	if assisted <= unassisted {
		t.Fatalf("assisted knee %.1f/h not above unassisted knee %.1f/h", assisted, unassisted)
	}
}
