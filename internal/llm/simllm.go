package llm

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/kb"
	"repro/internal/mitigation"
)

// SimLLM simulates an instruction-following LLM for incident management.
// Its "weights" are a knowledge-base snapshot (fine-tuning swaps the
// snapshot); RULE lines in the prompt act as in-context learning for a
// single call. See the package comment for why this substitution is
// faithful to the paper's setting.
type SimLLM struct {
	ModelName string
	KBase     *kb.KB

	// Window is the context window in tokens; prompts beyond it are
	// truncated tail-first before the model reads them.
	Window int

	// HallucinationRate is the per-decision probability of a confident
	// fabrication: an invented cause, a flipped verdict, a corrupted
	// mitigation target, or an understated risk.
	HallucinationRate float64

	// Temperature scales multiplicative noise on hypothesis scores.
	Temperature float64

	// Recall in (0,1] models model capacity: on each call the model
	// "remembers" only this fraction of its trained causal rules
	// (in-context rules are always visible — they are in the prompt).
	// 1.0 (default via NewSimLLM) is a frontier model; smaller values
	// emulate the specialized small models the paper's footnote
	// anticipates.
	Recall float64

	Rng *rand.Rand

	// Latency model: Base + PerToken * total tokens.
	LatencyBase     time.Duration
	LatencyPerToken time.Duration

	Pricing Pricing
	Meter   Meter
}

// NewSimLLM returns a model over the knowledge base with sane defaults:
// an 8K window, mild temperature, and zero hallucination (experiments
// dial it up explicitly).
func NewSimLLM(kbase *kb.KB, seed int64) *SimLLM {
	return &SimLLM{
		ModelName:       "simllm-1",
		KBase:           kbase,
		Window:          8192,
		Temperature:     0.05,
		Recall:          1.0,
		Rng:             rand.New(rand.NewSource(seed)),
		LatencyBase:     2 * time.Second,
		LatencyPerToken: 20 * time.Millisecond,
		Pricing:         DefaultPricing(),
	}
}

// Name implements Model.
func (m *SimLLM) Name() string { return m.ModelName }

// ContextWindow implements Model.
func (m *SimLLM) ContextWindow() int { return m.Window }

// FineTune swaps the model's knowledge snapshot — the paper's "pays an
// up-front cost" adaptation path. The returned token count is the
// modeled training cost (proportional to corpus size).
func (m *SimLLM) FineTune(kbase *kb.KB) int {
	m.KBase = kbase
	cost := 0
	for _, r := range kbase.Rules() {
		cost += CountTokens(r.Cause+" "+r.Effect+" "+r.Note) + 8
	}
	m.Meter.Prompt += cost
	return cost
}

// fabricatedCauses is what hallucinated hypotheses look like: plausible
// jargon with no grounding in the deployment.
var fabricatedCauses = []string{
	"dns_misconfiguration",
	"bgp_hijack",
	"cosmic_ray_bitflip",
	"firmware_rollback_loop",
	"tenant_ddos",
}

// prompt is the parsed request.
type prompt struct {
	task       string
	beam       int
	symptoms   []string
	confirmed  []string
	rejected   []string
	bindings   map[string]string
	rules      []InContextRule
	evidence   []string
	hypothesis string
	tool       string
	findings   []string
	rootCause  string
	actions    []mitigation.Action
	question   string
	feedback   string
}

func parsePrompt(text string) prompt {
	p := prompt{bindings: map[string]string{}}
	list := func(s string) []string {
		var out []string
		for _, f := range strings.Split(s, ",") {
			if f = strings.TrimSpace(f); f != "" {
				out = append(out, f)
			}
		}
		return out
	}
	for _, line := range strings.Split(text, "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch key {
		case "TASK":
			p.task = val
		case "BEAM":
			p.beam, _ = strconv.Atoi(val)
		case "SYMPTOMS":
			p.symptoms = list(val)
		case "CONFIRMED":
			p.confirmed = list(val)
		case "REJECTED":
			p.rejected = list(val)
		case "BINDING":
			if k, v, ok2 := strings.Cut(val, "="); ok2 {
				p.bindings[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
		case "RULE":
			var r InContextRule
			if parts := strings.Split(val, "->"); len(parts) == 2 {
				r.Cause = strings.TrimSpace(parts[0])
				rest := strings.TrimSpace(parts[1])
				if eff, s, ok2 := strings.Cut(rest, "@"); ok2 {
					r.Effect = strings.TrimSpace(eff)
					r.Strength, _ = strconv.ParseFloat(strings.TrimSpace(s), 64)
				} else {
					r.Effect = rest
					r.Strength = 0.5
				}
				p.rules = append(p.rules, r)
			}
		case "EVIDENCE":
			p.evidence = append(p.evidence, val)
		case "HYPOTHESIS":
			p.hypothesis = val
		case "TOOL":
			p.tool = val
		case "FINDING":
			p.findings = append(p.findings, val)
		case "ROOTCAUSE":
			p.rootCause = val
		case "QUESTION":
			p.question = val
		case "FEEDBACK":
			p.feedback = val
		case "ACTION":
			parts := strings.SplitN(val, "|", 3)
			if len(parts) >= 2 {
				a := mitigation.Action{Kind: mitigation.ActionKind(parts[0]), Target: parts[1]}
				if len(parts) == 3 {
					a.Param = parts[2]
				}
				p.actions = append(p.actions, a)
			}
		}
	}
	return p
}

// Complete implements Model.
func (m *SimLLM) Complete(req Request) (Response, error) {
	text := req.Text()
	text, truncated := TruncateTokens(text, m.Window)
	p := parsePrompt(text)

	var content string
	switch p.task {
	case TaskFormHypotheses:
		content = m.formHypotheses(p)
	case TaskPlanTest:
		content = m.planTest(p)
	case TaskInterpretTest:
		content = m.interpretTest(p)
	case TaskPlanMitigation:
		content = m.planMitigation(p)
	case TaskAssessRisk:
		content = m.assessRisk(p)
	case TaskTextToQuery:
		content = m.textToQuery(p)
	case "":
		return Response{}, fmt.Errorf("llm: prompt has no TASK directive (truncated=%v)", truncated)
	default:
		return Response{}, fmt.Errorf("llm: unknown task %q", p.task)
	}

	resp := Response{
		Content:   content,
		Truncated: truncated,
		Usage: Usage{
			PromptTokens:     CountTokens(text),
			CompletionTokens: CountTokens(content),
		},
	}
	resp.Latency = m.LatencyBase + time.Duration(resp.Usage.Total())*m.LatencyPerToken
	m.Meter.Record(resp, m.Pricing)
	return resp, nil
}

// evidenceMentions reports whether any evidence line mentions the
// concept (matching the hyphenated form alert rules use).
func evidenceMentions(evidence []string, concept string) bool {
	hyph := strings.ReplaceAll(concept, "_", "-")
	for _, e := range evidence {
		if strings.Contains(e, concept) || strings.Contains(e, hyph) {
			return true
		}
	}
	return false
}

func (m *SimLLM) hallucinate() bool {
	return m.HallucinationRate > 0 && m.Rng.Float64() < m.HallucinationRate
}

// causesOf merges trained rules with in-context rules for one effect.
// Trained rules are subject to the model's recall; prompt rules are not.
func (m *SimLLM) causesOf(effect string, inCtx []InContextRule) []kb.Rule {
	trained := m.KBase.CausesOf(effect)
	rules := trained
	if m.Recall > 0 && m.Recall < 1 {
		rules = rules[:0:0]
		for _, r := range trained {
			if m.Rng.Float64() < m.Recall {
				rules = append(rules, r)
			}
		}
	}
	for _, r := range inCtx {
		if r.Effect == effect {
			rules = append(rules, kb.Rule{
				ID: "ctx:" + r.Cause + "->" + r.Effect, Cause: r.Cause, Effect: r.Effect,
				Strength: r.Strength, Note: "in-context update",
			})
		}
	}
	return rules
}

func (m *SimLLM) formHypotheses(p prompt) string {
	beam := p.beam
	if beam <= 0 {
		beam = 3
	}
	// Backward chaining: explain the most recently confirmed concept if
	// any, otherwise the symptoms.
	frontier := p.symptoms
	if len(p.confirmed) > 0 {
		frontier = p.confirmed[len(p.confirmed)-1:]
	}
	exclude := map[string]bool{}
	for _, c := range append(append(append([]string{}, p.confirmed...), p.rejected...), p.symptoms...) {
		exclude[c] = true
	}

	type cand struct {
		concept string
		score   float64
		reason  string
	}
	best := map[string]cand{}
	for _, f := range frontier {
		for _, r := range m.causesOf(f, p.rules) {
			if exclude[r.Cause] {
				continue
			}
			prior := 0.1
			if c, ok := m.KBase.ConceptByID(r.Cause); ok {
				prior = 0.1 + c.Prior
			}
			score := r.Strength * (0.4 + prior)
			// Evidence that literally mentions the candidate (alert
			// digests name their rule, e.g. "device-down") steers the
			// model, as retrieval-grounded prompts steer a real LLM.
			if evidenceMentions(p.evidence, r.Cause) {
				score *= 1.5
			}
			if m.Temperature > 0 {
				score *= 1 + m.Temperature*(2*m.Rng.Float64()-1)
			}
			reason := fmt.Sprintf("%s can cause %s (strength %.2f)", r.Cause, r.Effect, r.Strength)
			if r.Note != "" {
				reason += ": " + r.Note
			}
			if old, ok := best[r.Cause]; !ok || score > old.score {
				best[r.Cause] = cand{concept: r.Cause, score: score, reason: reason}
			}
		}
	}
	cands := make([]cand, 0, len(best))
	for _, c := range best {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].concept < cands[j].concept
	})
	if len(cands) > beam {
		cands = cands[:beam]
	}
	if m.hallucinate() {
		fab := fabricatedCauses[m.Rng.Intn(len(fabricatedCauses))]
		cands = append([]cand{{
			concept: fab, score: 0.88,
			reason: "this strongly resembles a " + strings.ReplaceAll(fab, "_", " ") + " pattern seen industry-wide",
		}}, cands...)
		if len(cands) > beam {
			cands = cands[:beam]
		}
	}
	var b strings.Builder
	for _, c := range cands {
		conf := c.score
		if conf > 0.97 {
			conf = 0.97
		}
		fmt.Fprintf(&b, "HYPOTHESIS: concept=%s confidence=%.2f reason=%s\n", c.concept, conf, c.reason)
	}
	if b.Len() == 0 {
		b.WriteString("HYPOTHESIS: concept=escalation_needed confidence=0.20 reason=no known cause explains the current evidence\n")
	}
	return b.String()
}

// defaultToolArgs are the argument templates the model has learned per
// tool from TSGs and tool documentation.
var defaultToolArgs = map[string]string{
	kb.ToolSyslog:           "sincemin=120;sev=error",
	kb.ToolLinkUtil:         "top=10",
	kb.ToolRecentChanges:    "sincemin=20160",
	kb.ToolSimilarIncidents: "k=3",
	kb.ToolMonitorCheck:     "monitor=pingmesh",
	kb.ToolAskCustomer:      "question=please share a packet capture of the affected traffic",
}

func (m *SimLLM) planTest(p prompt) string {
	c, ok := m.KBase.ConceptByID(p.hypothesis)
	if !ok || c.TestTool == "" {
		return fmt.Sprintf("NOTEST: no known procedure verifies %q\n", p.hypothesis)
	}
	tool := c.TestTool
	if m.hallucinate() {
		tool = "deep-" + tool + "-oracle" // confidently invented tooling
	}
	args := defaultToolArgs[tool]
	line := fmt.Sprintf("TEST: tool=%s", tool)
	if args != "" {
		line += " args=" + args
	}
	line += fmt.Sprintf(" reason=%s is the standard check for %s", tool, p.hypothesis)
	return line + "\n"
}

func (m *SimLLM) interpretTest(p prompt) string {
	supported := false
	confidence := 0.6
	reason := fmt.Sprintf("no finding mentions %s; absence of evidence after a targeted query", p.hypothesis)
	for _, f := range p.findings {
		if strings.Contains(f, p.hypothesis+"=true") {
			supported, confidence = true, 0.9
			reason = "tool output confirms " + p.hypothesis
			break
		}
		if strings.Contains(f, p.hypothesis+"=false") {
			supported, confidence = false, 0.9
			reason = "tool output explicitly rules out " + p.hypothesis
			break
		}
	}
	if m.hallucinate() {
		supported = !supported
		confidence = 0.85
		reason = "re-reading the output, the signature actually indicates the opposite"
	}
	return fmt.Sprintf("VERDICT: supported=%v confidence=%.2f reason=%s\n", supported, confidence, reason)
}

func (m *SimLLM) planMitigation(p prompt) string {
	templates := m.KBase.Mitigations(p.rootCause)
	if len(templates) == 0 {
		return "ACTION: escalate|SWAT| reason=no mitigation known for " + p.rootCause + "\n"
	}
	var b strings.Builder
	for _, t := range templates {
		targets := []string{t.Target}
		if bound, ok := p.bindings[t.Target]; ok {
			targets = strings.Split(bound, ",")
		}
		for _, target := range targets {
			target = strings.TrimSpace(target)
			if target == "" {
				continue
			}
			if m.hallucinate() {
				target = corruptTarget(target)
			}
			param := t.Param
			if bound, ok := p.bindings[param]; ok {
				param = bound
			}
			fmt.Fprintf(&b, "ACTION: %s|%s|%s reason=standard mitigation for %s\n", t.Kind, target, param, p.rootCause)
		}
	}
	return b.String()
}

// corruptTarget produces a plausible-but-wrong identifier: the classic
// confident hallucination of a device name.
func corruptTarget(t string) string {
	if strings.HasPrefix(t, "$") {
		return t
	}
	if i := strings.LastIndexByte(t, '0'); i >= 0 {
		return t[:i] + "9" + t[i+1:]
	}
	return t + "-b"
}

// textToQuery translates a natural-language telemetry question into the
// query DSL by keyword association — the way an instruction-tuned model
// pattern-matches text-to-SQL. Hallucination substitutes a plausible but
// non-existent field; with verifier feedback present the model corrects
// itself (unless it hallucinates again).
func (m *SimLLM) textToQuery(p prompt) string {
	q := strings.ToLower(p.question)
	has := func(words ...string) bool {
		for _, w := range words {
			if strings.Contains(q, w) {
				return true
			}
		}
		return false
	}
	entity := "links"
	switch {
	case has("device", "switch", "router", "node"):
		entity = "devices"
	case has("service", "tenant", "customer traffic"):
		entity = "services"
	case has("log", "event", "syslog", "message"):
		entity = "events"
	}
	var conds []string
	orderBy := ""
	switch entity {
	case "links":
		if has("hot", "overload", "util", "congest", "saturat") {
			conds = append(conds, "util > 0.9")
			orderBy = "util"
		}
		if has("loss", "drop", "discard") {
			conds = append(conds, "loss > 0.01")
			if orderBy == "" {
				orderBy = "loss"
			}
		}
		if has("down") {
			conds = append(conds, "down = true")
		}
		if has("isolat") {
			conds = append(conds, "isolated = true")
		}
	case "devices":
		if has("down", "unhealthy", "crash", "wedge", "fail") {
			conds = append(conds, "healthy = false")
		}
		if has("isolat") {
			conds = append(conds, "isolated = true")
		}
	case "services":
		if has("loss", "impact", "degrad") {
			conds = append(conds, "loss > 0.01")
			orderBy = "loss"
		}
		if has("unrouted", "blackhol") {
			conds = append(conds, "unrouted > 0")
		}
	case "events":
		if has("critical", "fatal") {
			conds = append(conds, "severity = crit")
		} else if has("error") {
			conds = append(conds, "severity = error")
		}
		if has("recent", "last hour") {
			conds = append(conds, "age_min < 60")
		}
	}
	dsl := entity
	if len(conds) > 0 {
		dsl += " where " + strings.Join(conds, " and ")
	}
	if orderBy != "" {
		dsl += " order by " + orderBy + " desc"
	}
	dsl += " limit 10"
	if m.hallucinate() {
		// Confidently invents a field the schema does not have.
		dsl = strings.Replace(dsl, "util", "bandwidth_pct", 1)
		dsl = strings.Replace(dsl, "loss", "errors_pm", 1)
		if !strings.Contains(dsl, "where") {
			dsl = entity + " where throughput > 0.5 limit 10"
		}
	}
	return "QUERY: " + dsl + "\n"
}

// kindRisk is the model's learned base risk per action kind.
var kindRisk = map[mitigation.ActionKind]float64{
	mitigation.IsolateLink:      0.30,
	mitigation.DeisolateLink:    0.30,
	mitigation.IsolateDevice:    0.45,
	mitigation.DeisolateDevice:  0.35,
	mitigation.RestartDevice:    0.25,
	mitigation.RollbackChange:   0.25,
	mitigation.DisableProtocol:  0.40,
	mitigation.EnableProtocol:   0.40,
	mitigation.OverrideWAN:      0.60,
	mitigation.MoveService:      0.35,
	mitigation.RateLimitService: 0.30,
	mitigation.RepairMonitor:    0.05,
	mitigation.Escalate:         0.02,
	mitigation.NoOp:             0,
}

func (m *SimLLM) assessRisk(p prompt) string {
	if len(p.actions) == 0 {
		return "RISK: level=low score=0.00 reason=empty plan has no blast radius\n"
	}
	keep := 1.0
	worst := ""
	worstRisk := 0.0
	for _, a := range p.actions {
		r := kindRisk[a.Kind]
		// Components with many dependents raise the stakes.
		if comp, ok := m.KBase.ComponentByName(a.Target); ok {
			r += 0.05 * float64(len(m.KBase.Dependents(comp.Name)))
		}
		if r > 1 {
			r = 1
		}
		if r > worstRisk {
			worstRisk, worst = r, a.String()
		}
		keep *= 1 - r
	}
	score := 1 - keep
	if m.hallucinate() {
		score *= 0.25 // confidently understates the danger
	}
	level := "low"
	switch {
	case score >= 0.66:
		level = "high"
	case score >= 0.33:
		level = "medium"
	}
	return fmt.Sprintf("RISK: level=%s score=%.2f reason=dominated by %s; reasoning over component dependencies\n", level, score, worst)
}
