// Package eval implements the paper's §3 evaluation machinery: summary
// statistics and significance tests over TTM samples, the randomized A/B
// harness comparing helper-assisted and helper-free incident handling,
// mistake-overhead accounting, and cost reporting.
package eval

import (
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Std returns the sample standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0..100) by linear
// interpolation; it copies and sorts the input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// lgamma wraps math.Lgamma discarding the sign (arguments here are
// always positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function (Numerical Recipes style).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegIncBeta is the regularized incomplete beta function I_x(a, b).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// StudentTCDF returns P(T <= t) for Student's t with df degrees of
// freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TTestResult is the outcome of a two-sample test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchT runs Welch's unequal-variance t-test on two samples and returns
// the two-sided p-value. Degenerate inputs (n<2 or zero variance in
// both) return P=1.
func WelchT(a, b []float64) TTestResult {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return TTestResult{P: 1}
	}
	va, vb := Variance(a), Variance(b)
	se2 := va/na + vb/nb
	if se2 == 0 {
		return TTestResult{P: 1}
	}
	t := (Mean(a) - Mean(b)) / math.Sqrt(se2)
	df := se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}
}

// MannWhitneyU runs the two-sided Mann-Whitney U test using the normal
// approximation with tie correction. Suitable for the heavy-tailed TTM
// distributions §3 anticipates.
func MannWhitneyU(a, b []float64) TTestResult {
	na, nb := float64(len(a)), float64(len(b))
	if na == 0 || nb == 0 {
		return TTestResult{P: 1}
	}
	type obs struct {
		v    float64
		from int
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, x := range a {
		all = append(all, obs{x, 0})
	}
	for _, x := range b {
		all = append(all, obs{x, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating tie correction.
	ranks := make([]float64, len(all))
	var tieSum float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieSum += t*t*t - t
		i = j
	}
	var ra float64
	for i, o := range all {
		if o.from == 0 {
			ra += ranks[i]
		}
	}
	u := ra - na*(na+1)/2
	mu := na * nb / 2
	n := na + nb
	sigma2 := na * nb / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if sigma2 <= 0 {
		return TTestResult{P: 1}
	}
	z := (u - mu) / math.Sqrt(sigma2)
	p := 2 * (1 - normalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return TTestResult{T: z, DF: n - 2, P: p}
}

func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// BootstrapCI returns the (lo, hi) percentile bootstrap confidence
// interval for the mean of xs at the given confidence level (e.g. 0.95).
func BootstrapCI(xs []float64, confidence float64, iters int, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if iters <= 0 {
		iters = 2000
	}
	means := make([]float64, iters)
	for i := 0; i < iters; i++ {
		var sum float64
		for j := 0; j < len(xs); j++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	alpha := (1 - confidence) / 2 * 100
	return Percentile(means, alpha), Percentile(means, 100-alpha)
}

// PermutationTest returns the two-sided p-value for the difference of
// means between a and b under random relabeling.
func PermutationTest(a, b []float64, iters int, rng *rand.Rand) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	if iters <= 0 {
		iters = 2000
	}
	obs := math.Abs(Mean(a) - Mean(b))
	pool := append(append([]float64(nil), a...), b...)
	count := 0
	for i := 0; i < iters; i++ {
		rng.Shuffle(len(pool), func(x, y int) { pool[x], pool[y] = pool[y], pool[x] })
		d := math.Abs(Mean(pool[:len(a)]) - Mean(pool[len(a):]))
		if d >= obs-1e-12 {
			count++
		}
	}
	return float64(count+1) / float64(iters+1)
}

// CohensD returns the standardized mean difference between two samples
// (pooled standard deviation). Magnitude conventions: 0.2 small, 0.5
// medium, 0.8 large. Returns 0 when the pooled variance is zero.
func CohensD(a, b []float64) float64 {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return 0
	}
	va, vb := Variance(a), Variance(b)
	pooled := ((na-1)*va + (nb-1)*vb) / (na + nb - 2)
	if pooled <= 0 {
		return 0
	}
	return (Mean(a) - Mean(b)) / math.Sqrt(pooled)
}

// WilsonCI returns the Wilson score interval for a binomial proportion
// (successes k of n) at ~95% confidence. Preferable to the normal
// approximation for the small-n mitigation-rate comparisons §3 needs.
func WilsonCI(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959964
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
