package experiments

// E16 chaos-harness tests: the crash-safety contract (zero acknowledged
// loss, zero duplicate scheduling across kill/restart cycles) and the
// determinism contract (tables byte-identical at any client
// concurrency, crashes included).

import (
	"strconv"
	"testing"
)

// e16Cell reads an integer cell out of a rendered table row.
func e16Cell(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("cell %q is not an integer: %v", s, err)
	}
	return n
}

// TestE16ShapeCrashSafety runs the full kill/restart loop and checks
// the durability invariants cycle by cycle: zero lost acknowledgements,
// recovery sees exactly the cumulative acked set, the torn garbage
// appended at each kill is dropped on the next boot, and the final
// conservation row says every acked incident was scheduled exactly
// once.
func TestE16ShapeCrashSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("E16 boots an HTTP server per crash cycle")
	}
	t.Parallel()
	ts := E16Chaos(Params{Trials: 3, Seed: 7})
	if len(ts) != 2 {
		t.Fatalf("tables = %d, want 2", len(ts))
	}
	cyc, con := ts[0], ts[1]
	if len(cyc.Rows) != e16Cycles {
		t.Fatalf("cycle rows = %d, want %d", len(cyc.Rows), e16Cycles)
	}
	ackedSoFar, faulted := 0, 0
	for i, row := range cyc.Rows {
		// columns: cycle posted acked dropped oversize truncated recovered lost torn
		if got := e16Cell(t, row[7]); got != 0 {
			t.Errorf("cycle %d: lost %d acknowledged incidents", i, got)
		}
		if got := e16Cell(t, row[6]); got != ackedSoFar {
			t.Errorf("cycle %d: recovered %d, want cumulative acked %d", i, got, ackedSoFar)
		}
		wantTorn := 0
		if i > 0 {
			wantTorn = 1 // each kill appends one garbage partial record
		}
		if got := e16Cell(t, row[8]); got != wantTorn {
			t.Errorf("cycle %d: torn = %d, want %d", i, got, wantTorn)
		}
		if got := e16Cell(t, row[2]) + e16Cell(t, row[3]) + e16Cell(t, row[4]) + e16Cell(t, row[5]); got != e16Cell(t, row[1]) {
			t.Errorf("cycle %d: acked+faulted = %d, posted = %s", i, got, row[1])
		}
		ackedSoFar += e16Cell(t, row[2])
		faulted += e16Cell(t, row[3]) + e16Cell(t, row[4]) + e16Cell(t, row[5])
	}
	if ackedSoFar == 0 || faulted == 0 {
		t.Fatalf("degenerate run: acked %d, faulted %d — fault schedule not exercised", ackedSoFar, faulted)
	}
	final := con.Rows[0]
	// columns: acked recovered scheduled admitted shed torn verdict
	if got := e16Cell(t, final[0]); got != ackedSoFar {
		t.Errorf("conservation acked = %d, want %d", got, ackedSoFar)
	}
	if got := e16Cell(t, final[1]); got != ackedSoFar {
		t.Errorf("final recovery served %d of %d acked incidents", got, ackedSoFar)
	}
	if got := e16Cell(t, final[2]); got != ackedSoFar {
		t.Errorf("scheduled %d, want exactly the %d acked (loss or duplicate)", got, ackedSoFar)
	}
	if admitted, shed := e16Cell(t, final[3]), e16Cell(t, final[4]); admitted+shed != ackedSoFar {
		t.Errorf("admitted %d + shed %d != acked %d", admitted, shed, ackedSoFar)
	}
	if final[6] != "ok: zero loss, zero duplicates" {
		t.Errorf("verdict = %q", final[6])
	}
}

// TestE16DeterministicAcrossClients: crash cycles, chaos clients and
// recovery replay must not leak concurrency into the output — the
// tables are byte-identical between one client and eight.
func TestE16DeterministicAcrossClients(t *testing.T) {
	if testing.Short() {
		t.Skip("E16 boots an HTTP server per crash cycle")
	}
	t.Parallel()
	serial := renderTables(E16Chaos(Params{Trials: 2, Seed: 99, Workers: 1}))
	pooled := renderTables(E16Chaos(Params{Trials: 2, Seed: 99, Workers: 8}))
	if serial != pooled {
		t.Fatalf("E16 tables diverge between workers=1 and workers=8: %s", firstDiff(serial, pooled))
	}
}
