package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Properties of the ECMP routing DAG: per-hop flow conservation, source
// fraction 1, destination fraction 1, and agreement between link
// fractions and node fractions.

func dagWorldNet() *Network {
	n := NewNetwork()
	BuildBackbone(n, DefaultBackboneConfig())
	return n
}

func TestRouteDAGConservationProperty(t *testing.T) {
	t.Parallel()
	n := dagWorldNet()
	hosts := n.NodesByKind(KindHost)
	check := func(i, j uint16) bool {
		src := hosts[int(i)%len(hosts)].ID
		dst := hosts[int(j)%len(hosts)].ID
		if src == dst {
			return true
		}
		d := RouteDAGFor(n, src, dst, nil)
		if d == nil {
			return false // backbone is fully connected
		}
		if math.Abs(d.NodeFrac[src]-1) > 1e-9 {
			return false
		}
		if math.Abs(d.NodeFrac[dst]-1) > 1e-9 {
			return false
		}
		// Flow into each node equals its fraction: sum of incoming link
		// fractions (directed toward the node).
		inflow := map[NodeID]float64{}
		for dl, frac := range d.LinkFrac {
			l := n.Link(dl.Link)
			to := l.B
			if !dl.Forward {
				to = l.A
			}
			inflow[to] += frac
		}
		for id, f := range d.NodeFrac {
			if id == src {
				continue
			}
			if math.Abs(inflow[id]-f) > 1e-9 {
				return false
			}
		}
		// Total outflow from src is 1.
		var out float64
		for dl, frac := range d.LinkFrac {
			l := n.Link(dl.Link)
			from := l.A
			if !dl.Forward {
				from = l.B
			}
			if from == src {
				out += frac
			}
		}
		return math.Abs(out-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteDAGSelf(t *testing.T) {
	t.Parallel()
	n := dagWorldNet()
	d := RouteDAGFor(n, "us-east-spine-0", "us-east-spine-0", nil)
	if d == nil || d.Hops != 0 || len(d.TransitNodes()) != 0 {
		t.Fatalf("self DAG = %+v", d)
	}
}

func TestRouteDAGTransitNodesExcludeEndpoints(t *testing.T) {
	t.Parallel()
	n := dagWorldNet()
	d := RouteDAGFor(n, "us-east-host-p0-t0-h0", "us-west-host-p0-t0-h0", nil)
	if d == nil {
		t.Fatal("no DAG")
	}
	for _, id := range d.TransitNodes() {
		if id == d.Src || id == d.Dst {
			t.Fatalf("endpoint %s in transit set", id)
		}
		if d.NodeFrac[id] <= 0 {
			t.Fatalf("transit node %s with zero fraction", id)
		}
	}
}

// Clone equivalence: a cloned world recomputes to the same traffic
// report as the original, for arbitrary injected faults.
func TestCloneRecomputeEquivalenceProperty(t *testing.T) {
	t.Parallel()
	check := func(seed int64, pick uint8) bool {
		n := NewNetwork()
		bb := BuildBackbone(n, DefaultBackboneConfig())
		ctl := NewController("ctl", []string{"B4", "B2"})
		w := NewWorld(n, ctl, bb)
		for i, region := range bb.Regions {
			for _, wan := range bb.WANNames {
				ctl.Announce(PrefixAnnouncement{Prefix: regionPrefix(i), WAN: wan, Cluster: region})
			}
		}
		var eps []NodeID
		for _, region := range bb.Regions {
			eps = append(eps, NodeID(region+"-spine-0"))
		}
		w.AddFlows(UniformMeshFlows(eps, 300, "bulk")...)

		links := w.Net.Links()
		rng := rand.New(rand.NewSource(seed))
		switch pick % 4 {
		case 0:
			w.Inject(&LinkDownFault{Link: links[rng.Intn(len(links))].ID})
		case 1:
			w.Inject(&DeviceDownFault{Node: eps[rng.Intn(len(eps))]})
		case 2:
			w.Inject(&ConfigInconsistencyFault{WAN: "B4", Prefix: regionPrefix(0), Clusters: []string{"us-west", "eu-north"}})
		case 3:
			w.Inject(&TrafficSurgeFault{Service: "bulk", Factor: 2})
		}
		a := w.Recompute()
		b := w.Clone().Recompute()
		if math.Abs(a.OverallLossRate()-b.OverallLossRate()) > 1e-12 {
			return false
		}
		if len(a.LinkStats) != len(b.LinkStats) {
			return false
		}
		for lid, ls := range a.LinkStats {
			if math.Abs(ls.Utilization-b.LinkStats[lid].Utilization) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeLossOverDAGBounds(t *testing.T) {
	t.Parallel()
	n := lineNet()
	flows := []*Flow{{ID: "f", Src: "a", Dst: "d", DemandGbps: 200, Service: "p"}}
	rep := RouteTraffic(n, flows, nil)
	dag := RouteDAGFor(n, "a", "d", nil)
	loss := ProbeLossOverDAG(dag, n, rep)
	if loss <= 0 || loss > 1 {
		t.Fatalf("probe loss = %v", loss)
	}
	// Probe loss over a lossless report is zero.
	flows[0].DemandGbps = 10
	rep = RouteTraffic(n, flows, nil)
	if got := ProbeLossOverDAG(dag, n, rep); got != 0 {
		t.Fatalf("lossless probe loss = %v", got)
	}
}
