package aiops

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/parallel"
	"repro/internal/scenarios"
)

// TestSoakInvariants drives a large randomized stream of incidents —
// random scenario, random hallucination rate, random OCE expertise,
// random context window — through the helper and asserts the invariants
// that must hold no matter how degraded the model is:
//
//  1. every session terminates (mitigated or escalated) within bounds;
//  2. TTM is positive and finite;
//  3. "mitigated" is never reported with live impact (the verifier and
//     the stability window guarantee it);
//  4. with the quantitative risk gate on, no executed plan ever makes a
//     service measurably worse (zero secondary impact);
//  5. token accounting is monotone and positive whenever the model ran.
//
// This is the repository's failure-injection harness: the model is the
// unreliable component, and the framework must convert its failures into
// time, never into damage.
func TestSoakInvariants(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	all := scenarios.All()
	rng := rand.New(rand.NewSource(20260706))

	// The degraded-helper configurations are drawn serially (the draw
	// sequence defines the stream); the sessions then run concurrently on
	// the parallel trial pool, each over its own private world — the
	// production shape: many independent incident sessions in flight.
	const n = 150
	type spec struct {
		sc            scenarios.Scenario
		seed          int64
		hallucination float64
		expertise     float64
		window        int
	}
	specs := make([]spec, n)
	for i := range specs {
		s := spec{
			sc:            all[rng.Intn(len(all))],
			seed:          rng.Int63(),
			hallucination: rng.Float64() * 0.4,
			expertise:     0.3 + rng.Float64()*0.7,
		}
		if rng.Intn(3) == 0 {
			s.window = 256 + rng.Intn(4096)
		}
		specs[i] = s
	}

	type outcome struct {
		res        harness.Result
		worldClean bool // verifier state of the trial's world post-session
	}
	trials := parallel.RunTrials(n, 8, 20260706, func(_ int64, i int) outcome {
		s := specs[i]
		in := s.sc.Build(rand.New(rand.NewSource(s.seed)))
		r := &harness.HelperRunner{
			KBase:         kbase,
			Config:        core.DefaultConfig(),
			Hallucination: s.hallucination,
			Expertise:     s.expertise,
			Window:        s.window,
		}
		res := r.Run(in, s.seed)
		v := &mitigation.Verifier{World: in.World}
		return outcome{res: res, worldClean: v.Mitigated()}
	})

	// Invariant 6 (pool): no trial result is lost or duplicated — every
	// index came back exactly once with its scenario's result attached.
	if len(trials) != n {
		t.Fatalf("pool returned %d results for %d trials", len(trials), n)
	}
	seen := make(map[int]bool, n)
	for _, tr := range trials {
		if tr.Err != nil {
			t.Fatalf("trial %d panicked: %v", tr.Trial, tr.Err)
		}
		if seen[tr.Trial] {
			t.Fatalf("trial %d delivered twice", tr.Trial)
		}
		seen[tr.Trial] = true
		if want := specs[tr.Trial].sc.Name(); tr.Value.res.Scenario != want {
			t.Fatalf("trial %d carries result for %q, want %q (result misrouted)", tr.Trial, tr.Value.res.Scenario, want)
		}
	}

	mitigated, escalated := 0, 0
	for i, tr := range trials {
		res, sc := tr.Value.res, specs[i].sc
		if !res.Mitigated && !res.Escalated {
			t.Fatalf("incident %d (%s): session ended in limbo", i, sc.Name())
		}
		if res.TTM <= 0 {
			t.Fatalf("incident %d (%s): TTM = %v", i, sc.Name(), res.TTM)
		}
		if res.TTM.Hours() > 24 {
			t.Fatalf("incident %d (%s): TTM = %v, runaway session", i, sc.Name(), res.TTM)
		}
		if res.Mitigated {
			mitigated++
			// The live world must verify clean when the helper claims
			// mitigation (invariant 3).
			if !tr.Value.worldClean {
				t.Fatalf("incident %d (%s): claimed mitigated but world has live impact", i, sc.Name())
			}
		} else {
			escalated++
		}
		if res.Secondary != 0 {
			t.Fatalf("incident %d (%s): secondary impact %d with risk gates on", i, sc.Name(), res.Secondary)
		}
		if res.LLMCalls > 0 && res.Tokens <= 0 {
			t.Fatalf("incident %d: %d LLM calls but %d tokens", i, res.LLMCalls, res.Tokens)
		}
	}
	t.Logf("soak: %d mitigated, %d escalated of %d", mitigated, escalated, n)
	if mitigated < n/2 {
		t.Fatalf("degraded helpers mitigated only %d/%d", mitigated, n)
	}
	_ = llm.DefaultPricing()
}
