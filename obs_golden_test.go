package aiops

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/replayer"
)

// The observability layer's outermost contract, pinned three ways:
//
//  1. With no sink attached, the CLIs' rendered stdout is byte-identical
//     to the checked-in pre-observability goldens (testdata/*.txt).
//  2. With a sink attached, the rendered stdout does not change.
//  3. The sink's own exports — event log and metrics — are
//     byte-identical at every worker count.

func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGoldenABTestStdout reproduces `abtest -n 40 -seed 7` through the
// library path and compares bytes against the checked-in golden.
func TestGoldenABTestStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replays are slow")
	}
	t.Parallel()
	sys := New(WithSeed(7))
	sys.GenerateHistory(150, 7^0x1157)
	res := sys.ABTest(40, 7)
	if got, want := eval.RenderABReport(res), readGolden(t, "abtest_n40_seed7.txt"); got != want {
		t.Errorf("abtest stdout drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenReplayStdout reproduces `replay -n 30 -seed 7` likewise.
func TestGoldenReplayStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replays are slow")
	}
	t.Parallel()
	sys := New(WithSeed(7))
	rep := sys.Replay(30, 7)
	if got, want := replayer.RenderReport(rep), readGolden(t, "replay_n30_seed7.txt"); got != want {
		t.Errorf("replay stdout drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenTraceAndPostmortem checks that the structured SessionTrace
// and PostmortemReport render the exact bytes embedded in the imctl
// golden (`imctl -scenario cascade-5 -seed 7 -postmortem`).
func TestGoldenTraceAndPostmortem(t *testing.T) {
	t.Parallel()
	golden := readGolden(t, "imctl_cascade5_seed7.txt")
	sys := New(WithSeed(7), WithExpertise(0.9))
	in, err := sys.Spawn("cascade-5", 7)
	if err != nil {
		t.Fatal(err)
	}
	res, trace := sys.Trace(in, 7)
	if !res.Mitigated {
		t.Fatal("cascade-5 not mitigated")
	}
	if !strings.Contains(golden, trace.String()) {
		t.Errorf("golden does not contain the rendered trace:\n%s", trace.String())
	}
	// Incident IDs come from a process-global spawn counter, so the
	// test binary (which spawns many incidents across parallel tests)
	// cannot reproduce the CLI's INC-CASC-0002; compare modulo the ID.
	anonID := func(s string) string {
		return regexp.MustCompile(`INC-[A-Za-z0-9]+-\d+`).ReplaceAllString(s, "INC-#")
	}
	in2, _ := sys.Spawn("cascade-5", 7)
	_, pm := sys.Postmortem(in2, 7)
	if !strings.Contains(anonID(golden), anonID(pm.String())) {
		t.Errorf("golden does not contain the rendered postmortem:\n%s", pm.String())
	}
}

// TestObservabilityNeutral runs the same A/B trial with and without a
// sink: attaching observability must not change a single output byte.
func TestObservabilityNeutral(t *testing.T) {
	t.Parallel()
	render := func(opts ...Option) string {
		sys := New(append([]Option{WithSeed(11)}, opts...)...)
		sys.GenerateHistory(40, 11)
		return eval.RenderABReport(sys.ABTest(24, 11))
	}
	plain := render()
	observed := render(WithObservability(NewSink()))
	if plain != observed {
		t.Errorf("observability changed rendered output:\n--- plain ---\n%s\n--- observed ---\n%s", plain, observed)
	}
}

// TestObservabilityWorkerIndependence is the determinism contract for
// the exports themselves: the event log and the metrics dump are
// byte-identical at workers=1 and workers=8, for both the A/B harness
// and the replayer.
func TestObservabilityWorkerIndependence(t *testing.T) {
	t.Parallel()
	capture := func(workers int) (events, metrics string) {
		sink := NewSink()
		sys := New(WithSeed(13), WithWorkers(workers), WithObservability(sink))
		sys.GenerateHistory(30, 13)
		sys.ABTest(16, 13)
		sys.Replay(12, 13)
		var ev, m bytes.Buffer
		if err := sink.WriteEvents(&ev); err != nil {
			t.Fatal(err)
		}
		if err := sink.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		return ev.String(), m.String()
	}
	ev1, m1 := capture(1)
	ev8, m8 := capture(8)
	if ev1 == "" || m1 == "" {
		t.Fatal("sink captured nothing")
	}
	if ev1 != ev8 {
		t.Error("event log differs between workers=1 and workers=8")
	}
	if m1 != m8 {
		t.Error("metrics dump differs between workers=1 and workers=8")
	}
}

// TestGoldenFleetStdout reproduces `imctl fleet` (defaults: seed 7, 60
// incidents at 4/h over 2 OCEs, queue bound 8) through the library path
// and compares bytes against the checked-in golden.
func TestGoldenFleetStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replays are slow")
	}
	t.Parallel()
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	runners := []harness.Runner{
		&harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: core.DefaultConfig()},
		&harness.ControlRunner{Label: "unassisted-oce", KBase: kbase},
	}
	var arms []fleet.Arm
	for _, r := range runners {
		arms = append(arms, fleet.Arm{Name: r.Name(), Report: fleet.Simulate(fleet.Config{
			OCEs: 2, ArrivalsPerHour: 4, Incidents: 60,
			Runner: r, Seed: 7, QueueLimit: 8, AgingStep: 30 * time.Minute,
		})})
	}
	got := fleet.SummaryTable("fleet: 2 OCEs, 4 arrivals/h, 60 incidents, queue bound 8", arms).String() + "\n"
	if want := readGolden(t, "imctl_fleet_seed7.txt"); got != want {
		t.Errorf("imctl fleet stdout drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
