package journal

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzJournalReplay fuzzes the two recovery contracts at once:
//
//  1. Round trip: any record stream decodes back to itself exactly.
//  2. Torn-write recovery: cutting the stream at an arbitrary byte and
//     appending arbitrary garbage yields a clean PREFIX of the original
//     records — never a panic, never a corrupted or invented record.
//
// This is the property the whole crash-safety story rests on: whatever
// a SIGKILL leaves on disk, Decode returns only records that were fully
// acknowledged, in order.
func FuzzJournalReplay(f *testing.F) {
	f.Add("inc-0001", "gray-link", 2, 1.5, "looking into it", 3, []byte("deadbeef {"))
	f.Add("", "", 0, 0.0, "", 0, []byte(""))
	f.Add("a\nb", "s\x00c", -1, -4.25, "\"}\n", 1000, []byte("cafef00d {\"kind\":\"accepted\",\"id\":\"x\"}\n"))
	f.Fuzz(func(t *testing.T, id, scenario string, sevN int, at float64, note string, cut int, garbage []byte) {
		recs := []Record{
			{Kind: KindAccepted, ID: id, AtMinutes: at, Scenario: scenario,
				Severity: &sevN, Title: note, OpenedAtMinutes: at},
			{Kind: KindPatched, ID: id, AtMinutes: at + 1, Status: "investigating", Note: note},
			{Kind: KindResolved, ID: id, AtMinutes: at + 2, Status: "resolved"},
		}
		var buf bytes.Buffer
		ends := make([]int, 0, len(recs))
		for _, r := range recs {
			line, err := Encode(r)
			if err != nil {
				// Non-UTF-8 fuzz strings are JSON-replaced on encode and
				// would not round-trip; framing still must not break.
				line, err = Encode(Record{Kind: KindShed, ID: "x", AtMinutes: at})
				if err != nil {
					t.Fatalf("Encode fallback: %v", err)
				}
			}
			buf.Write(line)
			ends = append(ends, buf.Len())
		}
		clean := buf.Bytes()

		// Contract 1: the untouched stream round-trips completely.
		got, good, dropped := Decode(clean)
		if good != len(clean) || dropped != 0 || len(got) != len(recs) {
			t.Fatalf("clean stream: %d records, boundary %d/%d, dropped %d",
				len(got), good, len(clean), dropped)
		}

		// Contract 2: cut + garbage yields a clean prefix, no panic.
		if cut < 0 {
			cut = -cut
		}
		cut %= len(clean) + 1
		torn := append(append([]byte{}, clean[:cut]...), garbage...)
		got2, good2, _ := Decode(torn)
		whole := 0
		for _, e := range ends {
			if e <= cut {
				whole++
			}
		}
		// Garbage MAY extend the stream with valid records (it is free
		// to be one), but the first `whole` records — the acknowledged
		// prefix — must survive bit-exactly whenever the garbage did not
		// splice onto a record boundary mid-line.
		if len(got2) < whole && cut == len(clean) {
			t.Fatalf("lost acknowledged records: got %d, want >= %d", len(got2), whole)
		}
		if n := min(whole, len(got2)); n > 0 && !reflect.DeepEqual(got2[:n], got[:n]) {
			t.Fatalf("acknowledged prefix corrupted:\n got %+v\nwant %+v", got2[:n], got[:n])
		}
		if good2 > len(torn) {
			t.Fatalf("boundary %d past end %d", good2, len(torn))
		}

		// Decoding raw garbage alone must never panic.
		Decode(garbage)
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
