package tools

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/embed"
	"repro/internal/kb"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// base carries shared tool metadata.
type base struct {
	name, desc string
	risk       RiskClass
	latency    time.Duration
}

func (b base) Name() string           { return b.name }
func (b base) Description() string    { return b.desc }
func (b base) Risk() RiskClass        { return b.risk }
func (b base) Latency() time.Duration { return b.latency }

// PingMeshTool reports end-to-end loss per region pair.
type PingMeshTool struct{ base }

// NewPingMeshTool returns the tool.
func NewPingMeshTool() *PingMeshTool {
	return &PingMeshTool{base{kb.ToolPingMesh, "active probe loss between region pairs", RiskReadOnly, telemetry.QueryLatency[telemetry.MonitorPingMesh]}}
}

// Invoke implements Tool.
func (t *PingMeshTool) Invoke(w *netsim.World, _ map[string]string) (Result, error) {
	pm := telemetry.NewPingMesh(w)
	pairs := pm.Query()
	var res Result
	worst := telemetry.PairLoss{}
	for _, p := range pairs {
		if p.LossRate > worst.LossRate {
			worst = p
		}
	}
	if worst.LossRate >= 0.01 {
		res.Findings = append(res.Findings, fmt.Sprintf("%s=true worstpair=%s->%s loss=%.3f", kb.CPacketLoss, worst.SrcRegion, worst.DstRegion, worst.LossRate))
	} else {
		res.Findings = append(res.Findings, fmt.Sprintf("%s=false maxloss=%.4f", kb.CPacketLoss, worst.LossRate))
	}
	res.Raw = fmt.Sprintf("pingmesh: %d pairs, worst %.2f%% (%s->%s)", len(pairs), worst.LossRate*100, worst.SrcRegion, worst.DstRegion)
	return res, nil
}

// LinkUtilTool reports hot links and the service dominating them.
type LinkUtilTool struct{ base }

// NewLinkUtilTool returns the tool.
func NewLinkUtilTool() *LinkUtilTool {
	return &LinkUtilTool{base{kb.ToolLinkUtil, "per-link utilization, top talkers", RiskReadOnly, telemetry.QueryLatency[telemetry.MonitorLinkUtil]}}
}

// Invoke implements Tool.
func (t *LinkUtilTool) Invoke(w *netsim.World, args map[string]string) (Result, error) {
	k, _ := strconv.Atoi(args["top"])
	if k <= 0 {
		k = 10
	}
	mon := &telemetry.LinkUtilMonitor{World: w}
	top := mon.Top(k)
	var res Result
	if len(top) == 0 {
		res.Findings = append(res.Findings, "linkutil_unavailable=true")
		res.Raw = "linkutil: collector returned no rows"
		return res, nil
	}
	res.Bindings = map[string]string{}
	if top[0].Utilization >= 1.0 {
		svc := dominantService(w, top[0].Link)
		res.Findings = append(res.Findings,
			fmt.Sprintf("%s=true link=%s util=%.2f service=%s", kb.CLinkOverload, top[0].Link, top[0].Utilization, svc))
		res.Bindings[kb.PhLink] = string(top[0].Link)
		if svc != "" {
			res.Bindings[kb.PhService] = svc
			// A surge means the dominant service's demand grew well past
			// its provisioned baseline; overload from rerouted load is
			// not a surge.
			base := w.ServiceBaseline[svc]
			cur := w.ServiceDemand(svc)
			if base > 0 && cur >= 1.5*base {
				res.Findings = append(res.Findings,
					fmt.Sprintf("%s=true service=%s demand=%.0f baseline=%.0f", kb.CTrafficSurge, svc, cur, base))
			} else {
				res.Findings = append(res.Findings,
					fmt.Sprintf("%s=false service=%s demand=%.0f baseline=%.0f", kb.CTrafficSurge, svc, cur, base))
			}
		}
	} else {
		res.Findings = append(res.Findings, fmt.Sprintf("%s=false maxutil=%.2f", kb.CLinkOverload, top[0].Utilization))
		res.Findings = append(res.Findings, fmt.Sprintf("%s=false maxutil=%.2f", kb.CTrafficSurge, top[0].Utilization))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top %d links by utilization:", len(top))
	for _, s := range top {
		fmt.Fprintf(&b, "\n  %s util=%.2f loss=%.3f", s.Link, s.Utilization, s.LossRate)
	}
	res.Raw = b.String()
	return res, nil
}

// dominantService finds the service contributing the most load to a link.
func dominantService(w *netsim.World, lid netsim.LinkID) string {
	rep := w.Report()
	load := map[string]float64{}
	for _, fs := range rep.FlowStats {
		if !fs.Routed {
			continue
		}
		for dl, frac := range fs.DAG.LinkFrac {
			if dl.Link == lid {
				load[fs.Flow.Service] += frac * fs.Flow.DemandGbps
			}
		}
	}
	bestSvc, best := "", 0.0
	svcs := make([]string, 0, len(load))
	for s := range load {
		svcs = append(svcs, s)
	}
	sort.Strings(svcs)
	for _, s := range svcs {
		if load[s] > best {
			best, bestSvc = load[s], s
		}
	}
	return bestSvc
}

// DeviceHealthTool lists unhealthy devices.
type DeviceHealthTool struct{ base }

// NewDeviceHealthTool returns the tool.
func NewDeviceHealthTool() *DeviceHealthTool {
	return &DeviceHealthTool{base{kb.ToolDeviceHealth, "fleet health: down or isolated devices", RiskReadOnly, telemetry.QueryLatency[telemetry.MonitorDeviceHealth]}}
}

// Invoke implements Tool.
func (t *DeviceHealthTool) Invoke(w *netsim.World, _ map[string]string) (Result, error) {
	mon := &telemetry.DeviceHealthMonitor{World: w}
	recs := mon.Unhealthy()
	var res Result
	var down []string
	for _, r := range recs {
		if !r.Healthy && !r.Isolated {
			down = append(down, string(r.Node))
		}
	}
	if len(down) > 0 {
		res.Findings = append(res.Findings, fmt.Sprintf("%s=true devices=%s count=%d", kb.CDeviceDown, strings.Join(down, ","), len(down)))
		res.Bindings = map[string]string{kb.PhDevice: strings.Join(down, ",")}
	} else {
		res.Findings = append(res.Findings, kb.CDeviceDown+"=false fleet=healthy")
	}
	res.Raw = fmt.Sprintf("device health: %d down, %d records", len(down), len(recs))
	return res, nil
}

// CountersTool reads drop counters and flags gray links (drops without
// overload). Production counters are cumulative, so the tool measures a
// delta over a window: it samples twice, five minutes apart, and reports
// any link that dropped in either sample — which is what catches
// intermittent (flapping) corruption that a single spot check misses.
type CountersTool struct{ base }

// counterWindow is the measurement window between the two samples.
const counterWindow = 5 * time.Minute

// NewCountersTool returns the tool.
func NewCountersTool() *CountersTool {
	return &CountersTool{base{kb.ToolCounters, "per-link drop counters over a 5m window; gray-failure detection", RiskReadOnly, telemetry.QueryLatency[telemetry.MonitorCounters]}}
}

// Invoke implements Tool. The measurement window advances the simulated
// clock: reading a counter delta takes real incident time.
func (t *CountersTool) Invoke(w *netsim.World, _ map[string]string) (Result, error) {
	type obs struct {
		drop, util float64
	}
	sample := func(into map[netsim.LinkID]obs) int {
		mon := &telemetry.CounterMonitor{World: w}
		drops := mon.Drops()
		rep := w.Report()
		for _, d := range drops {
			ls := rep.LinkStats[d.Link]
			if ls == nil {
				continue
			}
			prev := into[d.Link]
			if d.DropGbps > prev.drop {
				into[d.Link] = obs{drop: d.DropGbps, util: ls.Utilization}
			}
		}
		return len(drops)
	}
	seen := map[netsim.LinkID]obs{}
	n1 := sample(seen)
	w.Clock.Advance(counterWindow)
	w.Invalidate()
	n2 := sample(seen)

	var res Result
	res.Bindings = map[string]string{}
	ids := make([]netsim.LinkID, 0, len(seen))
	for lid := range seen {
		ids = append(ids, lid)
	}
	netsim.SortLinkIDs(ids)
	grayFound := false
	for _, lid := range ids {
		o := seen[lid]
		if o.util < 0.9 {
			// Dropping while cool: corruption, not congestion.
			res.Findings = append(res.Findings,
				fmt.Sprintf("%s=true link=%s drops=%.2f util=%.2f window=5m", kb.CLinkCorruption, lid, o.drop, o.util))
			if !grayFound {
				res.Bindings[kb.PhLink] = string(lid)
				grayFound = true
			}
		}
	}
	if !grayFound {
		res.Findings = append(res.Findings, kb.CLinkCorruption+"=false")
	}
	if len(seen) == 0 {
		res.Findings = append(res.Findings, "drops=none")
	}
	res.Raw = fmt.Sprintf("counters over 5m window: %d/%d links dropping in the two samples", n1, n2)
	return res, nil
}

var (
	osCrashRe  = regexp.MustCompile(`fatal exception in (\w+) packet handler`)
	linkDownRe = regexp.MustCompile(`link (\S+) to \S+: carrier lost`)
)

// SyslogTool searches device logs.
type SyslogTool struct{ base }

// NewSyslogTool returns the tool.
func NewSyslogTool() *SyslogTool {
	return &SyslogTool{base{kb.ToolSyslog, "device log search", RiskReadOnly, telemetry.QueryLatency[telemetry.MonitorSyslog]}}
}

// Invoke implements Tool.
func (t *SyslogTool) Invoke(w *netsim.World, args map[string]string) (Result, error) {
	sinceMin, _ := strconv.Atoi(args["sincemin"])
	if sinceMin <= 0 {
		sinceMin = 120
	}
	minSev := netsim.SevError
	if args["sev"] == "warning" {
		minSev = netsim.SevWarning
	}
	since := w.Clock.Now() - time.Duration(sinceMin)*time.Minute
	if since < 0 {
		since = 0
	}
	s := &telemetry.SyslogSearch{World: w}
	events := s.Since(since, minSev)

	var res Result
	res.Bindings = map[string]string{}
	var crashDevices []string
	crashProto := ""
	var downLinks []string
	for _, e := range events {
		if m := osCrashRe.FindStringSubmatch(e.Message); m != nil {
			crashProto = m[1]
			crashDevices = append(crashDevices, string(e.Node))
		}
		if m := linkDownRe.FindStringSubmatch(e.Message); m != nil {
			downLinks = append(downLinks, m[1])
		}
	}
	if len(downLinks) > 0 {
		sort.Strings(downLinks)
		downLinks = dedupe(downLinks)
		// Report only links still down now: restored links are history.
		live := downLinks[:0]
		for _, lid := range downLinks {
			if l := w.Net.Link(netsim.LinkID(lid)); l != nil && l.Down {
				live = append(live, lid)
			}
		}
		if len(live) > 0 {
			res.Findings = append(res.Findings,
				fmt.Sprintf("%s=true links=%s count=%d", kb.CLinkDown, strings.Join(live, ","), len(live)))
			res.Bindings[kb.PhLink] = live[0]
		} else {
			res.Findings = append(res.Findings, kb.CLinkDown+"=false links=restored")
		}
	} else {
		res.Findings = append(res.Findings, kb.CLinkDown+"=false")
	}
	if len(crashDevices) > 0 {
		sort.Strings(crashDevices)
		crashDevices = dedupe(crashDevices)
		res.Findings = append(res.Findings,
			fmt.Sprintf("%s=true devices=%s protocol=%s", kb.CDeviceOSCrash, strings.Join(crashDevices, ","), crashProto))
		res.Findings = append(res.Findings,
			fmt.Sprintf("%s=true protocol=%s evidence=fatal-exception-signature", kb.CProtocolBug, crashProto))
		res.Bindings[kb.PhDevice] = strings.Join(crashDevices, ",")
		res.Bindings[kb.PhProtocol] = crashProto
	} else {
		res.Findings = append(res.Findings, kb.CDeviceOSCrash+"=false")
		res.Findings = append(res.Findings, kb.CProtocolBug+"=false")
	}
	res.Raw = fmt.Sprintf("syslog: %d events >= %s in last %dm", len(events), minSev, sinceMin)
	return res, nil
}

func dedupe(s []string) []string {
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// ControllerStateTool inspects the WAN traffic controller.
type ControllerStateTool struct{ base }

// NewControllerStateTool returns the tool.
func NewControllerStateTool() *ControllerStateTool {
	return &ControllerStateTool{base{kb.ToolControllerState, "traffic controller WAN health view", RiskReadOnly, 2 * time.Minute}}
}

// Invoke implements Tool.
func (t *ControllerStateTool) Invoke(w *netsim.World, _ map[string]string) (Result, error) {
	var res Result
	if w.Ctl == nil {
		res.Findings = append(res.Findings, kb.CWANFailover+"=false controller=absent")
		res.Raw = "no traffic controller in this deployment"
		return res, nil
	}
	w.Ctl.Evaluate()
	failed := w.Ctl.FailedWANs()
	if len(failed) > 0 {
		res.Findings = append(res.Findings,
			fmt.Sprintf("%s=true wans=%s", kb.CWANFailover, strings.Join(failed, ",")))
		res.Bindings = map[string]string{kb.PhWAN: failed[0]}
	} else {
		res.Findings = append(res.Findings, kb.CWANFailover+"=false")
	}
	res.Raw = w.Ctl.String()
	return res, nil
}

// PrefixTableTool inspects WAN prefix announcements for inconsistency.
type PrefixTableTool struct{ base }

// NewPrefixTableTool returns the tool.
func NewPrefixTableTool() *PrefixTableTool {
	return &PrefixTableTool{base{kb.ToolPrefixTable, "WAN prefix announcement consistency check", RiskReadOnly, 3 * time.Minute}}
}

// Invoke implements Tool.
func (t *PrefixTableTool) Invoke(w *netsim.World, _ map[string]string) (Result, error) {
	var res Result
	if w.Ctl == nil {
		res.Findings = append(res.Findings, kb.CPrefixConflict+"=false controller=absent")
		return res, nil
	}
	bad := w.Ctl.InconsistentWANs()
	if len(bad) > 0 {
		res.Findings = append(res.Findings,
			fmt.Sprintf("%s=true wans=%s", kb.CPrefixConflict, strings.Join(bad, ",")))
		res.Bindings = map[string]string{kb.PhWAN: bad[0]}
	} else {
		res.Findings = append(res.Findings, kb.CPrefixConflict+"=false")
	}
	res.Raw = fmt.Sprintf("prefix table: %d announcements, inconsistent WANs: %v", len(w.Ctl.Announcements()), bad)
	return res, nil
}

// RecentChangesTool queries the change-management log and cross-checks
// config pushes against live control-plane inconsistency.
type RecentChangesTool struct{ base }

// NewRecentChangesTool returns the tool.
func NewRecentChangesTool() *RecentChangesTool {
	return &RecentChangesTool{base{kb.ToolRecentChanges, "change-management lookback with control-plane cross-check", RiskReadOnly, 3 * time.Minute}}
}

// Invoke implements Tool.
func (t *RecentChangesTool) Invoke(w *netsim.World, args map[string]string) (Result, error) {
	sinceMin, _ := strconv.Atoi(args["sincemin"])
	if sinceMin <= 0 {
		sinceMin = 60 * 24 * 14
	}
	since := w.Clock.Now() - time.Duration(sinceMin)*time.Minute
	if since < 0 {
		since = 0
	}
	var res Result
	res.Bindings = map[string]string{}
	inconsistent := w.Ctl != nil && len(w.Ctl.InconsistentWANs()) > 0
	sawPush, sawRollout := false, false
	var lines []string
	for _, rec := range w.Changes.Since(since) {
		if rec.Kind == netsim.ChangeMitigation {
			continue // our own actions
		}
		lines = append(lines, fmt.Sprintf("%s %s [%s] %s", rec.ID, rec.Kind, rec.Team, rec.Description))
		switch rec.Kind {
		case netsim.ChangeConfigPush:
			sawPush = true
			res.Findings = append(res.Findings, fmt.Sprintf("%s=true change=%s team=%s", kb.CConfigPush, rec.ID, rec.Team))
			if inconsistent {
				// High-level insight: the push correlates with live
				// prefix-table inconsistency.
				res.Findings = append(res.Findings, fmt.Sprintf("%s=true change=%s correlated=prefix-table", kb.CConfigInconsistency, rec.ID))
			}
			res.Bindings[kb.PhChange] = rec.ID
		case netsim.ChangeProtocolRollout:
			sawRollout = true
			res.Findings = append(res.Findings, fmt.Sprintf("%s=true change=%s protocol=%s", kb.CProtocolRollout, rec.ID, rec.Details["protocol"]))
			if res.Bindings[kb.PhChange] == "" {
				res.Bindings[kb.PhChange] = rec.ID
			}
			if proto := rec.Details["protocol"]; proto != "" {
				res.Bindings[kb.PhProtocol] = proto
			}
		case netsim.ChangeMaintenance:
			res.Findings = append(res.Findings, fmt.Sprintf("%s=true change=%s team=%s", kb.CMaintenance, rec.ID, rec.Team))
			if res.Bindings[kb.PhChange] == "" {
				res.Bindings[kb.PhChange] = rec.ID
			}
		}
	}
	if !sawPush {
		res.Findings = append(res.Findings, kb.CConfigPush+"=false")
		res.Findings = append(res.Findings, kb.CConfigInconsistency+"=false")
	} else if !inconsistent {
		res.Findings = append(res.Findings, kb.CConfigInconsistency+"=false pushes=uncorrelated")
	}
	if !sawRollout {
		res.Findings = append(res.Findings, kb.CProtocolRollout+"=false")
	}
	res.Raw = "recent changes:\n  " + strings.Join(lines, "\n  ")
	return res, nil
}

// MonitorCrossCheckTool compares monitors against each other to expose a
// lying pipeline.
type MonitorCrossCheckTool struct{ base }

// NewMonitorCrossCheckTool returns the tool.
func NewMonitorCrossCheckTool() *MonitorCrossCheckTool {
	return &MonitorCrossCheckTool{base{kb.ToolMonitorCheck, "cross-validate a monitor against independent signals", RiskReadOnly, 4 * time.Minute}}
}

// Invoke implements Tool.
func (t *MonitorCrossCheckTool) Invoke(w *netsim.World, args map[string]string) (Result, error) {
	monitor := args["monitor"]
	if monitor == "" {
		monitor = telemetry.MonitorPingMesh
	}
	var res Result
	pm := telemetry.NewPingMesh(w)
	pmLoss := telemetry.MaxLoss(pm.Query())
	drops := (&telemetry.CounterMonitor{World: w}).Drops()
	var dropTotal float64
	for _, d := range drops {
		dropTotal += d.DropGbps
	}
	if pmLoss >= 0.01 && dropTotal < 0.01 {
		res.Findings = append(res.Findings,
			fmt.Sprintf("%s=true monitor=%s pingmesh=%.3f counters=%.3f", kb.CMonitorFalseAlarm, monitor, pmLoss, dropTotal))
		res.Bindings = map[string]string{kb.PhMonitor: monitor}
	} else {
		res.Findings = append(res.Findings,
			fmt.Sprintf("%s=false monitors=consistent pingmesh=%.3f counters=%.3f", kb.CMonitorFalseAlarm, pmLoss, dropTotal))
	}
	res.Raw = fmt.Sprintf("cross-check %s: pingmesh worst %.2f%%, counter drops %.2f Gbps", monitor, pmLoss*100, dropTotal)
	return res, nil
}

// SimilarIncidentsTool retrieves nearest historical incidents from the
// vector store.
type SimilarIncidentsTool struct {
	base
	Store   *embed.Store
	History *kb.History
	Query   string // incident text to search with
}

// NewSimilarIncidentsTool returns the tool over a prepared store.
func NewSimilarIncidentsTool(store *embed.Store, hist *kb.History, query string) *SimilarIncidentsTool {
	return &SimilarIncidentsTool{
		base:  base{kb.ToolSimilarIncidents, "vector search over the incident database", RiskReadOnly, 1 * time.Minute},
		Store: store, History: hist, Query: query,
	}
}

// Invoke implements Tool.
func (t *SimilarIncidentsTool) Invoke(_ *netsim.World, args map[string]string) (Result, error) {
	k, _ := strconv.Atoi(args["k"])
	if k <= 0 {
		k = 3
	}
	var res Result
	if t.Store == nil || t.Store.Len() == 0 {
		res.Findings = append(res.Findings, "similar_incidents=none database=empty")
		return res, nil
	}
	hits := t.Store.SearchANN(t.Query, k)
	for _, h := range hits {
		rec, ok := t.History.ByID(h.ID)
		if !ok {
			continue
		}
		res.Findings = append(res.Findings,
			fmt.Sprintf("similar=%s rootcause=%s score=%.2f ttm=%.0f", rec.ID, rec.RootCause, h.Score, rec.TTMMinutes))
	}
	res.Raw = fmt.Sprintf("similar incidents: %d hits", len(hits))
	return res, nil
}

// AskCustomerTool is a manual step: the OCE asks the affected customer
// for details (e.g. a packet capture). In simulation the customer's
// answer reveals flow attributes of the affected service.
type AskCustomerTool struct {
	base
	Service string
}

// NewAskCustomerTool returns the tool scoped to the incident's service.
func NewAskCustomerTool(service string) *AskCustomerTool {
	return &AskCustomerTool{
		base:    base{kb.ToolAskCustomer, "manual step: request details or a capture from the customer", RiskReadOnly, 25 * time.Minute},
		Service: service,
	}
}

// Invoke implements Tool.
func (t *AskCustomerTool) Invoke(w *netsim.World, _ map[string]string) (Result, error) {
	var res Result
	for _, f := range w.Flows() {
		if f.Service != t.Service {
			continue
		}
		for k, v := range f.Attrs {
			res.Findings = append(res.Findings, fmt.Sprintf("customer_flow=%s %s=%s", f.ID, k, v))
		}
	}
	sort.Strings(res.Findings)
	if len(res.Findings) == 0 {
		res.Findings = append(res.Findings, "customer_report=no-details")
	}
	res.Raw = fmt.Sprintf("customer of %s responded with %d details", t.Service, len(res.Findings))
	return res, nil
}

// NewDefaultRegistry assembles the full diagnostic toolbox for one
// incident: the monitor tools plus knowledge tools bound to the incident
// context.
func NewDefaultRegistry(store *embed.Store, hist *kb.History, incidentText, service string) *Registry {
	r := NewRegistry()
	must := func(team string, t Tool) {
		if err := r.Register(team, t); err != nil {
			panic(err)
		}
	}
	must("monitoring", NewPingMeshTool())
	must("monitoring", NewLinkUtilTool())
	must("monitoring", NewDeviceHealthTool())
	must("monitoring", NewCountersTool())
	must("monitoring", NewSyslogTool())
	must("wan", NewControllerStateTool())
	must("wan", NewPrefixTableTool())
	must("release", NewRecentChangesTool())
	must("monitoring", NewMonitorCrossCheckTool())
	must("im", NewSimilarIncidentsTool(store, hist, incidentText))
	must("support", NewAskCustomerTool(service))
	must("monitoring", NewLossHistoryTool())
	return r
}

// LossHistoryTool classifies recent loss and latency series per service
// from the attached telemetry recorder: flat, rising, falling or
// intermittent. Intermittent loss is the flapping-fault signature an
// instantaneous query cannot see.
type LossHistoryTool struct{ base }

// LossHistoryToolName is the registry name of the tool.
const LossHistoryToolName = "loss-history"

// NewLossHistoryTool returns the tool.
func NewLossHistoryTool() *LossHistoryTool {
	return &LossHistoryTool{base{LossHistoryToolName, "trend classification of per-service loss/latency series", RiskReadOnly, 2 * time.Minute}}
}

// Invoke implements Tool. args["lookbackmin"] bounds the window
// (default 60 minutes).
func (t *LossHistoryTool) Invoke(w *netsim.World, args map[string]string) (Result, error) {
	rec := telemetry.RecorderOf(w)
	var res Result
	if rec == nil {
		res.Findings = append(res.Findings, "history=unavailable")
		res.Raw = "no telemetry recorder attached to this deployment"
		return res, nil
	}
	lookMin, _ := strconv.Atoi(args["lookbackmin"])
	if lookMin <= 0 {
		lookMin = 60
	}
	lookback := time.Duration(lookMin) * time.Minute
	interesting := 0
	for _, key := range rec.Keys() {
		if !strings.HasSuffix(key, ":loss") {
			continue
		}
		trend, crossings := rec.Classify(key, lookback, 0.01)
		if trend == telemetry.TrendFlat && crossings == 0 {
			continue
		}
		interesting++
		res.Findings = append(res.Findings,
			fmt.Sprintf("loss_trend=%s series=%s crossings=%d", trend, key, crossings))
	}
	if interesting == 0 {
		res.Findings = append(res.Findings, "loss_trend=flat all_series=quiet")
	}
	res.Raw = fmt.Sprintf("loss history over %dm: %d series with activity (%s)", lookMin, interesting, rec)
	return res, nil
}
