package netsim

import "slices"

// This file is the dense routing kernel: BFS over the ordinal CSR and
// DAG materialization from a distance field. Both run on reusable
// scratch owned by the lineage's route cache, so a warm compute
// allocates only the result arrays.

// routeScratch holds the reusable working arrays for dense routing and
// incremental repair. It lives on the lineage-shared routeCache; netsim
// is single-goroutine per lineage (clones get their own Network values),
// matching the existing cache contract.
type routeScratch struct {
	dist   []int32   // BFS distance to dst per node ordinal, -1 unreachable
	frac   []float64 // per-ordinal transit fraction during DAG build (kept zeroed)
	dagIdx []int32   // node ordinal -> index in the DAG nodes slice
	queue  []int32   // BFS queue
	level  []int32   // current DAG level (node ordinals)
	next   []int32   // next DAG level

	nodesStage []int32   // DAG nodes in level order, staged
	offStage   []int32   // successor CSR offsets, staged
	succStage  []dagEdge // successor CSR entries, staged (ordinal node ids)
	dirOrd     []int32   // directed links touched by the DAG, first-touch order
	dirFrac    []float64 // per-directed-link fraction accumulator (kept zeroed)

	// incremental-repair state (see incremental.go)
	remNodes []int32 // newly-down node ordinals vs a cache entry
	insNodes []int32 // newly-up node ordinals
	remLinks []int32
	insLinks []int32
	orphans  []int32
	nodeMark []int32 // epoch marks for suspect dedupe
	markGen  int32
	buckets  bucketQueue
}

func (s *routeScratch) ensure(v, l int) {
	if len(s.dist) < v {
		s.dist = make([]int32, v)
		s.frac = make([]float64, v)
		s.dagIdx = make([]int32, v)
		s.nodeMark = make([]int32, v)
	}
	if len(s.dirFrac) < 2*l {
		s.dirFrac = make([]float64, 2*l)
	}
}

// scratch returns the lineage's routing scratch, creating the cache
// holder if this Network somehow predates it.
func (n *Network) scratch() *routeScratch {
	if n.rc == nil {
		n.rc = newRouteCache()
	}
	return &n.rc.scratch
}

// bfsDistDense fills s.dist[:V] with hop distances to dst over usable
// nodes and links, restricted to transit nodes accepted by allow (src
// and dst are always allowed). It explores the full reachable set — no
// early exit — so the distance field is a complete oracle the
// incremental repairer can patch under later deltas.
func bfsDistDense(ot *ordTable, nodePtrs []*Node, linkPtrs []*Link, srcOrd, dstOrd int32, allow NodeFilter, s *routeScratch) {
	dist := s.dist[:len(ot.nodeIDs)]
	for i := range dist {
		dist[i] = -1
	}
	q := s.queue[:0]
	dist[dstOrd] = 0
	q = append(q, dstOrd)
	for qi := 0; qi < len(q); qi++ {
		u := q[qi]
		du := dist[u]
		for _, e := range ot.adjEdges[ot.adjOff[u]:ot.adjOff[u+1]] {
			if dist[e.node] != -1 {
				continue
			}
			if !linkPtrs[e.link].Usable() {
				continue
			}
			nd := nodePtrs[e.node]
			if !nd.Usable() {
				continue
			}
			if e.node != srcOrd && e.node != dstOrd && allow != nil && !allow(nd) {
				continue
			}
			dist[e.node] = du + 1
			q = append(q, e.node)
		}
	}
	s.queue = q
}

// trivialDAG is the src == dst case: one node, full fraction, no hops.
func trivialDAG(ot *ordTable, src NodeID, srcOrd int32) *RouteDAG {
	return &RouteDAG{
		Src:      src,
		Dst:      src,
		Hops:     0,
		NodeFrac: map[NodeID]float64{src: 1},
		LinkFrac: map[DirLink]float64{},
		ot:       ot,
		nodes:    []int32{srcOrd},
		frac:     []float64{1},
		succOff:  []int32{0, 0},
	}
}

// buildDAGFromDist materializes the ECMP DAG for src->dst given a
// complete distance-to-dst field. Level processing order (ascending node
// ID within each hop) and the fraction-accumulation add sequence exactly
// mirror the map-based builder this replaced, so NodeFrac/LinkFrac are
// bit-identical. Returns nil when src is unreachable.
func buildDAGFromDist(ot *ordTable, linkPtrs []*Link, src, dst NodeID, srcOrd, dstOrd int32, dist []int32, s *routeScratch) *RouteDAG {
	total := dist[srcOrd]
	if total < 0 {
		return nil
	}
	if srcOrd == dstOrd {
		return trivialDAG(ot, src, srcOrd)
	}

	nodesStage := s.nodesStage[:0]
	offStage := s.offStage[:0]
	succs := s.succStage[:0]
	dirOrd := s.dirOrd[:0]
	level := s.level[:0]
	next := s.next[:0]

	level = append(level, srcOrd)
	nodesStage = append(nodesStage, srcOrd)
	s.frac[srcOrd] = 1
	for hop := total; hop > 0; hop-- {
		next = next[:0]
		for _, u := range level {
			offStage = append(offStage, int32(len(succs)))
			cnt := 0
			for _, e := range ot.adjEdges[ot.adjOff[u]:ot.adjOff[u+1]] {
				if dist[e.node] != hop-1 {
					continue
				}
				if !linkPtrs[e.link].Usable() {
					continue
				}
				var dirbit int32
				if ot.linkA[e.link] != u {
					dirbit = 1
				}
				succs = append(succs, dagEdge{node: e.node, dir: e.link<<1 | dirbit})
				cnt++
			}
			fu := s.frac[u]
			if cnt == 0 || fu == 0 {
				continue
			}
			share := fu / float64(cnt)
			for _, ed := range succs[len(succs)-cnt:] {
				if s.frac[ed.node] == 0 {
					next = append(next, ed.node)
				}
				s.frac[ed.node] += share
				if s.dirFrac[ed.dir] == 0 {
					dirOrd = append(dirOrd, ed.dir)
				}
				s.dirFrac[ed.dir] += share
			}
		}
		slices.Sort(next)
		nodesStage = append(nodesStage, next...)
		level, next = next, level
	}
	// Every staged node except dst was processed above; close its (empty)
	// successor span plus the CSR sentinel.
	offStage = append(offStage, int32(len(succs)), int32(len(succs)))

	k := len(nodesStage)
	for i, o := range nodesStage {
		s.dagIdx[o] = int32(i)
	}
	d := &RouteDAG{
		Src:      src,
		Dst:      dst,
		Hops:     int(total),
		NodeFrac: make(map[NodeID]float64, k),
		LinkFrac: make(map[DirLink]float64, len(dirOrd)),
		ot:       ot,
		nodes:    append([]int32(nil), nodesStage...),
		frac:     make([]float64, k),
		succOff:  append([]int32(nil), offStage...),
		succs:    make([]dagEdge, len(succs)),
		dirs:     make([]dirFrac, len(dirOrd)),
	}
	for i, o := range nodesStage {
		d.frac[i] = s.frac[o]
		d.NodeFrac[ot.nodeIDs[o]] = s.frac[o]
	}
	for i, ed := range succs {
		d.succs[i] = dagEdge{node: s.dagIdx[ed.node], dir: ed.dir}
	}
	for i, dir := range dirOrd {
		d.dirs[i] = dirFrac{dir: dir, frac: s.dirFrac[dir]}
		d.LinkFrac[DirLink{Link: ot.linkIDs[dir>>1], Forward: dir&1 == 0}] = s.dirFrac[dir]
	}

	// Re-zero the touched scratch so the next build starts clean.
	for _, o := range nodesStage {
		s.frac[o] = 0
	}
	for _, dir := range dirOrd {
		s.dirFrac[dir] = 0
	}
	s.nodesStage = nodesStage[:0]
	s.offStage = offStage[:0]
	s.succStage = succs[:0]
	s.dirOrd = dirOrd[:0]
	s.level = level[:0]
	s.next = next[:0]
	return d
}

// routeDAGDense runs the full dense compute: BFS from dst, then DAG
// materialization. The returned distance field is a fresh copy suitable
// for storing in a cache entry (nil for the trivial or unroutable
// cases); the incremental repairer patches it under later deltas.
func routeDAGDense(n *Network, src, dst NodeID, allow NodeFilter) (*RouteDAG, []int32) {
	srcNode, dstNode := n.Node(src), n.Node(dst)
	if srcNode == nil || dstNode == nil || !srcNode.Usable() || !dstNode.Usable() {
		return nil, nil
	}
	ot := n.ordTab()
	nodePtrs, linkPtrs := n.ptrTables()
	srcOrd, dstOrd := ot.nodeOrd[src], ot.nodeOrd[dst]
	if srcOrd == dstOrd {
		return trivialDAG(ot, src, srcOrd), nil
	}
	s := n.scratch()
	s.ensure(len(ot.nodeIDs), len(ot.linkIDs))
	bfsDistDense(ot, nodePtrs, linkPtrs, srcOrd, dstOrd, allow, s)
	dist := append([]int32(nil), s.dist[:len(ot.nodeIDs)]...)
	return buildDAGFromDist(ot, linkPtrs, src, dst, srcOrd, dstOrd, dist, s), dist
}
