package netsim

import (
	"math"
	"testing"
)

func TestFatTreeCounts(t *testing.T) {
	t.Parallel()
	for _, k := range []int{2, 4, 6, 8} {
		n := NewNetwork()
		cfg := DefaultFatTreeConfig("r")
		cfg.K = k
		ft := BuildFatTree(n, cfg)
		half := k / 2
		if len(ft.Cores) != half*half {
			t.Errorf("k=%d: cores = %d, want %d", k, len(ft.Cores), half*half)
		}
		if len(ft.Aggs) != k*half || len(ft.Edges) != k*half {
			t.Errorf("k=%d: aggs/edges = %d/%d, want %d", k, len(ft.Aggs), len(ft.Edges), k*half)
		}
		if ft.NumHosts() != k*k*k/4 {
			t.Errorf("k=%d: hosts = %d, want %d", k, ft.NumHosts(), k*k*k/4)
		}
		// Link count: hosts + edge-agg (k pods * half*half) + agg-core
		// (k pods * half * half).
		wantLinks := ft.NumHosts() + k*half*half + k*half*half
		if n.NumLinks() != wantLinks {
			t.Errorf("k=%d: links = %d, want %d", k, n.NumLinks(), wantLinks)
		}
	}
}

func TestFatTreeInvalidK(t *testing.T) {
	t.Parallel()
	for _, k := range []int{0, 1, 3, -2} {
		k := k
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d accepted", k)
				}
			}()
			cfg := DefaultFatTreeConfig("r")
			cfg.K = k
			BuildFatTree(NewNetwork(), cfg)
		}()
	}
}

func TestFatTreeAllPairsReachableWithEqualCost(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	ft := BuildFatTree(n, DefaultFatTreeConfig("r"))
	// Cross-pod pairs have (k/2)^2 equal-cost 6-hop paths in a k=4 tree
	// (host-edge-agg-core-agg-edge-host): 4 paths, within the ECMP cap.
	d := RouteDAGFor(n, ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1], nil)
	if d == nil {
		t.Fatal("cross-pod hosts unreachable")
	}
	if d.Hops != 6 {
		t.Errorf("cross-pod hops = %d, want 6", d.Hops)
	}
	// All 4 cores participate (full ECMP spread).
	coresUsed := 0
	for _, id := range d.TransitNodes() {
		if n.Node(id).Kind == KindSpine {
			coresUsed++
		}
	}
	if coresUsed != 4 {
		t.Errorf("cores on DAG = %d, want 4", coresUsed)
	}
	// Same-edge pair: 2 hops via the shared edge switch.
	d2 := RouteDAGFor(n, ft.Hosts[0], ft.Hosts[1], nil)
	if d2 == nil || d2.Hops != 2 {
		t.Fatalf("same-edge DAG = %+v", d2)
	}
}

func TestFatTreeFullBisectionUnderECMP(t *testing.T) {
	t.Parallel()
	// The fat-tree's claim: with every host sending at line rate across
	// pods, ECMP keeps all links at or under capacity (rearrangeably
	// non-blocking; fluid ECMP achieves it for a uniform shift pattern).
	n := NewNetwork()
	cfg := DefaultFatTreeConfig("r")
	ft := BuildFatTree(n, cfg)
	hosts := ft.Hosts
	half := len(hosts) / 2
	var flows []*Flow
	// Pair host i in the first half with host i in the second half, both
	// directions, each at full host line rate.
	for i := 0; i < half; i++ {
		flows = append(flows,
			&Flow{ID: f2id("a", i), Src: hosts[i], Dst: hosts[half+i], DemandGbps: cfg.HostLinkGbps, Service: "bisect"},
			&Flow{ID: f2id("b", i), Src: hosts[half+i], Dst: hosts[i], DemandGbps: cfg.HostLinkGbps, Service: "bisect"},
		)
	}
	rep := RouteTraffic(n, flows, nil)
	if loss := rep.OverallLossRate(); loss > 1e-9 {
		t.Fatalf("bisection traffic lost %.4f%%", loss*100)
	}
	worst := 0.0
	for _, ls := range rep.LinkStats {
		if ls.Utilization > worst {
			worst = ls.Utilization
		}
	}
	if worst > 1+1e-9 {
		t.Fatalf("worst link utilization %v > 1 under bisection load", worst)
	}
	if math.Abs(worst-1) > 0.01 {
		t.Logf("note: worst utilization %.3f (host links saturated)", worst)
	}
}

func f2id(tag string, i int) string {
	return "bisect-" + tag + "-" + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestFatTreeSurvivesCoreFailure(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	ft := BuildFatTree(n, DefaultFatTreeConfig("r"))
	n.Node(ft.Cores[0]).Healthy = false
	d := RouteDAGFor(n, ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1], nil)
	if d == nil {
		t.Fatal("core failure partitioned the fat-tree")
	}
	for _, id := range d.TransitNodes() {
		if id == ft.Cores[0] {
			t.Fatal("routing through a dead core")
		}
	}
}
