package netsim

import (
	"fmt"
	"maps"
	"slices"
)

// Network is the device/link graph. It is not safe for concurrent
// mutation; experiments run single-threaded against a simulated clock,
// and the evaluation harnesses clone Networks per trial instead of
// sharing them.
//
// Clone is copy-on-write: the node/link/adjacency maps are shared across
// a clone lineage until someone writes. All mutations of node or link
// state MUST therefore go through MutNode/MutLink (or AddNode/AddLink),
// which materialize private copies of the touched structures; Node/Link
// return read-only views. Immutable identity fields (Node.ID, Node.Kind,
// Node.Region, Node.WANName, Link.ID, Link.A, Link.B, Link.PropDelayMs,
// Link.CapacityGbps) are never rewritten after construction — the routing
// cache and shared route DAGs rely on that.
type Network struct {
	nodes map[NodeID]*Node
	links map[LinkID]*Link
	adj   map[NodeID][]LinkID // sorted for determinism

	// Copy-on-write state. cow is set once the network has ever been
	// cloned; from then on the maps (while shared*) and the pointed-to
	// structs (until recorded in own*) may be shared with other lineage
	// members and must be copied before writing.
	cow         bool
	sharedNodes bool
	sharedLinks bool
	sharedAdj   bool
	ownNodes    map[NodeID]bool
	ownLinks    map[LinkID]bool

	// structVer is the topology generation: bumped by AddNode/AddLink.
	// Route-cache entries are tagged with it so structural growth (which
	// can only happen through those methods) invalidates them wholesale.
	structVer int

	// nbr caches, per node, the resolved (neighbor node, link) pointer
	// pairs for its adjacency — eliminating two map lookups per edge in
	// the routing hot path. Dropped whenever a struct is materialized or
	// the topology grows, since stale pointers would read old state.
	nbr map[NodeID][]nbrRef

	// ords is the dense ordinal table (see ordinal.go): ID-only, keyed by
	// structVer, shared across the clone lineage. nodePtrs/linkPtrs
	// resolve ordinals to this instance's live structs and follow the
	// same invalidation rule as nbr.
	ords     *ordTable
	nodePtrs []*Node
	linkPtrs []*Link

	// rc is the route cache, shared by every member of a clone lineage so
	// what-if clones reuse the parent's DAGs (see pathcache.go).
	rc *routeCache
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		nodes: make(map[NodeID]*Node),
		links: make(map[LinkID]*Link),
		adj:   make(map[NodeID][]LinkID),
		rc:    newRouteCache(),
	}
}

// invalidateDerived drops the pointer-holding caches after any change
// that replaces structs or alters adjacency.
func (n *Network) invalidateDerived() {
	n.nbr = nil
	n.nodePtrs = nil
	n.linkPtrs = nil
}

// materializeNodes gives this instance a private nodes map (entries still
// point at possibly-shared structs).
func (n *Network) materializeNodes() {
	if !n.sharedNodes {
		return
	}
	m := make(map[NodeID]*Node, len(n.nodes))
	for k, v := range n.nodes {
		m[k] = v
	}
	n.nodes = m
	n.sharedNodes = false
}

// materializeLinks gives this instance a private links map.
func (n *Network) materializeLinks() {
	if !n.sharedLinks {
		return
	}
	m := make(map[LinkID]*Link, len(n.links))
	for k, v := range n.links {
		m[k] = v
	}
	n.links = m
	n.sharedLinks = false
}

// materializeAdj gives this instance a private adjacency map with private
// slices (AddLink mutates the slices in place).
func (n *Network) materializeAdj() {
	if !n.sharedAdj {
		return
	}
	m := make(map[NodeID][]LinkID, len(n.adj))
	for k, v := range n.adj {
		cp := make([]LinkID, len(v))
		copy(cp, v)
		m[k] = cp
	}
	n.adj = m
	n.sharedAdj = false
}

// AddNode inserts a node. Unset health defaults to healthy. It returns the
// inserted node so builders can tweak attributes. AddNode panics on
// duplicate IDs: topology construction bugs should fail loudly.
func (n *Network) AddNode(node Node) *Node {
	if node.ID == "" {
		panic("netsim: node with empty ID")
	}
	if _, ok := n.nodes[node.ID]; ok {
		panic(fmt.Sprintf("netsim: duplicate node %q", node.ID))
	}
	if n.cow {
		n.materializeNodes()
		if n.ownNodes == nil {
			n.ownNodes = make(map[NodeID]bool)
		}
		n.ownNodes[node.ID] = true
	}
	node.Healthy = true
	if node.Protocols == nil {
		node.Protocols = make(map[string]bool)
	}
	if node.Attrs == nil {
		node.Attrs = make(map[string]string)
	}
	stored := node
	n.nodes[node.ID] = &stored
	n.structVer++
	n.invalidateDerived()
	return &stored
}

// AddLink inserts an undirected link between existing nodes and returns it.
// The link ID is derived from the endpoints via MakeLinkID.
func (n *Network) AddLink(a, b NodeID, capacityGbps, propDelayMs float64) *Link {
	if _, ok := n.nodes[a]; !ok {
		panic(fmt.Sprintf("netsim: link endpoint %q does not exist", a))
	}
	if _, ok := n.nodes[b]; !ok {
		panic(fmt.Sprintf("netsim: link endpoint %q does not exist", b))
	}
	id := MakeLinkID(a, b)
	if _, ok := n.links[id]; ok {
		panic(fmt.Sprintf("netsim: duplicate link %q", id))
	}
	if n.cow {
		n.materializeLinks()
		n.materializeAdj()
		if n.ownLinks == nil {
			n.ownLinks = make(map[LinkID]bool)
		}
		n.ownLinks[id] = true
	}
	l := &Link{ID: id, A: a, B: b, CapacityGbps: capacityGbps, PropDelayMs: propDelayMs}
	n.links[id] = l
	n.adj[a] = insertSorted(n.adj[a], id)
	n.adj[b] = insertSorted(n.adj[b], id)
	n.structVer++
	n.invalidateDerived()
	return l
}

func insertSorted(ids []LinkID, id LinkID) []LinkID {
	i, _ := slices.BinarySearch(ids, id)
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// Node returns the node with the given ID, or nil if absent. The result
// is a read-only view when the network has been cloned; use MutNode
// before writing.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Link returns the link with the given ID, or nil if absent. The result
// is a read-only view when the network has been cloned; use MutLink
// before writing.
func (n *Network) Link(id LinkID) *Link { return n.links[id] }

// MutNode returns the node for mutation, materializing a private copy of
// the map and struct when they are shared with a clone lineage. Every
// write of mutable node state (Healthy, Isolated, OSVersion, Protocols,
// Attrs) must go through it.
func (n *Network) MutNode(id NodeID) *Node {
	nd := n.nodes[id]
	if nd == nil || !n.cow {
		return nd
	}
	if n.ownNodes[id] {
		return nd
	}
	n.materializeNodes()
	cp := nd.clone()
	n.nodes[id] = cp
	if n.ownNodes == nil {
		n.ownNodes = make(map[NodeID]bool)
	}
	n.ownNodes[id] = true
	n.invalidateDerived()
	return cp
}

// MutLink is MutNode for links: it must guard every write of mutable link
// state (Down, Isolated, CorruptRate).
func (n *Network) MutLink(id LinkID) *Link {
	l := n.links[id]
	if l == nil || !n.cow {
		return l
	}
	if n.ownLinks[id] {
		return l
	}
	n.materializeLinks()
	cp := l.clone()
	n.links[id] = cp
	if n.ownLinks == nil {
		n.ownLinks = make(map[LinkID]bool)
	}
	n.ownLinks[id] = true
	n.invalidateDerived()
	return cp
}

// LinkBetween returns the link connecting a and b, or nil if none exists.
func (n *Network) LinkBetween(a, b NodeID) *Link { return n.links[MakeLinkID(a, b)] }

// NumNodes reports the number of nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumLinks reports the number of links.
func (n *Network) NumLinks() int { return len(n.links) }

// Nodes returns all nodes sorted by ID. The slice is fresh; the pointed-to
// nodes are live. The sorted order comes straight from the ordinal
// table, so no sort runs after the first build of a topology generation.
func (n *Network) Nodes() []*Node {
	np, _ := n.ptrTables()
	out := make([]*Node, len(np))
	copy(out, np)
	return out
}

// Links returns all links sorted by ID. The slice is fresh; the pointed-to
// links are live.
func (n *Network) Links() []*Link {
	out := make([]*Link, len(n.linksSorted()))
	copy(out, n.linkPtrs)
	return out
}

// linksSorted returns the cached ID-sorted link view (shared; callers
// must not keep or mutate it). It is the ordinal table's link order
// resolved to this instance's live structs.
func (n *Network) linksSorted() []*Link {
	_, lp := n.ptrTables()
	return lp
}

// NodesByKind returns all nodes of the given kind, sorted by ID.
func (n *Network) NodesByKind(kind NodeKind) []*Node {
	var out []*Node
	for _, nd := range n.Nodes() {
		if nd.Kind == kind {
			out = append(out, nd)
		}
	}
	return out
}

// NodesInRegion returns all nodes in the given region, sorted by ID.
func (n *Network) NodesInRegion(region string) []*Node {
	var out []*Node
	for _, nd := range n.Nodes() {
		if nd.Region == region {
			out = append(out, nd)
		}
	}
	return out
}

// Regions returns the sorted set of region names present in the network.
func (n *Network) Regions() []string {
	seen := make(map[string]bool)
	for _, nd := range n.nodes {
		if nd.Region != "" {
			seen[nd.Region] = true
		}
	}
	return slices.Sorted(maps.Keys(seen))
}

// IncidentLinks returns the IDs of links adjacent to id, sorted.
func (n *Network) IncidentLinks(id NodeID) []LinkID {
	out := make([]LinkID, len(n.adj[id]))
	copy(out, n.adj[id])
	return out
}

// nbrRef is one resolved adjacency edge: the neighbor node and connecting
// link as live pointers plus their IDs, so the routing hot path avoids
// re-hashing string IDs on every traversal.
type nbrRef struct {
	nd  *Node
	l   *Link
	id  NodeID
	lid LinkID
}

// neighborRefs returns the resolved adjacency of id, building and caching
// it on first use. The cache is dropped whenever structs are materialized
// (MutNode/MutLink) or the topology grows, so the pointers always refer
// to this instance's live structs.
func (n *Network) neighborRefs(id NodeID) []nbrRef {
	if n.nbr == nil {
		n.nbr = make(map[NodeID][]nbrRef, len(n.nodes))
	}
	refs, ok := n.nbr[id]
	if !ok {
		adj := n.adj[id]
		if len(adj) > 0 {
			refs = make([]nbrRef, 0, len(adj))
			for _, lid := range adj {
				l := n.links[lid]
				other := l.Other(id)
				refs = append(refs, nbrRef{nd: n.nodes[other], l: l, id: other, lid: lid})
			}
		}
		n.nbr[id] = refs
	}
	return refs
}

// usableNeighbors yields (neighbor, link) pairs reachable from id over
// usable links to usable nodes, in deterministic order. allow filters the
// nodes considered; nil allows every node.
func (n *Network) usableNeighbors(id NodeID, allow func(*Node) bool) []neighbor {
	var out []neighbor
	for _, r := range n.neighborRefs(id) {
		if !r.l.Usable() || !r.nd.Usable() {
			continue
		}
		if allow != nil && !allow(r.nd) {
			continue
		}
		out = append(out, neighbor{node: r.id, link: r.lid, l: r.l})
	}
	return out
}

// neighbor is one usable adjacency edge as seen from a node. The link
// pointer is retained in route DAGs shared across clone lineages, so
// consumers may only read its immutable fields (ID, A, B, PropDelayMs);
// mutable state (Down, Isolated, CorruptRate) must be read through the
// live network.
type neighbor struct {
	node NodeID
	link LinkID
	l    *Link
}

// Clone returns a copy-on-write snapshot of the network: the maps and
// structs are shared with this instance (and tagged so either side copies
// before writing), and the route cache is shared outright so what-if
// clones reuse already-computed DAGs. Risk assessment relies on cloning
// to evaluate "what if we applied this mitigation" without touching live
// state.
func (n *Network) Clone() *Network {
	n.cow = true
	n.sharedNodes, n.sharedLinks, n.sharedAdj = true, true, true
	// Structs this instance privately copied are now visible to the new
	// clone through the shared maps, so ownership resets on both sides.
	n.ownNodes, n.ownLinks = nil, nil
	return &Network{
		nodes:       n.nodes,
		links:       n.links,
		adj:         n.adj,
		cow:         true,
		sharedNodes: true,
		sharedLinks: true,
		sharedAdj:   true,
		structVer:   n.structVer,
		ords:        n.ords,
		rc:          n.rc,
	}
}
