package kb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mitigation"
)

func TestHistoryJSONRoundTrip(t *testing.T) {
	t.Parallel()
	h := NewHistory()
	h.Add(IncidentRecord{
		ID: "i1", Title: "loss in east", Summary: "sum",
		Symptoms:  []string{CPacketLoss, CServiceUnreachable},
		RootCause: CLinkCorruption,
		Mitigation: []mitigation.Action{
			{Kind: mitigation.IsolateLink, Target: "l1"},
			{Kind: mitigation.RateLimitService, Target: "bulk", Param: "0.5"},
		},
		TTMMinutes: 42.5, Severity: 3, Tags: []string{"gray-link"},
	})
	h.Add(IncidentRecord{ID: "i2", Title: "minimal"})

	var buf bytes.Buffer
	if err := h.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewHistory()
	if err := loaded.LoadJSON(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d records", loaded.Len())
	}
	r, ok := loaded.ByID("i1")
	if !ok {
		t.Fatal("i1 missing")
	}
	if r.TTMMinutes != 42.5 || r.Severity != 3 || r.RootCause != CLinkCorruption {
		t.Fatalf("record = %+v", r)
	}
	if len(r.Mitigation) != 2 || r.Mitigation[1].Param != "0.5" {
		t.Fatalf("mitigation = %v", r.Mitigation)
	}
	if len(r.Symptoms) != 2 || len(r.Tags) != 1 {
		t.Fatalf("lists = %v %v", r.Symptoms, r.Tags)
	}
}

func TestHistoryLoadJSONErrors(t *testing.T) {
	t.Parallel()
	h := NewHistory()
	if err := h.LoadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := h.LoadJSON(strings.NewReader(`[{"title":"no id"}]`)); err == nil {
		t.Fatal("record without id accepted")
	}
}

func TestHistoryLoadJSONReplacesByID(t *testing.T) {
	t.Parallel()
	h := NewHistory()
	h.Add(IncidentRecord{ID: "x", Title: "old", TTMMinutes: 10})
	if err := h.LoadJSON(strings.NewReader(`[{"id":"x","title":"new","ttm_minutes":20,"severity":1}]`)); err != nil {
		t.Fatal(err)
	}
	r, _ := h.ByID("x")
	if r.Title != "new" || r.TTMMinutes != 20 {
		t.Fatalf("record = %+v", r)
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestExportDOT(t *testing.T) {
	t.Parallel()
	k := Default()
	var buf bytes.Buffer
	if err := k.ExportDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph kb", `"link_overload" -> "packet_loss"`, "0.90 (netinfra)",
		`"packet_loss" [shape=doublecircle`, "}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}
