// Package lake is the incident data lake: the append-only, crash-safe
// on-disk store every resolved incident lands in — the postmortem
// summary, the confirmed causal chain, every hypothesis the session
// proposed (verified or not), and the full structured event stream.
// It is the repo's answer to the paper's third principle (*adaptive*
// incident management): incidents used to vanish when the process
// exited; now they accumulate into a queryable corpus the learning
// loop feeds on.
//
// Storage reuses the journal's CRC-framed fsync'd record format
// (journal.FrameFile): one checksummed JSON line per entry, fsync
// before acknowledge, torn tails truncated on open. A lake Append that
// returned nil survives kill -9.
//
// Derived views are maintained incrementally on ingest and rebuilt
// from the log on open: per-scenario-class TTM statistics, mitigation
// frequency, and a tag index. The promotion gate that closes the
// adaptive loop lives in promote.go: confirmed chains become
// in-context rules and history records, and the policy choice
// (verified-only vs always-ingest) is exactly what experiment E18
// measures.
package lake

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/scenarios"
)

// FileName is the lake log inside the lake directory.
const FileName = "incidents.lake"

// Version is the current entry-format version. Open accepts anything
// at or below it and treats future-version entries as corruption, the
// same forward-compatibility stance the journal takes.
const Version = 1

// Edge is one proposed causal edge: the session hypothesized Cause
// explains Effect, at the model's stated confidence. Proposed edges
// are recorded whether or not the cross-check path later confirmed
// them — that distinction is the whole point of the verified-ingest
// gate.
type Edge struct {
	Cause      string  `json:"cause"`
	Effect     string  `json:"effect"`
	Confidence float64 `json:"confidence,omitempty"`
}

// Action is one executed mitigation step in wire form — structured so
// promotion can rebuild the typed mitigation.Action for the history
// corpus, rendered like mitigation.Action.String for the views.
type Action struct {
	Kind   string `json:"kind"`
	Target string `json:"target,omitempty"`
	Param  string `json:"param,omitempty"`
}

// String matches mitigation.Action's compact rendering.
func (a Action) String() string {
	if a.Param != "" {
		return fmt.Sprintf("%s(%s,%s)", a.Kind, a.Target, a.Param)
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.Target)
}

// Entry is one incident as stored in the lake.
type Entry struct {
	// V is the entry-format version (0 means pre-versioned, accepted).
	V        int    `json:"v,omitempty"`
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	Runner   string `json:"runner,omitempty"`
	Region   string `json:"region,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Severity int    `json:"severity,omitempty"`

	Mitigated  bool    `json:"mitigated,omitempty"`
	Escalated  bool    `json:"escalated,omitempty"`
	TTMMinutes float64 `json:"ttm_minutes,omitempty"`
	Rounds     int     `json:"rounds,omitempty"`

	// Symptoms are the concepts observed at open time; Chain is the
	// deduction chain the session's cross-check path confirmed, in
	// confirmation order (symptom side first, root cause last).
	Symptoms []string `json:"symptoms,omitempty"`
	Chain    []string `json:"chain,omitempty"`
	// Proposed is every hypothesis edge the session floated, confirmed
	// or not, reconstructed from the event stream.
	Proposed []Edge `json:"proposed,omitempty"`
	// Applied is the executed mitigation plan.
	Applied []Action `json:"applied,omitempty"`
	Tags    []string `json:"tags,omitempty"`

	// Events is the session's structured event stream.
	Events []obs.Event `json:"events,omitempty"`
}

// NewEntry builds the lake record for one completed session: scenario
// facts from the instance, outcome facts from the uniform result
// (Chain rides in res.Deductions), and the proposed-edge set
// reconstructed from the event stream.
func NewEntry(id, runner string, in *scenarios.Instance, res harness.Result, seed int64, events []obs.Event) Entry {
	e := Entry{
		ID:         id,
		Scenario:   in.Scenario.Name(),
		Runner:     runner,
		Seed:       seed,
		Severity:   in.Incident.Severity,
		Mitigated:  res.Mitigated,
		Escalated:  res.Escalated,
		TTMMinutes: res.TTM.Minutes(),
		Rounds:     res.Rounds,
		Symptoms:   append([]string(nil), in.Incident.Symptoms...),
		Chain:      append([]string(nil), res.Deductions...),
		Proposed:   ProposedEdges(in.Incident.Symptoms, events),
		Events:     append([]obs.Event(nil), events...),
	}
	for _, a := range res.Applied.Actions {
		e.Applied = append(e.Applied, Action{Kind: string(a.Kind), Target: a.Target, Param: a.Param})
	}
	e.Tags = append(e.Tags, e.Scenario, fmt.Sprintf("sev%d", e.Severity))
	switch {
	case e.Mitigated:
		e.Tags = append(e.Tags, "mitigated")
	case e.Escalated:
		e.Tags = append(e.Tags, "escalated")
	default:
		e.Tags = append(e.Tags, "unresolved")
	}
	if len(e.Chain) > 0 {
		e.Tags = append(e.Tags, "root:"+e.Chain[len(e.Chain)-1])
	}
	return e
}

// ProposedEdges reconstructs every hypothesis edge a session proposed
// from its event stream. The frontier — the effect a new hypothesis
// would explain — starts at the first symptom and advances to each
// hypothesis the tester supported, mirroring how the session itself
// extends its deduction chain. Duplicate (cause, effect) pairs keep
// their highest confidence.
func ProposedEdges(symptoms []string, events []obs.Event) []Edge {
	frontier := ""
	if len(symptoms) > 0 {
		frontier = symptoms[0]
	}
	seen := map[[2]string]int{}
	var out []Edge
	for _, e := range events {
		switch e.Type {
		case obs.EvHypothesis:
			if e.Hypothesis == "" || frontier == "" {
				continue
			}
			key := [2]string{e.Hypothesis, frontier}
			if i, ok := seen[key]; ok {
				if e.Confidence > out[i].Confidence {
					out[i].Confidence = e.Confidence
				}
				continue
			}
			seen[key] = len(out)
			out = append(out, Edge{Cause: e.Hypothesis, Effect: frontier, Confidence: e.Confidence})
		case obs.EvHypothesisTested:
			if e.Verdict == "supported" && e.Hypothesis != "" {
				frontier = e.Hypothesis
			}
		}
	}
	return out
}

// ClassStats is the per-scenario-class TTM view.
type ClassStats struct {
	Scenario       string  `json:"scenario"`
	Count          int     `json:"count"`
	Mitigated      int     `json:"mitigated"`
	Escalated      int     `json:"escalated"`
	MeanTTMMinutes float64 `json:"mean_ttm_minutes"`
	MinTTMMinutes  float64 `json:"min_ttm_minutes"`
	MaxTTMMinutes  float64 `json:"max_ttm_minutes"`
}

// Stats is the lake's aggregate view.
type Stats struct {
	Entries   int          `json:"entries"`
	Mitigated int          `json:"mitigated"`
	Escalated int          `json:"escalated"`
	Classes   []ClassStats `json:"classes"`
}

// MitigationCount is one row of the mitigation-frequency view.
type MitigationCount struct {
	Action string `json:"action"`
	Count  int    `json:"count"`
}

// TagCount is one row of the tag-index summary.
type TagCount struct {
	Tag   string `json:"tag"`
	Count int    `json:"count"`
}

// RecoverResult reports what Open replayed.
type RecoverResult struct {
	// Entries is the number of distinct incidents recovered.
	Entries int
	// Dropped counts torn/corrupt trailing lines discarded by the scan.
	Dropped int
	// Bytes is the size of the clean prefix.
	Bytes int64
}

// classAgg is the incrementally maintained per-class accumulator.
type classAgg struct {
	count, mitigated, escalated int
	ttmSum, ttmMin, ttmMax      float64
}

func (a *classAgg) add(e Entry) {
	if a.count == 0 || e.TTMMinutes < a.ttmMin {
		a.ttmMin = e.TTMMinutes
	}
	if a.count == 0 || e.TTMMinutes > a.ttmMax {
		a.ttmMax = e.TTMMinutes
	}
	a.count++
	a.ttmSum += e.TTMMinutes
	if e.Mitigated {
		a.mitigated++
	}
	if e.Escalated {
		a.escalated++
	}
}

// Lake is the open data lake: the append handle plus the in-memory
// entry set and derived views. Safe for concurrent use.
type Lake struct {
	mu      sync.Mutex
	ff      *journal.FrameFile
	entries []Entry
	byID    map[string]int

	classes     map[string]*classAgg
	mitigations map[string]int
	tagIndex    map[string][]string // tag -> entry IDs, append order
}

// Open opens (creating if necessary) the lake in dir, replays the
// existing entries, truncates any torn tail back to the last clean
// record boundary, rebuilds the derived views, and returns the append
// handle. Duplicate IDs in the log (a crash between the lake append
// and the gateway journal append, then a client retry) resolve
// last-write-wins.
func Open(dir string) (*Lake, RecoverResult, error) {
	l := &Lake{
		byID:        map[string]int{},
		classes:     map[string]*classAgg{},
		mitigations: map[string]int{},
		tagIndex:    map[string][]string{},
	}
	var replayed []Entry
	ff, good, dropped, err := OpenFrameLog(dir, func(payload []byte) bool {
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return false
		}
		if e.V > Version || e.ID == "" {
			return false
		}
		replayed = append(replayed, e)
		return true
	})
	if err != nil {
		return nil, RecoverResult{}, fmt.Errorf("lake: %w", err)
	}
	l.ff = ff
	for _, e := range replayed {
		l.absorb(e)
	}
	return l, RecoverResult{Entries: len(l.entries), Dropped: dropped, Bytes: good}, nil
}

// OpenFrameLog opens the raw frame log under dir, feeding each clean
// payload to accept — exposed so tests and tooling can scan a lake
// directory without constructing the full view state.
func OpenFrameLog(dir string, accept func(payload []byte) bool) (*journal.FrameFile, int64, int, error) {
	return journal.OpenFrameFile(dir, FileName, accept)
}

// absorb inserts e into the in-memory set and views. Caller holds no
// lock during Open; Append holds l.mu.
func (l *Lake) absorb(e Entry) {
	if i, ok := l.byID[e.ID]; ok {
		// Last-write-wins replace: views are rebuilt from scratch since
		// the displaced entry's contributions must be withdrawn.
		l.entries[i] = e
		l.rebuild()
		return
	}
	l.byID[e.ID] = len(l.entries)
	l.entries = append(l.entries, e)
	l.index(e)
}

// index adds one entry's view contributions.
func (l *Lake) index(e Entry) {
	agg := l.classes[e.Scenario]
	if agg == nil {
		agg = &classAgg{}
		l.classes[e.Scenario] = agg
	}
	agg.add(e)
	for _, a := range e.Applied {
		l.mitigations[a.String()]++
	}
	for _, tag := range e.Tags {
		l.tagIndex[tag] = append(l.tagIndex[tag], e.ID)
	}
}

// rebuild recomputes every derived view from the entry set.
func (l *Lake) rebuild() {
	l.classes = map[string]*classAgg{}
	l.mitigations = map[string]int{}
	l.tagIndex = map[string][]string{}
	for _, e := range l.entries {
		l.index(e)
	}
}

// Append encodes, writes, and fsyncs one entry, then folds it into the
// views, reporting the framed bytes written. When Append returns nil
// the entry is durable — the gateway calls it before acknowledging any
// 2xx.
func (l *Lake) Append(e Entry) (int, error) {
	if e.ID == "" {
		return 0, fmt.Errorf("lake: entry with empty id")
	}
	if e.V == 0 {
		e.V = Version
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("lake: encode: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n, err := l.ff.Append(payload)
	if err != nil {
		return 0, fmt.Errorf("lake: %w", err)
	}
	l.absorb(e)
	return n, nil
}

// Len reports the number of distinct incidents in the lake.
func (l *Lake) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Get returns the entry with the given ID.
func (l *Lake) Get(id string) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.byID[id]
	if !ok {
		return Entry{}, false
	}
	return l.entries[i], true
}

// Entries returns every entry in append order.
func (l *Lake) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// Stats returns the aggregate view, classes sorted by scenario name.
func (l *Lake) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := Stats{Entries: len(l.entries)}
	for name, agg := range l.classes {
		out.Mitigated += agg.mitigated
		out.Escalated += agg.escalated
		out.Classes = append(out.Classes, ClassStats{
			Scenario:       name,
			Count:          agg.count,
			Mitigated:      agg.mitigated,
			Escalated:      agg.escalated,
			MeanTTMMinutes: agg.ttmSum / float64(agg.count),
			MinTTMMinutes:  agg.ttmMin,
			MaxTTMMinutes:  agg.ttmMax,
		})
	}
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i].Scenario < out.Classes[j].Scenario })
	return out
}

// Mitigations returns the mitigation-frequency view, most frequent
// first (ties broken by action string).
func (l *Lake) Mitigations() []MitigationCount {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]MitigationCount, 0, len(l.mitigations))
	for a, n := range l.mitigations {
		out = append(out, MitigationCount{Action: a, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Action < out[j].Action
	})
	return out
}

// Tags returns the tag-index summary, sorted by tag.
func (l *Lake) Tags() []TagCount {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TagCount, 0, len(l.tagIndex))
	for tag, ids := range l.tagIndex {
		out = append(out, TagCount{Tag: tag, Count: len(ids)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// ByTag returns the entries carrying the tag, in append order.
func (l *Lake) ByTag(tag string) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := l.tagIndex[tag]
	out := make([]Entry, 0, len(ids))
	for _, id := range ids {
		out = append(out, l.entries[l.byID[id]])
	}
	return out
}

// Path returns the lake log's file path.
func (l *Lake) Path() string { return l.ff.Path() }

// Close closes the append handle. Every successfully Append'ed entry
// is already fsync'd.
func (l *Lake) Close() error { return l.ff.Close() }
