package aiops

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/scenarios"
)

// TestSoakInvariants drives a large randomized stream of incidents —
// random scenario, random hallucination rate, random OCE expertise,
// random context window — through the helper and asserts the invariants
// that must hold no matter how degraded the model is:
//
//  1. every session terminates (mitigated or escalated) within bounds;
//  2. TTM is positive and finite;
//  3. "mitigated" is never reported with live impact (the verifier and
//     the stability window guarantee it);
//  4. with the quantitative risk gate on, no executed plan ever makes a
//     service measurably worse (zero secondary impact);
//  5. token accounting is monotone and positive whenever the model ran.
//
// This is the repository's failure-injection harness: the model is the
// unreliable component, and the framework must convert its failures into
// time, never into damage.
func TestSoakInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	all := scenarios.All()
	rng := rand.New(rand.NewSource(20260706))

	const n = 150
	mitigated, escalated := 0, 0
	for i := 0; i < n; i++ {
		sc := all[rng.Intn(len(all))]
		seed := rng.Int63()
		in := sc.Build(rand.New(rand.NewSource(seed)))

		r := &harness.HelperRunner{
			KBase:         kbase,
			Config:        core.DefaultConfig(),
			Hallucination: rng.Float64() * 0.4,
			Expertise:     0.3 + rng.Float64()*0.7,
		}
		if rng.Intn(3) == 0 {
			r.Window = 256 + rng.Intn(4096)
		}
		res := r.Run(in, seed)

		if !res.Mitigated && !res.Escalated {
			t.Fatalf("incident %d (%s): session ended in limbo", i, sc.Name())
		}
		if res.TTM <= 0 {
			t.Fatalf("incident %d (%s): TTM = %v", i, sc.Name(), res.TTM)
		}
		if res.TTM.Hours() > 24 {
			t.Fatalf("incident %d (%s): TTM = %v, runaway session", i, sc.Name(), res.TTM)
		}
		if res.Mitigated {
			mitigated++
			// The live world must verify clean when the helper claims
			// mitigation (invariant 3).
			v := &mitigation.Verifier{World: in.World}
			if !v.Mitigated() {
				t.Fatalf("incident %d (%s): claimed mitigated but world has live impact", i, sc.Name())
			}
		} else {
			escalated++
		}
		if res.Secondary != 0 {
			t.Fatalf("incident %d (%s): secondary impact %d with risk gates on", i, sc.Name(), res.Secondary)
		}
		if res.LLMCalls > 0 && res.Tokens <= 0 {
			t.Fatalf("incident %d: %d LLM calls but %d tokens", i, res.LLMCalls, res.Tokens)
		}
	}
	t.Logf("soak: %d mitigated, %d escalated of %d", mitigated, escalated, n)
	if mitigated < n/2 {
		t.Fatalf("degraded helpers mitigated only %d/%d", mitigated, n)
	}
	_ = llm.DefaultPricing()
}
