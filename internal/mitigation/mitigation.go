// Package mitigation defines the action vocabulary operators use to
// mitigate incidents, an executor that applies actions to the simulated
// world, and a verifier that checks (via ground-truth traffic state)
// whether the incident's impact is gone.
//
// Actions are the currency between the helper's mitigation planner, the
// risk assessor (which evaluates candidate actions on a cloned world),
// and the OCE (who approves and triggers execution). The paper's §4.4
// critique of prior risk work — "they consider a small set of mitigations
// compared to the full breadth of what operators can use" — is why the
// vocabulary here is broad: isolation, de-isolation, restarts, controller
// overrides, config rollbacks, protocol kill switches, traffic moves,
// rate limits, monitor repairs and escalation.
package mitigation

import (
	"fmt"
	"time"

	"repro/internal/netsim"
)

// ActionKind enumerates mitigation primitives.
type ActionKind string

// The mitigation vocabulary.
const (
	IsolateLink      ActionKind = "isolate-link"     // Target: link ID
	DeisolateLink    ActionKind = "deisolate-link"   // Target: link ID
	IsolateDevice    ActionKind = "isolate-device"   // Target: node ID
	DeisolateDevice  ActionKind = "deisolate-device" // Target: node ID
	RestartDevice    ActionKind = "restart-device"   // Target: node ID
	RollbackChange   ActionKind = "rollback-change"  // Target: change record ID
	DisableProtocol  ActionKind = "disable-protocol" // Target: protocol name; Param: optional WAN scope
	EnableProtocol   ActionKind = "enable-protocol"  // Target: protocol name
	OverrideWAN      ActionKind = "override-wan"     // Target: WAN name; Param: "healthy"|"failed"
	MoveService      ActionKind = "move-service"     // Target: service; Param: WAN name to pin
	RateLimitService ActionKind = "rate-limit"       // Target: service; Param: fraction kept, e.g. "0.5"
	RepairMonitor    ActionKind = "repair-monitor"   // Target: monitor name
	Escalate         ActionKind = "escalate"         // Target: team name
	NoOp             ActionKind = "no-op"
)

// Action is one mitigation step.
type Action struct {
	Kind   ActionKind
	Target string
	Param  string
}

// String renders the action compactly for traces and reports.
func (a Action) String() string {
	if a.Param != "" {
		return fmt.Sprintf("%s(%s,%s)", a.Kind, a.Target, a.Param)
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.Target)
}

// Matches reports whether a satisfies the requirement r: kinds must
// match; an empty requirement Target or Param acts as a wildcard.
// Kind-only requirements let callers condition on a mitigation *class*
// (the §3 conditional TTM estimator does).
func (a Action) Matches(r Action) bool {
	if a.Kind != r.Kind {
		return false
	}
	if r.Target != "" && r.Target != a.Target {
		return false
	}
	return r.Param == "" || r.Param == a.Param
}

// Plan is an ordered mitigation proposal.
type Plan struct {
	Actions   []Action
	Rationale string
}

// String lists the plan's actions.
func (p Plan) String() string {
	s := ""
	for i, a := range p.Actions {
		if i > 0 {
			s += "; "
		}
		s += a.String()
	}
	return s
}

// Satisfies reports whether the plan contains actions matching every
// requirement in need (in any order).
func (p Plan) Satisfies(need []Action) bool {
	for _, req := range need {
		ok := false
		for _, a := range p.Actions {
			if a.Matches(req) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// ExecLatency is the simulated time each action kind costs to execute.
// Drastic actions take longer (automation + safety checks + propagation).
var ExecLatency = map[ActionKind]time.Duration{
	IsolateLink:      3 * time.Minute,
	DeisolateLink:    3 * time.Minute,
	IsolateDevice:    4 * time.Minute,
	DeisolateDevice:  4 * time.Minute,
	RestartDevice:    6 * time.Minute,
	RollbackChange:   8 * time.Minute,
	DisableProtocol:  5 * time.Minute,
	EnableProtocol:   5 * time.Minute,
	OverrideWAN:      2 * time.Minute,
	MoveService:      4 * time.Minute,
	RateLimitService: 3 * time.Minute,
	RepairMonitor:    10 * time.Minute,
	Escalate:         15 * time.Minute,
	NoOp:             0,
}

// Latency returns the execution latency for the action.
func (a Action) Latency() time.Duration { return ExecLatency[a.Kind] }

// Executor applies actions to a world. It records every execution in the
// change log (mitigations are changes too) and advances the clock by the
// action latency when Clocked is true.
type Executor struct {
	World   *netsim.World
	Clocked bool   // advance simulated time per action
	Actor   string // recorded in the change log ("oce", "helper", ...)

	// FailOn, when non-nil, is consulted before each action touches the
	// world; a non-nil return aborts the action with that error. Fault
	// injection hooks in here to simulate mitigation automation breaking
	// mid-plan. The action's latency is still charged — broken automation
	// burns the time before it reports failure.
	FailOn func(Action) error
}

// Execute applies one action. It returns an error for malformed targets;
// a well-formed action on an odd state (e.g. restarting a healthy device)
// succeeds as a no-op, as real automation does.
func (e *Executor) Execute(a Action) error {
	w := e.World
	if e.Clocked {
		w.Clock.Advance(a.Latency())
	}
	if e.FailOn != nil {
		if err := e.FailOn(a); err != nil {
			return err
		}
	}
	defer w.Invalidate()

	record := func(desc string, targets ...netsim.NodeID) {
		w.Changes.Add(netsim.ChangeRecord{
			At: w.Clock.Now(), Team: e.Actor, Kind: netsim.ChangeMitigation,
			Targets: targets, Description: desc,
		})
	}

	switch a.Kind {
	case IsolateLink, DeisolateLink:
		l := w.Net.MutLink(netsim.LinkID(a.Target))
		if l == nil {
			return fmt.Errorf("mitigation: unknown link %q", a.Target)
		}
		l.Isolated = a.Kind == IsolateLink
		record(a.String(), l.A, l.B)
	case IsolateDevice, DeisolateDevice:
		nd := w.Net.MutNode(netsim.NodeID(a.Target))
		if nd == nil {
			return fmt.Errorf("mitigation: unknown device %q", a.Target)
		}
		nd.Isolated = a.Kind == IsolateDevice
		record(a.String(), nd.ID)
	case RestartDevice:
		nd := w.Net.MutNode(netsim.NodeID(a.Target))
		if nd == nil {
			return fmt.Errorf("mitigation: unknown device %q", a.Target)
		}
		nd.Healthy = true
		w.Logf(nd.ID, netsim.SevInfo, "device restarted by %s", e.Actor)
		record(a.String(), nd.ID)
	case RollbackChange:
		var rec *netsim.ChangeRecord
		for _, r := range w.Changes.All() {
			if r.ID == a.Target {
				rr := r
				rec = &rr
				break
			}
		}
		if rec == nil {
			return fmt.Errorf("mitigation: unknown change %q", a.Target)
		}
		// Rolling back a change resolves the faults it introduced.
		if fid := rec.Details["fault_id"]; fid != "" {
			w.Resolve(fid)
		}
		record(a.String())
	case DisableProtocol, EnableProtocol:
		enable := a.Kind == EnableProtocol
		for _, nd := range w.Net.Nodes() {
			if a.Param != "" && nd.WANName != a.Param {
				continue
			}
			// Skip nodes the write wouldn't change, so a no-op toggle
			// doesn't copy-on-write every node in the fleet.
			if cur, has := nd.Protocols[a.Target]; (has || enable) && cur != enable {
				w.Net.MutNode(nd.ID).Protocols[a.Target] = enable
			}
		}
		record(a.String())
	case OverrideWAN:
		if w.Ctl == nil {
			return fmt.Errorf("mitigation: no traffic controller in this world")
		}
		switch a.Param {
		case "healthy":
			w.Ctl.Override(a.Target, true)
		case "failed":
			w.Ctl.Override(a.Target, false)
		case "clear":
			w.Ctl.ClearOverride(a.Target)
		default:
			return fmt.Errorf("mitigation: override-wan param %q must be healthy|failed|clear", a.Param)
		}
		record(a.String())
	case MoveService:
		for _, f := range w.Flows() {
			if f.Service == a.Target {
				if f.Attrs == nil {
					f.Attrs = make(map[string]string)
				}
				f.Attrs["wan"] = a.Param
			}
		}
		record(a.String())
	case RateLimitService:
		frac, err := parseFraction(a.Param)
		if err != nil {
			return fmt.Errorf("mitigation: rate-limit param: %w", err)
		}
		for _, f := range w.Flows() {
			if f.Service == a.Target {
				f.DemandGbps *= frac
			}
		}
		record(a.String())
	case RepairMonitor:
		w.Resolve("monitor-broken:" + a.Target)
		record(a.String())
	case Escalate:
		w.Logf("incident-manager", netsim.SevWarning, "escalated to %s by %s", a.Target, e.Actor)
		record(a.String())
	case NoOp:
	default:
		return fmt.Errorf("mitigation: unknown action kind %q", a.Kind)
	}
	return nil
}

// ExecutePlan applies every action in the plan, stopping at the first
// error.
func (e *Executor) ExecutePlan(p Plan) error {
	for _, a := range p.Actions {
		if err := e.Execute(a); err != nil {
			return err
		}
	}
	return nil
}

func parseFraction(s string) (float64, error) {
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err != nil {
		return 0, fmt.Errorf("bad fraction %q", s)
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("fraction %v outside [0,1]", f)
	}
	return f, nil
}

// Verifier checks whether the incident impact is gone after mitigation.
type Verifier struct {
	World *netsim.World
	// LossBudget is the residual demand-weighted loss considered
	// mitigated (SLAs tolerate small residuals). Default 0.5%.
	LossBudget float64
}

// Mitigated recomputes traffic and reports whether every service's loss
// is within budget and no device is wedged-unhealthy (isolated devices
// are fine: isolation is a legitimate mitigation). Checking per service
// rather than in aggregate matters: a small service blackholed behind
// huge bulk flows barely moves the overall rate.
func (v *Verifier) Mitigated() bool {
	budget := v.LossBudget
	if budget == 0 {
		budget = 0.005
	}
	rep := v.World.Recompute()
	if rep.OverallLossRate() > budget {
		return false
	}
	for svc, ss := range rep.ServiceStats {
		if ss.LossRate > budget {
			return false
		}
		// Latency SLO: a mitigation that leaves a service far above its
		// baseline latency has not cleared the impact.
		if base := v.World.LatencyBaseline[svc]; base > 0 && ss.MaxLatency > 1.5*base+1 {
			return false
		}
	}
	for _, nd := range v.World.Net.Nodes() {
		if !nd.Healthy && !nd.Isolated {
			return false
		}
	}
	return true
}

// ServiceMitigated reports whether one service's loss is within budget.
func (v *Verifier) ServiceMitigated(service string) bool {
	budget := v.LossBudget
	if budget == 0 {
		budget = 0.005
	}
	rep := v.World.Recompute()
	ss := rep.ServiceStats[service]
	return ss == nil || ss.LossRate <= budget
}
