// Command replay implements §3's scale-up evaluation: generate a
// historical incident corpus (simulated operators resolving incidents
// unassisted, original TTM recorded), replay every incident through the
// helper, and report TTM savings over matching mitigations, the mismatch
// fraction, and conditional estimates for mismatches.
//
// Usage:
//
//	replay [-n 150] [-seed 1]
//	replay -faultrate 0.2              # degraded telemetry, resilient helper
//	replay -faultrate 0.2 -naive       # same faults, no resilience
//	replay -trace-out events.jsonl -metrics-out metrics.prom
package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/cliflags"
	"repro/internal/replayer"
)

func main() {
	n := flag.Int("n", 150, "historical incidents to generate and replay")
	c := cliflags.Register(flag.CommandLine, 1)
	flag.Parse()
	c.MustValidate()
	c.StartPProf()
	c.ApplyCaches()

	sys := aiops.New(c.SystemOptions()...)
	rep := sys.Replay(*n, c.Seed)

	fmt.Print(replayer.RenderReport(rep))
	c.MustExport()
}
