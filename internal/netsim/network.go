package netsim

import (
	"fmt"
	"sort"
)

// Network is the device/link graph. It is not safe for concurrent
// mutation; experiments run single-threaded against a simulated clock,
// and the evaluation harnesses clone Networks per trial instead of
// sharing them.
type Network struct {
	nodes map[NodeID]*Node
	links map[LinkID]*Link
	adj   map[NodeID][]LinkID // sorted for determinism
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		nodes: make(map[NodeID]*Node),
		links: make(map[LinkID]*Link),
		adj:   make(map[NodeID][]LinkID),
	}
}

// AddNode inserts a node. Unset health defaults to healthy. It returns the
// inserted node so builders can tweak attributes. AddNode panics on
// duplicate IDs: topology construction bugs should fail loudly.
func (n *Network) AddNode(node Node) *Node {
	if node.ID == "" {
		panic("netsim: node with empty ID")
	}
	if _, ok := n.nodes[node.ID]; ok {
		panic(fmt.Sprintf("netsim: duplicate node %q", node.ID))
	}
	node.Healthy = true
	if node.Protocols == nil {
		node.Protocols = make(map[string]bool)
	}
	if node.Attrs == nil {
		node.Attrs = make(map[string]string)
	}
	stored := node
	n.nodes[node.ID] = &stored
	return &stored
}

// AddLink inserts an undirected link between existing nodes and returns it.
// The link ID is derived from the endpoints via MakeLinkID.
func (n *Network) AddLink(a, b NodeID, capacityGbps, propDelayMs float64) *Link {
	if _, ok := n.nodes[a]; !ok {
		panic(fmt.Sprintf("netsim: link endpoint %q does not exist", a))
	}
	if _, ok := n.nodes[b]; !ok {
		panic(fmt.Sprintf("netsim: link endpoint %q does not exist", b))
	}
	id := MakeLinkID(a, b)
	if _, ok := n.links[id]; ok {
		panic(fmt.Sprintf("netsim: duplicate link %q", id))
	}
	l := &Link{ID: id, A: a, B: b, CapacityGbps: capacityGbps, PropDelayMs: propDelayMs}
	n.links[id] = l
	n.adj[a] = insertSorted(n.adj[a], id)
	n.adj[b] = insertSorted(n.adj[b], id)
	return l
}

func insertSorted(ids []LinkID, id LinkID) []LinkID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// Node returns the node with the given ID, or nil if absent.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Link returns the link with the given ID, or nil if absent.
func (n *Network) Link(id LinkID) *Link { return n.links[id] }

// LinkBetween returns the link connecting a and b, or nil if none exists.
func (n *Network) LinkBetween(a, b NodeID) *Link { return n.links[MakeLinkID(a, b)] }

// NumNodes reports the number of nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumLinks reports the number of links.
func (n *Network) NumLinks() int { return len(n.links) }

// Nodes returns all nodes sorted by ID. The slice is fresh; the pointed-to
// nodes are live.
func (n *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		out = append(out, nd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Links returns all links sorted by ID. The slice is fresh; the pointed-to
// links are live.
func (n *Network) Links() []*Link {
	out := make([]*Link, 0, len(n.links))
	for _, l := range n.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodesByKind returns all nodes of the given kind, sorted by ID.
func (n *Network) NodesByKind(kind NodeKind) []*Node {
	var out []*Node
	for _, nd := range n.Nodes() {
		if nd.Kind == kind {
			out = append(out, nd)
		}
	}
	return out
}

// NodesInRegion returns all nodes in the given region, sorted by ID.
func (n *Network) NodesInRegion(region string) []*Node {
	var out []*Node
	for _, nd := range n.Nodes() {
		if nd.Region == region {
			out = append(out, nd)
		}
	}
	return out
}

// Regions returns the sorted set of region names present in the network.
func (n *Network) Regions() []string {
	seen := make(map[string]bool)
	for _, nd := range n.nodes {
		if nd.Region != "" {
			seen[nd.Region] = true
		}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// IncidentLinks returns the IDs of links adjacent to id, sorted.
func (n *Network) IncidentLinks(id NodeID) []LinkID {
	out := make([]LinkID, len(n.adj[id]))
	copy(out, n.adj[id])
	return out
}

// usableNeighbors yields (neighbor, link) pairs reachable from id over
// usable links to usable nodes, in deterministic order. allow filters the
// nodes considered; nil allows every node.
func (n *Network) usableNeighbors(id NodeID, allow func(*Node) bool) []neighbor {
	var out []neighbor
	for _, lid := range n.adj[id] {
		l := n.links[lid]
		if !l.Usable() {
			continue
		}
		other := n.nodes[l.Other(id)]
		if !other.Usable() {
			continue
		}
		if allow != nil && !allow(other) {
			continue
		}
		out = append(out, neighbor{node: other.ID, link: lid})
	}
	return out
}

type neighbor struct {
	node NodeID
	link LinkID
}

// Clone returns a deep copy of the network. Risk assessment relies on
// cloning to evaluate "what if we applied this mitigation" without
// touching live state.
func (n *Network) Clone() *Network {
	c := NewNetwork()
	for id, nd := range n.nodes {
		c.nodes[id] = nd.clone()
	}
	for id, l := range n.links {
		c.links[id] = l.clone()
	}
	for id, ids := range n.adj {
		cp := make([]LinkID, len(ids))
		copy(cp, ids)
		c.adj[id] = cp
	}
	return c
}
