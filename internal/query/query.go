// Package query implements a small structured query language over the
// simulated deployment's telemetry — links, devices, services and log
// events — together with a schema verifier and an executor.
//
// It exists to reproduce §4.4's "verifiable LLM-based tools" research
// direction: LLMs can generate queries, "but we need to verify the
// outputs they generate if we want to use them in an automated
// pipeline". The pipeline built on this package (tools.NLQueryTool) has
// the model translate a natural-language question into this DSL, runs
// the verifier, feeds verification errors back to the model for repair,
// and only executes queries that pass — the text-to-SQL-with-
// consistency-checks loop the paper sketches.
//
// Grammar (one line):
//
//	ENTITY [where FIELD OP VALUE [and FIELD OP VALUE ...]]
//	       [order by FIELD [asc|desc]] [limit N]
//
// e.g. "links where util > 0.9 order by util desc limit 5".
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/netsim"
)

// Entity is a queryable table.
type Entity string

// Queryable entities.
const (
	Links    Entity = "links"
	Devices  Entity = "devices"
	Services Entity = "services"
	Events   Entity = "events"
)

// schema maps each entity to its queryable fields.
var schema = map[Entity]map[string]bool{
	Links:    {"id": true, "util": true, "loss": true, "capacity": true, "down": true, "isolated": true},
	Devices:  {"id": true, "kind": true, "region": true, "healthy": true, "isolated": true},
	Services: {"name": true, "demand": true, "delivered": true, "loss": true, "unrouted": true},
	Events:   {"node": true, "severity": true, "message": true, "age_min": true},
}

// Op is a comparison operator.
type Op string

// Comparison operators.
const (
	OpEq       Op = "="
	OpNe       Op = "!="
	OpGt       Op = ">"
	OpLt       Op = "<"
	OpGe       Op = ">="
	OpLe       Op = "<="
	OpContains Op = "contains"
)

var validOps = map[Op]bool{OpEq: true, OpNe: true, OpGt: true, OpLt: true, OpGe: true, OpLe: true, OpContains: true}

// Cond is one where-clause condition.
type Cond struct {
	Field string
	Op    Op
	Value string
}

// Query is a parsed, executable query.
type Query struct {
	Entity  Entity
	Where   []Cond
	OrderBy string
	Desc    bool
	Limit   int
}

// String renders the query back to DSL text.
func (q Query) String() string {
	var b strings.Builder
	b.WriteString(string(q.Entity))
	for i, c := range q.Where {
		if i == 0 {
			b.WriteString(" where ")
		} else {
			b.WriteString(" and ")
		}
		fmt.Fprintf(&b, "%s %s %s", c.Field, c.Op, c.Value)
	}
	if q.OrderBy != "" {
		fmt.Fprintf(&b, " order by %s", q.OrderBy)
		if q.Desc {
			b.WriteString(" desc")
		} else {
			b.WriteString(" asc")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " limit %d", q.Limit)
	}
	return b.String()
}

// Parse parses DSL text into a Query. Parse is purely syntactic; run
// Verify for schema checks.
func Parse(text string) (Query, error) {
	toks := strings.Fields(strings.ToLower(strings.TrimSpace(text)))
	if len(toks) == 0 {
		return Query{}, fmt.Errorf("query: empty")
	}
	q := Query{Entity: Entity(toks[0])}
	i := 1
	if i < len(toks) && toks[i] == "where" {
		i++
		for {
			if i+2 >= len(toks)+1 && i+2 > len(toks) {
				return Query{}, fmt.Errorf("query: incomplete condition at %q", strings.Join(toks[i:], " "))
			}
			if i+3 > len(toks) {
				return Query{}, fmt.Errorf("query: incomplete condition")
			}
			q.Where = append(q.Where, Cond{Field: toks[i], Op: Op(toks[i+1]), Value: toks[i+2]})
			i += 3
			if i < len(toks) && toks[i] == "and" {
				i++
				continue
			}
			break
		}
	}
	if i+1 < len(toks) && toks[i] == "order" && toks[i+1] == "by" {
		if i+2 >= len(toks) {
			return Query{}, fmt.Errorf("query: order by needs a field")
		}
		q.OrderBy = toks[i+2]
		i += 3
		if i < len(toks) && (toks[i] == "asc" || toks[i] == "desc") {
			q.Desc = toks[i] == "desc"
			i++
		}
	}
	if i < len(toks) && toks[i] == "limit" {
		if i+1 >= len(toks) {
			return Query{}, fmt.Errorf("query: limit needs a number")
		}
		n, err := strconv.Atoi(toks[i+1])
		if err != nil {
			return Query{}, fmt.Errorf("query: bad limit %q", toks[i+1])
		}
		q.Limit = n
		i += 2
	}
	if i != len(toks) {
		return Query{}, fmt.Errorf("query: trailing tokens %q", strings.Join(toks[i:], " "))
	}
	return q, nil
}

// Verify checks the query against the schema: known entity, known
// fields, valid operators, sane limit. This is the consistency check
// that gates LLM-generated queries.
func Verify(q Query) error {
	fields, ok := schema[q.Entity]
	if !ok {
		return fmt.Errorf("query: unknown entity %q (have links, devices, services, events)", q.Entity)
	}
	for _, c := range q.Where {
		if !fields[c.Field] {
			return fmt.Errorf("query: entity %s has no field %q", q.Entity, c.Field)
		}
		if !validOps[c.Op] {
			return fmt.Errorf("query: invalid operator %q", c.Op)
		}
	}
	if q.OrderBy != "" && !fields[q.OrderBy] {
		return fmt.Errorf("query: cannot order %s by unknown field %q", q.Entity, q.OrderBy)
	}
	if q.Limit < 0 || q.Limit > 10000 {
		return fmt.Errorf("query: limit %d out of range", q.Limit)
	}
	return nil
}

// Row is one result row: ordered field/value pairs.
type Row struct {
	Fields []string
	Values []string
}

// Get returns the value of a field in the row ("" if absent).
func (r Row) Get(field string) string {
	for i, f := range r.Fields {
		if f == field {
			return r.Values[i]
		}
	}
	return ""
}

// String renders the row as "k=v k=v".
func (r Row) String() string {
	parts := make([]string, len(r.Fields))
	for i := range r.Fields {
		parts[i] = r.Fields[i] + "=" + r.Values[i]
	}
	return strings.Join(parts, " ")
}

// Execute runs a verified query against the world. Executing an
// unverified query returns Verify's error first.
func Execute(q Query, w *netsim.World) ([]Row, error) {
	if err := Verify(q); err != nil {
		return nil, err
	}
	var rows []Row
	switch q.Entity {
	case Links:
		rep := w.Report()
		for _, l := range w.Net.Links() {
			ls := rep.LinkStats[l.ID]
			rows = append(rows, Row{
				Fields: []string{"id", "util", "loss", "capacity", "down", "isolated"},
				Values: []string{
					string(l.ID), f(ls.Utilization), f(ls.LossRate), f(l.CapacityGbps),
					b(l.Down), b(l.Isolated),
				},
			})
		}
	case Devices:
		for _, nd := range w.Net.Nodes() {
			rows = append(rows, Row{
				Fields: []string{"id", "kind", "region", "healthy", "isolated"},
				Values: []string{string(nd.ID), nd.Kind.String(), nd.Region, b(nd.Healthy), b(nd.Isolated)},
			})
		}
	case Services:
		rep := w.Report()
		names := make([]string, 0, len(rep.ServiceStats))
		for n := range rep.ServiceStats {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ss := rep.ServiceStats[n]
			rows = append(rows, Row{
				Fields: []string{"name", "demand", "delivered", "loss", "unrouted"},
				Values: []string{n, f(ss.Demand), f(ss.Delivered), f(ss.LossRate), strconv.Itoa(ss.Unrouted)},
			})
		}
	case Events:
		now := w.Clock.Now()
		for _, e := range w.Events() {
			rows = append(rows, Row{
				Fields: []string{"node", "severity", "message", "age_min"},
				Values: []string{string(e.Node), strings.ToLower(e.Severity.String()), strings.ToLower(e.Message), f((now - e.At).Minutes())},
			})
		}
	}

	out := rows[:0]
	for _, r := range rows {
		keep := true
		for _, c := range q.Where {
			if !match(r.Get(c.Field), c) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	rows = out

	if q.OrderBy != "" {
		sort.SliceStable(rows, func(i, j int) bool {
			a, bz := rows[i].Get(q.OrderBy), rows[j].Get(q.OrderBy)
			af, aerr := strconv.ParseFloat(a, 64)
			bf, berr := strconv.ParseFloat(bz, 64)
			var less bool
			if aerr == nil && berr == nil {
				less = af < bf
			} else {
				less = a < bz
			}
			if q.Desc {
				return !less && a != bz
			}
			return less
		})
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows, nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
func b(v bool) string    { return strconv.FormatBool(v) }

func match(val string, c Cond) bool {
	switch c.Op {
	case OpEq:
		return val == c.Value
	case OpNe:
		return val != c.Value
	case OpContains:
		return strings.Contains(val, c.Value)
	}
	av, aerr := strconv.ParseFloat(val, 64)
	bv, berr := strconv.ParseFloat(c.Value, 64)
	if aerr != nil || berr != nil {
		return false
	}
	switch c.Op {
	case OpGt:
		return av > bv
	case OpLt:
		return av < bv
	case OpGe:
		return av >= bv
	case OpLe:
		return av <= bv
	}
	return false
}

var _ = time.Minute
