package fleet

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/incident"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/scenarios"
)

func currentKB() *kb.KB {
	k := kb.Default()
	kb.ApplyFastpathUpdate(k)
	return k
}

// fixedScenario builds minimal instances with a chosen severity — the
// scheduler only reads Incident.Severity and hands the instance to the
// runner, so scheduling-discipline tests can control priorities exactly.
type fixedScenario struct {
	name string
	sev  int
}

func (s *fixedScenario) Name() string           { return s.name }
func (s *fixedScenario) RootCauseClass() string { return "test" }
func (s *fixedScenario) Build(rng *rand.Rand) *scenarios.Instance {
	return &scenarios.Instance{Incident: &incident.Incident{Severity: s.sev}, Scenario: s}
}

// fixedRunner resolves every incident in a constant time, making queue
// dynamics a pure function of the arrival process.
type fixedRunner struct{ ttm time.Duration }

func (r *fixedRunner) Name() string { return "fixed" }
func (r *fixedRunner) Run(in *scenarios.Instance, seed int64) harness.Result {
	return harness.Result{Scenario: in.Scenario.Name(), Mitigated: true, Correct: true, TTM: r.ttm}
}

// TestResolutionAccountingExact is the scheduler's bookkeeping
// invariant: for every admitted arrival, resolution time equals queue
// wait plus the session's penalized TTM exactly; shed arrivals carry
// exactly the escalation penalty.
func TestResolutionAccountingExact(t *testing.T) {
	t.Parallel()
	rep := Simulate(Config{
		OCEs: 2, ArrivalsPerHour: 6, Incidents: 120, Seed: 7, QueueLimit: 4,
		Runner: &harness.ControlRunner{KBase: currentKB()},
	})
	for _, o := range rep.Outcomes {
		if o.Shed {
			if o.Resolution != harness.EscalationPenalty {
				t.Fatalf("shed arrival %d: resolution %v != escalation penalty", o.Index, o.Resolution)
			}
			if o.Queue != 0 || o.Responder != -1 {
				t.Fatalf("shed arrival %d queued or got a responder", o.Index)
			}
			continue
		}
		if got, want := o.Resolution, o.Queue+o.Result.PenalizedTTM(); got != want {
			t.Fatalf("arrival %d: resolution %v != queue %v + penalized TTM %v", o.Index, got, o.Queue, o.Result.PenalizedTTM())
		}
		if o.Handling != o.Result.TTM {
			t.Fatalf("arrival %d: handling %v != session TTM %v", o.Index, o.Handling, o.Result.TTM)
		}
		if o.StartedAt < o.ArrivedAt {
			t.Fatalf("arrival %d started before it arrived", o.Index)
		}
	}
}

// TestNoLostNoDuplicateUnderBackpressureAndDrain is the soak-style
// conservation invariant: under heavy load with a tight admission bound,
// every arrival is either admitted (exactly one responder, completed
// before the end of the run) or shed — never lost, never duplicated —
// and the pool drains completely after the last arrival.
func TestNoLostNoDuplicateUnderBackpressureAndDrain(t *testing.T) {
	t.Parallel()
	const n = 400
	rep := Simulate(Config{
		OCEs: 3, ArrivalsPerHour: 12, Incidents: n, Seed: 11, QueueLimit: 5,
		Workers: 8,
		Runner:  &fixedRunner{ttm: 45 * time.Minute},
		Mix:     []scenarios.Scenario{&fixedScenario{name: "flat", sev: 1}},
	})
	if len(rep.Outcomes) != n {
		t.Fatalf("outcomes = %d, want %d", len(rep.Outcomes), n)
	}
	seen := map[int]bool{}
	var lastArrival, lastEnd time.Duration
	for _, o := range rep.Outcomes {
		if seen[o.Index] {
			t.Fatalf("arrival %d recorded twice", o.Index)
		}
		seen[o.Index] = true
		if o.ArrivedAt > lastArrival {
			lastArrival = o.ArrivedAt
		}
		if !o.Shed {
			if o.Responder < 0 || o.Responder >= 3 {
				t.Fatalf("admitted arrival %d has responder %d", o.Index, o.Responder)
			}
			if end := o.StartedAt + o.Handling; end > lastEnd {
				lastEnd = end
			}
		}
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			t.Fatalf("arrival %d lost", i)
		}
	}
	if rep.Admitted+rep.Shed != n {
		t.Fatalf("admitted %d + shed %d != %d", rep.Admitted, rep.Shed, n)
	}
	if rep.Shed == 0 {
		t.Fatal("backpressure test shed nothing; load not saturating")
	}
	if rep.Drain != lastEnd-lastArrival {
		t.Fatalf("drain %v != last completion %v - last arrival %v", rep.Drain, lastEnd, lastArrival)
	}
}

// TestShedRateMonotoneInOfferedLoad: admission-control shedding must be
// weakly monotone in offered load over the same pool and bound.
func TestShedRateMonotoneInOfferedLoad(t *testing.T) {
	t.Parallel()
	prev := -1.0
	for _, rate := range []float64{0.5, 2, 4, 8, 16} {
		rep := Simulate(Config{
			OCEs: 2, ArrivalsPerHour: rate, Incidents: 200, Seed: 5, QueueLimit: 4,
			Runner: &fixedRunner{ttm: 60 * time.Minute},
			Mix:    []scenarios.Scenario{&fixedScenario{name: "flat", sev: 1}},
		})
		if rep.ShedRate < prev {
			t.Fatalf("shed rate fell from %v to %v at rate %v/h", prev, rep.ShedRate, rate)
		}
		prev = rep.ShedRate
	}
	if prev == 0 {
		t.Fatal("ladder never shed; bound not exercised")
	}
}

// TestSeverityPriorityAndAging: under pure severity priority, severe
// incidents wait less than routine ones on the same saturated pool; with
// aging enabled, the routine class's worst-case wait shrinks (aged
// incidents eventually outrank fresh severe ones), preventing
// starvation.
func TestSeverityPriorityAndAging(t *testing.T) {
	t.Parallel()
	mix := []scenarios.Scenario{
		&fixedScenario{name: "routine", sev: 0},
		&fixedScenario{name: "severe", sev: 3},
	}
	run := func(aging time.Duration) *Report {
		return Simulate(Config{
			OCEs: 2, ArrivalsPerHour: 4, Incidents: 300, Seed: 9,
			AgingStep: aging,
			Runner:    &fixedRunner{ttm: 50 * time.Minute},
			Mix:       mix,
		})
	}
	queueStats := func(rep *Report) (sevMean, routMean, routMax time.Duration) {
		var sevSum, routSum time.Duration
		var sevN, routN int
		for _, o := range rep.Outcomes {
			if o.Severity == 3 {
				sevSum += o.Queue
				sevN++
			} else {
				routSum += o.Queue
				routN++
				if o.Queue > routMax {
					routMax = o.Queue
				}
			}
		}
		return sevSum / time.Duration(sevN), routSum / time.Duration(routN), routMax
	}

	pure := run(-1) // severity only, no aging
	sevMean, routMean, pureMax := queueStats(pure)
	if sevMean >= routMean {
		t.Fatalf("severity priority inverted: sev3 mean queue %v >= sev0 %v", sevMean, routMean)
	}
	aged := run(20 * time.Minute)
	_, _, agedMax := queueStats(aged)
	if agedMax >= pureMax {
		t.Fatalf("aging did not cap starvation: worst sev0 wait %v (aged) >= %v (pure severity)", agedMax, pureMax)
	}
}

// renderAll flattens a report plus its observability exports into one
// comparable byte string.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	sink := obs.NewSink()
	rep := Simulate(Config{
		OCEs: 2, ArrivalsPerHour: 5, Incidents: 30, Seed: 21, QueueLimit: 3,
		Workers: workers,
		Runner:  &harness.HelperRunner{KBase: currentKB(), Config: core.DefaultConfig()},
		Obs:     sink,
	})
	var b strings.Builder
	for _, o := range rep.Outcomes {
		fmt.Fprintf(&b, "%d %s sev%d shed=%v arr=%v start=%v q=%v h=%v res=%v resp=%d\n",
			o.Index, o.Scenario, o.Severity, o.Shed, o.ArrivedAt, o.StartedAt, o.Queue, o.Handling, o.Resolution, o.Responder)
	}
	fmt.Fprintf(&b, "%+v\n", Report{
		Admitted: rep.Admitted, Shed: rep.Shed, MeanQueue: rep.MeanQueue, P95Queue: rep.P95Queue,
		MeanResolution: rep.MeanResolution, P50Resolution: rep.P50Resolution,
		P95Resolution: rep.P95Resolution, P99Resolution: rep.P99Resolution,
		Utilization: rep.Utilization, MitigatedRate: rep.MitigatedRate, ShedRate: rep.ShedRate,
		PeakQueueDepth: rep.PeakQueueDepth, Drain: rep.Drain,
	})
	var ev, m bytes.Buffer
	if err := sink.WriteEvents(&ev); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	b.Write(ev.Bytes())
	b.Write(m.Bytes())
	return b.String()
}

// TestWorkerByteIdentity is the satellite audit: with sessions executing
// concurrently, arrival order, scenario builds, severities, OCE
// assignment, every outcome field, the event log and the metrics dump
// must be byte-identical between workers=1 and workers=8.
func TestWorkerByteIdentity(t *testing.T) {
	t.Parallel()
	one := renderAll(t, 1)
	eight := renderAll(t, 8)
	if one != eight {
		t.Fatalf("fleet output diverges between workers=1 and workers=8:\n--- w1 ---\n%.2000s\n--- w8 ---\n%.2000s", one, eight)
	}
	if !strings.Contains(one, "fleet-incident") {
		t.Fatal("no fleet events captured")
	}
}

// TestFIFOMatchesLegacySemantics: with the legacy discipline the k-th
// arrival starts at max(arrival, k-th free slot) — queue waits are FIFO
// and never reorder across arrivals.
func TestFIFOMatchesLegacySemantics(t *testing.T) {
	t.Parallel()
	rep := Simulate(Config{
		OCEs: 2, ArrivalsPerHour: 6, Incidents: 80, Seed: 3, Policy: FIFO,
		Runner: &fixedRunner{ttm: 40 * time.Minute},
		Mix:    []scenarios.Scenario{&fixedScenario{name: "flat", sev: 2}},
	})
	for i := 1; i < len(rep.Outcomes); i++ {
		if rep.Outcomes[i].StartedAt < rep.Outcomes[i-1].StartedAt {
			t.Fatalf("FIFO reordered: arrival %d started %v before arrival %d at %v",
				i, rep.Outcomes[i].StartedAt, i-1, rep.Outcomes[i-1].StartedAt)
		}
	}
	if rep.Shed != 0 {
		t.Fatal("unbounded legacy mode shed incidents")
	}
}
