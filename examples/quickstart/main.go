// Quickstart: generate one incident on the simulated cloud, let the
// OCE-helper work it, and inspect the outcome.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A System bundles the knowledge base (current: base networking
	// knowledge + the fastpath rollout update), an incident history and
	// the helper configuration.
	sys := aiops.New(aiops.WithSeed(1))

	// Give the similar-incidents tool and the one-shot baseline some
	// history to retrieve from.
	sys.GenerateHistory(60, 99)

	// Generate a gray-failure incident: a fabric link silently
	// corrupting frames.
	in, err := sys.Spawn("gray-link", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("incident:", in.Incident.String())

	// Run the iterative helper (hypothesis former -> tester ->
	// mitigation planner, OCE in the loop) and show its reasoning.
	res, trace := sys.Trace(in, 1)
	fmt.Println("\nhelper session:")
	fmt.Print(trace)

	fmt.Printf("\nmitigated=%v correct=%v TTM=%s plan=%s\n",
		res.Mitigated, res.Correct, res.TTM.Truncate(1e9), res.Applied)

	// Compare with the one-shot baseline on an identical incident.
	in2, _ := sys.Spawn("gray-link", 1)
	osRes := sys.OneShot(in2, 1)
	fmt.Printf("one-shot baseline: mitigated=%v correct=%v TTM=%s\n",
		osRes.Mitigated, osRes.Correct, osRes.PenalizedTTM().Truncate(1e9))

	// And with an unassisted on-call engineer.
	in3, _ := sys.Spawn("gray-link", 1)
	ctl := sys.Unassisted(in3, 1)
	fmt.Printf("unassisted OCE:    mitigated=%v correct=%v TTM=%s\n",
		ctl.Mitigated, ctl.Correct, ctl.PenalizedTTM().Truncate(1e9))
}
