package gateway

// The gateway's face of the incident data lake: ingest accounting and
// the read-only GET /v1/lake/... query surface over the lake's derived
// views. Every endpoint is auth'd like the rest of /v1 and answers 503
// (code "unavailable") when the daemon runs without -lake, mirroring
// how /metrics behaves without a sink.

import (
	"net/http"

	"repro/internal/lake"
	"repro/internal/obs"
)

// lakeAppend ingests one entry, fsyncs it, and accounts for it.
func (s *Server) lakeAppend(e lake.Entry) error {
	n, err := s.cfg.Lake.Append(e)
	if err != nil {
		return err
	}
	if s.cfg.Sink != nil {
		reg := s.cfg.Sink.Registry()
		reg.Inc(obs.MLakeEntries, nil, 1)
		reg.Inc(obs.MLakeBytes, nil, float64(n))
	}
	return nil
}

// requireLake refuses lake queries on a lakeless daemon.
func (s *Server) requireLake(w http.ResponseWriter) bool {
	if s.cfg.Lake == nil {
		writeErr(w, http.StatusServiceUnavailable, CodeUnavailable, "", "data lake disabled (no -lake directory)")
		return false
	}
	return true
}

// lakeEntrySummary is the list-shaped view of a lake entry: the header
// fields without the event stream, which only the by-ID fetch carries.
type lakeEntrySummary struct {
	ID         string   `json:"id"`
	Scenario   string   `json:"scenario"`
	Runner     string   `json:"runner,omitempty"`
	Region     string   `json:"region,omitempty"`
	Severity   int      `json:"severity"`
	Mitigated  bool     `json:"mitigated"`
	Escalated  bool     `json:"escalated"`
	TTMMinutes float64  `json:"ttm_minutes"`
	Rounds     int      `json:"rounds"`
	Chain      []string `json:"chain,omitempty"`
	Tags       []string `json:"tags,omitempty"`
}

func summarize(e lake.Entry) lakeEntrySummary {
	return lakeEntrySummary{
		ID: e.ID, Scenario: e.Scenario, Runner: e.Runner, Region: e.Region,
		Severity: e.Severity, Mitigated: e.Mitigated, Escalated: e.Escalated,
		TTMMinutes: e.TTMMinutes, Rounds: e.Rounds,
		Chain: e.Chain, Tags: e.Tags,
	}
}

// handleLakeStats serves GET /v1/lake/stats: totals plus the
// per-scenario-class TTM aggregates.
func (s *Server) handleLakeStats(w http.ResponseWriter, r *http.Request, _ string) {
	if !s.requireLake(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Lake.Stats())
}

// handleLakeMitigations serves GET /v1/lake/mitigations: the applied
// mitigation actions ranked by frequency.
func (s *Server) handleLakeMitigations(w http.ResponseWriter, r *http.Request, _ string) {
	if !s.requireLake(w) {
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Mitigations []lake.MitigationCount `json:"mitigations"`
	}{s.cfg.Lake.Mitigations()})
}

// handleLakeTags serves GET /v1/lake/tags: the tag index summary.
func (s *Server) handleLakeTags(w http.ResponseWriter, r *http.Request, _ string) {
	if !s.requireLake(w) {
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Tags []lake.TagCount `json:"tags"`
	}{s.cfg.Lake.Tags()})
}

// handleLakeByTag serves GET /v1/lake/tags/{tag}: entry summaries in
// ingest order.
func (s *Server) handleLakeByTag(w http.ResponseWriter, r *http.Request, _ string) {
	if !s.requireLake(w) {
		return
	}
	tag := r.PathValue("tag")
	entries := s.cfg.Lake.ByTag(tag)
	out := struct {
		Tag       string             `json:"tag"`
		Incidents []lakeEntrySummary `json:"incidents"`
	}{Tag: tag, Incidents: make([]lakeEntrySummary, 0, len(entries))}
	for _, e := range entries {
		out.Incidents = append(out.Incidents, summarize(e))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleLakeGet serves GET /v1/lake/incidents/{id}: the full entry,
// event stream included.
func (s *Server) handleLakeGet(w http.ResponseWriter, r *http.Request, _ string) {
	if !s.requireLake(w) {
		return
	}
	id := r.PathValue("id")
	e, ok := s.cfg.Lake.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, "", "no lake entry %q", id)
		return
	}
	writeJSON(w, http.StatusOK, e)
}
