// Command replay implements §3's scale-up evaluation: generate a
// historical incident corpus (simulated operators resolving incidents
// unassisted, original TTM recorded), replay every incident through the
// helper, and report TTM savings over matching mitigations, the mismatch
// fraction, and conditional estimates for mismatches.
//
// Usage:
//
//	replay [-n 150] [-seed 1]
//	replay -faultrate 0.2              # degraded telemetry, resilient helper
//	replay -faultrate 0.2 -naive       # same faults, no resilience
package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/eval"
)

func main() {
	var (
		n         = flag.Int("n", 150, "historical incidents to generate and replay")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel trial workers (0 = one per CPU; never changes results)")
		faultRate = flag.Float64("faultrate", 0, "tool fault-injection rate in [0,1] (0 = no faults, byte-identical to historical runs)")
		faultSeed = flag.Int64("faultseed", 1337, "fault-schedule seed")
		naive     = flag.Bool("naive", false, "with -faultrate: keep the naive invocation path instead of the resilient one")
	)
	flag.Parse()

	opts := []aiops.Option{aiops.WithSeed(*seed), aiops.WithWorkers(*workers)}
	if *faultRate > 0 {
		opts = append(opts, aiops.WithFaults(aiops.FaultConfig{Rate: *faultRate, ActionRate: *faultRate / 2, Seed: *faultSeed}))
		if !*naive {
			opts = append(opts, aiops.WithResilientHelper())
		}
	}
	sys := aiops.New(opts...)
	rep := sys.Replay(*n, *seed)

	t := eval.NewTable("historical replay through the helper", "metric", "value")
	t.AddRow("corpus size", len(rep.Items))
	t.AddRow("mitigation matched", rep.Matched)
	t.AddRow("mitigation mismatched", rep.Mismatched)
	t.AddRow("helper unresolved", rep.Unresolved)
	t.AddRow("match fraction", eval.Pct(rep.MatchFraction()))
	t.AddRow("mean TTM savings, matched (min)", rep.MeanSavings.Minutes())
	t.AddRow("mismatches with conditional estimate", rep.CondCovered)
	t.AddRow("mean TTM savings incl. conditional (min)", rep.MeanCondSavings.Minutes())
	fmt.Println(t)

	byClass := eval.NewTable("per-class replay detail", "scenario", "n", "matched", "mean orig TTM(m)", "mean helper TTM(m)")
	type agg struct {
		n, matched int
		orig, help float64
	}
	cls := map[string]*agg{}
	var order []string
	for _, it := range rep.Items {
		a := cls[it.Scenario]
		if a == nil {
			a = &agg{}
			cls[it.Scenario] = a
			order = append(order, it.Scenario)
		}
		a.n++
		if it.Match {
			a.matched++
		}
		a.orig += it.OriginalTTM.Minutes()
		a.help += it.HelperTTM.Minutes()
	}
	for _, name := range order {
		a := cls[name]
		byClass.AddRow(name, a.n, a.matched, a.orig/float64(a.n), a.help/float64(a.n))
	}
	fmt.Println(byClass)
}
