package experiments

// E17 — sharded multi-region fleet at hyperscale (extension): E14
// established the offered-load knee for one responder pool; real
// providers run many regional pools that fail together (correlated
// storms) and borrow from each other when one saturates. E17 runs the
// sharded scheduler — per-region severity-classed engines, batched
// discrete-event dispatch, deterministic cross-region work stealing —
// across a grid of (region fan-out × per-region offered load) at
// 10^5-10^6 total arrivals per cell, with storm-correlated arrivals
// (a primary incident echoing into other regions within minutes).
//
// Expected shape: at a fixed per-region rate, wider fan-outs sustain
// the same per-region knee — regions are near-independent and the
// steal pass only helps — while storms push transient overload into
// neighbours, which shows up as stolen counts rather than sheds until
// every pool saturates at once. The assisted arm's shorter sessions
// again buy rungs of headroom over the unassisted arm, now multiplied
// across the fleet. Tables are byte-identical at any worker count:
// the determinism contract at hyperscale.

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/eval"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/incident"
	"repro/internal/scenarios"
)

// e17Regions and e17Rates define the ladder grid: region fan-out by
// per-region offered load (arrivals/hour).
// The rungs bracket both arms' per-region capacity (3 OCEs at ~37m
// assisted / ~105m unassisted mean occupancy ≈ 4.9 and 1.7 arr/h): the
// bottom rung is sustainable for everyone, the top for no one, and the
// middle rungs are where storms saturate one region while a neighbour
// still has headroom — the steal regime.
var (
	e17Regions = []int{1, 4, 16}
	e17Rates   = []float64{1, 2, 4, 8}
)

// e17KneeP99 bounds "sustained", as in E14: one on-call shift. Unlike
// E14's single quiet pool, a storm-correlated fleet almost never sheds
// exactly zero — a burst can outrun even an idle fleet's admission
// bound — so the shed criterion is an SLO, not an absolute: 99.5% of
// arrivals admitted.
const (
	e17KneeP99     = 8 * time.Hour
	e17KneeShedTol = 0.005
)

// e17Sustained reports whether a cell is below the saturation knee.
func e17Sustained(rep *fleet.ShardedReport) bool {
	tot := rep.Total
	return float64(tot.Shed) <= e17KneeShedTol*float64(len(tot.Outcomes)) &&
		tot.P99Resolution <= e17KneeP99
}

// e17PerCell is the arrival count per grid cell, per unit of
// Params.Trials — sized so the default reaches 10^5 arrivals per cell
// and the full ladder crosses 10^6.
const e17PerCell = 5000

// e17Scenario is a synthetic flat incident class: E17 measures the
// scheduler at hyperscale, so world construction must cost one
// severity draw, not a topology build.
type e17Scenario struct{}

func (e17Scenario) Name() string           { return "shardload" }
func (e17Scenario) RootCauseClass() string { return "synthetic" }
func (e17Scenario) Build(rng *rand.Rand) *scenarios.Instance {
	return &scenarios.Instance{Incident: &incident.Incident{Severity: rng.Intn(4)}, Scenario: e17Scenario{}}
}

// e17Runner draws a session outcome from (base, spread, mitigation
// rate) — the assisted/unassisted TTM gap in closed form, seeded per
// incident like every real runner.
type e17Runner struct {
	label    string
	base     time.Duration
	spread   time.Duration
	mitigate float64
}

func (r e17Runner) Name() string { return r.label }
func (r e17Runner) Run(in *scenarios.Instance, seed int64) harness.Result {
	rng := rand.New(rand.NewSource(seed))
	ttm := r.base + time.Duration(rng.ExpFloat64()*float64(r.spread))
	mit := rng.Float64() < r.mitigate
	return harness.Result{Scenario: in.Scenario.Name(), Mitigated: mit, Escalated: !mit, TTM: ttm}
}

// e17Config is the fleet every cell runs: 3 OCEs per region, a bounded
// queue, stealing on, and a correlated storm process — the same
// arrival draw per cell across arms (paired comparison).
func e17Config(regions int, rate float64, p Params, r harness.Runner) fleet.ShardedConfig {
	names := make([]string, regions)
	for i := range names {
		names[i] = fmt.Sprintf("r%02d", i)
	}
	return fleet.ShardedConfig{
		Regions: names, OCEs: 3, ArrivalsPerHour: rate,
		Incidents:  p.Trials * e17PerCell,
		QueueLimit: 8, Steal: true,
		Storm:   scenarios.StormConfig{Correlation: 0.25, MaxFanout: 3, Window: 15 * time.Minute},
		Mix:     []scenarios.Scenario{e17Scenario{}},
		Runner:  r,
		Seed:    p.Seed + 171,
		Workers: p.Workers,
		Obs:     p.Obs,
	}
}

// E17ShardedFleet sweeps the (fan-out × offered load) grid over the
// sharded scheduler and tabulates shed, stolen, queue wait and
// resolution tails per arm, plus each fan-out's saturation knee.
func E17ShardedFleet(p Params) []*eval.Table {
	p = p.withDefaults()
	arms := []harness.Runner{
		e17Runner{label: "assisted-helper", base: 12 * time.Minute, spread: 25 * time.Minute, mitigate: 0.92},
		e17Runner{label: "unassisted-oce", base: 35 * time.Minute, spread: 70 * time.Minute, mitigate: 0.72},
	}

	// Cells run serially: each sharded simulation is already parallel
	// inside (and byte-identical at any worker count), so rows and the
	// shared sink accumulate in deterministic grid order.
	ladder := eval.NewTable(fmt.Sprintf("E17 (extension): sharded multi-region ladder — %d arrivals/cell, 3 OCEs/region, queue bound 8, stealing on, storm corr 0.25",
		p.Trials*e17PerCell),
		"regions", "arr/h/region", "arm", "shed", "stolen", "meanQueue(m)", "p50Res(m)", "p99Res(m)", "mitigated", "util")
	type cellKey struct {
		regions int
		arm     string
	}
	reports := map[cellKey][]*fleet.ShardedReport{}
	for _, nr := range e17Regions {
		for _, rate := range e17Rates {
			for _, arm := range arms {
				rep := fleet.SimulateSharded(e17Config(nr, rate, p, arm))
				k := cellKey{nr, arm.Name()}
				reports[k] = append(reports[k], rep)
				tot := rep.Total
				ladder.AddRow(nr, rate, arm.Name(),
					fmt.Sprintf("%d/%d", tot.Shed, len(tot.Outcomes)), rep.Stolen,
					tot.MeanQueue.Minutes(), tot.P50Resolution.Minutes(), tot.P99Resolution.Minutes(),
					eval.Pct(tot.MitigatedRate), fmt.Sprintf("%.2f", tot.Utilization))
			}
		}
	}

	knee := eval.NewTable(fmt.Sprintf("E17: saturation knee per fan-out — highest per-region load shedding under %.1f%% with P99 resolution under %.0fm",
		e17KneeShedTol*100, e17KneeP99.Minutes()),
		"regions", "arm", "knee(arr/h/region)", "p99Res at knee(m)")
	for _, nr := range e17Regions {
		for _, arm := range arms {
			reps := reports[cellKey{nr, arm.Name()}]
			rate, rep := 0.0, (*fleet.ShardedReport)(nil)
			for i, r := range reps {
				if e17Sustained(r) {
					rate, rep = e17Rates[i], r
				}
			}
			if rep == nil {
				knee.AddRow(nr, arm.Name(), "none", "-")
				continue
			}
			knee.AddRow(nr, arm.Name(), rate, rep.Total.P99Resolution.Minutes())
		}
	}
	return []*eval.Table{ladder, knee}
}
