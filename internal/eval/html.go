package eval

import (
	"fmt"
	"html/template"
	"io"
)

// HTMLReport renders a set of titled tables as a self-contained HTML
// page (no external assets), so experiment results can be shared the way
// operators share incident reviews.
type HTMLReport struct {
	Title    string
	Subtitle string
	Sections []HTMLSection
	// When, if set, appears in the footer as the generation stamp. It
	// is injected by the caller — never read from the wall clock — so
	// the rendered bytes stay a pure function of the report data and
	// report.html is goldenable. Empty omits the footer line.
	When string
}

// HTMLSection groups tables under one experiment heading.
type HTMLSection struct {
	Heading string
	Note    string
	Tables  []*Table
	Pre     string // preformatted block (e.g. a session trace)
}

var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1a1a1a; }
h1 { font-size: 1.6rem; } h2 { font-size: 1.2rem; margin-top: 2.2rem; border-bottom: 1px solid #ddd; }
.sub { color: #666; }
table { border-collapse: collapse; margin: 0.8rem 0 1.4rem; }
caption { text-align: left; font-weight: 600; padding: 0.3rem 0; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f3f3f3; }
pre { background: #f7f7f7; border: 1px solid #ddd; padding: 0.8rem; overflow-x: auto; font-size: 12px; }
.note { color: #444; font-style: italic; }
</style></head><body>
<h1>{{.Title}}</h1>
<p class="sub">{{.Subtitle}}</p>
{{range .Sections}}
<h2>{{.Heading}}</h2>
{{if .Note}}<p class="note">{{.Note}}</p>{{end}}
{{if .Pre}}<pre>{{.Pre}}</pre>{{end}}
{{range .Tables}}
<table><caption>{{.Title}}</caption>
<tr>{{range .Headers}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>
{{end}}
{{end}}
{{if .When}}<p class="sub">generated {{.When}}</p>
{{end}}</body></html>
`))

// WriteHTML renders the report.
func (r *HTMLReport) WriteHTML(w io.Writer) error {
	return htmlTmpl.Execute(w, r)
}

// NewHTMLReport builds a report shell with the standard subtitle.
func NewHTMLReport(title string, seed int64, trials int) *HTMLReport {
	return &HTMLReport{
		Title:    title,
		Subtitle: fmt.Sprintf("deterministic run: seed %d, %d trials per cell", seed, trials),
	}
}
