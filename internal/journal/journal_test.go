package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sev(n int) *int { return &n }

// stamped is what records look like after Append: the current format
// version stamped onto any record that did not carry one.
func stamped(recs []Record) []Record {
	out := append([]Record(nil), recs...)
	for i := range out {
		if out[i].V == 0 {
			out[i].V = Version
		}
	}
	return out
}

func sample() []Record {
	return []Record{
		{Kind: KindAccepted, ID: "inc-0001", AtMinutes: 1.5, Scenario: "gray-link",
			Severity: sev(2), Title: "packet loss on wan-2", ReportedBy: "netops",
			OpenedAtMinutes: 1.5},
		{Kind: KindPatched, ID: "inc-0001", AtMinutes: 3, Status: "investigating",
			Note: "netops: looking\ninto it"},
		{Kind: KindShed, ID: "inc-0002", AtMinutes: 4},
		{Kind: KindResolved, ID: "inc-0001", AtMinutes: 9, Status: "resolved"},
	}
}

// TestRoundTrip: encode-then-decode is the identity on a record stream,
// and newlines inside fields never break line framing (JSON escapes
// them).
func TestRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	want := sample()
	for _, r := range want {
		line, err := Encode(r)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if bytes.Count(line, []byte("\n")) != 1 {
			t.Fatalf("record line not newline-framed: %q", line)
		}
		buf.Write(line)
	}
	got, good, dropped := Decode(buf.Bytes())
	if good != buf.Len() || dropped != 0 {
		t.Fatalf("Decode consumed %d/%d bytes, dropped %d", good, buf.Len(), dropped)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestTornTailDropped: truncating the stream at any byte keeps a clean
// prefix of whole records and drops exactly the torn tail.
func TestTornTailDropped(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	recs := sample()
	ends := make([]int, 0, len(recs))
	for _, r := range recs {
		line, _ := Encode(r)
		buf.Write(line)
		ends = append(ends, buf.Len())
	}
	data := buf.Bytes()
	for cut := 0; cut <= len(data); cut++ {
		got, good, _ := Decode(data[:cut])
		whole := 0
		for _, e := range ends {
			if e <= cut {
				whole++
			}
		}
		if len(got) != whole {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(got), whole)
		}
		if whole > 0 && good != ends[whole-1] {
			t.Fatalf("cut %d: clean boundary %d, want %d", cut, good, ends[whole-1])
		}
		if whole > 0 && !reflect.DeepEqual(got, recs[:whole]) {
			t.Fatalf("cut %d: prefix mismatch", cut)
		}
	}
}

// TestCorruptLineTruncates: a bit flip inside a record invalidates that
// record and everything after it — no silent acceptance.
func TestCorruptLineTruncates(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	for _, r := range sample() {
		line, _ := Encode(r)
		buf.Write(line)
	}
	data := buf.Bytes()
	line1, _ := Encode(sample()[0])
	data[len(line1)+12] ^= 0x20 // flip a byte inside record 2's payload
	got, good, dropped := Decode(data)
	if len(got) != 1 || good != len(line1) {
		t.Fatalf("corrupt line: got %d records, boundary %d (want 1, %d)", len(got), good, len(line1))
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
}

// TestOpenAppendReplay: records appended through one handle come back
// from a fresh Open, and the handle's stats track them.
func TestOpenAppendReplay(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, rr, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rr.Records) != 0 || rr.Dropped != 0 {
		t.Fatalf("fresh journal not empty: %+v", rr)
	}
	want := sample()
	total := 0
	for _, r := range want {
		n, err := j.Append(r)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		total += n
	}
	if n, b := j.Stats(); n != len(want) || b != int64(total) {
		t.Fatalf("Stats = (%d, %d), want (%d, %d)", n, b, len(want), total)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, rr2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(rr2.Records, stamped(want)) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", rr2.Records, stamped(want))
	}
	if rr2.Bytes != int64(total) || rr2.Dropped != 0 {
		t.Fatalf("replay stats: %+v", rr2)
	}
	if got := rr2.MaxAtMinutes(); got != 9 {
		t.Fatalf("MaxAtMinutes = %v, want 9", got)
	}
}

// TestOpenTruncatesTornTail: a partial final line (the SIGKILL
// signature) is cut away on Open, and appends after recovery land on a
// clean boundary — no grafting onto the torn line.
func TestOpenTruncatesTornTail(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	first := sample()[0]
	if _, err := j.Append(first); err != nil {
		t.Fatalf("Append: %v", err)
	}
	j.Close()
	// Simulate a torn write: half a record, no newline.
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open raw: %v", err)
	}
	if _, err := f.WriteString(`deadbeef {"kind":"accepted","id":"torn`); err != nil {
		t.Fatalf("write torn: %v", err)
	}
	f.Close()

	j2, rr, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(rr.Records) != 1 || rr.Dropped != 1 {
		t.Fatalf("recovered %d records, dropped %d (want 1, 1)", len(rr.Records), rr.Dropped)
	}
	second := sample()[1]
	if _, err := j2.Append(second); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	j2.Close()
	rr2, err := Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if want := stamped([]Record{first, second}); !reflect.DeepEqual(rr2.Records, want) {
		t.Fatalf("post-recovery stream:\n got %+v\nwant %+v", rr2.Records, want)
	}
}

// TestReplayMissingDir: replaying a journal that was never created is
// an empty result, not an error (first boot with -journal).
func TestReplayMissingDir(t *testing.T) {
	t.Parallel()
	rr, err := Replay(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(rr.Records) != 0 {
		t.Fatalf("Replay(missing) = %+v, %v", rr, err)
	}
}

// TestVersioning pins the record-format version rules: legacy V0 lines
// (no "v" field at all — the pre-region format) decode cleanly with an
// empty Region, V2 lines round-trip the region, and a future-version
// line truncates the stream like corruption would.
func TestVersioning(t *testing.T) {
	t.Parallel()

	// A verbatim pre-region line, exactly as a PR 7 gateway wrote it.
	legacy, err := Encode(Record{Kind: KindAccepted, ID: "old-1", AtMinutes: 2,
		Scenario: "gray-link", OpenedAtMinutes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(legacy, []byte(`"v"`)) || bytes.Contains(legacy, []byte(`"region"`)) {
		t.Fatalf("zero-valued version/region leak into the legacy encoding: %s", legacy)
	}
	recs, good, dropped := Decode(legacy)
	if len(recs) != 1 || good != len(legacy) || dropped != 0 {
		t.Fatalf("legacy decode: %d records, %d/%d bytes, %d dropped", len(recs), good, len(legacy), dropped)
	}
	if recs[0].V != 0 || recs[0].Region != "" {
		t.Fatalf("legacy record = %+v, want V0 with empty region", recs[0])
	}

	// Current-format region round trip.
	line, err := Encode(Record{V: Version, Kind: KindAccepted, ID: "new-1",
		AtMinutes: 3, Region: "eu-west"})
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _ = Decode(line)
	if len(recs) != 1 || recs[0].Region != "eu-west" || recs[0].V != Version {
		t.Fatalf("region round trip: %+v", recs)
	}

	// A future version truncates the stream at that record.
	future, err := Encode(Record{V: Version + 1, Kind: KindAccepted, ID: "fut-1", AtMinutes: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs, good, dropped = Decode(append(append([]byte(nil), legacy...), future...))
	if len(recs) != 1 || good != len(legacy) || dropped != 1 {
		t.Fatalf("future version: %d records, boundary %d (want %d), %d dropped",
			len(recs), good, len(legacy), dropped)
	}
}

// TestAppendAfterClose fails loudly instead of writing nowhere.
func TestAppendAfterClose(t *testing.T) {
	t.Parallel()
	j, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	j.Close()
	if _, err := j.Append(sample()[0]); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}
