package fleet

// SimulateSharded: the closed-form (pre-drawn) multi-region fleet
// simulation — Simulate's counterpart over the sharded scheduler. The
// three-phase structure and the determinism contract carry over:
//
//  1. Arrivals pre-draw serially from the config seed: a merged Poisson
//     process at R × ArrivalsPerHour routed uniformly across regions,
//     plus correlated storm echoes (same scenario class landing in
//     other regions within the storm window — scenarios.StormConfig).
//     Arrival i's (time, region, scenario, session seed) is a pure
//     function of (seed, i).
//  2. Sessions execute speculatively on the parallel trial pool, keyed
//     by pre-draw index.
//  3. Scheduling is exact and worker-count-independent: with stealing
//     on, every arrival feeds the serial ShardedScheduler (batched
//     ticks, deterministic steal); with stealing off, regions are fully
//     independent discrete-event systems, so each region's engine runs
//     to completion on its own executor (Shards bounds the concurrency)
//     and the merged output is byte-identical at Shards=1 and
//     Shards=N — the sharded analogue of the workers contract.

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/eval"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/scenarios"
)

// ShardedConfig parameterizes a sharded fleet simulation.
type ShardedConfig struct {
	// Regions names the shards (default {DefaultRegion}).
	Regions []string
	// OCEs is each region's responder pool size (default 3).
	OCEs int
	// ArrivalsPerHour is the mean arrival rate per region (default 2);
	// the merged process runs at Regions × ArrivalsPerHour.
	ArrivalsPerHour float64
	// Incidents is the total arrival count across all regions,
	// storm echoes included (default 100).
	Incidents int
	// Mix, Runner, Seed and Workers behave exactly as in Config.
	Mix     []scenarios.Scenario
	Runner  harness.Runner
	Seed    int64
	Workers int
	// Shards bounds the concurrent per-region schedulers on the
	// steal-free path (<= 0: Workers). Never changes an output byte.
	Shards int
	// Policy, QueueLimit and AgingStep apply per region, as in Config.
	Policy     Policy
	QueueLimit int
	AgingStep  time.Duration
	// Steal and BatchStep behave as in ShardedLiveConfig.
	Steal     bool
	BatchStep time.Duration
	// Storm correlates arrivals across regions (zero: independent
	// Poisson only; needs at least two regions to matter).
	Storm scenarios.StormConfig
	// Obs behaves as in Config.
	Obs *obs.Sink
}

func (cfg ShardedConfig) withDefaults() ShardedConfig {
	if len(cfg.Regions) == 0 {
		cfg.Regions = []string{DefaultRegion}
	}
	if cfg.OCEs <= 0 {
		cfg.OCEs = 3
	}
	if cfg.ArrivalsPerHour <= 0 {
		cfg.ArrivalsPerHour = 2
	}
	if cfg.Incidents <= 0 {
		cfg.Incidents = 100
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = scenarios.All()
	}
	if cfg.AgingStep == 0 {
		cfg.AgingStep = 30 * time.Minute
	}
	if cfg.BatchStep <= 0 {
		cfg.BatchStep = 15 * time.Minute
	}
	if cfg.Shards <= 0 {
		cfg.Shards = cfg.Workers
	}
	return cfg
}

// shardDraw is one pre-drawn arrival. IDs are the zero-padded pre-draw
// index, so the stable sort below yields global (At, ID) order.
type shardDraw struct {
	id       string
	at       time.Duration
	region   int // index into the sorted region list
	scenario scenarios.Scenario
	seed     int64
}

// SimulateSharded runs the multi-region fleet model.
func SimulateSharded(cfg ShardedConfig) *ShardedReport {
	cfg = cfg.withDefaults()
	regions := normalizeRegions(cfg.Regions)
	R := len(regions)
	n := cfg.Incidents

	// Phase 1 — serial pre-draw: merged Poisson arrivals routed across
	// regions, each primary optionally spawning storm echoes of its own
	// scenario class in other regions. The rng call order per primary is
	// fixed (gap, region, scenario, seed, storm draw, then a region and
	// seed per echo), so the arrival set is a pure function of the seed.
	rng := rand.New(rand.NewSource(cfg.Seed))
	draws := make([]shardDraw, 0, n)
	var now time.Duration
	for len(draws) < n {
		now += time.Duration(rng.ExpFloat64() / (cfg.ArrivalsPerHour * float64(R)) * float64(time.Hour))
		ri := rng.Intn(R)
		sc := cfg.Mix[rng.Intn(len(cfg.Mix))]
		draws = append(draws, shardDraw{at: now, region: ri, scenario: sc, seed: rng.Int63()})
		if R > 1 && cfg.Storm.Correlation > 0 {
			d := cfg.Storm.Draw(rng)
			for e := 0; e < d.Fanout && len(draws) < n; e++ {
				echo := (ri + 1 + rng.Intn(R-1)) % R
				draws = append(draws, shardDraw{
					at: now + d.Offsets[e], region: echo, scenario: sc, seed: rng.Int63(),
				})
			}
		}
	}
	for i := range draws {
		draws[i].id = fmt.Sprintf("%07d", i)
	}
	// Stable by time: equal times keep pre-draw (= ID) order, so the
	// global order is exactly (At, ID).
	sort.SliceStable(draws, func(i, j int) bool { return draws[i].at < draws[j].at })

	// Phase 2 — speculative parallel session execution, as in Simulate.
	or, observed := cfg.Runner.(harness.ObservedRunner)
	var recs []*obs.Recorder
	if cfg.Obs != nil && observed {
		recs = make([]*obs.Recorder, n)
	}
	trials := parallel.RunTrials(n, cfg.Workers, cfg.Seed, func(_ int64, i int) session {
		d := draws[i]
		in := d.scenario.Build(rand.New(rand.NewSource(d.seed)))
		sev := in.Incident.Severity
		var res harness.Result
		if recs != nil {
			rec := obs.AcquireRecorder("fleet/" + d.id)
			recs[i] = rec
			res = or.RunObserved(in, d.seed, rec)
		} else {
			res = cfg.Runner.Run(in, d.seed)
		}
		return session{res: res, severity: sev}
	})
	sessions := make([]session, n)
	for i, tr := range trials {
		if tr.Err != nil {
			sessions[i] = session{res: harness.Result{
				Scenario: draws[i].scenario.Name(), Escalated: true, PlanErrors: 1,
			}}
			continue
		}
		sessions[i] = tr.Value
	}

	// Phase 3 — scheduling.
	if cfg.Steal {
		return simulateStealing(cfg, regions, draws, sessions, recs)
	}
	return simulateIndependent(cfg, regions, draws, sessions, recs)
}

// simulateStealing feeds every arrival through the serial sharded
// scheduler: batched ticks interleave regions and the steal pass moves
// overflow across pools, so the whole phase is one discrete-event
// system.
func simulateStealing(cfg ShardedConfig, regions []string,
	draws []shardDraw, sessions []session, recs []*obs.Recorder) *ShardedReport {
	s := NewSharded(ShardedLiveConfig{
		Regions: regions, OCEs: cfg.OCEs, Policy: cfg.Policy,
		QueueLimit: cfg.QueueLimit, AgingStep: cfg.AgingStep,
		Steal: true, BatchStep: cfg.BatchStep,
		Obs: cfg.Obs, RunnerName: cfg.Runner.Name(), SessionPrefix: "fleet/",
	})
	for i := range draws {
		d := draws[i]
		var rec *obs.Recorder
		if recs != nil {
			rec = recs[i]
		}
		// Offers arrive presorted, so each insert is an append.
		if err := s.Offer(LiveArrival{
			ID: d.id, At: d.at, Scenario: d.scenario.Name(),
			Severity: sessions[i].severity, Region: regions[d.region],
			Result: sessions[i].res, Events: rec,
		}); err != nil {
			panic("fleet: sharded simulate offer: " + err.Error())
		}
	}
	return s.DrainSharded()
}

// simulateIndependent runs each region's engine to completion on its
// own executor — with stealing off, regions never interact, so the
// per-region schedules are embarrassingly parallel and Shards=1 vs N is
// byte-identical. Observability then emits serially in region-major,
// arrival order.
func simulateIndependent(cfg ShardedConfig, regions []string,
	draws []shardDraw, sessions []session, recs []*obs.Recorder) *ShardedReport {
	R := len(regions)
	perRegion := make([][]int, R)
	for i := range draws {
		perRegion[draws[i].region] = append(perRegion[draws[i].region], i)
	}
	runs := parallel.RunTrials(R, cfg.Shards, cfg.Seed, func(_ int64, r int) *engine {
		eng := newEngine(cfg.OCEs, cfg.Policy, cfg.QueueLimit, cfg.AgingStep)
		for _, i := range perRegion[r] {
			idx := eng.add(Outcome{
				Index: len(eng.outcomes), Scenario: draws[i].scenario.Name(),
				Severity: sessions[i].severity, Region: regions[r],
				ArrivedAt: draws[i].at, Result: sessions[i].res,
			}, sessions[i])
			eng.arrive(idx)
		}
		eng.completeUntil(never)
		return eng
	})
	engines := make([]*engine, R)
	ids := make([][]string, R)
	for r, tr := range runs {
		if tr.Err != nil {
			panic(tr.Err)
		}
		engines[r] = tr.Value
		ids[r] = make([]string, len(perRegion[r]))
		for j, i := range perRegion[r] {
			ids[r][j] = draws[i].id
		}
	}

	if cfg.Obs != nil {
		runnerName := cfg.Runner.Name()
		for r := 0; r < R; r++ {
			eng := engines[r]
			for j := range eng.outcomes {
				o := &eng.outcomes[j]
				i := perRegion[r][j]
				sess := "fleet/" + draws[i].id
				if o.Shed {
					cfg.Obs.Emit(obs.Event{
						Type: obs.EvFleetShed, At: o.ArrivedAt, Session: sess,
						Runner: runnerName, Scenario: o.Scenario, Region: o.Region,
					})
				} else {
					if recs != nil {
						cfg.Obs.Absorb(recs[i])
					}
					cfg.Obs.Emit(obs.Event{
						Type: obs.EvFleetIncident, At: o.ArrivedAt, Session: sess,
						Runner: runnerName, Scenario: o.Scenario, Region: o.Region,
						Queue: o.Queue, Resolution: o.Resolution,
					})
				}
				if recs != nil && recs[i] != nil {
					recs[i].Release()
				}
			}
		}
	}
	return assembleSharded(regions, engines, ids, cfg.OCEs, cfg.Obs,
		0, make([]int, R), make([]int, R))
}

// ShardedSummaryTable renders one row per region plus the fleet total —
// the table `imctl fleet -regions` prints and E17 pins.
func ShardedSummaryTable(title string, rep *ShardedReport) *eval.Table {
	t := eval.NewTable(title,
		"region", "shed", "stolen(in/out)", "meanQueue(m)", "p50Res(m)", "p99Res(m)", "mitigated", "util", "drain(m)")
	row := func(name string, r *Report, in, out int) {
		t.AddRow(name, fmt.Sprintf("%d/%d", r.Shed, len(r.Outcomes)),
			fmt.Sprintf("%d/%d", in, out),
			fmtMin(r.MeanQueue), fmtMin(r.P50Resolution), fmtMin(r.P99Resolution),
			eval.Pct(r.MitigatedRate), fmt.Sprintf("%.2f", r.Utilization), fmtMin(r.Drain))
	}
	for i := range rep.Regions {
		rr := &rep.Regions[i]
		row(rr.Region, rr.Report, rr.StolenIn, rr.StolenOut)
	}
	row("fleet", rep.Total, rep.Stolen, rep.Stolen)
	return t
}
