package gateway

// The gateway's JSON payload codec: enumerated severity and status,
// explicit simulated-clock timestamps, strict schema (unknown fields
// rejected). Following the gateway-first ingress design, the gateway —
// not the callers' internal tools — is where enumerations are enforced
// and payloads normalized, so everything downstream (the live
// scheduler, the event stream, the metrics) sees one vocabulary.
//
// Decode errors split in two: *FieldError means the JSON was
// well-formed but a value violated the schema (HTTP 422); any other
// error means the body was not valid strict JSON at all (HTTP 400).
// FuzzIncidentDecode pins the codec's contract: no input panics, and
// every accepted payload round-trips through its canonical encoding.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/scenarios"
)

// Severity is the enumerated incident severity, sev0 (lowest) to sev3
// (highest) — the netsim severity scale the fleet scheduler's priority
// queues dispatch on. The wire form is the string "sevN"; bare
// integers 0..3 are accepted on input for curl ergonomics.
type Severity int

// MaxSeverity is the highest severity class.
const MaxSeverity = 3

// String returns the canonical wire form.
func (s Severity) String() string { return fmt.Sprintf("sev%d", int(s)) }

// MarshalJSON encodes the canonical "sevN" string.
func (s Severity) MarshalJSON() ([]byte, error) {
	if s < 0 || s > MaxSeverity {
		return nil, fmt.Errorf("gateway: severity %d out of range", int(s))
	}
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts "sevN" strings and bare integers 0..3.
func (s *Severity) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var str string
		if err := json.Unmarshal(b, &str); err != nil {
			return err
		}
		rest, ok := strings.CutPrefix(str, "sev")
		if !ok {
			return &FieldError{Field: "severity", Msg: fmt.Sprintf("unknown severity %q: want sev0..sev%d", str, MaxSeverity)}
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 || n > MaxSeverity {
			return &FieldError{Field: "severity", Msg: fmt.Sprintf("unknown severity %q: want sev0..sev%d", str, MaxSeverity)}
		}
		*s = Severity(n)
		return nil
	}
	n, err := strconv.Atoi(string(bytes.TrimSpace(b)))
	if err != nil || n < 0 || n > MaxSeverity {
		return &FieldError{Field: "severity", Msg: fmt.Sprintf("invalid severity %s: want sev0..sev%d or 0..%d", b, MaxSeverity, MaxSeverity)}
	}
	*s = Severity(n)
	return nil
}

// Statuses is the enumerated caller-reported incident lifecycle,
// in order. "resolved" is terminal: updates after it are rejected.
var Statuses = []string{"open", "investigating", "identified", "monitoring", "resolved"}

// ValidStatus reports whether s is an enumerated status.
func ValidStatus(s string) bool {
	for _, v := range Statuses {
		if v == s {
			return true
		}
	}
	return false
}

// FieldError is a schema violation in an otherwise well-formed payload.
type FieldError struct {
	Field string
	Msg   string
}

// Error implements error.
func (e *FieldError) Error() string { return e.Field + ": " + e.Msg }

// Payload size/field caps. Oversized fields are schema violations, not
// parse errors.
const (
	maxIDLen      = 64
	maxTitleLen   = 200
	maxSummaryLen = 4000
	maxServiceLen = 100
	maxNoteLen    = 2000
	// maxOpenedAtMinutes caps timestamps so converting to
	// time.Duration cannot overflow (about 190 years of simulated
	// time).
	maxOpenedAtMinutes = 1e8
)

// CreateRequest is the POST /v1/incidents payload.
type CreateRequest struct {
	// ID optionally names the incident (the gateway assigns inc-NNNN
	// when absent). Load harnesses supply IDs so results are
	// independent of submission interleaving.
	ID string `json:"id,omitempty"`
	// Scenario names the incident class from the scenario library; the
	// gateway normalizes the payload by generating the corresponding
	// incident (world, alerts, ground truth) from it.
	Scenario string `json:"scenario"`
	// Region homes the incident in a fleet region. Absent or empty
	// means the default region; anything else must name a region the
	// scheduler was configured with (enforced by the gateway, which
	// owns the region set — the codec only checks the charset).
	Region string `json:"region,omitempty"`
	// Title/Summary/Service override the generated incident's
	// human-facing fields on the stored record.
	Title   string `json:"title,omitempty"`
	Summary string `json:"summary,omitempty"`
	Service string `json:"service,omitempty"`
	// Severity overrides the generated severity (and with it the
	// dispatch priority class). Absent: the scenario's own severity.
	Severity *Severity `json:"severity,omitempty"`
	// OpenedAtMinutes is the simulated-clock arrival time in minutes.
	// Absent: the gateway stamps its clock's now. Arrivals behind the
	// scheduler watermark are rejected at admission (HTTP 409).
	OpenedAtMinutes *float64 `json:"opened_at_minutes,omitempty"`
}

// OpenedAt returns the arrival time, or fallback when unset.
func (r *CreateRequest) OpenedAt(fallback time.Duration) time.Duration {
	if r.OpenedAtMinutes == nil {
		return fallback
	}
	return time.Duration(*r.OpenedAtMinutes * float64(time.Minute))
}

// UpdateRequest is the PATCH /v1/incidents/{id} payload. At least one
// field must be set.
type UpdateRequest struct {
	// Status moves the caller-reported lifecycle (see Statuses).
	Status string `json:"status,omitempty"`
	// Severity revises the reported severity. Dispatch priority is
	// fixed at admission; this updates the record only.
	Severity *Severity `json:"severity,omitempty"`
	// Note appends free-text context to the record.
	Note string `json:"note,omitempty"`
}

// strictDecode unmarshals exactly one JSON value with unknown fields
// rejected.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("gateway: trailing data after JSON value")
	}
	return nil
}

// validID allows the charset that stays clean in URLs, session labels
// and metric label values.
func validID(id string) bool {
	if id == "" || len(id) > maxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == '/':
		default:
			return false
		}
	}
	return true
}

// DecodeCreate parses and validates a create payload.
func DecodeCreate(data []byte) (*CreateRequest, error) {
	var req CreateRequest
	if err := strictDecode(data, &req); err != nil {
		return nil, err
	}
	if req.Scenario == "" {
		return nil, &FieldError{Field: "scenario", Msg: "required"}
	}
	if scenarios.ByName(req.Scenario) == nil {
		return nil, &FieldError{Field: "scenario", Msg: fmt.Sprintf("unknown scenario %q", req.Scenario)}
	}
	if req.ID != "" && !validID(req.ID) {
		return nil, &FieldError{Field: "id", Msg: fmt.Sprintf("invalid id %q: want 1-%d chars of [a-zA-Z0-9._/-]", req.ID, maxIDLen)}
	}
	if req.Region != "" && !validID(req.Region) {
		return nil, &FieldError{Field: "region", Msg: fmt.Sprintf("invalid region %q: want 1-%d chars of [a-zA-Z0-9._/-]", req.Region, maxIDLen)}
	}
	if len(req.Title) > maxTitleLen {
		return nil, &FieldError{Field: "title", Msg: fmt.Sprintf("longer than %d bytes", maxTitleLen)}
	}
	if len(req.Summary) > maxSummaryLen {
		return nil, &FieldError{Field: "summary", Msg: fmt.Sprintf("longer than %d bytes", maxSummaryLen)}
	}
	if len(req.Service) > maxServiceLen {
		return nil, &FieldError{Field: "service", Msg: fmt.Sprintf("longer than %d bytes", maxServiceLen)}
	}
	if req.Severity != nil && (*req.Severity < 0 || *req.Severity > MaxSeverity) {
		return nil, &FieldError{Field: "severity", Msg: "out of range"}
	}
	if req.OpenedAtMinutes != nil {
		m := *req.OpenedAtMinutes
		if !(m >= 0) || m > maxOpenedAtMinutes { // !(>=0) also catches NaN
			return nil, &FieldError{Field: "opened_at_minutes", Msg: fmt.Sprintf("must be in [0, %g]", float64(maxOpenedAtMinutes))}
		}
	}
	return &req, nil
}

// DecodeUpdate parses and validates an update payload.
func DecodeUpdate(data []byte) (*UpdateRequest, error) {
	var req UpdateRequest
	if err := strictDecode(data, &req); err != nil {
		return nil, err
	}
	if req.Status == "" && req.Severity == nil && req.Note == "" {
		return nil, &FieldError{Field: "status", Msg: "empty update: set status, severity, or note"}
	}
	if req.Status != "" && !ValidStatus(req.Status) {
		return nil, &FieldError{Field: "status", Msg: fmt.Sprintf("unknown status %q: want one of %s", req.Status, strings.Join(Statuses, "|"))}
	}
	if req.Severity != nil && (*req.Severity < 0 || *req.Severity > MaxSeverity) {
		return nil, &FieldError{Field: "severity", Msg: "out of range"}
	}
	if len(req.Note) > maxNoteLen {
		return nil, &FieldError{Field: "note", Msg: fmt.Sprintf("longer than %d bytes", maxNoteLen)}
	}
	return &req, nil
}
