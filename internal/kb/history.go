package kb

import (
	"sort"

	"repro/internal/mitigation"
)

// IncidentRecord is one resolved incident as stored in the provider's
// incident database: the text operators wrote, the symptoms and root
// cause expressed in the concept vocabulary, the mitigation applied, and
// the original time-to-mitigation. One-shot predictors train on these;
// the replay harness (§3) replays them.
type IncidentRecord struct {
	ID         string
	Title      string
	Summary    string
	Symptoms   []string // concept IDs observed at open time
	RootCause  string   // concept ID operators settled on
	Mitigation []mitigation.Action
	TTMMinutes float64
	Severity   int // 0..3 (info..critical)
	Tags       []string
}

// Text returns the searchable text of the record (title + summary), the
// string embedding models index.
func (r IncidentRecord) Text() string { return r.Title + ". " + r.Summary }

// History is the incident database.
type History struct {
	records []IncidentRecord
	byID    map[string]int
}

// NewHistory returns an empty incident database.
func NewHistory() *History {
	return &History{byID: make(map[string]int)}
}

// Add stores a record, replacing any record with the same ID.
func (h *History) Add(r IncidentRecord) {
	if i, ok := h.byID[r.ID]; ok {
		h.records[i] = r
		return
	}
	h.byID[r.ID] = len(h.records)
	h.records = append(h.records, r)
}

// Len reports the number of records.
func (h *History) Len() int { return len(h.records) }

// All returns every record sorted by ID.
func (h *History) All() []IncidentRecord {
	out := append([]IncidentRecord(nil), h.records...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the record with the given ID.
func (h *History) ByID(id string) (IncidentRecord, bool) {
	i, ok := h.byID[id]
	if !ok {
		return IncidentRecord{}, false
	}
	return h.records[i], true
}

// WithRootCause returns records whose root cause is the given concept.
func (h *History) WithRootCause(concept string) []IncidentRecord {
	var out []IncidentRecord
	for _, r := range h.All() {
		if r.RootCause == concept {
			out = append(out, r)
		}
	}
	return out
}

// WithMitigation returns records whose applied mitigation satisfies every
// requirement in need — the conditional TTM estimator (§3) conditions on
// this set.
func (h *History) WithMitigation(need []mitigation.Action) []IncidentRecord {
	var out []IncidentRecord
	for _, r := range h.All() {
		if (mitigation.Plan{Actions: r.Mitigation}).Satisfies(need) {
			out = append(out, r)
		}
	}
	return out
}
