package scenarios

import (
	"math/rand"
	"strings"
)

// Incident reports are written by different people under stress: the
// same failure class gets described with different vocabulary every
// time. The phrase tables below inject that lexical variety, which is
// what separates a network-aware embedding model from a generic one
// (experiment E8) — and what makes the one-shot baseline's retrieval
// realistically imperfect.

type phraseSet struct {
	titles    []string
	summaries []string
}

var phrases = map[string]phraseSet{
	"device-failure": {
		titles: []string{
			"Packet loss in {region}",
			"Connectivity failures reported in {region}",
			"Customers seeing drops and timeouts in {region}",
			"Blackholed traffic in {region} fabric",
		},
		summaries: []string{
			"Customers report connection failures in {region}. Multiple services affected.",
			"Support tickets spiking: flows blackholed in {region}, several tenants impacted.",
			"Traffic discards observed in {region}; health checks failing for multiple services.",
			"Widespread timeouts in {region}; suspect infrastructure issue.",
		},
	},
	"gray-link": {
		titles: []string{
			"Elevated packet loss for web traffic in {region}",
			"Web tier seeing retransmissions in {region}",
			"Intermittent drops with checksum errors in {region}",
			"Gray failure suspected in {region} fabric",
		},
		summaries: []string{
			"Web tier reports retransmissions and checksum failures in {region}. No device down.",
			"TCP retransmit rate climbing in {region}; FCS error counters non-zero; all devices report healthy.",
			"Intermittent frame corruption suspected in {region}: drops without congestion.",
			"Customers in {region} see sporadic packet discards; CRC errors rising on the fabric.",
		},
	},
	"congestion": {
		titles: []string{
			"Bulk transfer throughput collapse",
			"Severe congestion on inter-region links",
			"Replication falling behind: links saturated",
			"Hot links: bulk traffic far above provisioned capacity",
		},
		summaries: []string{
			"Replication jobs falling behind across regions; goodput far below demand.",
			"Inter-region links saturated; bulk transfer throughput collapsed; queues overflowing.",
			"Utilization alarms on multiple links; bulk demand spiked above provisioned baseline.",
			"Storage replication SLO at risk: cross-region goodput collapsed under heavy load.",
		},
	},
	"false-alarm": {
		titles: []string{
			"PingMesh loss across all regions",
			"Monitoring reports uniform loss everywhere",
			"Telemetry alarm: probe loss on every region pair",
			"Suspicious monitoring alert: global probe failures",
		},
		summaries: []string{
			"PingMesh shows uniform ~10% loss on every region pair simultaneously. Customer impact unconfirmed.",
			"Probe dashboards report identical loss everywhere at once; no customer tickets filed yet.",
			"Monitoring pipeline alarming on all region pairs; counters and customer signals quiet.",
			"Telemetry claims global packet loss; pattern looks synthetic, impact unverified.",
		},
	},
	"cascade": {
		titles: []string{
			"Severe cross-region packet loss",
			"Inter-region traffic collapsing after failover",
			"Backbone overload: B2 saturated, B4 empty",
			"Major incident: WAN capacity shortfall",
		},
		summaries: []string{
			"Inter-region traffic experiencing heavy loss. B4 carries no traffic; B2 utilization is extreme.",
			"Bulk and customer traffic crossing regions is drowning; the fallback WAN is saturated while the bulk WAN sits idle.",
			"Controller shifted everything off B4; B2 links far over capacity; drops across all cross-region services.",
			"Severe loss on cross-region flows following an apparent WAN failover; upgrade work was in progress.",
		},
	},
	"gray-link-flap": {
		titles: []string{
			"Intermittent packet loss in {region}",
			"Flapping errors on the {region} fabric",
			"Sporadic drops come and go in {region}",
			"Transient corruption suspected in {region}",
		},
		summaries: []string{
			"Loss in {region} appears in bursts, then vanishes for minutes; dashboards disagree depending on when you look.",
			"Customers report intermittent retransmissions in {region}; error counters rise and fall with no deploy in sight.",
			"On-and-off frame corruption in {region}; each time someone checks, the signal has moved.",
			"Bursty checksum errors in {region}; repeated spot checks keep coming back clean.",
		},
	},
	"maintenance-overlap": {
		titles: []string{
			"Latency spikes on cross-region traffic ({region})",
			"RTT blowout between regions ({region})",
			"Cross-region slowness reported ({region})",
			"Latency SLO breach on the backbone ({region})",
		},
		summaries: []string{
			"Cross-region RTT roughly doubled on the {region} span; no packet loss observed.",
			"Customers report slow replication across {region}; throughput intact, delay way above baseline.",
			"Backbone latency far above baseline on {region}; links report carrier loss in the span.",
			"Inter-region delay spiked on {region}; dashboards show multiple links dark on the direct span.",
		},
	},
	"novel-protocol": {
		titles: []string{
			"Direct connect latency spikes and loss",
			"Customer tunnels flapping: WAN devices resetting",
			"Intermittent outages on low-latency tunnels",
			"Recurring device resets on the bulk WAN",
		},
		summaries: []string{
			"Customer tenant-42 reports intermittent outages on low-latency tunnels. WAN devices resetting.",
			"Low-latency tunnel customers seeing repeated drops; several backbone routers wedged with watchdog resets.",
			"Direct connect traffic degraded; devices crash, recover after restart, then crash again.",
			"Recurring WAN device failures correlated with one customer's traffic; tunnels flapping.",
		},
	},
}

// phraseFor picks a title and summary variant for the class, replacing
// {region} with the given region.
func phraseFor(rng *rand.Rand, class, region string) (title, summary string) {
	ps, ok := phrases[class]
	if !ok || len(ps.titles) == 0 {
		return "", ""
	}
	title = ps.titles[rng.Intn(len(ps.titles))]
	summary = ps.summaries[rng.Intn(len(ps.summaries))]
	title = strings.ReplaceAll(title, "{region}", region)
	summary = strings.ReplaceAll(summary, "{region}", region)
	return title, summary
}
