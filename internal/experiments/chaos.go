package experiments

// E16 — crash-safety chaos harness (extension): proves the gateway's
// durability contract the adversarial way. Each cycle boots a real
// gateway (journal + recovery + live scheduler) on a loopback socket,
// fires a concurrent pool of fault-injecting HTTP clients at it
// (faults.HTTPSchedule: dropped connections, slow bodies, oversized and
// truncated payloads), then kills the process state abruptly — the
// listener is torn down mid-flight, the journal handle is abandoned
// with a garbage partial record appended to simulate the torn write a
// SIGKILL leaves — and the next cycle recovers from the journal alone.
// After the final recovery the scheduler drains and the harness checks
// conservation: every 2xx-acknowledged incident is present and
// scheduled exactly once (zero loss, zero duplicates), and every
// faulted request was refused with the contract status (413/400/no
// ack).
//
// Determinism: the arrival tape and the fault schedule are pure
// functions of the seed, acknowledgement is decided by the fault class
// (not by timing), and recovery replays sessions from (base, id)
// seeds — so the E16 tables are byte-identical at ANY client
// concurrency (-workers), crash cycles included. The cmd/aiopsd test
// suite runs the same loop with real SIGKILLs against the built binary.

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/parallel"
	"repro/internal/scenarios"
)

const (
	// e16Key reuses the E15 load-gen key: e15Post hardwires it into the
	// X-API-Key header, and the sim control endpoints are authenticated.
	e16Key     = e15Key
	e16Cycles  = 3    // kill/restart cycles (a final boot drains)
	e16Rate    = 0.4  // fraction of requests faulted
	e16MaxBody = 4096 // small body cap so oversize requests stay cheap
)

// e16Boot is one gateway life: journal opened, state recovered, socket
// listening.
type e16Boot struct {
	jr    *journal.Journal
	stats gateway.RecoverStats
	hs    *http.Server
	base  string
	cli   *http.Client
}

// e16Up boots a gateway over the journal dir and recovers.
func e16Up(dir string, p Params, r harness.Runner, seed int64) (*e16Boot, error) {
	jr, rr, err := journal.Open(dir)
	if err != nil {
		return nil, err
	}
	sched := fleet.NewLive(fleet.LiveConfig{
		OCEs: 2, QueueLimit: 4,
		Obs: p.Obs, RunnerName: r.Name(),
	})
	gw := gateway.NewServer(gateway.Config{
		Keys:  map[string]string{e16Key: "chaos"},
		Clock: gateway.NewSimClock(),
		Sched: sched, Runner: r, Seed: seed,
		Sink: p.Obs, SimControl: true,
		Journal: jr, MaxBody: e16MaxBody,
	})
	stats, err := gw.Recover(rr)
	if err != nil {
		jr.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		jr.Close()
		return nil, err
	}
	hs := &http.Server{Handler: gw.Handler()}
	go hs.Serve(ln)
	return &e16Boot{
		jr: jr, stats: stats, hs: hs,
		base: "http://" + ln.Addr().String(),
		cli:  &http.Client{},
	}, nil
}

// kill tears the boot down the unceremonious way: connections cut, the
// journal handle dropped without ceremony (every acked record is
// already fsync'd, so this is SIGKILL-equivalent for durability), and a
// garbage partial line appended to the WAL to simulate the torn write
// an interrupted append leaves behind.
func (b *e16Boot) kill(dir string) error {
	b.cli.CloseIdleConnections()
	b.hs.Close()
	b.jr.Close()
	f, err := os.OpenFile(filepath.Join(dir, journal.FileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, err = f.WriteString(`deadbeef {"kind":"accepted","id":"torn-half`)
	f.Close()
	return err
}

// e16Verify GETs every previously acknowledged incident and counts the
// ones the recovered gateway no longer knows — the "lost" column, which
// the durability contract pins at zero.
func (b *e16Boot) e16Verify(acked []string) (survivors, lost int) {
	for _, id := range acked {
		req, _ := http.NewRequest(http.MethodGet, b.base+"/v1/incidents/"+id, nil)
		req.Header.Set("X-API-Key", e16Key)
		resp, err := b.cli.Do(req)
		if err != nil {
			lost++
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			survivors++
		} else {
			lost++
		}
	}
	return survivors, lost
}

// E16Chaos runs the kill/restart chaos loop and tabulates per-cycle
// fault/recovery counts plus the final conservation check.
func E16Chaos(p Params) []*eval.Table {
	p = p.withDefaults()
	seed := p.Seed + 163
	runner := &harness.HelperRunner{Label: "assisted-helper", KBase: currentKB(), Config: core.DefaultConfig()}
	// Deadline sized for the slow-body class on a loaded CI box — the
	// 30s default can cut a dribbled upload short under contention.
	sched := faults.HTTPSchedule{Rate: e16Rate, Seed: seed ^ 0x5eed, Deadline: 2 * time.Minute}
	mix := scenarios.All()
	dir, err := os.MkdirTemp("", "e16-journal-")
	if err != nil {
		panic(fmt.Errorf("e16: %w", err))
	}
	defer os.RemoveAll(dir)

	n := p.Trials * 2 // arrivals per cycle
	cyc := eval.NewTable(fmt.Sprintf("E16 (extension): crash-safety chaos — %d kill/restart cycles, %d arrivals/cycle, fault rate %.0f%%, 2 OCEs, queue bound 4", e16Cycles, n, e16Rate*100),
		"cycle", "posted", "acked", "dropped", "oversize", "truncated", "recovered", "lost", "torn")

	var acked []string // every ID a client saw a 201 for, in tape order
	for cycle := 0; cycle < e16Cycles; cycle++ {
		b, err := e16Up(dir, p, runner, seed)
		if err != nil {
			panic(fmt.Errorf("e16: cycle %d boot: %w", cycle, err))
		}
		// Recovery audit: everything acknowledged before the kill must
		// still be served.
		survivors, lost := b.e16Verify(acked)

		// The chaos client pool: each trial is one POST with its
		// schedule-assigned fault class, against the raw socket.
		type outcome struct {
			id   string
			code int
			cls  faults.HTTPClass
		}
		outs := make([]outcome, n)
		addr := b.base[len("http://"):]
		trials := parallel.RunTrials(n, p.Workers, seed+int64(cycle), func(_ int64, i int) error {
			g := cycle*n + i // global tape index
			id := fmt.Sprintf("ch-%04d", g)
			cls := sched.ClassAt(g)
			body := []byte(fmt.Sprintf(`{"id":%q,"scenario":%q,"opened_at_minutes":%d}`,
				id, mix[g%len(mix)].Name(), (g+1)*3))
			code, err := sched.SendChaos(addr, "/v1/incidents", e16Key, body, cls, e16MaxBody)
			if err != nil && cls != faults.HTTPDrop {
				return fmt.Errorf("%s (%v): %w", id, cls, err)
			}
			outs[i] = outcome{id: id, code: code, cls: cls}
			return nil
		})
		for _, tr := range trials {
			if tr.Err != nil {
				panic(fmt.Errorf("e16: client crashed: %v", tr.Err))
			}
			if tr.Value != nil {
				panic(fmt.Errorf("e16: %v", tr.Value))
			}
		}
		counts := map[faults.HTTPClass]int{}
		ackedHere := 0
		for _, o := range outs {
			want := map[faults.HTTPClass]int{
				faults.HTTPNone:     http.StatusCreated,
				faults.HTTPSlowBody: http.StatusCreated,
				faults.HTTPOversize: http.StatusRequestEntityTooLarge,
				faults.HTTPTruncate: http.StatusBadRequest,
				faults.HTTPDrop:     0,
			}[o.cls]
			if o.code != want {
				panic(fmt.Errorf("e16: %s (%v): HTTP %d, want %d", o.id, o.cls, o.code, want))
			}
			if o.code == http.StatusCreated {
				acked = append(acked, o.id)
				ackedHere++
			} else {
				counts[o.cls]++
			}
		}
		// Let the schedule work through half the batch, then kill it
		// mid-stride: some incidents resolved, some active, some still
		// pending when the axe falls.
		mid := float64((cycle*n + n/2) * 3)
		if err := e15Post(b.cli, b.base+"/v1/sim/advance",
			[]byte(fmt.Sprintf(`{"to_minutes":%g}`, mid)), http.StatusOK, nil); err != nil {
			panic(fmt.Errorf("e16: advance: %w", err))
		}
		if err := b.kill(dir); err != nil {
			panic(fmt.Errorf("e16: kill: %w", err))
		}
		cyc.AddRow(cycle, n, ackedHere,
			counts[faults.HTTPDrop], counts[faults.HTTPOversize], counts[faults.HTTPTruncate],
			survivors, lost, b.stats.Dropped)
	}

	// Final boot: recover everything, verify the full acked set one
	// last time, drain, and check conservation end to end.
	b, err := e16Up(dir, p, runner, seed)
	if err != nil {
		panic(fmt.Errorf("e16: final boot: %w", err))
	}
	survivors, lost := b.e16Verify(acked)
	var sum gateway.DrainSummary
	if err := e15Post(b.cli, b.base+"/v1/sim/drain", nil, http.StatusOK, &sum); err != nil {
		panic(fmt.Errorf("e16: drain: %w", err))
	}
	b.cli.CloseIdleConnections()
	b.hs.Close()
	b.jr.Close()

	verdict := "ok: zero loss, zero duplicates"
	if lost > 0 || survivors != len(acked) {
		verdict = fmt.Sprintf("LOST %d acknowledged incidents", lost)
	}
	if sum.Incidents != len(acked) {
		verdict = fmt.Sprintf("CONSERVATION VIOLATED: %d scheduled vs %d acked", sum.Incidents, len(acked))
	}
	con := eval.NewTable("E16: conservation after final recovery + drain — every 2xx-acknowledged incident scheduled exactly once",
		"acked", "recovered", "scheduled", "admitted", "shed", "torn", "verdict")
	con.AddRow(len(acked), survivors, sum.Incidents, sum.Admitted, sum.Shed, b.stats.Dropped, verdict)
	return []*eval.Table{cyc, con}
}
