package main

// `imctl lake` queries an incident data lake directory offline — the
// same append-only log aiopsd -lake writes — printing the derived
// views as tables: per-scenario-class TTM aggregates, mitigation
// frequency, and the tag index. Drill into one tag or one incident
// with -tag/-id, or preview the adaptive feedback corpus a promotion
// policy would derive with -promote verified|always.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/lake"
)

func lakeMain(args []string) {
	fs := flag.NewFlagSet("imctl lake", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "lake directory (required): where aiopsd -lake appends incidents.lake")
		tag     = fs.String("tag", "", "list the incidents carrying this tag")
		id      = fs.String("id", "", "print one entry as JSON, event stream included")
		promote = fs.String("promote", "", "preview the feedback corpus a promotion policy derives: verified or always")
	)
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "imctl lake: -dir is required")
		os.Exit(2)
	}
	l, rr, err := lake.Open(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "lake %s: %d entries (%d torn dropped, %d bytes)\n",
		l.Path(), rr.Entries, rr.Dropped, rr.Bytes)

	switch {
	case *id != "":
		e, ok := l.Get(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "imctl lake: no entry %q\n", *id)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e)
	case *tag != "":
		t := eval.NewTable("lake incidents tagged "+*tag,
			"id", "scenario", "region", "sev", "outcome", "TTM(m)", "chain")
		for _, e := range l.ByTag(*tag) {
			t.AddRow(e.ID, e.Scenario, e.Region, e.Severity,
				lakeOutcome(e), fmt.Sprintf("%.1f", e.TTMMinutes), len(e.Chain))
		}
		fmt.Println(t)
	case *promote != "":
		policy := lake.Policy(*promote)
		if policy != lake.PolicyVerified && policy != lake.PolicyAlways {
			fmt.Fprintf(os.Stderr, "imctl lake: -promote %q: want verified or always\n", *promote)
			os.Exit(2)
		}
		corpus, err := lake.Promote(l.Entries(), policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t := eval.NewTable(fmt.Sprintf("promoted corpus (%s): %d rules, %d history records",
			policy, len(corpus.Rules), len(corpus.History.All())),
			"cause", "effect", "strength")
		for _, r := range corpus.Rules {
			t.AddRow(r.Cause, r.Effect, fmt.Sprintf("%.2f", r.Strength))
		}
		fmt.Println(t)
	default:
		st := l.Stats()
		classes := eval.NewTable(
			fmt.Sprintf("lake stats: %d entries, %d mitigated, %d escalated",
				st.Entries, st.Mitigated, st.Escalated),
			"scenario", "count", "mitigated", "escalated", "meanTTM(m)", "minTTM(m)", "maxTTM(m)")
		for _, c := range st.Classes {
			classes.AddRow(c.Scenario, c.Count, c.Mitigated, c.Escalated,
				fmt.Sprintf("%.1f", c.MeanTTMMinutes),
				fmt.Sprintf("%.1f", c.MinTTMMinutes),
				fmt.Sprintf("%.1f", c.MaxTTMMinutes))
		}
		fmt.Println(classes)
		mits := eval.NewTable("mitigation frequency", "action", "count")
		for _, m := range l.Mitigations() {
			mits.AddRow(m.Action, m.Count)
		}
		fmt.Println(mits)
		tags := eval.NewTable("tag index", "tag", "count")
		for _, tc := range l.Tags() {
			tags.AddRow(tc.Tag, tc.Count)
		}
		fmt.Println(tags)
	}
}

func lakeOutcome(e lake.Entry) string {
	switch {
	case e.Mitigated:
		return "mitigated"
	case e.Escalated:
		return "escalated"
	default:
		return "unresolved"
	}
}
