package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/scenarios"
)

// TestE13DeterministicAcrossWorkers extends the serial-vs-parallel
// contract to fault injection: the fault schedule is derived from seeds,
// not from scheduling, so the full robustness ladder must render
// bit-identical tables at workers=1 and workers=8.
func TestE13DeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	serial := renderTables(E13Resilience(Params{Trials: 2, Seed: 99, Workers: 1}))
	pooled := renderTables(E13Resilience(Params{Trials: 2, Seed: 99, Workers: 8}))
	if serial != pooled {
		t.Fatalf("E13 tables diverge between workers=1 and workers=8: %s", firstDiff(serial, pooled))
	}
}

// TestResilientEqualsNaiveWithoutFaults is the E13 acceptance anchor: at
// fault rate 0 the resilient invocation path must be the naive path —
// not merely statistically close, but identical result-for-result. The
// resilient machinery may only engage when something actually fails.
func TestResilientEqualsNaiveWithoutFaults(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	resilientCfg := core.DefaultConfig()
	resilientCfg.Resilience = core.DefaultResilience()
	resilient := &harness.HelperRunner{KBase: kbase, Config: resilientCfg}
	naive := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()}
	for _, sc := range e13Workload() {
		for trial := 0; trial < 3; trial++ {
			seed := int64(7700 + trial)
			a := harness.BuildAndRun(resilient, sc, seed)
			b := harness.BuildAndRun(naive, sc, seed)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s trial %d: resilient and naive diverge without faults:\n%+v\nvs\n%+v", sc.Name(), trial, a, b)
			}
		}
	}
}

// TestFaultsDisabledIsByteIdenticalToNoFaultConfig pins the "no behavior
// change by default" criterion at the runner level: a zero fault config
// must not perturb a single field of any runner's result.
func TestFaultsDisabledIsByteIdenticalToNoFaultConfig(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	sc := &scenarios.Cascade{Stage: 4}
	plain := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()}
	zeroed := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig(), Faults: faults.Config{}}
	for trial := 0; trial < 3; trial++ {
		seed := int64(8800 + trial)
		if a, b := harness.BuildAndRun(plain, sc, seed), harness.BuildAndRun(zeroed, sc, seed); !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: zero fault config changed the outcome:\n%+v\nvs\n%+v", trial, a, b)
		}
	}
}

// TestE13QualitativeShape checks the paper-predicted ordering at the top
// of the ladder on a small sample: under heavy faults the resilient
// helper must escalate no more often than the naive one and stay at
// least as correct.
func TestE13QualitativeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-arm sweep is slow")
	}
	t.Parallel()
	kbase := currentKB()
	fc := faults.Config{Rate: 0.4, ActionRate: 0.2, Degrade: 0.5, Seed: 1337}
	resilientCfg := core.DefaultConfig()
	resilientCfg.Resilience = core.DefaultResilience()
	res := &cell{}
	nai := &cell{}
	for i, sc := range e13Workload() {
		p := Params{Trials: 6, Seed: 99 + int64(i), Workers: 0}
		res.merge(runCell(sc, &harness.HelperRunner{KBase: kbase, Config: resilientCfg, Faults: fc}, p))
		nai.merge(runCell(sc, &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig(), Faults: fc}, p))
	}
	if res.escalated > nai.escalated {
		t.Errorf("resilient escalated more than naive under faults: %d vs %d", res.escalated, nai.escalated)
	}
	if res.correct < nai.correct {
		t.Errorf("resilient less correct than naive under faults: %d vs %d", res.correct, nai.correct)
	}
	if res.retries == 0 && res.quarantined == 0 {
		t.Error("resilient arm reported no retries or quarantines under heavy faults")
	}
}
