package lake

// The promotion gate: how lake entries become the SimLLM's in-context
// corpus and the retrieval history, closing the adaptive loop. Two
// policies exist precisely so experiment E18 can measure the paper's
// guard claim — only *verified* causal chains should enter the corpus,
// because a naive always-ingest pipeline promotes the model's own
// unconfirmed (sometimes fabricated) hypotheses and poisons later
// retrieval.

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
)

// Policy selects which lake evidence may enter the corpus.
type Policy string

const (
	// PolicyVerified promotes only chain edges the session's cross-check
	// path confirmed. Fabricated hypotheses can never reach a confirmed
	// chain (they fail concept resolution at test-planning time), so the
	// corpus stays clean by construction.
	PolicyVerified Policy = "verified"
	// PolicyAlways promotes every proposed hypothesis edge at its stated
	// confidence, confirmed or not — the naive ingest pipeline E18 shows
	// degrading as fabrications accumulate.
	PolicyAlways Policy = "always"
)

// VerifiedStrength is the constant rule strength confirmed edges
// promote at. Constant by design: a confirmed edge is a fact, not a
// bet, so re-confirmation must not inflate it — which also makes the
// promoted rule set reach a fixed point on repeat-class incidents.
const VerifiedStrength = 0.8

// Corpus is the promoted feedback corpus: prompt-side rules for the
// model's in-context window plus incident records for the retrieval
// history.
type Corpus struct {
	Rules   []llm.InContextRule
	History *kb.History
}

// Promote derives the feedback corpus from lake entries under the
// given policy. The returned history has passed one kb.SaveJSON /
// kb.LoadJSON round trip, so the in-memory corpus is bit-for-bit what
// a persisted corpus reloads as — the codec is part of the loop, not
// an export afterthought.
func Promote(entries []Entry, policy Policy) (Corpus, error) {
	c := Corpus{History: kb.NewHistory()}
	seen := map[[2]string]int{} // (cause, effect) -> index into c.Rules
	addRule := func(cause, effect string, strength float64) {
		if cause == "" || effect == "" || cause == effect {
			return
		}
		key := [2]string{cause, effect}
		if i, ok := seen[key]; ok {
			if strength > c.Rules[i].Strength {
				c.Rules[i].Strength = strength
			}
			return
		}
		seen[key] = len(c.Rules)
		c.Rules = append(c.Rules, llm.InContextRule{Cause: cause, Effect: effect, Strength: strength})
	}

	for _, e := range entries {
		switch policy {
		case PolicyAlways:
			for _, p := range e.Proposed {
				addRule(p.Cause, p.Effect, clamp01(p.Confidence))
			}
		default: // PolicyVerified
			for _, edge := range chainEdges(e) {
				addRule(edge.Cause, edge.Effect, VerifiedStrength)
			}
		}
		if rec, ok := historyRecord(e, policy); ok {
			c.History.Add(rec)
		}
	}
	sortRules(c.Rules)

	// Round-trip the history through the persistence codec: the lake
	// feedback path depends on SaveJSON/LoadJSON being lossless.
	var buf bytes.Buffer
	if err := c.History.SaveJSON(&buf); err != nil {
		return Corpus{}, fmt.Errorf("lake: promote: %w", err)
	}
	reloaded := kb.NewHistory()
	if err := reloaded.LoadJSON(&buf); err != nil {
		return Corpus{}, fmt.Errorf("lake: promote: %w", err)
	}
	c.History = reloaded
	return c, nil
}

// chainEdges renders an entry's confirmed chain as causal edges: each
// confirmed concept is caused by the next one deeper in the chain, and
// the chain head explains the first symptom.
func chainEdges(e Entry) []Edge {
	if len(e.Chain) == 0 {
		return nil
	}
	var out []Edge
	if len(e.Symptoms) > 0 {
		out = append(out, Edge{Cause: e.Chain[0], Effect: e.Symptoms[0]})
	}
	for i := 0; i+1 < len(e.Chain); i++ {
		out = append(out, Edge{Cause: e.Chain[i+1], Effect: e.Chain[i]})
	}
	return out
}

// historyRecord maps one entry onto the retrieval corpus. Verified
// policy: only mitigated incidents with a confirmed chain, root cause
// from the chain. Always policy: every incident, root cause from the
// chain when present, else the highest-confidence proposed cause.
func historyRecord(e Entry, policy Policy) (kb.IncidentRecord, bool) {
	root := ""
	if len(e.Chain) > 0 {
		root = e.Chain[len(e.Chain)-1]
	}
	if policy == PolicyVerified {
		if !e.Mitigated || root == "" {
			return kb.IncidentRecord{}, false
		}
	} else if root == "" {
		best := -1.0
		for _, p := range e.Proposed {
			if p.Confidence > best {
				best, root = p.Confidence, p.Cause
			}
		}
		if root == "" {
			return kb.IncidentRecord{}, false
		}
	}
	rec := kb.IncidentRecord{
		ID:         e.ID,
		Title:      fmt.Sprintf("%s incident %s", e.Scenario, e.ID),
		Summary:    fmt.Sprintf("resolved via %s; chain depth %d", policyLabel(policy), len(e.Chain)),
		Symptoms:   append([]string(nil), e.Symptoms...),
		RootCause:  root,
		TTMMinutes: e.TTMMinutes,
		Severity:   e.Severity,
		Tags:       append([]string(nil), e.Tags...),
	}
	for _, a := range e.Applied {
		rec.Mitigation = append(rec.Mitigation, mitigation.Action{
			Kind: mitigation.ActionKind(a.Kind), Target: a.Target, Param: a.Param,
		})
	}
	return rec, true
}

func policyLabel(p Policy) string {
	if p == PolicyAlways {
		return "always-ingest"
	}
	return "verified-ingest"
}

// sortRules orders rules (cause, effect) so promotion output is a pure
// function of the entry set, independent of map iteration.
func sortRules(rules []llm.InContextRule) {
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Cause != rules[j].Cause {
			return rules[i].Cause < rules[j].Cause
		}
		return rules[i].Effect < rules[j].Effect
	})
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
