package faults

// Transport-layer fault injection: the chaos-client side of the
// gateway's overload-protection story. Where faults.Injector degrades
// the telemetry INSIDE a session, HTTPSchedule degrades the HTTP
// clients OUTSIDE the service — dropped connections, slow bodies,
// oversized and truncated payloads — the adversarial traffic the E16
// chaos harness throws at a live socket while kill/restart cycles run.
//
// The determinism contract matches the rest of the package: the fault
// class for request index i is a pure function of (seed, i), derived
// with the same splitmix64 finalizer, so the set of requests that get
// acknowledged — and with it every E16 table byte — is independent of
// client concurrency and scheduling.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/parallel"
)

// HTTPClass enumerates the transport fault classes a chaos client can
// inject into one request.
type HTTPClass int

const (
	// HTTPNone sends a well-formed request and reads the response.
	HTTPNone HTTPClass = iota
	// HTTPDrop closes the TCP connection halfway through the request —
	// the server must not have acknowledged (no 2xx was readable).
	HTTPDrop
	// HTTPSlowBody dribbles the body in small chunks. A correct server
	// tolerates it (within its read timeout) and still acknowledges.
	HTTPSlowBody
	// HTTPOversize sends a body past the server's cap; the contract is
	// a 413, never an acknowledgement and never unbounded buffering.
	HTTPOversize
	// HTTPTruncate declares a Content-Length longer than the bytes sent
	// and half-closes; the contract is a 400-class refusal.
	HTTPTruncate
)

// String names the class (table and log labels).
func (c HTTPClass) String() string {
	switch c {
	case HTTPNone:
		return "none"
	case HTTPDrop:
		return "drop"
	case HTTPSlowBody:
		return "slow"
	case HTTPOversize:
		return "oversize"
	case HTTPTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("HTTPClass(%d)", int(c))
	}
}

// HTTPSchedule is the deterministic per-request fault schedule. Rate is
// the fraction of requests faulted (split uniformly across the four
// fault classes); Seed selects the schedule.
type HTTPSchedule struct {
	Rate float64
	Seed int64
	// Deadline bounds one chaos request's whole conversation (dial
	// excluded): the Send-side SetDeadline. Zero means the 30s default.
	// Harnesses that dribble bodies on loaded CI, or run the server on
	// a scaled clock, size this to their own timeout budget instead of
	// inheriting a hardcoded constant.
	Deadline time.Duration
}

// defaultSendDeadline is the per-request conversation bound when the
// schedule does not set one.
const defaultSendDeadline = 30 * time.Second

// deadline resolves the configured per-request bound.
func (s HTTPSchedule) deadline() time.Duration {
	if s.Deadline > 0 {
		return s.Deadline
	}
	return defaultSendDeadline
}

// ClassAt is the pure schedule function: the fault class for request
// index i. Identical (Rate, Seed, i) always yields the identical class,
// regardless of which goroutine asks.
func (s HTTPSchedule) ClassAt(i int) HTTPClass {
	if s.Rate <= 0 {
		return HTTPNone
	}
	base := parallel.DeriveSeed(s.Seed^int64(fnv64a("http-transport")), 0)
	drawAt := func(salt int64) float64 {
		z := parallel.DeriveSeed(base^salt, i)
		return float64(uint64(z)>>11) / (1 << 53)
	}
	if drawAt(0x7a11) >= s.Rate {
		return HTTPNone
	}
	return HTTPClass(1 + int(drawAt(0xc0de)*4))
}

// SendChaos issues one POST over a raw TCP connection, injecting the
// given fault class, and returns the HTTP status code it observed (0
// when the fault prevents any response, e.g. HTTPDrop). bodyCap is the
// server's advertised body limit — HTTPOversize sends past it. The
// conversation deadline comes from the schedule (s.Deadline, 30s when
// unset) rather than a hardcoded constant, so slow-body cases on a
// loaded CI box are cut short only when the harness asked for it.
func (s HTTPSchedule) SendChaos(addr, path, apiKey string, body []byte, class HTTPClass, bodyCap int) (int, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(s.deadline()))

	if class == HTTPOversize {
		// Pad deterministically past the cap; the server must refuse at
		// the cap, so content beyond it never needs to be valid JSON.
		pad := make([]byte, bodyCap+1024-len(body))
		for i := range pad {
			pad[i] = ' '
		}
		body = append(append([]byte{}, body...), pad...)
	}
	declared := len(body)
	if class == HTTPTruncate {
		declared = len(body) + 512 // promise more than we send
	}

	var req strings.Builder
	fmt.Fprintf(&req, "POST %s HTTP/1.1\r\n", path)
	fmt.Fprintf(&req, "Host: %s\r\n", addr)
	fmt.Fprintf(&req, "X-API-Key: %s\r\n", apiKey)
	req.WriteString("Content-Type: application/json\r\n")
	fmt.Fprintf(&req, "Content-Length: %d\r\n", declared)
	req.WriteString("Connection: close\r\n\r\n")
	head := req.String()

	switch class {
	case HTTPDrop:
		// Headers plus half the body, then a hard close: the server can
		// never have put a 2xx on the wire that we read.
		if _, err := io.WriteString(conn, head); err != nil {
			return 0, nil // already torn down: still "no ack"
		}
		_, _ = conn.Write(body[:len(body)/2])
		return 0, nil
	case HTTPSlowBody:
		if _, err := io.WriteString(conn, head); err != nil {
			return 0, err
		}
		for off := 0; off < len(body); off += 16 {
			end := off + 16
			if end > len(body) {
				end = len(body)
			}
			if _, err := conn.Write(body[off:end]); err != nil {
				return 0, err
			}
			time.Sleep(time.Millisecond)
		}
	default:
		if _, err := io.WriteString(conn, head); err != nil {
			return 0, err
		}
		if _, err := conn.Write(body); err != nil {
			return 0, err
		}
		if class == HTTPTruncate {
			// Half-close: the server sees EOF short of Content-Length
			// but can still write its refusal back to us.
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
		}
	}
	return readStatus(conn)
}

// SendChaos is the schedule-free form: one chaos request with the
// default 30s conversation deadline. Harnesses with their own timeout
// budget call the HTTPSchedule method instead.
func SendChaos(addr, path, apiKey string, body []byte, class HTTPClass, bodyCap int) (int, error) {
	return HTTPSchedule{}.SendChaos(addr, path, apiKey, body, class, bodyCap)
}

// readStatus parses the status code off an HTTP/1.x response and drains
// the rest.
func readStatus(conn net.Conn) (int, error) {
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("reading status line: %w", err)
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return 0, fmt.Errorf("malformed status line %q", strings.TrimSpace(line))
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, fmt.Errorf("malformed status code in %q", strings.TrimSpace(line))
	}
	_, _ = io.Copy(io.Discard, br)
	return code, nil
}
