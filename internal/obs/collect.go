package obs

import (
	"io"
	"sync"
)

// Fixed bucket layouts. These are part of the export contract: fixed
// layouts make histogram merges associative, which is what lets
// per-trial registries fold into fleet aggregates independently of
// worker count.
var (
	// TTMBuckets spans minutes-to-hours incident durations.
	TTMBuckets = []float64{5, 10, 20, 30, 45, 60, 90, 120, 180, 240, 360, 480}
	// RoundBuckets spans the helper's hypothesis-test iterations.
	RoundBuckets = []float64{1, 2, 3, 4, 6, 8, 10, 12}
	// LatencyBuckets spans per-call latencies in minutes.
	LatencyBuckets = []float64{0.25, 0.5, 1, 2, 3, 5, 8, 12, 20}
	// QueueBuckets spans fleet queueing delays in minutes.
	QueueBuckets = []float64{1, 5, 15, 30, 60, 120, 240, 480, 960}
	// ResolutionBuckets spans fleet resolution times (queue wait plus
	// penalized TTM) in minutes — wider than TTMBuckets because queueing
	// under saturation dominates the tail.
	ResolutionBuckets = []float64{15, 30, 60, 120, 240, 480, 960, 1920}
)

// Metric names. DESIGN.md §3 maps each paper cost metric onto these.
const (
	MSessions        = "aiops_sessions_total"
	MTTM             = "aiops_ttm_minutes"
	MRounds          = "aiops_session_rounds"
	MMistakes        = "aiops_mistakes_total"
	MOCEBusy         = "aiops_oce_busy_minutes_total"
	MEscalations     = "aiops_escalations_total"
	MApprovals       = "aiops_oce_approvals_total"
	MHypProposed     = "aiops_hypotheses_proposed_total"
	MHypTested       = "aiops_hypotheses_tested_total"
	MToolCalls       = "aiops_tool_invocations_total"
	MToolLatency     = "aiops_tool_latency_minutes"
	MToolRetries     = "aiops_tool_retries_total"
	MBreakerTrips    = "aiops_breaker_trips_total"
	MRerouted        = "aiops_rerouted_total"
	MQuarantined     = "aiops_quarantined_total"
	MLLMCalls        = "aiops_llm_calls_total"
	MLLMTokens       = "aiops_llm_tokens_total"
	MLLMCost         = "aiops_llm_cost_usd_total"
	MLLMLatency      = "aiops_llm_latency_minutes"
	MMitigations     = "aiops_mitigation_actions_total"
	MFleetIncidents  = "aiops_fleet_incidents_total"
	MFleetQueue      = "aiops_fleet_queue_minutes"
	MFleetUtil       = "aiops_fleet_utilization"
	MFleetShed       = "aiops_fleet_shed_total"
	MFleetResolution = "aiops_fleet_resolution_minutes"
	MFleetQueueDepth = "aiops_fleet_queue_depth_peak"
	MFleetDrain      = "aiops_fleet_drain_minutes"
	MFleetStolen     = "aiops_fleet_stolen_total"
	MCacheHits       = "aiops_cache_hits_total"
	MCacheMisses     = "aiops_cache_misses_total"
	MGwThrottled     = "aiops_gateway_throttled_total"
	MGwShed          = "aiops_gateway_shed_total"
	MJournalRecords  = "aiops_journal_records_total"
	MJournalReplayed = "aiops_journal_replayed_total"
	MJournalBytes    = "aiops_journal_bytes_total"
	MLakeEntries     = "aiops_lake_entries_total"
	MLakeBytes       = "aiops_lake_bytes_total"
)

// NewAIOpsRegistry declares the §3 metric families with their fixed
// bucket layouts and help text.
func NewAIOpsRegistry() *Registry {
	r := NewRegistry()
	r.DeclareCounter(MSessions, "sessions by runner and outcome (mitigated|escalated|unresolved)")
	r.DeclareHistogram(MTTM, "time to mitigation (or hand-off) per session, minutes — the paper's headline efficiency metric", TTMBuckets)
	r.DeclareHistogram(MRounds, "hypothesis-test rounds per session", RoundBuckets)
	r.DeclareCounter(MMistakes, "the paper's mistake overheads by kind (wrong-mitigation|secondary-impact|plan-error)")
	r.DeclareCounter(MOCEBusy, "responder busy time, minutes — the paper's management cost")
	r.DeclareCounter(MEscalations, "sessions handed off to a specialist team")
	r.DeclareCounter(MApprovals, "OCE approval decisions by mode (approved|pre-approved|veto)")
	r.DeclareCounter(MHypProposed, "hypotheses proposed by the former module")
	r.DeclareCounter(MHypTested, "hypothesis verdicts by outcome (supported|unsupported|inconclusive|no-test)")
	r.DeclareCounter(MToolCalls, "toolbox invocations by tool and disposition (ok|error|degraded)")
	r.DeclareHistogram(MToolLatency, "per-invocation tool latency, minutes", LatencyBuckets)
	r.DeclareCounter(MToolRetries, "tool invocations re-attempted after a failure (resilient path)")
	r.DeclareCounter(MBreakerTrips, "per-tool circuit breakers opened by repeated failures")
	r.DeclareCounter(MRerouted, "tests redirected to the monitor cross-check while a breaker was open")
	r.DeclareCounter(MQuarantined, "degraded tool results set aside as inconclusive")
	r.DeclareCounter(MLLMCalls, "model inferences — the paper's system cost, call count")
	r.DeclareCounter(MLLMTokens, "model tokens by kind (prompt|completion)")
	r.DeclareCounter(MLLMCost, "model inference cost in dollars (2023 GPT-4-32K pricing)")
	r.DeclareHistogram(MLLMLatency, "per-inference latency, minutes", LatencyBuckets)
	r.DeclareCounter(MMitigations, "executed mitigation actions by kind")
	r.DeclareCounter(MFleetIncidents, "fleet-level incident arrivals")
	r.DeclareHistogram(MFleetQueue, "fleet queueing delay before a responder frees up, minutes", QueueBuckets)
	r.DeclareGauge(MFleetUtil, "responder-pool busy fraction over the makespan")
	r.DeclareCounter(MFleetShed, "arrivals the admission controller shed straight to escalation (queue saturated)")
	r.DeclareHistogram(MFleetResolution, "customer-experienced resolution time (queue wait + penalized TTM), minutes", ResolutionBuckets)
	r.DeclareGauge(MFleetQueueDepth, "peak incidents waiting in the scheduler queue over the run")
	r.DeclareGauge(MFleetDrain, "simulated minutes between the last arrival and the pool going idle (graceful drain)")
	r.DeclareCounter(MFleetStolen, "saturated-region arrivals escalated to an idle responder in another region (by from/to region)")
	r.DeclareCounter(MCacheHits, "what-if fast-path cache hits by cache (route|embed) — avoided recomputation, i.e. saved system cost")
	r.DeclareCounter(MCacheMisses, "what-if fast-path cache misses by cache (route|embed)")
	r.DeclareCounter(MGwThrottled, "gateway requests refused 429 by the per-caller token bucket")
	r.DeclareCounter(MGwShed, "gateway creates refused 503 by queue-depth load shedding")
	r.DeclareCounter(MJournalRecords, "state transitions appended to the write-ahead incident journal")
	r.DeclareCounter(MJournalReplayed, "journal records replayed during boot-time recovery")
	r.DeclareCounter(MJournalBytes, "bytes appended to the write-ahead incident journal")
	r.DeclareCounter(MLakeEntries, "incident postmortems ingested into the data lake")
	r.DeclareCounter(MLakeBytes, "bytes appended to the data lake's incident log")
	return r
}

// fleetLabels builds the label set for fleet-level metrics: always the
// runner, plus the region when the event came from the sharded
// multi-region scheduler. Flat-path events carry no region and keep
// their legacy single-label series byte-identical.
func fleetLabels(e Event) Labels {
	if e.Region == "" {
		return Labels{"runner": e.Runner}
	}
	return Labels{"runner": e.Runner, "region": e.Region}
}

// Collect folds one event into the registry: the single mapping from
// the event stream onto the §3 metric families.
func Collect(r *Registry, e Event) {
	switch e.Type {
	case EvSessionEnd:
		if e.Outcome == nil {
			return
		}
		o := e.Outcome
		outcome := "unresolved"
		switch {
		case o.Mitigated:
			outcome = "mitigated"
		case o.Escalated:
			outcome = "escalated"
		}
		r.Inc(MSessions, Labels{"runner": e.Runner, "outcome": outcome}, 1)
		r.Observe(MTTM, Labels{"runner": e.Runner}, o.TTMMinutes)
		if o.Rounds > 0 {
			r.Observe(MRounds, Labels{"runner": e.Runner}, float64(o.Rounds))
		}
		r.Inc(MOCEBusy, Labels{"runner": e.Runner}, o.TTMMinutes)
		if o.Escalated {
			r.Inc(MEscalations, Labels{"runner": e.Runner}, 1)
		}
		for kind, n := range map[string]int{
			"wrong-mitigation": o.Wrong,
			"secondary-impact": o.Secondary,
			"plan-error":       o.PlanErrors,
		} {
			if n > 0 {
				r.Inc(MMistakes, Labels{"runner": e.Runner, "kind": kind}, float64(n))
			}
		}
		if o.CostUSD > 0 {
			r.Inc(MLLMCost, Labels{"runner": e.Runner}, o.CostUSD)
		}
	case EvHypothesis:
		r.Inc(MHypProposed, Labels{"runner": e.Runner}, 1)
	case EvHypothesisTested:
		r.Inc(MHypTested, Labels{"runner": e.Runner, "verdict": e.Verdict}, 1)
	case EvToolCall:
		r.Inc(MToolCalls, Labels{"tool": e.Tool, "disposition": e.Disposition}, 1)
		r.Observe(MToolLatency, Labels{"tool": e.Tool}, e.Latency.Minutes())
	case EvLLMCall:
		r.Inc(MLLMCalls, Labels{"runner": e.Runner}, 1)
		r.Inc(MLLMTokens, Labels{"runner": e.Runner, "kind": "prompt"}, float64(e.PromptTokens))
		r.Inc(MLLMTokens, Labels{"runner": e.Runner, "kind": "completion"}, float64(e.CompletionTokens))
		r.Observe(MLLMLatency, Labels{"runner": e.Runner}, e.Latency.Minutes())
	case EvMitigation:
		r.Inc(MMitigations, Labels{"kind": e.Action}, 1)
	case EvFleetIncident:
		labels := fleetLabels(e)
		r.Inc(MFleetIncidents, labels, 1)
		r.Observe(MFleetQueue, labels, e.Queue.Minutes())
		if e.Resolution > 0 {
			r.Observe(MFleetResolution, labels, e.Resolution.Minutes())
		}
	case EvFleetShed:
		labels := fleetLabels(e)
		r.Inc(MFleetIncidents, labels, 1)
		r.Inc(MFleetShed, labels, 1)
	case EvCacheStats:
		if e.CacheHits > 0 {
			r.Inc(MCacheHits, Labels{"cache": e.Cache, "runner": e.Runner}, float64(e.CacheHits))
		}
		if e.CacheMisses > 0 {
			r.Inc(MCacheMisses, Labels{"cache": e.Cache, "runner": e.Runner}, float64(e.CacheMisses))
		}
	case "approval":
		r.Inc(MApprovals, Labels{"runner": e.Runner, "mode": e.Disposition}, 1)
	case "veto":
		r.Inc(MApprovals, Labels{"runner": e.Runner, "mode": "veto"}, 1)
	case "retry":
		r.Inc(MToolRetries, Labels{"tool": e.Tool}, 1)
	case "quarantine":
		r.Inc(MQuarantined, Labels{"tool": e.Tool}, 1)
	case "breaker":
		switch e.Disposition {
		case "opened":
			r.Inc(MBreakerTrips, Labels{"tool": e.Tool}, 1)
		case "rerouted":
			r.Inc(MRerouted, Labels{"tool": e.Tool}, 1)
		}
	}
}

// Sink is the top-level collection target: a globally ordered event log
// plus the aggregate registry. Parallel paths buffer into per-trial
// Recorders and Absorb them in trial order; serial paths may Emit into
// the Sink directly (it implements Observer).
type Sink struct {
	mu     sync.Mutex
	events []Event
	reg    *Registry
	seq    int64
}

// NewSink builds a sink over the standard aiops registry.
func NewSink() *Sink { return &Sink{reg: NewAIOpsRegistry()} }

// Emit implements Observer: the event gets the next global sequence
// number, joins the log, and feeds the registry.
func (s *Sink) Emit(e Event) {
	s.mu.Lock()
	s.seq++
	e.Seq = s.seq
	s.events = append(s.events, e)
	s.mu.Unlock()
	Collect(s.reg, e)
}

// Absorb folds one trial's buffered events into the sink. Callers must
// absorb recorders in trial order — that ordering, not scheduling, is
// what makes the log and the aggregates worker-count-independent.
func (s *Sink) Absorb(r *Recorder) {
	if r == nil {
		return
	}
	for _, e := range r.Events {
		s.Emit(e)
	}
}

// AbsorbSink folds another sink's log and aggregates into s, re-assigning
// global sequence numbers. It exists for harnesses that run whole
// sub-simulations concurrently (e.g. independent fleet cells): give each
// cell a private sink and absorb the cell sinks in cell order, and the
// merged log stays worker-count-independent. Gauge values resolve to the
// last absorbed sink's, which is likewise deterministic in that order.
func (s *Sink) AbsorbSink(o *Sink) {
	if s == nil || o == nil {
		return
	}
	o.mu.Lock()
	events := append([]Event(nil), o.events...)
	o.mu.Unlock()
	s.mu.Lock()
	for _, e := range events {
		s.seq++
		e.Seq = s.seq
		s.events = append(s.events, e)
	}
	s.mu.Unlock()
	s.reg.Merge(o.reg)
}

// Observer adapts the sink to the Observer interface, mapping a nil
// *Sink to a nil interface so downstream nil-observer checks keep
// short-circuiting (a typed-nil Observer would defeat them).
func (s *Sink) Observer() Observer {
	if s == nil {
		return nil
	}
	return s
}

// Events returns the absorbed log (live slice; do not mutate).
func (s *Sink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Registry exposes the aggregate metrics.
func (s *Sink) Registry() *Registry { return s.reg }

// WriteEvents writes the event log as JSON lines.
func (s *Sink) WriteEvents(w io.Writer) error {
	s.mu.Lock()
	events := s.events
	s.mu.Unlock()
	return WriteEventLog(w, events)
}

// WriteMetrics writes the aggregate registry in Prometheus text format.
func (s *Sink) WriteMetrics(w io.Writer) error { return s.reg.WritePrometheus(w) }
