package netsim

import "sync/atomic"

// This file implements the what-if fast path's routing cache: ECMP route
// DAGs are computed once per (topology state, src, dst, filter) and
// reused across the RouteTraffic fixed-point rounds, across risk
// assessment's clone/recompute cycles, and across every clone in a
// lineage (Clone shares the cache pointer).
//
// Soundness does not rely on invalidation signals. Each entry records,
// at compute time, (a) the topology generation, (b) the ordinals of every
// node/link the DAG traverses, and (c) the ordinals of every node/link
// that was unusable. A lookup revalidates against live state: the
// generation must match, every DAG element must still be usable, and
// every then-unusable element must still be unusable. Under those
// conditions the current usable set is a subset of the compute-time one
// that still contains the whole DAG, so the min-hop distance and the
// ECMP path set are provably unchanged and a fresh compute would be
// bit-identical. Because validation reads live structs on every lookup,
// any mutation — fault injection, mitigation, Clock.Advance-driven
// triggers, even direct writes in tests — is picked up with no
// bookkeeping at the mutation site.
//
// A stale entry is not discarded: its recorded down set is the delta log
// the incremental repairer (incremental.go) diffs against the live down
// set to patch the entry's distance field instead of re-running the full
// search.
//
// The cache is intentionally not locked: a Network lineage (a world and
// its what-if clones) is only ever used from one goroutine; the parallel
// harness gives each trial its own world.

// routeCacheEnabled globally gates the cache so benchmarks and the
// determinism tests can diff cached vs uncached output byte-for-byte.
var routeCacheEnabled atomic.Bool

func init() { routeCacheEnabled.Store(true) }

// SetRouteCacheEnabled toggles the route DAG cache process-wide (the
// -nocache CLI flag and the cache-off determinism tests use it). Toggle
// between runs, not mid-run.
func SetRouteCacheEnabled(on bool) { routeCacheEnabled.Store(on) }

// RouteCacheEnabled reports whether the route DAG cache is active.
func RouteCacheEnabled() bool { return routeCacheEnabled.Load() }

// FilterKeyer is an optional PathSelector refinement: selectors that can
// summarize the routing constraint they would impose on a flow as a
// stable string key unlock the route cache. Two flows mapping to the
// same (src, dst, key) must route identically. Selectors that cannot
// promise this simply don't implement the interface and bypass the
// cache.
type FilterKeyer interface {
	PathSelector
	// FilterKey returns the constraint key for f, and whether the
	// selector's FilterFor(f) semantics are fully captured by it.
	FilterKey(f *Flow) (string, bool)
}

type routeKey struct {
	src, dst NodeID
	filter   string
}

// downSet is the set of unusable elements at DAG compute time, as sorted
// ordinals into the generation's ordinal table. One capture is shared by
// every cache store within a single RouteTraffic pass (the network
// cannot change mid-pass).
type downSet struct {
	nodes []int32
	links []int32
}

type routeEntry struct {
	structVer int
	dag       *RouteDAG // nil = dst unreachable at compute time
	dist      []int32   // full distance-to-dst field (nil = not repairable)
	nodes     []int32   // DAG element ordinals (empty for nil dag)
	links     []int32
	down      *downSet
}

// routeCache holds two entries per key (MRU first) so risk assessment's
// parent/clone alternation — same flows, pre- and post-mitigation
// usable sets — doesn't thrash. Hit/miss counters feed the
// aiops_cache_* metrics. It also owns the lineage's dense routing
// scratch (see dagbuild.go).
type routeCache struct {
	entries      map[routeKey][2]*routeEntry
	hits, misses int64
	repairs      int64 // misses answered by incremental repair, not full BFS
	scratch      routeScratch
}

func newRouteCache() *routeCache {
	return &routeCache{entries: make(map[routeKey][2]*routeEntry)}
}

func (c *routeCache) store(k routeKey, e *routeEntry) {
	b := c.entries[k]
	b[1] = b[0]
	b[0] = e
	c.entries[k] = b
}

func newRouteEntry(dag *RouteDAG, ver int, dist []int32, down *downSet) *routeEntry {
	e := &routeEntry{structVer: ver, dag: dag, dist: dist, down: down}
	if dag == nil {
		return e
	}
	// The DAG's dense arrays are immutable after construction: share,
	// don't copy. A DAG crosses each link in at most one direction, so
	// dirs enumerates distinct links.
	e.nodes = dag.nodes
	e.links = make([]int32, len(dag.dirs))
	for i, df := range dag.dirs {
		e.links[i] = df.dir >> 1
	}
	return e
}

// captureDown records every currently-unusable node and link as sorted
// ordinals.
func (n *Network) captureDown() *downSet {
	nodePtrs, linkPtrs := n.ptrTables()
	d := &downSet{}
	for i, nd := range nodePtrs {
		if !nd.Usable() {
			d.nodes = append(d.nodes, int32(i))
		}
	}
	for i, l := range linkPtrs {
		if !l.Usable() {
			d.links = append(d.links, int32(i))
		}
	}
	return d
}

// entryValid revalidates a cache entry against live network state; see
// the file comment for the argument that validity implies bit-identical
// recomputation.
func (n *Network) entryValid(e *routeEntry) bool {
	if e.structVer != n.structVer {
		return false
	}
	nodePtrs, linkPtrs := n.ptrTables()
	for _, o := range e.nodes {
		if !nodePtrs[o].Usable() {
			return false
		}
	}
	for _, o := range e.links {
		if !linkPtrs[o].Usable() {
			return false
		}
	}
	for _, o := range e.down.nodes {
		if nodePtrs[o].Usable() {
			return false
		}
	}
	for _, o := range e.down.links {
		if linkPtrs[o].Usable() {
			return false
		}
	}
	return true
}

// cachedRouteDAG routes flow f under sel, serving from the lineage cache
// when the selector is keyable. dc is the lazily-built pass-shared down
// capture. A miss first attempts an incremental repair of the stale
// bucket entries before falling back to the full compute.
func (n *Network) cachedRouteDAG(f *Flow, sel PathSelector, dc **downSet) *RouteDAG {
	key, keyable := "", sel == nil
	if sel != nil {
		if fk, ok := sel.(FilterKeyer); ok {
			key, keyable = fk.FilterKey(f)
		}
	}
	if !keyable || n.rc == nil || !routeCacheEnabled.Load() {
		var filter NodeFilter
		if sel != nil {
			filter = sel.FilterFor(f)
		}
		return RouteDAGFor(n, f.Src, f.Dst, filter)
	}
	rk := routeKey{src: f.Src, dst: f.Dst, filter: key}
	b := n.rc.entries[rk]
	for i, e := range b {
		if e != nil && n.entryValid(e) {
			n.rc.hits++
			if i == 1 {
				b[0], b[1] = b[1], b[0]
				n.rc.entries[rk] = b
			}
			return e.dag
		}
	}
	n.rc.misses++
	var filter NodeFilter
	if sel != nil {
		filter = sel.FilterFor(f)
	}
	if *dc == nil {
		*dc = n.captureDown()
	}
	dag, dist := n.repairOrRoute(b, f.Src, f.Dst, filter, *dc)
	n.rc.store(rk, newRouteEntry(dag, n.structVer, dist, *dc))
	return dag
}

// RouteFlowDAG routes a single flow under sel through the route cache;
// telemetry probes use it so repeated probing of a stable topology costs
// one DAG computation.
func RouteFlowDAG(n *Network, f *Flow, sel PathSelector) *RouteDAG {
	var dc *downSet
	return n.cachedRouteDAG(f, sel, &dc)
}

// RouteCacheStats reports the lineage-shared cache's cumulative hit and
// miss counts (zero when caching is disabled).
func (n *Network) RouteCacheStats() (hits, misses int64) {
	if n.rc == nil {
		return 0, 0
	}
	return n.rc.hits, n.rc.misses
}
