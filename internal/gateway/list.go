package gateway

// GET /v1/incidents: the cursor-paginated list view over the gateway's
// canonical records. Records sort by (opened_at_minutes, id) ascending
// — the same total order the fleet scheduler admits arrivals in — so a
// page walk visits incidents in fleet admission order and two walks
// over an unchanged store return byte-identical pages.
//
// The cursor is an opaque token (base64url of "minutes|id") naming the
// last record already returned; the next page resumes strictly after
// that position. Because the sort key is the immutable admission
// identity — a record's opened_at_minutes and id never change — a
// cursor stays valid under concurrent inserts: a new arrival sorts
// entirely before or after the cursor position, it cannot move an
// already-returned record nor be skipped within an unvisited suffix.
//
// Filters (region=, status=, severity=) conjoin and apply before
// pagination, so limit counts matching records. An unknown region or
// status value that is syntactically valid simply matches nothing for
// region, while status and severity are enumerated and validated
// (422) — typos in an enum are caller bugs, not empty result sets.

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// List pagination bounds: limit defaults to defaultPageLimit and may
// not exceed maxPageLimit.
const (
	defaultPageLimit = 50
	maxPageLimit     = 200
)

// ListPage is GET /v1/incidents' response: one page of records in
// (opened_at_minutes, id) order, and the resume cursor when the walk
// is not finished.
type ListPage struct {
	Incidents []Record `json:"incidents"`
	// NextCursor resumes the walk after the last record above. Absent
	// on the final page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// encodeCursor renders a record's position in the list order as an
// opaque resume token. FormatFloat 'g' with -1 precision round-trips
// the float64 exactly, so decode(encode(r)) is the identity.
func encodeCursor(r *Record) string {
	raw := strconv.FormatFloat(r.OpenedAtMinutes, 'g', -1, 64) + "|" + r.ID
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeCursor parses a resume token back into its (minutes, id) sort
// position.
func decodeCursor(tok string) (minutes float64, id string, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, "", fmt.Errorf("not a cursor token")
	}
	head, id, ok := strings.Cut(string(raw), "|")
	if !ok {
		return 0, "", fmt.Errorf("not a cursor token")
	}
	minutes, err = strconv.ParseFloat(head, 64)
	if err != nil {
		return 0, "", fmt.Errorf("not a cursor token")
	}
	return minutes, id, nil
}

// listBefore reports whether record position (am, aid) sorts strictly
// before (bm, bid) in the list order.
func listBefore(am float64, aid string, bm float64, bid string) bool {
	if am != bm {
		return am < bm
	}
	return aid < bid
}

// parseSeverityParam accepts the wire forms the JSON codec does:
// "sevN" or a bare integer 0..MaxSeverity.
func parseSeverityParam(v string) (Severity, error) {
	var sev Severity
	if err := sev.UnmarshalJSON([]byte(strconv.Quote(v))); err == nil {
		return sev, nil
	}
	if err := sev.UnmarshalJSON([]byte(v)); err != nil {
		return 0, err
	}
	return sev, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request, _ string) {
	s.stepWall()
	q := r.URL.Query()

	limit := defaultPageLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxPageLimit {
			writeErr(w, http.StatusUnprocessableEntity, CodeValidation, "limit",
				"limit must be an integer in [1, %d]", maxPageLimit)
			return
		}
		limit = n
	}

	afterSet := false
	var afterMin float64
	var afterID string
	if tok := q.Get("cursor"); tok != "" {
		m, id, err := decodeCursor(tok)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, CodeValidation, "cursor",
				"invalid cursor %q: %v", tok, err)
			return
		}
		afterSet, afterMin, afterID = true, m, id
	}

	region := q.Get("region")
	status := q.Get("status")
	if status != "" && !ValidStatus(status) {
		writeErr(w, http.StatusUnprocessableEntity, CodeValidation, "status",
			"unknown status %q: want one of %s", status, strings.Join(Statuses, "|"))
		return
	}
	var sevFilter *Severity
	if v := q.Get("severity"); v != "" {
		sev, err := parseSeverityParam(v)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, CodeValidation, "severity",
				"unknown severity %q: want sev0..sev%d", v, MaxSeverity)
			return
		}
		sevFilter = &sev
	}

	// Snapshot the matching records under the lock, then sort and cut
	// the page. Reservations (nil placeholders for in-flight creates)
	// are invisible to the list — they have no acknowledged state yet.
	s.mu.Lock()
	matches := make([]*Record, 0, len(s.records))
	for _, rec := range s.records {
		if rec == nil {
			continue
		}
		if region != "" && rec.Region != region {
			continue
		}
		if status != "" && rec.Status != status {
			continue
		}
		if sevFilter != nil && rec.Severity != *sevFilter {
			continue
		}
		matches = append(matches, rec)
	}
	s.mu.Unlock()
	sort.Slice(matches, func(i, j int) bool {
		return listBefore(matches[i].OpenedAtMinutes, matches[i].ID,
			matches[j].OpenedAtMinutes, matches[j].ID)
	})
	if afterSet {
		// Drop everything at or before the cursor position.
		cut := sort.Search(len(matches), func(i int) bool {
			return listBefore(afterMin, afterID, matches[i].OpenedAtMinutes, matches[i].ID)
		})
		matches = matches[cut:]
	}

	page := ListPage{Incidents: make([]Record, 0, min(limit, len(matches)))}
	for _, rec := range matches {
		if len(page.Incidents) == limit {
			page.NextCursor = encodeCursor(&page.Incidents[len(page.Incidents)-1])
			break
		}
		page.Incidents = append(page.Incidents, s.view(rec))
	}
	writeJSON(w, http.StatusOK, page)
}
