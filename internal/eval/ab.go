package eval

import (
	"math/rand"
	"time"

	"repro/internal/harness"
	"repro/internal/parallel"
	"repro/internal/scenarios"
)

// ArmStats summarizes one A/B arm.
type ArmStats struct {
	Name       string
	N          int
	TTMMinutes []float64 // penalized TTM per incident
	Mitigated  int
	Correct    int
	Escalated  int
	Wrong      int
	Secondary  int
	Tokens     int
}

// MeanTTM returns the arm's mean penalized TTM in minutes.
func (a *ArmStats) MeanTTM() float64 { return Mean(a.TTMMinutes) }

// MedianTTM returns the arm's median penalized TTM in minutes.
func (a *ArmStats) MedianTTM() float64 { return Median(a.TTMMinutes) }

// MitigationRate is the fraction of incidents the arm mitigated itself.
func (a *ArmStats) MitigationRate() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.Mitigated) / float64(a.N)
}

// CorrectRate is the fraction with ground-truth-correct mitigations.
func (a *ArmStats) CorrectRate() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.N)
}

// add records one result.
func (a *ArmStats) add(r harness.Result) {
	a.N++
	a.TTMMinutes = append(a.TTMMinutes, r.PenalizedTTM().Minutes())
	if r.Mitigated {
		a.Mitigated++
	}
	if r.Correct {
		a.Correct++
	}
	if r.Escalated {
		a.Escalated++
	}
	a.Wrong += r.Wrong
	a.Secondary += r.Secondary
	a.Tokens += r.Tokens
}

// ABResult is the full randomized-trial outcome.
type ABResult struct {
	Treatment ArmStats
	Control   ArmStats

	Welch       TTestResult
	MannWhitney TTestResult
	PermP       float64
	// EffectSize is Cohen's d for the TTM difference.
	EffectSize float64
	// CI for the mean TTM difference (treatment - control), minutes.
	DiffLo, DiffHi float64
	// TrialErrors counts trials whose runner panicked; they are excluded
	// from both arms (the parallel pool records the panic instead of
	// crashing the evaluation).
	TrialErrors int
}

// SignificantAt reports whether both the parametric and rank tests call
// the TTM difference significant at level alpha.
func (r *ABResult) SignificantAt(alpha float64) bool {
	return r.Welch.P < alpha && r.MannWhitney.P < alpha
}

// ABConfig parameterizes the randomized trial.
type ABConfig struct {
	N       int // incidents in the trial
	Mix     []scenarios.Scenario
	Seed    int64
	Workers int // parallel trial workers (<= 0: GOMAXPROCS)
}

// ABTest randomly assigns each sampled incident to the treatment
// (helper-assisted) or control (helper-free) arm and compares TTM and
// mistake overheads — §3's "most robust evaluation we can get".
//
// Randomization is per incident: the same scenario stream would have
// been handled by either arm, and confounders (incident class mix,
// severity) balance out in expectation.
func ABTest(cfg ABConfig, treatment, control harness.Runner) *ABResult {
	if cfg.N <= 0 {
		cfg.N = 100
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = scenarios.All()
	}
	// Randomization stays a single serial pass over one rng (the draw
	// sequence defines the trial), then the drawn trials execute on the
	// parallel pool and aggregate back in draw order — so the result is
	// bit-identical for every worker count.
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &ABResult{
		Treatment: ArmStats{Name: treatment.Name()},
		Control:   ArmStats{Name: control.Name()},
	}
	type draw struct {
		sc        scenarios.Scenario
		seed      int64
		treatment bool
	}
	draws := make([]draw, cfg.N)
	for i := range draws {
		sc := mix[rng.Intn(len(mix))]
		seed := rng.Int63()
		draws[i] = draw{sc: sc, seed: seed, treatment: rng.Intn(2) == 0}
	}
	trials := parallel.RunTrials(cfg.N, cfg.Workers, cfg.Seed, func(_ int64, i int) harness.Result {
		d := draws[i]
		if d.treatment {
			return harness.BuildAndRun(treatment, d.sc, d.seed)
		}
		return harness.BuildAndRun(control, d.sc, d.seed)
	})
	for i, tr := range trials {
		if tr.Err != nil {
			res.TrialErrors++
			continue
		}
		if draws[i].treatment {
			res.Treatment.add(tr.Value)
		} else {
			res.Control.add(tr.Value)
		}
	}
	res.Welch = WelchT(res.Treatment.TTMMinutes, res.Control.TTMMinutes)
	res.EffectSize = CohensD(res.Treatment.TTMMinutes, res.Control.TTMMinutes)
	res.MannWhitney = MannWhitneyU(res.Treatment.TTMMinutes, res.Control.TTMMinutes)
	res.PermP = PermutationTest(res.Treatment.TTMMinutes, res.Control.TTMMinutes, 2000, rng)

	// Bootstrap CI on the difference of means.
	diffs := make([]float64, 0, 2000)
	bootRng := rand.New(rand.NewSource(cfg.Seed ^ 0xb007))
	for i := 0; i < 2000; i++ {
		diffs = append(diffs, resample(res.Treatment.TTMMinutes, bootRng)-resample(res.Control.TTMMinutes, bootRng))
	}
	res.DiffLo, res.DiffHi = Percentile(diffs, 2.5), Percentile(diffs, 97.5)
	return res
}

func resample(xs []float64, rng *rand.Rand) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < len(xs); i++ {
		sum += xs[rng.Intn(len(xs))]
	}
	return sum / float64(len(xs))
}

// RunMatrix evaluates several runners over the same incident stream
// (paired, not randomized): every runner sees identical incidents. Used
// by the comparative experiments (E2, E3, E9) where pairing removes
// incident-mix variance entirely. Trials run on the parallel pool
// (workers <= 0 means GOMAXPROCS); each trial rebuilds its instance per
// runner from the same seed, and aggregation happens in stream order,
// so the matrix is identical at any worker count.
func RunMatrix(n, workers int, mix []scenarios.Scenario, seed int64, runners ...harness.Runner) map[string]*ArmStats {
	if len(mix) == 0 {
		mix = scenarios.All()
	}
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]*ArmStats, len(runners))
	for _, r := range runners {
		out[r.Name()] = &ArmStats{Name: r.Name()}
	}
	type draw struct {
		sc   scenarios.Scenario
		seed int64
	}
	draws := make([]draw, n)
	for i := range draws {
		draws[i] = draw{sc: mix[rng.Intn(len(mix))], seed: rng.Int63()}
	}
	trials := parallel.RunTrials(n, workers, seed, func(_ int64, i int) []harness.Result {
		row := make([]harness.Result, len(runners))
		for j, r := range runners {
			row[j] = harness.BuildAndRun(r, draws[i].sc, draws[i].seed)
		}
		return row
	})
	for _, tr := range trials {
		if tr.Err != nil {
			continue
		}
		for j, r := range runners {
			out[r.Name()].add(tr.Value[j])
		}
	}
	return out
}

// MinutesOf converts a duration to float minutes; tiny readability
// helper used by reports.
func MinutesOf(d time.Duration) float64 { return d.Minutes() }
