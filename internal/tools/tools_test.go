package tools

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/kb"
	"repro/internal/netsim"
	"repro/internal/scenarios"
)

func hasFinding(res Result, substr string) bool {
	for _, f := range res.Findings {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}

func build(t *testing.T, sc scenarios.Scenario, seed int64) *scenarios.Instance {
	t.Helper()
	return sc.Build(rand.New(rand.NewSource(seed)))
}

func TestRegistryOwnership(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	if err := r.Register("monitoring", NewPingMeshTool()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("monitoring", NewPingMeshTool()); err != nil {
		t.Fatal("same-team re-register should succeed:", err)
	}
	if err := r.Register("wan", NewPingMeshTool()); err == nil {
		t.Fatal("cross-team override should fail")
	}
	if _, ok := r.Get(kb.ToolPingMesh); !ok {
		t.Fatal("registered tool not found")
	}
	if r.Owner(kb.ToolPingMesh) != "monitoring" {
		t.Fatal("owner wrong")
	}
	if n := r.RemoveTeam("monitoring"); n != 1 {
		t.Fatalf("RemoveTeam removed %d", n)
	}
	if len(r.Names()) != 0 {
		t.Fatal("registry not empty after team removal")
	}
}

func TestDefaultRegistryComplete(t *testing.T) {
	t.Parallel()
	r := NewDefaultRegistry(nil, nil, "q", "web")
	want := []string{
		kb.ToolPingMesh, kb.ToolLinkUtil, kb.ToolDeviceHealth, kb.ToolCounters,
		kb.ToolSyslog, kb.ToolControllerState, kb.ToolPrefixTable,
		kb.ToolRecentChanges, kb.ToolMonitorCheck, kb.ToolSimilarIncidents, kb.ToolAskCustomer,
	}
	for _, name := range want {
		tool, ok := r.Get(name)
		if !ok {
			t.Errorf("tool %s missing", name)
			continue
		}
		if tool.Latency() <= 0 {
			t.Errorf("tool %s has no latency", name)
		}
		if tool.Description() == "" {
			t.Errorf("tool %s has no description", name)
		}
		if tool.Risk() != RiskReadOnly {
			t.Errorf("diagnostic tool %s not read-only", name)
		}
	}
}

func TestPingMeshToolDetectsCascade(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.Cascade{Stage: 5}, 1)
	res, err := NewPingMeshTool().Invoke(in.World, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, kb.CPacketLoss+"=true") {
		t.Fatalf("findings = %v", res.Findings)
	}
	// Healthy world says false.
	w := scenarios.StandardWorld(rand.New(rand.NewSource(9)))
	res, _ = NewPingMeshTool().Invoke(w, nil)
	if !hasFinding(res, kb.CPacketLoss+"=false") {
		t.Fatalf("healthy findings = %v", res.Findings)
	}
}

func TestLinkUtilToolFindsOverloadAndDominantService(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.Congestion{}, 2)
	res, err := NewLinkUtilTool().Invoke(in.World, map[string]string{"top": "5"})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, kb.CLinkOverload+"=true") {
		t.Fatalf("findings = %v", res.Findings)
	}
	if res.Bindings[kb.PhService] != "bulk-transfer" {
		t.Errorf("dominant service binding = %q", res.Bindings[kb.PhService])
	}
	if res.Bindings[kb.PhLink] == "" {
		t.Error("no link binding")
	}
}

func TestDeviceHealthToolBindsDownDevices(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.DeviceFailure{}, 3)
	res, err := NewDeviceHealthTool().Invoke(in.World, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, kb.CDeviceDown+"=true") {
		t.Fatalf("findings = %v", res.Findings)
	}
	if res.Bindings[kb.PhDevice] == "" {
		t.Error("no device binding")
	}
}

func TestCountersToolSeparatesGrayFromCongestion(t *testing.T) {
	t.Parallel()
	gray := build(t, &scenarios.GrayLink{}, 4)
	res, _ := NewCountersTool().Invoke(gray.World, nil)
	if !hasFinding(res, kb.CLinkCorruption+"=true") {
		t.Fatalf("gray link not flagged: %v", res.Findings)
	}
	if res.Bindings[kb.PhLink] == "" {
		t.Error("no gray link binding")
	}

	cong := build(t, &scenarios.Congestion{}, 4)
	res, _ = NewCountersTool().Invoke(cong.World, nil)
	if hasFinding(res, kb.CLinkCorruption+"=true") {
		t.Fatalf("congestion misflagged as corruption: %v", res.Findings)
	}
}

func TestSyslogToolFindsProtocolCrash(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.NovelProtocol{}, 5)
	res, err := NewSyslogTool().Invoke(in.World, map[string]string{"sincemin": "120"})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, kb.CDeviceOSCrash+"=true") {
		t.Fatalf("crash not found: %v", res.Findings)
	}
	if !hasFinding(res, kb.CProtocolBug+"=true") {
		t.Fatalf("protocol bug not inferred: %v", res.Findings)
	}
	if res.Bindings[kb.PhProtocol] != kb.FastpathProtocol {
		t.Errorf("protocol binding = %q", res.Bindings[kb.PhProtocol])
	}
	if res.Bindings[kb.PhDevice] == "" {
		t.Error("no wedged-device binding")
	}
}

func TestControllerAndPrefixToolsOnCascade(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.Cascade{Stage: 5}, 6)
	res, _ := NewControllerStateTool().Invoke(in.World, nil)
	if !hasFinding(res, kb.CWANFailover+"=true") || res.Bindings[kb.PhWAN] != "B4" {
		t.Fatalf("controller state: %v %v", res.Findings, res.Bindings)
	}
	res, _ = NewPrefixTableTool().Invoke(in.World, nil)
	if !hasFinding(res, kb.CPrefixConflict+"=true") {
		t.Fatalf("prefix conflict missed: %v", res.Findings)
	}

	healthy := scenarios.StandardWorld(rand.New(rand.NewSource(10)))
	res, _ = NewControllerStateTool().Invoke(healthy, nil)
	if !hasFinding(res, kb.CWANFailover+"=false") {
		t.Fatalf("healthy controller: %v", res.Findings)
	}
}

func TestRecentChangesToolCrossChecks(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.Cascade{Stage: 5}, 7)
	res, err := NewRecentChangesTool().Invoke(in.World, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, kb.CConfigPush+"=true") {
		t.Fatalf("config push missed: %v", res.Findings)
	}
	if !hasFinding(res, kb.CConfigInconsistency+"=true") {
		t.Fatalf("inconsistency cross-check failed: %v", res.Findings)
	}
	if res.Bindings[kb.PhChange] == "" {
		t.Error("no change binding")
	}

	// A push with no live inconsistency must NOT be flagged.
	w := scenarios.StandardWorld(rand.New(rand.NewSource(11)))
	w.Changes.Add(netsim.ChangeRecord{Team: "x", Kind: netsim.ChangeConfigPush, Description: "benign"})
	res, _ = NewRecentChangesTool().Invoke(w, nil)
	if hasFinding(res, kb.CConfigInconsistency+"=true") {
		t.Fatalf("benign push flagged: %v", res.Findings)
	}
}

func TestRecentChangesToolSeesRollout(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.NovelProtocol{}, 8)
	res, _ := NewRecentChangesTool().Invoke(in.World, map[string]string{"sincemin": "40000"})
	if !hasFinding(res, kb.CProtocolRollout+"=true") {
		t.Fatalf("rollout missed: %v", res.Findings)
	}
	if res.Bindings[kb.PhProtocol] != kb.FastpathProtocol {
		t.Errorf("protocol binding = %q", res.Bindings[kb.PhProtocol])
	}
}

func TestMonitorCrossCheckTool(t *testing.T) {
	t.Parallel()
	fa := build(t, &scenarios.FalseAlarm{}, 9)
	res, _ := NewMonitorCrossCheckTool().Invoke(fa.World, map[string]string{"monitor": "pingmesh"})
	if !hasFinding(res, kb.CMonitorFalseAlarm+"=true") {
		t.Fatalf("false alarm missed: %v", res.Findings)
	}
	if res.Bindings[kb.PhMonitor] != "pingmesh" {
		t.Error("no monitor binding")
	}

	// Real loss: monitors agree, no false alarm.
	real := build(t, &scenarios.Cascade{Stage: 5}, 9)
	res, _ = NewMonitorCrossCheckTool().Invoke(real.World, nil)
	if hasFinding(res, kb.CMonitorFalseAlarm+"=true") {
		t.Fatalf("real incident misflagged: %v", res.Findings)
	}
}

func TestSimilarIncidentsTool(t *testing.T) {
	t.Parallel()
	hist := kb.NewHistory()
	hist.Add(kb.IncidentRecord{ID: "h1", Title: "packet loss web us-east", RootCause: kb.CLinkCorruption, TTMMinutes: 40})
	hist.Add(kb.IncidentRecord{ID: "h2", Title: "bulk congestion links hot", RootCause: kb.CTrafficSurge, TTMMinutes: 25})
	store := embed.NewStore(embed.NewDomainEmbedder(128))
	for _, r := range hist.All() {
		store.Add(r.ID, r.Text())
	}
	tool := NewSimilarIncidentsTool(store, hist, "packet drops in web tier us-east")
	res, err := tool.Invoke(nil, map[string]string{"k": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, "similar=h1") {
		t.Fatalf("retrieval wrong: %v", res.Findings)
	}
	empty := NewSimilarIncidentsTool(embed.NewStore(embed.NewDomainEmbedder(16)), hist, "q")
	res, _ = empty.Invoke(nil, nil)
	if !hasFinding(res, "database=empty") {
		t.Fatal("empty store not reported")
	}
}

func TestAskCustomerToolRevealsPattern(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.NovelProtocol{}, 12)
	res, _ := NewAskCustomerTool("directconnect").Invoke(in.World, nil)
	if !hasFinding(res, "pattern=hdr-0xdead") {
		t.Fatalf("customer pattern not revealed: %v", res.Findings)
	}
	res, _ = NewAskCustomerTool("no-such-service").Invoke(in.World, nil)
	if !hasFinding(res, "no-details") {
		t.Fatal("missing-service answer wrong")
	}
}

func TestBrokenCollectorSurfacesAsUnavailable(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(13)))
	w.Inject(&netsim.MonitorBrokenFault{Monitor: "linkutil"})
	res, _ := NewLinkUtilTool().Invoke(w, nil)
	if !hasFinding(res, "linkutil_unavailable=true") {
		t.Fatalf("broken collector not surfaced: %v", res.Findings)
	}
}

func TestRiskClassString(t *testing.T) {
	t.Parallel()
	for rc, want := range map[RiskClass]string{RiskReadOnly: "read-only", RiskLow: "low", RiskMedium: "medium", RiskHigh: "high"} {
		if rc.String() != want {
			t.Errorf("%d -> %q", int(rc), rc.String())
		}
	}
}

func TestLossHistoryToolClassifiesFlap(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.GrayLinkFlapping{}, 21)
	// Let the flap run so the recorder captures oscillation.
	for i := 0; i < 50; i++ {
		in.World.Clock.Advance(1 * time.Minute)
		in.World.Invalidate()
	}
	res, err := NewLossHistoryTool().Invoke(in.World, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, "loss_trend=intermittent") {
		t.Fatalf("flap not classified intermittent: %v", res.Findings)
	}
}

func TestLossHistoryToolQuietWorld(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(22)))
	for i := 0; i < 20; i++ {
		w.Clock.Advance(2 * time.Minute)
	}
	res, err := NewLossHistoryTool().Invoke(w, map[string]string{"lookbackmin": "30"})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, "all_series=quiet") {
		t.Fatalf("healthy world findings: %v", res.Findings)
	}
}

func TestLossHistoryToolWithoutRecorder(t *testing.T) {
	t.Parallel()
	n := netsim.NewNetwork()
	n.AddNode(netsim.Node{ID: "a"})
	w := netsim.NewWorld(n, nil, nil)
	res, err := NewLossHistoryTool().Invoke(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, "history=unavailable") {
		t.Fatalf("findings: %v", res.Findings)
	}
}

func TestSyslogToolReportsRestoredLinks(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(30)))
	lid := netsim.MakeLinkID("us-east-tor-p0-0", "us-east-agg-p0-0")
	w.Inject(&netsim.LinkDownFault{Link: lid})
	w.Resolve("link-down:" + string(lid)) // repaired before anyone looked
	res, err := NewSyslogTool().Invoke(w, map[string]string{"sincemin": "120", "sev": "warning"})
	if err != nil {
		t.Fatal(err)
	}
	if hasFinding(res, kb.CLinkDown+"=true") {
		t.Fatalf("restored link still reported down: %v", res.Findings)
	}
	if !hasFinding(res, "links=restored") {
		t.Fatalf("restoration not surfaced: %v", res.Findings)
	}
}

func TestSyslogToolBindsDownLink(t *testing.T) {
	t.Parallel()
	in := build(t, &scenarios.MaintenanceOverlap{}, 31)
	res, err := NewSyslogTool().Invoke(in.World, map[string]string{"sincemin": "120", "sev": "warning"})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(res, kb.CLinkDown+"=true") {
		t.Fatalf("down links not found: %v", res.Findings)
	}
	if res.Bindings[kb.PhLink] == "" {
		t.Fatal("no $LINK binding from syslog")
	}
}
