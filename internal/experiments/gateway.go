package experiments

// E15 — gateway load ladder over live HTTP (extension): E14 measures
// the fleet scheduler's saturation knee by calling fleet.Simulate
// directly; E15 measures the same knee end-to-end through the service
// surface. Each cell boots a real gateway (internal/gateway, the same
// stack cmd/aiopsd serves) on a loopback TCP socket with a simulated
// clock, drives it with a pool of synthetic HTTP clients (reusing
// internal/parallel as the client pool), then drains the scheduler over
// the socket and reads the ladder row out of the drain summary JSON.
//
// The ladder exercises every live-mode moving part at once: API-key
// auth, strict JSON decoding, scenario normalization, sessions running
// in handler goroutines, the (At, ID)-ordered pending set, admission
// control and the drain path. Because arrivals carry explicit
// simulated-clock timestamps and client-supplied IDs, the summary is a
// pure function of (seed, trials): byte-identical at ANY client
// concurrency (-workers), which is the repo's determinism contract
// pushed through a real network socket.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/harness"
	"repro/internal/parallel"
	"repro/internal/scenarios"
)

// e15Rates reuses E14's offered-load ladder so the two experiments'
// knees are directly comparable: same rungs, direct call vs through
// the socket.
var e15Rates = e14Rates

// e15Key authenticates the synthetic load clients.
const e15Key = "e15-loadgen-key"

// e15Arrival is one pre-drawn client request.
type e15Arrival struct {
	id       string
	scenario string
	atMin    float64
}

// e15Tape pre-draws the arrival tape serially from the seed — Poisson
// gaps and scenario draws exactly like fleet.Simulate's phase 1. The
// tape (not submission order) is what determines the schedule: every
// arrival carries its simulated timestamp and ID in the payload.
func e15Tape(rate float64, n int, seed int64) []e15Arrival {
	rng := rand.New(rand.NewSource(seed))
	mix := scenarios.All()
	tape := make([]e15Arrival, n)
	var now time.Duration
	for i := 0; i < n; i++ {
		now += time.Duration(rng.ExpFloat64() / rate * float64(time.Hour))
		tape[i] = e15Arrival{
			id:       fmt.Sprintf("ld-%04d", i),
			scenario: mix[rng.Intn(len(mix))].Name(),
			atMin:    now.Minutes(),
		}
	}
	return tape
}

// e15Cell runs one (rate, arm) cell: boot a gateway on a loopback
// socket, submit the whole tape from the parallel client pool, drain
// over the socket, return the drain summary.
func e15Cell(rate float64, p Params, r harness.Runner) (gateway.DrainSummary, error) {
	n := p.Trials * 4
	seed := p.Seed + 151 // same arrivals per rung across arms: paired comparison
	tape := e15Tape(rate, n, seed)

	sched := fleet.NewLive(fleet.LiveConfig{
		OCEs: 2, QueueLimit: 8,
		Obs: p.Obs, RunnerName: r.Name(),
	})
	gw := gateway.NewServer(gateway.Config{
		Keys:  map[string]string{e15Key: "loadgen"},
		Clock: gateway.NewSimClock(),
		Sched: sched, Runner: r, Seed: seed,
		Sink: p.Obs, SimControl: true,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return gateway.DrainSummary{}, fmt.Errorf("e15: listen: %w", err)
	}
	hs := &http.Server{Handler: gw.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	// The synthetic client pool: each trial is one POST, sessions run
	// server-side in the handler goroutines, so -workers is exactly the
	// end-to-end client concurrency.
	trials := parallel.RunTrials(n, p.Workers, seed, func(_ int64, i int) error {
		a := tape[i]
		body, err := json.Marshal(map[string]any{
			"id": a.id, "scenario": a.scenario, "opened_at_minutes": a.atMin,
		})
		if err != nil {
			return err
		}
		return e15Post(client, base+"/v1/incidents", body, http.StatusCreated, nil)
	})
	for _, tr := range trials {
		if tr.Err != nil {
			return gateway.DrainSummary{}, fmt.Errorf("e15: client crashed: %v", tr.Err)
		}
		if tr.Value != nil {
			return gateway.DrainSummary{}, fmt.Errorf("e15: %w", tr.Value)
		}
	}

	var sum gateway.DrainSummary
	if err := e15Post(client, base+"/v1/sim/drain", nil, http.StatusOK, &sum); err != nil {
		return gateway.DrainSummary{}, fmt.Errorf("e15: drain: %w", err)
	}
	return sum, nil
}

// e15Post sends one authenticated POST, checks the status, and
// optionally decodes the response body into out.
func e15Post(client *http.Client, url string, body []byte, want int, out any) error {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("X-API-Key", e15Key)
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("POST %s: HTTP %d (want %d): %s", url, resp.StatusCode, want, bytes.TrimSpace(data))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// E15GatewayLoad sweeps offered load through the live gateway and
// tabulates the same ladder and knee as E14 — measured through a real
// socket instead of a direct Simulate call.
func E15GatewayLoad(p Params) []*eval.Table {
	p = p.withDefaults()
	kbase := currentKB()
	fseed := p.FaultSeed
	if fseed == 0 {
		fseed = 1337
	}
	var fc faults.Config
	if p.FaultRate > 0 {
		fc = faults.Config{Rate: p.FaultRate, ActionRate: p.FaultRate / 2, Degrade: 0.5, Seed: fseed}
	}
	resilientCfg := core.DefaultConfig()
	resilientCfg.Resilience = core.DefaultResilience()

	arms := []harness.Runner{
		&harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: resilientCfg, Faults: fc},
		&harness.HelperRunner{Label: "naive-helper", KBase: kbase, Config: core.DefaultConfig(), Faults: fc},
		&harness.ControlRunner{Label: "unassisted-oce", KBase: kbase, Faults: fc},
	}
	if p.Naive {
		arms = arms[1:]
	}

	// Cells run serially: each cell is already parallel inside (the
	// HTTP client pool), and serial cells keep the shared sink's event
	// order deterministic, exactly as E14 does.
	ladder := eval.NewTable("E15 (extension): gateway load ladder — E14's sweep driven end-to-end over live HTTP (cmd/aiopsd service surface), 2 OCEs, queue bound 8",
		"arrivals/h", "arm", "shed", "meanQueue(m)", "p50Res(m)", "p99Res(m)", "mitigated", "util")
	sums := make(map[string][]gateway.DrainSummary, len(arms))
	for _, rate := range e15Rates {
		for _, arm := range arms {
			sum, err := e15Cell(rate, p, arm)
			if err != nil {
				// A cell failure is a harness bug (socket, HTTP, decode),
				// not a measurement: fail loudly rather than tabulate it.
				panic(err)
			}
			sums[arm.Name()] = append(sums[arm.Name()], sum)
			ladder.AddRow(rate, arm.Name(), fmt.Sprintf("%d/%d", sum.Shed, sum.Incidents),
				sum.MeanQueueMinutes, sum.P50ResolutionMinutes, sum.P99ResolutionMinutes,
				eval.Pct(sum.MitigatedRate), fmt.Sprintf("%.2f", sum.Utilization))
		}
	}

	knee := eval.NewTable(fmt.Sprintf("E15: saturation knee over HTTP — highest load with zero shedding and P99 resolution under %.0fm", e14KneeP99.Minutes()),
		"arm", "knee(arr/h)", "p99Res at knee(m)")
	for _, arm := range arms {
		rate, sum := e15Knee(sums[arm.Name()])
		if sum == nil {
			knee.AddRow(arm.Name(), "none", "-")
			continue
		}
		knee.AddRow(arm.Name(), rate, sum.P99ResolutionMinutes)
	}
	return []*eval.Table{ladder, knee}
}

// e15Knee returns the highest ladder rung (and its summary) an arm
// sustained — zero shedding, P99 resolution under the E14 bound — or
// (0, nil) when even the lowest rung saturated.
func e15Knee(sums []gateway.DrainSummary) (float64, *gateway.DrainSummary) {
	rate, best := 0.0, (*gateway.DrainSummary)(nil)
	for i := range sums {
		if sums[i].Shed == 0 && sums[i].P99ResolutionMinutes <= e14KneeP99.Minutes() {
			rate, best = e15Rates[i], &sums[i]
		}
	}
	return rate, best
}
