package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/incident"
	"repro/internal/obs"
	"repro/internal/scenarios"
)

// shardScenario / shardRunner: a synthetic flat-cost incident class so
// the tests exercise the scheduler, not world construction.
type shardScenario struct{}

func (shardScenario) Name() string           { return "shardflat" }
func (shardScenario) RootCauseClass() string { return "test" }
func (shardScenario) Build(rng *rand.Rand) *scenarios.Instance {
	return &scenarios.Instance{Incident: &incident.Incident{Severity: rng.Intn(4)}, Scenario: shardScenario{}}
}

type shardRunner struct{}

func (shardRunner) Name() string { return "shardflat" }
func (shardRunner) Run(in *scenarios.Instance, seed int64) harness.Result {
	rng := rand.New(rand.NewSource(seed))
	mit := rng.Float64() < 0.85
	return harness.Result{
		Scenario: in.Scenario.Name(), Mitigated: mit, Escalated: !mit,
		TTM: time.Duration(10+rng.Intn(80)) * time.Minute,
	}
}

func regionNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("r%02d", i)
	}
	return out
}

// TestShardCountIndependence pins the steal-free contract from the
// issue: with stealing disabled the regions are independent systems, so
// running their engines on 1 vs 16 shard executors must produce
// byte-identical per-region tables.
func TestShardCountIndependence(t *testing.T) {
	t.Parallel()
	run := func(shards int) string {
		rep := SimulateSharded(ShardedConfig{
			Regions: regionNames(16), OCEs: 2, ArrivalsPerHour: 6, Incidents: 2000,
			QueueLimit: 4, Seed: 99, Workers: 4, Shards: shards,
			Mix: []scenarios.Scenario{shardScenario{}}, Runner: shardRunner{},
			Storm: scenarios.StormConfig{Correlation: 0.3},
		})
		return ShardedSummaryTable("shards", rep).String()
	}
	if a, b := run(1), run(16); a != b {
		t.Fatalf("per-region tables differ between 1 and 16 shards:\n%s\nvs\n%s", a, b)
	}
}

// TestShardedWorkerByteIdentity is the core determinism claim with the
// full machinery on — storms, stealing, observability: workers=1 and
// workers=8 must agree byte-for-byte on tables, event logs and metrics.
func TestShardedWorkerByteIdentity(t *testing.T) {
	t.Parallel()
	run := func(workers int) (string, string, string) {
		sink := obs.NewSink()
		rep := SimulateSharded(ShardedConfig{
			Regions: regionNames(4), OCEs: 2, ArrivalsPerHour: 8, Incidents: 1500,
			QueueLimit: 3, Seed: 7, Workers: workers, Steal: true,
			Mix: []scenarios.Scenario{shardScenario{}}, Runner: shardRunner{},
			Storm: scenarios.StormConfig{Correlation: 0.35, MaxFanout: 3, Window: 20 * time.Minute},
			Obs:   sink,
		})
		total := 0
		for i := range rep.Regions {
			total += len(rep.Regions[i].Outcomes)
		}
		if total != 1500 || len(rep.Total.Outcomes) != 1500 {
			t.Fatalf("lost arrivals: region sum %d, total %d", total, len(rep.Total.Outcomes))
		}
		if rep.Total.Admitted+rep.Total.Shed != 1500 {
			t.Fatalf("admitted %d + shed %d != 1500", rep.Total.Admitted, rep.Total.Shed)
		}
		var ev, met bytes.Buffer
		if err := sink.WriteEvents(&ev); err != nil {
			t.Fatal(err)
		}
		if err := sink.WriteMetrics(&met); err != nil {
			t.Fatal(err)
		}
		return ShardedSummaryTable("steal", rep).String(), ev.String(), met.String()
	}
	t1, e1, m1 := run(1)
	t8, e8, m8 := run(8)
	if t1 != t8 {
		t.Errorf("tables differ between workers=1 and workers=8:\n%s\nvs\n%s", t1, t8)
	}
	if e1 != e8 {
		t.Error("event logs differ between workers=1 and workers=8")
	}
	if m1 != m8 {
		t.Error("metric dumps differ between workers=1 and workers=8")
	}
}

// TestStealEscalatesToIdleRegion drives the minimal steal scenario by
// hand: region a saturates (one responder busy, queue full), region b
// is idle, so the third arrival executes on b's pool at the tick
// barrier — homed in a, handled by b, charged the barrier latency.
func TestStealEscalatesToIdleRegion(t *testing.T) {
	t.Parallel()
	s := NewSharded(ShardedLiveConfig{
		Regions: []string{"a", "b"}, OCEs: 1, QueueLimit: 1,
		Steal: true, BatchStep: 10 * time.Minute,
	})
	long := harness.Result{Scenario: "synthetic", Mitigated: true, TTM: 5 * time.Hour}
	for i, at := range []time.Duration{1 * time.Minute, 2 * time.Minute, 3 * time.Minute} {
		if err := s.Offer(LiveArrival{
			ID: fmt.Sprintf("a-%d", i), At: at, Scenario: "synthetic", Region: "a", Result: long,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.StepTo(10 * time.Minute)
	st, ok := s.Lookup("a-2")
	if !ok {
		t.Fatal("a-2 not found")
	}
	if st.State != StateActive {
		t.Fatalf("a-2 state = %s, want active", st.State)
	}
	if st.HandledBy != "b" {
		t.Fatalf("a-2 HandledBy = %q, want b", st.HandledBy)
	}
	if st.Outcome.Region != "a" {
		t.Fatalf("a-2 home region = %q, want a", st.Outcome.Region)
	}
	if st.Outcome.Queue != 7*time.Minute {
		t.Fatalf("a-2 queue = %s, want 7m barrier latency", st.Outcome.Queue)
	}
	rep := s.DrainSharded()
	if rep.Stolen != 1 {
		t.Fatalf("stolen = %d, want 1", rep.Stolen)
	}
	if rep.Regions[0].Region != "a" || rep.Regions[0].StolenOut != 1 {
		t.Fatalf("region a stolenOut = %d, want 1", rep.Regions[0].StolenOut)
	}
	if rep.Regions[1].Region != "b" || rep.Regions[1].StolenIn != 1 {
		t.Fatalf("region b stolenIn = %d, want 1", rep.Regions[1].StolenIn)
	}
	if got := len(rep.Regions[1].Outcomes); got != 1 {
		t.Fatalf("region b executed %d outcomes, want 1", got)
	}
}

// TestStealSheds: when every region is saturated the overflow arrival
// sheds at its home shard, exactly like single-cell admission control —
// and with stealing disabled, saturation sheds immediately.
func TestStealSheds(t *testing.T) {
	t.Parallel()
	long := harness.Result{Scenario: "synthetic", Mitigated: true, TTM: 5 * time.Hour}
	build := func(steal bool) *ShardedScheduler {
		s := NewSharded(ShardedLiveConfig{
			Regions: []string{"a", "b"}, OCEs: 1, QueueLimit: 1,
			Steal: steal, BatchStep: 10 * time.Minute,
		})
		for _, r := range []string{"a", "b"} {
			for i, at := range []time.Duration{1 * time.Minute, 2 * time.Minute, 3 * time.Minute} {
				if err := s.Offer(LiveArrival{
					ID: fmt.Sprintf("%s-%d", r, i), At: at, Scenario: "synthetic", Region: r, Result: long,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.StepTo(10 * time.Minute)
		return s
	}
	for _, steal := range []bool{true, false} {
		s := build(steal)
		for _, id := range []string{"a-2", "b-2"} {
			st, ok := s.Lookup(id)
			if !ok || st.State != StateShed {
				t.Fatalf("steal=%v: %s state = %v, want shed", steal, id, st.State)
			}
		}
		if rep := s.DrainSharded(); rep.Stolen != 0 || rep.Total.Shed != 2 {
			t.Fatalf("steal=%v: stolen %d shed %d, want 0 and 2", steal, rep.Stolen, rep.Total.Shed)
		}
	}
}

// TestShardedRegionValidation: unknown regions are refused at Offer,
// and an empty region normalizes to DefaultRegion.
func TestShardedRegionValidation(t *testing.T) {
	t.Parallel()
	s := NewSharded(ShardedLiveConfig{Regions: []string{"eu", "us"}})
	err := s.Offer(LiveArrival{ID: "x", At: time.Minute, Region: "mars",
		Result: harness.Result{TTM: time.Minute}})
	if !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("unknown region error = %v, want ErrUnknownRegion", err)
	}

	d := NewSharded(ShardedLiveConfig{})
	if got := d.Regions(); len(got) != 1 || got[0] != DefaultRegion {
		t.Fatalf("default regions = %v", got)
	}
	if err := d.Offer(LiveArrival{ID: "y", At: time.Minute,
		Result: harness.Result{TTM: time.Minute, Mitigated: true}}); err != nil {
		t.Fatal(err)
	}
	d.StepTo(time.Minute)
	st, ok := d.Lookup("y")
	if !ok || st.Outcome.Region != DefaultRegion {
		t.Fatalf("empty region lookup = %+v, want home %q", st, DefaultRegion)
	}
}

// TestShardedSingleRegionMatchesLive: a one-region sharded scheduler
// (stealing off) is semantically the single-cell live scheduler — the
// drained outcomes must match field-for-field apart from the region
// stamp, and the aggregate tables byte-for-byte.
func TestShardedSingleRegionMatchesLive(t *testing.T) {
	t.Parallel()
	arrivals := liveArrivalSet(11, 80)

	live := NewLive(LiveConfig{OCEs: 2, QueueLimit: 4})
	sharded := NewSharded(ShardedLiveConfig{OCEs: 2, QueueLimit: 4})
	for _, a := range arrivals {
		if err := live.Offer(a); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Offer(a); err != nil {
			t.Fatal(err)
		}
	}
	lr := live.Drain()
	sr := sharded.Drain()
	if len(lr.Outcomes) != len(sr.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(lr.Outcomes), len(sr.Outcomes))
	}
	for i := range sr.Outcomes {
		want, got := lr.Outcomes[i], sr.Outcomes[i]
		got.Region = "" // live leaves the region unset; sharded stamps home
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("outcome %d differs:\nlive    %+v\nsharded %+v", i, want, got)
		}
	}
	a := SummaryTable("x", []Arm{{Name: "arm", Report: lr}}).String()
	b := SummaryTable("x", []Arm{{Name: "arm", Report: sr}}).String()
	if a != b {
		t.Fatalf("aggregate tables differ:\n%s\nvs\n%s", a, b)
	}
}
