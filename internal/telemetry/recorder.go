package telemetry

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/netsim"
)

// Point is one time-series sample.
type Point struct {
	At time.Duration
	V  float64
}

// Recorder samples world state as the simulated clock advances,
// producing the time series production monitoring stores retain. Keys
// are "svc:<service>:loss", "svc:<service>:latency" and "overall:loss".
//
// Sampling piggybacks on clock advances (at most one sample per
// Interval), so anything that costs incident time — tool queries, OCE
// approvals, LLM inference — leaves a telemetry trail behind it, and
// intermittent faults become visible as oscillating series.
type Recorder struct {
	World    *netsim.World
	Interval time.Duration

	last   time.Duration
	series map[string][]Point
}

// NewRecorder attaches a recorder to the world's clock and takes an
// initial sample. Interval defaults to 2 minutes.
func NewRecorder(w *netsim.World, interval time.Duration) *Recorder {
	if interval <= 0 {
		interval = 2 * time.Minute
	}
	r := &Recorder{World: w, Interval: interval, last: -interval, series: map[string][]Point{}}
	w.Clock.OnAdvance(func(now time.Duration) {
		if now-r.last >= r.Interval {
			r.sample(now)
		}
	})
	r.sample(w.Clock.Now())
	return r
}

func (r *Recorder) sample(now time.Duration) {
	r.last = now
	rep := r.World.Report()
	add := func(key string, v float64) {
		r.series[key] = append(r.series[key], Point{At: now, V: v})
	}
	add("overall:loss", rep.OverallLossRate())
	for name, ss := range rep.ServiceStats {
		add("svc:"+name+":loss", ss.LossRate)
		add("svc:"+name+":latency", ss.MaxLatency)
	}
}

// Keys lists recorded series, sorted.
func (r *Recorder) Keys() []string {
	out := make([]string, 0, len(r.series))
	for k := range r.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Range returns the samples of key within [from, to], in time order.
func (r *Recorder) Range(key string, from, to time.Duration) []Point {
	var out []Point
	for _, p := range r.series[key] {
		if p.At >= from && p.At <= to {
			out = append(out, p)
		}
	}
	return out
}

// Trend classifies a series' recent behavior.
type Trend string

// Trend classes.
const (
	TrendFlat         Trend = "flat"
	TrendRising       Trend = "rising"
	TrendFalling      Trend = "falling"
	TrendIntermittent Trend = "intermittent"
)

// Classify examines the series over the lookback window ending now and
// returns its trend plus the number of threshold crossings. A series
// that crosses the threshold repeatedly is intermittent — the flapping
// signature; otherwise first-vs-last thirds decide rising/falling/flat.
func (r *Recorder) Classify(key string, lookback time.Duration, threshold float64) (Trend, int) {
	now := r.World.Clock.Now()
	pts := r.Range(key, now-lookback, now)
	if len(pts) < 3 {
		return TrendFlat, 0
	}
	crossings := 0
	above := pts[0].V > threshold
	for _, p := range pts[1:] {
		if (p.V > threshold) != above {
			crossings++
			above = p.V > threshold
		}
	}
	if crossings >= 3 {
		return TrendIntermittent, crossings
	}
	third := len(pts) / 3
	if third == 0 {
		third = 1
	}
	var first, last float64
	for _, p := range pts[:third] {
		first += p.V
	}
	first /= float64(third)
	for _, p := range pts[len(pts)-third:] {
		last += p.V
	}
	last /= float64(third)
	switch {
	case last > first*1.5+1e-9 && last > threshold:
		return TrendRising, crossings
	case first > last*1.5+1e-9 && first > threshold:
		return TrendFalling, crossings
	default:
		return TrendFlat, crossings
	}
}

// String renders a compact summary of the recorder's contents.
func (r *Recorder) String() string {
	n := 0
	for _, s := range r.series {
		n += len(s)
	}
	return fmt.Sprintf("recorder{series=%d samples=%d interval=%s}", len(r.series), n, r.Interval)
}

// recorderKey is the world-attachment slot the recorder occupies.
const recorderKey = "telemetry.recorder"

// AttachRecorder creates a recorder for the world and registers it as a
// world attachment so tools can find it. Idempotent: an existing
// recorder is returned unchanged.
func AttachRecorder(w *netsim.World, interval time.Duration) *Recorder {
	if r, ok := w.Attachments[recorderKey].(*Recorder); ok {
		return r
	}
	r := NewRecorder(w, interval)
	w.Attachments[recorderKey] = r
	return r
}

// RecorderOf returns the world's attached recorder, or nil.
func RecorderOf(w *netsim.World) *Recorder {
	r, _ := w.Attachments[recorderKey].(*Recorder)
	return r
}
