package baseline_test

import (
	"math/rand"
	"repro/internal/baseline"
	"testing"

	"repro/internal/embed"
	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/replayer"
	"repro/internal/scenarios"
	"repro/internal/tools"
)

func routineCorpus(seed int64) *replayer.Corpus {
	return replayer.Generate(replayer.Options{N: 80, Seed: seed})
}

func registryFor(in *scenarios.Instance, hist *kb.History) *tools.Registry {
	store := embed.NewStore(embed.NewDomainEmbedder(128))
	for _, r := range hist.All() {
		store.Add(r.ID, r.Text())
	}
	return tools.NewDefaultRegistry(store, hist, in.Incident.Title+" "+in.Incident.Summary, in.Incident.Service)
}

func TestOneShotSolvesRoutineIncidents(t *testing.T) {
	t.Parallel()
	corpus := routineCorpus(1)
	kbase := kb.Default()
	pred := baseline.Train(corpus.History, kbase, embed.NewDomainEmbedder(128))

	total, solved := 0, 0
	for _, sc := range scenarios.Routine() {
		classSolved := 0
		for seed := int64(100); seed < 105; seed++ {
			in := sc.Build(rand.New(rand.NewSource(seed)))
			out := pred.Execute(in.World, in.Incident, registryFor(in, corpus.History))
			total++
			if out.Mitigated && in.Succeeded(out.Applied) {
				solved++
				classSolved++
			}
		}
		// Per class the one-shot must solve a clear majority; text
		// ambiguity between classes costs it some incidents, which is
		// the realistic failure mode of retrieval-based predictors.
		if classSolved < 3 {
			t.Errorf("one-shot solved only %d/5 %s (trained on similar history)", classSolved, sc.Name())
		}
	}
	if float64(solved)/float64(total) < 0.7 {
		t.Errorf("one-shot routine success %d/%d below 70%%", solved, total)
	}
}

func TestOneShotFailsDeepAndNovelIncidents(t *testing.T) {
	t.Parallel()
	corpus := routineCorpus(2)
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	pred := baseline.Train(corpus.History, kbase, embed.NewDomainEmbedder(128))

	for _, sc := range []scenarios.Scenario{&scenarios.Cascade{Stage: 5}, &scenarios.NovelProtocol{}} {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			for seed := int64(200); seed < 204; seed++ {
				in := sc.Build(rand.New(rand.NewSource(seed)))
				out := pred.Execute(in.World, in.Incident, registryFor(in, corpus.History))
				if out.Mitigated && in.Succeeded(out.Applied) {
					t.Errorf("seed %d: one-shot resolved %s (predicted %s) — Fig. 2/3 shape broken",
						seed, sc.Name(), out.Predicted)
				}
			}
		})
	}
}

func TestOneShotEmptyHistoryEscalates(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	pred := baseline.Train(kb.NewHistory(), kbase, embed.NewDomainEmbedder(64))
	in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(3)))
	out := pred.Execute(in.World, in.Incident, registryFor(in, kb.NewHistory()))
	if out.Mitigated || !out.Escalated {
		t.Fatalf("outcome = %+v", out)
	}
	if out.TTM <= 0 {
		t.Error("TTM not accounted on escalation")
	}
}

func TestOneShotPredictVotes(t *testing.T) {
	t.Parallel()
	hist := kb.NewHistory()
	for i := 0; i < 3; i++ {
		hist.Add(kb.IncidentRecord{
			ID: string(rune('a' + i)), Title: "packet drops web tier retransmissions",
			RootCause: kb.CLinkCorruption,
		})
	}
	hist.Add(kb.IncidentRecord{ID: "z", Title: "billing slow", RootCause: kb.CTrafficSurge})
	pred := baseline.Train(hist, kb.Default(), embed.NewDomainEmbedder(128))
	in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(4)))
	p, ok := pred.Predict(in.Incident)
	if !ok {
		t.Fatal("no prediction")
	}
	if p.RootCause != kb.CLinkCorruption {
		t.Errorf("predicted %s", p.RootCause)
	}
	if p.Confidence <= 0.5 {
		t.Errorf("confidence %v", p.Confidence)
	}
	if len(p.Template) == 0 {
		t.Error("no mitigation template")
	}
}

func TestRunTSGScriptAndLLMEquivalentOutcome(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	tsg, _ := kbase.TSGByID("tsg-device-down")

	// Script path.
	inScript := (&scenarios.DeviceFailure{}).Build(rand.New(rand.NewSource(5)))
	resScript := baseline.RunTSG(inScript.World, tsg, registryFor(inScript, kb.NewHistory()), nil)
	if !resScript.Completed || !resScript.Mitigated {
		t.Fatalf("script TSG run failed: %+v", resScript)
	}
	if resScript.LLMTokens != 0 {
		t.Error("script path consumed tokens")
	}

	// LLM path on the identical incident.
	inLLM := (&scenarios.DeviceFailure{}).Build(rand.New(rand.NewSource(5)))
	model := llm.NewSimLLM(kbase, 5)
	resLLM := baseline.RunTSG(inLLM.World, tsg, registryFor(inLLM, kb.NewHistory()), model)
	if !resLLM.Completed || !resLLM.Mitigated {
		t.Fatalf("LLM TSG run failed: %+v", resLLM)
	}
	if resLLM.LLMTokens == 0 {
		t.Error("LLM path consumed no tokens")
	}
	if !resLLM.Applied.Satisfies(resScript.Applied.Actions) {
		t.Errorf("paths diverged: script=%v llm=%v", resScript.Applied, resLLM.Applied)
	}
	if resLLM.Elapsed <= resScript.Elapsed {
		t.Error("LLM path should be slower (inference latency)")
	}
}

func TestTSGCostDoesNotAmortize(t *testing.T) {
	t.Parallel()
	m := baseline.DefaultCostModel()
	// A year of operation: monthly TSG revisions, 20 incidents/month,
	// ~2000 tokens per automated run.
	llmCost := m.LLMTSGCost(12, 240, 2000)
	scriptCost := m.ScriptCost(12)
	if llmCost.Total() <= scriptCost.Total() {
		t.Fatalf("paper's conclusion inverted: llm=$%.0f script=$%.0f", llmCost.Total(), scriptCost.Total())
	}
	// And the gap grows with change rate.
	llm2 := m.LLMTSGCost(24, 240, 2000)
	script2 := m.ScriptCost(24)
	if llm2.Total()-script2.Total() <= llmCost.Total()-scriptCost.Total() {
		t.Error("cost gap should grow with TSG churn")
	}
	if llmCost.String() == "" || scriptCost.String() == "" {
		t.Error("cost report rendering empty")
	}
	_ = mitigation.NoOp
}
