// Verified LLM tools: §4.4's research direction as working code. The
// model translates natural-language questions into a telemetry query
// DSL; a schema verifier gates every generation; verification errors are
// fed back for repair; hallucinated fields never execute.
//
// Run with:
//
//	go run ./examples/verified-tools
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/scenarios"
	"repro/internal/tools"
)

func main() {
	// A live incident to interrogate: the Tokyo-style protocol bug.
	in := (&scenarios.NovelProtocol{}).Build(rand.New(rand.NewSource(1)))
	fmt.Println("incident:", in.Incident.Title)

	questions := []string{
		"which links are hot right now?",
		"list unhealthy devices",
		"any critical log events with fatal errors?",
		"which services have loss impact?",
	}

	// First with a reliable model.
	model := llm.NewSimLLM(kb.Default(), 1)
	tool := tools.NewNLQueryTool(model)
	fmt.Println("\n--- reliable model ---")
	ask(tool, in, questions)

	// Then with a heavily hallucinating model: generations with invented
	// fields are caught by the verifier and repaired; nothing unverified
	// ever runs.
	bad := llm.NewSimLLM(kb.Default(), 2)
	bad.HallucinationRate = 0.7
	fmt.Println("\n--- hallucinating model (rate 0.7), verifier + repair loop ---")
	ask(tools.NewNLQueryTool(bad), in, questions)
}

func ask(tool *tools.NLQueryTool, in *scenarios.Instance, questions []string) {
	for _, q := range questions {
		res, err := tool.Invoke(in.World, map[string]string{"question": q})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQ: %s\n   %s\n", q, res.Raw)
		for i, f := range res.Findings {
			if i >= 4 {
				fmt.Printf("   ... (%d more findings)\n", len(res.Findings)-i)
				break
			}
			fmt.Println("   ", f)
		}
	}
}
