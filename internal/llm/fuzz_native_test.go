package llm

import (
	"testing"

	"repro/internal/kb"
)

// Native fuzz targets (run as seed-corpus regressions under plain
// `go test`; explore with `go test -fuzz=FuzzSimLLMComplete ./internal/llm`).

func FuzzSimLLMComplete(f *testing.F) {
	f.Add("TASK: form_hypotheses\nBEAM: 3\nSYMPTOMS: packet_loss")
	f.Add("TASK: plan_test\nHYPOTHESIS: link_overload")
	f.Add("TASK: interpret_test\nHYPOTHESIS: x\nFINDING: x=true")
	f.Add("TASK: plan_mitigation\nROOTCAUSE: link_corruption\nBINDING: $LINK=a--b")
	f.Add("TASK: assess_risk\nACTION: isolate-link|a--b|")
	f.Add("TASK: text_to_query\nQUESTION: which links are hot?")
	f.Add("TASK: form_hypotheses\nRULE: a -> b @ 0.5\nRULE: ->\nBEAM: -3")
	f.Add("garbage\x00with\x01bytes")
	f.Fuzz(func(t *testing.T, prompt string) {
		m := NewSimLLM(kb.Default(), 1)
		m.HallucinationRate = 0.5
		resp, err := m.Complete(Request{Messages: []Message{{Role: RoleUser, Content: prompt}}})
		if err != nil {
			return // unknown/missing TASK errors are contractually fine
		}
		if resp.Usage.PromptTokens < 0 || resp.Usage.CompletionTokens < 0 {
			t.Fatal("negative token usage")
		}
		// Whatever the model said must be parseable without panics.
		ParseHypotheses(resp.Content)
		ParseTestPlan(resp.Content)
		ParseVerdict(resp.Content)
		ParseActions(resp.Content)
		ParseRiskOpinion(resp.Content)
		ParseQuery(resp.Content)
	})
}

func FuzzTruncateTokens(f *testing.F) {
	f.Add("hello world this is a test", 3)
	f.Add("", 0)
	f.Add("one\ntwo\nthree four five", 2)
	f.Fuzz(func(t *testing.T, s string, max int) {
		if max > 1<<20 {
			max = 1 << 20
		}
		out, truncated := TruncateTokens(s, max)
		if len(out) > len(s) {
			t.Fatal("truncation grew the text")
		}
		if truncated && max > 0 && CountTokens(out) > max {
			// One final line of words is kept at word granularity; the
			// 4/3 rounding may exceed max by at most 1.
			if CountTokens(out) > max+1 {
				t.Fatalf("truncated to %d tokens, budget %d", CountTokens(out), max)
			}
		}
	})
}
