package fleet

// The sharded multi-region scheduler: one deterministic discrete-event
// engine per region (severity-classed queues, admission control and
// aging intact per shard), batched dispatch across shards, and
// deterministic cross-shard work stealing when a region's responder
// pool saturates.
//
// Hyperscale incident management is region-sharded: every region owns a
// local responder pool, storms correlate arrivals across regions, and
// overload escalates across region boundaries (the Malik hyperscale
// architecture in PAPERS.md). The single-cell engine in live.go scales
// to one responder pool; this file composes R of them without giving up
// one byte of the determinism contract:
//
//   - Batched ticks. The scheduler advances all shards to a common
//     watermark per tick (BatchStep apart), not per event. Within a
//     tick, due arrivals are admitted to their home shards in global
//     (At, ID) order, every shard's completions run up to the tick
//     watermark in sorted-region order, and only then does the steal
//     pass run. Engines are event-driven (dispatch times are exact
//     regardless of tick granularity), so ticks that admit nothing are
//     no-ops and the scheduler fast-forwards across them.
//   - Deterministic stealing. An arrival that finds its home shard
//     saturated (no idle responder, waiting queue at its admission
//     limit) parks in an overflow set instead of shedding immediately.
//     At the end of the same tick, each parked arrival — in (At, ID)
//     order — looks for an idle responder starting at its home region
//     and rotating through the other regions in sorted order. A hit on
//     the home region is a plain (late) dispatch; a hit elsewhere is a
//     steal: the arrival executes on the foreign pool at the tick
//     watermark, charged the barrier latency (watermark − ArrivedAt),
//     while its Outcome stays homed (Region is always the home region;
//     LiveStatus.HandledBy names the executing region). No idle
//     responder anywhere: the arrival sheds at its home shard, exactly
//     as the single-cell admission controller would have.
//
// Every choice above is a pure function of the accepted arrival set and
// the StepTo call sequence — never of submission interleaving, worker
// count, or map iteration order (regions are sorted once at
// construction). workers=1 and workers=N produce byte-identical
// reports, logs and metrics.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultRegion homes arrivals that do not name a region — and is the
// implicit region of every pre-sharding journal record and single-cell
// scheduler.
const DefaultRegion = "default"

// ErrUnknownRegion rejects an arrival naming a region the scheduler was
// not configured with.
var ErrUnknownRegion = errors.New("fleet: unknown region")

// Scheduler is the gateway-facing contract the single-cell LiveScheduler
// and the ShardedScheduler both satisfy: submit arrivals, push the
// simulated-clock watermark, inspect state, drain.
type Scheduler interface {
	Offer(LiveArrival) error
	StepTo(time.Duration)
	Lookup(id string) (LiveStatus, bool)
	Drain() *Report
	Drained() bool
	Depth() (pending, queued int)
	Watermark() time.Duration
	SetOnShed(func(id string, at time.Duration))
	Regions() []string
}

var (
	_ Scheduler = (*LiveScheduler)(nil)
	_ Scheduler = (*ShardedScheduler)(nil)
)

// ShardedLiveConfig parameterizes a sharded live scheduler.
type ShardedLiveConfig struct {
	// Regions names the shards (default {DefaultRegion}). The set is
	// sorted and deduplicated; iteration order never depends on it.
	Regions []string
	// OCEs is each region's responder pool size (default 3).
	OCEs int
	// Policy, QueueLimit and AgingStep behave exactly as in LiveConfig,
	// applied per shard.
	Policy     Policy
	QueueLimit int
	AgingStep  time.Duration
	// Steal enables cross-shard work stealing: arrivals that find their
	// home shard saturated try every other region's pool at the next
	// tick barrier before shedding.
	Steal bool
	// BatchStep is the cross-shard tick granularity — the common
	// watermark stride, and therefore the steal-decision latency
	// (default 15 minutes).
	BatchStep time.Duration
	// Obs, RunnerName and OnShed behave exactly as in LiveConfig.
	Obs        *obs.Sink
	RunnerName string
	// SessionPrefix prefixes arrival IDs in fleet-level event session
	// labels (default "gw/", matching the single-cell scheduler).
	SessionPrefix string
	OnShed        func(id string, at time.Duration)
}

func (cfg ShardedLiveConfig) withDefaults() ShardedLiveConfig {
	if len(cfg.Regions) == 0 {
		cfg.Regions = []string{DefaultRegion}
	}
	if cfg.OCEs <= 0 {
		cfg.OCEs = 3
	}
	if cfg.AgingStep == 0 {
		cfg.AgingStep = 30 * time.Minute
	}
	if cfg.BatchStep <= 0 {
		cfg.BatchStep = 15 * time.Minute
	}
	if cfg.SessionPrefix == "" {
		cfg.SessionPrefix = "gw/"
	}
	return cfg
}

// normalizeRegions sorts and deduplicates a region list, mapping empty
// names to DefaultRegion.
func normalizeRegions(in []string) []string {
	out := make([]string, 0, len(in))
	seen := map[string]bool{}
	for _, r := range in {
		if r == "" {
			r = DefaultRegion
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// regionShard is one region's engine plus its ID/recorder bookkeeping
// (index-parallel with the engine's outcomes).
type regionShard struct {
	name      string
	eng       *engine
	ids       []string
	recs      []*obs.Recorder
	stolenIn  int // arrivals this shard executed for saturated homes
	stolenOut int // arrivals this shard's saturation pushed elsewhere
}

// shardRef locates an admitted arrival: the shard executing it and its
// outcome index there (the executing shard differs from the outcome's
// home Region exactly when the arrival was stolen).
type shardRef struct {
	region string
	idx    int
}

// ShardedScheduler runs one engine per region behind the Scheduler
// contract. Safe for concurrent use.
type ShardedScheduler struct {
	mu      sync.Mutex
	cfg     ShardedLiveConfig
	regions []string // sorted, deduplicated
	shards  map[string]*regionShard

	pending   []LiveArrival // global (At, ID) order across all regions
	pendIdx   map[string]bool
	index     map[string]shardRef
	overflow  []LiveArrival // saturated-home arrivals awaiting this tick's steal pass
	watermark time.Duration
	drained   bool
	stolen    int
	rep       *ShardedReport
}

// NewSharded builds a sharded live scheduler.
func NewSharded(cfg ShardedLiveConfig) *ShardedScheduler {
	cfg = cfg.withDefaults()
	s := &ShardedScheduler{
		cfg:     cfg,
		regions: normalizeRegions(cfg.Regions),
		shards:  map[string]*regionShard{},
		pendIdx: map[string]bool{},
		index:   map[string]shardRef{},
	}
	for _, r := range s.regions {
		sh := &regionShard{
			name: r,
			eng:  newEngine(cfg.OCEs, cfg.Policy, cfg.QueueLimit, cfg.AgingStep),
		}
		sh.eng.onProcessed = func(idx int) { s.processedShard(sh, idx) }
		s.shards[r] = sh
	}
	return s
}

// Regions returns the sorted region set.
func (s *ShardedScheduler) Regions() []string {
	return append([]string(nil), s.regions...)
}

// SetOnShed installs (or replaces) the admission-shed hook; contract as
// in LiveScheduler.
func (s *ShardedScheduler) SetOnShed(fn func(id string, at time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.OnShed = fn
}

// Offer submits one arrival to its home region's shard. An empty Region
// means DefaultRegion; an unconfigured one is ErrUnknownRegion. The
// duplicate/stale rules match the single-cell scheduler.
func (s *ShardedScheduler) Offer(a LiveArrival) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return ErrDrained
	}
	if a.ID == "" {
		return errors.New("fleet: arrival id must be non-empty")
	}
	if a.Region == "" {
		a.Region = DefaultRegion
	}
	if _, ok := s.shards[a.Region]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRegion, a.Region)
	}
	if s.pendIdx[a.ID] {
		return fmt.Errorf("%w: %s", ErrDuplicateID, a.ID)
	}
	if _, ok := s.index[a.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, a.ID)
	}
	if a.At < s.watermark {
		return fmt.Errorf("%w: %s at %s < %s", ErrStaleArrival, a.ID, a.At, s.watermark)
	}
	at := sort.Search(len(s.pending), func(i int) bool {
		p := s.pending[i]
		return p.At > a.At || (p.At == a.At && p.ID > a.ID)
	})
	s.pending = append(s.pending, LiveArrival{})
	copy(s.pending[at+1:], s.pending[at:])
	s.pending[at] = a
	s.pendIdx[a.ID] = true
	return nil
}

// StepTo advances the common watermark to t (never backward), ticking
// every shard in BatchStep strides.
func (s *ShardedScheduler) StepTo(t time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return
	}
	s.advanceLocked(t)
}

// advanceLocked ticks the shards forward until the watermark reaches t.
func (s *ShardedScheduler) advanceLocked(t time.Duration) {
	for s.watermark < t {
		// Fast-forward: ticks that admit nothing are no-ops (engines are
		// event-driven and the overflow set empties every tick), so jump
		// whole BatchSteps toward the next due arrival, keeping the tick
		// grid intact.
		next := t
		if len(s.pending) > 0 && s.pending[0].At < next {
			next = s.pending[0].At
		}
		if gap := next - s.watermark; gap > s.cfg.BatchStep {
			s.watermark += (gap - 1) / s.cfg.BatchStep * s.cfg.BatchStep
		}
		w := s.watermark + s.cfg.BatchStep
		if w > t {
			w = t
		}
		s.tickLocked(w)
		s.watermark = w
	}
}

// tickLocked runs one cross-shard tick to watermark w: admissions in
// global (At, ID) order, completions per region in sorted order, then
// the steal pass.
func (s *ShardedScheduler) tickLocked(w time.Duration) {
	for len(s.pending) > 0 && s.pending[0].At <= w {
		a := s.pending[0]
		s.pending = s.pending[1:]
		delete(s.pendIdx, a.ID)
		s.admitLocked(a)
	}
	for _, r := range s.regions {
		s.shards[r].eng.completeUntil(w)
	}
	s.stealLocked(w)
}

// admitLocked routes one due arrival into its home shard — or, when
// stealing is on and the home shard is saturated at its arrival time,
// parks it in the overflow set for this tick's steal pass.
func (s *ShardedScheduler) admitLocked(a LiveArrival) {
	sh := s.shards[a.Region]
	sh.eng.completeUntil(a.At)
	if s.cfg.Steal && sh.eng.saturated() {
		s.overflow = append(s.overflow, a)
		return
	}
	idx := s.placeLocked(sh, a)
	sh.eng.arrive(idx)
}

// placeLocked appends the arrival's outcome shell, ID and recorder to a
// shard, indexing it there. The Outcome's Region is always the home
// region, even when placed on a foreign shard by stealing.
func (s *ShardedScheduler) placeLocked(sh *regionShard, a LiveArrival) int {
	idx := sh.eng.add(Outcome{
		Index: len(sh.eng.outcomes), Scenario: a.Scenario, Severity: a.Severity,
		Region: a.Region, ArrivedAt: a.At, Result: a.Result,
	}, session{res: a.Result, severity: a.Severity})
	sh.ids = append(sh.ids, a.ID)
	sh.recs = append(sh.recs, a.Events)
	s.index[a.ID] = shardRef{region: sh.name, idx: idx}
	return idx
}

// stealLocked resolves this tick's overflow at barrier w: each parked
// arrival, in (At, ID) order, takes the first idle responder found
// rotating from its home region through the others in sorted order —
// home hit: late local dispatch; foreign hit: steal; no hit: shed at
// home.
func (s *ShardedScheduler) stealLocked(w time.Duration) {
	if len(s.overflow) == 0 {
		return
	}
	overflow := s.overflow
	s.overflow = nil
	for _, a := range overflow {
		home := sort.SearchStrings(s.regions, a.Region)
		placed := false
		for k := 0; k < len(s.regions); k++ {
			target := s.shards[s.regions[(home+k)%len(s.regions)]]
			r := target.eng.idle()
			if r < 0 {
				continue
			}
			idx := s.placeLocked(target, a)
			target.eng.dispatch(r, idx, w)
			if target.name != a.Region {
				s.stolen++
				s.shards[a.Region].stolenOut++
				target.stolenIn++
				if s.cfg.Obs != nil {
					s.cfg.Obs.Registry().Inc(obs.MFleetStolen,
						obs.Labels{"from": a.Region, "to": target.name}, 1)
				}
			}
			placed = true
			break
		}
		if !placed {
			sh := s.shards[a.Region]
			idx := s.placeLocked(sh, a)
			sh.eng.shedOutcome(idx)
		}
	}
}

// processedShard is every shard engine's onProcessed hook: emit
// observability for one outcome the moment its fate is decided. Serial
// under s.mu, so absorb order is the deterministic processing order.
func (s *ShardedScheduler) processedShard(sh *regionShard, idx int) {
	rec := sh.recs[idx]
	sh.recs[idx] = nil
	o := &sh.eng.outcomes[idx]
	if o.Shed && s.cfg.OnShed != nil {
		s.cfg.OnShed(sh.ids[idx], o.ArrivedAt)
	}
	if s.cfg.Obs == nil {
		if rec != nil {
			rec.Release()
		}
		return
	}
	session := s.cfg.SessionPrefix + sh.ids[idx]
	if o.Shed {
		s.cfg.Obs.Emit(obs.Event{
			Type: obs.EvFleetShed, At: o.ArrivedAt, Session: session,
			Runner: s.cfg.RunnerName, Scenario: o.Scenario, Region: o.Region,
		})
	} else {
		s.cfg.Obs.Absorb(rec)
		s.cfg.Obs.Emit(obs.Event{
			Type: obs.EvFleetIncident, At: o.ArrivedAt, Session: session,
			Runner: s.cfg.RunnerName, Scenario: o.Scenario, Region: o.Region,
			Queue: o.Queue, Resolution: o.Resolution,
		})
	}
	if rec != nil {
		rec.Release()
	}
}

// Lookup reports the current state of an arrival by ID.
func (s *ShardedScheduler) Lookup(id string) (LiveStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendIdx[id] {
		return LiveStatus{State: StatePending}, true
	}
	ref, ok := s.index[id]
	if !ok {
		return LiveStatus{}, false
	}
	sh := s.shards[ref.region]
	o := sh.eng.outcomes[ref.idx]
	st := LiveStatus{Outcome: o}
	if !o.Shed && ref.region != o.Region {
		st.HandledBy = ref.region
	}
	switch {
	case o.Shed:
		st.State = StateShed
	case s.queuedInLocked(sh, ref.idx):
		st.State = StateQueued
	case s.drained || o.StartedAt+o.Handling <= s.watermark:
		st.State = StateResolved
	default:
		st.State = StateActive
	}
	return st, true
}

func (s *ShardedScheduler) queuedInLocked(sh *regionShard, idx int) bool {
	for _, q := range sh.eng.queued {
		if q == idx {
			return true
		}
	}
	return false
}

// Watermark returns the common simulated-time watermark.
func (s *ShardedScheduler) Watermark() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// Drained reports whether Drain has closed the intake.
func (s *ShardedScheduler) Drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drained
}

// Depth reports (pending, queued-across-all-shards) sizes.
func (s *ShardedScheduler) Depth() (pending, queued int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regions {
		queued += len(s.shards[r].eng.queued)
	}
	return len(s.pending), queued
}

// Drain closes the intake, ticks every pending arrival through its
// shard, runs all pools to idle, and returns the fleet-wide aggregate
// report. DrainSharded returns the per-region breakdown as well; both
// are idempotent.
func (s *ShardedScheduler) Drain() *Report { return s.DrainSharded().Total }

// DrainSharded drains and returns the full per-region report.
func (s *ShardedScheduler) DrainSharded() *ShardedReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return s.rep
	}
	if n := len(s.pending); n > 0 {
		s.advanceLocked(s.pending[n-1].At)
	}
	for _, r := range s.regions {
		s.shards[r].eng.completeUntil(never)
		if m := s.shards[r].eng.makespan; m > s.watermark {
			s.watermark = m
		}
	}
	s.drained = true
	s.rep = s.buildReportLocked()
	return s.rep
}

// buildReportLocked assembles the per-region and fleet-wide reports.
func (s *ShardedScheduler) buildReportLocked() *ShardedReport {
	engines := make([]*engine, len(s.regions))
	ids := make([][]string, len(s.regions))
	stolenIn := make([]int, len(s.regions))
	stolenOut := make([]int, len(s.regions))
	for i, r := range s.regions {
		sh := s.shards[r]
		engines[i] = sh.eng
		ids[i] = sh.ids
		stolenIn[i] = sh.stolenIn
		stolenOut[i] = sh.stolenOut
	}
	return assembleSharded(s.regions, engines, ids, s.cfg.OCEs, s.cfg.Obs,
		s.stolen, stolenIn, stolenOut)
}

// ---------------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------------

// RegionReport is one region's aggregate plus its steal balance.
type RegionReport struct {
	Region string
	*Report
	// StolenIn counts arrivals this region's pool executed for
	// saturated homes; StolenOut counts this region's arrivals that
	// escaped to another pool.
	StolenIn  int
	StolenOut int
}

// ShardedReport is the fleet-wide aggregate plus the per-region
// breakdown.
type ShardedReport struct {
	// Total aggregates every arrival fleet-wide (utilization over
	// OCEs × regions; outcomes in (ArrivedAt, ID) order).
	Total *Report
	// Regions holds one report per region, in sorted region order. An
	// arrival counts in the region that *executed* it (a stolen
	// arrival's outcome appears under the stealing region, with its
	// Outcome.Region still naming home).
	Regions []RegionReport
	// Stolen counts cross-region steals fleet-wide.
	Stolen int
}

// assembleSharded builds the report set from per-region engines (after
// they ran to idle). Shared by the live sharded scheduler and
// SimulateSharded's steal-free parallel path.
func assembleSharded(regions []string, engines []*engine, ids [][]string,
	oces int, sink *obs.Sink, stolen int, stolenIn, stolenOut []int) *ShardedReport {
	rep := &ShardedReport{Stolen: stolen}
	var busySum, makespan time.Duration
	shed, peak, mitigated := 0, 0, 0
	type keyed struct {
		o  Outcome
		id string
	}
	var merged []keyed
	for i, r := range regions {
		e := engines[i]
		rr := RegionReport{Region: r, StolenIn: stolenIn[i], StolenOut: stolenOut[i]}
		rr.Report = e.report(oces, sink, obs.Labels{"region": r})
		rep.Regions = append(rep.Regions, rr)
		busySum += e.busySum
		if e.makespan > makespan {
			makespan = e.makespan
		}
		shed += e.shed
		if e.peak > peak {
			peak = e.peak
		}
		for j := range e.outcomes {
			o := e.outcomes[j]
			if !o.Shed && o.Result.Mitigated {
				mitigated++
			}
			merged = append(merged, keyed{o: o, id: ids[i][j]})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].o.ArrivedAt != merged[j].o.ArrivedAt {
			return merged[i].o.ArrivedAt < merged[j].o.ArrivedAt
		}
		return merged[i].id < merged[j].id
	})
	outs := make([]Outcome, len(merged))
	for i := range merged {
		outs[i] = merged[i].o
		outs[i].Index = i
	}
	total := &Report{Outcomes: outs, Shed: shed, PeakQueueDepth: peak}
	total.Admitted = len(outs) - shed
	aggregate(total, oces*len(regions), sink, busySum, makespan, mitigated, nil)
	rep.Total = total
	return rep
}
