// Package netsim implements a flow-level simulator of a cloud provider's
// network: data-center Clos fabrics, a dual wide-area backbone, routing,
// traffic, a capacity/loss model, a WAN traffic controller, a
// change-management log, and fault injection.
//
// The simulator is the substrate every experiment in this repository runs
// on. It is deliberately flow-level (not packet-level): incident management
// operates on telemetry aggregates — link utilization, loss rates, device
// health — and a flow-level model produces exactly those signals while
// remaining fast enough to replay thousands of incidents.
//
// All randomness is injected by callers via *rand.Rand so simulations are
// reproducible bit-for-bit given a seed.
package netsim

import (
	"fmt"
	"time"
)

// Clock is the simulated wall clock. Incident timelines, tool latencies,
// OCE approval delays and LLM inference latencies all advance this clock;
// time-to-mitigation (TTM) is read off it and never off the host clock.
type Clock struct {
	now   time.Duration
	hooks []func(time.Duration)
}

// NewClock returns a clock at simulated time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated time as an offset from simulation start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d and fires registered hooks (the
// world uses one to apply scheduled faults). Advancing by a negative
// duration panics: simulated time is monotone.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: clock advanced by negative duration %v", d))
	}
	c.now += d
	for _, h := range c.hooks {
		h(c.now)
	}
}

// OnAdvance registers a hook called after every advance with the new
// time. Hooks must not advance the clock themselves.
func (c *Clock) OnAdvance(h func(time.Duration)) { c.hooks = append(c.hooks, h) }

// Reset rewinds the clock to zero. Used between independent trials.
func (c *Clock) Reset() { c.now = 0 }
