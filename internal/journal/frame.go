package journal

// The CRC-framed line codec behind the journal, factored out so other
// append-only stores (internal/lake) reuse the exact crash-safety
// story instead of re-deriving it: one checksummed record per line,
// fsync before acknowledge, torn tails truncated back to the last
// clean boundary on open.
//
// Wire format, per frame:
//
//	%08x SP payload LF
//
// where the hex prefix is the IEEE CRC32 of the payload. Payloads must
// never contain a raw newline (JSON escaping guarantees this for both
// users), so line framing stays unambiguous.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// EncodeFrame renders one payload as its checksummed frame line.
func EncodeFrame(payload []byte) []byte {
	return fmt.Appendf(make([]byte, 0, len(payload)+10),
		"%08x %s\n", crc32.ChecksumIEEE(payload), payload)
}

// DecodeFrame parses one full frame line, returning the payload (a
// sub-slice of line — copy it to retain) and whether the frame was
// checksum-clean and well-formed.
func DecodeFrame(line []byte) ([]byte, bool) {
	// 8 hex digits + space + at least "{}" + newline.
	if len(line) < 12 || line[8] != ' ' || line[len(line)-1] != '\n' {
		return nil, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return nil, false
	}
	payload := line[9 : len(line)-1]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false
	}
	return payload, true
}

// ScanFrames walks data frame by frame, calling accept with each clean
// payload. accept returning false marks the frame corrupt at the record
// level (unparseable payload, future version): the scan truncates there
// exactly as it would for a checksum failure. ScanFrames returns the
// byte offset of the last clean frame boundary and how many trailing
// lines (or partial lines) were discarded. It never fails: appends are
// strictly ordered, so nothing after a bad frame can have been
// acknowledged on top of durable state.
func ScanFrames(data []byte, accept func(payload []byte) bool) (good int, dropped int) {
	off := 0
	for off < len(data) {
		nl := -1
		for i := off; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			// Torn tail: the final append never finished its line.
			return off, 1
		}
		payload, ok := DecodeFrame(data[off : nl+1])
		if ok {
			ok = accept(payload)
		}
		if !ok {
			// Corrupt frame: drop it and every line after it.
			return off, countLines(data[off:])
		}
		off = nl + 1
	}
	return off, 0
}

// countLines counts newline-terminated lines plus a trailing partial.
func countLines(data []byte) int {
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		n++
	}
	return n
}

var errClosed = errors.New("closed")

// FrameFile is the append handle over one frame log: every Append is
// framed, written, and fsync'd before it returns, so a nil error means
// the record is durable. Safe for concurrent use.
type FrameFile struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	appended int
	bytes    int64
}

// OpenFrameFile opens (creating if necessary) dir/name, replays the
// existing frames through accept (see ScanFrames), truncates any torn
// tail back to the last clean frame boundary, fsyncs the directory so
// the file itself survives a crash that follows its creation, and
// returns the append handle positioned at the clean prefix. bytes is
// the clean-prefix size and dropped the discarded trailing lines.
func OpenFrameFile(dir, name string, accept func(payload []byte) bool) (ff *FrameFile, bytes int64, dropped int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, 0, err
	}
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, 0, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, 0, 0, fmt.Errorf("read: %w", err)
	}
	good, dropped := ScanFrames(data, accept)
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, 0, 0, fmt.Errorf("truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return &FrameFile{f: f, path: path}, int64(good), dropped, nil
}

// Append frames, writes, and fsyncs one payload, returning the bytes
// written. When Append returns nil the frame is durable.
func (ff *FrameFile) Append(payload []byte) (int, error) {
	line := EncodeFrame(payload)
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.f == nil {
		return 0, errClosed
	}
	if _, err := ff.f.Write(line); err != nil {
		return 0, fmt.Errorf("append: %w", err)
	}
	if err := ff.f.Sync(); err != nil {
		return 0, fmt.Errorf("fsync: %w", err)
	}
	ff.appended++
	ff.bytes += int64(len(line))
	return len(line), nil
}

// Stats reports frames and bytes appended through this handle.
func (ff *FrameFile) Stats() (frames int, bytes int64) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.appended, ff.bytes
}

// Path returns the frame log's file path.
func (ff *FrameFile) Path() string { return ff.path }

// Close closes the append handle. Every successfully Append'ed frame
// is already fsync'd, so Close-vs-SIGKILL makes no durability
// difference.
func (ff *FrameFile) Close() error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.f == nil {
		return nil
	}
	err := ff.f.Close()
	ff.f = nil
	return err
}
