package netsim

// Incremental shortest-path maintenance. A cache entry that failed
// revalidation still carries the full distance-to-dst field it was
// computed with, plus the exact down-set snapshot of its topology. When
// the live down set differs from the snapshot by only a few elements —
// the single-fault/repair/corrupt deltas scenario changes actually
// produce — the distance field is patched with a dynamic-BFS update
// instead of re-running the full search:
//
//   phase 1 (orphan detection): nodes whose recorded distance is no
//     longer supported by any live neighbor at distance-1 are found by a
//     monotone sweep in ascending old-distance order, seeded from the
//     newly-down elements' neighborhoods;
//   phase 2 (re-attach): orphans are re-inserted by a multi-source
//     bucket Dijkstra from their surviving frontier;
//   phase 3 (decrease wave): newly-up elements and all orphan-incident
//     edges seed a relaxation wave that propagates any distance
//     decreases.
//
// Unit weights make every queue a bucket queue, so a repair is linear in
// the affected region. The patched field is exact — every initially
// violated edge after phases 1-2 is either incident to an orphan or
// newly inserted, and phase 3 seeds both sets — and the DAG is then
// rebuilt from distances by the same builder the full path uses, so the
// result is bit-identical to a from-scratch compute (the differential
// fuzz target FuzzIncrementalRouting enforces this). The full compute
// remains the fallback when the delta is large and the oracle in tests.

// maxRepairDelta bounds the down-set delta a repair will attempt;
// larger deltas fall back to the full BFS.
const maxRepairDelta = 8

// bucketQueue is a monotone priority queue over unit-weight distances.
type bucketQueue struct {
	buckets [][]int32
	max     int32 // highest non-empty bucket index seen
}

func (q *bucketQueue) ensure(n int) {
	if len(q.buckets) < n {
		old := q.buckets
		q.buckets = make([][]int32, n)
		copy(q.buckets, old)
	}
	q.max = -1
}

func (q *bucketQueue) push(d, v int32) {
	q.buckets[d] = append(q.buckets[d], v)
	if d > q.max {
		q.max = d
	}
}

func (q *bucketQueue) reset() {
	for d := int32(0); d <= q.max; d++ {
		q.buckets[d] = q.buckets[d][:0]
	}
	q.max = -1
}

// diffOrds merge-walks two sorted ordinal sets, filling onlyA with
// elements present only in a and onlyB with elements present only in b.
func diffOrds(a, b []int32, onlyA, onlyB []int32) ([]int32, []int32) {
	onlyA, onlyB = onlyA[:0], onlyB[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			onlyA = append(onlyA, a[i])
			i++
		default:
			onlyB = append(onlyB, b[j])
			j++
		}
	}
	onlyA = append(onlyA, a[i:]...)
	onlyB = append(onlyB, b[j:]...)
	return onlyA, onlyB
}

// repairOrRoute answers a route-cache miss: it tries to patch a stale
// bucket entry's distance field under the current down set, falling back
// to the full dense compute. It returns the DAG plus the distance field
// backing it (nil for trivial/unroutable results).
func (n *Network) repairOrRoute(bucket [2]*routeEntry, src, dst NodeID, allow NodeFilter, dc *downSet) (*RouteDAG, []int32) {
	srcNode, dstNode := n.Node(src), n.Node(dst)
	if srcNode == nil || dstNode == nil || !srcNode.Usable() || !dstNode.Usable() {
		return nil, nil
	}
	ot := n.ordTab()
	nodePtrs, linkPtrs := n.ptrTables()
	srcOrd, dstOrd := ot.nodeOrd[src], ot.nodeOrd[dst]
	if srcOrd == dstOrd {
		return trivialDAG(ot, src, srcOrd), nil
	}
	for _, cand := range bucket {
		if cand == nil || cand.structVer != n.structVer || cand.dist == nil {
			continue
		}
		dist, ok := n.repairDist(ot, nodePtrs, linkPtrs, cand, dc, srcOrd, dstOrd, allow)
		if !ok {
			continue
		}
		n.rc.repairs++
		return buildDAGFromDist(ot, linkPtrs, src, dst, srcOrd, dstOrd, dist, n.scratch()), dist
	}
	return routeDAGDense(n, src, dst, allow)
}

// repairDist patches cand's distance field from its recorded down set to
// the live one. It returns (nil, false) when the delta is too large to
// be worth repairing.
func (n *Network) repairDist(ot *ordTable, nodePtrs []*Node, linkPtrs []*Link, cand *routeEntry, dc *downSet, srcOrd, dstOrd int32, allow NodeFilter) ([]int32, bool) {
	s := n.scratch()
	v := len(ot.nodeIDs)
	s.ensure(v, len(ot.linkIDs))

	// Delta between the entry's world and the live one. "Down" means the
	// element left the graph since the entry was computed; "up" means it
	// came back.
	s.insNodes, s.remNodes = diffOrds(cand.down.nodes, dc.nodes, s.insNodes, s.remNodes)
	s.insLinks, s.remLinks = diffOrds(cand.down.links, dc.links, s.insLinks, s.remLinks)
	if len(s.insNodes)+len(s.remNodes)+len(s.insLinks)+len(s.remLinks) > maxRepairDelta {
		return nil, false
	}

	dist := make([]int32, v)
	copy(dist, cand.dist)

	allowed := func(o int32) bool {
		return o == srcOrd || o == dstOrd || allow == nil || allow(nodePtrs[o])
	}
	adj := func(u int32) []ordEdge { return ot.adjEdges[ot.adjOff[u]:ot.adjOff[u+1]] }

	s.buckets.ensure(v + 2)
	s.markGen++
	gen := s.markGen

	// Phase 1: orphan detection. Seed suspects from the removed
	// elements' neighborhoods (reading old distances before clearing the
	// removed nodes), then sweep buckets in ascending old distance: a
	// node with no surviving supporter at distance-1 is orphaned, and
	// its distance+1 neighbors become suspects in turn.
	for _, r := range s.remNodes {
		if dist[r] < 0 {
			continue
		}
		for _, e := range adj(r) {
			if dist[e.node] > 0 {
				s.buckets.push(dist[e.node], e.node)
			}
		}
	}
	for _, rl := range s.remLinks {
		if a := ot.linkA[rl]; dist[a] > 0 {
			s.buckets.push(dist[a], a)
		}
		if b := ot.linkB[rl]; dist[b] > 0 {
			s.buckets.push(dist[b], b)
		}
	}
	for _, r := range s.remNodes {
		dist[r] = -1
	}
	s.orphans = s.orphans[:0]
	for d := int32(1); d <= s.buckets.max; d++ {
		b := s.buckets.buckets[d]
		for i := 0; i < len(b); i++ {
			u := b[i]
			if s.nodeMark[u] == gen {
				continue
			}
			s.nodeMark[u] = gen
			if dist[u] != d {
				continue
			}
			supported := false
			for _, e := range adj(u) {
				if dist[e.node] != d-1 {
					continue
				}
				if !linkPtrs[e.link].Usable() {
					continue
				}
				nd := nodePtrs[e.node]
				if !nd.Usable() || !allowed(e.node) {
					continue
				}
				supported = true
				break
			}
			if supported {
				continue
			}
			dist[u] = -1
			s.orphans = append(s.orphans, u)
			for _, e := range adj(u) {
				if dist[e.node] == d+1 {
					s.buckets.push(d+1, e.node)
				}
			}
			b = s.buckets.buckets[d] // pushes may have grown a later bucket's backing only, but refresh defensively
		}
	}
	s.buckets.reset()

	// Phase 2: re-attach orphans with a multi-source bucket Dijkstra
	// seeded from each orphan's best surviving neighbor. An orphan was
	// usable and allowed when the entry was computed and key-stable
	// filters keep it allowed; its liveness is re-checked through the
	// supporter scan implicitly (unreached orphans simply stay at -1).
	if len(s.orphans) > 0 {
		for _, o := range s.orphans {
			best := int32(-1)
			for _, e := range adj(o) {
				if dist[e.node] < 0 || !linkPtrs[e.link].Usable() {
					continue
				}
				nd := nodePtrs[e.node]
				if !nd.Usable() || !allowed(e.node) {
					continue
				}
				if best < 0 || dist[e.node]+1 < best {
					best = dist[e.node] + 1
				}
			}
			if best >= 0 {
				s.buckets.push(best, o)
			}
		}
		for d := int32(0); d <= s.buckets.max; d++ {
			b := s.buckets.buckets[d]
			for i := 0; i < len(b); i++ {
				u := b[i]
				if dist[u] != -1 {
					continue
				}
				dist[u] = d
				for _, e := range adj(u) {
					if dist[e.node] != -1 || !linkPtrs[e.link].Usable() {
						continue
					}
					nd := nodePtrs[e.node]
					if !nd.Usable() || !allowed(e.node) {
						continue
					}
					if d+1 < int32(len(s.buckets.buckets)) {
						s.buckets.push(d+1, e.node)
					}
				}
				b = s.buckets.buckets[d]
			}
		}
		s.buckets.reset()
	}

	// Phase 3: decrease wave. Newly-up elements and every orphan-incident
	// edge seed relaxations; the wave then propagates decreases. Any edge
	// violating the triangle inequality after phases 1-2 is in the seed
	// set: old distances were exact, so a violation needs an endpoint
	// whose distance changed (an orphan) or a new edge.
	seedEdge := func(from, to, link int32) {
		if dist[from] < 0 || !linkPtrs[link].Usable() {
			return
		}
		if dist[to] != -1 && dist[to] <= dist[from]+1 {
			return
		}
		nd := nodePtrs[to]
		if !nd.Usable() || !allowed(to) {
			return
		}
		s.buckets.push(dist[from]+1, to)
	}
	for _, il := range s.insLinks {
		a, bnd := ot.linkA[il], ot.linkB[il]
		seedEdge(a, bnd, il)
		seedEdge(bnd, a, il)
	}
	for _, w := range s.insNodes {
		for _, e := range adj(w) {
			seedEdge(e.node, w, e.link)
			seedEdge(w, e.node, e.link)
		}
	}
	for _, o := range s.orphans {
		for _, e := range adj(o) {
			seedEdge(o, e.node, e.link)
			seedEdge(e.node, o, e.link)
		}
	}
	for d := int32(0); d <= s.buckets.max; d++ {
		b := s.buckets.buckets[d]
		for i := 0; i < len(b); i++ {
			u := b[i]
			if dist[u] != -1 && dist[u] <= d {
				continue
			}
			dist[u] = d
			for _, e := range adj(u) {
				if dist[e.node] != -1 && dist[e.node] <= d+1 {
					continue
				}
				if !linkPtrs[e.link].Usable() {
					continue
				}
				nd := nodePtrs[e.node]
				if !nd.Usable() || !allowed(e.node) {
					continue
				}
				if d+1 < int32(len(s.buckets.buckets)) {
					s.buckets.push(d+1, e.node)
				}
			}
			b = s.buckets.buckets[d]
		}
	}
	s.buckets.reset()

	return dist, true
}
