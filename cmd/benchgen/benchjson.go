package main

// The -bench-json mode runs the repository's benchmark set in-process —
// every registered experiment's tables at the bench_test.go cell size
// plus the substrate micro-kernels (routing, cloning, embeddings,
// search, LLM, risk, whole sessions, the single-cell and sharded fleet
// schedulers) — and writes one JSON record per benchmark:
// {name, ns/op, allocs/op, headline}. Committed snapshots
// (BENCH_<date>.json at the repo root) give the performance trajectory a
// baseline that `go test -bench` output alone never leaves behind.
//
// Cell sizes are pinned (Trials=4, Seed=1000+i) to match the
// BenchmarkE* functions, independent of -trials/-seed, so snapshots
// taken months apart measure the same work. Timings are wall-clock and
// machine-dependent; allocs/op is stable. Combine with -nocache to
// snapshot the slow path.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/incident"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/replayer"
	"repro/internal/risk"
	"repro/internal/scenarios"
)

// flatScenario and flatRunner isolate the fleet scheduler's own cost —
// admission, priority queues, aging, drain — from session and
// world-build time.
type flatScenario struct{}

func (flatScenario) Name() string           { return "flat" }
func (flatScenario) RootCauseClass() string { return "bench" }
func (flatScenario) Build(rng *rand.Rand) *scenarios.Instance {
	return &scenarios.Instance{Incident: &incident.Incident{Severity: rng.Intn(4)}, Scenario: flatScenario{}}
}

type flatRunner struct{}

func (flatRunner) Name() string { return "flat" }
func (flatRunner) Run(in *scenarios.Instance, seed int64) harness.Result {
	return harness.Result{Scenario: in.Scenario.Name(), Mitigated: true, Correct: true, TTM: 45 * time.Minute}
}

// benchRecord is one benchmark's line item.
type benchRecord struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	Headline    string `json:"headline"`
}

// benchFile is the whole snapshot.
type benchFile struct {
	Date       string        `json:"date"`
	Go         string        `json:"go"`
	Caches     bool          `json:"caches"`
	TrialsCell int           `json:"trials_per_cell"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

const benchTrials = 4 // matches bench_test.go's cell size

func benchParams(i int) experiments.Params {
	return experiments.Params{Trials: benchTrials, Seed: int64(1000 + i)}
}

// runBenchJSON executes the benchmark set and writes the snapshot.
func runBenchJSON(c *cliflags.Common, path string) error {
	out := benchFile{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		Caches:     !c.NoCache,
		TrialsCell: benchTrials,
	}

	// add measures iters calls of fn: wall time from a monotonic clock,
	// allocations from the Mallocs delta around the loop (GC first so
	// the sweep doesn't land inside the window). Micro kernels (iters>1)
	// repeat the timed loop three times and keep the fastest repetition —
	// their windows are microseconds, where single-shot wall clock is
	// scheduler noise, and they are exactly the rows -bench-diff gates
	// on. Experiment rows (iters==1) run for seconds and stay
	// single-shot. fn returns the headline string so it can report a
	// measured quantity, not a guess.
	add := func(name string, iters int, fn func(i int) string) {
		reps := 1
		if iters > 1 {
			reps = 3
		}
		var headline string
		var bestNs, bestAllocs int64
		for r := 0; r < reps; r++ {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for i := 0; i < iters; i++ {
				headline = fn(i)
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			ns := elapsed.Nanoseconds() / int64(iters)
			if r == 0 || ns < bestNs {
				bestNs = ns
				bestAllocs = int64(m1.Mallocs-m0.Mallocs) / int64(iters)
			}
		}
		rec := benchRecord{
			Name:        name,
			NsPerOp:     bestNs,
			AllocsPerOp: bestAllocs,
			Headline:    headline,
		}
		out.Benchmarks = append(out.Benchmarks, rec)
		fmt.Fprintf(os.Stderr, "%-24s %14d ns/op %12d allocs/op   %s\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.Headline)
	}

	// Experiment benches: one full run per experiment at the pinned cell
	// size, same IDs as the registry / BenchmarkE* functions.
	for _, e := range experiments.Registry {
		e := e
		add(e.ID, 1, func(i int) string {
			tables := e.Run(benchParams(i))
			if len(tables) == 0 {
				panic("bench-json: " + e.ID + " produced no tables")
			}
			return fmt.Sprintf("%s (%d tables @ %d trials/cell)", e.Desc, len(tables), benchTrials)
		})
	}

	// Substrate micro-kernels, mirroring bench_test.go.
	w := scenarios.StandardWorld(rand.New(rand.NewSource(1)))
	add("RouteTraffic", 50, func(int) string {
		w.Invalidate()
		w.Recompute()
		return "full fixed-point recompute over the standard world"
	})
	add("RouteDAG", 200, func(int) string {
		if d := netsim.RouteDAGFor(w.Net, "us-east-host-p0-t0-h0", "eu-north-host-p0-t0-h0", nil); d == nil {
			panic("bench-json: no DAG")
		}
		return "one src-dst ECMP DAG, direct compute (no cache)"
	})
	w.Recompute()
	add("WorldClone", 500, func(int) string {
		if w.Clone() == nil {
			panic("bench-json: nil clone")
		}
		return "COW what-if snapshot of the recomputed standard world"
	})
	add("EmbedDomain", 500, func(int) string {
		e := embed.NewDomainEmbedder(128)
		if v := e.Embed("severe packet loss and retransmissions after config push in us-east; devices resetting"); len(v) != 128 {
			panic("bench-json: bad vector")
		}
		return "one 128-dim domain embedding"
	})
	corpus := replayer.Generate(replayer.Options{N: 150, Seed: 5})
	store := embed.NewStore(embed.NewDomainEmbedder(128))
	for _, r := range corpus.History.All() {
		store.Add(r.ID, r.Text())
	}
	add("VectorSearchANN", 200, func(int) string {
		if hits := store.SearchANN("packet drops in the web tier after deploy", 3); len(hits) == 0 {
			panic("bench-json: no hits")
		}
		return "top-3 ANN query over a 150-incident corpus"
	})
	model := llm.NewSimLLM(kb.Default(), 1)
	req := llm.BuildFormHypotheses(llm.PromptContext{Symptoms: []string{kb.CPacketLoss}}, 3)
	add("SimLLMFormHypotheses", 200, func(int) string {
		if _, err := model.Complete(req); err != nil {
			panic(err)
		}
		return "one simulated-LLM hypothesis completion"
	})
	riskIn := (&scenarios.Cascade{Stage: 5}).Build(rand.New(rand.NewSource(3)))
	assessor := &risk.Assessor{}
	plan := mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.OverrideWAN, Target: "B4", Param: "healthy"},
	}}
	add("RiskAssessPlan", 20, func(int) string {
		if rep := assessor.AssessPlan(riskIn.World, plan); rep == nil {
			panic("bench-json: nil risk report")
		}
		return "what-if risk report for one WAN override on cascade-5"
	})
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	helper := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()}
	add("HelperSessionCascade", 5, func(i int) string {
		in := (&scenarios.Cascade{Stage: 5}).Build(rand.New(rand.NewSource(int64(i))))
		if res := helper.Run(in, int64(i)); !res.Mitigated {
			panic("bench-json: cascade not mitigated")
		}
		return "one full helper session on cascade-5"
	})
	add("HelperSessionGrayLink", 10, func(i int) string {
		in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(int64(i))))
		if res := helper.Run(in, int64(i)); !res.Mitigated {
			panic("bench-json: gray-link not mitigated")
		}
		return "one full helper session on gray-link"
	})
	oneShot := &harness.OneShotRunner{History: corpus.History, KBase: kbase}
	add("OneShotSession", 10, func(i int) string {
		in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(int64(i))))
		oneShot.Run(in, int64(i))
		return "one one-shot recommendation session on gray-link"
	})
	control := &harness.ControlRunner{KBase: kbase}
	add("UnassistedSession", 10, func(i int) string {
		in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(int64(i))))
		control.Run(in, int64(i))
		return "one unassisted control session on gray-link"
	})
	add("FleetSchedule", 20, func(i int) string {
		rep := fleet.Simulate(fleet.Config{
			OCEs: 3, ArrivalsPerHour: 8, Incidents: 256, QueueLimit: 8,
			Seed: int64(i), Mix: []scenarios.Scenario{flatScenario{}}, Runner: flatRunner{},
		})
		if rep.Admitted+rep.Shed != 256 {
			panic("bench-json: fleet lost arrivals")
		}
		return "256 flat-TTM arrivals through admission + priority scheduling + drain"
	})
	add("FleetShardedSchedule", 5, func(i int) string {
		rep := fleet.SimulateSharded(fleet.ShardedConfig{
			Regions: []string{"r00", "r01", "r02", "r03"}, OCEs: 3,
			ArrivalsPerHour: 16, Incidents: 4096, QueueLimit: 8, Steal: true,
			Storm: scenarios.StormConfig{Correlation: 0.25, MaxFanout: 3, Window: 15 * time.Minute},
			Seed:  int64(i), Mix: []scenarios.Scenario{flatScenario{}}, Runner: flatRunner{},
		})
		if len(rep.Total.Outcomes) != 4096 {
			panic("bench-json: sharded fleet lost arrivals")
		}
		return "4096 flat-TTM arrivals across 4 regions with batched dispatch + work stealing"
	})
	add("FleetHelperSessions", 2, func(i int) string {
		rep := fleet.Simulate(fleet.Config{
			OCEs: 2, ArrivalsPerHour: 6, Incidents: 24, QueueLimit: 8,
			Seed: int64(i), Runner: helper,
		})
		if len(rep.Outcomes) != 24 {
			panic("bench-json: fleet lost arrivals")
		}
		return "24-incident fleet with real helper sessions (E14 cell shape)"
	})
	lakeDir, err := os.MkdirTemp("", "bench-lake-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(lakeDir)
	dl, _, err := lake.Open(lakeDir)
	if err != nil {
		return err
	}
	defer dl.Close()
	lakeIn := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(11)))
	lakeRes := harness.Result{Scenario: lakeIn.Scenario.Name(), Mitigated: true, Correct: true, TTM: 38 * time.Minute}
	add("LakeIngest", 200, func(i int) string {
		e := lake.NewEntry(fmt.Sprintf("bench-%04d", i), "assisted-helper", lakeIn, lakeRes, int64(i), nil)
		if _, err := dl.Append(e); err != nil {
			panic(fmt.Errorf("bench-json: lake append: %w", err))
		}
		return "one postmortem framed, fsync'd, and indexed"
	})
	add("LakeQuery", 200, func(int) string {
		st := dl.Stats()
		if st.Entries == 0 || len(dl.ByTag("mitigated")) == 0 {
			panic("bench-json: lake query returned nothing")
		}
		return fmt.Sprintf("class stats + tag scan over %d entries", st.Entries)
	})

	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks, caches=%v)\n", path, len(out.Benchmarks), out.Caches)
	return nil
}
