// Package incident defines the incident record — what the incident
// manager hands an on-call engineer (OCE) or an OCE-helper at page time —
// plus the ground truth the evaluation harness scores against.
//
// The incident carries exactly the "predefined incident information" the
// paper describes one-shot predictors consuming: a title, a prose
// summary, the auto-generated alert digest, and coarse symptoms. The
// ground truth (root cause concept, full causal chain, required
// mitigation) is visible only to the harness, never to helpers.
package incident

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/kb"
	"repro/internal/mitigation"
	"repro/internal/telemetry"
)

// Incident is one incident report.
type Incident struct {
	ID       string
	Title    string
	Summary  string
	Severity int // 0..3, netsim.Severity values
	OpenedAt time.Duration

	// Alerts is the auto-generated digest attached at open time.
	Alerts []telemetry.Alert

	// Symptoms are the observable concepts extracted from the digest
	// (kb.CPacketLoss etc.). This is the helper's starting evidence.
	Symptoms []string

	// Service names the most affected service, when known.
	Service string

	// Truth is harness-only ground truth; helpers must not read it.
	Truth *GroundTruth
}

// GroundTruth describes what actually happened.
type GroundTruth struct {
	// RootCause is the concept operators would settle on.
	RootCause string

	// CausalChain lists concepts from root cause to observed symptom,
	// e.g. Casc-1: config_push, config_inconsistency, prefix_conflict,
	// wan_failover, link_overload, packet_loss.
	CausalChain []string

	// FaultIDs are the active netsim faults backing the incident.
	FaultIDs []string

	// RequiredMitigations are alternative action sets; a plan that
	// satisfies any one of them counts as a correct mitigation.
	RequiredMitigations [][]mitigation.Action

	// RootFixChange is the change-log ID whose rollback is the true
	// fix, when the incident stems from a change ("" otherwise).
	RootFixChange string

	// Novel marks incidents whose causal chain involves knowledge absent
	// from the version-1 KB (the adaptivity experiments key off this).
	Novel bool
}

// ChainDepth is the number of deduction steps from the initial symptom
// back to the root cause (Fig. 2's "deduction step" count).
func (g *GroundTruth) ChainDepth() int {
	if len(g.CausalChain) == 0 {
		return 0
	}
	return len(g.CausalChain) - 1
}

// MitigationCorrect reports whether the plan satisfies any acceptable
// mitigation set.
func (g *GroundTruth) MitigationCorrect(p mitigation.Plan) bool {
	for _, need := range g.RequiredMitigations {
		if p.Satisfies(need) {
			return true
		}
	}
	return false
}

// SymptomsFromAlerts maps an alert digest to observable symptom concepts.
// Alert classes that reveal causes (e.g. hot-link warnings) contribute to
// the digest text but not to the symptom set: the paper's premise is that
// the initial summary under-determines the root cause.
func SymptomsFromAlerts(alerts []telemetry.Alert) []string {
	seen := map[string]bool{}
	var out []string
	add := func(c string) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, a := range alerts {
		switch a.Rule {
		case "service-loss":
			add(kb.CPacketLoss)
			if strings.Contains(a.Detail, "unrouted") && !strings.Contains(a.Detail, "(0/") {
				add(kb.CServiceUnreachable)
			}
		// "device-down" alerts are deliberately NOT mapped to a symptom
		// concept: device_down is a *cause* the helper should hypothesize
		// and confirm (binding the device for mitigation); the alert text
		// still reaches the helper through the digest evidence.
		case "latency":
			add(kb.CLatencySpike)
		}
	}
	return out
}

// Digest renders the alert digest as the summary text block incident
// reports embed.
func Digest(alerts []telemetry.Alert) string {
	if len(alerts) == 0 {
		return "auto-digest: no alerts firing"
	}
	var b strings.Builder
	b.WriteString("auto-digest:")
	for _, a := range alerts {
		b.WriteString("\n  ")
		b.WriteString(a.String())
	}
	return b.String()
}

// New assembles an incident from its parts, deriving symptoms from the
// digest when none are supplied.
func New(id, title, summary string, severity int, openedAt time.Duration, alerts []telemetry.Alert, truth *GroundTruth) *Incident {
	inc := &Incident{
		ID: id, Title: title,
		Summary:  summary + "\n" + Digest(alerts),
		Severity: severity, OpenedAt: openedAt,
		Alerts: alerts, Truth: truth,
	}
	inc.Symptoms = SymptomsFromAlerts(alerts)
	return inc
}

// Record converts a resolved incident into the history-store form,
// recording what operators applied and how long mitigation took.
func (inc *Incident) Record(applied []mitigation.Action, ttm time.Duration, tags ...string) kb.IncidentRecord {
	root := ""
	if inc.Truth != nil {
		root = inc.Truth.RootCause
	}
	return kb.IncidentRecord{
		ID: inc.ID, Title: inc.Title, Summary: inc.Summary,
		Symptoms:  append([]string(nil), inc.Symptoms...),
		RootCause: root, Mitigation: append([]mitigation.Action(nil), applied...),
		TTMMinutes: ttm.Minutes(), Severity: inc.Severity, Tags: tags,
	}
}

// String summarizes the incident for traces.
func (inc *Incident) String() string {
	return fmt.Sprintf("%s [sev%d] %s (symptoms: %s)", inc.ID, inc.Severity, inc.Title, strings.Join(inc.Symptoms, ","))
}
