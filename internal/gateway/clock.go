package gateway

import (
	"sync"
	"time"
)

// Clock is the gateway's injectable time source, in simulated-clock
// units (a Duration since the service epoch — the same timeline every
// session TTM, queue delay and obs event timestamp lives on).
//
// This is the wall-clock/sim-clock bridge the live scheduler needs:
// the scheduler itself never reads time, it only receives watermarks
// (fleet.LiveScheduler.StepTo), so WHERE the watermark comes from is a
// pluggable policy. A WallClock maps real elapsed time onto the
// simulated timeline for the long-lived service; a SimClock advances
// only when told to, which is what makes the whole HTTP surface — and
// experiment E15 through it — deterministically testable: same seed,
// same arrival timestamps, same advance calls, byte-identical results
// at any client concurrency.
type Clock interface {
	// Now returns the current simulated time.
	Now() time.Duration
}

// AdvanceClock is a Clock whose time moves only under explicit control
// — the test/sim-harness side of the bridge.
type AdvanceClock interface {
	Clock
	// AdvanceTo moves the clock forward to t (never backward) and
	// returns the new now.
	AdvanceTo(t time.Duration) time.Duration
}

// SimClock is a manually advanced simulated clock. Safe for concurrent
// use.
type SimClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewSimClock returns a simulated clock at time zero.
func NewSimClock() *SimClock { return &SimClock{} }

// Now implements Clock.
func (c *SimClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AdvanceTo implements AdvanceClock.
func (c *SimClock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Advance moves the clock forward by d (negative d is a no-op) and
// returns the new now.
func (c *SimClock) Advance(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
	return c.now
}

// WallClock maps real elapsed time onto the simulated timeline: one
// wall second is Scale of simulated time. The default scale (one wall
// second = one simulated minute) lets a demo service work through
// hour-scale incident timelines interactively; Scale = time.Second
// runs the timeline in real time.
type WallClock struct {
	start  time.Time
	offset time.Duration // simulated time already elapsed at start
	scale  time.Duration // simulated time per wall second
}

// NewWallClock starts a wall clock at simulated time zero with the
// given scale (simulated time per wall second; <= 0 means one
// simulated minute per wall second).
func NewWallClock(scale time.Duration) *WallClock {
	return NewWallClockAt(0, scale)
}

// NewWallClockAt starts a wall clock at the given simulated offset —
// the journal-recovery path: a restarted daemon resumes the simulated
// timeline from the journal's high-water mark instead of time zero, so
// recovered arrivals are never stamped in the scheduler's past.
func NewWallClockAt(offset, scale time.Duration) *WallClock {
	if scale <= 0 {
		scale = time.Minute
	}
	if offset < 0 {
		offset = 0
	}
	return &WallClock{start: time.Now(), offset: offset, scale: scale}
}

// Now implements Clock.
func (c *WallClock) Now() time.Duration {
	elapsed := time.Since(c.start)
	return c.offset + time.Duration(elapsed.Seconds()*float64(c.scale))
}

// WallOf converts a simulated duration to the wall-clock time it takes
// to elapse at this clock's scale — how the gateway renders Retry-After
// headers in real seconds.
func (c *WallClock) WallOf(d time.Duration) time.Duration {
	return time.Duration(float64(d) / float64(c.scale) * float64(time.Second))
}
