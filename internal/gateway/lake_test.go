package gateway

// Tests for the gateway's data-lake face: every 201'd incident is in
// the lake (event stream included) before the ack leaves, the
// GET /v1/lake/... query surface serves the derived views, a lakeless
// daemon answers 503, and the on-disk log reopens with everything the
// HTTP caller was promised.

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/obs"
)

// newLakeStack is newTestStack plus a data lake in a temp directory.
func newLakeStack(t *testing.T) (*testStack, *lake.Lake, string) {
	t.Helper()
	dir := t.TempDir()
	dl, _, err := lake.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dl.Close() })
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	runner := &harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: core.DefaultConfig()}
	sink := obs.NewSink()
	sched := fleet.NewLive(fleet.LiveConfig{
		OCEs: 2, QueueLimit: 8, Obs: sink, RunnerName: runner.Name(),
	})
	clock := NewSimClock()
	gw := NewServer(Config{
		Keys:  map[string]string{"k": "tenant"},
		Clock: clock, Sched: sched, Runner: runner, Seed: 7,
		Sink: sink, SimControl: true, Lake: dl,
	})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return &testStack{ts: ts, sched: sched, clock: clock, sink: sink}, dl, dir
}

func TestLakeIngestOnCreate(t *testing.T) {
	t.Parallel()
	st, dl, dir := newLakeStack(t)

	code, _ := st.do(t, "POST", "/v1/incidents", "k", `{"id":"inc-a","scenario":"cascade-5","severity":"sev1"}`)
	if code != 201 {
		t.Fatalf("create: status %d", code)
	}
	code, _ = st.do(t, "POST", "/v1/incidents", "k", `{"id":"inc-b","scenario":"gray-link"}`)
	if code != 201 {
		t.Fatalf("create: status %d", code)
	}

	// Full entry, event stream included.
	code, body := st.do(t, "GET", "/v1/lake/incidents/inc-a", "k", "")
	if code != 200 {
		t.Fatalf("lake get: status %d: %s", code, body)
	}
	var e lake.Entry
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("lake get: %v", err)
	}
	if e.Scenario != "cascade-5" || e.Runner != "assisted-helper" || e.Region != fleet.DefaultRegion {
		t.Errorf("entry header wrong: %+v", e)
	}
	if len(e.Events) == 0 {
		t.Error("lake entry has no event stream")
	}
	if e.Seed != DeriveSeed(7, "inc-a") {
		t.Errorf("entry seed %d, want the (base,id)-derived %d", e.Seed, DeriveSeed(7, "inc-a"))
	}

	code, body = st.do(t, "GET", "/v1/lake/incidents/inc-zzz", "k", "")
	if code != 404 || !strings.Contains(body, "not_found") {
		t.Errorf("missing entry: status %d body %s", code, body)
	}

	// Derived views over both ingests.
	code, body = st.do(t, "GET", "/v1/lake/stats", "k", "")
	if code != 200 {
		t.Fatalf("lake stats: status %d", code)
	}
	var stats lake.Stats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 2 || len(stats.Classes) != 2 {
		t.Errorf("stats: %d entries, %d classes; want 2 and 2", stats.Entries, len(stats.Classes))
	}

	code, body = st.do(t, "GET", "/v1/lake/tags", "k", "")
	if code != 200 || !strings.Contains(body, `"tag"`) {
		t.Errorf("lake tags: status %d body %s", code, body)
	}
	code, body = st.do(t, "GET", "/v1/lake/tags/cascade-5", "k", "")
	if code != 200 || !strings.Contains(body, `"inc-a"`) || strings.Contains(body, `"inc-b"`) {
		t.Errorf("by-tag: status %d body %s", code, body)
	}
	if code, _ := st.do(t, "GET", "/v1/lake/mitigations", "k", ""); code != 200 {
		t.Errorf("lake mitigations: status %d", code)
	}
	if code, _ := st.do(t, "GET", "/v1/lake/stats", "", ""); code != 401 {
		t.Errorf("unauthenticated lake query: status %d, want 401", code)
	}

	// The entries were fsync'd before the 201s: a cold reopen of the
	// directory sees both, bit for bit.
	want, _ := dl.Get("inc-a")
	l2, rr, err := lake.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rr.Entries != 2 || rr.Dropped != 0 {
		t.Fatalf("reopen: %d entries %d dropped, want 2 and 0", rr.Entries, rr.Dropped)
	}
	got, ok := l2.Get("inc-a")
	if !ok {
		t.Fatal("inc-a lost on reopen")
	}
	if got.ID != want.ID || got.TTMMinutes != want.TTMMinutes || len(got.Events) != len(want.Events) {
		t.Errorf("reopen drifted: got %+v want %+v", got, want)
	}
}

// TestLakeUnavailableWithoutLake: the endpoints exist on every gateway
// but answer a stable 503 "unavailable" when no lake is configured —
// same contract as /metrics without a sink.
func TestLakeUnavailableWithoutLake(t *testing.T) {
	t.Parallel()
	st := newTestStack(t, 1, 4)
	for _, path := range []string{
		"/v1/lake/stats", "/v1/lake/mitigations", "/v1/lake/tags",
		"/v1/lake/tags/mitigated", "/v1/lake/incidents/inc-a",
	} {
		code, body := st.do(t, "GET", path, "k-tenant-a", "")
		if code != 503 || !strings.Contains(body, "unavailable") {
			t.Errorf("%s: status %d body %s, want 503 unavailable", path, code, body)
		}
	}
}
