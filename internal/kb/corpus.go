package kb

import "repro/internal/mitigation"

// Concept IDs: the shared vocabulary between incidents, telemetry, the
// knowledge base and the helper. Symptom concepts are what alerts report;
// cause concepts are what hypotheses assert.
const (
	CPacketLoss          = "packet_loss"
	CLatencySpike        = "latency_spike"
	CServiceUnreachable  = "service_unreachable"
	CLinkOverload        = "link_overload"
	CLinkDown            = "link_down"
	CLinkCorruption      = "link_corruption"
	CDeviceDown          = "device_down"
	CDeviceOSCrash       = "device_os_crash"
	CWANFailover         = "wan_failover"
	CPrefixConflict      = "prefix_conflict"
	CConfigInconsistency = "config_inconsistency"
	CConfigPush          = "config_push"
	CTrafficSurge        = "traffic_surge"
	CMonitorFalseAlarm   = "monitor_false_alarm"
	CProtocolBug         = "protocol_bug"
	CProtocolRollout     = "protocol_rollout"
	CMaintenance         = "maintenance_activity"
)

// Tool names referenced by concept test hints. The tools package
// registers implementations under these names.
const (
	ToolPingMesh         = "pingmesh"
	ToolLinkUtil         = "linkutil"
	ToolDeviceHealth     = "devicehealth"
	ToolCounters         = "counters"
	ToolSyslog           = "syslog"
	ToolControllerState  = "controller-state"
	ToolPrefixTable      = "prefix-table"
	ToolRecentChanges    = "recent-changes"
	ToolMonitorCheck     = "monitor-crosscheck"
	ToolSimilarIncidents = "similar-incidents"
	ToolAskCustomer      = "ask-customer"
)

// Mitigation target placeholders bound by the planner from evidence.
const (
	PhLink     = "$LINK"
	PhDevice   = "$DEVICE"
	PhWAN      = "$WAN"
	PhChange   = "$CHANGE"
	PhProtocol = "$PROTOCOL"
	PhService  = "$SERVICE"
	PhMonitor  = "$MONITOR"
)

// Default builds the version-1 knowledge base: the concepts, causal rules,
// TSGs and components a seasoned operator team has accumulated *before*
// the fastpath protocol exists. ApplyFastpathUpdate layers on the delta a
// team would register when rolling out that protocol.
func Default() *KB {
	k := New()

	// --- Concepts -------------------------------------------------------
	for _, c := range []Concept{
		{ID: CPacketLoss, Description: "customers or probes observe packet loss", TestTool: ToolPingMesh},
		{ID: CLatencySpike, Description: "end-to-end latency far above baseline", TestTool: ToolPingMesh},
		{ID: CServiceUnreachable, Description: "a service's traffic is blackholed entirely", TestTool: ToolPingMesh},
		{
			ID: CLinkOverload, Description: "offered load exceeds a link's capacity", Prior: 0.12,
			TestTool: ToolLinkUtil,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.RateLimitService, Target: PhService, Param: "0.5"},
			},
		},
		{
			ID: CLinkDown, Description: "a link lost carrier (fiber cut, optics)", Prior: 0.10,
			TestTool: ToolSyslog,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.IsolateLink, Target: PhLink},
			},
		},
		{
			ID: CLinkCorruption, Description: "a link corrupts frames without going down (gray failure)", Prior: 0.08,
			TestTool: ToolCounters,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.IsolateLink, Target: PhLink},
			},
		},
		{
			ID: CDeviceDown, Description: "a switch or router is unresponsive", Prior: 0.12,
			TestTool: ToolDeviceHealth,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.RestartDevice, Target: PhDevice},
			},
		},
		{
			ID: CDeviceOSCrash, Description: "a device's network OS crashed or wedged", Prior: 0.05,
			TestTool: ToolSyslog,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.RestartDevice, Target: PhDevice},
			},
		},
		{
			ID: CWANFailover, Description: "the traffic controller moved traffic off a WAN", Prior: 0.04,
			TestTool: ToolControllerState,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.OverrideWAN, Target: PhWAN, Param: "healthy"},
			},
		},
		{
			ID: CPrefixConflict, Description: "a WAN's prefix table shows the same prefix observed by multiple clusters", Prior: 0.02,
			TestTool: ToolPrefixTable,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.RollbackChange, Target: PhChange},
			},
		},
		{
			ID: CConfigInconsistency, Description: "a config push left inconsistent state across clusters", Prior: 0.06,
			TestTool: ToolRecentChanges,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.RollbackChange, Target: PhChange},
			},
		},
		{ID: CConfigPush, Description: "a configuration change was recently deployed", Prior: 0.10, TestTool: ToolRecentChanges},
		{
			ID: CTrafficSurge, Description: "a service's demand spiked far above provisioned capacity", Prior: 0.10,
			TestTool: ToolLinkUtil,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.RateLimitService, Target: PhService, Param: "0.5"},
			},
		},
		{
			ID: CMonitorFalseAlarm, Description: "a monitoring pipeline is malfunctioning and fabricating signals", Prior: 0.06,
			TestTool: ToolMonitorCheck,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.RepairMonitor, Target: PhMonitor},
			},
		},
		{
			ID: CProtocolBug, Description: "a deployed protocol has a latent defect triggered by specific traffic", Prior: 0.02,
			TestTool: ToolSyslog,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.DisableProtocol, Target: PhProtocol},
				{Kind: mitigation.RestartDevice, Target: PhDevice},
			},
		},
		{ID: CProtocolRollout, Description: "a new protocol was recently rolled out", Prior: 0.03, TestTool: ToolRecentChanges},
		{
			ID: CMaintenance, Description: "planned maintenance is in progress", Prior: 0.08,
			TestTool: ToolRecentChanges,
			Mitigations: []mitigation.Action{
				{Kind: mitigation.RollbackChange, Target: PhChange},
			},
		},
	} {
		k.AddConcept(c)
	}

	// --- Causal rules (version 1) ---------------------------------------
	for _, r := range []Rule{
		{Cause: CLinkOverload, Effect: CPacketLoss, Strength: 0.90, Team: "netinfra", Note: "overloaded links drop the excess"},
		{Cause: CLinkDown, Effect: CPacketLoss, Strength: 0.55, Team: "netinfra", Note: "reroute absorbs most single-link failures; loss when capacity is short"},
		{Cause: CLinkCorruption, Effect: CPacketLoss, Strength: 0.85, Team: "netinfra", Note: "FCS errors drop frames silently"},
		{Cause: CDeviceDown, Effect: CPacketLoss, Strength: 0.70, Team: "netinfra"},
		{Cause: CDeviceDown, Effect: CServiceUnreachable, Strength: 0.40, Team: "netinfra", Note: "blackhole when no alternate path"},
		{Cause: CDeviceOSCrash, Effect: CDeviceDown, Strength: 0.95, Team: "netinfra"},
		{Cause: CTrafficSurge, Effect: CLinkOverload, Strength: 0.80, Team: "capacity"},
		{Cause: CWANFailover, Effect: CLinkOverload, Strength: 0.75, Team: "wan", Note: "fallback WAN has less headroom"},
		{Cause: CWANFailover, Effect: CLatencySpike, Strength: 0.55, Team: "wan"},
		{Cause: CLinkOverload, Effect: CLatencySpike, Strength: 0.60, Team: "netinfra"},
		{Cause: CLinkDown, Effect: CLatencySpike, Strength: 0.50, Team: "netinfra", Note: "reroute around dead links lengthens paths"},
		{Cause: CPrefixConflict, Effect: CWANFailover, Strength: 0.70, Team: "wan", Note: "controller treats inconsistent prefix observations as WAN failure"},
		{Cause: CConfigInconsistency, Effect: CPrefixConflict, Strength: 0.85, Team: "wan"},
		{Cause: CConfigPush, Effect: CConfigInconsistency, Strength: 0.50, Team: "wan", Note: "staged pushes leave transient inconsistency"},
		{Cause: CMaintenance, Effect: CConfigInconsistency, Strength: 0.35, Team: "wan"},
		{Cause: CMaintenance, Effect: CLinkDown, Strength: 0.30, Team: "netinfra"},
		{Cause: CConfigPush, Effect: CDeviceOSCrash, Strength: 0.20, Team: "netinfra", Note: "bad config can crash agents"},
		{Cause: CMonitorFalseAlarm, Effect: CPacketLoss, Strength: 0.30, Team: "monitoring", Note: "apparent loss only: pipeline fabricates records"},
		{Cause: CMonitorFalseAlarm, Effect: CLatencySpike, Strength: 0.25, Team: "monitoring"},
	} {
		k.AddRule(r)
	}

	// --- TSGs ------------------------------------------------------------
	k.AddTSG(&TSG{
		ID: "tsg-device-down", Title: "Unresponsive device runbook", Symptom: CDeviceDown, Team: "netinfra",
		Steps: []TSGStep{
			{Kind: TSGQuery, Desc: "confirm device is down", Tool: ToolDeviceHealth},
			{Kind: TSGAction, Desc: "restart the device", Action: mitigation.Action{Kind: mitigation.RestartDevice, Target: PhDevice}},
			{Kind: TSGVerify, Desc: "verify loss subsided"},
		},
	})
	k.AddTSG(&TSG{
		ID: "tsg-gray-link", Title: "Gray link (corruption) runbook", Symptom: CPacketLoss, Team: "netinfra",
		Steps: []TSGStep{
			{Kind: TSGQuery, Desc: "find links with discards but low utilization", Tool: ToolCounters},
			{Kind: TSGAction, Desc: "isolate the corrupting link", Action: mitigation.Action{Kind: mitigation.IsolateLink, Target: PhLink}},
			{Kind: TSGVerify, Desc: "verify loss subsided"},
		},
	})
	k.AddTSG(&TSG{
		ID: "tsg-hot-links", Title: "Congestion runbook", Symptom: CLinkOverload, Team: "capacity",
		Steps: []TSGStep{
			{Kind: TSGQuery, Desc: "list hottest links", Tool: ToolLinkUtil},
			{Kind: TSGAction, Desc: "rate limit the dominant service", Action: mitigation.Action{Kind: mitigation.RateLimitService, Target: PhService, Param: "0.5"}},
			{Kind: TSGVerify, Desc: "verify utilization subsided"},
		},
	})

	// --- Components -------------------------------------------------------
	for _, c := range []Component{
		{Name: "clos-fabric", Kind: "network", Team: "netinfra", Notes: "per-region data center fabric"},
		{Name: "B2", Kind: "wan", Team: "wan", Notes: "low-capacity fallback WAN"},
		{Name: "B4", Kind: "wan", Team: "wan", Notes: "high-capacity bulk WAN"},
		{Name: "prefix-pipeline", Kind: "control", Team: "wan", DependsOn: []string{"B2", "B4"}},
		{Name: "traffic-controller", Kind: "control", Team: "wan", DependsOn: []string{"prefix-pipeline"}, Notes: "assigns inter-region traffic to WANs"},
		{Name: "pingmesh", Kind: "monitoring", Team: "monitoring", DependsOn: []string{"clos-fabric"}},
		{Name: "bulk-transfer", Kind: "service", Team: "storage", DependsOn: []string{"B4", "traffic-controller"}},
		{Name: "directconnect", Kind: "service", Team: "edge", DependsOn: []string{"B4", "clos-fabric"}, Notes: "low-latency customer tunnels"},
	} {
		k.AddComponent(c)
	}

	return k
}

// FastpathProtocol is the novel protocol from the Tokyo-style scenario.
const FastpathProtocol = "fastpath"

// ApplyFastpathUpdate registers the knowledge delta a team lands when it
// rolls out the fastpath protocol: the component, the causal rules
// describing how the new protocol *can* fail, and a kill-switch TSG. This
// is the paper's adaptivity mechanism — operators "only need to update
// this helper with the new behavior of the system and not its impact":
// no end-to-end incident sample is added. It returns the new KB version.
func ApplyFastpathUpdate(k *KB) int {
	v := k.Bump()
	k.AddComponent(Component{
		Name: FastpathProtocol, Kind: "protocol", Team: "wan",
		DependsOn: []string{"B4"},
		Notes:     "fast-reroute protocol deployed on WAN routers; reacts to failures in ms",
	})
	k.AddRule(Rule{
		Cause: CProtocolRollout, Effect: CProtocolBug, Strength: 0.40, Team: "wan",
		Note: "newly deployed protocols carry latent defects", AddedVersion: v,
	})
	k.AddRule(Rule{
		Cause: CProtocolBug, Effect: CDeviceOSCrash, Strength: 0.80, Team: "wan",
		Note: "fastpath runs in the network OS fast path; a defect wedges the device", AddedVersion: v,
	})
	k.AddTSG(&TSG{
		ID: "tsg-fastpath-kill", Title: "Fastpath kill switch", Symptom: CProtocolBug, Team: "wan",
		Version: 1,
		Steps: []TSGStep{
			{Kind: TSGQuery, Desc: "look for fastpath fatal exceptions", Tool: ToolSyslog},
			{Kind: TSGAction, Desc: "disable fastpath fleet-wide", Action: mitigation.Action{Kind: mitigation.DisableProtocol, Target: FastpathProtocol}},
			{Kind: TSGAction, Desc: "restart wedged devices", Action: mitigation.Action{Kind: mitigation.RestartDevice, Target: PhDevice}},
			{Kind: TSGVerify, Desc: "verify loss subsided and devices stay up"},
		},
	})
	return v
}
