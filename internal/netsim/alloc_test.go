package netsim_test

import (
	"math/rand"
	"testing"

	"repro/internal/netsim"
	"repro/internal/scenarios"
)

// Steady-state allocation gates for the SoA traffic engine: once warm, a
// recompute of an unchanged world and a per-tick demand redistribution
// must both be completely allocation-free. Any map churn, slab
// reallocation, or key-string construction creeping back into the hot
// path fails these immediately.

func TestWarmRecomputeAllocFree(t *testing.T) {
	if !netsim.RouteCacheEnabled() {
		t.Skip("route cache disabled")
	}
	w := scenarios.StandardWorld(rand.New(rand.NewSource(1)))
	w.Invalidate()
	w.Recompute()
	avg := testing.AllocsPerRun(50, func() {
		w.Invalidate()
		w.Recompute()
	})
	if avg != 0 {
		t.Fatalf("warm Recompute allocates %.1f objects/op, want 0", avg)
	}
}

func TestDemandRedistributionAllocFree(t *testing.T) {
	if !netsim.RouteCacheEnabled() {
		t.Skip("route cache disabled")
	}
	w := scenarios.StandardWorld(rand.New(rand.NewSource(1)))
	flows := w.Flows()
	if len(flows) < 2 {
		t.Fatal("standard world has too few flows")
	}
	f1, f2 := flows[0], flows[len(flows)/2]
	base1, base2 := f1.DemandGbps, f2.DemandGbps
	// Warm: one redistribution builds the reverse index and sizes the
	// dirty-link scratch.
	f1.DemandGbps = base1 * 1.5
	w.Invalidate()
	w.Recompute()
	i := 0
	avg := testing.AllocsPerRun(50, func() {
		i++
		// Alternate two demand patterns so every run is a real delta.
		if i%2 == 0 {
			f1.DemandGbps, f2.DemandGbps = base1, base2
		} else {
			f1.DemandGbps, f2.DemandGbps = base1*1.5, base2*0.5
		}
		w.Invalidate()
		w.Recompute()
	})
	if avg != 0 {
		t.Fatalf("per-tick demand redistribution allocates %.1f objects/op, want 0", avg)
	}
}
