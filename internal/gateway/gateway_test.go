package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/obs"
)

// testStack is one in-process gateway on a real loopback socket: the
// HTTP surface end to end, on a simulated clock.
type testStack struct {
	ts    *httptest.Server
	sched fleet.Scheduler
	clock *SimClock
	sink  *obs.Sink
}

func newTestStack(t *testing.T, oces, queueLimit int) *testStack {
	t.Helper()
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	runner := &harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: core.DefaultConfig()}
	sink := obs.NewSink()
	sched := fleet.NewSharded(fleet.ShardedLiveConfig{
		Regions: []string{"default", "eu-west"},
		OCEs:    oces, QueueLimit: queueLimit,
		Obs: sink, RunnerName: runner.Name(),
	})
	clock := NewSimClock()
	gw := NewServer(Config{
		Keys:  map[string]string{"k-tenant-a": "tenant-a", "k-tenant-b": "tenant-b"},
		Clock: clock, Sched: sched, Runner: runner, Seed: 7,
		Sink: sink, SimControl: true,
	})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return &testStack{ts: ts, sched: sched, clock: clock, sink: sink}
}

// do sends one request and returns (status, body).
func (st *testStack) do(t *testing.T, method, path, key, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, st.ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := st.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1 go test ./internal/gateway/)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenHTTPTranscript pins the whole HTTP surface byte for byte:
// every create/update/get path, every error status in the taxonomy
// (400/401/404/409/422/503), the sim-control endpoints, and the drain
// summary — one scripted conversation against a 1-OCE, queue-bound-1
// fleet on seed 7, in the style of testdata/imctl_fleet_seed7.txt.
func TestGoldenHTTPTranscript(t *testing.T) {
	t.Parallel()
	st := newTestStack(t, 1, 1)
	steps := []struct {
		method, path, key, body string
	}{
		{"POST", "/v1/incidents", "k-tenant-a", `{"id":"inc-a","scenario":"gray-link","severity":"sev2","title":"Optical degradation on backbone","opened_at_minutes":0}`},
		{"POST", "/v1/incidents", "k-tenant-a", `{"id":"inc-a","scenario":"gray-link"}`},
		{"POST", "/v1/incidents", "", `{"scenario":"gray-link"}`},
		{"POST", "/v1/incidents", "k-wrong", `{"scenario":"gray-link"}`},
		{"POST", "/v1/incidents", "k-tenant-a", `{"scenario":"gray-link","severity":"sev9"}`},
		{"POST", "/v1/incidents", "k-tenant-a", `{"scenario":"no-such-scenario"}`},
		{"POST", "/v1/incidents", "k-tenant-a", `{"scenario":"gray-link","color":"red"}`},
		{"POST", "/v1/incidents", "k-tenant-a", `{"scenario":`},
		{"GET", "/v1/incidents/inc-a", "k-tenant-b", ""},
		{"POST", "/v1/sim/advance", "k-tenant-a", `{"minutes":1}`},
		{"GET", "/v1/incidents/inc-a", "k-tenant-a", ""},
		{"POST", "/v1/incidents", "k-tenant-b", `{"id":"inc-b","scenario":"device-failure","opened_at_minutes":2}`},
		{"POST", "/v1/incidents", "k-tenant-b", `{"id":"inc-c","scenario":"congestion","opened_at_minutes":3}`},
		{"POST", "/v1/incidents", "k-tenant-b", `{"id":"inc-d","scenario":"false-alarm","opened_at_minutes":4}`},
		{"POST", "/v1/incidents", "k-tenant-b", `{"id":"inc-eu","scenario":"gray-link","region":"eu-west","opened_at_minutes":5}`},
		{"POST", "/v1/incidents", "k-tenant-a", `{"scenario":"gray-link","region":"mars"}`},
		{"POST", "/v1/sim/advance", "k-tenant-a", `{"minutes":10}`},
		{"GET", "/v1/incidents/inc-b", "k-tenant-a", ""},
		{"GET", "/v1/incidents/inc-c", "k-tenant-a", ""},
		{"GET", "/v1/incidents/inc-eu", "k-tenant-a", ""},
		{"GET", "/v1/incidents?limit=2", "k-tenant-a", ""},
		{"GET", "/v1/incidents?region=eu-west", "k-tenant-a", ""},
		{"GET", "/v1/incidents?status=open&severity=sev2", "k-tenant-a", ""},
		{"GET", "/v1/incidents?limit=0", "k-tenant-a", ""},
		{"GET", "/v1/incidents?cursor=%21%21", "k-tenant-a", ""},
		{"GET", "/v1/incidents?status=bogus", "k-tenant-a", ""},
		{"PATCH", "/v1/incidents/inc-a", "k-tenant-b", `{"status":"investigating","note":"optics swapped, watching BER"}`},
		{"PATCH", "/v1/incidents/inc-a", "k-tenant-a", `{}`},
		{"PATCH", "/v1/incidents/inc-zzz", "k-tenant-a", `{"status":"resolved"}`},
		{"GET", "/v1/incidents/inc-zzz", "k-tenant-a", ""},
		{"POST", "/v1/sim/advance", "k-tenant-a", `{"to_minutes":2000}`},
		{"GET", "/v1/incidents/inc-a", "k-tenant-a", ""},
		{"PATCH", "/v1/incidents/inc-a", "k-tenant-a", `{"status":"resolved"}`},
		{"PATCH", "/v1/incidents/inc-a", "k-tenant-a", `{"status":"open"}`},
		{"POST", "/v1/sim/drain", "k-tenant-a", ``},
		{"POST", "/v1/incidents", "k-tenant-a", `{"id":"inc-late","scenario":"gray-link"}`},
	}
	var b strings.Builder
	for _, s := range steps {
		key := s.key
		if key == "" {
			key = "(none)"
		}
		fmt.Fprintf(&b, "### %s %s key=%s\n", s.method, s.path, key)
		if s.body != "" {
			fmt.Fprintf(&b, ">>> %s\n", s.body)
		}
		status, resp := st.do(t, s.method, s.path, s.key, s.body)
		fmt.Fprintf(&b, "<<< %d\n%s\n", status, resp)
	}
	compareGolden(t, "gateway_http_seed7.txt", b.String())
}

// TestGoldenMetricsScrape pins the GET /metrics exposition after the
// same scripted load: one small fleet run through the socket, then the
// Prometheus text scrape, byte for byte.
func TestGoldenMetricsScrape(t *testing.T) {
	t.Parallel()
	st := newTestStack(t, 1, 1)
	for i, sc := range []string{"gray-link", "device-failure", "congestion"} {
		body := fmt.Sprintf(`{"id":"m-%d","scenario":%q,"opened_at_minutes":%d}`, i, sc, i*30)
		if status, resp := st.do(t, "POST", "/v1/incidents", "k-tenant-a", body); status != http.StatusCreated {
			t.Fatalf("create %d: HTTP %d: %s", i, status, resp)
		}
	}
	if status, resp := st.do(t, "POST", "/v1/sim/drain", "k-tenant-a", ""); status != http.StatusOK {
		t.Fatalf("drain: HTTP %d: %s", status, resp)
	}
	status, scrape := st.do(t, "GET", "/metrics", "", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", status)
	}
	compareGolden(t, "gateway_metrics_seed7.prom", scrape)
}

// TestConcurrentClientSoak hammers one gateway with overlapping
// create/update/get traffic from many goroutine clients on the sim
// clock, including deliberate duplicate-ID contention, then drains and
// checks conservation: no incident lost, none duplicated, every accepted
// one resolved. Run under -race this is also the locking proof for the
// handler/scheduler/SSE paths.
func TestConcurrentClientSoak(t *testing.T) {
	t.Parallel()
	const (
		clients = 8
		perEach = 12
		nShared = 5 // IDs every client races to create
	)
	st := newTestStack(t, 3, 0) // unbounded queue: nothing may shed
	scenariosMix := []string{"gray-link", "device-failure", "congestion", "false-alarm"}

	var (
		mu          sync.Mutex
		created     int
		dupRejected int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				id := fmt.Sprintf("c%d-i%03d", c, i)
				body := fmt.Sprintf(`{"id":%q,"scenario":%q,"opened_at_minutes":%d}`,
					id, scenariosMix[(c+i)%len(scenariosMix)], i)
				status, resp := st.do(t, "POST", "/v1/incidents", "k-tenant-a", body)
				if status != http.StatusCreated {
					t.Errorf("create %s: HTTP %d: %s", id, status, resp)
					continue
				}
				mu.Lock()
				created++
				mu.Unlock()
				if status, resp = st.do(t, "PATCH", "/v1/incidents/"+id, "k-tenant-b",
					`{"status":"investigating","note":"ack"}`); status != http.StatusOK {
					t.Errorf("patch %s: HTTP %d: %s", id, status, resp)
				}
				if status, _ = st.do(t, "GET", "/v1/incidents/"+id, "k-tenant-a", ""); status != http.StatusOK {
					t.Errorf("get %s: HTTP %d", id, status)
				}
			}
			// Duplicate-ID contention: every client races to create the
			// same shared IDs; exactly one winner per ID.
			for k := 0; k < nShared; k++ {
				body := fmt.Sprintf(`{"id":"shared-%03d","scenario":"gray-link","opened_at_minutes":%d}`, k, 100+k)
				status, resp := st.do(t, "POST", "/v1/incidents", "k-tenant-a", body)
				switch status {
				case http.StatusCreated:
					mu.Lock()
					created++
					mu.Unlock()
				case http.StatusConflict:
					mu.Lock()
					dupRejected++
					mu.Unlock()
				default:
					t.Errorf("shared create %d: HTTP %d: %s", k, status, resp)
				}
			}
		}(c)
	}
	wg.Wait()

	wantCreated := clients*perEach + nShared
	if created != wantCreated {
		t.Fatalf("created %d incidents, want %d (lost or double-created)", created, wantCreated)
	}
	if wantDup := (clients - 1) * nShared; dupRejected != wantDup {
		t.Fatalf("%d duplicate rejections, want %d", dupRejected, wantDup)
	}

	status, resp := st.do(t, "POST", "/v1/sim/drain", "k-tenant-a", "")
	if status != http.StatusOK {
		t.Fatalf("drain: HTTP %d: %s", status, resp)
	}
	var sum DrainSummary
	if err := json.Unmarshal([]byte(resp), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Incidents != wantCreated || sum.Admitted != wantCreated || sum.Shed != 0 {
		t.Fatalf("conservation violated: %d incidents (%d admitted, %d shed), want %d/0 shed",
			sum.Incidents, sum.Admitted, sum.Shed, wantCreated)
	}
	for c := 0; c < clients; c++ {
		for i := 0; i < perEach; i++ {
			id := fmt.Sprintf("c%d-i%03d", c, i)
			status, body := st.do(t, "GET", "/v1/incidents/"+id, "k-tenant-a", "")
			if status != http.StatusOK {
				t.Fatalf("post-drain get %s: HTTP %d", id, status)
			}
			var rec Record
			if err := json.Unmarshal([]byte(body), &rec); err != nil {
				t.Fatal(err)
			}
			if rec.FleetState != string(fleet.StateResolved) {
				t.Fatalf("%s drained into state %q, want resolved", id, rec.FleetState)
			}
		}
	}
}

// TestSSEEventStream subscribes to /v1/events over the socket and
// checks that session events emitted by an incident's run are streamed
// as SSE data frames.
func TestSSEEventStream(t *testing.T) {
	t.Parallel()
	st := newTestStack(t, 1, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", st.ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "k-tenant-a")
	resp, err := st.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	if status, body := st.do(t, "POST", "/v1/incidents", "k-tenant-a",
		`{"id":"sse-1","scenario":"gray-link","opened_at_minutes":0}`); status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", status, body)
	}
	// The advance dispatches the incident, absorbing its session events
	// into the sink and notifying subscribers.
	if status, body := st.do(t, "POST", "/v1/sim/advance", "k-tenant-a", `{"minutes":1}`); status != http.StatusOK {
		t.Fatalf("advance: HTTP %d: %s", status, body)
	}

	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		line := scan.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		if ev.Session == "gw/sse-1" {
			return // saw the incident's stream: contract holds
		}
	}
	t.Fatalf("stream ended without an event for gw/sse-1: %v", scan.Err())
}

// TestWallClockModeProgresses covers the non-sim half of the bridge:
// with a WallClock the watermark follows real time, so an accepted
// incident progresses to resolution without any explicit advance.
func TestWallClockModeProgresses(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	runner := &harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: core.DefaultConfig()}
	sched := fleet.NewLive(fleet.LiveConfig{OCEs: 1, RunnerName: runner.Name()})
	// An aggressive scale (1 wall ms ≈ 1.4 simulated hours) so the
	// incident resolves within a few real milliseconds.
	gw := NewServer(Config{
		Keys:  map[string]string{"k": "tester"},
		Clock: NewWallClock(5000 * time.Minute), Sched: sched, Runner: runner, Seed: 7,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	st := &testStack{ts: ts}
	status, body := st.do(t, "POST", "/v1/incidents", "k", `{"id":"w-1","scenario":"gray-link"}`)
	if status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", status, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, body = st.do(t, "GET", "/v1/incidents/w-1", "k", "")
		var rec Record
		if err := json.Unmarshal([]byte(body), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.FleetState == string(fleet.StateResolved) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("incident never resolved under the wall clock: %s", body)
}

// TestSimEndpointsGated checks that a wall-clock service does not
// expose the deterministic-harness surface.
func TestSimEndpointsGated(t *testing.T) {
	t.Parallel()
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	runner := &harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: core.DefaultConfig()}
	sched := fleet.NewLive(fleet.LiveConfig{OCEs: 1, RunnerName: runner.Name()})
	gw := NewServer(Config{
		Keys:  map[string]string{"k": "tester"},
		Clock: NewWallClock(0), Sched: sched, Runner: runner, Seed: 7,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	st := &testStack{ts: ts}
	if status, _ := st.do(t, "POST", "/v1/sim/advance", "k", `{"minutes":1}`); status != http.StatusNotFound {
		t.Fatalf("sim advance exposed in wall mode: HTTP %d", status)
	}
	if status, _ := st.do(t, "POST", "/v1/sim/drain", "k", ""); status != http.StatusNotFound {
		t.Fatalf("sim drain exposed in wall mode: HTTP %d", status)
	}
}

// TestTranscriptConcurrencyIndependent reruns a miniature load (the
// same accepted arrival set, submitted at 1 and at 8 client goroutines)
// and asserts the drained summary and the full event log are
// byte-identical — the determinism contract through the socket, in
// unit-test form.
func TestTranscriptConcurrencyIndependent(t *testing.T) {
	t.Parallel()
	run := func(goroutines int) (string, string) {
		st := newTestStack(t, 2, 4)
		const n = 24
		idx := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					body := fmt.Sprintf(`{"id":"d-%03d","scenario":"gray-link","opened_at_minutes":%d}`, i, i*7)
					if status, resp := st.do(t, "POST", "/v1/incidents", "k-tenant-a", body); status != http.StatusCreated {
						t.Errorf("create %d: HTTP %d: %s", i, status, resp)
					}
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
		_, sum := st.do(t, "POST", "/v1/sim/drain", "k-tenant-a", "")
		var ev bytes.Buffer
		if err := st.sink.WriteEvents(&ev); err != nil {
			t.Fatal(err)
		}
		return sum, ev.String()
	}
	sum1, ev1 := run(1)
	sum8, ev8 := run(8)
	if sum1 != sum8 {
		t.Errorf("drain summary depends on client concurrency:\n1: %s\n8: %s", sum1, sum8)
	}
	if ev1 != ev8 {
		t.Error("event log depends on client concurrency")
	}
}
