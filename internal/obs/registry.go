package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind distinguishes the three metric families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Labels attach dimensions to a metric sample. Keys and values must not
// contain '"' or '\n'; the registry renders them sorted by key, so two
// equal label sets always produce the same series.
type Labels map[string]string

// render produces the canonical `k1="v1",k2="v2"` block (no braces).
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// family is one declared metric: name, help text, kind, and (for
// histograms) the fixed bucket layout.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64
}

// histogram is one labeled series of a histogram family. Buckets are
// cumulative at export time but stored as per-bucket counts.
type histogram struct {
	buckets []float64 // upper bounds, ascending; implicit +Inf at the end
	counts  []uint64  // len(buckets)+1
	count   uint64
	sum     float64
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
}

// Registry is the mergeable metrics store: counters, gauges and
// fixed-bucket histograms keyed by (family, label set). Merging two
// registries adds counters and histograms and overwrites gauges, so
// per-trial registries folded in trial order give worker-count-
// independent aggregates (see Sink).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	counters map[string]map[string]float64    // family -> label block -> value
	gauges   map[string]map[string]float64    // family -> label block -> value
	hists    map[string]map[string]*histogram // family -> label block -> series
}

// NewRegistry returns an empty registry. Most callers want
// NewAIOpsRegistry, which pre-declares the §3 metric families.
func NewRegistry() *Registry {
	return &Registry{
		families: map[string]*family{},
		counters: map[string]map[string]float64{},
		gauges:   map[string]map[string]float64{},
		hists:    map[string]map[string]*histogram{},
	}
}

// DeclareCounter registers a counter family with help text.
func (r *Registry) DeclareCounter(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families[name] = &family{name: name, help: help, kind: kindCounter}
}

// DeclareGauge registers a gauge family with help text.
func (r *Registry) DeclareGauge(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families[name] = &family{name: name, help: help, kind: kindGauge}
}

// DeclareHistogram registers a histogram family with a fixed bucket
// layout (ascending upper bounds; +Inf is implicit). Fixed layouts are
// what make histogram merges associative, and so what makes fleet-level
// aggregation worker-count-independent.
func (r *Registry) DeclareHistogram(name, help string, buckets []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families[name] = &family{name: name, help: help, kind: kindHistogram, buckets: append([]float64(nil), buckets...)}
}

// ensure returns the family, implicitly declaring one of the given kind
// for undeclared names (with default buckets for histograms).
func (r *Registry) ensure(name string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind}
		if kind == kindHistogram {
			f.buckets = DefaultBuckets
		}
		r.families[name] = f
	}
	return f
}

// DefaultBuckets is the fallback histogram layout (minutes-scaled).
var DefaultBuckets = []float64{0.5, 1, 2, 5, 10, 20, 45, 90, 180, 360}

// Inc adds v to a counter series.
func (r *Registry) Inc(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensure(name, kindCounter)
	m := r.counters[name]
	if m == nil {
		m = map[string]float64{}
		r.counters[name] = m
	}
	m[labels.render()] += v
}

// Set sets a gauge series to v.
func (r *Registry) Set(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensure(name, kindGauge)
	m := r.gauges[name]
	if m == nil {
		m = map[string]float64{}
		r.gauges[name] = m
	}
	m[labels.render()] = v
}

// Observe records v into a histogram series.
func (r *Registry) Observe(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.ensure(name, kindHistogram)
	m := r.hists[name]
	if m == nil {
		m = map[string]*histogram{}
		r.hists[name] = m
	}
	key := labels.render()
	h := m[key]
	if h == nil {
		h = &histogram{buckets: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
		m[key] = h
	}
	h.observe(v)
}

// CounterValue reads one counter series (0 when absent) — test hook.
func (r *Registry) CounterValue(name string, labels Labels) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name][labels.render()]
}

// HistogramCount reads one histogram series' sample count — test hook.
func (r *Registry) HistogramCount(name string, labels Labels) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name][labels.render()]
	if h == nil {
		return 0
	}
	return h.count
}

// Merge folds o into r: counters and histogram series add, gauges
// overwrite (last writer wins — gauges are meant for serial, top-level
// writers like the fleet simulator). Histogram families must share
// bucket layouts; merging mismatched layouts panics, because silently
// re-bucketing would corrupt the fixed-layout contract.
func (r *Registry) Merge(o *Registry) {
	if o == nil || o == r {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range o.families {
		if _, ok := r.families[name]; !ok {
			r.families[name] = f
		}
	}
	for name, m := range o.counters {
		dst := r.counters[name]
		if dst == nil {
			dst = map[string]float64{}
			r.counters[name] = dst
		}
		for k, v := range m {
			dst[k] += v
		}
	}
	for name, m := range o.gauges {
		dst := r.gauges[name]
		if dst == nil {
			dst = map[string]float64{}
			r.gauges[name] = dst
		}
		for k, v := range m {
			dst[k] = v
		}
	}
	for name, m := range o.hists {
		dst := r.hists[name]
		if dst == nil {
			dst = map[string]*histogram{}
			r.hists[name] = dst
		}
		for k, oh := range m {
			h := dst[k]
			if h == nil {
				h = &histogram{buckets: oh.buckets, counts: make([]uint64, len(oh.counts))}
				dst[k] = h
			}
			if len(h.counts) != len(oh.counts) {
				panic("obs: merging histograms with different bucket layouts: " + name)
			}
			for i, c := range oh.counts {
				h.counts[i] += c
			}
			h.count += oh.count
			h.sum += oh.sum
		}
	}
}

// formatFloat renders a value the same way every time (shortest exact
// representation), keeping exports byte-stable.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format, families sorted by name and series sorted by label block, so
// identical registries always serialize to identical bytes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		hasSeries := len(r.counters[name]) > 0 || len(r.gauges[name]) > 0 || len(r.hists[name]) > 0
		if !hasSeries {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		switch f.kind {
		case kindCounter, kindGauge:
			m := r.counters[name]
			if f.kind == kindGauge {
				m = r.gauges[name]
			}
			for _, key := range sortedKeys(m) {
				if err := writeSeries(w, name, key, m[key]); err != nil {
					return err
				}
			}
		case kindHistogram:
			m := r.hists[name]
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, key := range keys {
				h := m[key]
				var cum uint64
				for i, bound := range h.buckets {
					cum += h.counts[i]
					le := formatFloat(bound)
					if err := writeSeries(w, name+"_bucket", joinLabels(key, `le=`+strconv.Quote(le)), float64(cum)); err != nil {
						return err
					}
				}
				cum += h.counts[len(h.buckets)]
				if err := writeSeries(w, name+"_bucket", joinLabels(key, `le="+Inf"`), float64(cum)); err != nil {
					return err
				}
				if err := writeSeries(w, name+"_sum", key, h.sum); err != nil {
					return err
				}
				if err := writeSeries(w, name+"_count", key, float64(h.count)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func joinLabels(block, extra string) string {
	if block == "" {
		return extra
	}
	return block + "," + extra
}

func writeSeries(w io.Writer, name, labelBlock string, v float64) error {
	if labelBlock == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labelBlock, formatFloat(v))
	return err
}
