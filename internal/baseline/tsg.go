package baseline

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/tools"
)

// This file reproduces §3's TSG case study: automating a well-structured
// troubleshooting guide with an LLM versus a hard-coded script. Both
// executors follow the same guide and reach the same outcome; they
// differ in cost structure — the LLM path pays integration, guard-rail
// and prompt-design engineering plus per-incident inference, and both
// must be updated on every TSG revision, so "the cost would not
// amortize".

// TSGResult is the outcome of following a guide on one incident.
type TSGResult struct {
	Completed bool
	Mitigated bool
	Applied   mitigation.Plan
	Elapsed   time.Duration
	LLMTokens int
}

// RunTSG follows the guide mechanically. When model is non-nil it plays
// the LLM-automation role: each query step pays an interpretation call
// and each action step a planning call (token-metered); when model is
// nil it is the hard-coded script. Bindings flow from query steps into
// action placeholders.
func RunTSG(w *netsim.World, t *kb.TSG, reg *tools.Registry, model llm.Model) TSGResult {
	var res TSGResult
	start := w.Clock.Now()
	bindings := map[string]string{}
	for _, step := range t.Steps {
		switch step.Kind {
		case kb.TSGQuery:
			tool, ok := reg.Get(step.Tool)
			if !ok {
				res.Elapsed = w.Clock.Now() - start
				return res
			}
			w.Clock.Advance(tool.Latency())
			out, err := tool.Invoke(w, step.Args)
			if err != nil {
				res.Elapsed = w.Clock.Now() - start
				return res
			}
			for k, v := range out.Bindings {
				bindings[k] = v
			}
			if model != nil {
				resp, err := model.Complete(llm.BuildInterpretTest(llm.PromptContext{}, t.Symptom, step.Tool, out.Findings))
				if err == nil {
					res.LLMTokens += resp.Usage.Total()
					w.Clock.Advance(resp.Latency)
				}
			}
		case kb.TSGAction:
			a := step.Action
			targets := []string{a.Target}
			if bound, ok := bindings[a.Target]; ok {
				targets = strings.Split(bound, ",")
			}
			if model != nil {
				resp, err := model.Complete(llm.BuildPlanMitigation(llm.PromptContext{Bindings: bindings}, t.Symptom))
				if err == nil {
					res.LLMTokens += resp.Usage.Total()
					w.Clock.Advance(resp.Latency)
				}
			}
			ex := &mitigation.Executor{World: w, Clocked: true, Actor: "tsg"}
			for _, target := range targets {
				if strings.HasPrefix(target, "$") {
					continue // unbound: the guide's query found nothing
				}
				act := mitigation.Action{Kind: a.Kind, Target: target, Param: a.Param}
				if err := ex.Execute(act); err == nil {
					res.Applied.Actions = append(res.Applied.Actions, act)
				}
			}
		case kb.TSGVerify:
			w.Clock.Advance(2 * time.Minute)
			v := &mitigation.Verifier{World: w}
			res.Mitigated = v.Mitigated()
		}
	}
	res.Completed = true
	res.Elapsed = w.Clock.Now() - start
	return res
}

// CostModel parameterizes §3's management-cost accounting.
type CostModel struct {
	EngineerHourly float64 // $ per engineering hour

	// LLM automation path.
	LLMIntegrationHours float64 // wiring the LLM to monitoring APIs
	GuardrailHours      float64 // damage-limiting wrappers
	PromptDesignHours   float64 // per TSG revision: re-prompting so the LLM "exactly follows the TSG"
	Pricing             llm.Pricing

	// Hard-coded script path.
	ScriptInitialHours   float64
	ScriptPerChangeHours float64
}

// DefaultCostModel reflects the paper's qualitative accounting with
// engineering estimates.
func DefaultCostModel() CostModel {
	return CostModel{
		EngineerHourly:       150,
		LLMIntegrationHours:  40,
		GuardrailHours:       24,
		PromptDesignHours:    8,
		Pricing:              llm.DefaultPricing(),
		ScriptInitialHours:   16,
		ScriptPerChangeHours: 6,
	}
}

// CostReport is the total cost of operating one automation path.
type CostReport struct {
	Path            string
	EngineeringCost float64
	InferenceCost   float64
}

// Total returns engineering + inference dollars.
func (c CostReport) Total() float64 { return c.EngineeringCost + c.InferenceCost }

// String renders the report row.
func (c CostReport) String() string {
	return fmt.Sprintf("%-12s eng=$%.0f inference=$%.0f total=$%.0f", c.Path, c.EngineeringCost, c.InferenceCost, c.Total())
}

// LLMTSGCost prices the LLM-automation path: integration + guard-rails up
// front, prompt redesign per TSG revision, inference per incident.
func (m CostModel) LLMTSGCost(tsgRevisions, incidents, tokensPerIncident int) CostReport {
	eng := (m.LLMIntegrationHours + m.GuardrailHours) * m.EngineerHourly
	eng += float64(tsgRevisions) * m.PromptDesignHours * m.EngineerHourly
	infer := float64(incidents*tokensPerIncident) / 1000 * m.Pricing.PromptPer1K
	return CostReport{Path: "llm-tsg", EngineeringCost: eng, InferenceCost: infer}
}

// ScriptCost prices the hard-coded script path.
func (m CostModel) ScriptCost(tsgRevisions int) CostReport {
	eng := m.ScriptInitialHours * m.EngineerHourly
	eng += float64(tsgRevisions) * m.ScriptPerChangeHours * m.EngineerHourly
	return CostReport{Path: "script", EngineeringCost: eng}
}
