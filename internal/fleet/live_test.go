package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

// liveArrivalSet draws a deterministic synthetic arrival set: times,
// severities and session results are all pure functions of the seed, so
// every test below can feed the identical set through different
// submission interleavings.
func liveArrivalSet(seed int64, n int) []LiveArrival {
	rng := rand.New(rand.NewSource(seed))
	out := make([]LiveArrival, n)
	var now time.Duration
	for i := range out {
		now += time.Duration(rng.ExpFloat64() * float64(30*time.Minute))
		out[i] = LiveArrival{
			ID:       fmt.Sprintf("t-%03d", i),
			At:       now,
			Scenario: "synthetic",
			Severity: rng.Intn(4),
			Result: harness.Result{
				Scenario:  "synthetic",
				Mitigated: rng.Float64() < 0.8,
				TTM:       time.Duration(rng.ExpFloat64() * float64(45*time.Minute)),
			},
		}
	}
	return out
}

// TestLiveSubmissionOrderIndependence is the live determinism contract:
// the drained report is a pure function of the accepted arrival SET —
// submission order and step cadence must not change a thing. One
// reference run (in-order submission, single drain) against shuffled
// submissions with random StepTo interleavings.
func TestLiveSubmissionOrderIndependence(t *testing.T) {
	t.Parallel()
	arrivals := liveArrivalSet(3, 60)
	cfg := LiveConfig{OCEs: 2, QueueLimit: 4, AgingStep: 30 * time.Minute}

	reference := func() *Report {
		s := NewLive(cfg)
		for _, a := range arrivals {
			if err := s.Offer(a); err != nil {
				t.Fatal(err)
			}
		}
		return s.Drain()
	}()

	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		s := NewLive(cfg)
		for _, i := range rng.Perm(len(arrivals)) {
			if err := s.Offer(arrivals[i]); err != nil {
				t.Fatal(err)
			}
			// Random watermark advances between submissions — but never
			// past an arrival not yet offered, or Offer would
			// (correctly) reject it as stale.
			if rng.Intn(3) == 0 {
				limit := never
				for _, j := range rng.Perm(len(arrivals)) {
					if _, ok := s.Lookup(arrivals[j].ID); !ok && arrivals[j].At < limit {
						limit = arrivals[j].At
					}
				}
				if limit > 0 && limit != never {
					s.StepTo(time.Duration(rng.Int63n(int64(limit))))
				}
			}
		}
		got := s.Drain()
		if !reflect.DeepEqual(got, reference) {
			t.Fatalf("trial %d: report depends on submission interleaving:\ngot:  %+v\nwant: %+v",
				trial, got, reference)
		}
	}
}

// TestLiveMatchesEngineSemantics replays a batch through the live path
// and through a plain engine run (Simulate's phase 3) and checks the
// outcomes agree — the two front ends share one discrete-event core.
func TestLiveMatchesEngineSemantics(t *testing.T) {
	t.Parallel()
	arrivals := liveArrivalSet(11, 40)

	live := NewLive(LiveConfig{OCEs: 2, QueueLimit: 3, AgingStep: 30 * time.Minute})
	for _, a := range arrivals {
		if err := live.Offer(a); err != nil {
			t.Fatal(err)
		}
	}
	liveRep := live.Drain()

	eng := newEngine(2, SeverityAging, 3, 30*time.Minute)
	for i, a := range arrivals {
		eng.add(Outcome{
			Index: i, Scenario: a.Scenario, Severity: a.Severity,
			ArrivedAt: a.At, Result: a.Result,
		}, session{res: a.Result, severity: a.Severity})
		eng.arrive(i)
	}
	eng.completeUntil(never)
	engRep := eng.report(2, nil, nil)

	if !reflect.DeepEqual(liveRep, engRep) {
		t.Fatalf("live and batch disagree:\nlive:  %+v\nbatch: %+v", liveRep, engRep)
	}
}

// TestLiveOfferErrors pins the admission-time error taxonomy.
func TestLiveOfferErrors(t *testing.T) {
	t.Parallel()
	s := NewLive(LiveConfig{OCEs: 1})
	ok := LiveArrival{ID: "a", At: time.Hour, Result: harness.Result{TTM: time.Minute}}
	if err := s.Offer(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.Offer(ok); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate pending id: %v", err)
	}
	s.StepTo(2 * time.Hour)
	if err := s.Offer(LiveArrival{ID: "a", At: 3 * time.Hour}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate admitted id: %v", err)
	}
	if err := s.Offer(LiveArrival{ID: "b", At: time.Hour}); !errors.Is(err, ErrStaleArrival) {
		t.Fatalf("stale arrival: %v", err)
	}
	if err := s.Offer(LiveArrival{ID: "", At: 3 * time.Hour}); err == nil {
		t.Fatal("empty id accepted")
	}
	s.Drain()
	if err := s.Offer(LiveArrival{ID: "c", At: 9 * time.Hour}); !errors.Is(err, ErrDrained) {
		t.Fatalf("post-drain offer: %v", err)
	}
	if rep1, rep2 := s.Drain(), s.Drain(); rep1 != rep2 {
		t.Fatal("Drain is not idempotent")
	}
}

// TestLiveLookupLifecycle walks one incident through every state the
// gateway can observe: pending → active → resolved, plus queued and
// shed under a saturated 1-OCE pool.
func TestLiveLookupLifecycle(t *testing.T) {
	t.Parallel()
	s := NewLive(LiveConfig{OCEs: 1, QueueLimit: 1})
	offer := func(id string, at, ttm time.Duration) {
		t.Helper()
		if err := s.Offer(LiveArrival{ID: id, At: at, Result: harness.Result{TTM: ttm, Mitigated: true}}); err != nil {
			t.Fatal(err)
		}
	}
	offer("first", 10*time.Minute, time.Hour)
	offer("second", 20*time.Minute, time.Hour)
	offer("third", 30*time.Minute, time.Hour)

	if st, ok := s.Lookup("first"); !ok || st.State != StatePending {
		t.Fatalf("before any step: %+v %v", st, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("unknown id resolved")
	}

	s.StepTo(35 * time.Minute)
	wantStates := map[string]LiveState{
		"first":  StateActive, // dispatched at 10m, busy until 70m
		"second": StateQueued, // pool busy, queue has room
		"third":  StateShed,   // queue full: admission control refuses
	}
	for id, want := range wantStates {
		if st, _ := s.Lookup(id); st.State != want {
			t.Fatalf("%s at 35m: %v, want %v", id, st.State, want)
		}
	}
	if st, _ := s.Lookup("third"); !st.Outcome.Result.Escalated || st.Outcome.Resolution != harness.EscalationPenalty {
		t.Fatalf("shed outcome: %+v", st.Outcome)
	}

	s.StepTo(75 * time.Minute)
	if st, _ := s.Lookup("first"); st.State != StateResolved {
		t.Fatalf("first at 75m: %v", st.State)
	}
	if st, _ := s.Lookup("second"); st.State != StateActive {
		t.Fatalf("second at 75m: %v", st.State)
	}

	rep := s.Drain()
	if rep.Admitted != 2 || rep.Shed != 1 {
		t.Fatalf("drain: %d admitted, %d shed", rep.Admitted, rep.Shed)
	}
	if st, _ := s.Lookup("second"); st.State != StateResolved {
		t.Fatalf("second after drain: %v", st.State)
	}
	if got := s.IDOf(0); got != "first" {
		t.Fatalf("IDOf(0) = %q", got)
	}
}

// TestLiveObsDeterministic feeds the same arrival set (with recorded
// session streams) through two different step cadences and checks the
// sink's event log comes out byte-identical.
func TestLiveObsDeterministic(t *testing.T) {
	t.Parallel()
	arrivals := liveArrivalSet(5, 30)
	run := func(stepEvery int) string {
		sink := obs.NewSink()
		s := NewLive(LiveConfig{OCEs: 2, QueueLimit: 3, Obs: sink, RunnerName: "live-test"})
		for i, a := range arrivals {
			rec := obs.AcquireRecorder("gw/" + a.ID)
			rec.Emit(obs.Event{Type: obs.EvSessionStart, Session: "gw/" + a.ID, Scenario: a.Scenario})
			a.Events = rec
			if err := s.Offer(a); err != nil {
				t.Fatal(err)
			}
			if stepEvery > 0 && i%stepEvery == 0 {
				s.StepTo(a.At)
			}
		}
		s.Drain()
		var buf bytes.Buffer
		if err := sink.WriteEvents(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	all := run(0) // single drain
	if all == "" {
		t.Fatal("no events recorded")
	}
	if stepped := run(3); stepped != all {
		t.Error("event log depends on step cadence")
	}
}
