package aiops

// Cache neutrality: the what-if fast-path caches (route DAGs, embedding
// memo) are pure speed optimizations — every rendered byte must be
// identical with caches on or off, serial or parallel, and the
// observability exports must stay worker-independent with the caches in
// either state.
//
// These tests toggle process-wide cache switches, so they must NOT call
// t.Parallel(): Go runs them to completion during the sequential phase,
// before any paused parallel test resumes, and they restore the default
// (caches on) before returning.

import (
	"bytes"
	"testing"

	"repro/internal/embed"
	"repro/internal/eval"
	"repro/internal/netsim"
)

func setCaches(on bool) {
	netsim.SetRouteCacheEnabled(on)
	embed.SetEmbedCacheEnabled(on)
}

// TestCachesAreOutputNeutral renders the same A/B trial in all four
// (caches, workers) corners and requires byte equality everywhere.
func TestCachesAreOutputNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("full A/B renders are slow")
	}
	defer setCaches(true)
	render := func(on bool, workers int) string {
		setCaches(on)
		sys := New(WithSeed(17), WithWorkers(workers))
		sys.GenerateHistory(24, 17)
		return eval.RenderABReport(sys.ABTest(16, 17))
	}
	on1 := render(true, 1)
	off1 := render(false, 1)
	on8 := render(true, 8)
	off8 := render(false, 8)
	if on1 != off1 {
		t.Error("caches changed rendered output at workers=1")
	}
	if on1 != on8 {
		t.Error("cached run differs between workers=1 and workers=8")
	}
	if off1 != off8 {
		t.Error("uncached run differs between workers=1 and workers=8")
	}
}

// TestObservabilityWorkerIndependenceCachesOff repeats the export
// determinism contract with the caches disabled: the event log and the
// metrics dump (now without aiops_cache_* series) must still be
// byte-identical at every worker count.
func TestObservabilityWorkerIndependenceCachesOff(t *testing.T) {
	if testing.Short() {
		t.Skip("full export captures are slow")
	}
	setCaches(false)
	defer setCaches(true)
	capture := func(workers int) (events, metrics string) {
		sink := NewSink()
		sys := New(WithSeed(13), WithWorkers(workers), WithObservability(sink))
		sys.GenerateHistory(20, 13)
		sys.ABTest(12, 13)
		var ev, m bytes.Buffer
		if err := sink.WriteEvents(&ev); err != nil {
			t.Fatal(err)
		}
		if err := sink.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		return ev.String(), m.String()
	}
	ev1, m1 := capture(1)
	ev8, m8 := capture(8)
	if ev1 == "" || m1 == "" {
		t.Fatal("sink captured nothing")
	}
	if ev1 != ev8 {
		t.Error("caches-off event log differs between workers=1 and workers=8")
	}
	if m1 != m8 {
		t.Error("caches-off metrics dump differs between workers=1 and workers=8")
	}
	if bytes.Contains([]byte(m1), []byte("aiops_cache_hits_total")) {
		t.Error("caches-off metrics should carry no aiops_cache_* series")
	}
}
