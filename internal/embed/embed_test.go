package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbeddingsUnitNorm(t *testing.T) {
	t.Parallel()
	for _, e := range []Embedder{NewHashEmbedder(128), NewDomainEmbedder(128)} {
		v := e.Embed("packet loss observed on link between tor and agg")
		var sum float64
		for _, x := range v {
			sum += float64(x) * float64(x)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("%s: |v|^2 = %v, want 1", e.Name(), sum)
		}
		if len(v) != e.Dim() {
			t.Errorf("%s: dim %d != %d", e.Name(), len(v), e.Dim())
		}
	}
}

func TestEmbedDeterministic(t *testing.T) {
	t.Parallel()
	e := NewDomainEmbedder(64)
	a := e.Embed("device crashed in us-east")
	b := e.Embed("device crashed in us-east")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

func TestCosineProperties(t *testing.T) {
	t.Parallel()
	e := NewHashEmbedder(128)
	v := e.Embed("some text about networking and switches")
	if got := Cosine(v, v); math.Abs(got-1) > 1e-5 {
		t.Errorf("self-cosine = %v", got)
	}
	w := e.Embed("completely unrelated gardening recipes with tomatoes")
	if got := Cosine(v, w); got > 0.9 {
		t.Errorf("unrelated texts cosine = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	Cosine(v, []float32{1})
}

func TestDomainSynonymFolding(t *testing.T) {
	t.Parallel()
	e := NewDomainEmbedder(128)
	a := e.Embed("severe packet loss on the fabric")
	b := e.Embed("severe packet drops on the fabric")
	c := e.Embed("severe latency spike on the fabric")
	if simAB := Cosine(a, b); simAB < 0.95 {
		t.Errorf("synonym pair cosine = %v, want near 1", simAB)
	}
	if Cosine(a, b) <= Cosine(a, c) {
		t.Error("synonyms should be closer than different domain concepts")
	}
}

// The headline E8 property in miniature: the domain embedder separates
// same-failure-different-words from different-failure-same-words better
// than the generic embedder.
func TestDomainBeatsGenericOnParaphrase(t *testing.T) {
	t.Parallel()
	query := "customers see heavy packet loss, devices resetting after crash"
	same := "tenants report drops and discards; switches wedged with watchdog exception"
	diff := "customers see heavy billing errors, invoices missing after update"

	gen := NewHashEmbedder(128)
	dom := NewDomainEmbedder(128)

	genMargin := Cosine(gen.Embed(query), gen.Embed(same)) - Cosine(gen.Embed(query), gen.Embed(diff))
	domMargin := Cosine(dom.Embed(query), dom.Embed(same)) - Cosine(dom.Embed(query), dom.Embed(diff))
	if domMargin <= genMargin {
		t.Errorf("domain margin %v <= generic margin %v", domMargin, genMargin)
	}
	if domMargin <= 0 {
		t.Errorf("domain embedder failed paraphrase ranking entirely (margin %v)", domMargin)
	}
}

func TestTokenizeFolds(t *testing.T) {
	t.Parallel()
	e := NewDomainEmbedder(64)
	toks := e.Tokenize("Dropped packets & FCS errors!")
	want := map[string]bool{"pktloss": false, "fcserr": false}
	for _, tok := range toks {
		if _, ok := want[tok]; ok {
			want[tok] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("token %s not produced: %v", k, toks)
		}
	}
}

func TestStoreAddReplaceSearch(t *testing.T) {
	t.Parallel()
	s := NewStore(NewDomainEmbedder(128))
	s.Add("a", "packet loss in us-east web tier")
	s.Add("b", "device crash on wan router")
	s.Add("c", "billing report generation slow")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	hits := s.Search("packet drops in the web tier", 2)
	if len(hits) != 2 || hits[0].ID != "a" {
		t.Fatalf("hits = %+v, want a first", hits)
	}
	// Replace entry and re-search.
	s.Add("a", "totally unrelated topic about birds")
	hits = s.Search("packet drops in the web tier", 1)
	if hits[0].ID == "a" {
		t.Fatal("replaced entry still matches old content")
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	t.Parallel()
	s := NewStore(NewHashEmbedder(64))
	s.Add("x", "identical text")
	s.Add("y", "identical text")
	hits := s.Search("identical text", 2)
	if hits[0].ID != "x" || hits[1].ID != "y" {
		t.Fatalf("tie-break not by ID: %+v", hits)
	}
}

func TestANNFindsStrongMatches(t *testing.T) {
	t.Parallel()
	s := NewStore(NewDomainEmbedder(128))
	texts := map[string]string{
		"i1": "packet loss in us-east after config push",
		"i2": "device crashed watchdog reset on B4 router",
		"i3": "congestion hot links bulk transfer surge",
		"i4": "pingmesh alarm false alert monitoring pipeline",
		"i5": "latency spike on customer tunnels",
	}
	for id, tx := range texts {
		s.Add(id, tx)
	}
	for i := 0; i < 30; i++ {
		s.Add("filler"+string(rune('a'+i)), "routine maintenance note entry without incident content")
	}
	exact := s.Search("packet drops after configuration deploy in us-east", 1)
	ann := s.SearchANN("packet drops after configuration deploy in us-east", 1)
	if len(ann) == 0 {
		t.Fatal("ANN returned nothing")
	}
	if ann[0].ID != exact[0].ID {
		t.Errorf("ANN top hit %s != exact top hit %s", ann[0].ID, exact[0].ID)
	}
}

func TestANNRecallReasonable(t *testing.T) {
	t.Parallel()
	s := NewStore(NewDomainEmbedder(128))
	queries := []string{
		"packet loss web tier us-east",
		"router crash wedge fastpath",
		"hot overloaded links bulk",
		"monitoring false alarm pingmesh",
	}
	corpus := []string{
		"web tier packet drops in us-east region",
		"fastpath crash wedged router watchdog",
		"bulk transfer congestion links saturated",
		"pingmesh pipeline alarm fabricated loss",
		"storage replication behind schedule",
		"maintenance window scheduled for pod 3",
		"new protocol rollout on B4 complete",
		"customer tunnel latency normal",
	}
	for i, tx := range corpus {
		s.Add(string(rune('A'+i)), tx)
	}
	match := 0
	for _, q := range queries {
		if s.Search(q, 1)[0].ID == s.SearchANN(q, 1)[0].ID {
			match++
		}
	}
	if match < 3 {
		t.Errorf("ANN agreed with exact on %d/4 queries", match)
	}
}

// Property: cosine similarity is always within [-1, 1] and symmetric for
// arbitrary texts.
func TestCosineBoundsProperty(t *testing.T) {
	t.Parallel()
	e := NewDomainEmbedder(64)
	check := func(a, b string) bool {
		va, vb := e.Embed(a), e.Embed(b)
		s1, s2 := Cosine(va, vb), Cosine(vb, va)
		return s1 >= -1.0001 && s1 <= 1.0001 && math.Abs(s1-s2) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
