package aiops

// BenchmarkParallelSpeedup measures the wall-clock win of the parallel
// trial pool on an E4-style workload: a randomized A/B trial of the
// iterative helper against the unassisted control over the full scenario
// mix. workers=1 is the pre-pool serial baseline; workers=NumCPU is the
// default every CLI now uses. Output is identical in both arms (see
// TestE4DeterministicAcrossWorkers); only the wall clock differs, and
// the ratio of the two ns/op values is the achieved speedup.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/parallel"
)

func BenchmarkParallelSpeedup(b *testing.B) {
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.ABTest(eval.ABConfig{N: 32, Seed: 7, Workers: workers},
					&harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()},
					&harness.ControlRunner{KBase: kbase, Expertise: 0.8},
				)
			}
		})
	}
}

// BenchmarkRunTrialsOverhead isolates the pool's scheduling cost with a
// near-empty trial body: the per-trial overhead the evaluation layer
// pays for seed derivation, panic capture, and result collection.
func BenchmarkRunTrialsOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		parallel.RunTrials(64, 0, int64(i), func(seed int64, trial int) int64 { return seed ^ int64(trial) })
	}
}
