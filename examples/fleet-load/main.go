// Fleet load: the fleet-level consequence of per-incident TTM (extension
// experiment E10). Two on-call engineers field a Poisson stream of
// incidents; what customers experience is queueing delay plus time to
// mitigation. The assisted pool saturates at a far higher arrival rate.
//
// Run with:
//
//	go run ./examples/fleet-load
package main

import (
	"fmt"

	"repro"
	"repro/internal/eval"
)

func main() {
	sys := aiops.New(aiops.WithSeed(4))

	t := eval.NewTable("fleet of 2 OCEs, 60 incidents per point",
		"arrivals/h", "arm", "meanQueue(m)", "meanTotal(m)", "p95Total(m)", "utilization")
	for _, rate := range []float64{1, 3, 6} {
		a := sys.Fleet(2, rate, 60, 7)
		c := sys.FleetUnassisted(2, rate, 60, 7)
		t.AddRow(rate, "assisted", a.MeanQueue.Minutes(), a.MeanTotal.Minutes(), a.P95Total.Minutes(), fmt.Sprintf("%.2f", a.Utilization))
		t.AddRow(rate, "control", c.MeanQueue.Minutes(), c.MeanTotal.Minutes(), c.P95Total.Minutes(), fmt.Sprintf("%.2f", c.Utilization))
	}
	fmt.Println(t)
	fmt.Println("The gap between arms grows super-linearly with load: faster")
	fmt.Println("per-incident mitigation buys back queueing delay across the fleet.")
}
