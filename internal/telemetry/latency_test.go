package telemetry_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/scenarios"
	"repro/internal/telemetry"
)

func TestLatencyAlertFiresOnMaintenanceOverlap(t *testing.T) {
	t.Parallel()
	in := (&scenarios.MaintenanceOverlap{}).Build(rand.New(rand.NewSource(1)))
	alerts := telemetry.NewAlertEngine(in.World).Evaluate()
	var haveLatency, haveLoss bool
	for _, a := range alerts {
		switch a.Rule {
		case "latency":
			haveLatency = true
			if a.Severity != netsim.SevError {
				t.Errorf("latency alert severity %v", a.Severity)
			}
		case "service-loss":
			haveLoss = true
		}
	}
	if !haveLatency {
		t.Fatalf("no latency alert: %v", alerts)
	}
	if haveLoss {
		t.Errorf("maintenance overlap should be loss-free: %v", alerts)
	}
}

func TestLatencyAlertQuietWhenBaselinesMissing(t *testing.T) {
	t.Parallel()
	// Worlds without snapshotted baselines (e.g. bare test fixtures)
	// must not fire spurious latency alerts.
	w := scenarios.StandardWorld(rand.New(rand.NewSource(2)))
	w.LatencyBaseline = map[string]float64{}
	if alerts := telemetry.NewAlertEngine(w).Evaluate(); len(alerts) != 0 {
		t.Fatalf("alerts without baselines: %v", alerts)
	}
}

func TestLatencyBaselineSurvivesClone(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(3)))
	if len(w.LatencyBaseline) == 0 {
		t.Fatal("standard world has no latency baselines")
	}
	c := w.Clone()
	if len(c.LatencyBaseline) != len(w.LatencyBaseline) {
		t.Fatal("clone dropped latency baselines")
	}
	c.LatencyBaseline["bulk-transfer"] = 1
	if w.LatencyBaseline["bulk-transfer"] == 1 {
		t.Fatal("clone aliases baseline map")
	}
}

func TestHealthyWorldWithinLatencyBaseline(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(4)))
	rep := w.Report()
	for svc, ss := range rep.ServiceStats {
		base := w.LatencyBaseline[svc]
		if base == 0 {
			continue
		}
		if ss.MaxLatency > base*1.01 {
			t.Errorf("service %s latency %v above its own baseline %v", svc, ss.MaxLatency, base)
		}
	}
}

func TestRecorderSamplesAndTrends(t *testing.T) {
	t.Parallel()
	in := (&scenarios.GrayLinkFlapping{}).Build(rand.New(rand.NewSource(5)))
	rec := telemetry.RecorderOf(in.World)
	if rec == nil {
		t.Fatal("standard world has no recorder attached")
	}
	// Walk time in small steps so the flap produces an oscillating series.
	for i := 0; i < 60; i++ {
		in.World.Clock.Advance(1 * time.Minute)
		in.World.Invalidate()
	}
	trend, crossings := rec.Classify("svc:web:loss", 60*time.Minute, 0.01)
	if trend != telemetry.TrendIntermittent {
		t.Fatalf("flapping web loss classified as %s (%d crossings)", trend, crossings)
	}
	if crossings < 3 {
		t.Fatalf("crossings = %d", crossings)
	}
}

func TestRecorderTrendFlatOnHealthyWorld(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(6)))
	rec := telemetry.RecorderOf(w)
	for i := 0; i < 30; i++ {
		w.Clock.Advance(2 * time.Minute)
	}
	trend, crossings := rec.Classify("overall:loss", 60*time.Minute, 0.01)
	if trend != telemetry.TrendFlat || crossings != 0 {
		t.Fatalf("healthy world trend = %s crossings=%d", trend, crossings)
	}
	if len(rec.Keys()) == 0 || rec.String() == "" {
		t.Fatal("recorder metadata empty")
	}
}

func TestRecorderRangeWindow(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(7)))
	rec := telemetry.RecorderOf(w)
	for i := 0; i < 10; i++ {
		w.Clock.Advance(2 * time.Minute)
	}
	all := rec.Range("overall:loss", 0, w.Clock.Now())
	half := rec.Range("overall:loss", w.Clock.Now()/2, w.Clock.Now())
	if len(all) == 0 || len(half) >= len(all) {
		t.Fatalf("range windows wrong: all=%d half=%d", len(all), len(half))
	}
}
