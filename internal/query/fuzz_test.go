package query

import (
	"math/rand"
	"testing"

	"repro/internal/scenarios"
)

// FuzzParse: the DSL parser must never panic, and anything it accepts
// that also verifies must execute without error.
func FuzzParse(f *testing.F) {
	f.Add("links where util > 0.9 order by util desc limit 5")
	f.Add("devices where healthy = false")
	f.Add("events where message contains fastpath limit 3")
	f.Add("services order by loss asc")
	f.Add("links where")
	f.Add("limit limit limit")
	f.Add("")
	w := scenarios.StandardWorld(rand.New(rand.NewSource(1)))
	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return
		}
		if err := Verify(q); err != nil {
			return
		}
		if _, err := Execute(q, w); err != nil {
			t.Fatalf("verified query failed to execute: %v", err)
		}
		// Print/parse stability for accepted queries.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("rendered query %q does not re-parse: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Fatalf("unstable rendering: %q -> %q", q.String(), q2.String())
		}
	})
}
