// Package obs is the deterministic observability layer: a structured
// per-session event stream, a mergeable metrics registry, and exporters
// (JSON event logs, Prometheus text) the evaluation CLIs expose through
// -trace-out / -metrics-out.
//
// The paper's §3 evaluation methodology is about *measurement* — TTM,
// mistake overheads, system (inference) cost and management cost — and
// production AIOps systems treat structured telemetry as table stakes.
// This package supplies the substrate: every hypothesis proposed or
// tested, every tool invocation (with its fault/retry/circuit-breaker
// disposition), every mitigation action, OCE escalation and LLM call is
// emitted as a typed Event with simulated-clock timestamps, and a
// registry aggregates the distributions §3 cares about.
//
// Determinism is the core contract, shared with internal/parallel and
// internal/faults: events carry only simulated-clock time (never wall
// clock), per-trial Recorders buffer events privately, and the Sink
// absorbs them in trial order — so event logs and metric aggregates are
// byte-identical at every worker count. A nil Observer is a true no-op:
// code paths that emit through a nil observer behave (and render)
// exactly as a build without this package.
package obs

import (
	"sync"
	"time"
)

// Type classifies events. Display-trace events reuse the session trace
// step kinds verbatim (see internal/core's StepKind); the constants
// below are the purely structural kinds that never appear in the
// rendered trace.
type Type string

// Structural event kinds (the display kinds live in internal/core and
// pass through this package as opaque strings).
const (
	// EvSessionStart opens one runner session over one incident.
	EvSessionStart Type = "session-start"
	// EvSessionEnd closes a session and carries the Outcome summary.
	EvSessionEnd Type = "session-end"
	// EvHypothesis is one hypothesis proposed by the former module.
	EvHypothesis Type = "hypothesis-proposed"
	// EvHypothesisTested is the tester module's verdict on a hypothesis.
	EvHypothesisTested Type = "hypothesis-tested"
	// EvLLMCall is one model inference, with token and dollar cost.
	EvLLMCall Type = "llm-call"
	// EvToolCall is one toolbox invocation attempt, with disposition.
	EvToolCall Type = "tool-call"
	// EvMitigation is one executed mitigation action.
	EvMitigation Type = "mitigation-action"
	// EvFleetIncident is one fleet-level arrival (queueing delay).
	EvFleetIncident Type = "fleet-incident"
	// EvFleetShed is one arrival the fleet scheduler's admission control
	// refused (queue saturated) and handed straight to escalation.
	EvFleetShed Type = "fleet-shed"
	// EvCacheStats reports one cache's per-session hit/miss counts (the
	// what-if fast path's route cache and the embedding memo).
	EvCacheStats Type = "cache-stats"
)

// Event is one structured observation. Only the fields relevant to the
// event's Type are set; zero values are omitted from the JSON encoding
// so logs stay compact. At is always simulated-clock time.
type Event struct {
	// Seq is the global sequence number the Sink assigns at absorb time
	// (0 while buffered in a Recorder).
	Seq int64 `json:"seq,omitempty"`
	// Session labels the session (trial) the event belongs to.
	Session string `json:"session,omitempty"`
	// At is the simulated-clock timestamp.
	At time.Duration `json:"at"`
	// Round is the hypothesis-test round, when inside a helper session.
	Round int `json:"round,omitempty"`
	// Type classifies the event.
	Type Type `json:"type"`
	// Detail is the human-readable line (display-trace events).
	Detail string `json:"detail,omitempty"`

	// Runner and Scenario identify the session's arm and incident class.
	Runner   string `json:"runner,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	// Region is the fleet region the incident is homed in (fleet events
	// from the sharded multi-region scheduler; empty on the flat paths,
	// which keeps their logs byte-identical).
	Region string `json:"region,omitempty"`
	// Seed is the trial seed (session-start events).
	Seed int64 `json:"seed,omitempty"`

	// Hypothesis fields.
	Hypothesis string  `json:"hypothesis,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// Verdict is the tester's conclusion: supported, unsupported,
	// inconclusive, or no-test.
	Verdict string `json:"verdict,omitempty"`

	// Tool fields. Disposition records how the invocation went: "ok",
	// "error", "degraded" (tool calls); "approved"/"pre-approved"
	// (approvals); "opened"/"rerouted"/"missing" (breaker events).
	Tool        string        `json:"tool,omitempty"`
	Disposition string        `json:"disposition,omitempty"`
	Latency     time.Duration `json:"latency,omitempty"`

	// Action is the mitigation action (kind(target) rendering).
	Action string `json:"action,omitempty"`

	// LLM cost fields (llm-call events).
	PromptTokens     int     `json:"prompt_tokens,omitempty"`
	CompletionTokens int     `json:"completion_tokens,omitempty"`
	CostUSD          float64 `json:"cost_usd,omitempty"`

	// Queue is the fleet-level queueing delay (fleet-incident events).
	Queue time.Duration `json:"queue,omitempty"`
	// Resolution is the customer-experienced fleet resolution time —
	// queueing delay plus penalized session TTM (fleet-incident events).
	Resolution time.Duration `json:"resolution,omitempty"`

	// Cache fields (cache-stats events): which cache, and its counts
	// over the session.
	Cache       string `json:"cache,omitempty"`
	CacheHits   int64  `json:"cache_hits,omitempty"`
	CacheMisses int64  `json:"cache_misses,omitempty"`

	// Outcome is the session summary (session-end events only).
	Outcome *SessionOutcome `json:"outcome,omitempty"`
}

// SessionOutcome is the per-session summary a session-end event carries:
// the §3 bookkeeping in one record.
type SessionOutcome struct {
	Mitigated  bool    `json:"mitigated"`
	Escalated  bool    `json:"escalated"`
	Correct    bool    `json:"correct"`
	TTMMinutes float64 `json:"ttm_minutes"`

	Rounds    int `json:"rounds,omitempty"`
	ToolCalls int `json:"tool_calls,omitempty"`
	LLMCalls  int `json:"llm_calls,omitempty"`
	Tokens    int `json:"tokens,omitempty"`

	// Mistake overheads (§3).
	Wrong      int `json:"wrong,omitempty"`
	Secondary  int `json:"secondary,omitempty"`
	PlanErrors int `json:"plan_errors,omitempty"`

	// Resilient-path bookkeeping (PR2).
	Retries     int `json:"retries,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`

	// CostUSD is the session's model inference cost (§3 system cost).
	CostUSD float64 `json:"cost_usd,omitempty"`
}

// Observer receives events. Implementations must be safe for use from a
// single session at a time; cross-session fan-in goes through per-trial
// Recorders absorbed into a Sink in trial order.
type Observer interface {
	Emit(Event)
}

// Emit forwards e to o when o is non-nil. The nil-observer path is a
// true no-op so instrumented code stays byte-identical to its
// pre-instrumentation behaviour.
func Emit(o Observer, e Event) {
	if o != nil {
		o.Emit(e)
	}
}

// Recorder buffers one session's (or one trial's) events privately, so
// parallel trials never contend and the Sink can absorb them in a
// deterministic order afterwards.
type Recorder struct {
	// Session labels every event that does not carry its own label.
	Session string
	// Events is the buffered stream, in emission order.
	Events []Event
}

// NewRecorder builds a recorder that stamps the session label onto every
// buffered event.
func NewRecorder(session string) *Recorder { return &Recorder{Session: session} }

// recorderPool recycles Recorders (and, more importantly, their event
// buffers) across trials: the parallel harnesses allocate one recorder
// per trial, and the buffers grow to hundreds of events.
var recorderPool = sync.Pool{New: func() any { return new(Recorder) }}

// AcquireRecorder returns a pooled recorder labelled with session. Pair
// it with Release once the recorder's events have been absorbed.
func AcquireRecorder(session string) *Recorder {
	r := recorderPool.Get().(*Recorder)
	r.Session = session
	return r
}

// Release returns the recorder to the pool, keeping its buffer capacity.
// Callers must not touch the recorder afterwards; the Sink copies events
// on absorb, so absorbed events survive recycling.
func (r *Recorder) Release() {
	r.Session = ""
	r.Events = r.Events[:0]
	recorderPool.Put(r)
}

// Emit implements Observer.
func (r *Recorder) Emit(e Event) {
	if e.Session == "" {
		e.Session = r.Session
	}
	r.Events = append(r.Events, e)
}

// stamped decorates every event with a runner label; the harness wraps
// the caller's observer with it so even events emitted deep inside
// internal/core carry the arm they belong to.
type stamped struct {
	o      Observer
	runner string
}

// WithRunner returns an observer that stamps runner onto events missing
// one. A nil observer stays nil (and so stays a true no-op).
func WithRunner(o Observer, runner string) Observer {
	if o == nil {
		return nil
	}
	return stamped{o: o, runner: runner}
}

// Emit implements Observer.
func (s stamped) Emit(e Event) {
	if e.Runner == "" {
		e.Runner = s.runner
	}
	s.o.Emit(e)
}
