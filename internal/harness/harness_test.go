package harness_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/replayer"
	"repro/internal/scenarios"
)

func currentKB() *kb.KB {
	k := kb.Default()
	kb.ApplyFastpathUpdate(k)
	return k
}

func TestPenalizedTTM(t *testing.T) {
	t.Parallel()
	r := harness.Result{TTM: 30 * time.Minute, Mitigated: true}
	if r.PenalizedTTM() != 30*time.Minute {
		t.Error("mitigated result should not be penalized")
	}
	r.Mitigated = false
	if r.PenalizedTTM() != 30*time.Minute+harness.EscalationPenalty {
		t.Error("unmitigated result missing penalty")
	}
}

func TestRunnersProduceConsistentResults(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	corpus := replayer.Generate(replayer.Options{N: 40, Seed: 9})
	runners := []harness.Runner{
		&harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig(), History: corpus.History},
		&harness.OneShotRunner{History: corpus.History, KBase: kbase},
		&harness.ControlRunner{KBase: kbase},
	}
	in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(42)))
	_ = in
	for _, r := range runners {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(42)))
			res := r.Run(in, 42)
			if res.Scenario != "gray-link" {
				t.Errorf("scenario label %q", res.Scenario)
			}
			if res.TTM <= 0 {
				t.Error("TTM not positive")
			}
			if res.Correct && !res.Mitigated {
				t.Error("correct implies mitigated")
			}
			if !res.Mitigated && !res.Escalated {
				t.Error("unmitigated incident must escalate")
			}
		})
	}
}

func TestHelperRunnerRootCauseFlag(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	r := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()}
	// Gray link: the mitigated concept IS the root cause, so the flag
	// must be set. (On deeper chains the helper may legitimately
	// mitigate an intermediate cause first — TTM beats attribution.)
	in := (&scenarios.GrayLink{}).Build(rand.New(rand.NewSource(7)))
	res := r.Run(in, 7)
	if !res.Mitigated {
		t.Fatal("helper failed gray-link")
	}
	if !res.RootCause {
		t.Error("root cause link_corruption not flagged despite confirmation chain")
	}
}

func TestRunnerNames(t *testing.T) {
	t.Parallel()
	if (&harness.HelperRunner{}).Name() != "iterative-helper" {
		t.Error("default helper name")
	}
	if (&harness.HelperRunner{Label: "x"}).Name() != "x" {
		t.Error("label override")
	}
	if (&harness.OneShotRunner{}).Name() != "one-shot" {
		t.Error("default one-shot name")
	}
	if (&harness.ControlRunner{}).Name() != "unassisted-oce" {
		t.Error("default control name")
	}
}

func TestHelperRunnerDeterministicPerSeed(t *testing.T) {
	t.Parallel()
	kbase := currentKB()
	r := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig()}
	run := func() harness.Result {
		in := (&scenarios.Cascade{Stage: 5}).Build(rand.New(rand.NewSource(11)))
		return r.Run(in, 11)
	}
	a, b := run(), run()
	if a.TTM != b.TTM || a.Rounds != b.Rounds || a.Tokens != b.Tokens {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
