// Command abtest runs §3's randomized A/B evaluation: incidents are
// randomly assigned to a helper-assisted arm or a helper-free control
// arm, and the TTM distributions are compared with Welch's t-test, the
// Mann-Whitney U test, a permutation test and a bootstrap CI.
//
// Usage:
//
//	abtest [-n 200] [-seed 1] [-history 150]
//	abtest -faultrate 0.2              # degraded telemetry, resilient helper
//	abtest -faultrate 0.2 -naive       # same faults, no resilience
//	abtest -trace-out events.jsonl -metrics-out metrics.prom
package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/cliflags"
	"repro/internal/eval"
)

func main() {
	var (
		n       = flag.Int("n", 200, "incidents in the trial")
		history = flag.Int("history", 150, "historical incidents to pre-load")
	)
	c := cliflags.Register(flag.CommandLine, 1)
	flag.Parse()
	c.MustValidate()
	c.StartPProf()
	c.ApplyCaches()

	sys := aiops.New(c.SystemOptions()...)
	sys.GenerateHistory(*history, c.Seed^0x1157)
	res := sys.ABTest(*n, c.Seed)

	fmt.Print(eval.RenderABReport(res))
	c.MustExport()
}
