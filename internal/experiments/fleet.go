package experiments

// E14 — offered-load ladder on the fleet scheduler (extension): the
// paper's §3 argues TTM is the metric providers feel; E10 showed the
// per-incident gain compounding through an unbounded FIFO queue. E14
// runs the real scheduler — severity-classed priority queues with
// aging, admission control with a bounded queue, shed-to-escalation
// under saturation — across a ladder of offered loads and asks the
// operational question: how much incident traffic can a fixed responder
// pool sustain per arm before resolution times diverge?
//
// Expected shape: at low load every arm resolves at its session TTM
// (queues empty, no shedding). As offered load climbs, the unassisted
// pool saturates first — queue waits, then shedding, then P99
// resolution explode — while the assisted pool's shorter sessions keep
// the same pool inside its admission bound for several more rungs. The
// knee table makes that gap one number per arm: the highest offered
// load sustained with zero shedding and bounded P99 resolution. With
// -faultrate > 0 the ladder reruns under degraded telemetry
// (fault-injected tools and mitigations), where the resilient assisted
// arm separates from the naive one.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/harness"
)

// e14Rates is the offered-load ladder (arrivals/hour).
var e14Rates = []float64{0.5, 1, 2, 4, 8}

// e14KneeP99 bounds "sustained": a rung counts toward the knee only
// while P99 resolution stays under one on-call shift.
const e14KneeP99 = 8 * time.Hour

// e14Config is the fleet every cell runs: a small pool with a tight
// admission bound, so the ladder actually reaches the knee.
func e14Config(rate float64, p Params, r harness.Runner) fleet.Config {
	return fleet.Config{
		OCEs: 2, ArrivalsPerHour: rate, Incidents: p.Trials * 4,
		QueueLimit: 8,
		Runner:     r,
		Seed:       p.Seed + 141, // same arrivals per rung across arms: paired comparison
		Workers:    p.Workers,
		Obs:        p.Obs,
	}
}

// E14OfferedLoad sweeps offered load over the fleet scheduler and
// tabulates queue wait, P50/P99 time-to-resolution, shedding and
// utilization per arm, plus the per-arm saturation knee.
func E14OfferedLoad(p Params) []*eval.Table {
	p = p.withDefaults()
	kbase := currentKB()
	fseed := p.FaultSeed
	if fseed == 0 {
		fseed = 1337
	}
	var fc faults.Config
	if p.FaultRate > 0 {
		// Degraded-telemetry fleet: same fault model as E13's top rung.
		fc = faults.Config{Rate: p.FaultRate, ActionRate: p.FaultRate / 2, Degrade: 0.5, Seed: fseed}
	}
	resilientCfg := core.DefaultConfig()
	resilientCfg.Resilience = core.DefaultResilience()

	arms := []harness.Runner{
		&harness.HelperRunner{Label: "assisted-helper", KBase: kbase, Config: resilientCfg, Faults: fc},
		&harness.HelperRunner{Label: "naive-helper", KBase: kbase, Config: core.DefaultConfig(), Faults: fc},
		&harness.ControlRunner{Label: "unassisted-oce", KBase: kbase, Faults: fc},
	}
	if p.Naive {
		// -naive: drop the resilient arm, measure the unprotected paths.
		arms = arms[1:]
	}

	// Cells run serially — each fleet simulation is already parallel
	// inside (and byte-identical at any worker count), so rows and the
	// shared sink accumulate in deterministic ladder order.
	ladder := eval.NewTable("E14 (extension): offered-load ladder — fleet of 2 OCEs, queue bound 8, severity+aging dispatch",
		"arrivals/h", "arm", "shed", "meanQueue(m)", "p50Res(m)", "p99Res(m)", "mitigated", "util")
	reports := make(map[string][]*fleet.Report, len(arms))
	for _, rate := range e14Rates {
		for _, arm := range arms {
			rep := fleet.Simulate(e14Config(rate, p, arm))
			reports[arm.Name()] = append(reports[arm.Name()], rep)
			ladder.AddRow(rate, arm.Name(), fmt.Sprintf("%d/%d", rep.Shed, len(rep.Outcomes)),
				rep.MeanQueue.Minutes(), rep.P50Resolution.Minutes(), rep.P99Resolution.Minutes(),
				eval.Pct(rep.MitigatedRate), fmt.Sprintf("%.2f", rep.Utilization))
		}
	}

	knee := eval.NewTable(fmt.Sprintf("E14: saturation knee — highest load with zero shedding and P99 resolution under %.0fm", e14KneeP99.Minutes()),
		"arm", "knee(arr/h)", "p99Res at knee(m)")
	for _, arm := range arms {
		rate, rep := E14Knee(reports[arm.Name()])
		if rep == nil {
			knee.AddRow(arm.Name(), "none", "-")
			continue
		}
		knee.AddRow(arm.Name(), rate, rep.P99Resolution.Minutes())
	}
	return []*eval.Table{ladder, knee}
}

// E14Knee returns the highest ladder rung (and its report) an arm
// sustained — zero shedding, P99 resolution under the bound — or
// (0, nil) when even the lowest rung saturated.
func E14Knee(reps []*fleet.Report) (float64, *fleet.Report) {
	rate, rep := 0.0, (*fleet.Report)(nil)
	for i, r := range reps {
		if r.Shed == 0 && r.P99Resolution <= e14KneeP99 {
			rate, rep = e14Rates[i], r
		}
	}
	return rate, rep
}
