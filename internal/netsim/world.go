package netsim

import (
	"fmt"
	"slices"
	"time"
)

// Severity grades syslog events.
type Severity int

// Syslog severities, lowest to highest.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
	SevCritical
)

// String returns the conventional severity name.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "INFO"
	case SevWarning:
		return "WARN"
	case SevError:
		return "ERROR"
	case SevCritical:
		return "CRIT"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// SyslogEvent is one device log line. The syslog monitor exposes these to
// the helper's tools.
type SyslogEvent struct {
	At       time.Duration
	Node     NodeID
	Severity Severity
	Message  string
	Tags     map[string]string
}

// Trigger is a latent condition that converts traffic state into device
// state — e.g. the novel-protocol bug that wedges any device forwarding a
// flow with a particular header pattern. Triggers fire during Recompute's
// fixed-point iteration.
type Trigger interface {
	ID() string
	// Fire inspects the routing outcome and mutates the world (device
	// health, logs). It reports whether it changed routable state, in
	// which case routing is recomputed and triggers run again.
	Fire(w *World, rep *TrafficReport) bool
}

// World ties the network, controller, traffic, change log and fault state
// into one simulation. All experiment harnesses operate on a World.
type World struct {
	Net      *Network
	Clock    *Clock
	Ctl      *Controller
	Backbone *Backbone
	Changes  *ChangeLog

	// BrokenMonitors names telemetry monitors currently malfunctioning;
	// the telemetry package consults it when sampling.
	BrokenMonitors map[string]bool

	// ServiceBaseline records each service's provisioned demand in Gbps,
	// snapshotted at deployment time. Monitors compare live demand
	// against it to tell a genuine surge from rerouted load.
	ServiceBaseline map[string]float64

	// LatencyBaseline records each service's worst path latency (ms) in
	// the healthy deployment; latency SLO checks compare against it.
	LatencyBaseline map[string]float64

	// Attachments carries cross-layer handles (e.g. the telemetry
	// recorder) without netsim depending on the layers above. Clones do
	// not inherit attachments.
	Attachments map[string]any

	flows    []*Flow
	events   []SyslogEvent
	triggers map[string]Trigger
	trigIDs  []string // sorted trigger IDs, rebuilt on trigger changes
	faults   map[string]Fault
	report   *TrafficReport

	// engine is this world's persistent traffic engine: it owns the
	// report slabs and re-derives only what changed between recomputes.
	// Clones get a fresh zero-value engine via NewWorld.
	engine trafficEngine

	schedule []scheduledEvent
}

// scheduledEvent is a pending timed world mutation.
type scheduledEvent struct {
	at    time.Duration
	apply func(*World)
}

// NewWorld assembles a world. Controller and backbone may be nil for
// single-fabric simulations.
func NewWorld(net *Network, ctl *Controller, bb *Backbone) *World {
	w := &World{
		Net:             net,
		Clock:           NewClock(),
		Ctl:             ctl,
		Backbone:        bb,
		Changes:         NewChangeLog(),
		BrokenMonitors:  make(map[string]bool),
		ServiceBaseline: make(map[string]float64),
		LatencyBaseline: make(map[string]float64),
		Attachments:     make(map[string]any),
		triggers:        make(map[string]Trigger),
		faults:          make(map[string]Fault),
	}
	w.Clock.OnAdvance(w.runSchedule)
	return w
}

// ScheduleAt queues a world mutation to run when the simulated clock
// first reaches (or passes) at. Scenarios use this for evolving
// incidents — faults that flare, toggle or resolve while responders
// work.
func (w *World) ScheduleAt(at time.Duration, apply func(*World)) {
	w.schedule = append(w.schedule, scheduledEvent{at: at, apply: apply})
	slices.SortStableFunc(w.schedule, func(a, b scheduledEvent) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		}
		return 0
	})
}

// runSchedule fires every due event; registered as a clock hook.
func (w *World) runSchedule(now time.Duration) {
	fired := 0
	for _, ev := range w.schedule {
		if ev.at > now {
			break
		}
		ev.apply(w)
		fired++
	}
	if fired > 0 {
		w.schedule = w.schedule[fired:]
		w.report = nil
	}
}

// SnapshotBaselines records the current per-service demand and worst
// path latency as the provisioned baselines. It computes traffic if
// needed.
func (w *World) SnapshotBaselines() {
	w.ServiceBaseline = make(map[string]float64)
	for _, f := range w.flows {
		w.ServiceBaseline[f.Service] += f.DemandGbps
	}
	w.LatencyBaseline = make(map[string]float64)
	for svc, ss := range w.Report().ServiceStats {
		w.LatencyBaseline[svc] = ss.MaxLatency
	}
}

// ServiceDemand reports the current total demand of a service.
func (w *World) ServiceDemand(service string) float64 {
	var total float64
	for _, f := range w.flows {
		if f.Service == service {
			total += f.DemandGbps
		}
	}
	return total
}

// AddFlows appends traffic demands and invalidates the cached report.
func (w *World) AddFlows(flows ...*Flow) {
	w.flows = append(w.flows, flows...)
	w.report = nil
}

// RemoveFlowsByService drops all flows with the given service label and
// reports how many were removed.
func (w *World) RemoveFlowsByService(service string) int {
	kept := w.flows[:0]
	removed := 0
	for _, f := range w.flows {
		if f.Service == service {
			removed++
			continue
		}
		kept = append(kept, f)
	}
	w.flows = kept
	w.report = nil
	return removed
}

// Flows returns the live flow set (callers must not mutate demand without
// calling Invalidate).
func (w *World) Flows() []*Flow { return w.flows }

// Invalidate discards the cached traffic report; the next Report call
// recomputes. Mutations performed through faults and tools call this.
func (w *World) Invalidate() { w.report = nil }

// Logf appends a syslog event at the current simulated time.
func (w *World) Logf(node NodeID, sev Severity, format string, args ...any) {
	w.events = append(w.events, SyslogEvent{
		At:       w.Clock.Now(),
		Node:     node,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Events returns all syslog events in time order.
func (w *World) Events() []SyslogEvent {
	out := append([]SyslogEvent(nil), w.events...)
	slices.SortStableFunc(out, func(a, b SyslogEvent) int {
		switch {
		case a.At < b.At:
			return -1
		case a.At > b.At:
			return 1
		}
		return 0
	})
	return out
}

// EventsSince returns events at or after t.
func (w *World) EventsSince(t time.Duration) []SyslogEvent {
	var out []SyslogEvent
	for _, e := range w.Events() {
		if e.At >= t {
			out = append(out, e)
		}
	}
	return out
}

// AddTrigger installs a latent trigger.
func (w *World) AddTrigger(t Trigger) {
	w.triggers[t.ID()] = t
	w.trigIDs = nil
	w.report = nil
}

// RemoveTrigger uninstalls a trigger by ID.
func (w *World) RemoveTrigger(id string) {
	delete(w.triggers, id)
	w.trigIDs = nil
	w.report = nil
}

// maxRecomputeRounds bounds the trigger fixed-point: each round a trigger
// may wedge more devices (as in the Tokyo incident, where traffic moving
// off a failed device wedged the next one).
const maxRecomputeRounds = 8

// Recompute routes all traffic under the controller's current policy,
// fires triggers, and iterates to a fixed point. It returns (and caches)
// the final traffic report.
func (w *World) Recompute() *TrafficReport {
	if w.trigIDs == nil && len(w.triggers) > 0 {
		// Deterministic trigger order, rebuilt only when the set changes.
		w.trigIDs = make([]string, 0, len(w.triggers))
		for id := range w.triggers {
			w.trigIDs = append(w.trigIDs, id)
		}
		slices.Sort(w.trigIDs)
	}
	for round := 0; ; round++ {
		if w.Ctl != nil {
			w.Ctl.Evaluate()
		}
		var sel PathSelector
		if w.Ctl != nil {
			sel = w.Ctl
		}
		rep := w.engine.route(w.Net, w.flows, sel)
		changed := false
		for _, id := range w.trigIDs {
			if w.triggers[id].Fire(w, rep) {
				changed = true
			}
		}
		if !changed || round >= maxRecomputeRounds {
			w.report = rep
			return rep
		}
	}
}

// Report returns the cached traffic report, recomputing if state changed
// since the last computation.
func (w *World) Report() *TrafficReport {
	if w.report == nil {
		return w.Recompute()
	}
	return w.report
}

// Inject applies a fault and records it as active.
func (w *World) Inject(f Fault) {
	f.Apply(w)
	w.faults[f.ID()] = f
	w.report = nil
}

// Resolve reverts an active fault by ID; it is a no-op for unknown IDs.
func (w *World) Resolve(id string) {
	f, ok := w.faults[id]
	if !ok {
		return
	}
	f.Revert(w)
	delete(w.faults, id)
	w.report = nil
}

// ActiveFaults lists IDs of unresolved faults, sorted.
func (w *World) ActiveFaults() []string {
	out := make([]string, 0, len(w.faults))
	for id := range w.faults {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// FaultActive reports whether the fault with the given ID is unresolved.
func (w *World) FaultActive(id string) bool { _, ok := w.faults[id]; return ok }

// Clone returns a what-if copy of the world. The network is a
// copy-on-write snapshot (Network.Clone shares the topology maps until
// either side writes); flows are slab-copied in one allocation because
// mitigations mutate them in place; controller, broken monitors and
// triggers are copied; the clock, change log and syslog are
// shared-by-value snapshots (risk assessment only reads them). Mutating
// the clone never affects the original — the risk assessor relies on
// this to evaluate candidate mitigations safely.
func (w *World) Clone() *World {
	var ctl *Controller
	if w.Ctl != nil {
		ctl = w.Ctl.Clone()
	}
	c := NewWorld(w.Net.Clone(), ctl, w.Backbone)
	c.Clock.Advance(w.Clock.Now())
	if len(w.flows) > 0 {
		slab := make([]Flow, len(w.flows))
		c.flows = make([]*Flow, len(w.flows))
		for i, f := range w.flows {
			slab[i] = *f
			// Copy any non-nil Attrs map: MoveService writes into a
			// flow's Attrs, and even an empty map must not be aliased.
			if f.Attrs != nil {
				m := make(map[string]string, len(f.Attrs))
				for k, v := range f.Attrs {
					m[k] = v
				}
				slab[i].Attrs = m
			}
			c.flows[i] = &slab[i]
		}
	}
	for m := range w.BrokenMonitors {
		c.BrokenMonitors[m] = true
	}
	for svc, d := range w.ServiceBaseline {
		c.ServiceBaseline[svc] = d
	}
	for svc, d := range w.LatencyBaseline {
		c.LatencyBaseline[svc] = d
	}
	for id, t := range w.triggers {
		c.triggers[id] = t
	}
	for id, f := range w.faults {
		c.faults[id] = f
	}
	c.Changes = w.Changes.Clone()
	c.events = append(c.events, w.events...)
	return c
}
