package scenarios

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/incident"
	"repro/internal/kb"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

var incidentSeq atomic.Int64

func nextIncidentID(class string) string {
	return fmt.Sprintf("INC-%s-%04d", class, incidentSeq.Add(1))
}

// DeviceFailure: a ToR or gateway crashes; its hosts are blackholed or
// cross-region capacity halves. Chain depth 1. The bread-and-butter
// incident class any predictor should handle.
type DeviceFailure struct{}

// Name implements Scenario.
func (s *DeviceFailure) Name() string { return "device-failure" }

// RootCauseClass implements Scenario.
func (s *DeviceFailure) RootCauseClass() string { return kb.CDeviceDown }

// Build implements Scenario.
func (s *DeviceFailure) Build(rng *rand.Rand) *Instance {
	w := StandardWorld(rng)
	region := pick(rng, regions)
	var target netsim.NodeID
	if rng.Intn(2) == 0 {
		target = netsim.NodeID(fmt.Sprintf("%s-tor-p%d-0", region, rng.Intn(3)))
	} else {
		target = netsim.NodeID(region + "-gw-" + fmt.Sprint(rng.Intn(2)))
	}
	fault := &netsim.DeviceDownFault{Node: target}
	w.Inject(fault)

	truth := &incident.GroundTruth{
		RootCause:   kb.CDeviceDown,
		CausalChain: []string{kb.CDeviceDown, kb.CPacketLoss},
		FaultIDs:    []string{fault.ID()},
		RequiredMitigations: [][]mitigation.Action{
			{{Kind: mitigation.RestartDevice, Target: string(target)}},
		},
	}
	title, summary := phraseFor(rng, "device-failure", region)
	inc := detect(w, rng, nextIncidentID("DEV"), title, summary, truth)
	inc.Service = "web"
	return &Instance{World: w, Incident: inc, Scenario: s}
}

// GrayLink: a fabric link corrupts frames without dropping carrier — the
// classic gray failure. Chain depth 1-2 (corruption -> loss). Correct
// mitigation is isolating the corrupting link.
type GrayLink struct{}

// Name implements Scenario.
func (s *GrayLink) Name() string { return "gray-link" }

// RootCauseClass implements Scenario.
func (s *GrayLink) RootCauseClass() string { return kb.CLinkCorruption }

// Build implements Scenario.
func (s *GrayLink) Build(rng *rand.Rand) *Instance {
	w := StandardWorld(rng)
	region := pick(rng, regions)
	pod := rng.Intn(3)
	lid := netsim.MakeLinkID(
		netsim.NodeID(fmt.Sprintf("%s-tor-p%d-0", region, pod)),
		netsim.NodeID(fmt.Sprintf("%s-agg-p%d-%d", region, pod, rng.Intn(2))),
	)
	rate := 0.15 + 0.1*rng.Float64()
	fault := &netsim.LinkCorruptionFault{Link: lid, Rate: rate}
	w.Inject(fault)

	truth := &incident.GroundTruth{
		RootCause:   kb.CLinkCorruption,
		CausalChain: []string{kb.CLinkCorruption, kb.CPacketLoss},
		FaultIDs:    []string{fault.ID()},
		RequiredMitigations: [][]mitigation.Action{
			{{Kind: mitigation.IsolateLink, Target: string(lid)}},
		},
	}
	title, summary := phraseFor(rng, "gray-link", region)
	inc := detect(w, rng, nextIncidentID("GRAY"), title, summary, truth)
	inc.Service = "web"
	return &Instance{World: w, Incident: inc, Scenario: s}
}

// Congestion: a tenant demand surge overloads fabric-to-WAN capacity.
// Chain depth 2 (surge -> overload -> loss). Correct mitigation is rate
// limiting the surging service.
type Congestion struct{}

// Name implements Scenario.
func (s *Congestion) Name() string { return "congestion" }

// RootCauseClass implements Scenario.
func (s *Congestion) RootCauseClass() string { return kb.CTrafficSurge }

// Build implements Scenario.
func (s *Congestion) Build(rng *rand.Rand) *Instance {
	w := StandardWorld(rng)
	factor := 1.9 + 0.4*rng.Float64()
	fault := &netsim.TrafficSurgeFault{Service: "bulk-transfer", Factor: factor}
	w.Inject(fault)

	truth := &incident.GroundTruth{
		RootCause:   kb.CTrafficSurge,
		CausalChain: []string{kb.CTrafficSurge, kb.CLinkOverload, kb.CPacketLoss},
		FaultIDs:    []string{fault.ID()},
		RequiredMitigations: [][]mitigation.Action{
			{{Kind: mitigation.RateLimitService, Target: "bulk-transfer"}},
		},
	}
	title, summary := phraseFor(rng, "congestion", "")
	inc := detect(w, rng, nextIncidentID("CONG"), title, summary, truth)
	inc.Service = "bulk-transfer"
	return &Instance{World: w, Incident: inc, Scenario: s}
}

// FalseAlarm: the PingMesh aggregation pipeline malfunctions and
// fabricates loss; the network itself is healthy. The correct response is
// repairing the monitor — any traffic-touching mitigation is a mistake.
type FalseAlarm struct{}

// Name implements Scenario.
func (s *FalseAlarm) Name() string { return "false-alarm" }

// RootCauseClass implements Scenario.
func (s *FalseAlarm) RootCauseClass() string { return kb.CMonitorFalseAlarm }

// Build implements Scenario.
func (s *FalseAlarm) Build(rng *rand.Rand) *Instance {
	w := StandardWorld(rng)
	fault := &netsim.MonitorBrokenFault{Monitor: telemetry.MonitorPingMesh}
	w.Inject(fault)

	truth := &incident.GroundTruth{
		RootCause:   kb.CMonitorFalseAlarm,
		CausalChain: []string{kb.CMonitorFalseAlarm, kb.CPacketLoss},
		FaultIDs:    []string{fault.ID()},
		RequiredMitigations: [][]mitigation.Action{
			{{Kind: mitigation.RepairMonitor, Target: telemetry.MonitorPingMesh}},
		},
	}
	// The alert engine sees ground truth and stays quiet; the page comes
	// from PingMesh dashboards, so fabricate the digest the way the
	// broken pipeline would.
	w.Clock.Advance(time.Duration(2+rng.Intn(5)) * time.Minute)
	w.Recompute()
	alerts := []telemetry.Alert{{
		At: w.Clock.Now(), Rule: "service-loss", Severity: netsim.SevError,
		Subject: "pingmesh",
		Detail:  "pingmesh reports 10.0% packet loss on all region pairs (0/0 flows unrouted)",
	}}
	title, summary := phraseFor(rng, "false-alarm", "")
	inc := incident.New(nextIncidentID("MON"), title,
		summary+"\n"+incident.Digest(alerts),
		int(netsim.SevError), w.Clock.Now(), alerts, truth)
	inc.Service = "probe"
	return &Instance{World: w, Incident: inc, Scenario: s}
}

// overrideFault forces the controller's belief about a WAN, modeling a
// fat-fingered controller directive (Cascade stage 3's root cause).
type overrideFault struct {
	WAN string
}

func (f *overrideFault) ID() string { return "ctl-override:" + f.WAN }

func (f *overrideFault) Description() string {
	return "controller directive marks " + f.WAN + " failed"
}

func (f *overrideFault) Apply(w *netsim.World) {
	if w.Ctl != nil {
		w.Ctl.Override(f.WAN, false)
		w.Logf(w.Ctl.NodeID, netsim.SevWarning, "operator directive: %s marked failed", f.WAN)
	}
}

func (f *overrideFault) Revert(w *netsim.World) {
	if w.Ctl != nil {
		w.Ctl.ClearOverride(f.WAN)
	}
}

// Cascade reconstructs the Casc-1 incident (Fig. 2) at three depths:
//
//	Stage 3: a controller directive marks B4 failed
//	         (wan_failover -> overload -> loss).
//	Stage 4: a transient prefix inconsistency appears with no change
//	         record (prefix_conflict -> failover -> overload -> loss).
//	Stage 5: a network-upgrade config push causes the inconsistency — the
//	         full published chain (config_push -> inconsistency ->
//	         prefix_conflict -> failover -> overload -> loss).
//
// Deeper stages demand more deduction steps; Fig. 2's argument is that
// one-shot predictors must leap the whole chain at once.
type Cascade struct {
	Stage int // 3, 4 or 5
}

// Name implements Scenario.
func (s *Cascade) Name() string { return fmt.Sprintf("cascade-%d", s.stage()) }

func (s *Cascade) stage() int {
	if s.Stage < 3 || s.Stage > 5 {
		return 5
	}
	return s.Stage
}

// RootCauseClass implements Scenario.
func (s *Cascade) RootCauseClass() string {
	switch s.stage() {
	case 3:
		return kb.CWANFailover
	case 4:
		return kb.CPrefixConflict
	default:
		return kb.CConfigInconsistency
	}
}

// Build implements Scenario.
func (s *Cascade) Build(rng *rand.Rand) *Instance {
	w := StandardWorld(rng)
	truth := &incident.GroundTruth{}
	overrideMitigation := []mitigation.Action{{Kind: mitigation.OverrideWAN, Target: "B4", Param: "healthy"}}

	switch s.stage() {
	case 3:
		fault := &overrideFault{WAN: "B4"}
		w.Inject(fault)
		rec := w.Changes.Add(netsim.ChangeRecord{
			At: w.Clock.Now(), Team: "wan", Kind: netsim.ChangeConfigPush,
			Description: "traffic-controller directive update",
			Details:     map[string]string{"fault_id": fault.ID()},
		})
		truth.RootCause = kb.CWANFailover
		truth.CausalChain = []string{kb.CWANFailover, kb.CLinkOverload, kb.CPacketLoss}
		truth.FaultIDs = []string{fault.ID()}
		truth.RootFixChange = rec.ID
		truth.RequiredMitigations = [][]mitigation.Action{
			{{Kind: mitigation.RollbackChange, Target: rec.ID}},
			overrideMitigation,
		}
	case 4:
		fault := &netsim.ConfigInconsistencyFault{WAN: "B4", Prefix: "10.0.0.0/16", Clusters: []string{"us-west", "eu-north"}}
		w.Inject(fault)
		truth.RootCause = kb.CPrefixConflict
		truth.CausalChain = []string{kb.CPrefixConflict, kb.CWANFailover, kb.CLinkOverload, kb.CPacketLoss}
		truth.FaultIDs = []string{fault.ID()}
		truth.RequiredMitigations = [][]mitigation.Action{overrideMitigation}
	default: // 5: the full Casc-1 chain
		fault := &netsim.ConfigInconsistencyFault{WAN: "B4", Prefix: "10.0.0.0/16", Clusters: []string{"us-west", "eu-north"}}
		w.Inject(fault)
		rec := w.Changes.Add(netsim.ChangeRecord{
			At: w.Clock.Now(), Team: "wan", Kind: netsim.ChangeConfigPush,
			Description: "network upgrade: staged WAN config push",
			Details:     map[string]string{"fault_id": fault.ID()},
		})
		truth.RootCause = kb.CConfigInconsistency
		truth.CausalChain = []string{kb.CConfigPush, kb.CConfigInconsistency, kb.CPrefixConflict, kb.CWANFailover, kb.CLinkOverload, kb.CPacketLoss}
		truth.FaultIDs = []string{fault.ID()}
		truth.RootFixChange = rec.ID
		truth.RequiredMitigations = [][]mitigation.Action{
			{{Kind: mitigation.RollbackChange, Target: rec.ID}},
			overrideMitigation,
		}
	}

	title, summary := phraseFor(rng, "cascade", "")
	inc := detect(w, rng, nextIncidentID("CASC"), title, summary, truth)
	inc.Service = "bulk-transfer"
	return &Instance{World: w, Incident: inc, Scenario: s}
}

// NovelProtocol reconstructs the AWS Direct Connect Tokyo incident
// (Fig. 3): a recently rolled-out fast-reroute protocol carries a latent
// defect triggered by one customer's packet pattern; devices wedge, and
// restarting them alone causes recurrence. Only disabling the protocol
// (plus restarting wedged devices) resolves it. The version-1 KB knows
// nothing about fastpath — this is the adaptivity experiment's workload.
type NovelProtocol struct{}

// Name implements Scenario.
func (s *NovelProtocol) Name() string { return "novel-protocol" }

// RootCauseClass implements Scenario.
func (s *NovelProtocol) RootCauseClass() string { return kb.CProtocolBug }

// Build implements Scenario.
func (s *NovelProtocol) Build(rng *rand.Rand) *Instance {
	w := StandardWorld(rng)
	// The rollout happened weeks before the incident.
	for _, nd := range w.Net.Nodes() {
		if nd.WANName == "B4" {
			w.Net.MutNode(nd.ID).Protocols[kb.FastpathProtocol] = true
		}
	}
	rollout := w.Changes.Add(netsim.ChangeRecord{
		At: 0, Team: "wan", Kind: netsim.ChangeProtocolRollout,
		Description: "fastpath fast-reroute protocol enabled on B4 routers",
		Details:     map[string]string{"protocol": kb.FastpathProtocol},
	})
	w.Clock.Advance(14 * 24 * time.Hour) // weeks of quiet operation

	fault := &netsim.ProtocolBugFault{Protocol: kb.FastpathProtocol, AttrKey: "pattern", AttrValue: "hdr-0xdead"}
	w.Inject(fault)
	// One tenant's traffic starts matching the trigger pattern.
	for _, f := range w.Flows() {
		if f.Service == "directconnect" {
			f.Attrs["pattern"] = "hdr-0xdead"
		}
	}
	w.Invalidate()

	truth := &incident.GroundTruth{
		RootCause: kb.CProtocolBug,
		CausalChain: []string{
			kb.CProtocolRollout, kb.CProtocolBug, kb.CDeviceOSCrash, kb.CDeviceDown, kb.CPacketLoss,
		},
		FaultIDs:      []string{fault.ID()},
		RootFixChange: rollout.ID,
		RequiredMitigations: [][]mitigation.Action{
			{{Kind: mitigation.DisableProtocol, Target: kb.FastpathProtocol}},
		},
		Novel: true,
	}
	title, summary := phraseFor(rng, "novel-protocol", "")
	inc := detect(w, rng, nextIncidentID("PROTO"), title, summary, truth)
	inc.Service = "directconnect"
	return &Instance{World: w, Incident: inc, Scenario: s}
}

// maintenanceFault takes a batch of links down together — the blast
// radius of one maintenance window.
type maintenanceFault struct {
	id    string
	links []netsim.LinkID
}

func (f *maintenanceFault) ID() string { return "maintenance:" + f.id }
func (f *maintenanceFault) Description() string {
	return fmt.Sprintf("maintenance window took %d links down", len(f.links))
}

func (f *maintenanceFault) Apply(w *netsim.World) {
	for _, lid := range f.links {
		if l := w.Net.MutLink(lid); l != nil {
			l.Down = true
			w.Logf(l.A, netsim.SevError, "link %s to %s: carrier lost", lid, l.B)
		}
	}
}

func (f *maintenanceFault) Revert(w *netsim.World) {
	for _, lid := range f.links {
		if l := w.Net.MutLink(lid); l != nil {
			l.Down = false
			w.Logf(l.A, netsim.SevInfo, "link %s restored", lid)
		}
	}
}

// MaintenanceOverlap models §2's "uncoordinated changes lead to new
// incidents": fiber work scheduled by one team takes down every direct
// B4 link between two regions at once. Traffic reroutes through a third
// region — no packet loss, but the latency SLO for cross-region
// services breaks. The fix is rolling the maintenance back (chain depth
// 2: maintenance_activity -> link_down -> latency_spike).
type MaintenanceOverlap struct{}

// Name implements Scenario.
func (s *MaintenanceOverlap) Name() string { return "maintenance-overlap" }

// RootCauseClass implements Scenario.
func (s *MaintenanceOverlap) RootCauseClass() string { return kb.CMaintenance }

// Build implements Scenario.
func (s *MaintenanceOverlap) Build(rng *rand.Rand) *Instance {
	w := StandardWorld(rng)
	// All direct B4 links between two regions (2 routers on each side).
	pairs := [][2]string{{"us-east", "us-west"}, {"us-east", "eu-north"}, {"us-west", "eu-north"}}
	pr := pairs[rng.Intn(len(pairs))]
	var victims []netsim.LinkID
	for ra := 0; ra < 2; ra++ {
		for rb := 0; rb < 2; rb++ {
			victims = append(victims, netsim.MakeLinkID(
				netsim.NodeID(fmt.Sprintf("B4-%s-r%d", pr[0], ra)),
				netsim.NodeID(fmt.Sprintf("B4-%s-r%d", pr[1], rb)),
			))
		}
	}
	fault := &maintenanceFault{id: pr[0] + "-" + pr[1], links: victims}
	w.Inject(fault)
	rec := w.Changes.Add(netsim.ChangeRecord{
		At: w.Clock.Now(), Team: "dcops", Kind: netsim.ChangeMaintenance,
		Description: fmt.Sprintf("fiber splice work on the %s<->%s span", pr[0], pr[1]),
		Details:     map[string]string{"fault_id": fault.ID()},
	})

	truth := &incident.GroundTruth{
		RootCause:     kb.CMaintenance,
		CausalChain:   []string{kb.CMaintenance, kb.CLinkDown, kb.CLatencySpike},
		FaultIDs:      []string{fault.ID()},
		RootFixChange: rec.ID,
		RequiredMitigations: [][]mitigation.Action{
			{{Kind: mitigation.RollbackChange, Target: rec.ID}},
		},
	}
	title, summary := phraseFor(rng, "maintenance-overlap", pr[0]+"<->"+pr[1])
	inc := detect(w, rng, nextIncidentID("MAINT"), title, summary, truth)
	inc.Service = "bulk-transfer"
	return &Instance{World: w, Incident: inc, Scenario: s}
}

// GrayLinkFlapping is the gray link's nastier cousin: the corruption
// comes and goes (thermal optics, a marginal transceiver), so a single
// tool sample can land in a quiet window and exonerate the guilty link.
// Only a loop that re-tests previously rejected hypotheses when impact
// persists — the paper's reassessment principle — pins it down. The flap
// duty cycle is 10 minutes corrupting, 4 minutes clean.
type GrayLinkFlapping struct{}

// Name implements Scenario.
func (s *GrayLinkFlapping) Name() string { return "gray-link-flap" }

// RootCauseClass implements Scenario.
func (s *GrayLinkFlapping) RootCauseClass() string { return kb.CLinkCorruption }

// Flap timing: asymmetric duty cycle.
const (
	flapOn  = 10 * time.Minute
	flapOff = 4 * time.Minute
)

// Build implements Scenario.
func (s *GrayLinkFlapping) Build(rng *rand.Rand) *Instance {
	w := StandardWorld(rng)
	region := pick(rng, regions)
	pod := rng.Intn(3)
	lid := netsim.MakeLinkID(
		netsim.NodeID(fmt.Sprintf("%s-tor-p%d-0", region, pod)),
		netsim.NodeID(fmt.Sprintf("%s-agg-p%d-%d", region, pod, rng.Intn(2))),
	)
	rate := 0.15 + 0.1*rng.Float64()
	fault := &netsim.LinkCorruptionFault{Link: lid, Rate: rate}
	w.Inject(fault) // starts corrupting

	// Self-rescheduling toggle: while the fault is unresolved and the
	// link not isolated, corruption alternates on/off.
	var toggle func(on bool) func(*netsim.World)
	toggle = func(on bool) func(*netsim.World) {
		return func(ww *netsim.World) {
			l := ww.Net.MutLink(lid)
			if l == nil || !ww.FaultActive(fault.ID()) {
				return
			}
			if on {
				l.CorruptRate = rate
				ww.ScheduleAt(ww.Clock.Now()+flapOn, toggle(false))
			} else {
				l.CorruptRate = 0
				ww.ScheduleAt(ww.Clock.Now()+flapOff, toggle(true))
			}
			ww.Invalidate()
		}
	}
	w.ScheduleAt(w.Clock.Now()+flapOn, toggle(false))

	truth := &incident.GroundTruth{
		RootCause:   kb.CLinkCorruption,
		CausalChain: []string{kb.CLinkCorruption, kb.CPacketLoss},
		FaultIDs:    []string{fault.ID()},
		RequiredMitigations: [][]mitigation.Action{
			{{Kind: mitigation.IsolateLink, Target: string(lid)}},
		},
	}
	title, summary := phraseFor(rng, "gray-link-flap", region)
	inc := detect(w, rng, nextIncidentID("FLAP"), title, summary, truth)
	inc.Service = "web"
	return &Instance{World: w, Incident: inc, Scenario: s}
}
