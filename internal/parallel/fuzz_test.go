package parallel

import "testing"

// FuzzDeriveSeed probes the two properties the evaluation stack depends
// on: (a) no two trial indices ever derive the same seed from one base,
// and (b) the derivation is a pure function of (base, trial) — the same
// pair always yields the same seed, so worker count cannot matter.
func FuzzDeriveSeed(f *testing.F) {
	f.Add(int64(0), uint16(0), uint16(1))
	f.Add(int64(42), uint16(3), uint16(4))
	f.Add(int64(-1), uint16(0), uint16(65535))
	f.Add(int64(1)<<62, uint16(100), uint16(200))
	f.Fuzz(func(t *testing.T, base int64, a, b uint16) {
		sa, sb := DeriveSeed(base, int(a)), DeriveSeed(base, int(b))
		if a != b && sa == sb {
			t.Fatalf("seed collision: base=%d trials %d and %d both derive %d", base, a, b, sa)
		}
		if again := DeriveSeed(base, int(a)); again != sa {
			t.Fatalf("derivation unstable: base=%d trial=%d gave %d then %d", base, a, sa, again)
		}
	})
}

// FuzzRunTrialsSeedStability drives the pool itself at fuzzer-chosen
// sizes and worker counts and asserts every trial received exactly the
// seed DeriveSeed pins for it — scheduling can never reassign seeds.
func FuzzRunTrialsSeedStability(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(1))
	f.Add(int64(99), uint8(32), uint8(8))
	f.Add(int64(-7), uint8(200), uint8(16))
	f.Fuzz(func(t *testing.T, base int64, n, workers uint8) {
		rs := RunTrials(int(n), int(workers), base, func(seed int64, trial int) int64 { return seed })
		if len(rs) != int(n) {
			t.Fatalf("n=%d workers=%d: %d results", n, workers, len(rs))
		}
		for i, r := range rs {
			if want := DeriveSeed(base, i); r.Trial != i || r.Seed != want || r.Value != want {
				t.Fatalf("n=%d workers=%d trial %d: got (trial=%d seed=%d val=%d), want seed %d",
					n, workers, i, r.Trial, r.Seed, r.Value, want)
			}
		}
	})
}
