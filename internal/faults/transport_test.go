package faults

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosTarget mimics the gateway's body handling: MaxBytesReader cap,
// 413 on overflow, 400 on short reads, 201 on a complete body.
func chaosTarget(cap int64) (*httptest.Server, *sync.Map) {
	var acked sync.Map
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cap))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				w.WriteHeader(http.StatusRequestEntityTooLarge)
				return
			}
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		acked.Store(string(body), true)
		w.WriteHeader(http.StatusCreated)
	})
	return httptest.NewServer(h), &acked
}

// TestSendChaosClasses pins each fault class's observable contract
// against a live socket.
func TestSendChaosClasses(t *testing.T) {
	t.Parallel()
	ts, acked := chaosTarget(1024)
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")
	body := []byte(`{"id":"chaos-1"}`)

	cases := []struct {
		class HTTPClass
		want  int
		ack   bool
	}{
		{HTTPNone, http.StatusCreated, true},
		{HTTPSlowBody, http.StatusCreated, true},
		{HTTPOversize, http.StatusRequestEntityTooLarge, false},
		{HTTPTruncate, http.StatusBadRequest, false},
		{HTTPDrop, 0, false},
	}
	for _, tc := range cases {
		code, err := SendChaos(addr, "/v1/incidents", "k", body, tc.class, 1024)
		if err != nil {
			t.Fatalf("%v: SendChaos: %v", tc.class, err)
		}
		if code != tc.want {
			t.Errorf("%v: status %d, want %d", tc.class, code, tc.want)
		}
		_, got := acked.Load(string(body))
		if got != tc.ack {
			t.Errorf("%v: server acked=%v, want %v", tc.class, got, tc.ack)
		}
		acked.Delete(string(body))
	}
}

// TestHTTPScheduleDeadline pins the deadline plumbing: the schedule's
// configured bound reaches SetDeadline (a too-short one times a
// conversation out), unset falls back to the 30s default, and the
// free-function form keeps that default.
func TestHTTPScheduleDeadline(t *testing.T) {
	t.Parallel()
	if d := (HTTPSchedule{}).deadline(); d != defaultSendDeadline {
		t.Errorf("unset deadline resolves to %s, want %s", d, defaultSendDeadline)
	}
	if d := (HTTPSchedule{Deadline: 2 * time.Minute}).deadline(); d != 2*time.Minute {
		t.Errorf("configured deadline resolves to %s, want 2m", d)
	}

	// A server that never answers: only the configured deadline can end
	// the conversation, so a tiny one must surface as a read error fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			_, _ = io.Copy(io.Discard, c) // read forever, say nothing
		}
	}()
	start := time.Now()
	s := HTTPSchedule{Deadline: 50 * time.Millisecond}
	if _, err := s.SendChaos(ln.Addr().String(), "/v1/incidents", "k", []byte(`{}`), HTTPNone, 1024); err == nil {
		t.Fatal("mute server: expected a deadline error, got a response")
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Errorf("50ms deadline took %s to fire — configured value not threaded", took)
	}
}

// TestHTTPScheduleDeterminism: the class at an index is a pure function
// of (rate, seed, index) — repeated asks and different "concurrency"
// never change it — and rate 0 faults nothing.
func TestHTTPScheduleDeterminism(t *testing.T) {
	t.Parallel()
	s := HTTPSchedule{Rate: 0.5, Seed: 99}
	first := make([]HTTPClass, 200)
	for i := range first {
		first[i] = s.ClassAt(i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := s.ClassAt(i); got != first[i] {
					t.Errorf("index %d: %v then %v", i, first[i], got)
					return
				}
			}
		}()
	}
	wg.Wait()

	if (HTTPSchedule{Rate: 0, Seed: 99}).ClassAt(7) != HTTPNone {
		t.Error("rate 0 injected a fault")
	}
	counts := map[HTTPClass]int{}
	for i := 0; i < 2000; i++ {
		counts[s.ClassAt(i)]++
	}
	faulted := 2000 - counts[HTTPNone]
	if faulted < 800 || faulted > 1200 {
		t.Errorf("rate 0.5 faulted %d/2000", faulted)
	}
	for _, c := range []HTTPClass{HTTPDrop, HTTPSlowBody, HTTPOversize, HTTPTruncate} {
		if counts[c] == 0 {
			t.Errorf("class %v never drawn in 2000 requests", c)
		}
	}
}
