package gateway

// Coverage for GET /v1/incidents — cursor pagination, filters, cursor
// stability under concurrent inserts — and for the uniform error
// envelope every non-2xx response must carry.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestListPaginationWalk creates a spread of incidents across both
// configured regions, walks the list in pages of 3, and checks the
// walk visits every record exactly once in (opened_at_minutes, id)
// order; then exercises each filter.
func TestListPaginationWalk(t *testing.T) {
	t.Parallel()
	st := newTestStack(t, 2, 0)
	const n = 10
	for i := 0; i < n; i++ {
		region := "default"
		if i%3 == 0 {
			region = "eu-west"
		}
		body := fmt.Sprintf(`{"id":"p-%03d","scenario":"gray-link","region":%q,"severity":%d,"opened_at_minutes":%d}`,
			i, region, i%3, i)
		if status, resp := st.do(t, "POST", "/v1/incidents", "k-tenant-a", body); status != http.StatusCreated {
			t.Fatalf("create %d: HTTP %d: %s", i, status, resp)
		}
	}

	fetch := func(path string) ListPage {
		t.Helper()
		status, resp := st.do(t, "GET", path, "k-tenant-a", "")
		if status != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d: %s", path, status, resp)
		}
		var page ListPage
		if err := json.Unmarshal([]byte(resp), &page); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return page
	}

	var walked []string
	cursor, pages := "", 0
	for {
		path := "/v1/incidents?limit=3"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		page := fetch(path)
		for _, rec := range page.Incidents {
			walked = append(walked, rec.ID)
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		if len(page.Incidents) != 3 {
			t.Fatalf("short page (%d records) carried a cursor", len(page.Incidents))
		}
		cursor = page.NextCursor
	}
	if pages != 4 {
		t.Fatalf("walked %d pages, want 4 (3+3+3+1)", pages)
	}
	if len(walked) != n {
		t.Fatalf("walk visited %d records, want %d: %v", len(walked), n, walked)
	}
	for i, id := range walked {
		if want := fmt.Sprintf("p-%03d", i); id != want {
			t.Fatalf("walk position %d = %s, want %s (order broken)", i, id, want)
		}
	}

	// Region filter: exactly the eu-west homes, each echoing its region.
	eu := fetch("/v1/incidents?region=eu-west&limit=200")
	if len(eu.Incidents) != 4 {
		t.Fatalf("eu-west filter returned %d records, want 4", len(eu.Incidents))
	}
	for _, rec := range eu.Incidents {
		if rec.Region != "eu-west" {
			t.Fatalf("region filter leaked %s (region %q)", rec.ID, rec.Region)
		}
	}

	// Severity filter (i%3 == 2 → sev2: p-002, p-005, p-008).
	sev2 := fetch("/v1/incidents?severity=sev2")
	if len(sev2.Incidents) != 3 {
		t.Fatalf("sev2 filter returned %d records, want 3", len(sev2.Incidents))
	}
	for _, rec := range sev2.Incidents {
		if rec.Severity != 2 {
			t.Fatalf("severity filter leaked %s (sev %v)", rec.ID, rec.Severity)
		}
	}

	// Status filter: resolve one record, then select on it.
	if status, resp := st.do(t, "PATCH", "/v1/incidents/p-004", "k-tenant-a",
		`{"status":"resolved"}`); status != http.StatusOK {
		t.Fatalf("patch: HTTP %d: %s", status, resp)
	}
	resolved := fetch("/v1/incidents?status=resolved")
	if len(resolved.Incidents) != 1 || resolved.Incidents[0].ID != "p-004" {
		t.Fatalf("status filter = %+v, want exactly p-004", resolved.Incidents)
	}

	// Conjoined filters narrow further.
	both := fetch("/v1/incidents?region=eu-west&status=open")
	if len(both.Incidents) != 4 {
		t.Fatalf("conjoined filter returned %d, want 4", len(both.Incidents))
	}
}

// TestListCursorStableUnderInsert pins the cursor contract: records
// inserted while a walk is paused sort entirely before or after the
// cursor position — a resumed walk never duplicates an already-seen
// record and never misses one in its unvisited suffix.
func TestListCursorStableUnderInsert(t *testing.T) {
	t.Parallel()
	st := newTestStack(t, 2, 0)
	create := func(id string, minutes int) {
		t.Helper()
		body := fmt.Sprintf(`{"id":%q,"scenario":"gray-link","opened_at_minutes":%d}`, id, minutes)
		if status, resp := st.do(t, "POST", "/v1/incidents", "k-tenant-a", body); status != http.StatusCreated {
			t.Fatalf("create %s: HTTP %d: %s", id, status, resp)
		}
	}
	create("s-0", 0)
	create("s-2", 2)
	create("s-4", 4)

	status, resp := st.do(t, "GET", "/v1/incidents?limit=2", "k-tenant-a", "")
	if status != http.StatusOK {
		t.Fatalf("page 1: HTTP %d: %s", status, resp)
	}
	var page1 ListPage
	if err := json.Unmarshal([]byte(resp), &page1); err != nil {
		t.Fatal(err)
	}
	if len(page1.Incidents) != 2 || page1.Incidents[0].ID != "s-0" || page1.Incidents[1].ID != "s-2" {
		t.Fatalf("page 1 = %+v", page1.Incidents)
	}

	// Concurrent inserts on both sides of the paused cursor.
	create("s-1", 1) // sorts inside the already-returned page: must NOT resurface
	create("s-3", 3) // sorts in the unvisited suffix: must appear exactly once

	status, resp = st.do(t, "GET", "/v1/incidents?limit=200&cursor="+page1.NextCursor, "k-tenant-a", "")
	if status != http.StatusOK {
		t.Fatalf("page 2: HTTP %d: %s", status, resp)
	}
	var page2 ListPage
	if err := json.Unmarshal([]byte(resp), &page2); err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(page2.Incidents))
	for i, rec := range page2.Incidents {
		got[i] = rec.ID
	}
	if len(got) != 2 || got[0] != "s-3" || got[1] != "s-4" {
		t.Fatalf("resumed page = %v, want [s-3 s-4] (no duplicates, suffix inserts visible)", got)
	}
	if page2.NextCursor != "" {
		t.Fatalf("final page carried cursor %q", page2.NextCursor)
	}
}

// TestErrorEnvelopeUniform sweeps the error taxonomy and checks every
// non-2xx body parses into the one envelope with the expected stable
// code, the blamed field where there is one, and a non-empty message.
func TestErrorEnvelopeUniform(t *testing.T) {
	t.Parallel()
	st := newTestStack(t, 1, 1)
	if status, resp := st.do(t, "POST", "/v1/incidents", "k-tenant-a",
		`{"id":"dup-1","scenario":"gray-link","opened_at_minutes":0}`); status != http.StatusCreated {
		t.Fatalf("seed create: HTTP %d: %s", status, resp)
	}
	cases := []struct {
		method, path, key, body string
		status                  int
		code, field             string
	}{
		{"GET", "/v1/incidents/none", "", "", http.StatusUnauthorized, CodeUnauthorized, ""},
		{"GET", "/v1/incidents/none", "k-bogus", "", http.StatusUnauthorized, CodeUnauthorized, ""},
		{"POST", "/v1/incidents", "k-tenant-a", `{"scenario":`, http.StatusBadRequest, CodeInvalidPayload, ""},
		{"POST", "/v1/incidents", "k-tenant-a", `{"scenario":"nope"}`, http.StatusUnprocessableEntity, CodeValidation, "scenario"},
		{"POST", "/v1/incidents", "k-tenant-a", `{"scenario":"gray-link","region":"mars"}`, http.StatusUnprocessableEntity, CodeValidation, "region"},
		{"POST", "/v1/incidents", "k-tenant-a", `{"scenario":"gray-link","region":"bad region"}`, http.StatusUnprocessableEntity, CodeValidation, "region"},
		{"POST", "/v1/incidents", "k-tenant-a", `{"id":"dup-1","scenario":"gray-link"}`, http.StatusConflict, CodeConflict, ""},
		{"GET", "/v1/incidents/none", "k-tenant-a", "", http.StatusNotFound, CodeNotFound, ""},
		{"GET", "/v1/incidents?limit=9999", "k-tenant-a", "", http.StatusUnprocessableEntity, CodeValidation, "limit"},
		{"GET", "/v1/incidents?cursor=zzz", "k-tenant-a", "", http.StatusUnprocessableEntity, CodeValidation, "cursor"},
		{"GET", "/v1/incidents?severity=sev9", "k-tenant-a", "", http.StatusUnprocessableEntity, CodeValidation, "severity"},
		{"GET", "/v1/incidents?status=bogus", "k-tenant-a", "", http.StatusUnprocessableEntity, CodeValidation, "status"},
		{"PATCH", "/v1/incidents/none", "k-tenant-a", `{"status":"open"}`, http.StatusNotFound, CodeNotFound, ""},
		{"POST", "/v1/sim/advance", "k-tenant-a", `{"minutes":1,"to_minutes":2}`, http.StatusUnprocessableEntity, CodeValidation, "minutes"},
	}
	for _, c := range cases {
		status, resp := st.do(t, c.method, c.path, c.key, c.body)
		if status != c.status {
			t.Errorf("%s %s: HTTP %d, want %d (%s)", c.method, c.path, status, c.status, resp)
			continue
		}
		var eb ErrorBody
		if err := json.Unmarshal([]byte(resp), &eb); err != nil {
			t.Errorf("%s %s: body is not the error envelope: %v (%s)", c.method, c.path, err, resp)
			continue
		}
		if eb.Error.Code != c.code {
			t.Errorf("%s %s: code %q, want %q", c.method, c.path, eb.Error.Code, c.code)
		}
		if eb.Error.Field != c.field {
			t.Errorf("%s %s: field %q, want %q", c.method, c.path, eb.Error.Field, c.field)
		}
		if eb.Error.Message == "" {
			t.Errorf("%s %s: empty message", c.method, c.path)
		}
	}
}

// TestCreateEchoesRegion: an explicit region comes back on the create
// response and on subsequent GETs; an absent one defaults.
func TestCreateEchoesRegion(t *testing.T) {
	t.Parallel()
	st := newTestStack(t, 1, 0)
	status, resp := st.do(t, "POST", "/v1/incidents", "k-tenant-a",
		`{"id":"r-eu","scenario":"gray-link","region":"eu-west","opened_at_minutes":0}`)
	if status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", status, resp)
	}
	var rec Record
	if err := json.Unmarshal([]byte(resp), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Region != "eu-west" {
		t.Fatalf("created region = %q, want eu-west", rec.Region)
	}
	status, resp = st.do(t, "POST", "/v1/incidents", "k-tenant-a",
		`{"id":"r-def","scenario":"gray-link","opened_at_minutes":0}`)
	if status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", status, resp)
	}
	if err := json.Unmarshal([]byte(resp), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Region != "default" {
		t.Fatalf("defaulted region = %q, want default", rec.Region)
	}
}
