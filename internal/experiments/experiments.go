// Package experiments implements the per-experiment harnesses E1-E9
// indexed in DESIGN.md: each regenerates one of the paper's figures or
// §3 evaluation methodologies as a printable table, with the qualitative
// shape the paper claims (who wins, by roughly what factor, where the
// crossovers are).
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/eval"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/parallel"
	"repro/internal/replayer"
	"repro/internal/scenarios"
)

// Params sizes an experiment run.
type Params struct {
	Trials  int   // incidents per cell (default 20)
	Seed    int64 // base seed
	Workers int   // parallel trial workers (<= 0: GOMAXPROCS)

	// FaultRate is the top of E13's fault-rate ladder (0 keeps E13's
	// default); other experiments ignore it and stay fault-free.
	FaultRate float64
	// FaultSeed selects E13's fault schedules (default 1337).
	FaultSeed int64
	// Naive drops E13's resilient-helper arm, leaving the naive helper
	// and the control — the CLIs' -naive flag.
	Naive bool
	// Obs, when non-nil, collects every trial's event stream and the
	// aggregate metrics across whichever experiments run. Tables are
	// byte-identical with or without it.
	Obs *obs.Sink
}

func (p Params) withDefaults() Params {
	if p.Trials <= 0 {
		p.Trials = 20
	}
	return p
}

// sub derives the per-cell Params every experiment hands runCell: same
// sizing, workers and sink, seed shifted by the experiment's offset.
func (p Params) sub(seedOffset int64) Params {
	p2 := p
	p2.Seed = p.Seed + seedOffset
	return p2
}

// currentKB returns the up-to-date knowledge base (base corpus plus the
// fastpath rollout delta).
func currentKB() *kb.KB {
	k := kb.Default()
	kb.ApplyFastpathUpdate(k)
	return k
}

// staleKB returns version-1 knowledge (predates fastpath).
func staleKB() *kb.KB { return kb.Default() }

// fastpathRules is the in-context form of the fastpath knowledge delta.
func fastpathRules() []llm.InContextRule {
	return []llm.InContextRule{
		{Cause: kb.CProtocolRollout, Effect: kb.CProtocolBug, Strength: 0.4},
		{Cause: kb.CProtocolBug, Effect: kb.CDeviceOSCrash, Strength: 0.8},
	}
}

// cell accumulates per-runner statistics for one experiment cell.
type cell struct {
	n, correct, mitigated, escalated int
	wrong, secondary, planErr        int
	retries, quarantined             int
	ttmMin, rounds, tokens           float64
	ttms                             []float64
}

func (c *cell) add(r harness.Result) {
	c.n++
	if r.Correct {
		c.correct++
	}
	if r.Mitigated {
		c.mitigated++
	}
	if r.Escalated {
		c.escalated++
	}
	c.wrong += r.Wrong
	c.secondary += r.Secondary
	c.planErr += r.PlanErrors
	c.retries += r.Retries
	c.quarantined += r.Quarantined
	m := r.PenalizedTTM().Minutes()
	c.ttmMin += m
	c.ttms = append(c.ttms, m)
	c.rounds += float64(r.Rounds)
	c.tokens += float64(r.Tokens)
}

func (c *cell) rate(k int) float64 {
	if c.n == 0 {
		return 0
	}
	return float64(k) / float64(c.n)
}

func (c *cell) meanTTM() float64    { return c.ttmMin / maxf(1, float64(c.n)) }
func (c *cell) meanRounds() float64 { return c.rounds / maxf(1, float64(c.n)) }
func (c *cell) meanTokens() float64 { return c.tokens / maxf(1, float64(c.n)) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// runCell drives one runner over Trials instances of one scenario on
// the parallel trial pool. Per-trial seeds come from the scheduling-
// independent derivation, and results aggregate in trial order, so the
// cell is bit-identical at any worker count.
func runCell(sc scenarios.Scenario, r harness.Runner, p Params) *cell {
	c := &cell{}
	for _, tr := range harness.RunPoolObserved(sc, r, p.Trials, p.Workers, p.Seed, p.Obs) {
		c.add(harness.PoolResult(sc, tr))
	}
	return c
}

// routineHistory generates the one-shot baseline's training corpus:
// routine incidents resolved in the past (deep cascades and the novel
// protocol incident are, as in production, absent from history).
func routineHistory(seed int64, n int) *replayer.Corpus {
	return replayer.Generate(replayer.Options{N: n, Seed: seed})
}

// ---------------------------------------------------------------------------
// E1 — Figure 1: the three modules end to end.
// ---------------------------------------------------------------------------

// E1FrameworkTrace runs the full Casc-1 incident through the helper and
// returns the module-by-module trace plus a summary table.
func E1FrameworkTrace(p Params) (string, []*eval.Table) {
	p = p.withDefaults()
	kbase := currentKB()
	sc := &scenarios.Cascade{Stage: 5}
	in := sc.Build(rand.New(rand.NewSource(p.Seed)))
	model := llm.NewSimLLM(kbase, p.Seed)
	res, out := harness.RunSession(model, kbase, core.DefaultConfig(), 0.9, kb.NewHistory(), in, p.Seed, p.Obs.Observer())
	trace := core.NewSessionTrace(out).String()

	t := eval.NewTable("E1 (Fig.1): framework session summary — full Casc-1 incident",
		"metric", "value")
	t.AddRow("scenario", in.Scenario.Name())
	t.AddRow("mitigated", res.Mitigated)
	t.AddRow("plan correct", res.Correct)
	t.AddRow("root cause found", res.RootCause)
	t.AddRow("TTM (min)", res.TTM.Minutes())
	t.AddRow("rounds", res.Rounds)
	t.AddRow("tool calls", res.ToolCalls)
	t.AddRow("LLM calls", res.LLMCalls)
	t.AddRow("LLM tokens", res.Tokens)
	return trace, []*eval.Table{t}
}

// ---------------------------------------------------------------------------
// E2 — Figure 2: iterative vs one-shot across causal-chain depth.
// ---------------------------------------------------------------------------

// E2IterativeVsOneShot runs both predictor designs over the scenario
// ladder ordered by ground-truth chain depth. The paper's shape: one-shot
// holds up on shallow routine incidents and collapses as the chain
// deepens or turns novel; the iterative helper degrades gracefully, with
// deduction rounds growing roughly with depth.
func E2IterativeVsOneShot(p Params) []*eval.Table {
	p = p.withDefaults()
	corpus := routineHistory(p.Seed^0x2222, 150)
	kbase := currentKB()
	iter := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig(), History: corpus.History}
	oneShot := &harness.OneShotRunner{History: corpus.History, KBase: kbase}

	type row struct {
		name  string
		depth int
		os    *cell
		it    *cell
	}
	var rows []row
	for _, sc := range scenarios.All() {
		depth := sc.Build(rand.New(rand.NewSource(1))).Incident.Truth.ChainDepth()
		rows = append(rows, row{
			name:  sc.Name(),
			depth: depth,
			os:    runCell(sc, oneShot, p.sub(11)),
			it:    runCell(sc, iter, p.sub(11)),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].depth < rows[j].depth })

	t := eval.NewTable("E2 (Fig.2): one-shot vs iterative by causal-chain depth",
		"scenario", "depth", "oneshot-correct", "iter-correct", "oneshot-TTM(m)", "iter-TTM(m)", "iter-rounds")
	for _, r := range rows {
		t.AddRow(r.name, r.depth,
			eval.Pct(r.os.rate(r.os.correct)), eval.Pct(r.it.rate(r.it.correct)),
			r.os.meanTTM(), r.it.meanTTM(), r.it.meanRounds())
	}
	return []*eval.Table{t}
}

// ---------------------------------------------------------------------------
// E3 — Figure 3: adaptivity on the novel-protocol incident.
// ---------------------------------------------------------------------------

// E3Adaptivity contrasts helper variants on the Tokyo-style incident: the
// one-shot (no matching history can exist), the stale iterative helper
// (v1 knowledge), the in-context-updated helper, the fine-tuned helper,
// and the unassisted human for reference. Paper shape: only updated
// iterative helpers resolve it, and the update is a small rule delta, not
// end-to-end samples.
func E3Adaptivity(p Params) []*eval.Table {
	p = p.withDefaults()
	corpus := routineHistory(p.Seed^0x3333, 150)
	sc := &scenarios.NovelProtocol{}

	staleCfg := core.DefaultConfig()
	inctxCfg := core.DefaultConfig()
	inctxCfg.InContextRules = fastpathRules()

	runners := []harness.Runner{
		&harness.OneShotRunner{Label: "one-shot (history)", History: corpus.History, KBase: currentKB()},
		&harness.HelperRunner{Label: "iterative (stale KB)", KBase: staleKB(), Config: staleCfg, OCEKB: currentKB(), History: corpus.History},
		&harness.HelperRunner{Label: "iterative (in-context update)", KBase: staleKB(), Config: inctxCfg, OCEKB: currentKB(), History: corpus.History},
		&harness.HelperRunner{Label: "iterative (fine-tuned)", KBase: currentKB(), Config: core.DefaultConfig(), History: corpus.History},
		&harness.ControlRunner{Label: "unassisted OCE", KBase: currentKB(), History: corpus.History},
	}
	t := eval.NewTable("E3 (Fig.3): adaptivity on the novel-protocol (Tokyo) incident",
		"helper", "correct", "escalated", "TTM(m)", "rounds")
	for _, r := range runners {
		c := runCell(sc, r, p.sub(31))
		t.AddRow(r.Name(), eval.Pct(c.rate(c.correct)), eval.Pct(c.rate(c.escalated)), c.meanTTM(), c.meanRounds())
	}
	return []*eval.Table{t}
}

// ---------------------------------------------------------------------------
// E4 — §3: randomized A/B evaluation.
// ---------------------------------------------------------------------------

// E4ABTest runs the randomized trial over the mixed workload and reports
// arm statistics, mistake overheads and significance tests.
func E4ABTest(p Params) []*eval.Table {
	p = p.withDefaults()
	n := p.Trials * 8 // the AB harness needs volume; Trials scales it
	kbase := currentKB()
	hist := routineHistory(p.Seed^0x4444, 120).History
	res := eval.ABTest(eval.ABConfig{N: n, Seed: p.Seed + 41, Workers: p.Workers, Obs: p.Obs},
		&harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig(), History: hist},
		&harness.ControlRunner{KBase: kbase, Expertise: 0.8, History: hist},
	)

	arms := eval.NewTable("E4 (§3): A/B trial — helper-assisted vs control",
		"arm", "n", "meanTTM(m)", "medianTTM(m)", "p95TTM(m)", "mitigated", "correct", "wrong-mitigations", "secondary")
	for _, a := range []*eval.ArmStats{&res.Treatment, &res.Control} {
		arms.AddRow(a.Name, a.N, a.MeanTTM(), a.MedianTTM(), eval.Percentile(a.TTMMinutes, 95),
			eval.Pct(a.MitigationRate()), eval.Pct(a.CorrectRate()), a.Wrong, a.Secondary)
	}

	tests := eval.NewTable("E4 (§3): significance of the TTM difference",
		"test", "statistic", "p-value")
	tests.AddRow("Welch t", res.Welch.T, fmt.Sprintf("%.4g", res.Welch.P))
	tests.AddRow("Mann-Whitney U (z)", res.MannWhitney.T, fmt.Sprintf("%.4g", res.MannWhitney.P))
	tests.AddRow("permutation (mean diff)", "-", fmt.Sprintf("%.4g", res.PermP))
	tests.AddRow("bootstrap 95% CI of diff (min)", fmt.Sprintf("[%.1f, %.1f]", res.DiffLo, res.DiffHi), "-")
	tests.AddRow("Cohen's d", res.EffectSize, "-")
	return []*eval.Table{arms, tests}
}

// ---------------------------------------------------------------------------
// E5 — §3: historical replay.
// ---------------------------------------------------------------------------

// E5Replay generates a historical corpus (operators resolving routine
// and cascade incidents unassisted) and replays it through the helper.
func E5Replay(p Params) []*eval.Table {
	p = p.withDefaults()
	mix := append(scenarios.Routine(), &scenarios.Cascade{Stage: 5})
	c := replayer.Generate(replayer.Options{N: p.Trials * 6, Seed: p.Seed ^ 0x5555, Mix: mix})
	runner := &harness.HelperRunner{KBase: currentKB(), Config: core.DefaultConfig(), History: c.History}
	rep := replayer.ReplayObserved(c, runner, p.Workers, p.Obs)

	t := eval.NewTable("E5 (§3): historical replay through the helper", "metric", "value")
	t.AddRow("corpus size", len(rep.Items))
	t.AddRow("mitigation matched", rep.Matched)
	t.AddRow("mitigation mismatched", rep.Mismatched)
	t.AddRow("helper unresolved", rep.Unresolved)
	t.AddRow("match fraction", eval.Pct(rep.MatchFraction()))
	t.AddRow("mean TTM savings, matched (min)", rep.MeanSavings.Minutes())
	t.AddRow("mismatches with conditional estimate", rep.CondCovered)
	t.AddRow("mean TTM savings incl. conditional (min)", rep.MeanCondSavings.Minutes())
	return []*eval.Table{t}
}

// ---------------------------------------------------------------------------
// E6 — §3: system and management costs.
// ---------------------------------------------------------------------------

// slaCostPerMinute models revenue/SLA exposure per minute of unresolved
// incident by severity (netsim severity scale 0-3).
var slaCostPerMinute = map[int]float64{0: 5, 1: 50, 2: 500, 3: 2000}

// E6Costs reports (a) helper inference cost per incident class against
// the modeled SLA exposure the saved minutes represent, and (b) the TSG
// automation vs script cost ladder over change rate.
func E6Costs(p Params) []*eval.Table {
	p = p.withDefaults()
	kbase := currentKB()
	hist := routineHistory(p.Seed^0x6666, 100).History
	helper := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig(), History: hist}
	control := &harness.ControlRunner{KBase: kbase, Expertise: 0.8, History: hist}
	pricing := llm.DefaultPricing()

	infer := eval.NewTable("E6 (§3): helper inference cost vs SLA exposure saved",
		"scenario", "tokens/incident", "LLM cost $", "TTM saved (m)", "SLA $ saved", "cost ratio")
	for _, sc := range scenarios.All() {
		ch := runCell(sc, helper, p.sub(61))
		cc := runCell(sc, control, p.sub(61))
		sev := sc.Build(rand.New(rand.NewSource(1))).Incident.Severity
		saved := cc.meanTTM() - ch.meanTTM()
		slaSaved := saved * slaCostPerMinute[sev]
		llmCost := ch.meanTokens() / 1000 * pricing.PromptPer1K
		ratio := "inf"
		if slaSaved > 0 {
			ratio = fmt.Sprintf("%.4f", llmCost/slaSaved)
		}
		infer.AddRow(sc.Name(), ch.meanTokens(), llmCost, saved, slaSaved, ratio)
	}

	m := baseline.DefaultCostModel()
	tsg := eval.NewTable("E6 (§3): TSG automation — LLM vs hard-coded script (240 incidents/yr, 2k tok/run)",
		"TSG revisions/yr", "LLM total $", "script total $", "LLM overhead $")
	for _, rev := range []int{0, 4, 12, 24} {
		l := m.LLMTSGCost(rev, 240, 2000)
		s := m.ScriptCost(rev)
		tsg.AddRow(rev, l.Total(), s.Total(), l.Total()-s.Total())
	}
	return []*eval.Table{infer, tsg}
}

// ---------------------------------------------------------------------------
// E7 — §2/§4.3: risk assessment ablation.
// ---------------------------------------------------------------------------

// E7RiskAblation compares helper variants with risk views disabled, on a
// hallucinating model over the risky workload. Paper shape: disabling
// risk feedback buys nothing and costs wrong mitigations and secondary
// impact; the combined view dominates either alone.
func E7RiskAblation(p Params) []*eval.Table {
	p = p.withDefaults()
	kbase := currentKB()
	mkCfg := func(qual, quant bool) core.Config {
		c := core.DefaultConfig()
		c.UseQualitativeRisk = qual
		c.UseQuantitativeRisk = quant
		return c
	}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"no risk assessment", mkCfg(false, false)},
		{"qualitative only", mkCfg(true, false)},
		{"quantitative only", mkCfg(false, true)},
		{"combined (paper)", mkCfg(true, true)},
	}
	workload := []scenarios.Scenario{&scenarios.NovelProtocol{}, &scenarios.Cascade{Stage: 5}, &scenarios.FalseAlarm{}}

	t := eval.NewTable("E7 (§2): risk-assessment ablation (hallucination rate 0.15)",
		"variant", "correct", "wrong-mitigations", "secondary", "plan-errors", "TTM(m)")
	for _, v := range variants {
		agg := &cell{}
		for _, sc := range workload {
			r := &harness.HelperRunner{KBase: kbase, Config: v.cfg, Hallucination: 0.15}
			c := runCell(sc, r, p.sub(71))
			agg.merge(c)
		}
		t.AddRow(v.name, eval.Pct(agg.rate(agg.correct)), agg.wrong, agg.secondary, agg.planErr, agg.meanTTM())
	}
	return []*eval.Table{t}
}

func (c *cell) merge(o *cell) {
	c.n += o.n
	c.correct += o.correct
	c.mitigated += o.mitigated
	c.escalated += o.escalated
	c.wrong += o.wrong
	c.secondary += o.secondary
	c.planErr += o.planErr
	c.retries += o.retries
	c.quarantined += o.quarantined
	c.ttmMin += o.ttmMin
	c.rounds += o.rounds
	c.tokens += o.tokens
	c.ttms = append(c.ttms, o.ttms...)
}

// ---------------------------------------------------------------------------
// E8 — §4.4: network-focused embeddings.
// ---------------------------------------------------------------------------

// paraphraser rewrites incident prose with domain synonyms — the way a
// different engineer would have written the same report. The network
// embedder folds these synonyms onto shared tokens; a generic embedder
// sees unrelated strings. Retrieval must survive this to be useful.
var paraphraser = strings.NewReplacer(
	"loss", "discards", "Loss", "Discards",
	"drops", "discards", "Drops", "Discards",
	"packet", "frame", "Packet", "Frame",
	"crash", "wedge", "crashed", "wedged",
	"resetting", "watchdog cycling",
	"retransmissions", "resends",
	"checksum", "crc", "Checksum", "CRC",
	"congestion", "saturation", "congested", "saturated",
	"saturated", "overdriven",
	"latency", "rtt", "Latency", "RTT",
	"monitoring", "telemetry", "Monitoring", "Telemetry",
	"customers", "tenants", "Customers", "Tenants",
	"timeouts", "stalls",
	"blackholed", "null-routed", "Blackholed", "Null-routed",
	"tunnels", "circuits",
)

// E8Embeddings measures retrieval quality (P@1 of the root cause over
// history) and the downstream one-shot outcome for the generic vs the
// network-domain embedding model. Probe incidents are paraphrased with
// domain synonyms, so they never repeat the historical phrasing
// verbatim — the held-out condition §4.4 worries about.
func E8Embeddings(p Params) []*eval.Table {
	p = p.withDefaults()
	corpus := routineHistory(p.Seed^0x8888, 150)
	kbase := currentKB()
	embedders := []embed.Embedder{embed.NewHashEmbedder(128), embed.NewDomainEmbedder(128)}

	t := eval.NewTable("E8 (§4.4): generic vs network-domain embeddings (paraphrased probes)",
		"embedder", "P@1 full report", "P@1 prose-only", "P@1 noisy-prose", "class margin", "oneshot-correct")
	for _, e := range embedders {
		// Retrieval over the full report (incl. the machine-generated
		// alert digest) and over operator prose alone. The digest is
		// structured and identical in form across reports, so it papers
		// over embedding quality; prose-only is where §4.4's concern
		// bites.
		pred := baseline.Train(corpus.History, kbase, e)
		prose := embed.NewStore(e)
		for _, rec := range corpus.History.All() {
			prose.Add(rec.ID, stripDigest(rec.Text()))
		}
		fullHits, proseHits, noisyHits, total := 0, 0, 0, 0
		var marginSum float64
		rng := rand.New(rand.NewSource(p.Seed + 81))
		for _, sc := range scenarios.Routine() {
			for i := 0; i < p.Trials; i++ {
				in := sc.Build(rand.New(rand.NewSource(rng.Int63())))
				in.Incident.Title = paraphraser.Replace(in.Incident.Title)
				in.Incident.Summary = paraphraser.Replace(in.Incident.Summary)
				total++
				if pr, ok := pred.Predict(in.Incident); ok && pr.RootCause == in.Incident.Truth.RootCause {
					fullHits++
				}
				q := stripDigest(in.Incident.Title + ". " + in.Incident.Summary)
				if hits := prose.Search(q, 1); len(hits) == 1 {
					if rec, ok := corpus.History.ByID(hits[0].ID); ok && rec.RootCause == in.Incident.Truth.RootCause {
						proseHits++
					}
				}
				// Noisy condition: ticket boilerplate dilutes the signal.
				noisy := q + " " + fillerProse(rng, 60)
				if hits := prose.Search(noisy, 1); len(hits) == 1 {
					if rec, ok := corpus.History.ByID(hits[0].ID); ok && rec.RootCause == in.Incident.Truth.RootCause {
						noisyHits++
					}
				}
				// Class-separation margin: mean similarity to same-class
				// records minus mean similarity to other classes.
				marginSum += classMargin(e, corpus, q, in.Incident.Truth.RootCause)
			}
		}
		agg := &cell{}
		for _, sc := range scenarios.Routine() {
			r := &paraphrasedRunner{inner: &harness.OneShotRunner{History: corpus.History, KBase: kbase, Embedder: e}}
			agg.merge(runCell(sc, r, p.sub(82)))
		}
		t.AddRow(e.Name(),
			eval.Pct(float64(fullHits)/float64(total)),
			eval.Pct(float64(proseHits)/float64(total)),
			eval.Pct(float64(noisyHits)/float64(total)),
			fmt.Sprintf("%.3f", marginSum/float64(total)),
			eval.Pct(agg.rate(agg.correct)))
	}
	return []*eval.Table{t}
}

// stripDigest removes the machine-generated alert digest from report
// text, leaving operator prose.
func stripDigest(text string) string {
	if i := strings.Index(text, "auto-digest:"); i >= 0 {
		return text[:i]
	}
	return text
}

// fillerWords is incident-ticket boilerplate with no diagnostic content.
var fillerWords = []string{
	"please", "see", "attached", "ticket", "update", "thanks", "team",
	"escalating", "per", "runbook", "attaching", "screenshot", "timeline",
	"follow", "up", "status", "call", "bridge", "joined", "acknowledged",
	"paging", "secondary", "manager", "notified", "stakeholders", "aware",
}

// fillerProse generates n words of boilerplate.
func fillerProse(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(fillerWords[rng.Intn(len(fillerWords))])
	}
	return b.String()
}

// classMargin measures how much closer the query embeds to same-class
// records than to other classes: the retrieval robustness §4.4 is after.
func classMargin(e embed.Embedder, corpus *replayer.Corpus, query, class string) float64 {
	qv := e.Embed(query)
	var same, other float64
	var nSame, nOther int
	for _, rec := range corpus.History.All() {
		sim := embed.Cosine(qv, e.Embed(stripDigest(rec.Text())))
		if rec.RootCause == class {
			same += sim
			nSame++
		} else {
			other += sim
			nOther++
		}
	}
	if nSame == 0 || nOther == 0 {
		return 0
	}
	return same/float64(nSame) - other/float64(nOther)
}

// paraphrasedRunner rewrites the incident prose before handing it to the
// inner runner.
type paraphrasedRunner struct{ inner harness.Runner }

func (r *paraphrasedRunner) Name() string { return r.inner.Name() }

func (r *paraphrasedRunner) Run(in *scenarios.Instance, seed int64) harness.Result {
	in.Incident.Title = paraphraser.Replace(in.Incident.Title)
	in.Incident.Summary = paraphraser.Replace(in.Incident.Summary)
	return r.inner.Run(in, seed)
}

// ---------------------------------------------------------------------------
// E9 — sensitivity sweeps.
// ---------------------------------------------------------------------------

// E9Sensitivity sweeps hallucination rate x OCE expertise, hypothesis
// beam width, and context-window size.
func E9Sensitivity(p Params) []*eval.Table {
	p = p.withDefaults()
	kbase := currentKB()
	workload := []scenarios.Scenario{&scenarios.GrayLink{}, &scenarios.Cascade{Stage: 5}}

	hal := eval.NewTable("E9a: hallucination rate x OCE expertise (gray-link + cascade-5)",
		"hallucination", "expertise", "correct", "secondary", "TTM(m)")
	for _, h := range []float64{0, 0.1, 0.25, 0.5} {
		for _, ex := range []float64{0.9, 0.4} {
			agg := &cell{}
			for _, sc := range workload {
				r := &harness.HelperRunner{KBase: kbase, Config: core.DefaultConfig(), Hallucination: h, Expertise: ex}
				agg.merge(runCell(sc, r, p.sub(91)))
			}
			hal.AddRow(h, ex, eval.Pct(agg.rate(agg.correct)), agg.secondary, agg.meanTTM())
		}
	}

	// Beam width matters when the top suggestion can be wrong: a wider
	// beam gives the OCE ranked alternatives to approve after vetoing a
	// fabrication, at the price of tokens. Swept under hallucination.
	beam := eval.NewTable("E9b: hypothesis beam width (cascade-5 + gray-link, hallucination 0.2)",
		"beam", "correct", "TTM(m)", "rounds", "tokens/incident")
	for _, b := range []int{1, 2, 3, 5} {
		cfg := core.DefaultConfig()
		cfg.Beam = b
		agg := &cell{}
		for _, sc := range workload {
			r := &harness.HelperRunner{KBase: kbase, Config: cfg, Hallucination: 0.2}
			agg.merge(runCell(sc, r, p.sub(92)))
		}
		beam.AddRow(b, eval.Pct(agg.rate(agg.correct)), agg.meanTTM(), agg.meanRounds(), agg.meanTokens())
	}

	sc := eval.NewTable("E9d: self-consistency votes on interpretation (gray-link, hallucination 0.3, novice OCE)",
		"votes", "correct", "TTM(m)", "tokens/incident")
	for _, v := range []int{1, 3, 5} {
		cfg := core.DefaultConfig()
		cfg.SelfConsistency = v
		r := &harness.HelperRunner{KBase: kbase, Config: cfg, Hallucination: 0.3, Expertise: 0.3}
		pp := p.sub(94)
		pp.Trials = p.Trials * 2
		c := runCell(&scenarios.GrayLink{}, r, pp)
		sc.AddRow(v, eval.Pct(c.rate(c.correct)), c.meanTTM(), c.meanTokens())
	}

	win := eval.NewTable("E9c: context window (novel-protocol via in-context update)",
		"window(tokens)", "correct", "escalated", "TTM(m)")
	for _, w := range []int{96, 192, 512, 8192} {
		cfg := core.DefaultConfig()
		cfg.InContextRules = fastpathRules()
		r := &harness.HelperRunner{KBase: staleKB(), OCEKB: currentKB(), Config: cfg, Window: w}
		c := runCell(&scenarios.NovelProtocol{}, r, p.sub(93))
		win.AddRow(w, eval.Pct(c.rate(c.correct)), eval.Pct(c.rate(c.escalated)), c.meanTTM())
	}
	return []*eval.Table{hal, beam, win, sc}
}

// All runs every experiment and returns the tables keyed by experiment
// id, in order.
var Registry = []struct {
	ID   string
	Desc string
	Run  func(Params) []*eval.Table
}{
	{"e1", "Fig.1 framework session", func(p Params) []*eval.Table { _, ts := E1FrameworkTrace(p); return ts }},
	{"e2", "Fig.2 iterative vs one-shot by depth", E2IterativeVsOneShot},
	{"e3", "Fig.3 adaptivity on the novel incident", E3Adaptivity},
	{"e4", "§3 A/B trial", E4ABTest},
	{"e5", "§3 historical replay", E5Replay},
	{"e6", "§3 system & management costs", E6Costs},
	{"e7", "§2 risk ablation", E7RiskAblation},
	{"e8", "§4.4 embeddings", E8Embeddings},
	{"e9", "sensitivity sweeps", E9Sensitivity},
	{"e10", "fleet-level load (extension)", E10FleetLoad},
	{"e11", "one-shot learning curve (extension)", E11LearningCurve},
	{"e12", "small models + retrieval (extension)", E12SmallModels},
	{"e13", "robustness under degraded telemetry (extension)", E13Resilience},
	{"e14", "offered-load ladder on the fleet scheduler (extension)", E14OfferedLoad},
	{"e15", "gateway load ladder over live HTTP (extension)", E15GatewayLoad},
	{"e16", "crash-safety chaos: kill/restart cycles under faulty clients (extension)", E16Chaos},
	{"e17", "sharded multi-region fleet at hyperscale: offered-load ladder with storms and work stealing (extension)", E17ShardedFleet},
	{"e18", "adaptive learning loop: verified vs always-ingest corpus promotion (extension)", E18AdaptiveLoop},
}

// ByID returns the registered experiment, or nil.
func ByID(id string) func(Params) []*eval.Table {
	for _, e := range Registry {
		if e.ID == id {
			return e.Run
		}
	}
	return nil
}

var _ = time.Minute

// ---------------------------------------------------------------------------
// E10 — fleet-level operations (extension): queueing under load.
// ---------------------------------------------------------------------------

// E10FleetLoad sweeps the incident arrival rate over a fixed responder
// pool, comparing the helper-assisted fleet with the unassisted one.
// Per-incident TTM gains compound: once the pool runs hot, queueing
// delay amplifies the difference, and the assisted pool saturates at a
// much higher arrival rate.
func E10FleetLoad(p Params) []*eval.Table {
	p = p.withDefaults()
	kbase := currentKB()

	// The (arrival rate x arm) cells are independent fleet simulations,
	// so the grid itself runs on the trial pool: each cell constructs its
	// own runner and seeds its own simulation, and rows render in cell
	// order — identical output at any worker count.
	type fleetCell struct {
		lambda   float64
		assisted bool
	}
	var cells []fleetCell
	for _, lambda := range []float64{0.5, 2, 4, 8} {
		cells = append(cells, fleetCell{lambda, true}, fleetCell{lambda, false})
	}
	type fleetRow struct {
		name string
		rep  *ops.Report
	}
	// Each cell is a whole sub-simulation, so observability uses a
	// private sink per cell, merged in cell order afterwards — the same
	// absorb-in-deterministic-order contract the trial pool uses.
	var cellSinks []*obs.Sink
	if p.Obs != nil {
		cellSinks = make([]*obs.Sink, len(cells))
	}
	rows := parallel.RunTrials(len(cells), p.Workers, p.Seed, func(_ int64, i int) fleetRow {
		c := cells[i]
		var arm harness.Runner
		if c.assisted {
			arm = &harness.HelperRunner{Label: "assisted", KBase: kbase, Config: core.DefaultConfig()}
		} else {
			arm = &harness.ControlRunner{Label: "control", KBase: kbase}
		}
		var sink *obs.Sink
		if cellSinks != nil {
			sink = obs.NewSink()
			cellSinks[i] = sink
		}
		return fleetRow{arm.Name(), ops.Simulate(ops.Config{
			OCEs: 2, ArrivalsPerHour: c.lambda, Incidents: p.Trials * 4,
			Seed: p.Seed + 101, Runner: arm, Obs: sink,
		})}
	})
	for _, sink := range cellSinks {
		p.Obs.AbsorbSink(sink)
	}

	t := eval.NewTable("E10 (extension): fleet of 2 OCEs under incident load",
		"arrivals/h", "arm", "meanQueue(m)", "meanTotal(m)", "p95Total(m)", "utilization")
	for i, tr := range rows {
		if tr.Err != nil {
			t.AddRow(cells[i].lambda, "(cell crashed)", "-", "-", "-", "-")
			continue
		}
		rep := tr.Value.rep
		t.AddRow(cells[i].lambda, tr.Value.name, rep.MeanQueue.Minutes(), rep.MeanTotal.Minutes(),
			rep.P95Total.Minutes(), fmt.Sprintf("%.2f", rep.Utilization))
	}
	return []*eval.Table{t}
}

// ---------------------------------------------------------------------------
// E11 — learning curve (extension): how history size feeds the one-shot.
// ---------------------------------------------------------------------------

// E11LearningCurve grows the incident history and measures the one-shot
// baseline against it: accuracy on routine incidents climbs with corpus
// size (prior work's operating regime), while accuracy on the novel
// incident stays at zero no matter how much history accumulates — "no
// amount of historical incidents could supply a helper with the
// knowledge to mitigate such an incident."
func E11LearningCurve(p Params) []*eval.Table {
	p = p.withDefaults()
	kbase := currentKB()
	t := eval.NewTable("E11 (extension): one-shot learning curve vs history size",
		"history", "routine-correct", "novel-correct", "routine-TTM(m)")
	for _, n := range []int{0, 10, 50, 150} {
		hist := kb.NewHistory()
		if n > 0 {
			hist = routineHistory(p.Seed^0xb00b5, n).History
		}
		agg := &cell{}
		for _, sc := range scenarios.Routine() {
			r := &harness.OneShotRunner{History: hist, KBase: kbase}
			agg.merge(runCell(sc, r, p.sub(111)))
		}
		novel := runCell(&scenarios.NovelProtocol{},
			&harness.OneShotRunner{History: hist, KBase: kbase}, p.sub(112))
		t.AddRow(n, eval.Pct(agg.rate(agg.correct)), eval.Pct(novel.rate(novel.correct)), agg.meanTTM())
	}
	return []*eval.Table{t}
}

// ---------------------------------------------------------------------------
// E12 — small models + retrieval (extension of the paper's footnote).
// ---------------------------------------------------------------------------

// kbAsInContext renders the whole knowledge base's rule set as in-context
// rules — the retrieval-augmentation condition: a prompt-side knowledge
// store compensating for a small model's weak parametric recall.
func kbAsInContext(k *kb.KB) []llm.InContextRule {
	var out []llm.InContextRule
	for _, r := range k.Rules() {
		out = append(out, llm.InContextRule{Cause: r.Cause, Effect: r.Effect, Strength: r.Strength})
	}
	return out
}

// E12SmallModels sweeps the model's trained-rule recall — a proxy for
// model capacity ("ongoing trends suggest ... specialized smaller
// models", §4.2 footnote) — with and without the knowledge base supplied
// in-context. Expected shape: low-recall models degrade alone but are
// largely restored by prompt-side knowledge, at a token premium; the
// combination is the RAG deployment the paper's §4.4 embedding section
// presumes.
func E12SmallModels(p Params) []*eval.Table {
	p = p.withDefaults()
	kbase := currentKB()
	workload := []scenarios.Scenario{&scenarios.GrayLink{}, &scenarios.Cascade{Stage: 5}}

	t := eval.NewTable("E12 (extension): model recall x prompt-side knowledge (gray-link + cascade-5)",
		"recall", "in-context KB", "correct", "TTM(m)", "tokens/incident")
	for _, recall := range []float64{1.0, 0.7, 0.5, 0.3} {
		for _, rag := range []bool{false, true} {
			cfg := core.DefaultConfig()
			if rag {
				cfg.InContextRules = kbAsInContext(kbase)
			}
			agg := &cell{}
			for _, sc := range workload {
				r := &harness.HelperRunner{KBase: kbase, Config: cfg, Recall: recall}
				agg.merge(runCell(sc, r, p.sub(121)))
			}
			ragLabel := "no"
			if rag {
				ragLabel = "yes"
			}
			t.AddRow(recall, ragLabel, eval.Pct(agg.rate(agg.correct)), agg.meanTTM(), agg.meanTokens())
		}
	}
	return []*eval.Table{t}
}
