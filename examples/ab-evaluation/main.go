// A/B evaluation: §3's methodology end to end — a randomized trial of
// helper-assisted vs unassisted incident response, followed by a
// historical replay with conditional TTM estimates.
//
// Run with:
//
//	go run ./examples/ab-evaluation
package main

import (
	"fmt"

	"repro"
	"repro/internal/eval"
)

func main() {
	sys := aiops.New(aiops.WithSeed(3))
	sys.GenerateHistory(120, 13)

	// --- Randomized A/B trial -------------------------------------------
	res := sys.ABTest(160, 3)
	arms := eval.NewTable("A/B trial (160 incidents, randomized assignment)",
		"arm", "n", "meanTTM(m)", "medianTTM(m)", "mitigated", "correct", "wrong", "secondary")
	for _, a := range []*eval.ArmStats{&res.Treatment, &res.Control} {
		arms.AddRow(a.Name, a.N, a.MeanTTM(), a.MedianTTM(),
			eval.Pct(a.MitigationRate()), eval.Pct(a.CorrectRate()), a.Wrong, a.Secondary)
	}
	fmt.Println(arms)
	fmt.Printf("Welch t=%.2f p=%.4g | Mann-Whitney z=%.2f p=%.4g | permutation p=%.4g\n",
		res.Welch.T, res.Welch.P, res.MannWhitney.T, res.MannWhitney.P, res.PermP)
	fmt.Printf("bootstrap 95%% CI of the mean TTM difference: [%.1f, %.1f] minutes\n",
		res.DiffLo, res.DiffHi)
	if res.SignificantAt(0.05) {
		fmt.Println("=> the helper's TTM improvement is statistically significant")
	}

	// --- Historical replay ------------------------------------------------
	rep := sys.Replay(120, 17)
	fmt.Println()
	t := eval.NewTable("historical replay (120 incidents)", "metric", "value")
	t.AddRow("match fraction", eval.Pct(rep.MatchFraction()))
	t.AddRow("mean TTM savings, matched (min)", rep.MeanSavings.Minutes())
	t.AddRow("mismatches", rep.Mismatched)
	t.AddRow("mismatches with conditional estimate", rep.CondCovered)
	t.AddRow("mean TTM savings incl. conditional (min)", rep.MeanCondSavings.Minutes())
	fmt.Println(t)
}
