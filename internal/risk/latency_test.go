package risk

import (
	"math/rand"
	"testing"

	"repro/internal/mitigation"
	"repro/internal/scenarios"
)

// TestWhatIfPredictsResidualLatency: on the maintenance-overlap incident
// the latency stays broken unless the maintenance is rolled back; the
// what-if engine must expose that so the helper skips cosmetic plans.
func TestWhatIfPredictsResidualLatency(t *testing.T) {
	t.Parallel()
	in := (&scenarios.MaintenanceOverlap{}).Build(rand.New(rand.NewSource(1)))
	a := &Assessor{}

	// Cosmetic plan: isolating one of the already-down links changes
	// nothing; the predicted latency ratio stays far above baseline.
	var downLink string
	for _, l := range in.World.Net.Links() {
		if l.Down {
			downLink = string(l.ID)
			break
		}
	}
	if downLink == "" {
		t.Fatal("no down link in maintenance scenario")
	}
	cosmetic := a.AssessPlan(in.World, mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.IsolateLink, Target: downLink},
	}})
	if cosmetic.WorstLatencyRatio <= 1.5 {
		t.Fatalf("cosmetic plan predicted latency ratio %v, want > 1.5", cosmetic.WorstLatencyRatio)
	}

	// The real fix: rolling back the maintenance restores latency.
	fix := a.AssessPlan(in.World, mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.RollbackChange, Target: in.Incident.Truth.RootFixChange},
	}})
	if fix.WorstLatencyRatio > 1.1 {
		t.Fatalf("rollback predicted latency ratio %v, want ~1.0", fix.WorstLatencyRatio)
	}
}

// TestWhatIfLatencyRatioOnHealthyWorld: with no incident the predicted
// ratio for a harmless plan is ~1.
func TestWhatIfLatencyRatioOnHealthyWorld(t *testing.T) {
	t.Parallel()
	w := scenarios.StandardWorld(rand.New(rand.NewSource(2)))
	rep := (&Assessor{}).AssessPlan(w, mitigation.Plan{Actions: []mitigation.Action{
		{Kind: mitigation.Escalate, Target: "SWAT"},
	}})
	if rep.WorstLatencyRatio > 1.05 || rep.WorstLatencyRatio < 0.5 {
		t.Fatalf("healthy-world latency ratio %v", rep.WorstLatencyRatio)
	}
}
