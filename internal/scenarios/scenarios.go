// Package scenarios is the incident scenario library: parameterized
// generators that install fault scripts into a fresh simulated world and
// emit the corresponding incident report with ground truth.
//
// The library covers the incident classes the paper's argument is built
// around — routine single-cause incidents (device failures, gray links,
// congestion, monitoring false alarms), the deep Casc-1 configuration
// cascade from Google's postmortem corpus (Fig. 2), and the AWS Direct
// Connect Tokyo novel-protocol incident (Fig. 3).
package scenarios

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/incident"
	"repro/internal/mitigation"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Scenario generates one incident class.
type Scenario interface {
	// Name identifies the scenario class.
	Name() string
	// RootCauseClass is the ground-truth root cause concept.
	RootCauseClass() string
	// Build constructs a fresh world, installs the fault script, and
	// returns the world plus the incident as reported at detection time.
	Build(rng *rand.Rand) *Instance
}

// Instance is one generated incident: the live world and the report.
type Instance struct {
	World    *netsim.World
	Incident *incident.Incident
	Scenario Scenario
}

// Succeeded reports whether the incident is genuinely mitigated: the
// applied actions satisfy the ground truth AND the world verifies clean.
// Both matter — the right plan badly bound fails verification, and a
// wrong plan that happens to quiet one signal fails the ground truth.
func (in *Instance) Succeeded(applied mitigation.Plan) bool {
	if !in.Incident.Truth.MitigationCorrect(applied) {
		return false
	}
	v := &mitigation.Verifier{World: in.World}
	return v.Mitigated()
}

// StandardWorld builds the repository's canonical deployment: three
// regions of Clos fabric, the B2/B4 dual WAN with a (buggy, as shipped)
// traffic controller, healthy prefix announcements, and a service mix —
// inter-region bulk-transfer, per-region web meshes, storage replication,
// and a latency-sensitive directconnect customer tunnel.
func StandardWorld(rng *rand.Rand) *netsim.World {
	n := netsim.NewNetwork()
	bb := netsim.BuildBackbone(n, netsim.DefaultBackboneConfig())
	ctlNode := n.AddNode(netsim.Node{ID: "traffic-controller", Kind: netsim.KindController, Region: "us-east", Pod: -1})
	ctl := netsim.NewController(ctlNode.ID, []string{"B4", "B2"})
	w := netsim.NewWorld(n, ctl, bb)

	for i, region := range bb.Regions {
		prefix := fmt.Sprintf("10.%d.0.0/16", i)
		for _, wan := range bb.WANNames {
			ctl.Announce(netsim.PrefixAnnouncement{Prefix: prefix, WAN: wan, Cluster: region})
		}
	}

	// Inter-region bulk between one spine per region: rides B4, would
	// overload B2 (200G inter links) on failover.
	var spines []netsim.NodeID
	for _, region := range bb.Regions {
		spines = append(spines, netsim.NodeID(region+"-spine-0"))
	}
	w.AddFlows(netsim.UniformMeshFlows(spines, 300, "bulk-transfer")...)

	// Per-region web mesh across pods 0..2 (cross-pod paths exercise
	// ToRs, aggs and spines).
	for _, region := range bb.Regions {
		var hosts []netsim.NodeID
		for p := 0; p < 3; p++ {
			hosts = append(hosts, netsim.NodeID(fmt.Sprintf("%s-host-p%d-t0-h0", region, p)))
		}
		for _, f := range netsim.UniformMeshFlows(hosts, 8, "web") {
			f.ID = region + ":" + f.ID
			w.AddFlows(f)
		}
	}

	// Storage replication: pod 3 to pod 0 within each region.
	for _, region := range bb.Regions {
		w.AddFlows(&netsim.Flow{
			ID:  region + ":storage-repl",
			Src: netsim.NodeID(region + "-host-p3-t0-h0"), Dst: netsim.NodeID(region + "-host-p0-t1-h0"),
			DemandGbps: 6, Service: "storage",
		})
	}

	// Latency-sensitive customer tunnel across regions.
	w.AddFlows(&netsim.Flow{
		ID:  "directconnect:cust-1",
		Src: "us-east-host-p0-t0-h1", Dst: "eu-north-host-p0-t0-h1",
		DemandGbps: 5, Service: "directconnect",
		Attrs: map[string]string{"customer": "tenant-42"},
	})

	w.SnapshotBaselines()
	telemetry.AttachRecorder(w, 2*time.Minute)
	_ = rng // reserved for future demand jitter
	return w
}

// detect advances the clock to detection, computes traffic, runs the
// alert engine and assembles the incident.
func detect(w *netsim.World, rng *rand.Rand, id, title, summary string, truth *incident.GroundTruth) *incident.Incident {
	// Paging is not instant: detection lag of 2-6 minutes.
	w.Clock.Advance(time.Duration(2+rng.Intn(5)) * time.Minute)
	w.Recompute()
	alerts := telemetry.NewAlertEngine(w).Evaluate()
	sev := int(netsim.SevWarning)
	for _, a := range alerts {
		if int(a.Severity) > sev {
			sev = int(a.Severity)
		}
	}
	return incident.New(id, title, summary, sev, w.Clock.Now(), alerts, truth)
}

// pick returns a random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

var regions = []string{"us-east", "us-west", "eu-north"}

// All returns one instance of every scenario class in the library, in a
// fixed order. Workload mixes sample from this set.
func All() []Scenario {
	return []Scenario{
		&DeviceFailure{},
		&GrayLink{},
		&Congestion{},
		&FalseAlarm{},
		&Cascade{Stage: 3},
		&Cascade{Stage: 4},
		&Cascade{Stage: 5},
		&NovelProtocol{},
		&MaintenanceOverlap{},
		&GrayLinkFlapping{},
	}
}

// ByName returns the scenario with the given name, or nil.
func ByName(name string) Scenario {
	for _, s := range All() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// Routine returns the non-novel, non-cascade classes — the "incidents
// similar to those resolved in the past" that one-shot predictors handle
// well, per the paper.
func Routine() []Scenario {
	return []Scenario{&DeviceFailure{}, &GrayLink{}, &Congestion{}, &FalseAlarm{}}
}
