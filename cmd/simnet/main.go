// Command simnet inspects a simulated deployment: build a scenario's
// world (or the healthy standard world) and interrogate it with the
// telemetry query DSL.
//
// Usage:
//
//	simnet -q "links where util > 0.9 order by util desc limit 5"
//	simnet -scenario cascade-5 -q "services where loss > 0.01"
//	simnet -scenario novel-protocol -q "devices where healthy = false"
//	simnet -scenario maintenance-overlap -summary
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/scenarios"
	"repro/internal/telemetry"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "incident class to install (empty = healthy world)")
		seed     = flag.Int64("seed", 1, "random seed")
		q        = flag.String("q", "", "query in the telemetry DSL")
		summary  = flag.Bool("summary", false, "print a deployment summary")
	)
	flag.Parse()

	var w *netsim.World
	if *scenario == "" {
		w = scenarios.StandardWorld(rand.New(rand.NewSource(*seed)))
	} else {
		sc := scenarios.ByName(*scenario)
		if sc == nil {
			fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
			os.Exit(1)
		}
		in := sc.Build(rand.New(rand.NewSource(*seed)))
		w = in.World
		fmt.Println("incident:", in.Incident.Title)
	}

	if *summary || *q == "" {
		rep := w.Report()
		fmt.Printf("deployment: %d nodes, %d links, %d flows\n", w.Net.NumNodes(), w.Net.NumLinks(), len(w.Flows()))
		fmt.Printf("overall loss: %.2f%%\n", rep.OverallLossRate()*100)
		for _, a := range telemetry.NewAlertEngine(w).Evaluate() {
			fmt.Println("alert:", a)
		}
		if *q == "" {
			return
		}
	}

	parsed, err := query.Parse(*q)
	if err == nil {
		err = query.Verify(parsed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rows, err := query.Execute(parsed, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s -> %d rows\n", parsed, len(rows))
	for _, r := range rows {
		fmt.Println("  ", r)
	}
}
