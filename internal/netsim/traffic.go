package netsim

import (
	"fmt"
	"sort"
)

// Flow is a unidirectional aggregate demand between two endpoints. Flows
// carry a Service label (telemetry and risk assessment aggregate by it)
// and free-form attributes; scenario triggers key off attributes (e.g.
// the novel-protocol incident wedges devices that forward flows carrying
// a particular header pattern).
type Flow struct {
	ID         string
	Src, Dst   NodeID
	DemandGbps float64
	Service    string
	Attrs      map[string]string
}

// Attr returns the flow attribute for key, or "".
func (f *Flow) Attr(key string) string {
	if f.Attrs == nil {
		return ""
	}
	return f.Attrs[key]
}

// DirLink identifies one direction of an undirected link: Forward means
// traffic flowing from endpoint A toward B.
type DirLink struct {
	Link    LinkID
	Forward bool
}

// RouteDAG is the exact per-hop ECMP routing of one flow: every node on a
// minimum-hop path from Src to Dst, annotated with the fraction of the
// flow transiting it, assuming each hop splits equally across all
// next-hops that lie on a shortest path (how hardware ECMP behaves in
// aggregate).
type RouteDAG struct {
	Src, Dst NodeID
	Hops     int
	NodeFrac map[NodeID]float64
	LinkFrac map[DirLink]float64

	// nextHops caches, per node, the shortest-path successors; the
	// delivery and latency dynamic programs reuse it.
	nextHops map[NodeID][]neighbor
}

// TransitNodes returns nodes (excluding src and dst) that carry a positive
// fraction of the flow, sorted by ID. Triggers use this to decide which
// devices "saw" a flow.
func (d *RouteDAG) TransitNodes() []NodeID {
	var out []NodeID
	for id, f := range d.NodeFrac {
		if f > 0 && id != d.Src && id != d.Dst {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RouteDAGFor computes the ECMP routing DAG for src->dst over usable
// nodes/links, restricted to transit nodes accepted by allow. It returns
// nil when dst is unreachable.
func RouteDAGFor(n *Network, src, dst NodeID, allow NodeFilter) *RouteDAG {
	srcNode, dstNode := n.Node(src), n.Node(dst)
	if srcNode == nil || dstNode == nil || !srcNode.Usable() || !dstNode.Usable() {
		return nil
	}
	if src == dst {
		return &RouteDAG{Src: src, Dst: dst, NodeFrac: map[NodeID]float64{src: 1}, LinkFrac: map[DirLink]float64{}}
	}
	inner := func(nd *Node) bool {
		if nd.ID == src || nd.ID == dst {
			return true
		}
		return allow == nil || allow(nd)
	}

	// BFS from dst: distTo[v] = hop distance v -> dst.
	distTo := map[NodeID]int{dst: 0}
	frontier := []NodeID{dst}
	for len(frontier) > 0 {
		var next []NodeID
		for _, id := range frontier {
			for _, nb := range n.usableNeighbors(id, inner) {
				if _, seen := distTo[nb.node]; seen {
					continue
				}
				distTo[nb.node] = distTo[id] + 1
				next = append(next, nb.node)
			}
		}
		frontier = next
	}
	total, ok := distTo[src]
	if !ok {
		return nil
	}

	d := &RouteDAG{
		Src: src, Dst: dst, Hops: total,
		NodeFrac: map[NodeID]float64{src: 1},
		LinkFrac: map[DirLink]float64{},
		nextHops: map[NodeID][]neighbor{},
	}
	// Process nodes level by level from src toward dst, splitting each
	// node's fraction equally across shortest-path successors.
	level := []NodeID{src}
	for hop := total; hop > 0; hop-- {
		nextSet := map[NodeID]bool{}
		for _, u := range level {
			fu := d.NodeFrac[u]
			var succ []neighbor
			for _, nb := range n.usableNeighbors(u, inner) {
				if dv, ok := distTo[nb.node]; ok && dv == hop-1 {
					succ = append(succ, nb)
				}
			}
			d.nextHops[u] = succ
			if fu == 0 || len(succ) == 0 {
				continue
			}
			share := fu / float64(len(succ))
			for _, nb := range succ {
				d.NodeFrac[nb.node] += share
				d.LinkFrac[DirLink{Link: nb.link, Forward: nb.l.A == u}] += share
				nextSet[nb.node] = true
			}
		}
		level = level[:0]
		for id := range nextSet {
			level = append(level, id)
		}
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
	}
	return d
}

// deliveredFraction runs the delivery dynamic program: the probability a
// unit of traffic injected at src reaches dst given per-directed-link
// loss rates. It reads only immutable link fields through the cached
// neighbor pointers, so a DAG shared across clone lineages evaluates
// identically from any member.
func (d *RouteDAG) deliveredFraction(loss func(DirLink) float64) float64 {
	memo := map[NodeID]float64{d.Dst: 1}
	var dp func(u NodeID) float64
	dp = func(u NodeID) float64 {
		if v, ok := memo[u]; ok {
			return v
		}
		succ := d.nextHops[u]
		if len(succ) == 0 {
			memo[u] = 0
			return 0
		}
		var sum float64
		for _, nb := range succ {
			dl := DirLink{Link: nb.link, Forward: nb.l.A == u}
			sum += (1 - loss(dl)) * dp(nb.node)
		}
		v := sum / float64(len(succ))
		memo[u] = v
		return v
	}
	return dp(d.Src)
}

// expectedDelayMs runs the latency dynamic program: mean path propagation
// delay under equal per-hop splitting.
func (d *RouteDAG) expectedDelayMs() float64 {
	memo := map[NodeID]float64{d.Dst: 0}
	var dp func(u NodeID) float64
	dp = func(u NodeID) float64 {
		if v, ok := memo[u]; ok {
			return v
		}
		succ := d.nextHops[u]
		if len(succ) == 0 {
			memo[u] = 0
			return 0
		}
		var sum float64
		for _, nb := range succ {
			sum += nb.l.PropDelayMs + dp(nb.node)
		}
		v := sum / float64(len(succ))
		memo[u] = v
		return v
	}
	return dp(d.Src)
}

// DirLoad tracks directed load on an undirected link: AB is traffic
// flowing from endpoint A toward B, BA the reverse.
type DirLoad struct {
	AB, BA float64
}

// Max returns the larger directional load.
func (d DirLoad) Max() float64 {
	if d.AB >= d.BA {
		return d.AB
	}
	return d.BA
}

// LinkStats is the per-link outcome of routing a traffic matrix.
type LinkStats struct {
	Link        LinkID
	Load        DirLoad
	Utilization float64 // max directional load / capacity
	LossRate    float64 // loss fraction on the hotter direction
	LossAB      float64 // loss fraction A->B (overload + corruption)
	LossBA      float64 // loss fraction B->A
}

// FlowStats is the per-flow outcome.
type FlowStats struct {
	Flow      *Flow
	Routed    bool
	DAG       *RouteDAG
	LossRate  float64 // 0..1 fraction of demand not delivered
	LatencyMs float64 // expected path delay under ECMP splitting
}

// Delivered reports the goodput of the flow in Gbps.
func (s *FlowStats) Delivered() float64 {
	if !s.Routed {
		return 0
	}
	return s.Flow.DemandGbps * (1 - s.LossRate)
}

// ServiceStats aggregates flow outcomes per service label.
type ServiceStats struct {
	Service    string
	Demand     float64
	Delivered  float64
	LossRate   float64 // demand-weighted
	MaxLatency float64
	Flows      int
	Unrouted   int
}

// TrafficReport is the result of routing a traffic matrix over the
// network: the ground truth telemetry monitors sample from.
type TrafficReport struct {
	LinkStats      map[LinkID]*LinkStats
	FlowStats      []*FlowStats
	ServiceStats   map[string]*ServiceStats
	TotalDemand    float64
	TotalDelivered float64
}

// OverallLossRate reports the demand-weighted loss fraction across all flows.
func (r *TrafficReport) OverallLossRate() float64 {
	if r.TotalDemand == 0 {
		return 0
	}
	return 1 - r.TotalDelivered/r.TotalDemand
}

// HotLinks returns links with utilization of at least threshold, sorted by
// descending utilization (ties by ID).
func (r *TrafficReport) HotLinks(threshold float64) []*LinkStats {
	var out []*LinkStats
	for _, ls := range r.LinkStats {
		if ls.Utilization >= threshold {
			out = append(out, ls)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utilization != out[j].Utilization {
			return out[i].Utilization > out[j].Utilization
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// PathSelector decides the transit constraint for a flow; the WAN traffic
// controller implements it to steer inter-region flows onto a chosen WAN.
// A nil selector places no constraint.
type PathSelector interface {
	// FilterFor returns the transit-node filter to route flow f under,
	// or nil for no constraint.
	FilterFor(f *Flow) NodeFilter
}

// RouteTraffic routes every flow over its ECMP DAG subject to the
// selector's per-flow constraints, accumulates directed link load, and
// derives loss from capacity overload plus link corruption.
//
// The loss model is the standard fluid approximation: a directed link
// with offered load L on capacity C drops fraction max(0, (L-C)/L); a
// flow's delivered fraction is computed exactly over its ECMP DAG.
func RouteTraffic(n *Network, flows []*Flow, sel PathSelector) *TrafficReport {
	rep := &TrafficReport{
		LinkStats:    make(map[LinkID]*LinkStats, n.NumLinks()),
		ServiceStats: make(map[string]*ServiceStats),
	}
	for _, l := range n.linksSorted() {
		rep.LinkStats[l.ID] = &LinkStats{Link: l.ID}
	}

	// Pass 1: route each flow, accumulate directed loads. Routing goes
	// through the lineage route cache; the down-set capture is shared by
	// every miss in this pass since the network cannot change mid-pass.
	var dc *downSet
	for _, f := range flows {
		fs := &FlowStats{Flow: f}
		fs.DAG = n.cachedRouteDAG(f, sel, &dc)
		fs.Routed = fs.DAG != nil
		rep.FlowStats = append(rep.FlowStats, fs)
		if !fs.Routed {
			continue
		}
		for dl, frac := range fs.DAG.LinkFrac {
			ls := rep.LinkStats[dl.Link]
			if dl.Forward {
				ls.Load.AB += f.DemandGbps * frac
			} else {
				ls.Load.BA += f.DemandGbps * frac
			}
		}
	}

	// Pass 2: per-link utilization and directed loss.
	dirLoss := make(map[DirLink]float64, 2*len(rep.LinkStats))
	for lid, ls := range rep.LinkStats {
		l := n.Link(lid)
		if l.CapacityGbps > 0 {
			ls.Utilization = ls.Load.Max() / l.CapacityGbps
		}
		ab := clamp01(overloadLoss(ls.Load.AB, l.CapacityGbps) + l.CorruptRate)
		ba := clamp01(overloadLoss(ls.Load.BA, l.CapacityGbps) + l.CorruptRate)
		dirLoss[DirLink{Link: lid, Forward: true}] = ab
		dirLoss[DirLink{Link: lid, Forward: false}] = ba
		ls.LossAB, ls.LossBA = ab, ba
		ls.LossRate = ab
		if ba > ab {
			ls.LossRate = ba
		}
	}
	lossFn := func(dl DirLink) float64 { return dirLoss[dl] }

	// Pass 3: per-flow delivery and aggregates.
	for _, fs := range rep.FlowStats {
		rep.TotalDemand += fs.Flow.DemandGbps
		svc := rep.ServiceStats[fs.Flow.Service]
		if svc == nil {
			svc = &ServiceStats{Service: fs.Flow.Service}
			rep.ServiceStats[fs.Flow.Service] = svc
		}
		svc.Flows++
		svc.Demand += fs.Flow.DemandGbps
		if !fs.Routed {
			fs.LossRate = 1
			svc.Unrouted++
			continue
		}
		fs.LossRate = clamp01(1 - fs.DAG.deliveredFraction(lossFn))
		fs.LatencyMs = fs.DAG.expectedDelayMs()
		rep.TotalDelivered += fs.Delivered()
		svc.Delivered += fs.Delivered()
		if fs.LatencyMs > svc.MaxLatency {
			svc.MaxLatency = fs.LatencyMs
		}
	}
	for _, svc := range rep.ServiceStats {
		if svc.Demand > 0 {
			svc.LossRate = 1 - svc.Delivered/svc.Demand
		}
	}
	return rep
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func overloadLoss(load, capacity float64) float64 {
	if capacity <= 0 || load <= capacity {
		return 0
	}
	return (load - capacity) / load
}

// UniformMeshFlows builds a flow per ordered pair of the given endpoints,
// each with the same demand and service label. Useful for synthetic
// background traffic in tests and workloads.
func UniformMeshFlows(endpoints []NodeID, demandGbps float64, service string) []*Flow {
	var flows []*Flow
	for i, a := range endpoints {
		for j, b := range endpoints {
			if i == j {
				continue
			}
			flows = append(flows, &Flow{
				ID:         fmt.Sprintf("%s:%s->%s", service, a, b),
				Src:        a,
				Dst:        b,
				DemandGbps: demandGbps,
				Service:    service,
			})
		}
	}
	return flows
}

// ProbeLossOverDAG evaluates the loss a zero-demand probe would observe
// traversing dag, given the per-link loss rates already computed in rep.
// Telemetry probes (PingMesh) use it so probing does not perturb load.
func ProbeLossOverDAG(dag *RouteDAG, n *Network, rep *TrafficReport) float64 {
	_ = n // retained for API stability; the DAG carries its link data
	loss := func(dl DirLink) float64 {
		ls := rep.LinkStats[dl.Link]
		if ls == nil {
			return 0
		}
		if dl.Forward {
			return ls.LossAB
		}
		return ls.LossBA
	}
	return clamp01(1 - dag.deliveredFraction(loss))
}
