package llm

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kb"
	"repro/internal/mitigation"
)

func newModel(t *testing.T) *SimLLM {
	t.Helper()
	return NewSimLLM(kb.Default(), 1)
}

func TestCountTokensRatio(t *testing.T) {
	t.Parallel()
	// 24K words ~= 32K tokens per the paper's ratio.
	words := strings.Repeat("w ", 24000)
	got := CountTokens(words)
	if got < 31000 || got > 33000 {
		t.Fatalf("CountTokens(24k words) = %d, want ~32k", got)
	}
	if CountTokens("") != 0 {
		t.Error("empty string should be 0 tokens")
	}
}

func TestTruncateTokens(t *testing.T) {
	t.Parallel()
	text := "HEADER: keep\nLINE: one two three four five six\nTAIL: late context"
	cut, truncated := TruncateTokens(text, 8)
	if !truncated {
		t.Fatal("expected truncation")
	}
	if !strings.HasPrefix(cut, "HEADER: keep") {
		t.Errorf("head lost: %q", cut)
	}
	if strings.Contains(cut, "TAIL") {
		t.Errorf("tail survived truncation: %q", cut)
	}
	same, tr := TruncateTokens("short", 100)
	if tr || same != "short" {
		t.Error("no-op truncation misbehaved")
	}
}

func TestFormHypothesesBackwardChains(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	resp, err := m.Complete(BuildFormHypotheses(PromptContext{Symptoms: []string{kb.CPacketLoss}}, 4))
	if err != nil {
		t.Fatal(err)
	}
	hyps := ParseHypotheses(resp.Content)
	if len(hyps) == 0 || len(hyps) > 4 {
		t.Fatalf("got %d hypotheses", len(hyps))
	}
	// Strongest cause of packet_loss is link_overload.
	if hyps[0].Concept != kb.CLinkOverload {
		t.Errorf("top hypothesis = %s, want %s", hyps[0].Concept, kb.CLinkOverload)
	}
	for _, h := range hyps {
		if h.Confidence <= 0 || h.Confidence > 1 {
			t.Errorf("confidence %v out of range", h.Confidence)
		}
		if h.Reason == "" {
			t.Errorf("hypothesis %s lacks explanation", h.Concept)
		}
	}
}

func TestFormHypothesesChainsFromConfirmed(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	ctx := PromptContext{
		Symptoms:  []string{kb.CPacketLoss},
		Confirmed: []string{kb.CLinkOverload, kb.CWANFailover},
	}
	resp, err := m.Complete(BuildFormHypotheses(ctx, 3))
	if err != nil {
		t.Fatal(err)
	}
	hyps := ParseHypotheses(resp.Content)
	found := false
	for _, h := range hyps {
		if h.Concept == kb.CPrefixConflict {
			found = true
		}
		if h.Concept == kb.CLinkOverload || h.Concept == kb.CWANFailover {
			t.Errorf("re-proposed already-confirmed %s", h.Concept)
		}
	}
	if !found {
		t.Errorf("expected prefix_conflict to explain wan_failover; got %+v", hyps)
	}
}

func TestFormHypothesesInContextRule(t *testing.T) {
	t.Parallel()
	// The stale model cannot explain device_os_crash via the protocol;
	// with the in-context rule it can (the paper's in-context adaptation
	// path).
	m := newModel(t)
	ctx := PromptContext{
		Symptoms:  []string{kb.CPacketLoss},
		Confirmed: []string{kb.CDeviceDown, kb.CDeviceOSCrash},
	}
	resp, _ := m.Complete(BuildFormHypotheses(ctx, 5))
	for _, h := range ParseHypotheses(resp.Content) {
		if h.Concept == kb.CProtocolBug {
			t.Fatal("stale model should not know protocol_bug")
		}
	}
	ctx.Rules = []InContextRule{{Cause: kb.CProtocolBug, Effect: kb.CDeviceOSCrash, Strength: 0.8}}
	resp, _ = m.Complete(BuildFormHypotheses(ctx, 5))
	found := false
	for _, h := range ParseHypotheses(resp.Content) {
		if h.Concept == kb.CProtocolBug {
			found = true
		}
	}
	if !found {
		t.Fatal("in-context rule not used")
	}
}

func TestFineTunePicksUpNewKnowledge(t *testing.T) {
	t.Parallel()
	base := kb.Default()
	m := NewSimLLM(base.Snapshot(1), 1)
	updated := kb.Default()
	kb.ApplyFastpathUpdate(updated)
	cost := m.FineTune(updated)
	if cost <= 0 {
		t.Fatal("fine-tune reported no cost")
	}
	ctx := PromptContext{Symptoms: []string{kb.CPacketLoss}, Confirmed: []string{kb.CDeviceDown, kb.CDeviceOSCrash}}
	resp, _ := m.Complete(BuildFormHypotheses(ctx, 5))
	found := false
	for _, h := range ParseHypotheses(resp.Content) {
		if h.Concept == kb.CProtocolBug {
			found = true
		}
	}
	if !found {
		t.Fatal("fine-tuned model missing new knowledge")
	}
}

func TestPlanTest(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	resp, err := m.Complete(BuildPlanTest(PromptContext{}, kb.CLinkOverload))
	if err != nil {
		t.Fatal(err)
	}
	tp, ok := ParseTestPlan(resp.Content)
	if !ok {
		t.Fatalf("no test plan in %q", resp.Content)
	}
	if tp.Tool != kb.ToolLinkUtil {
		t.Errorf("tool = %s, want %s", tp.Tool, kb.ToolLinkUtil)
	}
	if tp.Args["top"] != "10" {
		t.Errorf("args = %v", tp.Args)
	}
	// Unknown concept: no test.
	resp, err = m.Complete(BuildPlanTest(PromptContext{}, "cosmic_ray_bitflip"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ParseTestPlan(resp.Content); ok {
		t.Error("fabricated concept should yield no test plan")
	}
}

func TestInterpretTest(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	resp, _ := m.Complete(BuildInterpretTest(PromptContext{}, kb.CLinkOverload, kb.ToolLinkUtil,
		[]string{"link_overload=true link=B2-a--B2-b util=1.62"}))
	v, ok := ParseVerdict(resp.Content)
	if !ok || !v.Supported || v.Confidence < 0.8 {
		t.Fatalf("verdict = %+v", v)
	}
	resp, _ = m.Complete(BuildInterpretTest(PromptContext{}, kb.CLinkOverload, kb.ToolLinkUtil,
		[]string{"link_overload=false maxutil=0.41"}))
	v, _ = ParseVerdict(resp.Content)
	if v.Supported {
		t.Fatal("explicit false finding interpreted as support")
	}
	resp, _ = m.Complete(BuildInterpretTest(PromptContext{}, kb.CLinkOverload, kb.ToolLinkUtil, nil))
	v, _ = ParseVerdict(resp.Content)
	if v.Supported {
		t.Fatal("absent findings interpreted as support")
	}
}

func TestPlanMitigationBindsTargets(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	ctx := PromptContext{Bindings: map[string]string{kb.PhLink: "r1-tor--r1-agg"}}
	resp, _ := m.Complete(BuildPlanMitigation(ctx, kb.CLinkCorruption))
	acts := ParseActions(resp.Content)
	if len(acts) != 1 {
		t.Fatalf("actions = %+v", acts)
	}
	a := acts[0].Action
	if a.Kind != mitigation.IsolateLink || a.Target != "r1-tor--r1-agg" {
		t.Errorf("action = %v", a)
	}
	// Multi-target binding expands.
	ctx = PromptContext{Bindings: map[string]string{
		kb.PhProtocol: "fastpath", kb.PhDevice: "d1,d2",
	}}
	resp, _ = m.Complete(BuildPlanMitigation(ctx, kb.CProtocolBug))
	acts = ParseActions(resp.Content)
	if len(acts) != 3 { // disable-protocol + 2 restarts
		t.Fatalf("actions = %+v", acts)
	}
}

func TestPlanMitigationUnknownCauseEscalates(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	resp, _ := m.Complete(BuildPlanMitigation(PromptContext{}, "cosmic_ray_bitflip"))
	acts := ParseActions(resp.Content)
	if len(acts) != 1 || acts[0].Action.Kind != mitigation.Escalate {
		t.Fatalf("actions = %+v", acts)
	}
}

func TestAssessRisk(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	low, _ := m.Complete(BuildAssessRisk(PromptContext{}, []mitigation.Action{
		{Kind: mitigation.RepairMonitor, Target: "pingmesh"},
	}))
	high, _ := m.Complete(BuildAssessRisk(PromptContext{}, []mitigation.Action{
		{Kind: mitigation.OverrideWAN, Target: "B4", Param: "healthy"},
		{Kind: mitigation.IsolateDevice, Target: "B4-us-east-r0"},
	}))
	rl, ok1 := ParseRiskOpinion(low.Content)
	rh, ok2 := ParseRiskOpinion(high.Content)
	if !ok1 || !ok2 {
		t.Fatal("missing risk opinions")
	}
	if rl.Score >= rh.Score {
		t.Errorf("risk ordering wrong: repair=%v override+isolate=%v", rl.Score, rh.Score)
	}
	if rh.Level == "low" {
		t.Errorf("drastic plan rated low risk: %+v", rh)
	}
	empty, _ := m.Complete(BuildAssessRisk(PromptContext{}, nil))
	re, _ := ParseRiskOpinion(empty.Content)
	if re.Score != 0 {
		t.Error("empty plan should be zero risk")
	}
}

func TestHallucinationInjection(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	m.HallucinationRate = 1.0
	resp, _ := m.Complete(BuildFormHypotheses(PromptContext{Symptoms: []string{kb.CPacketLoss}}, 3))
	hyps := ParseHypotheses(resp.Content)
	if _, known := kb.Default().ConceptByID(hyps[0].Concept); known {
		t.Errorf("expected fabricated top hypothesis, got %s", hyps[0].Concept)
	}
	// Verdicts flip.
	resp, _ = m.Complete(BuildInterpretTest(PromptContext{}, kb.CLinkOverload, kb.ToolLinkUtil,
		[]string{"link_overload=true util=1.5"}))
	v, _ := ParseVerdict(resp.Content)
	if v.Supported {
		t.Error("hallucination should flip a supported verdict")
	}
	// Mitigation targets corrupt.
	ctx := PromptContext{Bindings: map[string]string{kb.PhLink: "r1-tor-p0-0--r1-agg-p0-0"}}
	resp, _ = m.Complete(BuildPlanMitigation(ctx, kb.CLinkCorruption))
	acts := ParseActions(resp.Content)
	if acts[0].Action.Target == "r1-tor-p0-0--r1-agg-p0-0" {
		t.Error("hallucination should corrupt the target")
	}
}

func TestContextWindowTruncationDegradesInContextLearning(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	m.Window = 60 // tiny window
	ctx := PromptContext{
		Symptoms:  []string{kb.CPacketLoss},
		Confirmed: []string{kb.CDeviceDown, kb.CDeviceOSCrash},
		// Pad evidence so the RULE line would fit only in a big window.
		Evidence: []string{},
		Rules:    []InContextRule{{Cause: kb.CProtocolBug, Effect: kb.CDeviceOSCrash, Strength: 0.8}},
	}
	// Rules render before evidence; stuff the prompt via many symptoms
	// instead: simulate with long evidence placed before rules by
	// building the request manually.
	req := BuildFormHypotheses(ctx, 5)
	long := strings.Repeat("filler context words ", 200)
	req.Messages[1].Content = strings.Replace(req.Messages[1].Content, "RULE:", "EVIDENCE: "+long+"\nRULE:", 1)
	resp, err := m.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("expected truncation")
	}
	for _, h := range ParseHypotheses(resp.Content) {
		if h.Concept == kb.CProtocolBug {
			t.Fatal("truncated in-context rule still visible to model")
		}
	}
}

func TestMeterAccounting(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	before := m.Meter
	resp, err := m.Complete(BuildFormHypotheses(PromptContext{Symptoms: []string{kb.CPacketLoss}}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Meter.Calls != before.Calls+1 {
		t.Error("call not metered")
	}
	if m.Meter.Prompt <= before.Prompt || m.Meter.Completion <= before.Completion {
		t.Error("tokens not metered")
	}
	if m.Meter.ComputeUnit <= 0 {
		t.Error("quadratic compute cost not metered")
	}
	if resp.Latency < m.LatencyBase {
		t.Error("latency below base")
	}
	if m.Meter.DollarCost(m.Pricing) <= 0 {
		t.Error("dollar cost zero")
	}
	var agg Meter
	agg.Add(m.Meter)
	if agg.Calls != m.Meter.Calls || agg.String() == "" {
		t.Error("meter aggregation broken")
	}
}

func TestCompleteErrors(t *testing.T) {
	t.Parallel()
	m := newModel(t)
	if _, err := m.Complete(Request{Messages: []Message{{Role: RoleUser, Content: "hello"}}}); err == nil {
		t.Error("missing TASK should error")
	}
	if _, err := m.Complete(Request{Messages: []Message{{Role: RoleUser, Content: "TASK: dance"}}}); err == nil {
		t.Error("unknown TASK should error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	t.Parallel()
	run := func() string {
		m := NewSimLLM(kb.Default(), 7)
		m.HallucinationRate = 0.3
		var out strings.Builder
		for i := 0; i < 5; i++ {
			r, _ := m.Complete(BuildFormHypotheses(PromptContext{Symptoms: []string{kb.CPacketLoss}}, 3))
			out.WriteString(r.Content)
		}
		return out.String()
	}
	if run() != run() {
		t.Fatal("same seed produced different outputs")
	}
	_ = time.Second
}
