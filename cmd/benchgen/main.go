// Command benchgen regenerates every experiment table in DESIGN.md's
// per-experiment index (E1-E9): the reproduction's equivalent of the
// paper's figures and the §3 evaluation methodology.
//
// Usage:
//
//	benchgen                 # all experiments
//	benchgen -exp e2,e3      # a subset (bare numbers work too: -exp 2,3)
//	benchgen -trials 30      # bigger cells
//	benchgen -exp e13 -faultrate 0.4   # robustness ladder up to 40% fault rate
//	benchgen -exp 14         # fleet-scheduler offered-load ladder
//	benchgen -exp 15         # same ladder driven end-to-end over live HTTP
//	benchgen -exp 16         # crash-safety chaos: kill/restart + faulty clients
//	benchgen -exp 17         # sharded multi-region fleet: storms + work stealing
//	benchgen -exp e4 -trace-out events.jsonl -metrics-out metrics.prom
//	benchgen -bench-json BENCH_$(date +%F).json           # performance snapshot
//	benchgen -bench-json BENCH_nocache.json -nocache      # slow-path snapshot
//	benchgen -bench-diff OLD.json NEW.json   # ratio table; exit 1 on >20% kernel regression
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/eval"
	"repro/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids (e1..e17; a bare number means the same experiment) or 'all'")
		trials    = flag.Int("trials", 20, "incidents per experiment cell")
		html      = flag.String("html", "", "also write a self-contained HTML report to this path")
		benchJSON = flag.String("bench-json", "", "run the benchmark set (E1-E14 + substrate micro-kernels) and write {name, ns/op, allocs/op, headline} records to this JSON path instead of generating tables")
		benchDiff = flag.Bool("bench-diff", false, "compare two -bench-json snapshots (args: OLD.json NEW.json); prints a per-kernel ns/op and allocs/op ratio table and exits nonzero when a headline kernel regresses >20%")
	)
	c := cliflags.Register(flag.CommandLine, 42)
	flag.Parse()
	c.MustValidate()
	c.StartPProf()
	c.ApplyCaches()

	if *benchDiff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchgen -bench-diff OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runBenchDiff(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		if err := runBenchJSON(c, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id != "" && id[0] >= '0' && id[0] <= '9' {
				id = "e" + id // -exp 14 means -exp e14
			}
			want[id] = true
		}
	}
	p := experiments.Params{
		Trials: *trials, Seed: c.Seed, Workers: c.Workers,
		FaultRate: c.FaultRate, FaultSeed: c.FaultSeed, Naive: c.Naive,
		Obs: c.Sink(),
	}
	report := eval.NewHTMLReport("AI-driven Network Incident Management — experiment tables", c.Seed, *trials)
	ran := 0
	for _, e := range experiments.Registry {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		ran++
		fmt.Printf("==== %s: %s ====\n\n", e.ID, e.Desc)
		section := eval.HTMLSection{Heading: e.ID + ": " + e.Desc}
		if e.ID == "e1" {
			trace, tables := experiments.E1FrameworkTrace(p)
			fmt.Println(trace)
			section.Pre = trace
			section.Tables = tables
			for _, t := range tables {
				fmt.Println(t)
			}
		} else {
			section.Tables = e.Run(p)
			for _, t := range section.Tables {
				fmt.Println(t)
			}
		}
		report.Sections = append(report.Sections, section)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *exp)
		os.Exit(1)
	}
	if *html != "" {
		f, err := os.Create(*html)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.WriteHTML(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *html)
	}
	c.MustExport()
}
