// Package risk implements the two complementary risk views the paper's
// mitigation planner requires (§4.3):
//
//   - an external, quantitative analysis: a white-box what-if engine that
//     clones the world, applies the candidate mitigation, recomputes
//     routing, and measures per-service impact — including whether the
//     mitigation itself would cause a new incident, the gap §4.4 calls
//     out in prior analytical work;
//   - an internal, qualitative analysis: the LLM's reasoned opinion
//     (produced via llm.BuildAssessRisk), blended here with the
//     quantitative result.
package risk

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/llm"
	"repro/internal/mitigation"
	"repro/internal/netsim"
)

// ServiceImpact is one service's loss change under a candidate plan.
type ServiceImpact struct {
	Service    string
	LossBefore float64
	LossAfter  float64
}

// Delta returns the loss increase (negative = improvement).
func (s ServiceImpact) Delta() float64 { return s.LossAfter - s.LossBefore }

// Report is the quantitative what-if result for a plan.
type Report struct {
	Plan    mitigation.Plan
	Impacts []ServiceImpact

	// Score in [0,1]: demand-weighted harm probability proxy.
	Score float64

	// WouldCauseIncident is true when the plan pushes a currently-healthy
	// service over the loss threshold or wedges new devices — the
	// mitigation-triggered-incident case prior work ignores.
	WouldCauseIncident bool

	// Improves is true when the plan strictly reduces the worst service
	// loss.
	Improves bool

	// WorstAfter is the worst per-service loss rate predicted after the
	// plan; a value above the alert threshold means the plan is at best
	// a partial mitigation.
	WorstAfter float64

	// WorstLatencyRatio is the worst predicted post-plan service latency
	// relative to its baseline (1.0 = at baseline; 0 when no baselines
	// are recorded).
	WorstLatencyRatio float64

	// ExecError records a plan that could not even be applied in the
	// what-if world (e.g. hallucinated target); such plans are maximum
	// risk.
	ExecError error

	Narrative string
}

// incidentLossThreshold mirrors the alert engine's service-loss rule.
const incidentLossThreshold = 0.01

// Assessor is the white-box quantitative risk engine.
type Assessor struct{}

// AssessPlan evaluates the plan on a cloned world and returns the report.
// The live world is never mutated.
func (a *Assessor) AssessPlan(w *netsim.World, p mitigation.Plan) *Report {
	// Report() reuses the world's cached fixed point when it is still
	// valid; every mutation path invalidates it, so this is identical to
	// Recompute() minus the redundant re-solve per candidate plan.
	before := w.Report()
	clone := w.Clone()
	r := &Report{Plan: p}

	ex := &mitigation.Executor{World: clone, Actor: "what-if"}
	if err := ex.ExecutePlan(p); err != nil {
		r.ExecError = err
		r.Score = 1
		r.Narrative = fmt.Sprintf("plan is not executable: %v", err)
		return r
	}
	after := clone.Recompute()

	services := make([]string, 0, len(before.ServiceStats))
	for s := range before.ServiceStats {
		services = append(services, s)
	}
	sort.Strings(services)

	worstBefore, worstAfter := 0.0, 0.0
	var harmed []string
	var totalDemand, harmedDemand float64
	for _, svc := range services {
		b := before.ServiceStats[svc]
		aft := after.ServiceStats[svc]
		si := ServiceImpact{Service: svc, LossBefore: b.LossRate}
		if aft != nil {
			si.LossAfter = aft.LossRate
		}
		r.Impacts = append(r.Impacts, si)
		totalDemand += b.Demand
		if si.LossBefore > worstBefore {
			worstBefore = si.LossBefore
		}
		if si.LossAfter > worstAfter {
			worstAfter = si.LossAfter
		}
		if si.Delta() > 0.005 {
			harmed = append(harmed, svc)
			harmedDemand += b.Demand
		}
		if si.LossBefore <= incidentLossThreshold && si.LossAfter > incidentLossThreshold {
			r.WouldCauseIncident = true
		}
	}

	// Newly wedged (not operator-isolated) devices are a secondary
	// incident even without immediate loss.
	beforeWedged := wedgedSet(w)
	for _, nd := range clone.Net.Nodes() {
		if !nd.Healthy && !nd.Isolated && !beforeWedged[nd.ID] {
			r.WouldCauseIncident = true
			harmed = append(harmed, "device:"+string(nd.ID))
		}
	}

	r.WorstAfter = worstAfter
	for svc, ss := range after.ServiceStats {
		if base := clone.LatencyBaseline[svc]; base > 0 {
			if ratio := ss.MaxLatency / base; ratio > r.WorstLatencyRatio {
				r.WorstLatencyRatio = ratio
			}
		}
	}
	if totalDemand > 0 {
		r.Score = harmedDemand / totalDemand
	}
	if r.WouldCauseIncident && r.Score < 0.25 {
		r.Score = 0.25
	}
	r.Improves = worstAfter < worstBefore-0.005

	switch {
	case len(harmed) > 0:
		r.Narrative = fmt.Sprintf("what-if: plan harms %s; worst service loss %.1f%% -> %.1f%%",
			strings.Join(harmed, ", "), worstBefore*100, worstAfter*100)
	case r.Improves:
		r.Narrative = fmt.Sprintf("what-if: plan improves worst service loss %.1f%% -> %.1f%%", worstBefore*100, worstAfter*100)
	default:
		r.Narrative = fmt.Sprintf("what-if: plan is neutral (worst loss %.1f%% -> %.1f%%)", worstBefore*100, worstAfter*100)
	}
	return r
}

func wedgedSet(w *netsim.World) map[netsim.NodeID]bool {
	out := map[netsim.NodeID]bool{}
	for _, nd := range w.Net.Nodes() {
		if !nd.Healthy && !nd.Isolated {
			out[nd.ID] = true
		}
	}
	return out
}

// Combined merges the qualitative (LLM) and quantitative (what-if) views,
// the paper's third risk research line. Each view catches failure modes
// the other misses: the LLM knows component semantics the what-if engine
// cannot see, and the what-if engine is immune to hallucinated
// confidence. The what-if engine's hard findings (would cause an
// incident, plan not executable) veto regardless of the blended score.
type Combined struct {
	Qualitative  llm.RiskOpinion
	Quantitative *Report
}

// Blend weights: measured impact dominates narrative concern.
const (
	qualWeight  = 0.4
	quantWeight = 0.6
)

// Score returns the blended risk in [0,1]. With only one view present
// that view's score is returned unweighted.
func (c Combined) Score() float64 {
	if c.Quantitative == nil {
		return c.Qualitative.Score
	}
	if c.Qualitative.Reason == "" && c.Qualitative.Score == 0 {
		return c.Quantitative.Score
	}
	return qualWeight*c.Qualitative.Score + quantWeight*c.Quantitative.Score
}

// Acceptable reports whether the plan passes the given risk budget: the
// blended score is within budget and the what-if engine predicts no new
// incident.
func (c Combined) Acceptable(budget float64) bool {
	if c.Quantitative != nil && (c.Quantitative.WouldCauseIncident || c.Quantitative.ExecError != nil) {
		return false
	}
	return c.Score() <= budget
}

// Narrative renders both views for the OCE.
func (c Combined) Narrative() string {
	parts := []string{}
	if c.Qualitative.Reason != "" {
		parts = append(parts, fmt.Sprintf("LLM: %s (%.2f) %s", c.Qualitative.Level, c.Qualitative.Score, c.Qualitative.Reason))
	}
	if c.Quantitative != nil {
		parts = append(parts, c.Quantitative.Narrative)
	}
	return strings.Join(parts, " | ")
}
