package kb

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/mitigation"
)

// JSON persistence for the incident history: a production deployment
// accumulates incidents across runs, and operators exchange corpora
// between teams. Records round-trip losslessly.

// jsonRecord is the wire form of an IncidentRecord.
type jsonRecord struct {
	ID         string       `json:"id"`
	Title      string       `json:"title"`
	Summary    string       `json:"summary,omitempty"`
	Symptoms   []string     `json:"symptoms,omitempty"`
	RootCause  string       `json:"root_cause,omitempty"`
	Mitigation []jsonAction `json:"mitigation,omitempty"`
	TTMMinutes float64      `json:"ttm_minutes"`
	Severity   int          `json:"severity"`
	Tags       []string     `json:"tags,omitempty"`
}

type jsonAction struct {
	Kind   string `json:"kind"`
	Target string `json:"target,omitempty"`
	Param  string `json:"param,omitempty"`
}

// SaveJSON writes all records as a JSON array.
func (h *History) SaveJSON(w io.Writer) error {
	out := make([]jsonRecord, 0, h.Len())
	for _, r := range h.All() {
		jr := jsonRecord{
			ID: r.ID, Title: r.Title, Summary: r.Summary,
			Symptoms: r.Symptoms, RootCause: r.RootCause,
			TTMMinutes: r.TTMMinutes, Severity: r.Severity, Tags: r.Tags,
		}
		for _, a := range r.Mitigation {
			jr.Mitigation = append(jr.Mitigation, jsonAction{Kind: string(a.Kind), Target: a.Target, Param: a.Param})
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadJSON reads records from a JSON array produced by SaveJSON,
// adding them to the history (same-ID records are replaced).
func (h *History) LoadJSON(r io.Reader) error {
	var in []jsonRecord
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("kb: decoding history: %w", err)
	}
	for _, jr := range in {
		if jr.ID == "" {
			return fmt.Errorf("kb: history record with empty id")
		}
		rec := IncidentRecord{
			ID: jr.ID, Title: jr.Title, Summary: jr.Summary,
			Symptoms: jr.Symptoms, RootCause: jr.RootCause,
			TTMMinutes: jr.TTMMinutes, Severity: jr.Severity, Tags: jr.Tags,
		}
		for _, a := range jr.Mitigation {
			rec.Mitigation = append(rec.Mitigation, mitigation.Action{
				Kind: mitigation.ActionKind(a.Kind), Target: a.Target, Param: a.Param,
			})
		}
		h.Add(rec)
	}
	return nil
}

// ExportDOT writes the causal rule graph in Graphviz DOT format: one
// node per concept (symptom-shaped concepts drawn as doublecircles), one
// edge per rule labeled with its strength and owning team. Operators use
// the rendering to review their team's slice of the knowledge base.
func (k *KB) ExportDOT(w io.Writer) error {
	var b []byte
	buf := func(s string) { b = append(b, s...) }
	buf("digraph kb {\n  rankdir=LR;\n  node [fontsize=10];\n")
	for _, id := range k.Concepts() {
		c := k.concepts[id]
		shape := "box"
		if len(k.byEffect[id]) > 0 && len(k.byCause[id]) == 0 {
			shape = "doublecircle" // pure symptom: only ever an effect
		}
		buf(fmt.Sprintf("  %q [shape=%s, tooltip=%q];\n", id, shape, c.Description))
	}
	for _, r := range k.Rules() {
		buf(fmt.Sprintf("  %q -> %q [label=\"%.2f (%s)\"];\n", r.Cause, r.Effect, r.Strength, r.Team))
	}
	buf("}\n")
	_, err := w.Write(b)
	return err
}
