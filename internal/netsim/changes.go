package netsim

import (
	"slices"
	"time"
)

// ChangeKind classifies entries in the change-management log.
type ChangeKind string

// Change kinds. The adaptive helper's edge comes from correlating recent
// changes with incident symptoms, so the log distinguishes rollouts from
// routine maintenance.
const (
	ChangeConfigPush      ChangeKind = "config-push"
	ChangeProtocolRollout ChangeKind = "protocol-rollout"
	ChangeOSUpgrade       ChangeKind = "os-upgrade"
	ChangeMaintenance     ChangeKind = "maintenance"
	ChangeIsolation       ChangeKind = "isolation"
	ChangeMitigation      ChangeKind = "mitigation"
)

// ChangeRecord is one entry in the change-management log.
type ChangeRecord struct {
	ID          string
	At          time.Duration // simulated time of the change
	Team        string
	Kind        ChangeKind
	Targets     []NodeID
	Description string
	Details     map[string]string
}

// ChangeLog is the provider's change-management database. Operators (and
// the helper, via the recent-changes tool) consult it to correlate
// incidents with deployments — the paper's adaptivity principle rests on
// the observation that "we know the changes, but are unaware what impact
// they may cause until they happen."
type ChangeLog struct {
	records []ChangeRecord
	nextID  int
}

// NewChangeLog returns an empty log.
func NewChangeLog() *ChangeLog { return &ChangeLog{nextID: 1} }

// Add appends a record, assigning an ID if unset, and returns the stored
// record.
func (c *ChangeLog) Add(r ChangeRecord) ChangeRecord {
	if r.ID == "" {
		r.ID = changeID(c.nextID)
		c.nextID++
	}
	c.records = append(c.records, r)
	return r
}

func changeID(n int) string {
	// CHG-000001 style, fixed width for stable sorting in reports.
	const digits = 6
	buf := []byte("CHG-000000")
	for i := len(buf) - 1; n > 0 && i >= len(buf)-digits; i-- {
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf)
}

// Clone returns a copy of the log that preserves the ID counter, so
// records added to a what-if clone never collide with IDs the parent
// assigns later.
func (c *ChangeLog) Clone() *ChangeLog {
	return &ChangeLog{records: append([]ChangeRecord(nil), c.records...), nextID: c.nextID}
}

// All returns every record ordered by time then ID.
func (c *ChangeLog) All() []ChangeRecord {
	out := append([]ChangeRecord(nil), c.records...)
	slices.SortFunc(out, func(a, b ChangeRecord) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	return out
}

// Since returns records at or after t, ordered by time then ID.
func (c *ChangeLog) Since(t time.Duration) []ChangeRecord {
	var out []ChangeRecord
	for _, r := range c.All() {
		if r.At >= t {
			out = append(out, r)
		}
	}
	return out
}

// ByKind returns records of the given kind, ordered by time then ID.
func (c *ChangeLog) ByKind(kind ChangeKind) []ChangeRecord {
	var out []ChangeRecord
	for _, r := range c.All() {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// Len reports the number of records.
func (c *ChangeLog) Len() int { return len(c.records) }
