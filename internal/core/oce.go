package core

import (
	"math/rand"
	"time"

	"repro/internal/kb"
)

// OCE models the on-call engineer in the loop: the helper suggests, the
// OCE approves, corrects, and pulls the trigger. Expertise controls how
// reliably the OCE catches the helper's mistakes; approval latency is the
// human cost of keeping the OCE in the driver's seat.
type OCE struct {
	// Expertise in [0,1]: probability the OCE catches a fabricated
	// hypothesis or a misread tool output. Veterans (~0.9) rarely let a
	// hallucination through; novices (~0.3) often do.
	Expertise float64

	// ApprovalLatency is the simulated time per approval decision
	// (default 2 minutes). Pre-approved suggestions skip it.
	ApprovalLatency time.Duration

	// Known is the concept vocabulary the OCE can sanity-check
	// hypotheses against (their training, §2). Typically the current
	// KB's concept list.
	Known map[string]bool

	Rng *rand.Rand
}

// NewOCE builds an OCE with the given expertise over the KB's vocabulary.
func NewOCE(expertise float64, kbase *kb.KB, rng *rand.Rand) *OCE {
	known := make(map[string]bool)
	for _, c := range kbase.Concepts() {
		known[c] = true
	}
	return &OCE{
		Expertise:       expertise,
		ApprovalLatency: 2 * time.Minute,
		Known:           known,
		Rng:             rng,
	}
}

// approvalDelay returns the time one decision costs.
func (o *OCE) approvalDelay(preApproved bool) time.Duration {
	if preApproved {
		return 0
	}
	return o.ApprovalLatency
}

// VetoesHypothesis reports whether the OCE rejects the concept as
// nonsense. Only unknown (fabricated) concepts can be vetoed, and only
// when the OCE's expertise catches them.
func (o *OCE) VetoesHypothesis(concept string) bool {
	if o.Known[concept] {
		return false
	}
	return o.Rng.Float64() < o.Expertise
}

// CatchesMisreading reports whether the OCE notices that the model's
// verdict contradicts the tool output in front of them.
func (o *OCE) CatchesMisreading() bool {
	return o.Rng.Float64() < o.Expertise
}
