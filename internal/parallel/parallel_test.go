package parallel

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestResultsIndependentOfWorkers is the package's core contract: the
// result slice (trials, seeds, values) is bit-identical for any worker
// count.
func TestResultsIndependentOfWorkers(t *testing.T) {
	t.Parallel()
	const n, base = 64, int64(42)
	fn := func(seed int64, trial int) int64 {
		// A deterministic but seed-sensitive computation.
		return rand.New(rand.NewSource(seed)).Int63() ^ int64(trial)
	}
	ref := RunTrials(n, 1, base, fn)
	for _, workers := range []int{2, 3, 8, 64, 200} {
		got := RunTrials(n, workers, base, fn)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i].Trial != ref[i].Trial || got[i].Seed != ref[i].Seed || got[i].Value != ref[i].Value {
				t.Fatalf("workers=%d trial %d: got (%d,%d,%d), want (%d,%d,%d)", workers, i,
					got[i].Trial, got[i].Seed, got[i].Value, ref[i].Trial, ref[i].Seed, ref[i].Value)
			}
		}
	}
}

// TestSeedsMatchDeriveSeed pins the seed each trial receives.
func TestSeedsMatchDeriveSeed(t *testing.T) {
	t.Parallel()
	rs := RunTrials(20, 4, 7, func(seed int64, trial int) int64 { return seed })
	for i, r := range rs {
		want := DeriveSeed(7, i)
		if r.Seed != want || r.Value != want {
			t.Fatalf("trial %d: seed %d (value %d), want %d", i, r.Seed, r.Value, want)
		}
	}
}

// TestDeriveSeedNoCollisions checks injectivity over a dense index range
// for several bases (the fuzz test probes sparse adversarial pairs).
func TestDeriveSeedNoCollisions(t *testing.T) {
	t.Parallel()
	for _, base := range []int64{0, 1, -1, 42, 1 << 62} {
		seen := make(map[int64]int, 10000)
		for i := 0; i < 10000; i++ {
			s := DeriveSeed(base, i)
			if j, ok := seen[s]; ok {
				t.Fatalf("base %d: trials %d and %d share seed %d", base, j, i, s)
			}
			seen[s] = i
		}
	}
}

// TestPanicCapture converts a crashed trial into a recorded error while
// its siblings complete normally.
func TestPanicCapture(t *testing.T) {
	t.Parallel()
	rs := RunTrials(10, 4, 1, func(seed int64, trial int) int {
		if trial == 3 {
			panic("trial exploded")
		}
		return trial * 2
	})
	var pe *PanicError
	if err := FirstErr(rs); !errors.As(err, &pe) {
		t.Fatalf("FirstErr = %v, want *PanicError", err)
	}
	if pe.Trial != 3 || len(pe.Stack) == 0 {
		t.Fatalf("panic recorded on trial %d with %d stack bytes, want trial 3 with a stack", pe.Trial, len(pe.Stack))
	}
	if vals := Values(rs); len(vals) != 9 {
		t.Fatalf("got %d surviving values, want 9", len(vals))
	}
	for i, r := range rs {
		if i != 3 && (r.Err != nil || r.Value != i*2) {
			t.Fatalf("trial %d: value %d err %v, want %d nil", i, r.Value, r.Err, i*2)
		}
	}
}

// TestProgressCounters verifies the aggregate counters account for every
// trial exactly once.
func TestProgressCounters(t *testing.T) {
	t.Parallel()
	var prog Progress
	rs := RunTrialsProgress(25, 5, 9, &prog, func(seed int64, trial int) int {
		if trial%7 == 0 {
			panic("x")
		}
		return trial
	})
	if prog.Started() != 25 || prog.Done() != 25 {
		t.Fatalf("started %d done %d, want 25/25", prog.Started(), prog.Done())
	}
	if prog.Panicked() != 4 { // trials 0,7,14,21
		t.Fatalf("panicked %d, want 4", prog.Panicked())
	}
	if len(rs) != 25 {
		t.Fatalf("got %d results, want 25", len(rs))
	}
}

// TestBoundedConcurrency checks the pool never runs more trials at once
// than the requested worker count.
func TestBoundedConcurrency(t *testing.T) {
	t.Parallel()
	const workers = 3
	var inFlight, peak atomic.Int64
	RunTrials(60, workers, 5, func(seed int64, trial int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		// Busy the slot briefly so overlap is observable.
		s := int64(0)
		for i := 0; i < 1000; i++ {
			s += DeriveSeed(seed, i)
		}
		return int(s & 1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent trials, want <= %d", p, workers)
	}
}

// TestEdgeCases covers empty runs and worker normalization.
func TestEdgeCases(t *testing.T) {
	t.Parallel()
	if rs := RunTrials(0, 8, 1, func(int64, int) int { return 1 }); rs != nil {
		t.Fatalf("n=0 returned %v, want nil", rs)
	}
	if rs := RunTrials(3, -1, 1, func(int64, int) int { return 1 }); len(rs) != 3 {
		t.Fatalf("workers=-1: %d results, want 3", len(rs))
	}
	if w := Workers(0, 100); w < 1 {
		t.Fatalf("Workers(0,100) = %d, want >= 1", w)
	}
	if w := Workers(16, 4); w != 4 {
		t.Fatalf("Workers(16,4) = %d, want 4 (capped at n)", w)
	}
}
