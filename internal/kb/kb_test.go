package kb

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/mitigation"
)

func TestDefaultCorpusWellFormed(t *testing.T) {
	t.Parallel()
	k := Default()
	if k.Version() != 1 {
		t.Fatalf("version = %d, want 1", k.Version())
	}
	if len(k.Concepts()) < 15 {
		t.Fatalf("only %d concepts", len(k.Concepts()))
	}
	if len(k.Rules()) < 15 {
		t.Fatalf("only %d rules", len(k.Rules()))
	}
	// Every rule endpoint resolves (AddRule enforces; double-check).
	for _, r := range k.Rules() {
		if _, ok := k.ConceptByID(r.Cause); !ok {
			t.Errorf("rule %s cause %q unknown", r.ID, r.Cause)
		}
		if _, ok := k.ConceptByID(r.Effect); !ok {
			t.Errorf("rule %s effect %q unknown", r.ID, r.Effect)
		}
	}
}

func TestCausesOfSortedByStrength(t *testing.T) {
	t.Parallel()
	k := Default()
	causes := k.CausesOf(CPacketLoss)
	if len(causes) < 4 {
		t.Fatalf("packet_loss has %d causes", len(causes))
	}
	for i := 1; i < len(causes); i++ {
		if causes[i-1].Strength < causes[i].Strength {
			t.Fatal("CausesOf not sorted by descending strength")
		}
	}
	// link_overload (0.9) must outrank monitor_false_alarm (0.3).
	if causes[0].Cause != CLinkOverload {
		t.Errorf("top cause = %s, want %s", causes[0].Cause, CLinkOverload)
	}
}

func TestEffectsOf(t *testing.T) {
	t.Parallel()
	k := Default()
	effects := k.EffectsOf(CConfigPush)
	found := false
	for _, r := range effects {
		if r.Effect == CConfigInconsistency {
			found = true
		}
	}
	if !found {
		t.Error("config_push -> config_inconsistency missing")
	}
}

func TestAddRuleValidation(t *testing.T) {
	t.Parallel()
	k := Default()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("unknown cause", func() {
		k.AddRule(Rule{Cause: "nope", Effect: CPacketLoss, Strength: 0.5})
	})
	mustPanic("unknown effect", func() {
		k.AddRule(Rule{Cause: CLinkDown, Effect: "nope", Strength: 0.5})
	})
	mustPanic("bad strength", func() {
		k.AddRule(Rule{Cause: CLinkDown, Effect: CPacketLoss, Strength: 1.5})
	})
}

func TestRemoveRule(t *testing.T) {
	t.Parallel()
	k := Default()
	before := len(k.CausesOf(CPacketLoss))
	k.RemoveRule("rule:link_down->packet_loss")
	after := len(k.CausesOf(CPacketLoss))
	if after != before-1 {
		t.Fatalf("causes %d -> %d, want one fewer", before, after)
	}
	k.RemoveRule("rule:does-not-exist") // must not panic
}

func TestSnapshotExcludesNewRules(t *testing.T) {
	t.Parallel()
	k := Default()
	v1 := k.Version()
	ApplyFastpathUpdate(k)
	if k.Version() != v1+1 {
		t.Fatalf("version after update = %d", k.Version())
	}

	stale := k.Snapshot(v1)
	if len(stale.CausesOf(CDeviceOSCrash)) != len(Default().CausesOf(CDeviceOSCrash)) {
		t.Error("stale snapshot leaked post-update rules")
	}
	// The updated KB can backward-chain device_os_crash -> protocol_bug.
	fresh := false
	for _, r := range k.CausesOf(CDeviceOSCrash) {
		if r.Cause == CProtocolBug {
			fresh = true
		}
	}
	if !fresh {
		t.Error("updated KB missing protocol_bug -> device_os_crash")
	}
	stale2 := false
	for _, r := range stale.CausesOf(CDeviceOSCrash) {
		if r.Cause == CProtocolBug {
			stale2 = true
		}
	}
	if stale2 {
		t.Error("stale snapshot knows about protocol_bug")
	}
}

func TestTeamNamespaces(t *testing.T) {
	t.Parallel()
	k := Default()
	wan := k.TeamRules("wan")
	if len(wan) == 0 {
		t.Fatal("wan team owns no rules")
	}
	for _, r := range wan {
		if r.Team != "wan" {
			t.Errorf("rule %s leaked into wan namespace", r.ID)
		}
	}
	// One team's additions don't perturb another's.
	netinfraBefore := len(k.TeamRules("netinfra"))
	k.AddRule(Rule{ID: "wan-extra", Cause: CMaintenance, Effect: CLatencySpike, Strength: 0.2, Team: "wan"})
	if len(k.TeamRules("netinfra")) != netinfraBefore {
		t.Error("wan team addition changed netinfra namespace")
	}
}

func TestTSGLookup(t *testing.T) {
	t.Parallel()
	k := Default()
	if _, ok := k.TSGByID("tsg-device-down"); !ok {
		t.Fatal("tsg-device-down missing")
	}
	guides := k.TSGForSymptom(CPacketLoss)
	if len(guides) == 0 {
		t.Fatal("no TSG for packet_loss")
	}
	for _, g := range guides {
		if g.Version == 0 {
			t.Errorf("TSG %s has no version", g.ID)
		}
	}
}

func TestComponentsAndDependents(t *testing.T) {
	t.Parallel()
	k := Default()
	if _, ok := k.ComponentByName("traffic-controller"); !ok {
		t.Fatal("traffic-controller component missing")
	}
	deps := k.Dependents("B4")
	names := map[string]bool{}
	for _, c := range deps {
		names[c.Name] = true
	}
	for _, want := range []string{"bulk-transfer", "directconnect", "prefix-pipeline"} {
		if !names[want] {
			t.Errorf("Dependents(B4) missing %s (got %v)", want, names)
		}
	}
}

func TestMitigationsTemplates(t *testing.T) {
	t.Parallel()
	k := Default()
	ms := k.Mitigations(CLinkCorruption)
	if len(ms) != 1 || ms[0].Kind != mitigation.IsolateLink || ms[0].Target != PhLink {
		t.Fatalf("link_corruption mitigations = %v", ms)
	}
	if k.Mitigations("unknown") != nil {
		t.Error("unknown concept should have no mitigations")
	}
	// Mutating the returned slice must not corrupt the KB.
	ms[0].Target = "hacked"
	if k.Mitigations(CLinkCorruption)[0].Target != PhLink {
		t.Error("Mitigations returned aliased storage")
	}
}

func TestFastpathUpdateAddsTSG(t *testing.T) {
	t.Parallel()
	k := Default()
	ApplyFastpathUpdate(k)
	tsg, ok := k.TSGByID("tsg-fastpath-kill")
	if !ok {
		t.Fatal("fastpath TSG missing after update")
	}
	hasKill := false
	for _, s := range tsg.Steps {
		if s.Kind == TSGAction && s.Action.Kind == mitigation.DisableProtocol && s.Action.Target == FastpathProtocol {
			hasKill = true
		}
	}
	if !hasKill {
		t.Error("fastpath TSG lacks kill-switch step")
	}
}

func TestHistoryStore(t *testing.T) {
	t.Parallel()
	h := NewHistory()
	h.Add(IncidentRecord{ID: "i1", Title: "loss in east", RootCause: CLinkCorruption,
		Mitigation: []mitigation.Action{{Kind: mitigation.IsolateLink, Target: "l1"}}, TTMMinutes: 30})
	h.Add(IncidentRecord{ID: "i2", Title: "congestion", RootCause: CLinkOverload,
		Mitigation: []mitigation.Action{{Kind: mitigation.RateLimitService, Target: "bulk", Param: "0.5"}}, TTMMinutes: 20})
	h.Add(IncidentRecord{ID: "i1", Title: "loss in east (updated)", RootCause: CLinkCorruption, TTMMinutes: 25})

	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (replace by ID)", h.Len())
	}
	if r, _ := h.ByID("i1"); r.TTMMinutes != 25 {
		t.Error("Add did not replace record")
	}
	if got := h.WithRootCause(CLinkOverload); len(got) != 1 || got[0].ID != "i2" {
		t.Errorf("WithRootCause = %+v", got)
	}
	if got := h.WithMitigation([]mitigation.Action{{Kind: mitigation.RateLimitService, Target: "bulk"}}); len(got) != 1 {
		t.Errorf("WithMitigation = %+v", got)
	}
	if _, ok := h.ByID("zzz"); ok {
		t.Error("ByID on missing record succeeded")
	}
	if (IncidentRecord{Title: "a", Summary: "b"}).Text() != "a. b" {
		t.Error("Text format changed")
	}
}

func TestKBHistoryAttachedAndSharedAcrossSnapshots(t *testing.T) {
	t.Parallel()
	k := Default()
	k.History().Add(IncidentRecord{ID: "x", Title: "t"})
	s := k.Snapshot(1)
	if s.History().Len() != 1 {
		t.Error("snapshot should share the incident history store")
	}
}

// Bump is the fleet's "knowledge changed" signal; it must evict the
// process-wide embedding memo so vectors derived from retired corpus
// text cannot be served to later sessions. Not parallel: it touches the
// shared memo.
func TestBumpEvictsEmbeddingMemo(t *testing.T) {
	if !embed.EmbedCacheEnabled() {
		t.Skip("embed cache disabled")
	}
	s := embed.NewStore(embed.NewDomainEmbedder(64))
	s.Add("a", "packet loss in us-east")
	s.Search("packet loss in us-east", 1)
	h0, m0 := s.CacheStats()
	if h0 == 0 {
		t.Fatal("setup: repeat lookup should have warmed the memo")
	}

	Default().Bump()

	s.Search("packet loss in us-east", 1)
	if h, m := s.CacheStats(); h != h0 || m != m0+1 {
		t.Fatalf("post-Bump lookup should miss: %d hits / %d misses, want %d / %d", h, m, h0, m0+1)
	}
}
