package main

// The -bench-diff mode compares two -bench-json snapshots and gates on
// regressions: `benchgen -bench-diff OLD.json NEW.json` prints a
// per-kernel ratio table (ns/op and allocs/op, new/old) and exits
// nonzero when any headline kernel's ns/op regresses by more than 20%.
// "Headline kernels" are the substrate micro-kernels — every record
// whose name is not an experiment id (e1, e2, ...). Experiment rows are
// reported but don't gate: their wall time includes full table
// generation and is too coarse for a ratio threshold.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
)

// benchRegressLimit is the gating threshold: a headline kernel whose
// ns/op ratio (new/old) exceeds this fails the diff.
const benchRegressLimit = 1.20

var expIDPattern = regexp.MustCompile(`^e\d+$`)

// benchDiffRow is one kernel's old/new comparison.
type benchDiffRow struct {
	Name                 string
	OldNs, NewNs         int64
	OldAllocs, NewAllocs int64
	NsRatio              float64
	AllocRatio           float64
	Headline             bool // gates the exit code
	Missing              bool // present in only one snapshot
}

func ratio(newV, oldV int64) float64 {
	if oldV <= 0 {
		if newV <= 0 {
			return 1
		}
		return float64(newV)
	}
	return float64(newV) / float64(oldV)
}

// diffBenchFiles joins two snapshots by benchmark name (old-file order,
// then new-only rows) and returns the rows plus the names of headline
// kernels that regressed past benchRegressLimit.
func diffBenchFiles(oldF, newF *benchFile) (rows []benchDiffRow, regressed []string) {
	newByName := make(map[string]benchRecord, len(newF.Benchmarks))
	for _, r := range newF.Benchmarks {
		newByName[r.Name] = r
	}
	seen := make(map[string]bool, len(oldF.Benchmarks))
	for _, o := range oldF.Benchmarks {
		seen[o.Name] = true
		row := benchDiffRow{
			Name:      o.Name,
			OldNs:     o.NsPerOp,
			OldAllocs: o.AllocsPerOp,
			Headline:  !expIDPattern.MatchString(o.Name),
		}
		nr, ok := newByName[o.Name]
		if !ok {
			row.Missing = true
			rows = append(rows, row)
			continue
		}
		row.NewNs = nr.NsPerOp
		row.NewAllocs = nr.AllocsPerOp
		row.NsRatio = ratio(nr.NsPerOp, o.NsPerOp)
		row.AllocRatio = ratio(nr.AllocsPerOp, o.AllocsPerOp)
		if row.Headline && row.NsRatio > benchRegressLimit {
			regressed = append(regressed, o.Name)
		}
		rows = append(rows, row)
	}
	for _, nr := range newF.Benchmarks {
		if seen[nr.Name] {
			continue
		}
		rows = append(rows, benchDiffRow{
			Name:      nr.Name,
			NewNs:     nr.NsPerOp,
			NewAllocs: nr.AllocsPerOp,
			Headline:  !expIDPattern.MatchString(nr.Name),
			Missing:   true,
		})
	}
	return rows, regressed
}

// writeBenchDiff renders the comparison table. Ratios below 1 are
// speedups; the `gate` column marks rows that participate in the exit
// code.
func writeBenchDiff(w io.Writer, oldPath, newPath string, rows []benchDiffRow) {
	fmt.Fprintf(w, "bench-diff: %s -> %s (gate: headline ns/op ratio <= %.2f)\n\n", oldPath, newPath, benchRegressLimit)
	fmt.Fprintf(w, "%-24s %14s %14s %8s %10s %10s %8s  %s\n",
		"name", "old ns/op", "new ns/op", "ratio", "old allocs", "new allocs", "ratio", "gate")
	for _, r := range rows {
		gate := "-"
		if r.Headline {
			gate = "kernel"
		}
		if r.Missing {
			side := "old only"
			ns, allocs := r.OldNs, r.OldAllocs
			if r.OldNs == 0 && r.OldAllocs == 0 {
				side = "new only"
				ns, allocs = r.NewNs, r.NewAllocs
			}
			fmt.Fprintf(w, "%-24s %14d %14s %8s %10d %10s %8s  %s (%s)\n",
				r.Name, ns, "-", "-", allocs, "-", "-", gate, side)
			continue
		}
		verdict := ""
		if r.Headline && r.NsRatio > benchRegressLimit {
			verdict = "  REGRESSED"
		}
		fmt.Fprintf(w, "%-24s %14d %14d %7.2fx %10d %10d %7.2fx  %s%s\n",
			r.Name, r.OldNs, r.NewNs, r.NsRatio, r.OldAllocs, r.NewAllocs, r.AllocRatio, gate, verdict)
	}
}

func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// runBenchDiff loads both snapshots, prints the table, and returns an
// error naming every regressed headline kernel (the caller exits
// nonzero on it).
func runBenchDiff(oldPath, newPath string) error {
	oldF, err := loadBenchFile(oldPath)
	if err != nil {
		return err
	}
	newF, err := loadBenchFile(newPath)
	if err != nil {
		return err
	}
	if oldF.Caches != newF.Caches {
		fmt.Fprintf(os.Stderr, "warning: comparing caches=%v against caches=%v\n", oldF.Caches, newF.Caches)
	}
	rows, regressed := diffBenchFiles(oldF, newF)
	writeBenchDiff(os.Stdout, oldPath, newPath, rows)
	if len(regressed) > 0 {
		return fmt.Errorf("bench-diff: %d headline kernel(s) regressed >%d%%: %s",
			len(regressed), int((benchRegressLimit-1)*100), strings.Join(regressed, ", "))
	}
	fmt.Printf("\nbench-diff: no headline kernel regressed more than %d%%\n", int((benchRegressLimit-1)*100))
	return nil
}
