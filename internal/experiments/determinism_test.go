package experiments

// Serial-vs-parallel determinism: the core correctness contract of the
// parallel trial pool. Running the same experiment from the same seed at
// workers=1 and workers=8 must render bit-identical tables — worker
// count may only change wall-clock time, never a single output byte.

import (
	"strings"
	"testing"

	"repro/internal/eval"
)

// renderTables folds an experiment's tables into one comparable string.
func renderTables(ts []*eval.Table) string {
	var b strings.Builder
	for _, t := range ts {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// firstDiff locates the first byte where two renderings diverge, for a
// readable failure message.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return "..." + a[lo:min(i+40, len(a))] + "... vs ..." + b[lo:min(i+40, len(b))] + "..."
		}
	}
	return "lengths differ"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestE2DeterministicAcrossWorkers runs the Fig.2 iterative-vs-one-shot
// ladder serially and on eight workers from one seed and asserts the
// experiment tables are bit-identical.
func TestE2DeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	serial := renderTables(E2IterativeVsOneShot(Params{Trials: 2, Seed: 99, Workers: 1}))
	pooled := renderTables(E2IterativeVsOneShot(Params{Trials: 2, Seed: 99, Workers: 8}))
	if serial != pooled {
		t.Fatalf("E2 tables diverge between workers=1 and workers=8: %s", firstDiff(serial, pooled))
	}
}

// TestE4DeterministicAcrossWorkers does the same for the §3 randomized
// A/B trial — arm assignment, per-arm statistics, and every significance
// test must survive parallel execution byte for byte.
func TestE4DeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	serial := renderTables(E4ABTest(Params{Trials: 2, Seed: 99, Workers: 1}))
	pooled := renderTables(E4ABTest(Params{Trials: 2, Seed: 99, Workers: 8}))
	if serial != pooled {
		t.Fatalf("E4 tables diverge between workers=1 and workers=8: %s", firstDiff(serial, pooled))
	}
}
