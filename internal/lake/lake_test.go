package lake

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/kb"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/scenarios"
)

func sampleEntries() []Entry {
	return []Entry{
		{
			ID: "inc-0001", Scenario: "cascade-5", Runner: "iterative-helper",
			Severity: 2, Mitigated: true, TTMMinutes: 40, Rounds: 5,
			Symptoms: []string{kb.CPacketLoss},
			Chain:    []string{kb.CLinkOverload, kb.CLinkDown},
			Proposed: []Edge{
				{Cause: kb.CLinkOverload, Effect: kb.CPacketLoss, Confidence: 0.7},
				{Cause: "bgp_hijack", Effect: kb.CPacketLoss, Confidence: 0.88},
				{Cause: kb.CLinkDown, Effect: kb.CLinkOverload, Confidence: 0.6},
			},
			Applied: []Action{{Kind: "isolate-link", Target: "l1"}},
			Tags:    []string{"cascade-5", "sev2", "mitigated"},
			Events:  []obs.Event{{Type: obs.EvHypothesis, Hypothesis: kb.CLinkOverload, Confidence: 0.7}},
		},
		{
			ID: "inc-0002", Scenario: "cascade-5", Runner: "iterative-helper",
			Severity: 2, Escalated: true, TTMMinutes: 180, Rounds: 12,
			Symptoms: []string{kb.CPacketLoss},
			Proposed: []Edge{{Cause: "bgp_hijack", Effect: kb.CPacketLoss, Confidence: 0.9}},
			Tags:     []string{"cascade-5", "sev2", "escalated"},
		},
		{
			ID: "inc-0003", Scenario: "gray-link", Runner: "iterative-helper",
			Severity: 1, Mitigated: true, TTMMinutes: 20, Rounds: 3,
			Symptoms: []string{kb.CPacketLoss},
			Chain:    []string{kb.CLinkDown},
			Applied:  []Action{{Kind: "isolate-link", Target: "l2"}, {Kind: "restart-device", Target: "d9", Param: "soft"}},
			Tags:     []string{"gray-link", "sev1", "mitigated"},
		},
	}
}

func TestLakeAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l, rr, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rr.Entries != 0 || rr.Dropped != 0 {
		t.Fatalf("fresh lake replayed %+v", rr)
	}
	for _, e := range sampleEntries() {
		if _, err := l.Append(e); err != nil {
			t.Fatalf("Append(%s): %v", e.ID, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rr2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rr2.Entries != 3 || rr2.Dropped != 0 {
		t.Fatalf("reopen replayed %+v, want 3 entries, 0 dropped", rr2)
	}
	got, ok := l2.Get("inc-0001")
	if !ok {
		t.Fatal("inc-0001 missing after reopen")
	}
	want := sampleEntries()[0]
	want.V = Version // Append stamps the version
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("entry mutated across reopen:\n got %+v\nwant %+v", got, want)
	}
}

func TestLakeTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, e := range sampleEntries() {
		if _, err := l.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	// Simulate the partial line a SIGKILL mid-write leaves behind.
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	if _, err := f.WriteString(`deadbeef {"v":1,"id":"inc-torn`); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()

	l2, rr, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if rr.Entries != 3 || rr.Dropped != 1 {
		t.Fatalf("recover = %+v, want 3 entries, 1 dropped", rr)
	}
	// Appends after recovery must land on a clean boundary.
	if _, err := l2.Append(Entry{ID: "inc-0004", Scenario: "gray-link", TTMMinutes: 5}); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	l2.Close()
	l3, rr3, err := Open(dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer l3.Close()
	if rr3.Entries != 4 || rr3.Dropped != 0 {
		t.Fatalf("third open = %+v, want 4 entries, 0 dropped", rr3)
	}
}

func TestLakeDuplicateIDLastWins(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	first := Entry{ID: "inc-1", Scenario: "gray-link", TTMMinutes: 30, Mitigated: true,
		Applied: []Action{{Kind: "isolate-link", Target: "l1"}}, Tags: []string{"gray-link"}}
	second := Entry{ID: "inc-1", Scenario: "gray-link", TTMMinutes: 10, Escalated: true, Tags: []string{"gray-link", "retry"}}
	if _, err := l.Append(first); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(second); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	got, _ := l.Get("inc-1")
	if !got.Escalated || got.TTMMinutes != 10 {
		t.Fatalf("last write did not win: %+v", got)
	}
	// The displaced entry's view contributions must be withdrawn.
	st := l.Stats()
	if st.Entries != 1 || st.Mitigated != 0 || st.Escalated != 1 {
		t.Fatalf("Stats after replace = %+v", st)
	}
	if m := l.Mitigations(); len(m) != 0 {
		t.Fatalf("Mitigations after replace = %v, want empty", m)
	}
	l.Close()

	// Replay resolves the duplicate the same way.
	l2, rr, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rr.Entries != 1 {
		t.Fatalf("replayed %d entries, want 1", rr.Entries)
	}
	if got, _ := l2.Get("inc-1"); !got.Escalated {
		t.Fatalf("replayed entry = %+v", got)
	}
}

func TestLakeViews(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, e := range sampleEntries() {
		if _, err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}

	st := l.Stats()
	if st.Entries != 3 || st.Mitigated != 2 || st.Escalated != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if len(st.Classes) != 2 || st.Classes[0].Scenario != "cascade-5" || st.Classes[1].Scenario != "gray-link" {
		t.Fatalf("Classes = %+v", st.Classes)
	}
	casc := st.Classes[0]
	if casc.Count != 2 || casc.MeanTTMMinutes != 110 || casc.MinTTMMinutes != 40 || casc.MaxTTMMinutes != 180 {
		t.Fatalf("cascade-5 stats = %+v", casc)
	}

	mit := l.Mitigations()
	if len(mit) != 3 || mit[0].Action != "isolate-link(l1)" && mit[0].Action != "isolate-link(l2)" {
		t.Fatalf("Mitigations = %+v", mit)
	}
	for _, m := range mit {
		if m.Count != 1 {
			t.Fatalf("Mitigations = %+v", mit)
		}
	}

	if got := l.ByTag("mitigated"); len(got) != 2 || got[0].ID != "inc-0001" || got[1].ID != "inc-0003" {
		t.Fatalf("ByTag(mitigated) = %+v", got)
	}
	tags := l.Tags()
	if len(tags) == 0 || tags[0].Tag != "cascade-5" || tags[0].Count != 2 {
		t.Fatalf("Tags = %+v", tags)
	}
}

func TestProposedEdgesFrontier(t *testing.T) {
	symptoms := []string{kb.CPacketLoss}
	events := []obs.Event{
		{Type: obs.EvHypothesis, Hypothesis: kb.CLinkOverload, Confidence: 0.7},
		{Type: obs.EvHypothesis, Hypothesis: "bgp_hijack", Confidence: 0.88},
		{Type: obs.EvHypothesisTested, Hypothesis: kb.CLinkOverload, Verdict: "supported"},
		{Type: obs.EvHypothesis, Hypothesis: kb.CLinkDown, Confidence: 0.6},
		{Type: obs.EvHypothesisTested, Hypothesis: kb.CLinkDown, Verdict: "unsupported"},
		{Type: obs.EvHypothesis, Hypothesis: kb.CLinkDown, Confidence: 0.65},
	}
	got := ProposedEdges(symptoms, events)
	want := []Edge{
		{Cause: kb.CLinkOverload, Effect: kb.CPacketLoss, Confidence: 0.7},
		{Cause: "bgp_hijack", Effect: kb.CPacketLoss, Confidence: 0.88},
		// Frontier advanced to the supported hypothesis; the duplicate
		// proposal kept its higher confidence.
		{Cause: kb.CLinkDown, Effect: kb.CLinkOverload, Confidence: 0.65},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ProposedEdges:\n got %+v\nwant %+v", got, want)
	}
}

func TestPromoteVerifiedExcludesUnconfirmed(t *testing.T) {
	c, err := Promote(sampleEntries(), PolicyVerified)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	for _, r := range c.Rules {
		if r.Cause == "bgp_hijack" {
			t.Fatalf("verified policy promoted an unconfirmed fabrication: %+v", r)
		}
		if r.Strength != VerifiedStrength {
			t.Fatalf("verified rule at strength %v, want constant %v", r.Strength, VerifiedStrength)
		}
	}
	// inc-0001's chain: congestion explains the symptom, failure causes
	// congestion; inc-0003 confirms failure -> symptom.
	wantEdges := map[[2]string]bool{
		{kb.CLinkOverload, kb.CPacketLoss}: true,
		{kb.CLinkDown, kb.CLinkOverload}:   true,
		{kb.CLinkDown, kb.CPacketLoss}:     true,
	}
	if len(c.Rules) != len(wantEdges) {
		t.Fatalf("verified rules = %+v, want %d edges", c.Rules, len(wantEdges))
	}
	for _, r := range c.Rules {
		if !wantEdges[[2]string{r.Cause, r.Effect}] {
			t.Fatalf("unexpected verified rule %+v", r)
		}
	}
	// Only mitigated incidents with confirmed chains reach the history.
	if c.History.Len() != 2 {
		t.Fatalf("verified history has %d records, want 2", c.History.Len())
	}
	rec, ok := c.History.ByID("inc-0001")
	if !ok || rec.RootCause != kb.CLinkDown {
		t.Fatalf("inc-0001 history record = %+v ok=%v", rec, ok)
	}
	if len(rec.Mitigation) != 1 || rec.Mitigation[0].Kind != "isolate-link" {
		t.Fatalf("mitigation lost in codec round trip: %+v", rec.Mitigation)
	}
}

func TestPromoteAlwaysIngestsFabrications(t *testing.T) {
	c, err := Promote(sampleEntries(), PolicyAlways)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	found := false
	for _, r := range c.Rules {
		if r.Cause == "bgp_hijack" && r.Effect == kb.CPacketLoss {
			found = true
			if r.Strength != 0.9 { // max confidence across the two proposals
				t.Fatalf("fabricated rule strength = %v, want 0.9", r.Strength)
			}
		}
	}
	if !found {
		t.Fatal("always policy dropped the proposed fabrication — nothing to degrade on")
	}
	// Every incident lands in history, including the escalated one.
	if c.History.Len() != 3 {
		t.Fatalf("always history has %d records, want 3", c.History.Len())
	}
	rec, _ := c.History.ByID("inc-0002")
	if rec.RootCause != "bgp_hijack" {
		t.Fatalf("escalated record root cause = %q, want the highest-confidence proposal", rec.RootCause)
	}
}

func TestPromoteDeterministicOrder(t *testing.T) {
	a, err := Promote(sampleEntries(), PolicyAlways)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Promote(sampleEntries(), PolicyAlways)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rules, b.Rules) {
		t.Fatalf("rule order unstable:\n%+v\n%+v", a.Rules, b.Rules)
	}
}

// TestNewEntryFromSession runs one real helper session and checks the
// lake entry captures its confirmed chain and event stream.
func TestNewEntryFromSession(t *testing.T) {
	kbase := kb.Default()
	kb.ApplyFastpathUpdate(kbase)
	in := (&scenarios.Cascade{Stage: 5}).Build(rand.New(rand.NewSource(7)))
	model := llm.NewSimLLM(kbase, 7)
	res, out := harness.RunSession(model, kbase, core.DefaultConfig(), 0.9, kb.NewHistory(), in, 7, nil)
	e := NewEntry("inc-7", "iterative-helper", in, res, 7, out.Events)
	if e.ID != "inc-7" || e.Scenario != "cascade-5" {
		t.Fatalf("entry = %+v", e)
	}
	if res.Mitigated != e.Mitigated {
		t.Fatalf("mitigated mismatch: res=%v entry=%v", res.Mitigated, e.Mitigated)
	}
	if len(e.Chain) == 0 {
		t.Fatal("entry has no confirmed chain (Deductions not threaded)")
	}
	if !reflect.DeepEqual(e.Chain, res.Deductions) {
		t.Fatalf("chain %v != deductions %v", e.Chain, res.Deductions)
	}
	if len(e.Events) != len(out.Events) {
		t.Fatalf("events truncated: %d != %d", len(e.Events), len(out.Events))
	}
	if len(e.Proposed) == 0 {
		t.Fatal("no proposed edges reconstructed from a real session")
	}
	// The chain must be a subset of what was proposed (everything
	// confirmed was first hypothesized).
	proposed := map[string]bool{}
	for _, p := range e.Proposed {
		proposed[p.Cause] = true
	}
	for _, c := range e.Chain {
		if !proposed[c] {
			t.Fatalf("confirmed %q never appears among proposed causes %v", c, e.Proposed)
		}
	}
}
