package netsim

import (
	"fmt"
	"sort"
	"testing"
)

// These tests pin the route cache's soundness story: entries revalidate
// against live network state on every lookup, so any mutation — COW
// writes, structural growth, controller rerouting, even direct struct
// writes that bypass MutNode/MutLink — yields fresh paths, never stale
// ones.

func cacheFlow() *Flow {
	return &Flow{ID: "f", Src: "a", Dst: "d", DemandGbps: 1, Service: "web"}
}

func dagUses(d *RouteDAG, id NodeID) bool {
	if d == nil {
		return false
	}
	_, ok := d.NodeFrac[id]
	return ok
}

func wantStats(t *testing.T, n *Network, hits, misses int64) {
	t.Helper()
	h, m := n.RouteCacheStats()
	if h != hits || m != misses {
		t.Fatalf("cache stats = %d hits / %d misses, want %d / %d", h, m, hits, misses)
	}
}

func TestRouteCacheHitOnRepeat(t *testing.T) {
	if !RouteCacheEnabled() {
		t.Skip("route cache disabled")
	}
	n := diamondNet()
	f := cacheFlow()
	d1 := RouteFlowDAG(n, f, nil)
	d2 := RouteFlowDAG(n, f, nil)
	if d1 == nil || d1 != d2 {
		t.Fatalf("repeat lookup returned a different DAG (%p vs %p)", d1, d2)
	}
	wantStats(t, n, 1, 1)
}

func TestRouteCacheFreshAfterFault(t *testing.T) {
	if !RouteCacheEnabled() {
		t.Skip("route cache disabled")
	}
	n := diamondNet()
	f := cacheFlow()
	if d := RouteFlowDAG(n, f, nil); !dagUses(d, "b") || !dagUses(d, "c") {
		t.Fatalf("baseline DAG should ECMP over b and c, got %v", d.NodeFrac)
	}

	// Fault the a-b link the way the fault layer does (COW write): the
	// cached entry must fail revalidation and the reroute avoid b.
	n.MutLink(MakeLinkID("a", "b")).Down = true
	d := RouteFlowDAG(n, f, nil)
	if dagUses(d, "b") || !dagUses(d, "c") {
		t.Fatalf("post-fault DAG should avoid b, got %v", d.NodeFrac)
	}
	wantStats(t, n, 0, 2)

	// Revert. The pre-fault entry is still in the two-entry bucket and is
	// valid again (its down-set is empty and all its elements are back),
	// so this is a hit — the parent/clone alternation risk assessment
	// depends on.
	n.MutLink(MakeLinkID("a", "b")).Down = false
	if d := RouteFlowDAG(n, f, nil); !dagUses(d, "b") || !dagUses(d, "c") {
		t.Fatalf("post-revert DAG should ECMP again, got %v", d.NodeFrac)
	}
	wantStats(t, n, 1, 2)

	// The faulted-state entry also survived in the bucket: re-faulting
	// serves it without recomputing.
	n.MutLink(MakeLinkID("a", "b")).Down = true
	if d := RouteFlowDAG(n, f, nil); dagUses(d, "b") {
		t.Fatal("re-fault served a DAG through the down link")
	}
	wantStats(t, n, 2, 2)
}

func TestRouteCacheFreshAfterDirectWrite(t *testing.T) {
	if !RouteCacheEnabled() {
		t.Skip("route cache disabled")
	}
	n := diamondNet()
	f := cacheFlow()
	RouteFlowDAG(n, f, nil)

	// A direct struct write — no MutNode, no generation bump, the way
	// tests poke at topologies. Revalidation reads live structs, so the
	// stale DAG through b must not be served.
	n.Node("b").Healthy = false
	if d := RouteFlowDAG(n, f, nil); dagUses(d, "b") {
		t.Fatal("cache served a path through an unhealthy node after a direct write")
	}
}

func TestRouteCacheUnreachableThenRepaired(t *testing.T) {
	if !RouteCacheEnabled() {
		t.Skip("route cache disabled")
	}
	n := lineNet()
	f := cacheFlow()
	n.MutNode("b").Healthy = false
	if d := RouteFlowDAG(n, f, nil); d != nil {
		t.Fatalf("expected unreachable, got %v", d.NodeFrac)
	}
	// The nil entry stays valid while b stays down...
	if d := RouteFlowDAG(n, f, nil); d != nil {
		t.Fatal("cached unreachability disagreed with fresh compute")
	}
	wantStats(t, n, 1, 1)
	// ...and is dropped the moment b recovers.
	n.MutNode("b").Healthy = true
	if d := RouteFlowDAG(n, f, nil); d == nil {
		t.Fatal("cache kept serving unreachable after the repair")
	}
}

func TestRouteCacheCloneIsolation(t *testing.T) {
	if !RouteCacheEnabled() {
		t.Skip("route cache disabled")
	}
	n := diamondNet()
	f := cacheFlow()
	RouteFlowDAG(n, f, nil)

	// What-if mutation on a clone: the clone routes around the fault, the
	// parent keeps serving its cached ECMP DAG (the shared cache's
	// revalidation sees each network's own live state).
	c := n.Clone()
	c.MutLink(MakeLinkID("a", "c")).Down = true
	if d := RouteFlowDAG(c, f, nil); dagUses(d, "c") || !dagUses(d, "b") {
		t.Fatalf("clone DAG should avoid c, got %v", d.NodeFrac)
	}
	h0, _ := n.RouteCacheStats()
	if d := RouteFlowDAG(n, f, nil); !dagUses(d, "b") || !dagUses(d, "c") {
		t.Fatalf("parent DAG changed after clone mutation: %v", d.NodeFrac)
	}
	if h1, _ := n.RouteCacheStats(); h1 != h0+1 {
		t.Fatal("parent lookup after clone mutation should still hit")
	}

	// Structural growth on the clone bumps its generation: a shortcut
	// link yields a one-hop route there, while the parent is untouched.
	c2 := n.Clone()
	c2.AddLink("a", "d", 100, 1)
	if d := RouteFlowDAG(c2, f, nil); d == nil || dagUses(d, "b") || dagUses(d, "c") {
		t.Fatalf("clone with shortcut should route a-d directly, got %+v", d)
	}
	if d := RouteFlowDAG(n, f, nil); !dagUses(d, "b") || !dagUses(d, "c") {
		t.Fatal("parent saw the clone's structural change")
	}
}

func TestRouteCacheControllerReroute(t *testing.T) {
	if !RouteCacheEnabled() {
		t.Skip("route cache disabled")
	}
	n := NewNetwork()
	n.AddNode(Node{ID: "a"})
	n.AddNode(Node{ID: "d"})
	n.AddNode(Node{ID: "w4", Kind: KindWANRouter, WANName: "B4"})
	n.AddNode(Node{ID: "w2", Kind: KindWANRouter, WANName: "B2"})
	for _, w := range []NodeID{"w4", "w2"} {
		n.AddLink("a", w, 100, 1)
		n.AddLink(w, "d", 100, 1)
	}
	ctl := NewController("a", []string{"B4", "B2"})
	f := cacheFlow()

	if d := RouteFlowDAG(n, f, ctl); !dagUses(d, "w4") || dagUses(d, "w2") {
		t.Fatalf("preferred-WAN DAG should transit w4, got %v", d.NodeFrac)
	}

	// The buggy inconsistency check declares B4 failed; AssignWAN flips
	// to B2, which changes the cache key — no stale B4 path can be
	// served even though the topology never changed.
	ctl.Announce(PrefixAnnouncement{Prefix: "10.0.0.0/8", WAN: "B4", Cluster: "us-east"})
	ctl.Announce(PrefixAnnouncement{Prefix: "10.0.0.0/8", WAN: "B4", Cluster: "eu-north"})
	ctl.Evaluate()
	if !ctl.WANFailed("B4") {
		t.Fatal("setup: B4 should be believed failed")
	}
	if d := RouteFlowDAG(n, f, ctl); !dagUses(d, "w2") || dagUses(d, "w4") {
		t.Fatalf("post-failover DAG should transit w2, got %v", d.NodeFrac)
	}

	// Operator override restores B4; the original entry is still cached
	// under the B4 key and serves as a hit.
	ctl.Override("B4", true)
	ctl.Evaluate()
	h0, _ := n.RouteCacheStats()
	if d := RouteFlowDAG(n, f, ctl); !dagUses(d, "w4") {
		t.Fatalf("post-override DAG should transit w4 again, got %v", d.NodeFrac)
	}
	if h1, _ := n.RouteCacheStats(); h1 != h0+1 {
		t.Fatal("restored WAN assignment should hit the original cache entry")
	}
}

// reportSummary flattens a TrafficReport into a deterministic string form
// for byte-level comparison (maps print in random order otherwise).
func reportSummary(r *TrafficReport) []string {
	var out []string
	out = append(out, fmt.Sprintf("demand=%v delivered=%v", r.TotalDemand, r.TotalDelivered))
	for _, fs := range r.FlowStats {
		out = append(out, fmt.Sprintf("flow %s routed=%v loss=%v lat=%v",
			fs.Flow.ID, fs.Routed, fs.LossRate, fs.LatencyMs))
	}
	var lids []string
	for lid := range r.LinkStats {
		lids = append(lids, string(lid))
	}
	sort.Strings(lids)
	for _, lid := range lids {
		out = append(out, fmt.Sprintf("link %s %+v", lid, *r.LinkStats[LinkID(lid)]))
	}
	return out
}

func TestRouteCacheMatchesUncachedRouting(t *testing.T) {
	if !RouteCacheEnabled() {
		t.Skip("route cache disabled")
	}
	n := diamondNet()
	flows := []*Flow{
		{ID: "f1", Src: "a", Dst: "d", DemandGbps: 60, Service: "web"},
		{ID: "f2", Src: "d", Dst: "a", DemandGbps: 40, Service: "db"},
	}
	cached := fmt.Sprintf("%+v", reportSummary(RouteTraffic(n, flows, nil)))
	fresh := fmt.Sprintf("%+v", reportSummary(RouteTraffic(diamondNet(), flows, nil)))
	if cached != fresh {
		t.Fatalf("cached routing diverged from fresh routing:\n%s\nvs\n%s", cached, fresh)
	}
}
