package obs

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"
	"unicode/utf8"
)

// FuzzEventRoundTrip drives the event-log encoder/decoder with
// arbitrary field values and asserts Write → Read is the identity. The
// -trace-out log is the durable interface of the observability layer;
// any event the emitters can build must survive the codec bit-exactly.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(int64(1), "ab/0001", int64(180e9), 2, "tool-call", "pingmesh -> 3 findings",
		"iterative-helper", "cascade-5", "link_congested", 0.7, "pingmesh", "ok", int64(90e9), 120, 30, 0.25, true)
	f.Add(int64(9), "replay/0042", int64(0), 0, "session-end", "",
		"unassisted-oce", "gray-link", "", 0.0, "", "", int64(0), 0, 0, 0.0, false)
	f.Fuzz(func(t *testing.T, seq int64, session string, at int64, round int, typ, detail,
		runner, scenario, hypothesis string, confidence float64, tool, disposition string,
		latency int64, promptTok, completionTok int, cost float64, withOutcome bool) {
		if math.IsNaN(confidence) || math.IsInf(confidence, 0) || math.IsNaN(cost) || math.IsInf(cost, 0) {
			t.Skip("JSON cannot carry non-finite floats")
		}
		for _, s := range []string{session, typ, detail, runner, scenario, hypothesis, tool, disposition} {
			if !utf8.ValidString(s) {
				t.Skip("encoding/json coerces invalid UTF-8 to U+FFFD")
			}
		}
		e := Event{
			Seq: seq, Session: session, At: time.Duration(at), Round: round,
			Type: Type(typ), Detail: detail, Runner: runner, Scenario: scenario,
			Hypothesis: hypothesis, Confidence: confidence,
			Tool: tool, Disposition: disposition, Latency: time.Duration(latency),
			PromptTokens: promptTok, CompletionTokens: completionTok, CostUSD: cost,
		}
		if withOutcome {
			e.Outcome = &SessionOutcome{
				Mitigated: promptTok%2 == 0, Escalated: completionTok%2 == 0,
				TTMMinutes: confidence, Rounds: round, Tokens: promptTok + completionTok,
				Wrong: round % 3, CostUSD: cost,
			}
		}
		var buf bytes.Buffer
		if err := WriteEventLog(&buf, []Event{e}); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadEventLog(&buf)
		if err != nil {
			t.Fatalf("decode: %v (log %q)", err, buf.String())
		}
		if len(got) != 1 || !reflect.DeepEqual(got[0], e) {
			t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", e, got)
		}
	})
}
